module karma

go 1.21
