package model

import (
	"testing"

	"karma/internal/graph"
)

// shardConfig is a transformer small enough to build at several MP
// degrees in microseconds.
func shardConfig() TransformerConfig {
	return TransformerConfig{
		Name: "shard-lm", Hidden: 512, Heads: 8, Layers: 6, Seq: 128, Vocab: 8192,
	}
}

// TestTransformerShardConservation: summing the per-shard parameter and
// forward-FLOP counts over the MP group must reproduce the unsharded
// model to within the bias/rounding slack of the decomposition — the
// invariant that makes the shard a true 1/mp slice.
func TestTransformerShardConservation(t *testing.T) {
	cfg := shardConfig()
	full := TransformerShard(cfg, 1).Graph
	for _, mp := range []int{2, 4, 8} {
		sh := TransformerShard(cfg, mp)
		gotP := int64(mp) * sh.Graph.ParamCount()
		wantP := full.ParamCount()
		// Biases replicate per shard; allow 1% slack.
		if diff := gotP - wantP; diff < 0 || float64(diff) > 0.01*float64(wantP) {
			t.Errorf("mp=%d: %d params x %d = %d, want ~%d", mp, sh.Graph.ParamCount(), mp, gotP, wantP)
		}
		gotF := int64(mp) * sh.Graph.FwdFLOPs()
		wantF := full.FwdFLOPs()
		// Full-width LayerNorm/softmax/embedding-gather work replicates
		// per shard; allow 5% slack.
		if gotF < wantF || float64(gotF-wantF) > 0.05*float64(wantF) {
			t.Errorf("mp=%d: fwd FLOPs x mp = %d, want ~%d", mp, gotF, wantF)
		}
	}
}

// TestTransformerShardMatchesTransformer: at mp=1 the decomposed shard
// must agree with the monolithic Transformer builder on parameters and
// FLOPs (same model, finer layer granularity).
func TestTransformerShardMatchesTransformer(t *testing.T) {
	cfg := shardConfig()
	mono := Transformer(cfg)
	sh := TransformerShard(cfg, 1)
	if got, want := sh.Graph.ParamCount(), mono.ParamCount(); got < want || float64(got-want) > 0.01*float64(want) {
		t.Errorf("mp=1 shard params %d, monolithic %d", got, want)
	}
	if got, want := sh.Graph.FwdFLOPs(), mono.FwdFLOPs(); float64(got) < 0.99*float64(want) || float64(got) > 1.05*float64(want) {
		t.Errorf("mp=1 shard FLOPs %d, monolithic %d", got, want)
	}
	if len(sh.AllReduce) != 0 || sh.EmbedAllReduce != -1 {
		t.Errorf("mp=1 shard must mark no collectives, got %d + embed %d", len(sh.AllReduce), sh.EmbedAllReduce)
	}
}

// TestTransformerShardMarks: an mp>1 shard marks exactly the two
// row-parallel boundaries of every transformer layer plus the
// vocab-parallel embedding, and every marked output is the full-width
// {seq, hidden} boundary tensor.
func TestTransformerShardMarks(t *testing.T) {
	cfg := shardConfig()
	sh := TransformerShard(cfg, 4)
	if got, want := len(sh.AllReduce), 2*cfg.Layers; got != want {
		t.Fatalf("marked %d all-reduces, want %d", got, want)
	}
	if sh.EmbedAllReduce < 0 {
		t.Fatal("vocab-parallel embedding must be marked")
	}
	check := func(id graph.NodeID) {
		s := sh.Graph.Node(id).OutShape
		if s.Rank() != 2 || s[0] != cfg.Seq || s[1] != cfg.Hidden {
			t.Errorf("marked node %d has shape %v, want {%d,%d}", id, s, cfg.Seq, cfg.Hidden)
		}
	}
	for _, id := range sh.AllReduce {
		check(id)
	}
	check(sh.EmbedAllReduce)
}

// TestTransformerShardShrinksMemory: the shard's per-sample stored
// activations and parameters must shrink monotonically with mp (the
// intermediate tensors split even though boundaries stay full-width).
func TestTransformerShardShrinksMemory(t *testing.T) {
	cfg := shardConfig()
	prevP := int64(1 << 62)
	for _, mp := range []int{1, 2, 4, 8} {
		sh := TransformerShard(cfg, mp)
		if p := sh.Graph.ParamCount(); p >= prevP {
			t.Errorf("mp=%d: %d params did not shrink below %d", mp, p, prevP)
		} else {
			prevP = p
		}
	}
}

// TestTransformerShardValidates: every built shard passes graph
// validation at the degrees the paper uses, including a non-divisible
// width (Turing-NLG's 28 heads at MP=16 shard by hidden slices).
func TestTransformerShardValidates(t *testing.T) {
	for _, mp := range []int{1, 2, 16} {
		sh := TransformerShard(TuringNLG(), mp)
		if err := sh.Graph.Validate(); err != nil {
			t.Errorf("mp=%d: %v", mp, err)
		}
		if sh.MP != mp {
			t.Errorf("shard records MP=%d, want %d", sh.MP, mp)
		}
	}
}

// TestTransformerShardBadMP: a non-positive MP factor is a programming
// bug and must panic like the other builders' structural errors.
func TestTransformerShardBadMP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TransformerShard(cfg, 0) should panic")
		}
	}()
	TransformerShard(shardConfig(), 0)
}
