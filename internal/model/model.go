// Package model is the model zoo used in the paper's evaluation
// (Table III): ResNet-50/200 and VGG16 on ImageNet, WRN-28-10 and
// ResNet-1001 on CIFAR-10, U-Net on ssTEM, plus the Megatron-LM and
// Turing-NLG Transformer configurations of Table IV and Fig. 8.
//
// Builders return fully shape-inferred graphs and panic on construction
// errors (the architectures are fixed; a failure is a programming bug,
// not an input error).
package model

import (
	"fmt"
	"sort"

	"karma/internal/graph"
	"karma/internal/layer"
	"karma/internal/tensor"
	"karma/internal/unit"
)

func finish(g *graph.Graph) *graph.Graph {
	if err := g.Infer(); err != nil {
		panic(fmt.Sprintf("model %s: %v", g.Name(), err))
	}
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("model %s: %v", g.Name(), err))
	}
	return g
}

// convBNReLU appends conv(k,s,p)+BN+ReLU and returns the ReLU's id.
func convBNReLU(g *graph.Graph, prefix string, in graph.NodeID, cout, k, stride, pad int) graph.NodeID {
	c := g.Add(&layer.Conv2D{LayerName: prefix + ".conv", OutChannels: cout, K: k, Stride: stride, Pad: pad}, in)
	b := g.Add(&layer.BatchNorm{LayerName: prefix + ".bn"}, c)
	return g.Add(&layer.ReLU{LayerName: prefix + ".relu"}, b)
}

// ---------------------------------------------------------------------------
// ResNet family (ImageNet bottleneck variants)
// ---------------------------------------------------------------------------

// bottleneck appends one ImageNet bottleneck residual block
// (1x1 reduce, 3x3, 1x1 expand, projection shortcut when needed).
func bottleneck(g *graph.Graph, prefix string, in graph.NodeID, mid, out, stride int, project bool) graph.NodeID {
	a := convBNReLU(g, prefix+".a", in, mid, 1, 1, 0)
	b := convBNReLU(g, prefix+".b", a, mid, 3, stride, 1)
	c := g.Add(&layer.Conv2D{LayerName: prefix + ".c.conv", OutChannels: out, K: 1, Stride: 1, Pad: 0}, b)
	cbn := g.Add(&layer.BatchNorm{LayerName: prefix + ".c.bn"}, c)
	skip := in
	if project {
		p := g.Add(&layer.Conv2D{LayerName: prefix + ".proj.conv", OutChannels: out, K: 1, Stride: stride, Pad: 0}, in)
		skip = g.Add(&layer.BatchNorm{LayerName: prefix + ".proj.bn"}, p)
	}
	add := g.Add(&layer.Add{LayerName: prefix + ".add"}, skip, cbn)
	return g.Add(&layer.ReLU{LayerName: prefix + ".relu"}, add)
}

// resNetImageNet builds an ImageNet bottleneck ResNet with the given
// per-stage block counts.
func resNetImageNet(name string, blocks [4]int) *graph.Graph {
	g := graph.New(name)
	id := g.Add(&layer.Input{LayerName: "input", Shape: tensor.CHW(3, 224, 224)})
	id = convBNReLU(g, "stem", id, 64, 7, 2, 3)
	id = g.Add(&layer.Pool2D{LayerName: "stem.pool", Kind: layer.MaxPool, K: 3, Stride: 2}, id)
	mids := [4]int{64, 128, 256, 512}
	outs := [4]int{256, 512, 1024, 2048}
	for s := 0; s < 4; s++ {
		for b := 0; b < blocks[s]; b++ {
			stride := 1
			if b == 0 && s > 0 {
				stride = 2
			}
			prefix := fmt.Sprintf("stage%d.block%d", s+1, b)
			id = bottleneck(g, prefix, id, mids[s], outs[s], stride, b == 0)
		}
	}
	id = g.Add(&layer.GlobalAvgPool{LayerName: "gap"}, id)
	id = g.Add(&layer.Dense{LayerName: "fc", OutFeatures: 1000}, id)
	g.Add(&layer.Softmax{LayerName: "softmax"}, id)
	return finish(g)
}

// ResNet50 returns the 50-layer ImageNet ResNet (>25M parameters).
func ResNet50() *graph.Graph { return resNetImageNet("resnet50", [4]int{3, 4, 6, 3}) }

// ResNet200 returns the 200-layer ImageNet ResNet (>64M parameters).
func ResNet200() *graph.Graph { return resNetImageNet("resnet200", [4]int{3, 24, 36, 3}) }

// ResNet1001 returns the 1001-layer CIFAR-10 bottleneck ResNet
// (3 stages of 111 blocks; >10M parameters).
func ResNet1001() *graph.Graph {
	g := graph.New("resnet1001")
	id := g.Add(&layer.Input{LayerName: "input", Shape: tensor.CHW(3, 32, 32)})
	id = convBNReLU(g, "stem", id, 16, 3, 1, 1)
	mids := [3]int{16, 32, 64}
	outs := [3]int{64, 128, 256}
	const blocksPerStage = 111
	for s := 0; s < 3; s++ {
		for b := 0; b < blocksPerStage; b++ {
			stride := 1
			if b == 0 && s > 0 {
				stride = 2
			}
			prefix := fmt.Sprintf("stage%d.block%d", s+1, b)
			id = bottleneck(g, prefix, id, mids[s], outs[s], stride, b == 0)
		}
	}
	id = g.Add(&layer.GlobalAvgPool{LayerName: "gap"}, id)
	id = g.Add(&layer.Dense{LayerName: "fc", OutFeatures: 10}, id)
	g.Add(&layer.Softmax{LayerName: "softmax"}, id)
	return finish(g)
}

// ---------------------------------------------------------------------------
// WRN-28-10 (CIFAR-10 wide basic blocks)
// ---------------------------------------------------------------------------

// wideBasic appends one WRN basic block (3x3, 3x3, residual add).
func wideBasic(g *graph.Graph, prefix string, in graph.NodeID, out, stride int, project bool) graph.NodeID {
	a := convBNReLU(g, prefix+".a", in, out, 3, stride, 1)
	c := g.Add(&layer.Conv2D{LayerName: prefix + ".b.conv", OutChannels: out, K: 3, Stride: 1, Pad: 1}, a)
	cbn := g.Add(&layer.BatchNorm{LayerName: prefix + ".b.bn"}, c)
	skip := in
	if project {
		skip = g.Add(&layer.Conv2D{LayerName: prefix + ".proj", OutChannels: out, K: 1, Stride: stride, Pad: 0}, in)
	}
	add := g.Add(&layer.Add{LayerName: prefix + ".add"}, skip, cbn)
	return g.Add(&layer.ReLU{LayerName: prefix + ".relu"}, add)
}

// WRN28_10 returns the Wide ResNet 28-10 for CIFAR-10 (>36M parameters).
func WRN28_10() *graph.Graph {
	g := graph.New("wrn-28-10")
	id := g.Add(&layer.Input{LayerName: "input", Shape: tensor.CHW(3, 32, 32)})
	id = convBNReLU(g, "stem", id, 16, 3, 1, 1)
	widths := [3]int{160, 320, 640}
	const blocksPerStage = 4 // (28-4)/6
	for s := 0; s < 3; s++ {
		for b := 0; b < blocksPerStage; b++ {
			stride := 1
			if b == 0 && s > 0 {
				stride = 2
			}
			prefix := fmt.Sprintf("stage%d.block%d", s+1, b)
			id = wideBasic(g, prefix, id, widths[s], stride, b == 0)
		}
	}
	id = g.Add(&layer.GlobalAvgPool{LayerName: "gap"}, id)
	id = g.Add(&layer.Dense{LayerName: "fc", OutFeatures: 10}, id)
	g.Add(&layer.Softmax{LayerName: "softmax"}, id)
	return finish(g)
}

// ---------------------------------------------------------------------------
// VGG16 (ImageNet)
// ---------------------------------------------------------------------------

// VGG16 returns the 16-weight-layer VGG network (>130M parameters,
// dominated by the classifier head).
func VGG16() *graph.Graph {
	g := graph.New("vgg16")
	id := g.Add(&layer.Input{LayerName: "input", Shape: tensor.CHW(3, 224, 224)})
	cfg := []struct {
		convs, ch int
	}{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	for s, st := range cfg {
		for c := 0; c < st.convs; c++ {
			prefix := fmt.Sprintf("stage%d.conv%d", s+1, c)
			cv := g.Add(&layer.Conv2D{LayerName: prefix, OutChannels: st.ch, K: 3, Stride: 1, Pad: 1, Bias: true}, id)
			id = g.Add(&layer.ReLU{LayerName: prefix + ".relu"}, cv)
		}
		id = g.Add(&layer.Pool2D{LayerName: fmt.Sprintf("stage%d.pool", s+1), Kind: layer.MaxPool, K: 2, Stride: 2}, id)
	}
	id = g.Add(&layer.Flatten{LayerName: "flatten"}, id)
	id = g.Add(&layer.Dense{LayerName: "fc1", OutFeatures: 4096}, id)
	id = g.Add(&layer.ReLU{LayerName: "fc1.relu"}, id)
	id = g.Add(&layer.Dropout{LayerName: "fc1.drop", P: 0.5}, id)
	id = g.Add(&layer.Dense{LayerName: "fc2", OutFeatures: 4096}, id)
	id = g.Add(&layer.ReLU{LayerName: "fc2.relu"}, id)
	id = g.Add(&layer.Dropout{LayerName: "fc2.drop", P: 0.5}, id)
	id = g.Add(&layer.Dense{LayerName: "fc3", OutFeatures: 1000}, id)
	g.Add(&layer.Softmax{LayerName: "softmax"}, id)
	return finish(g)
}

// ---------------------------------------------------------------------------
// U-Net (ssTEM segmentation)
// ---------------------------------------------------------------------------

// UNet returns the 4-level U-Net (>31M parameters) with skip connections
// from the contracting to the expansive path — the non-affine connections
// that drive KARMA's recompute decisions in §III-F4. Padded 3x3 convs keep
// the spatial bookkeeping exact for a 512x512 single-channel input.
func UNet() *graph.Graph {
	g := graph.New("unet")
	id := g.Add(&layer.Input{LayerName: "input", Shape: tensor.CHW(1, 512, 512)})
	widths := []int{64, 128, 256, 512}
	var skips []graph.NodeID
	// Contracting path.
	for lvl, w := range widths {
		id = convBNReLU(g, fmt.Sprintf("down%d.a", lvl), id, w, 3, 1, 1)
		id = convBNReLU(g, fmt.Sprintf("down%d.b", lvl), id, w, 3, 1, 1)
		skips = append(skips, id)
		id = g.Add(&layer.Pool2D{LayerName: fmt.Sprintf("down%d.pool", lvl), Kind: layer.MaxPool, K: 2, Stride: 2}, id)
	}
	// Bottleneck.
	id = convBNReLU(g, "mid.a", id, 1024, 3, 1, 1)
	id = convBNReLU(g, "mid.b", id, 1024, 3, 1, 1)
	// Expansive path.
	for lvl := len(widths) - 1; lvl >= 0; lvl-- {
		w := widths[lvl]
		id = g.Add(&layer.Deconv2D{LayerName: fmt.Sprintf("up%d.deconv", lvl), OutChannels: w, K: 2, Stride: 2}, id)
		id = g.Add(&layer.Concat{LayerName: fmt.Sprintf("up%d.cat", lvl)}, skips[lvl], id)
		id = convBNReLU(g, fmt.Sprintf("up%d.a", lvl), id, w, 3, 1, 1)
		id = convBNReLU(g, fmt.Sprintf("up%d.b", lvl), id, w, 3, 1, 1)
	}
	id = g.Add(&layer.Conv2D{LayerName: "head", OutChannels: 2, K: 1, Stride: 1, Pad: 0, Bias: true}, id)
	g.Add(&layer.Softmax{LayerName: "softmax"}, id)
	return finish(g)
}

// ---------------------------------------------------------------------------
// Transformer language models (Megatron-LM, Turing-NLG)
// ---------------------------------------------------------------------------

// TransformerConfig parameterizes a GPT-2-style decoder language model as
// in Table IV of the paper (H = hidden size, A = attention heads,
// L = layers).
type TransformerConfig struct {
	Name   string `json:"name,omitempty"`
	Hidden int    `json:"hidden"`
	Heads  int    `json:"heads"`
	Layers int    `json:"layers"`
	Seq    int    `json:"seq"`
	Vocab  int    `json:"vocab"`
}

// TransformerByName returns the named transformer configuration: the
// five Table IV Megatron-LM sizes or the Fig. 8 Turing-NLG 17B. It is
// the registry request-driven callers (karma-serve) resolve config
// names against.
func TransformerByName(name string) (TransformerConfig, bool) {
	for _, c := range MegatronConfigs() {
		if c.Name == name {
			return c, true
		}
	}
	if t := TuringNLG(); t.Name == name {
		return t, true
	}
	return TransformerConfig{}, false
}

// Params returns the approximate trainable parameter count
// (12·L·H² for the blocks plus the embedding), the quantity the paper's
// Table IV "P" column reports.
func (c TransformerConfig) Params() int64 {
	h := int64(c.Hidden)
	return 12*int64(c.Layers)*h*h + int64(c.Vocab)*h
}

// ParamBytes returns the model-weight footprint at the given training
// precision — Params() at the regime's element size. The fp32 master
// copy of mixed precision is optimizer state, not model weights; add
// prec.MasterBytes of this quantity where the optimizer's residency
// matters (see internal/dist).
func (c TransformerConfig) ParamBytes(prec tensor.Precision) unit.Bytes {
	return unit.Bytes(c.Params()) * prec.DType().Size()
}

// Transformer builds the decoder LM graph for the configuration.
func Transformer(cfg TransformerConfig) *graph.Graph {
	g := graph.New(cfg.Name)
	id := g.Add(&layer.Input{LayerName: "tokens", Shape: tensor.Vec(cfg.Seq)})
	id = g.Add(&layer.Embedding{LayerName: "embed", Vocab: cfg.Vocab, Dim: cfg.Hidden}, id)
	for l := 0; l < cfg.Layers; l++ {
		p := fmt.Sprintf("layer%d", l)
		ln1 := g.Add(&layer.LayerNorm{LayerName: p + ".ln1"}, id)
		attn := g.Add(&layer.SelfAttention{LayerName: p + ".attn", Heads: cfg.Heads}, ln1)
		res1 := g.Add(&layer.Add{LayerName: p + ".res1"}, id, attn)
		ln2 := g.Add(&layer.LayerNorm{LayerName: p + ".ln2"}, res1)
		ff1 := g.Add(&layer.Dense{LayerName: p + ".ff1", OutFeatures: 4 * cfg.Hidden}, ln2)
		gelu := g.Add(&layer.GELU{LayerName: p + ".gelu"}, ff1)
		ff2 := g.Add(&layer.Dense{LayerName: p + ".ff2", OutFeatures: cfg.Hidden}, gelu)
		id = g.Add(&layer.Add{LayerName: p + ".res2"}, res1, ff2)
	}
	id = g.Add(&layer.LayerNorm{LayerName: "final.ln"}, id)
	// The LM head shares the embedding matrix (weight tying); modeled as a
	// zero-parameter position-wise softmax over hidden features to avoid
	// double-counting the embedding parameters.
	g.Add(&layer.Softmax{LayerName: "lm-head"}, id)
	return finish(g)
}

// Shard is a 1/mp slice of a Transformer under Megatron-LM tensor
// parallelism: every attention and MLP block splits column-parallel then
// row-parallel across the MP group, the embedding shards over the
// vocabulary, and the per-sample layer costs and intermediate tensor
// sizes all reflect the 1/mp share. The row-parallel outputs are partial
// sums, so the graph alone is not a runnable model — AllReduce marks
// where the MP group must synchronize.
type Shard struct {
	Graph  *graph.Graph
	Config TransformerConfig
	// MP is the tensor-parallel degree the shard was built for.
	MP int
	// AllReduce lists the nodes whose outputs are MP-group partial sums:
	// the row-parallel attention projection and second MLP GEMM of every
	// transformer layer (the two per-layer boundaries of Megatron-LM's
	// partitioning). Each costs one all-reduce of the boundary activation
	// in the forward pass and one of the matching input gradient in the
	// backward pass.
	AllReduce []graph.NodeID
	// EmbedAllReduce is the vocab-parallel embedding output, a forward-only
	// all-reduce (token indices carry no gradient). -1 when mp == 1.
	EmbedAllReduce graph.NodeID
}

// ceilDiv is integer division rounding up.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// attentionCore returns the weightless middle of a sharded attention
// block: scaled dot-product scores plus the value product over the
// shard's {seq, 3*hs} QKV slab, producing the {seq, hs} pre-projection
// context (§III-C.6's 2·S²·d term, at the shard's width).
func attentionCore(name string, seq, hs int) *layer.Custom {
	return &layer.Custom{
		LayerName: name,
		Infer: func(in []tensor.Shape) (tensor.Shape, error) {
			if len(in) != 1 || in[0].Rank() != 2 || in[0][1] != 3*hs {
				return nil, fmt.Errorf("layer %s: want {seq,%d} QKV input, got %v", name, 3*hs, in)
			}
			return tensor.Shape{in[0][0], hs}, nil
		},
		FLOPs: func(in []tensor.Shape, out tensor.Shape) int64 {
			// Scores S·S·hs plus the value product S·S·hs.
			return 2 * int64(seq) * int64(seq) * int64(hs)
		},
		Backward: 2.0,
	}
}

// TransformerShard builds one MP shard of the decoder LM: the per-layer
// tensor-parallel slice each GPU of a Megatron-LM MP group executes. With
// mp == 1 it is the full model in sharded form (decomposed attention, no
// collectives). The attention block becomes a column-parallel QKV
// projection, the weightless core, and a row-parallel output projection;
// the MLP becomes a column-parallel expansion and a row-parallel
// contraction; hidden slices round up when mp does not divide the width.
// TransformerShard panics on non-positive mp (a programming bug, matching
// the other builders).
func TransformerShard(cfg TransformerConfig, mp int) *Shard {
	if mp < 1 {
		panic(fmt.Sprintf("model %s: non-positive MP factor %d", cfg.Name, mp))
	}
	hs := ceilDiv(cfg.Hidden, mp)   // per-shard attention/head width
	fs := ceilDiv(4*cfg.Hidden, mp) // per-shard MLP expansion width
	vs := ceilDiv(cfg.Vocab, mp)    // per-shard vocabulary slice
	name := cfg.Name
	if mp > 1 {
		name = fmt.Sprintf("%s/mp%d", cfg.Name, mp)
	}
	g := graph.New(name)
	sh := &Shard{Graph: g, Config: cfg, MP: mp, EmbedAllReduce: -1}
	id := g.Add(&layer.Input{LayerName: "tokens", Shape: tensor.Vec(cfg.Seq)})
	id = g.Add(&layer.Embedding{LayerName: "embed", Vocab: vs, Dim: cfg.Hidden}, id)
	if mp > 1 {
		sh.EmbedAllReduce = id
	}
	for l := 0; l < cfg.Layers; l++ {
		p := fmt.Sprintf("layer%d", l)
		ln1 := g.Add(&layer.LayerNorm{LayerName: p + ".ln1"}, id)
		qkv := g.Add(&layer.Dense{LayerName: p + ".attn.qkv", OutFeatures: 3 * hs}, ln1)
		core := g.Add(attentionCore(p+".attn.core", cfg.Seq, hs), qkv)
		proj := g.Add(&layer.Dense{LayerName: p + ".attn.proj", OutFeatures: cfg.Hidden}, core)
		if mp > 1 {
			sh.AllReduce = append(sh.AllReduce, proj)
		}
		res1 := g.Add(&layer.Add{LayerName: p + ".res1"}, id, proj)
		ln2 := g.Add(&layer.LayerNorm{LayerName: p + ".ln2"}, res1)
		ff1 := g.Add(&layer.Dense{LayerName: p + ".ff1", OutFeatures: fs}, ln2)
		gelu := g.Add(&layer.GELU{LayerName: p + ".gelu"}, ff1)
		ff2 := g.Add(&layer.Dense{LayerName: p + ".ff2", OutFeatures: cfg.Hidden}, gelu)
		if mp > 1 {
			sh.AllReduce = append(sh.AllReduce, ff2)
		}
		id = g.Add(&layer.Add{LayerName: p + ".res2"}, res1, ff2)
	}
	id = g.Add(&layer.LayerNorm{LayerName: "final.ln"}, id)
	g.Add(&layer.Softmax{LayerName: "lm-head"}, id)
	finish(g)
	return sh
}

// MegatronConfigs returns the five Megatron-LM configurations of Table IV.
func MegatronConfigs() []TransformerConfig {
	const seq, vocab = 1024, 50304
	return []TransformerConfig{
		{Name: "megatron-0.3B", Hidden: 1152, Heads: 12, Layers: 18, Seq: seq, Vocab: vocab},
		{Name: "megatron-1.2B", Hidden: 1536, Heads: 16, Layers: 40, Seq: seq, Vocab: vocab},
		{Name: "megatron-2.5B", Hidden: 1920, Heads: 20, Layers: 54, Seq: seq, Vocab: vocab},
		{Name: "megatron-4.2B", Hidden: 2304, Heads: 24, Layers: 64, Seq: seq, Vocab: vocab},
		{Name: "megatron-8.3B", Hidden: 3072, Heads: 32, Layers: 72, Seq: seq, Vocab: vocab},
	}
}

// TuringNLG returns the 17B-parameter Turing-NLG configuration
// (78 layers, hidden 4256, 28 heads) used in Fig. 8.
func TuringNLG() TransformerConfig {
	return TransformerConfig{
		Name: "turing-nlg-17B", Hidden: 4256, Heads: 28, Layers: 78,
		Seq: 1024, Vocab: 50304,
	}
}

// ---------------------------------------------------------------------------
// Small test models and the registry
// ---------------------------------------------------------------------------

// LSTMLM returns a two-layer LSTM language model over 256-step sequences
// — the RNN workload class of §III-C.5 (attention-based translation
// decoders in the paper's taxonomy use the same recurrent cost path).
func LSTMLM() *graph.Graph {
	const (
		vocab  = 32000
		seq    = 256
		embed  = 512
		hidden = 1024
	)
	g := graph.New("lstm-lm")
	id := g.Add(&layer.Input{LayerName: "tokens", Shape: tensor.Vec(seq)})
	id = g.Add(&layer.Embedding{LayerName: "embed", Vocab: vocab, Dim: embed}, id)
	id = g.Add(&layer.LSTM{LayerName: "lstm1", Hidden: hidden}, id)
	id = g.Add(&layer.Dropout{LayerName: "drop1", P: 0.2}, id)
	id = g.Add(&layer.LSTM{LayerName: "lstm2", Hidden: hidden}, id)
	id = g.Add(&layer.Dropout{LayerName: "drop2", P: 0.2}, id)
	id = g.Add(&layer.Dense{LayerName: "proj", OutFeatures: vocab}, id)
	g.Add(&layer.Softmax{LayerName: "softmax"}, id)
	return finish(g)
}

// SmallCNN returns a tiny CIFAR-style CNN for fast tests and examples.
func SmallCNN() *graph.Graph {
	g := graph.New("smallcnn")
	id := g.Add(&layer.Input{LayerName: "input", Shape: tensor.CHW(3, 32, 32)})
	id = convBNReLU(g, "c1", id, 32, 3, 1, 1)
	id = g.Add(&layer.Pool2D{LayerName: "p1", Kind: layer.MaxPool, K: 2, Stride: 2}, id)
	id = convBNReLU(g, "c2", id, 64, 3, 1, 1)
	id = g.Add(&layer.Pool2D{LayerName: "p2", Kind: layer.MaxPool, K: 2, Stride: 2}, id)
	id = convBNReLU(g, "c3", id, 128, 3, 1, 1)
	id = g.Add(&layer.GlobalAvgPool{LayerName: "gap"}, id)
	id = g.Add(&layer.Dense{LayerName: "fc", OutFeatures: 10}, id)
	g.Add(&layer.Softmax{LayerName: "softmax"}, id)
	return finish(g)
}

// builders is the registry behind Build and Names.
var builders = map[string]func() *graph.Graph{
	"resnet50":       ResNet50,
	"resnet200":      ResNet200,
	"resnet1001":     ResNet1001,
	"vgg16":          VGG16,
	"wrn-28-10":      WRN28_10,
	"unet":           UNet,
	"lstm-lm":        LSTMLM,
	"smallcnn":       SmallCNN,
	"megatron-8.3B":  func() *graph.Graph { return Transformer(MegatronConfigs()[4]) },
	"megatron-2.5B":  func() *graph.Graph { return Transformer(MegatronConfigs()[2]) },
	"turing-nlg-17B": func() *graph.Graph { return Transformer(TuringNLG()) },
}

// Build constructs a model by registry name.
func Build(name string) (*graph.Graph, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("model: unknown model %q (have %v)", name, Names())
	}
	return b(), nil
}

// Names lists the registered model names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for k := range builders {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
