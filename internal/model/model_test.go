package model

import (
	"testing"

	"karma/internal/graph"
)

// paramRange asserts the parameter count lies in [lo, hi] (Table III).
func paramRange(t *testing.T, g *graph.Graph, lo, hi int64) {
	t.Helper()
	p := g.ParamCount()
	if p < lo || p > hi {
		t.Errorf("%s: %d params, want in [%d, %d]", g.Name(), p, lo, hi)
	}
}

func TestResNet50Params(t *testing.T) {
	// Table III: >25M. Canonical torchvision count is 25.6M.
	paramRange(t, ResNet50(), 25_000_000, 27_000_000)
}

func TestResNet200Params(t *testing.T) {
	// Table III: >64M.
	paramRange(t, ResNet200(), 63_000_000, 68_000_000)
}

func TestResNet1001Params(t *testing.T) {
	// Table III: >10M.
	paramRange(t, ResNet1001(), 10_000_000, 12_000_000)
}

func TestVGG16Params(t *testing.T) {
	// Canonical VGG16 is 138.4M (Table III reports >169M including
	// framework bookkeeping; we assert the canonical weight count).
	paramRange(t, VGG16(), 135_000_000, 142_000_000)
}

func TestWRNParams(t *testing.T) {
	// Table III: >36M. Canonical WRN-28-10 is 36.5M.
	paramRange(t, WRN28_10(), 36_000_000, 38_000_000)
}

func TestUNetParams(t *testing.T) {
	// Table III: >31M.
	paramRange(t, UNet(), 31_000_000, 36_000_000)
}

func TestMegatronParams(t *testing.T) {
	cfgs := MegatronConfigs()
	want := []struct {
		name string
		lo   int64
		hi   int64
	}{
		{"megatron-0.3B", 250e6, 500e6},
		{"megatron-1.2B", 1.1e9, 1.3e9},
		{"megatron-2.5B", 2.3e9, 2.7e9},
		{"megatron-4.2B", 4.0e9, 4.5e9},
		{"megatron-8.3B", 8.1e9, 8.6e9},
	}
	for i, w := range want {
		if cfgs[i].Name != w.name {
			t.Errorf("config %d: name %q, want %q", i, cfgs[i].Name, w.name)
		}
		p := cfgs[i].Params()
		if p < w.lo || p > w.hi {
			t.Errorf("%s: Params() = %d, want in [%d, %d]", w.name, p, w.lo, w.hi)
		}
	}
}

func TestMegatron8BGraphMatchesFormula(t *testing.T) {
	cfg := MegatronConfigs()[4]
	g := Transformer(cfg)
	got := g.ParamCount()
	want := cfg.Params()
	// Graph includes layer norms and biases the closed form omits; allow 2%.
	if diff := got - want; diff < 0 || float64(diff) > 0.02*float64(want) {
		t.Errorf("graph params %d vs formula %d", got, want)
	}
}

func TestTuringNLGParams(t *testing.T) {
	p := TuringNLG().Params()
	// Fig. 8: 17B parameters.
	if p < 16.5e9 || p > 17.5e9 {
		t.Errorf("Turing-NLG params = %d, want ~17B", p)
	}
}

func TestTransformerHeadsDivide(t *testing.T) {
	for _, cfg := range append(MegatronConfigs(), TuringNLG()) {
		if cfg.Hidden%cfg.Heads != 0 {
			t.Errorf("%s: hidden %d not divisible by heads %d", cfg.Name, cfg.Hidden, cfg.Heads)
		}
	}
}

func TestAllModelsValidate(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if name == "turing-nlg-17B" || name == "megatron-8.3B" {
				if testing.Short() {
					t.Skip("large transformer in -short mode")
				}
			}
			g, err := Build(name)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if g.Len() == 0 {
				t.Fatal("empty graph")
			}
			if g.FwdFLOPs() <= 0 {
				t.Error("non-positive forward FLOPs")
			}
		})
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("no-such-model"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestResNet50GraphSize(t *testing.T) {
	g := ResNet50()
	// 16 bottleneck blocks plus stem and head; each block is 11-13 nodes.
	if g.Len() < 150 || g.Len() > 250 {
		t.Errorf("resnet50 node count = %d, expected 150-250", g.Len())
	}
}

func TestResNet1001GraphSize(t *testing.T) {
	g := ResNet1001()
	if g.Len() < 3000 {
		t.Errorf("resnet1001 node count = %d, expected >3000", g.Len())
	}
}

func TestUNetHasPinnedSkips(t *testing.T) {
	g := UNet()
	// With a segmentation that cuts inside the skip region, the U-Net skip
	// edges must surface as pinned inputs (§III-F4 situation).
	segs := g.Segments(5)
	pinned := 0
	for _, s := range segs {
		pinned += len(s.PinnedIn)
	}
	if pinned == 0 {
		t.Error("U-Net should have pinned skip edges under loose segmentation")
	}
}

func TestResNetSegmentsCollapseResiduals(t *testing.T) {
	g := ResNet50()
	segs := g.Segments(1)
	// Strict segmentation must produce far fewer segments than nodes
	// (residual blocks collapse) but more than the number of stages.
	if len(segs) >= g.Len() || len(segs) < 10 {
		t.Errorf("resnet50 segments = %d of %d nodes", len(segs), g.Len())
	}
	for _, s := range segs {
		if len(s.PinnedIn) != 0 {
			t.Errorf("resnet50 strict segmentation should have no pinned edges, got %v", s.PinnedIn)
		}
	}
}

func TestMegatronSegments(t *testing.T) {
	cfg := MegatronConfigs()[0]
	g := Transformer(cfg)
	segs := g.Segments(1)
	// Each transformer layer has two residual spans; segmentation should
	// produce at least one segment per layer.
	if len(segs) < cfg.Layers {
		t.Errorf("megatron segments = %d, want >= %d", len(segs), cfg.Layers)
	}
}

func TestFLOPsScale(t *testing.T) {
	r50 := ResNet50().FwdFLOPs()
	// ResNet-50 forward is ~4 GFLOPs/sample (MAC-counted).
	if r50 < 3e9 || r50 > 6e9 {
		t.Errorf("resnet50 fwd FLOPs = %d, want ~4e9", r50)
	}
	vgg := VGG16().FwdFLOPs()
	// VGG16 is ~15.5 GFLOPs/sample, heavier than ResNet-50.
	if vgg <= r50 {
		t.Errorf("vgg16 (%d) should out-FLOP resnet50 (%d)", vgg, r50)
	}
}

func TestLSTMLM(t *testing.T) {
	g := LSTMLM()
	// Embedding 16.4M + 2 LSTM layers (~6.3M + 8.4M) + projection 32.8M.
	paramRange(t, g, 55_000_000, 75_000_000)
	if g.FwdFLOPs() <= 0 {
		t.Error("no forward work")
	}
	// Registry round trip.
	got, err := Build("lstm-lm")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got.ParamCount() != g.ParamCount() {
		t.Error("registry builder mismatch")
	}
}
