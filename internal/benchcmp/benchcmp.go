// Package benchcmp diffs two benchmark snapshots (the BENCH_<n>.json
// paper trail written by scripts/bench-snapshot.sh) and reports ns/op
// regressions. It is the comparison engine behind scripts/bench-compare
// and the nightly CI gate: a benchmark whose ns/op grew past the
// threshold fails the gate, while improvements, newly added benchmarks
// and removed benchmarks pass with a note. Reports list benchmarks in
// sorted-name order so the output is stable across runs.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Benchmark is one snapshot entry: the harness name, its ns/op, and
// every other numeric column the snapshot recorded (b.ReportMetric
// quantities, B/op, allocs/op) under its original key.
type Benchmark struct {
	Name       string
	Iterations int64
	NsPerOp    float64
	Metrics    map[string]float64
}

// UnmarshalJSON decodes the snapshot's open-keyed object form: "name"
// and "iterations" are fixed, "ns/op" is the gated quantity, and every
// remaining numeric key lands in Metrics verbatim.
func (b *Benchmark) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	nameRaw, ok := raw["name"]
	if !ok {
		return fmt.Errorf("benchcmp: benchmark entry missing \"name\"")
	}
	if err := json.Unmarshal(nameRaw, &b.Name); err != nil {
		return fmt.Errorf("benchcmp: bad benchmark name: %w", err)
	}
	if itersRaw, ok := raw["iterations"]; ok {
		if err := json.Unmarshal(itersRaw, &b.Iterations); err != nil {
			return fmt.Errorf("benchcmp: %s: bad iterations: %w", b.Name, err)
		}
	}
	nsRaw, ok := raw["ns/op"]
	if !ok {
		return fmt.Errorf("benchcmp: %s: missing \"ns/op\"", b.Name)
	}
	if err := json.Unmarshal(nsRaw, &b.NsPerOp); err != nil {
		return fmt.Errorf("benchcmp: %s: bad ns/op: %w", b.Name, err)
	}
	keys := make([]string, 0, len(raw))
	for k := range raw { //karma:det-ok keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic error attribution across runs
	b.Metrics = map[string]float64{}
	for _, k := range keys {
		switch k {
		case "name", "iterations", "ns/op":
			continue
		}
		var f float64
		if err := json.Unmarshal(raw[k], &f); err != nil {
			return fmt.Errorf("benchcmp: %s: metric %q is not numeric: %w", b.Name, k, err)
		}
		b.Metrics[k] = f
	}
	return nil
}

// Snapshot is one BENCH_<n>.json file.
type Snapshot struct {
	PR         json.RawMessage `json:"pr"` // number, or quoted label
	Date       string          `json:"date"`
	Go         string          `json:"go"`
	Benchtime  string          `json:"benchtime"`
	Samples    int             `json:"samples"` // best-of-N runs; 0 in pre-gate snapshots
	Benchmarks []Benchmark     `json:"benchmarks"`
}

// Load reads and validates a snapshot file. A missing file, malformed
// JSON, a duplicate benchmark name, or an entry without a usable ns/op
// all error cleanly — the gate must fail loudly, not diff garbage.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchcmp: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchcmp: %s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchcmp: %s: no benchmarks", path)
	}
	seen := map[string]bool{}
	for _, b := range s.Benchmarks {
		if seen[b.Name] {
			return nil, fmt.Errorf("benchcmp: %s: duplicate benchmark %q", path, b.Name)
		}
		seen[b.Name] = true
	}
	return &s, nil
}

// Delta is one benchmark present in both snapshots.
type Delta struct {
	Name      string
	OldNs     float64
	NewNs     float64
	Ratio     float64 // NewNs / OldNs
	Regressed bool    // Ratio exceeded the threshold
}

// Report is the outcome of comparing two snapshots.
type Report struct {
	// Threshold is the fractional ns/op growth that fails the gate
	// (0.10 = +10%).
	Threshold float64
	// Deltas covers benchmarks in both snapshots, sorted by name.
	Deltas []Delta
	// Added and Removed list benchmarks present in only one snapshot,
	// sorted; both pass the gate.
	Added, Removed []string
}

// Compare diffs old against new under the threshold. Only ns/op is
// gated: the reported model metrics are asserted bit-exactly by the
// golden tests, and allocation counts are advisory.
func Compare(old, new *Snapshot, threshold float64) (*Report, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("benchcmp: threshold %v must be positive", threshold)
	}
	oldBy := map[string]Benchmark{}
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	r := &Report{Threshold: threshold}
	newNames := map[string]bool{}
	for _, b := range new.Benchmarks {
		newNames[b.Name] = true
		ob, ok := oldBy[b.Name]
		if !ok {
			r.Added = append(r.Added, b.Name)
			continue
		}
		if ob.NsPerOp <= 0 {
			return nil, fmt.Errorf("benchcmp: %s: old ns/op %v is not positive", b.Name, ob.NsPerOp)
		}
		d := Delta{
			Name:  b.Name,
			OldNs: ob.NsPerOp,
			NewNs: b.NsPerOp,
			Ratio: b.NsPerOp / ob.NsPerOp,
		}
		d.Regressed = d.Ratio > 1+threshold
		r.Deltas = append(r.Deltas, d)
	}
	for _, b := range old.Benchmarks {
		if !newNames[b.Name] {
			r.Removed = append(r.Removed, b.Name)
		}
	}
	sort.Slice(r.Deltas, func(i, j int) bool { return r.Deltas[i].Name < r.Deltas[j].Name })
	sort.Strings(r.Added)
	sort.Strings(r.Removed)
	return r, nil
}

// Regressions returns the deltas that failed the gate, sorted by name.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// String renders the report: one line per compared benchmark with the
// ns/op ratio, regressions flagged, and added/removed benchmarks noted.
func (r *Report) String() string {
	var sb strings.Builder
	for _, d := range r.Deltas {
		mark := "ok  "
		if d.Regressed {
			mark = "FAIL"
		}
		fmt.Fprintf(&sb, "%s %-50s %14.0f -> %14.0f ns/op  (%+.1f%%)\n",
			mark, d.Name, d.OldNs, d.NewNs, (d.Ratio-1)*100)
	}
	for _, n := range r.Added {
		fmt.Fprintf(&sb, "new  %s (no baseline)\n", n)
	}
	for _, n := range r.Removed {
		fmt.Fprintf(&sb, "gone %s (removed from harness)\n", n)
	}
	if reg := r.Regressions(); len(reg) > 0 {
		fmt.Fprintf(&sb, "%d benchmark(s) regressed more than %.0f%%\n", len(reg), r.Threshold*100)
	}
	return sb.String()
}
