// Package benchcmp diffs two benchmark snapshots (the BENCH_<n>.json
// paper trail written by scripts/bench-snapshot.sh) and reports
// regressions along one or more gated dimensions: wall time (ns/op) and,
// when requested, allocation count (allocs/op) and allocated bytes
// (B/op). It is the comparison engine behind scripts/bench-compare and
// the nightly CI gate: a benchmark whose gated quantity grew past the
// threshold fails the gate, while improvements, newly added benchmarks
// and removed benchmarks pass with a note. Reports list benchmarks in
// sorted-name order so the output is stable across runs.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// The comparable snapshot dimensions. Time gates ns/op; Allocs and
// Bytes gate the -benchmem columns, so allocation regressions fail the
// nightly as loudly as time regressions.
const (
	DimTime   = "time"
	DimAllocs = "allocs"
	DimBytes  = "bytes"
)

// AllDims lists every comparable dimension in report order.
var AllDims = []string{DimTime, DimAllocs, DimBytes}

// ParseDims parses a comma-separated dimension list ("time,allocs,bytes")
// into dimension names, rejecting unknown names and duplicates.
func ParseDims(s string) ([]string, error) {
	var out []string
	for _, f := range strings.Split(s, ",") {
		d := strings.TrimSpace(f)
		switch d {
		case DimTime, DimAllocs, DimBytes:
		case "":
			return nil, fmt.Errorf("benchcmp: empty dimension in %q", s)
		default:
			return nil, fmt.Errorf("benchcmp: unknown dimension %q (want %s)", d, strings.Join(AllDims, ", "))
		}
		for _, seen := range out {
			if seen == d {
				return nil, fmt.Errorf("benchcmp: duplicate dimension %q", d)
			}
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchcmp: no dimensions in %q", s)
	}
	return out, nil
}

// Benchmark is one snapshot entry: the harness name, its ns/op, and
// every other numeric column the snapshot recorded (b.ReportMetric
// quantities, B/op, allocs/op) under its original key.
type Benchmark struct {
	Name       string
	Iterations int64
	NsPerOp    float64
	Metrics    map[string]float64
}

// UnmarshalJSON decodes the snapshot's open-keyed object form: "name"
// and "iterations" are fixed, "ns/op" is the gated quantity, and every
// remaining numeric key lands in Metrics verbatim.
func (b *Benchmark) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	nameRaw, ok := raw["name"]
	if !ok {
		return fmt.Errorf("benchcmp: benchmark entry missing \"name\"")
	}
	if err := json.Unmarshal(nameRaw, &b.Name); err != nil {
		return fmt.Errorf("benchcmp: bad benchmark name: %w", err)
	}
	if itersRaw, ok := raw["iterations"]; ok {
		if err := json.Unmarshal(itersRaw, &b.Iterations); err != nil {
			return fmt.Errorf("benchcmp: %s: bad iterations: %w", b.Name, err)
		}
	}
	nsRaw, ok := raw["ns/op"]
	if !ok {
		return fmt.Errorf("benchcmp: %s: missing \"ns/op\"", b.Name)
	}
	if err := json.Unmarshal(nsRaw, &b.NsPerOp); err != nil {
		return fmt.Errorf("benchcmp: %s: bad ns/op: %w", b.Name, err)
	}
	keys := make([]string, 0, len(raw))
	for k := range raw { //karma:det-ok keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic error attribution across runs
	b.Metrics = map[string]float64{}
	for _, k := range keys {
		switch k {
		case "name", "iterations", "ns/op":
			continue
		}
		var f float64
		if err := json.Unmarshal(raw[k], &f); err != nil {
			return fmt.Errorf("benchcmp: %s: metric %q is not numeric: %w", b.Name, k, err)
		}
		b.Metrics[k] = f
	}
	return nil
}

// Snapshot is one BENCH_<n>.json file.
type Snapshot struct {
	PR         json.RawMessage `json:"pr"` // number, or quoted label
	Date       string          `json:"date"`
	Go         string          `json:"go"`
	Benchtime  string          `json:"benchtime"`
	Samples    int             `json:"samples"` // best-of-N runs; 0 in pre-gate snapshots
	Benchmarks []Benchmark     `json:"benchmarks"`
}

// Load reads and validates a snapshot file. A missing file, malformed
// JSON, a duplicate benchmark name, or an entry without a usable ns/op
// all error cleanly — the gate must fail loudly, not diff garbage.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchcmp: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchcmp: %s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchcmp: %s: no benchmarks", path)
	}
	seen := map[string]bool{}
	for _, b := range s.Benchmarks {
		if seen[b.Name] {
			return nil, fmt.Errorf("benchcmp: %s: duplicate benchmark %q", path, b.Name)
		}
		seen[b.Name] = true
	}
	return &s, nil
}

// Delta is one benchmark present in both snapshots, compared along one
// dimension.
type Delta struct {
	Name      string
	Unit      string // "ns/op", "allocs/op" or "B/op"
	Old       float64
	New       float64
	Ratio     float64 // New / Old (+Inf when Old is 0 and New is not)
	Regressed bool    // Ratio exceeded the threshold
}

// Report is the outcome of comparing two snapshots.
type Report struct {
	// Threshold is the fractional growth that fails the gate
	// (0.10 = +10%), shared by every gated dimension.
	Threshold float64
	// Dims are the dimensions that were gated, in report order.
	Dims []string
	// Deltas covers benchmarks in both snapshots, sorted by name — the
	// ns/op section.
	Deltas []Delta
	// AllocDeltas and ByteDeltas are the allocs/op and B/op sections
	// (empty unless their dimension was gated). Benchmarks whose
	// snapshots predate -benchmem columns are skipped, not failed.
	AllocDeltas []Delta
	ByteDeltas  []Delta
	// Added and Removed list benchmarks present in only one snapshot,
	// sorted; both pass the gate.
	Added, Removed []string
}

// Compare diffs old against new under the threshold along the given
// dimensions; with none given only wall time (ns/op) is gated — the
// pre-allocation-gate behaviour. The reported model metrics are never
// gated here: they are asserted bit-exactly by the golden tests.
func Compare(old, new *Snapshot, threshold float64, dims ...string) (*Report, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("benchcmp: threshold %v must be positive", threshold)
	}
	if len(dims) == 0 {
		dims = []string{DimTime}
	}
	for _, d := range dims {
		switch d {
		case DimTime, DimAllocs, DimBytes:
		default:
			return nil, fmt.Errorf("benchcmp: unknown dimension %q (want %s)", d, strings.Join(AllDims, ", "))
		}
	}
	oldBy := map[string]Benchmark{}
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	r := &Report{Threshold: threshold, Dims: dims}
	dimOn := func(d string) bool {
		for _, v := range dims {
			if v == d {
				return true
			}
		}
		return false
	}
	newNames := map[string]bool{}
	for _, b := range new.Benchmarks {
		newNames[b.Name] = true
		ob, ok := oldBy[b.Name]
		if !ok {
			r.Added = append(r.Added, b.Name)
			continue
		}
		if dimOn(DimTime) {
			if ob.NsPerOp <= 0 {
				return nil, fmt.Errorf("benchcmp: %s: old ns/op %v is not positive", b.Name, ob.NsPerOp)
			}
			r.Deltas = append(r.Deltas, delta(b.Name, "ns/op", ob.NsPerOp, b.NsPerOp, threshold))
		}
		if dimOn(DimAllocs) {
			if o, n, ok := metricPair(ob, b, "allocs/op"); ok {
				r.AllocDeltas = append(r.AllocDeltas, delta(b.Name, "allocs/op", o, n, threshold))
			}
		}
		if dimOn(DimBytes) {
			if o, n, ok := metricPair(ob, b, "B/op"); ok {
				r.ByteDeltas = append(r.ByteDeltas, delta(b.Name, "B/op", o, n, threshold))
			}
		}
	}
	for _, b := range old.Benchmarks {
		if !newNames[b.Name] {
			r.Removed = append(r.Removed, b.Name)
		}
	}
	for _, ds := range [][]Delta{r.Deltas, r.AllocDeltas, r.ByteDeltas} {
		ds := ds
		sort.Slice(ds, func(i, j int) bool { return ds[i].Name < ds[j].Name })
	}
	sort.Strings(r.Added)
	sort.Strings(r.Removed)
	return r, nil
}

// metricPair extracts one -benchmem metric from both sides; a side that
// predates the column (old snapshots without -benchmem) skips the
// comparison rather than failing it.
func metricPair(old, new Benchmark, key string) (o, n float64, ok bool) {
	o, ook := old.Metrics[key]
	n, nok := new.Metrics[key]
	return o, n, ook && nok
}

// delta compares one quantity. Old == 0 is legitimate for allocation
// dimensions (an allocation-free benchmark); growth from zero is a
// regression with an infinite ratio, staying at zero is a ratio of 1.
func delta(name, unit string, old, new, threshold float64) Delta {
	d := Delta{Name: name, Unit: unit, Old: old, New: new}
	switch {
	case old == 0 && new == 0:
		d.Ratio = 1
	case old == 0:
		d.Ratio = math.Inf(1)
	default:
		d.Ratio = new / old
	}
	d.Regressed = d.Ratio > 1+threshold
	return d
}

// Regressions returns the deltas that failed the gate across every
// gated dimension, in section order (time, allocs, bytes), sorted by
// name within each.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, ds := range [][]Delta{r.Deltas, r.AllocDeltas, r.ByteDeltas} {
		for _, d := range ds {
			if d.Regressed {
				out = append(out, d)
			}
		}
	}
	return out
}

// String renders the report: one section per gated dimension with one
// line per compared benchmark, regressions flagged, and added/removed
// benchmarks noted.
func (r *Report) String() string {
	var sb strings.Builder
	section := func(title string, ds []Delta) {
		if len(ds) == 0 {
			return
		}
		if title != "" {
			fmt.Fprintf(&sb, "%s:\n", title)
		}
		for _, d := range ds {
			mark := "ok  "
			if d.Regressed {
				mark = "FAIL"
			}
			fmt.Fprintf(&sb, "%s %-50s %14.0f -> %14.0f %s  (%+.1f%%)\n",
				mark, d.Name, d.Old, d.New, d.Unit, (d.Ratio-1)*100)
		}
	}
	// The time section keeps its historical headerless form; the
	// allocation sections are labelled.
	section("", r.Deltas)
	section("allocs/op", r.AllocDeltas)
	section("B/op", r.ByteDeltas)
	for _, n := range r.Added {
		fmt.Fprintf(&sb, "new  %s (no baseline)\n", n)
	}
	for _, n := range r.Removed {
		fmt.Fprintf(&sb, "gone %s (removed from harness)\n", n)
	}
	if reg := r.Regressions(); len(reg) > 0 {
		fmt.Fprintf(&sb, "%d benchmark(s) regressed more than %.0f%%\n", len(reg), r.Threshold*100)
	}
	return sb.String()
}
