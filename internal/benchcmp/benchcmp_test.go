package benchcmp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(t *testing.T, benchmarks ...Benchmark) *Snapshot {
	t.Helper()
	return &Snapshot{Benchmarks: benchmarks}
}

func bench(name string, ns float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, NsPerOp: ns}
}

func TestCompareRegressionDetected(t *testing.T) {
	old := snap(t, bench("BenchmarkA", 100), bench("BenchmarkB", 200))
	cur := snap(t, bench("BenchmarkA", 111), bench("BenchmarkB", 200))
	r, err := Compare(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	reg := r.Regressions()
	if len(reg) != 1 || reg[0].Name != "BenchmarkA" {
		t.Fatalf("regressions = %+v, want exactly BenchmarkA", reg)
	}
	if got := reg[0].Ratio; got <= 1.10 {
		t.Errorf("ratio = %v, want > 1.10", got)
	}
	if !strings.Contains(r.String(), "FAIL BenchmarkA") {
		t.Errorf("report does not flag the regression:\n%s", r)
	}
}

func TestCompareBoundaryIsNotRegression(t *testing.T) {
	// Exactly +10% sits on the threshold and passes; the gate fires on
	// strictly-greater growth.
	old := snap(t, bench("BenchmarkA", 100))
	cur := snap(t, bench("BenchmarkA", 110))
	r, err := Compare(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Regressions()) != 0 {
		t.Fatalf("boundary +10%% flagged as regression: %+v", r.Regressions())
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	old := snap(t, bench("BenchmarkA", 1000))
	cur := snap(t, bench("BenchmarkA", 250))
	r, err := Compare(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Regressions()) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", r.Regressions())
	}
	if !strings.Contains(r.String(), "-75.0%") {
		t.Errorf("report does not show the improvement:\n%s", r)
	}
}

func TestCompareAddedAndRemovedPass(t *testing.T) {
	old := snap(t, bench("BenchmarkGone", 100), bench("BenchmarkKept", 100))
	cur := snap(t, bench("BenchmarkKept", 100), bench("BenchmarkNew", 9e9))
	r, err := Compare(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Regressions()) != 0 {
		t.Fatalf("added/removed flagged as regression: %+v", r.Regressions())
	}
	if len(r.Added) != 1 || r.Added[0] != "BenchmarkNew" {
		t.Errorf("Added = %v, want [BenchmarkNew]", r.Added)
	}
	if len(r.Removed) != 1 || r.Removed[0] != "BenchmarkGone" {
		t.Errorf("Removed = %v, want [BenchmarkGone]", r.Removed)
	}
}

func TestCompareDeterministicOrder(t *testing.T) {
	// Input order scrambled; the report must sort by name.
	old := snap(t, bench("BenchmarkC", 100), bench("BenchmarkA", 100), bench("BenchmarkB", 100))
	cur := snap(t, bench("BenchmarkB", 500), bench("BenchmarkC", 500), bench("BenchmarkA", 500))
	r, err := Compare(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"BenchmarkA", "BenchmarkB", "BenchmarkC"} {
		if r.Deltas[i].Name != want {
			t.Fatalf("Deltas[%d] = %s, want %s", i, r.Deltas[i].Name, want)
		}
	}
}

func TestCompareBadInputs(t *testing.T) {
	good := snap(t, bench("BenchmarkA", 100))
	if _, err := Compare(good, good, 0); err == nil {
		t.Error("zero threshold accepted")
	}
	zeroNs := snap(t, bench("BenchmarkA", 0))
	if _, err := Compare(zeroNs, good, 0.10); err == nil {
		t.Error("non-positive old ns/op accepted")
	}
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRealFormat(t *testing.T) {
	path := writeFile(t, "bench.json", `{
  "pr": 6,
  "date": "2026-08-07",
  "go": "go1.24.0",
  "benchtime": "1x",
  "benchmarks": [
    {"name": "BenchmarkFigure8Turing/planned", "iterations": 1, "ns/op": 367894047, "x-zero+karma-vs-zero": 1.906, "B/op": 396482896, "allocs/op": 521646}
  ]
}`)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	b := s.Benchmarks[0]
	if b.Name != "BenchmarkFigure8Turing/planned" || b.NsPerOp != 367894047 {
		t.Fatalf("decoded %+v", b)
	}
	if b.Metrics["x-zero+karma-vs-zero"] != 1.906 {
		t.Errorf("headline metric lost: %v", b.Metrics)
	}
	if s.Samples != 0 {
		t.Errorf("pre-gate snapshot Samples = %d, want 0", s.Samples)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"missing":   "",
		"malformed": `{"benchmarks": [`,
		"empty":     `{"benchmarks": []}`,
		"noname":    `{"benchmarks": [{"ns/op": 1}]}`,
		"nons":      `{"benchmarks": [{"name": "BenchmarkA"}]}`,
		"badns":     `{"benchmarks": [{"name": "BenchmarkA", "ns/op": "fast"}]}`,
		"dup":       `{"benchmarks": [{"name": "BenchmarkA", "ns/op": 1}, {"name": "BenchmarkA", "ns/op": 2}]}`,
	}
	for label, content := range cases {
		t.Run(label, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bench.json")
			if label != "missing" {
				if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := Load(path); err == nil {
				t.Errorf("Load(%s) accepted bad input", label)
			}
		})
	}
}

func TestLoadCommittedSnapshots(t *testing.T) {
	// Every committed BENCH_<n>.json must stay loadable — the gate diffs
	// against them.
	matches, err := filepath.Glob("../../BENCH_*.json")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no committed snapshots found (err=%v)", err)
	}
	for _, m := range matches {
		if _, err := Load(m); err != nil {
			t.Errorf("Load(%s): %v", m, err)
		}
	}
}

func benchMem(name string, ns, allocs, bytes float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, NsPerOp: ns,
		Metrics: map[string]float64{"allocs/op": allocs, "B/op": bytes}}
}

func TestCompareAllocDimensions(t *testing.T) {
	// Time is flat; allocs regressed +50%, bytes improved. Gating all
	// three dimensions must flag exactly the allocation regression, in
	// its own section.
	old := snap(t, benchMem("BenchmarkA", 100, 1000, 4096))
	cur := snap(t, benchMem("BenchmarkA", 100, 1500, 2048))
	r, err := Compare(old, cur, 0.10, AllDims...)
	if err != nil {
		t.Fatal(err)
	}
	reg := r.Regressions()
	if len(reg) != 1 || reg[0].Unit != "allocs/op" {
		t.Fatalf("regressions = %+v, want one allocs/op entry", reg)
	}
	if len(r.Deltas) != 1 || len(r.AllocDeltas) != 1 || len(r.ByteDeltas) != 1 {
		t.Fatalf("sections = %d/%d/%d, want 1/1/1", len(r.Deltas), len(r.AllocDeltas), len(r.ByteDeltas))
	}
	out := r.String()
	if !strings.Contains(out, "allocs/op:") || !strings.Contains(out, "B/op:") {
		t.Errorf("report lacks dimension sections:\n%s", out)
	}
	if !strings.Contains(out, "FAIL BenchmarkA") {
		t.Errorf("report does not flag the alloc regression:\n%s", out)
	}
}

func TestCompareAllocBoundaryAndImprovement(t *testing.T) {
	// Same >10% threshold as time: exactly +10% passes, improvements
	// pass.
	old := snap(t, benchMem("BenchmarkA", 100, 1000, 1000))
	cur := snap(t, benchMem("BenchmarkA", 100, 1100, 100))
	r, err := Compare(old, cur, 0.10, DimAllocs, DimBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Regressions()) != 0 {
		t.Fatalf("boundary/improvement flagged: %+v", r.Regressions())
	}
	if len(r.Deltas) != 0 {
		t.Fatalf("time section populated without the time dimension: %+v", r.Deltas)
	}
}

func TestCompareAllocMissingBaselineSkipped(t *testing.T) {
	// A baseline that predates -benchmem columns cannot gate allocations;
	// the benchmark is skipped on those dimensions, not failed.
	old := snap(t, bench("BenchmarkA", 100))
	cur := snap(t, benchMem("BenchmarkA", 100, 99999, 99999))
	r, err := Compare(old, cur, 0.10, AllDims...)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Regressions()) != 0 {
		t.Fatalf("missing baseline columns flagged: %+v", r.Regressions())
	}
	if len(r.AllocDeltas) != 0 || len(r.ByteDeltas) != 0 {
		t.Fatalf("alloc sections populated without baseline columns: %+v %+v", r.AllocDeltas, r.ByteDeltas)
	}
}

func TestCompareAllocGrowthFromZero(t *testing.T) {
	// 0 -> n allocations is a regression (infinite ratio); 0 -> 0 passes.
	old := snap(t, benchMem("BenchmarkA", 100, 0, 0), benchMem("BenchmarkB", 100, 0, 0))
	cur := snap(t, benchMem("BenchmarkA", 100, 7, 0), benchMem("BenchmarkB", 100, 0, 0))
	r, err := Compare(old, cur, 0.10, DimAllocs)
	if err != nil {
		t.Fatal(err)
	}
	reg := r.Regressions()
	if len(reg) != 1 || reg[0].Name != "BenchmarkA" {
		t.Fatalf("regressions = %+v, want exactly BenchmarkA", reg)
	}
}

func TestParseDims(t *testing.T) {
	got, err := ParseDims("time,allocs,bytes")
	if err != nil || len(got) != 3 {
		t.Fatalf("ParseDims = %v, %v", got, err)
	}
	for _, bad := range []string{"", "time,", "speed", "time,time"} {
		if _, err := ParseDims(bad); err == nil {
			t.Errorf("ParseDims(%q) accepted", bad)
		}
	}
}
