// Package layer defines the layer taxonomy and the analytic compute/memory
// cost model of paper §III-C. Each layer reports, per sample:
//
//   - its output shape given input shape(s) (shape inference),
//   - forward FLOPs using the operation counts of §III-C,
//   - a backward-to-forward work factor,
//   - its trainable parameter count.
//
// The planner uses these as the compute proxy ("the aggregate number of
// arithmetic operations for all layers in the block") and the profiler
// turns shapes into byte footprints.
package layer

import (
	"fmt"

	"karma/internal/tensor"
)

// Layer is the interface all concrete layers implement.
//
// All FLOP counts are per sample; the cost model scales them linearly with
// the mini-batch size, which the paper's formulas also do (the only
// sub-linear term, batch-norm's 3·|B|, is negligible and folded in).
type Layer interface {
	// Name returns the human-readable layer name (unique within a model).
	Name() string
	// InferShape returns the per-sample output shape for the given
	// per-sample input shapes, or an error when arity or extents are
	// incompatible.
	InferShape(in []tensor.Shape) (tensor.Shape, error)
	// FwdFLOPs returns forward-pass operations per sample, given the
	// already-inferred input and output shapes.
	FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64
	// BwdFactor returns the backward/forward work ratio. Layers with
	// trainable weights need two products in backward (grad-input and
	// grad-weight) and use 2.0; element-wise layers use 1.0.
	BwdFactor() float64
	// ParamCount returns the number of trainable parameters.
	ParamCount(in []tensor.Shape) int64
}

// arity checks the expected number of inputs.
func arity(name string, in []tensor.Shape, want int) error {
	if len(in) != want {
		return fmt.Errorf("layer %s: got %d inputs, want %d", name, len(in), want)
	}
	return nil
}

// convOut computes one spatial output extent.
func convOut(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// ---------------------------------------------------------------------------
// Input
// ---------------------------------------------------------------------------

// Input is the source pseudo-layer carrying the per-sample input shape.
type Input struct {
	LayerName string
	Shape     tensor.Shape
}

// Name implements Layer.
func (l *Input) Name() string { return l.LayerName }

// InferShape implements Layer; the input layer takes no inputs.
func (l *Input) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 0); err != nil {
		return nil, err
	}
	return l.Shape.Clone(), nil
}

// FwdFLOPs implements Layer; producing the input is free.
func (l *Input) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 { return 0 }

// BwdFactor implements Layer.
func (l *Input) BwdFactor() float64 { return 0 }

// ParamCount implements Layer.
func (l *Input) ParamCount(in []tensor.Shape) int64 { return 0 }

// ---------------------------------------------------------------------------
// Conv2D
// ---------------------------------------------------------------------------

// Conv2D is a 2-D convolution over CHW inputs.
// §III-C.1: operations = |Y|·K·K·C_in  (one fused multiply-add per tap).
type Conv2D struct {
	LayerName      string
	OutChannels    int
	K, Stride, Pad int
	// Bias adds C_out parameters when true (ResNet convs have no bias).
	Bias bool
}

// Name implements Layer.
func (l *Conv2D) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *Conv2D) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	s := in[0]
	if s.Rank() != 3 {
		return nil, fmt.Errorf("layer %s: conv2d wants CHW input, got %v", l.LayerName, s)
	}
	h := convOut(s[1], l.K, l.Stride, l.Pad)
	w := convOut(s[2], l.K, l.Stride, l.Pad)
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("layer %s: conv2d output collapses to %dx%d", l.LayerName, h, w)
	}
	return tensor.CHW(l.OutChannels, h, w), nil
}

// FwdFLOPs implements Layer.
func (l *Conv2D) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	cin := int64(in[0][0])
	return out.Elems() * int64(l.K) * int64(l.K) * cin
}

// BwdFactor implements Layer: grad-input plus grad-weight.
func (l *Conv2D) BwdFactor() float64 { return 2.0 }

// ParamCount implements Layer.
func (l *Conv2D) ParamCount(in []tensor.Shape) int64 {
	cin := int64(in[0][0])
	n := int64(l.K) * int64(l.K) * cin * int64(l.OutChannels)
	if l.Bias {
		n += int64(l.OutChannels)
	}
	return n
}

// ---------------------------------------------------------------------------
// Deconv2D (transposed convolution, U-Net expansive path)
// ---------------------------------------------------------------------------

// Deconv2D is a stride-S transposed convolution that upsamples by S.
type Deconv2D struct {
	LayerName   string
	OutChannels int
	K, Stride   int
}

// Name implements Layer.
func (l *Deconv2D) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *Deconv2D) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	s := in[0]
	if s.Rank() != 3 {
		return nil, fmt.Errorf("layer %s: deconv2d wants CHW input, got %v", l.LayerName, s)
	}
	return tensor.CHW(l.OutChannels, s[1]*l.Stride, s[2]*l.Stride), nil
}

// FwdFLOPs implements Layer: same tap count as the matching convolution.
func (l *Deconv2D) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	cin := int64(in[0][0])
	return out.Elems() * int64(l.K) * int64(l.K) * cin / int64(l.Stride*l.Stride)
}

// BwdFactor implements Layer.
func (l *Deconv2D) BwdFactor() float64 { return 2.0 }

// ParamCount implements Layer.
func (l *Deconv2D) ParamCount(in []tensor.Shape) int64 {
	cin := int64(in[0][0])
	return int64(l.K) * int64(l.K) * cin * int64(l.OutChannels)
}

// ---------------------------------------------------------------------------
// Element-wise activations
// ---------------------------------------------------------------------------

// ReLU applies y = max(0, x). §III-C.2: |Y| comparison operations.
type ReLU struct{ LayerName string }

// Name implements Layer.
func (l *ReLU) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *ReLU) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	return in[0].Clone(), nil
}

// FwdFLOPs implements Layer.
func (l *ReLU) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 { return out.Elems() }

// BwdFactor implements Layer.
func (l *ReLU) BwdFactor() float64 { return 1.0 }

// ParamCount implements Layer.
func (l *ReLU) ParamCount(in []tensor.Shape) int64 { return 0 }

// GELU applies the Gaussian error linear unit (Transformer FFNs).
// The tanh approximation costs roughly 8 ops per element.
type GELU struct{ LayerName string }

// Name implements Layer.
func (l *GELU) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *GELU) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	return in[0].Clone(), nil
}

// FwdFLOPs implements Layer.
func (l *GELU) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 { return 8 * out.Elems() }

// BwdFactor implements Layer.
func (l *GELU) BwdFactor() float64 { return 1.0 }

// ParamCount implements Layer.
func (l *GELU) ParamCount(in []tensor.Shape) int64 { return 0 }

// Dropout zeroes a fraction of activations during training.
type Dropout struct {
	LayerName string
	P         float64
}

// Name implements Layer.
func (l *Dropout) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *Dropout) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	return in[0].Clone(), nil
}

// FwdFLOPs implements Layer: one mask multiply per element.
func (l *Dropout) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 { return out.Elems() }

// BwdFactor implements Layer.
func (l *Dropout) BwdFactor() float64 { return 1.0 }

// ParamCount implements Layer.
func (l *Dropout) ParamCount(in []tensor.Shape) int64 { return 0 }

// ---------------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------------

// PoolKind selects the pooling reduction.
type PoolKind int

// Pooling reductions.
const (
	MaxPool PoolKind = iota
	AvgPool
)

// Pool2D reduces spatial extent. §III-C.3: |Y|·K·K·c operations with the
// multiplier c adjusted to the pooling type.
type Pool2D struct {
	LayerName string
	Kind      PoolKind
	K, Stride int
}

// Name implements Layer.
func (l *Pool2D) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *Pool2D) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	s := in[0]
	if s.Rank() != 3 {
		return nil, fmt.Errorf("layer %s: pool2d wants CHW input, got %v", l.LayerName, s)
	}
	h := convOut(s[1], l.K, l.Stride, 0)
	w := convOut(s[2], l.K, l.Stride, 0)
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("layer %s: pool2d output collapses to %dx%d", l.LayerName, h, w)
	}
	return tensor.CHW(s[0], h, w), nil
}

// FwdFLOPs implements Layer.
func (l *Pool2D) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	c := int64(1) // max: one comparison per tap
	if l.Kind == AvgPool {
		c = 1 // avg: one add per tap (final divide amortizes to ~0)
	}
	return out.Elems() * int64(l.K) * int64(l.K) * c
}

// BwdFactor implements Layer.
func (l *Pool2D) BwdFactor() float64 { return 1.0 }

// ParamCount implements Layer.
func (l *Pool2D) ParamCount(in []tensor.Shape) int64 { return 0 }

// GlobalAvgPool collapses H and W to 1.
type GlobalAvgPool struct{ LayerName string }

// Name implements Layer.
func (l *GlobalAvgPool) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *GlobalAvgPool) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	s := in[0]
	if s.Rank() != 3 {
		return nil, fmt.Errorf("layer %s: global pool wants CHW input, got %v", l.LayerName, s)
	}
	return tensor.Vec(s[0]), nil
}

// FwdFLOPs implements Layer: one add per input element.
func (l *GlobalAvgPool) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	return in[0].Elems()
}

// BwdFactor implements Layer.
func (l *GlobalAvgPool) BwdFactor() float64 { return 1.0 }

// ParamCount implements Layer.
func (l *GlobalAvgPool) ParamCount(in []tensor.Shape) int64 { return 0 }

// ---------------------------------------------------------------------------
// Normalization
// ---------------------------------------------------------------------------

// BatchNorm normalizes per channel across the batch.
// §III-C.4: 3·|B| + 4·|X| + 2·|Y| ≈ 6·|X| per sample.
type BatchNorm struct{ LayerName string }

// Name implements Layer.
func (l *BatchNorm) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *BatchNorm) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	return in[0].Clone(), nil
}

// FwdFLOPs implements Layer.
func (l *BatchNorm) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	return 6 * out.Elems()
}

// BwdFactor implements Layer.
func (l *BatchNorm) BwdFactor() float64 { return 1.5 }

// ParamCount implements Layer: scale and shift per channel.
func (l *BatchNorm) ParamCount(in []tensor.Shape) int64 { return 2 * int64(in[0][0]) }

// LayerNorm normalizes over the feature dimension (Transformers).
type LayerNorm struct{ LayerName string }

// Name implements Layer.
func (l *LayerNorm) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *LayerNorm) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	return in[0].Clone(), nil
}

// FwdFLOPs implements Layer.
func (l *LayerNorm) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	return 8 * out.Elems()
}

// BwdFactor implements Layer.
func (l *LayerNorm) BwdFactor() float64 { return 1.5 }

// ParamCount implements Layer: gain and bias over the last dimension.
func (l *LayerNorm) ParamCount(in []tensor.Shape) int64 {
	s := in[0]
	return 2 * int64(s[s.Rank()-1])
}

// ---------------------------------------------------------------------------
// Dense / classifier heads
// ---------------------------------------------------------------------------

// Flatten reshapes any input to a vector.
type Flatten struct{ LayerName string }

// Name implements Layer.
func (l *Flatten) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *Flatten) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	return tensor.Vec(int(in[0].Elems())), nil
}

// FwdFLOPs implements Layer: a reshape moves no data in practice.
func (l *Flatten) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 { return 0 }

// BwdFactor implements Layer.
func (l *Flatten) BwdFactor() float64 { return 0 }

// ParamCount implements Layer.
func (l *Flatten) ParamCount(in []tensor.Shape) int64 { return 0 }

// Dense is a fully-connected layer.
// §III-C.7: operations = |W| = |X|·|Y|.
type Dense struct {
	LayerName   string
	OutFeatures int
}

// Name implements Layer.
func (l *Dense) Name() string { return l.LayerName }

// InferShape implements Layer. A rank-2 input {seq, features} keeps its
// sequence dimension (Transformer position-wise application).
func (l *Dense) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	switch s := in[0]; s.Rank() {
	case 1:
		return tensor.Vec(l.OutFeatures), nil
	case 2:
		return tensor.Shape{s[0], l.OutFeatures}, nil
	default:
		return nil, fmt.Errorf("layer %s: dense wants rank-1/2 input, got %v", l.LayerName, s)
	}
}

// FwdFLOPs implements Layer.
func (l *Dense) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	s := in[0]
	feat := int64(s[s.Rank()-1])
	return out.Elems() * feat
}

// BwdFactor implements Layer.
func (l *Dense) BwdFactor() float64 { return 2.0 }

// ParamCount implements Layer.
func (l *Dense) ParamCount(in []tensor.Shape) int64 {
	s := in[0]
	feat := int64(s[s.Rank()-1])
	return feat*int64(l.OutFeatures) + int64(l.OutFeatures)
}

// Softmax normalizes to a probability distribution.
// §III-C.8: 2·|X| operations.
type Softmax struct{ LayerName string }

// Name implements Layer.
func (l *Softmax) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *Softmax) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	return in[0].Clone(), nil
}

// FwdFLOPs implements Layer.
func (l *Softmax) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	return 2 * out.Elems()
}

// BwdFactor implements Layer.
func (l *Softmax) BwdFactor() float64 { return 1.0 }

// ParamCount implements Layer.
func (l *Softmax) ParamCount(in []tensor.Shape) int64 { return 0 }

// ---------------------------------------------------------------------------
// Merge layers (residuals, skip connections)
// ---------------------------------------------------------------------------

// Add sums its inputs element-wise (residual connections).
type Add struct{ LayerName string }

// Name implements Layer.
func (l *Add) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *Add) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) < 2 {
		return nil, fmt.Errorf("layer %s: add wants >=2 inputs, got %d", l.LayerName, len(in))
	}
	for _, s := range in[1:] {
		if !s.Equal(in[0]) {
			return nil, fmt.Errorf("layer %s: add shape mismatch %v vs %v", l.LayerName, in[0], s)
		}
	}
	return in[0].Clone(), nil
}

// FwdFLOPs implements Layer.
func (l *Add) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	return int64(len(in)-1) * out.Elems()
}

// BwdFactor implements Layer.
func (l *Add) BwdFactor() float64 { return 1.0 }

// ParamCount implements Layer.
func (l *Add) ParamCount(in []tensor.Shape) int64 { return 0 }

// Concat concatenates along the channel dimension (U-Net skip connections).
type Concat struct{ LayerName string }

// Name implements Layer.
func (l *Concat) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *Concat) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) < 2 {
		return nil, fmt.Errorf("layer %s: concat wants >=2 inputs, got %d", l.LayerName, len(in))
	}
	c := 0
	for _, s := range in {
		if s.Rank() != 3 {
			return nil, fmt.Errorf("layer %s: concat wants CHW inputs, got %v", l.LayerName, s)
		}
		if s[1] != in[0][1] || s[2] != in[0][2] {
			return nil, fmt.Errorf("layer %s: concat spatial mismatch %v vs %v", l.LayerName, in[0], s)
		}
		c += s[0]
	}
	return tensor.CHW(c, in[0][1], in[0][2]), nil
}

// FwdFLOPs implements Layer: a pure copy, counted as one op per element.
func (l *Concat) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 { return out.Elems() }

// BwdFactor implements Layer.
func (l *Concat) BwdFactor() float64 { return 1.0 }

// ParamCount implements Layer.
func (l *Concat) ParamCount(in []tensor.Shape) int64 { return 0 }

// ---------------------------------------------------------------------------
// Sequence layers
// ---------------------------------------------------------------------------

// Embedding maps token ids to vectors. Input shape is {seq} (ids); output
// is {seq, dim}.
type Embedding struct {
	LayerName string
	Vocab     int
	Dim       int
}

// Name implements Layer.
func (l *Embedding) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *Embedding) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	s := in[0]
	if s.Rank() != 1 {
		return nil, fmt.Errorf("layer %s: embedding wants {seq} input, got %v", l.LayerName, s)
	}
	return tensor.Shape{s[0], l.Dim}, nil
}

// FwdFLOPs implements Layer: a gather, one op per output element.
func (l *Embedding) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 { return out.Elems() }

// BwdFactor implements Layer.
func (l *Embedding) BwdFactor() float64 { return 1.0 }

// ParamCount implements Layer.
func (l *Embedding) ParamCount(in []tensor.Shape) int64 {
	return int64(l.Vocab) * int64(l.Dim)
}

// LSTM is a recurrent layer over a {seq, features} input.
// §III-C.5: the gate combination costs 20·|Y|; the dominating cost is the
// four gate products 4·(in+hidden)·hidden per step.
type LSTM struct {
	LayerName string
	Hidden    int
}

// Name implements Layer.
func (l *LSTM) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *LSTM) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	s := in[0]
	if s.Rank() != 2 {
		return nil, fmt.Errorf("layer %s: lstm wants {seq,features} input, got %v", l.LayerName, s)
	}
	return tensor.Shape{s[0], l.Hidden}, nil
}

// FwdFLOPs implements Layer.
func (l *LSTM) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	seq := int64(in[0][0])
	inF := int64(in[0][1])
	h := int64(l.Hidden)
	perStep := 4*(inF+h)*h + 20*h
	return seq * perStep
}

// BwdFactor implements Layer.
func (l *LSTM) BwdFactor() float64 { return 2.0 }

// ParamCount implements Layer.
func (l *LSTM) ParamCount(in []tensor.Shape) int64 {
	inF := int64(in[0][1])
	h := int64(l.Hidden)
	return 4 * ((inF+h)*h + h)
}

// SelfAttention is multi-head scaled dot-product attention over a
// {seq, dim} input (§III-C.6). Cost uses the standard decomposition:
// QKV and output projections 4·S·d² plus score/value products 2·S²·d.
type SelfAttention struct {
	LayerName string
	Heads     int
}

// Name implements Layer.
func (l *SelfAttention) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *SelfAttention) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := arity(l.LayerName, in, 1); err != nil {
		return nil, err
	}
	s := in[0]
	if s.Rank() != 2 {
		return nil, fmt.Errorf("layer %s: attention wants {seq,dim} input, got %v", l.LayerName, s)
	}
	if l.Heads <= 0 || s[1]%l.Heads != 0 {
		return nil, fmt.Errorf("layer %s: dim %d not divisible by %d heads", l.LayerName, s[1], l.Heads)
	}
	return s.Clone(), nil
}

// FwdFLOPs implements Layer.
func (l *SelfAttention) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	seq := int64(in[0][0])
	d := int64(in[0][1])
	return 4*seq*d*d + 2*seq*seq*d
}

// BwdFactor implements Layer.
func (l *SelfAttention) BwdFactor() float64 { return 2.0 }

// ParamCount implements Layer: W_q, W_k, W_v, W_o plus biases.
func (l *SelfAttention) ParamCount(in []tensor.Shape) int64 {
	d := int64(in[0][1])
	return 4*d*d + 4*d
}

// Compile-time interface checks.
var (
	_ Layer = (*Input)(nil)
	_ Layer = (*Conv2D)(nil)
	_ Layer = (*Deconv2D)(nil)
	_ Layer = (*ReLU)(nil)
	_ Layer = (*GELU)(nil)
	_ Layer = (*Dropout)(nil)
	_ Layer = (*Pool2D)(nil)
	_ Layer = (*GlobalAvgPool)(nil)
	_ Layer = (*BatchNorm)(nil)
	_ Layer = (*LayerNorm)(nil)
	_ Layer = (*Flatten)(nil)
	_ Layer = (*Dense)(nil)
	_ Layer = (*Softmax)(nil)
	_ Layer = (*Add)(nil)
	_ Layer = (*Concat)(nil)
	_ Layer = (*Embedding)(nil)
	_ Layer = (*LSTM)(nil)
	_ Layer = (*SelfAttention)(nil)
)
