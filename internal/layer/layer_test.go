package layer

import (
	"testing"
	"testing/quick"

	"karma/internal/tensor"
)

func mustInfer(t *testing.T, l Layer, in ...tensor.Shape) tensor.Shape {
	t.Helper()
	out, err := l.InferShape(in)
	if err != nil {
		t.Fatalf("%s: InferShape: %v", l.Name(), err)
	}
	return out
}

func TestInput(t *testing.T) {
	l := &Input{LayerName: "in", Shape: tensor.CHW(3, 224, 224)}
	out := mustInfer(t, l)
	if !out.Equal(tensor.CHW(3, 224, 224)) {
		t.Errorf("out = %v", out)
	}
	if l.FwdFLOPs(nil, out) != 0 || l.ParamCount(nil) != 0 {
		t.Error("input layer must be free")
	}
	if _, err := l.InferShape([]tensor.Shape{tensor.Vec(1)}); err == nil {
		t.Error("input with an input should error")
	}
}

func TestConv2DShape(t *testing.T) {
	// ResNet stem: 7x7/2 conv with pad 3 on 224x224 -> 112x112.
	l := &Conv2D{LayerName: "conv1", OutChannels: 64, K: 7, Stride: 2, Pad: 3}
	out := mustInfer(t, l, tensor.CHW(3, 224, 224))
	if !out.Equal(tensor.CHW(64, 112, 112)) {
		t.Errorf("out = %v, want 64x112x112", out)
	}
}

func TestConv2DFLOPs(t *testing.T) {
	// Paper §III-C.1: |Y|·K·K·C_in.
	l := &Conv2D{LayerName: "c", OutChannels: 64, K: 3, Stride: 1, Pad: 1}
	in := tensor.CHW(32, 8, 8)
	out := mustInfer(t, l, in)
	want := int64(64*8*8) * 3 * 3 * 32
	if got := l.FwdFLOPs([]tensor.Shape{in}, out); got != want {
		t.Errorf("FwdFLOPs = %d, want %d", got, want)
	}
}

func TestConv2DParams(t *testing.T) {
	l := &Conv2D{LayerName: "c", OutChannels: 64, K: 3}
	in := []tensor.Shape{tensor.CHW(32, 8, 8)}
	if got := l.ParamCount(in); got != 3*3*32*64 {
		t.Errorf("params = %d", got)
	}
	l.Bias = true
	if got := l.ParamCount(in); got != 3*3*32*64+64 {
		t.Errorf("params with bias = %d", got)
	}
}

func TestConv2DErrors(t *testing.T) {
	l := &Conv2D{LayerName: "c", OutChannels: 8, K: 7, Stride: 1, Pad: 0}
	if _, err := l.InferShape([]tensor.Shape{tensor.Vec(10)}); err == nil {
		t.Error("non-CHW input should error")
	}
	if _, err := l.InferShape([]tensor.Shape{tensor.CHW(3, 4, 4)}); err == nil {
		t.Error("kernel larger than input should error")
	}
	if _, err := l.InferShape(nil); err == nil {
		t.Error("missing input should error")
	}
}

func TestDeconv2D(t *testing.T) {
	l := &Deconv2D{LayerName: "up", OutChannels: 64, K: 2, Stride: 2}
	out := mustInfer(t, l, tensor.CHW(128, 28, 28))
	if !out.Equal(tensor.CHW(64, 56, 56)) {
		t.Errorf("out = %v, want 64x56x56", out)
	}
	if l.ParamCount([]tensor.Shape{tensor.CHW(128, 28, 28)}) != 2*2*128*64 {
		t.Error("deconv params wrong")
	}
}

func TestReLU(t *testing.T) {
	l := &ReLU{LayerName: "r"}
	in := tensor.CHW(64, 56, 56)
	out := mustInfer(t, l, in)
	// §III-C.2: |Y| comparisons.
	if got := l.FwdFLOPs([]tensor.Shape{in}, out); got != in.Elems() {
		t.Errorf("relu FLOPs = %d, want %d", got, in.Elems())
	}
}

func TestPool2D(t *testing.T) {
	l := &Pool2D{LayerName: "p", Kind: MaxPool, K: 2, Stride: 2}
	out := mustInfer(t, l, tensor.CHW(64, 56, 56))
	if !out.Equal(tensor.CHW(64, 28, 28)) {
		t.Errorf("out = %v", out)
	}
	want := int64(64*28*28) * 2 * 2
	if got := l.FwdFLOPs([]tensor.Shape{tensor.CHW(64, 56, 56)}, out); got != want {
		t.Errorf("pool FLOPs = %d, want %d", got, want)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	l := &GlobalAvgPool{LayerName: "gap"}
	out := mustInfer(t, l, tensor.CHW(2048, 7, 7))
	if !out.Equal(tensor.Vec(2048)) {
		t.Errorf("out = %v", out)
	}
}

func TestBatchNorm(t *testing.T) {
	l := &BatchNorm{LayerName: "bn"}
	in := tensor.CHW(64, 56, 56)
	out := mustInfer(t, l, in)
	// ~6 ops per element (§III-C.4).
	if got := l.FwdFLOPs([]tensor.Shape{in}, out); got != 6*in.Elems() {
		t.Errorf("bn FLOPs = %d", got)
	}
	if got := l.ParamCount([]tensor.Shape{in}); got != 128 {
		t.Errorf("bn params = %d, want 128", got)
	}
}

func TestLayerNorm(t *testing.T) {
	l := &LayerNorm{LayerName: "ln"}
	in := tensor.Shape{1024, 3072}
	out := mustInfer(t, l, in)
	if !out.Equal(in) {
		t.Errorf("out = %v", out)
	}
	if got := l.ParamCount([]tensor.Shape{in}); got != 2*3072 {
		t.Errorf("ln params = %d", got)
	}
}

func TestDense(t *testing.T) {
	l := &Dense{LayerName: "fc", OutFeatures: 1000}
	in := tensor.Vec(2048)
	out := mustInfer(t, l, in)
	if !out.Equal(tensor.Vec(1000)) {
		t.Errorf("out = %v", out)
	}
	// §III-C.7: |X|·|Y| operations.
	if got := l.FwdFLOPs([]tensor.Shape{in}, out); got != 2048*1000 {
		t.Errorf("dense FLOPs = %d", got)
	}
	if got := l.ParamCount([]tensor.Shape{in}); got != 2048*1000+1000 {
		t.Errorf("dense params = %d", got)
	}
}

func TestDensePositionWise(t *testing.T) {
	l := &Dense{LayerName: "ffn", OutFeatures: 4096}
	in := tensor.Shape{1024, 1024}
	out := mustInfer(t, l, in)
	if !out.Equal(tensor.Shape{1024, 4096}) {
		t.Errorf("out = %v", out)
	}
	if got := l.FwdFLOPs([]tensor.Shape{in}, out); got != int64(1024)*4096*1024 {
		t.Errorf("position-wise dense FLOPs = %d", got)
	}
}

func TestSoftmax(t *testing.T) {
	l := &Softmax{LayerName: "sm"}
	in := tensor.Vec(1000)
	out := mustInfer(t, l, in)
	// §III-C.8: 2·|X|.
	if got := l.FwdFLOPs([]tensor.Shape{in}, out); got != 2000 {
		t.Errorf("softmax FLOPs = %d", got)
	}
}

func TestAdd(t *testing.T) {
	l := &Add{LayerName: "add"}
	s := tensor.CHW(256, 56, 56)
	out := mustInfer(t, l, s, s)
	if !out.Equal(s) {
		t.Errorf("out = %v", out)
	}
	if _, err := l.InferShape([]tensor.Shape{s}); err == nil {
		t.Error("single-input add should error")
	}
	if _, err := l.InferShape([]tensor.Shape{s, tensor.CHW(1, 2, 3)}); err == nil {
		t.Error("mismatched add should error")
	}
}

func TestConcat(t *testing.T) {
	l := &Concat{LayerName: "cat"}
	a := tensor.CHW(64, 56, 56)
	b := tensor.CHW(128, 56, 56)
	out := mustInfer(t, l, a, b)
	if !out.Equal(tensor.CHW(192, 56, 56)) {
		t.Errorf("out = %v", out)
	}
	if _, err := l.InferShape([]tensor.Shape{a, tensor.CHW(64, 28, 28)}); err == nil {
		t.Error("spatial mismatch should error")
	}
}

func TestEmbedding(t *testing.T) {
	l := &Embedding{LayerName: "emb", Vocab: 50257, Dim: 3072}
	out := mustInfer(t, l, tensor.Vec(1024))
	if !out.Equal(tensor.Shape{1024, 3072}) {
		t.Errorf("out = %v", out)
	}
	if got := l.ParamCount([]tensor.Shape{tensor.Vec(1024)}); got != 50257*3072 {
		t.Errorf("embedding params = %d", got)
	}
}

func TestLSTM(t *testing.T) {
	l := &LSTM{LayerName: "lstm", Hidden: 512}
	in := tensor.Shape{100, 256}
	out := mustInfer(t, l, in)
	if !out.Equal(tensor.Shape{100, 512}) {
		t.Errorf("out = %v", out)
	}
	// §III-C.5: per-step 4·(in+h)·h gate products + 20·h combination.
	want := int64(100) * (4*(256+512)*512 + 20*512)
	if got := l.FwdFLOPs([]tensor.Shape{in}, out); got != want {
		t.Errorf("lstm FLOPs = %d, want %d", got, want)
	}
}

func TestSelfAttention(t *testing.T) {
	l := &SelfAttention{LayerName: "attn", Heads: 16}
	in := tensor.Shape{1024, 1536}
	out := mustInfer(t, l, in)
	if !out.Equal(in) {
		t.Errorf("out = %v", out)
	}
	want := 4*int64(1024)*1536*1536 + 2*int64(1024)*1024*1536
	if got := l.FwdFLOPs([]tensor.Shape{in}, out); got != want {
		t.Errorf("attention FLOPs = %d, want %d", got, want)
	}
	if _, err := l.InferShape([]tensor.Shape{{1024, 1537}}); err == nil {
		t.Error("non-divisible heads should error")
	}
}

func TestBwdFactors(t *testing.T) {
	in3 := []tensor.Shape{tensor.CHW(8, 8, 8)}
	weighted := []Layer{
		&Conv2D{LayerName: "c", OutChannels: 8, K: 3, Pad: 1, Stride: 1},
		&Dense{LayerName: "d", OutFeatures: 10},
		&SelfAttention{LayerName: "a", Heads: 2},
		&LSTM{LayerName: "l", Hidden: 8},
	}
	for _, l := range weighted {
		if l.BwdFactor() != 2.0 {
			t.Errorf("%s: BwdFactor = %v, want 2.0", l.Name(), l.BwdFactor())
		}
	}
	free := []Layer{&ReLU{LayerName: "r"}, &Softmax{LayerName: "s"}, &Add{LayerName: "+"}}
	for _, l := range free {
		if l.BwdFactor() != 1.0 {
			t.Errorf("%s: BwdFactor = %v, want 1.0", l.Name(), l.BwdFactor())
		}
	}
	_ = in3
}

// Property: conv output spatial extent never exceeds the padded input.
func TestConvOutputBounded(t *testing.T) {
	f := func(hw, k, st, pad uint8) bool {
		h := int(hw)%64 + 8
		kk := int(k)%5 + 1
		s := int(st)%3 + 1
		p := int(pad) % 3
		l := &Conv2D{LayerName: "c", OutChannels: 4, K: kk, Stride: s, Pad: p}
		out, err := l.InferShape([]tensor.Shape{tensor.CHW(3, h, h)})
		if err != nil {
			return true // collapse rejected is fine
		}
		return out[1] <= h+2*p && out[2] <= h+2*p && out[1] > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FLOPs are non-negative for every layer on valid shapes.
func TestFLOPsNonNegative(t *testing.T) {
	f := func(c, h uint8) bool {
		in := tensor.CHW(int(c)%32+1, int(h)%32+8, int(h)%32+8)
		layers := []Layer{
			&Conv2D{LayerName: "c", OutChannels: 8, K: 3, Stride: 1, Pad: 1},
			&ReLU{LayerName: "r"},
			&BatchNorm{LayerName: "b"},
			&Pool2D{LayerName: "p", K: 2, Stride: 2},
		}
		for _, l := range layers {
			out, err := l.InferShape([]tensor.Shape{in})
			if err != nil {
				continue
			}
			if l.FwdFLOPs([]tensor.Shape{in}, out) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCustomLayer(t *testing.T) {
	// The §III-C extension point: a user-defined operator participates in
	// shape inference and costing like any built-in.
	l := &Custom{
		LayerName: "fft",
		Infer: func(in []tensor.Shape) (tensor.Shape, error) {
			return in[0].Clone(), nil
		},
		FLOPs: func(in []tensor.Shape, out tensor.Shape) int64 {
			return 5 * out.Elems() // ~n log n stand-in
		},
		Backward: 2.0,
		Params:   func(in []tensor.Shape) int64 { return 7 },
	}
	in := tensor.Vec(128)
	out := mustInfer(t, l, in)
	if !out.Equal(in) {
		t.Errorf("out = %v", out)
	}
	if got := l.FwdFLOPs([]tensor.Shape{in}, out); got != 640 {
		t.Errorf("FLOPs = %d", got)
	}
	if l.BwdFactor() != 2.0 || l.ParamCount([]tensor.Shape{in}) != 7 {
		t.Error("custom cost hooks not honored")
	}
}

func TestCustomLayerDefaults(t *testing.T) {
	l := &Custom{
		LayerName: "id",
		Infer:     func(in []tensor.Shape) (tensor.Shape, error) { return in[0].Clone(), nil },
		FLOPs:     func(in []tensor.Shape, out tensor.Shape) int64 { return 0 },
	}
	if l.BwdFactor() != 1.0 {
		t.Error("default backward factor should be 1.0")
	}
	if l.ParamCount(nil) != 0 {
		t.Error("default params should be 0")
	}
}

func TestCustomLayerMissingRules(t *testing.T) {
	l := &Custom{LayerName: "bad"}
	if _, err := l.InferShape([]tensor.Shape{tensor.Vec(1)}); err == nil {
		t.Error("missing Infer should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("missing FLOPs should panic")
		}
	}()
	l.FwdFLOPs(nil, tensor.Vec(1))
}

// TestAllLayersContract exercises every layer type against the Layer
// contract: non-empty name, successful inference on a valid input,
// non-negative FLOPs and params, a backward factor in [0, 2], and an
// arity error on wrong input counts.
func TestAllLayersContract(t *testing.T) {
	img := tensor.CHW(4, 16, 16)
	seq := tensor.Shape{32, 64}
	ids := tensor.Vec(32)
	vec := tensor.Vec(64)
	cases := []struct {
		l  Layer
		in []tensor.Shape
	}{
		{&Conv2D{LayerName: "conv", OutChannels: 8, K: 3, Stride: 1, Pad: 1}, []tensor.Shape{img}},
		{&Deconv2D{LayerName: "deconv", OutChannels: 2, K: 2, Stride: 2}, []tensor.Shape{img}},
		{&ReLU{LayerName: "relu"}, []tensor.Shape{img}},
		{&GELU{LayerName: "gelu"}, []tensor.Shape{seq}},
		{&Dropout{LayerName: "drop", P: 0.1}, []tensor.Shape{img}},
		{&Pool2D{LayerName: "max", Kind: MaxPool, K: 2, Stride: 2}, []tensor.Shape{img}},
		{&Pool2D{LayerName: "avg", Kind: AvgPool, K: 2, Stride: 2}, []tensor.Shape{img}},
		{&GlobalAvgPool{LayerName: "gap"}, []tensor.Shape{img}},
		{&BatchNorm{LayerName: "bn"}, []tensor.Shape{img}},
		{&LayerNorm{LayerName: "ln"}, []tensor.Shape{seq}},
		{&Flatten{LayerName: "flat"}, []tensor.Shape{img}},
		{&Dense{LayerName: "fc", OutFeatures: 10}, []tensor.Shape{vec}},
		{&Softmax{LayerName: "sm"}, []tensor.Shape{vec}},
		{&Add{LayerName: "add"}, []tensor.Shape{img, img}},
		{&Concat{LayerName: "cat"}, []tensor.Shape{img, img}},
		{&Embedding{LayerName: "emb", Vocab: 100, Dim: 16}, []tensor.Shape{ids}},
		{&LSTM{LayerName: "lstm", Hidden: 32}, []tensor.Shape{seq}},
		{&SelfAttention{LayerName: "attn", Heads: 4}, []tensor.Shape{seq}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.l.Name(), func(t *testing.T) {
			if c.l.Name() == "" {
				t.Fatal("empty name")
			}
			out, err := c.l.InferShape(c.in)
			if err != nil {
				t.Fatalf("InferShape: %v", err)
			}
			if out.Elems() <= 0 {
				t.Error("empty output shape")
			}
			if f := c.l.FwdFLOPs(c.in, out); f < 0 {
				t.Errorf("negative FLOPs %d", f)
			}
			if bf := c.l.BwdFactor(); bf < 0 || bf > 2 {
				t.Errorf("backward factor %v out of [0,2]", bf)
			}
			if p := c.l.ParamCount(c.in); p < 0 {
				t.Errorf("negative params %d", p)
			}
			// Wrong arity: pass three inputs to single-input layers and
			// zero inputs to everyone.
			if _, err := c.l.InferShape(nil); err == nil {
				t.Error("zero inputs should error")
			}
			if _, err := c.l.InferShape([]tensor.Shape{img, img, img, img, img}); err == nil {
				switch c.l.(type) {
				case *Add, *Concat:
					// variadic merges accept many inputs
				default:
					t.Error("excess inputs should error")
				}
			}
		})
	}
}

// TestDropoutGELUFlattenSpecifics covers the light layers' cost claims.
func TestDropoutGELUFlattenSpecifics(t *testing.T) {
	in := tensor.Shape{10, 10}
	d := &Dropout{LayerName: "d", P: 0.5}
	out := mustInfer(t, d, in)
	if d.FwdFLOPs([]tensor.Shape{in}, out) != 100 {
		t.Error("dropout should cost one mask multiply per element")
	}
	g := &GELU{LayerName: "g"}
	out = mustInfer(t, g, in)
	if g.FwdFLOPs([]tensor.Shape{in}, out) != 800 {
		t.Error("gelu should cost ~8 ops per element")
	}
	f := &Flatten{LayerName: "f"}
	out = mustInfer(t, f, tensor.CHW(2, 3, 4))
	if !out.Equal(tensor.Vec(24)) {
		t.Errorf("flatten out = %v", out)
	}
	if f.FwdFLOPs(nil, out) != 0 || f.BwdFactor() != 0 {
		t.Error("flatten should be free")
	}
}
