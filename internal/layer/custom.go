package layer

import (
	"fmt"

	"karma/internal/tensor"
)

// Custom is a user-defined layer for operators outside the built-in
// taxonomy — the extension point §III-C promises ("our performance model
// is generic: it allows adding new layers, if required"). The caller
// provides the shape rule and cost functions; everything downstream
// (profiler, planner, simulator) works unchanged.
type Custom struct {
	LayerName string
	// Infer computes the output shape; required.
	Infer func(in []tensor.Shape) (tensor.Shape, error)
	// FLOPs returns forward operations per sample; required.
	FLOPs func(in []tensor.Shape, out tensor.Shape) int64
	// Backward is the backward/forward work ratio (default 1.0).
	Backward float64
	// Params returns the trainable parameter count (default 0).
	Params func(in []tensor.Shape) int64
}

// Name implements Layer.
func (l *Custom) Name() string { return l.LayerName }

// InferShape implements Layer.
func (l *Custom) InferShape(in []tensor.Shape) (tensor.Shape, error) {
	if l.Infer == nil {
		return nil, fmt.Errorf("layer %s: custom layer without an Infer rule", l.LayerName)
	}
	return l.Infer(in)
}

// FwdFLOPs implements Layer.
func (l *Custom) FwdFLOPs(in []tensor.Shape, out tensor.Shape) int64 {
	if l.FLOPs == nil {
		panic(fmt.Sprintf("layer %s: custom layer without a FLOPs rule", l.LayerName))
	}
	return l.FLOPs(in, out)
}

// BwdFactor implements Layer.
func (l *Custom) BwdFactor() float64 {
	if l.Backward <= 0 {
		return 1.0
	}
	return l.Backward
}

// ParamCount implements Layer.
func (l *Custom) ParamCount(in []tensor.Shape) int64 {
	if l.Params == nil {
		return 0
	}
	return l.Params(in)
}

var _ Layer = (*Custom)(nil)
