package serve

import (
	"encoding/json"
	"fmt"
	"strings"

	"karma/internal/dist"
	"karma/internal/experiments"
	"karma/internal/graph"
	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/tensor"
	"karma/internal/topo"
)

// openWTSamples is the default epoch sample count (Table III's
// OpenWebText set, matching the experiment panels).
const openWTSamples = 7_200_000

// ClusterSpec selects and sizes the cluster a request evaluates
// against. The zero value is the paper's ABCI machine on the flat
// interconnect model.
type ClusterSpec struct {
	// Preset names the cluster preset; "abci" (the default) is the only
	// one today.
	Preset string `json:"preset,omitempty"`
	// Nodes overrides the preset's node count (4 GPUs per ABCI node).
	Nodes int `json:"nodes,omitempty"`
	// Topology selects the interconnect model (internal/topo.Parse):
	// "flat", "abci", or "fattree:<ratio>".
	Topology string `json:"topology,omitempty"`
}

// cluster resolves the spec; the canonical form is written back so
// defaulted and explicit requests share one cache key.
func (c *ClusterSpec) cluster() (hw.Cluster, error) {
	if c.Preset == "" {
		c.Preset = "abci"
	}
	if c.Preset != "abci" {
		return hw.Cluster{}, fmt.Errorf("unknown cluster preset %q (have abci)", c.Preset)
	}
	cl := hw.ABCI()
	if c.Nodes < 0 {
		return hw.Cluster{}, fmt.Errorf("cluster nodes must be >= 0, got %d", c.Nodes)
	}
	if c.Nodes > 0 {
		cl.Nodes = c.Nodes
	} else {
		c.Nodes = cl.Nodes
	}
	if c.Topology == "" {
		c.Topology = "flat"
	}
	tp, err := topo.Parse(c.Topology)
	if err != nil {
		return hw.Cluster{}, err
	}
	return cl.WithTopology(tp), nil
}

// EvaluateRequest is the /v1/evaluate (and /v1/feasibility) payload:
// one distributed-training configuration to cost. Model selection is
// either Model (a registry name: a named graph model like "resnet50"
// or a transformer configuration like "megatron-2.5B"/"turing-nlg-17B")
// or Transformer (an explicit configuration); the hybrid and pipeline
// families require a transformer either way.
type EvaluateRequest struct {
	// Family selects the parallelism family: "karma-dp", "dp", "mp+dp",
	// "zero", or "pipeline".
	Family string `json:"family"`
	// Backend selects the evaluator: "analytic" (default) or "planned".
	Backend string `json:"backend,omitempty"`
	// Model is a registry name (model.Build or a transformer config
	// name). Exactly one of Model and Transformer must be set.
	Model string `json:"model,omitempty"`
	// Transformer is an explicit transformer configuration.
	Transformer *model.TransformerConfig `json:"transformer,omitempty"`
	// Cluster sizes the machine; zero value = full ABCI, flat fabric.
	Cluster ClusterSpec `json:"cluster,omitempty"`
	// GPUs is the total device count the configuration uses.
	GPUs int `json:"gpus"`
	// Batch is the per-replica mini-batch.
	Batch int `json:"batch"`
	// Samples is the epoch sample count (default: OpenWebText's 7.2M).
	Samples int `json:"samples,omitempty"`
	// MP is the tensor-parallel degree of the mp+dp and zero families.
	MP int `json:"mp,omitempty"`
	// Stages is the pipeline family's stage count.
	Stages int `json:"stages,omitempty"`
	// Micro is the pipeline family's micro-batch count per iteration
	// (default 8, clamped to Batch — FamilyOptions' rule).
	Micro int `json:"micro,omitempty"`
	// Ckpt enables activation checkpointing in the hybrid shards and
	// pipeline stages.
	Ckpt bool `json:"ckpt,omitempty"`
	// Phased selects the phased (optimized) gradient exchange in the
	// hybrid families.
	Phased bool `json:"phased,omitempty"`
	// Precision is the training regime: "fp32" (default), "fp16", or
	// its synonym "mixed".
	Precision string `json:"precision,omitempty"`
	// ZeROShard composes KARMA-DP with ZeRO-style state sharding.
	ZeROShard bool `json:"zero_shard,omitempty"`
	// UpdateOnDevice forces KARMA's weight update onto the GPU (A4).
	UpdateOnDevice bool `json:"update_on_device,omitempty"`
}

// evaluateFamilies lists the accepted Family values.
var evaluateFamilies = []string{"karma-dp", "dp", "mp+dp", "zero", "pipeline"}

// normalize validates the request and writes back every default, so the
// canonical marshaling of two semantically identical requests is
// byte-identical (the response-cache key).
func (r *EvaluateRequest) normalize() error {
	families := map[string]bool{}
	for _, f := range evaluateFamilies {
		families[f] = true
	}
	if !families[r.Family] {
		return fmt.Errorf("unknown family %q (have %s)", r.Family, strings.Join(evaluateFamilies, ", "))
	}
	if r.Backend == "" {
		r.Backend = "analytic"
	}
	valid := false
	for _, b := range dist.BackendNames() {
		if r.Backend == b {
			valid = true
		}
	}
	if !valid {
		return fmt.Errorf("unknown backend %q (have %s)", r.Backend, strings.Join(dist.BackendNames(), ", "))
	}
	if (r.Model == "") == (r.Transformer == nil) {
		return fmt.Errorf("exactly one of model and transformer must be set")
	}
	if r.Model != "" {
		if cfg, ok := model.TransformerByName(r.Model); ok {
			// Canonical form: a named transformer becomes its explicit
			// configuration, so name and config requests share a key.
			r.Transformer = &cfg
			r.Model = ""
		}
	}
	switch r.Family {
	case "mp+dp", "zero", "pipeline":
		if r.Transformer == nil {
			return fmt.Errorf("family %q requires a transformer configuration", r.Family)
		}
	}
	if r.Transformer != nil {
		c := r.Transformer
		if c.Hidden <= 0 || c.Heads <= 0 || c.Layers <= 0 || c.Seq <= 0 || c.Vocab <= 0 {
			return fmt.Errorf("transformer dimensions must be positive: %+v", *c)
		}
	}
	if r.GPUs <= 0 {
		return fmt.Errorf("gpus must be positive, got %d", r.GPUs)
	}
	if r.Batch <= 0 {
		return fmt.Errorf("batch must be positive, got %d", r.Batch)
	}
	if r.Samples == 0 {
		r.Samples = openWTSamples
	}
	if r.Samples <= 0 {
		return fmt.Errorf("samples must be positive, got %d", r.Samples)
	}
	switch r.Family {
	case "mp+dp", "zero":
		if r.MP < 1 {
			return fmt.Errorf("family %q requires mp >= 1, got %d", r.Family, r.MP)
		}
	case "pipeline":
		if r.Stages < 1 {
			return fmt.Errorf("pipeline requires stages >= 1, got %d", r.Stages)
		}
		if r.Micro == 0 {
			r.Micro = 8
		}
		if r.Micro < 0 {
			return fmt.Errorf("micro must be positive, got %d", r.Micro)
		}
		if r.Micro > r.Batch {
			r.Micro = r.Batch
		}
	}
	if r.Precision == "" {
		r.Precision = "fp32"
	}
	prec, err := tensor.ParsePrecision(r.Precision)
	if err != nil {
		return err
	}
	r.Precision = prec.String() // canonical: "mixed" -> "fp16"
	if _, err := r.Cluster.cluster(); err != nil {
		return err
	}
	return nil
}

// graphFor resolves the request's full-model graph through the given
// name cache: transformer configs share the process-wide build memo in
// internal/dist; named graph models the serve-level cache — either way
// repeated requests reuse one *graph.Graph, which keeps the planner's
// pointer-keyed caches hitting.
func (r *EvaluateRequest) graphFor(graphs *flightCache[*graph.Graph]) (*graph.Graph, error) {
	if r.Transformer != nil {
		return dist.CachedTransformer(*r.Transformer), nil
	}
	return graphs.do(r.Model, func() (*graph.Graph, error) {
		return model.Build(r.Model)
	})
}

// evaluate runs the normalized request against the evaluator.
func (r *EvaluateRequest) evaluate(ev dist.Evaluator, graphs *flightCache[*graph.Graph]) (*dist.Result, error) {
	cl, err := r.Cluster.cluster()
	if err != nil {
		return nil, err
	}
	prec, err := tensor.ParsePrecision(r.Precision)
	if err != nil {
		return nil, err
	}
	ho := dist.HybridOptions{Phased: r.Phased, Checkpoint: r.Ckpt, Precision: prec}
	switch r.Family {
	case "karma-dp":
		g, err := r.graphFor(graphs)
		if err != nil {
			return nil, err
		}
		return ev.KARMADataParallel(g, cl, r.GPUs, r.Batch, r.Samples, dist.KARMAOptions{
			UpdateOnDevice: r.UpdateOnDevice,
			ZeROShard:      r.ZeROShard,
			Precision:      prec,
		})
	case "dp":
		g, err := r.graphFor(graphs)
		if err != nil {
			return nil, err
		}
		return ev.DataParallel(g, cl, r.GPUs, r.Batch, r.Samples)
	case "mp+dp":
		return ev.MegatronHybrid(*r.Transformer, cl, r.MP, r.GPUs, r.Batch, r.Samples, ho)
	case "zero":
		return ev.ZeRO(*r.Transformer, cl, r.MP, r.GPUs, r.Batch, r.Samples, ho)
	case "pipeline":
		return ev.Pipeline(*r.Transformer, cl, r.Stages, r.GPUs, r.Batch, r.Micro, r.Samples, ho)
	default:
		return nil, fmt.Errorf("unknown family %q", r.Family)
	}
}

// EvaluateResponse wraps one configuration's evaluation.
type EvaluateResponse struct {
	Result *dist.Result `json:"result"`
}

// FeasibilityResponse is the verdict-only projection of an evaluation:
// the answer to "can model M train on cluster C this way?", with the
// evaluator's Reason when it cannot.
type FeasibilityResponse struct {
	Feasible    bool   `json:"feasible"`
	Reason      string `json:"reason,omitempty"`
	GPUs        int    `json:"gpus"`
	GlobalBatch int    `json:"global_batch"`
	Backend     string `json:"backend"`
}

// SweepRequest is the /v1/sweep payload: one experiment panel to
// regenerate. Panels mirror karma-bench's experiments.
type SweepRequest struct {
	// Panel selects the sweep: "fig8-megatron", "fig8-turing", "table4",
	// "table5", or "topo".
	Panel string `json:"panel"`
	// Backend selects the evaluator: "analytic" (default) or "planned".
	Backend string `json:"backend,omitempty"`
	// Cluster sizes the machine; topology pins the fabric of the panel
	// (the topo panel sweeps its own ladder regardless).
	Cluster ClusterSpec `json:"cluster,omitempty"`
	// Precision is the training regime of every family (default fp32).
	Precision string `json:"precision,omitempty"`
	// Ckpt enables activation checkpointing in the baselines; nil means
	// true (the regime real deployments train in — karma-bench's
	// default).
	Ckpt *bool `json:"ckpt,omitempty"`
	// Pipeline adds the GPipe-style family to the fig8/table4 panels.
	Pipeline bool `json:"pipeline,omitempty"`
	// Config is the fig8-megatron Table IV configuration index
	// (default 2, the 2.5B panel).
	Config *int `json:"config,omitempty"`
	// GPUs overrides the panel's GPU-count grid (fig8 panels and the
	// topo panel's single count).
	GPUs []int `json:"gpus,omitempty"`
}

// sweepPanels lists the accepted Panel values.
var sweepPanels = []string{"fig8-megatron", "fig8-turing", "table4", "table5", "topo"}

// normalize validates the sweep request and writes back every default.
func (r *SweepRequest) normalize() error {
	panels := map[string]bool{}
	for _, p := range sweepPanels {
		panels[p] = true
	}
	if !panels[r.Panel] {
		return fmt.Errorf("unknown panel %q (have %s)", r.Panel, strings.Join(sweepPanels, ", "))
	}
	if r.Backend == "" {
		r.Backend = "analytic"
	}
	if _, err := dist.ByName(r.Backend); err != nil {
		return err
	}
	if r.Precision == "" {
		r.Precision = "fp32"
	}
	prec, err := tensor.ParsePrecision(r.Precision)
	if err != nil {
		return err
	}
	r.Precision = prec.String()
	if r.Ckpt == nil {
		t := true
		r.Ckpt = &t
	}
	switch r.Panel {
	case "fig8-megatron":
		if r.Config == nil {
			c := 2
			r.Config = &c
		}
		if *r.Config < 0 || *r.Config >= len(model.MegatronConfigs()) {
			return fmt.Errorf("config index %d out of range [0, %d)", *r.Config, len(model.MegatronConfigs()))
		}
		if len(r.GPUs) == 0 {
			r.GPUs = []int{128, 256, 512, 1024, 2048}
		}
	case "fig8-turing":
		if len(r.GPUs) == 0 {
			r.GPUs = []int{512, 1024, 2048}
		}
	case "topo":
		if len(r.GPUs) == 0 {
			r.GPUs = []int{512}
		}
		if len(r.GPUs) != 1 {
			return fmt.Errorf("the topo panel takes exactly one GPU count, got %d", len(r.GPUs))
		}
	default:
		if len(r.GPUs) != 0 {
			return fmt.Errorf("panel %q does not take a GPU grid", r.Panel)
		}
	}
	for _, g := range r.GPUs {
		if g <= 0 {
			return fmt.Errorf("gpus must be positive, got %d", g)
		}
	}
	if r.Config != nil && r.Panel != "fig8-megatron" {
		return fmt.Errorf("config only applies to the fig8-megatron panel")
	}
	if _, err := r.Cluster.cluster(); err != nil {
		return err
	}
	return nil
}

// SweepResponse carries one panel, in the field matching the request.
type SweepResponse struct {
	Panel  string                             `json:"panel"`
	Fig8   *experiments.Fig8Panel             `json:"fig8,omitempty"`
	Table4 []experiments.TableIVRow           `json:"table4,omitempty"`
	Table5 map[string][]experiments.TableVRow `json:"table5,omitempty"`
	Topo   []experiments.TopoRow              `json:"topo,omitempty"`
}

// run evaluates the normalized sweep with the evaluator under the
// worker bound (results are identical for every worker count —
// internal/sweep's ordering contract).
func (r *SweepRequest) run(ev dist.Evaluator, workers int) (*SweepResponse, error) {
	cl, err := r.Cluster.cluster()
	if err != nil {
		return nil, err
	}
	prec, err := tensor.ParsePrecision(r.Precision)
	if err != nil {
		return nil, err
	}
	fo := experiments.FamilyOptions{
		Ckpt:      *r.Ckpt,
		Precision: prec,
		Pipeline:  r.Pipeline,
		Workers:   workers,
	}
	resp := &SweepResponse{Panel: r.Panel}
	switch r.Panel {
	case "fig8-megatron":
		p, err := experiments.Figure8Megatron(cl, *r.Config, r.GPUs, ev, fo)
		if err != nil {
			return nil, err
		}
		resp.Fig8 = p
	case "fig8-turing":
		p, err := experiments.Figure8Turing(cl, r.GPUs, ev, fo)
		if err != nil {
			return nil, err
		}
		resp.Fig8 = p
	case "table4":
		rows, err := experiments.TableIV(cl, ev, fo)
		if err != nil {
			return nil, err
		}
		resp.Table4 = rows
	case "table5":
		sweeps, err := experiments.TableV(cl, ev, workers)
		if err != nil {
			return nil, err
		}
		resp.Table5 = sweeps
	case "topo":
		rows, err := experiments.TopologySweep(cl, r.GPUs[0], experiments.TopoLadder(), ev, fo)
		if err != nil {
			return nil, err
		}
		resp.Topo = rows
	default:
		return nil, fmt.Errorf("unknown panel %q", r.Panel)
	}
	return resp, nil
}

// canonicalKey derives the response-cache key for a normalized request:
// the endpoint plus the request's canonical JSON (struct field order is
// fixed, defaults are written back by normalize, so two semantically
// identical requests produce one key).
func canonicalKey(endpoint string, req any) (string, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	return endpoint + " " + string(b), nil
}
