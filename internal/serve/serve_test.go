package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"karma/internal/model"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	return New(cfg)
}

// post runs one request through the handler and returns code and body.
func post(t *testing.T, s *Server, path, body string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func get(t *testing.T, s *Server, path string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d %q, want 200", code, body)
	}
	var h struct {
		Status  string `json:"status"`
		Go      string `json:"go"`
		Version string `json:"version"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz body is not JSON: %v: %q", err, body)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if !strings.HasPrefix(h.Go, "go") || h.Version == "" {
		t.Errorf("healthz must carry build info, got %+v", h)
	}
}

// TestRequestID pins the correlation contract: a generated ID is echoed
// in the response header, an inbound X-Request-ID is honored, and error
// bodies carry the ID while success bodies (cached, shared) do not.
func TestRequestID(t *testing.T) {
	s := newTestServer(t, Config{})

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if id := rec.Header().Get("X-Request-ID"); len(id) != 16 {
		t.Errorf("generated request ID = %q, want 16 hex chars", id)
	}

	req = httptest.NewRequest(http.MethodPost, "/v1/evaluate", strings.NewReader(`{"family":"bogus"}`))
	req.Header.Set("X-Request-ID", "trace-me-7")
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if id := rec.Header().Get("X-Request-ID"); id != "trace-me-7" {
		t.Errorf("inbound request ID not echoed: got %q", id)
	}
	var e apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body: %v", err)
	}
	if e.RequestID != "trace-me-7" {
		t.Errorf("error body request_id = %q, want trace-me-7", e.RequestID)
	}

	code, body := post(t, s, "/v1/evaluate",
		`{"family":"karma-dp","model":"megatron-0.3B","gpus":128,"batch":128}`)
	if code != http.StatusOK {
		t.Fatalf("evaluate = %d: %s", code, body)
	}
	if bytes.Contains(body, []byte("request_id")) {
		t.Errorf("success bodies are cached across requests and must not carry a request ID: %s", body)
	}
}

func TestEvaluateEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	code, body := post(t, s, "/v1/evaluate",
		`{"family":"karma-dp","model":"megatron-0.3B","gpus":128,"batch":128}`)
	if code != http.StatusOK {
		t.Fatalf("evaluate = %d: %s", code, body)
	}
	var resp EvaluateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	r := resp.Result
	if r == nil || !r.Feasible {
		t.Fatalf("KARMA-DP on 128 GPUs should be feasible, got %+v", r)
	}
	if r.Backend != "analytic" || r.GPUs != 128 || r.GlobalBatch != 128*128 {
		t.Errorf("result = backend %q gpus %d batch %d, want analytic 128 %d",
			r.Backend, r.GPUs, r.GlobalBatch, 128*128)
	}
	if r.EpochTime <= 0 || r.IterPerSec <= 0 {
		t.Errorf("timings must be positive: %+v", r)
	}
	if !bytes.Contains(body, []byte(`"epoch_time_s"`)) {
		t.Errorf("response must use the documented JSON field names, got %s", body)
	}
	if r.Breakdown == nil {
		t.Error("feasible evaluation must carry a cost breakdown")
	} else if r.Breakdown.Components() <= 0 {
		t.Errorf("breakdown components sum to %v, want > 0", r.Breakdown.Components())
	}
}

func TestEvaluatePlannedBackend(t *testing.T) {
	s := newTestServer(t, Config{})
	code, body := post(t, s, "/v1/evaluate",
		`{"family":"karma-dp","model":"megatron-0.3B","backend":"planned","gpus":128,"batch":128}`)
	if code != http.StatusOK {
		t.Fatalf("planned evaluate = %d: %s", code, body)
	}
	var resp EvaluateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.Result.Backend != "planned" {
		t.Errorf("backend = %q, want planned", resp.Result.Backend)
	}
}

func TestFeasibilityEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})

	// Plain DP on Turing-NLG cannot hold the model in 16 GB.
	code, body := post(t, s, "/v1/feasibility",
		`{"family":"dp","model":"turing-nlg-17B","gpus":512,"batch":512}`)
	if code != http.StatusOK {
		t.Fatalf("feasibility = %d: %s", code, body)
	}
	var infeasible FeasibilityResponse
	if err := json.Unmarshal(body, &infeasible); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if infeasible.Feasible || infeasible.Reason == "" {
		t.Errorf("DP Turing-NLG should be infeasible with a reason, got %+v", infeasible)
	}

	// KARMA-DP streams it (per-replica batch 1: the paper's global 512).
	code, body = post(t, s, "/v1/feasibility",
		`{"family":"karma-dp","model":"turing-nlg-17B","gpus":512,"batch":1}`)
	if code != http.StatusOK {
		t.Fatalf("feasibility = %d: %s", code, body)
	}
	var feasible FeasibilityResponse
	if err := json.Unmarshal(body, &feasible); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if !feasible.Feasible {
		t.Errorf("KARMA-DP Turing-NLG should be feasible, got %+v", feasible)
	}
	if feasible.GPUs != 512 || feasible.Backend != "analytic" {
		t.Errorf("verdict = %+v, want 512 GPUs on analytic", feasible)
	}
}

func TestSweepEndpointPanels(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	cases := []struct {
		name, body string
		check      func(t *testing.T, resp SweepResponse)
	}{
		{
			name: "fig8-megatron",
			body: `{"panel":"fig8-megatron","gpus":[128]}`,
			check: func(t *testing.T, resp SweepResponse) {
				if resp.Fig8 == nil || len(resp.Fig8.Rows) != 1 || resp.Fig8.Rows[0].GPUs != 128 {
					t.Fatalf("fig8 panel = %+v, want one 128-GPU row", resp.Fig8)
				}
			},
		},
		{
			name: "fig8-turing",
			body: `{"panel":"fig8-turing","gpus":[512]}`,
			check: func(t *testing.T, resp SweepResponse) {
				if resp.Fig8 == nil || len(resp.Fig8.Rows) != 1 || resp.Fig8.Rows[0].GPUs != 512 {
					t.Fatalf("fig8 panel = %+v, want one 512-GPU row", resp.Fig8)
				}
			},
		},
		{
			name: "table4",
			body: `{"panel":"table4"}`,
			check: func(t *testing.T, resp SweepResponse) {
				if len(resp.Table4) != len(model.MegatronConfigs()) {
					t.Fatalf("table4 rows = %d, want one per Megatron config", len(resp.Table4))
				}
			},
		},
		{
			name: "table5",
			body: `{"panel":"table5"}`,
			check: func(t *testing.T, resp SweepResponse) {
				if len(resp.Table5) == 0 {
					t.Fatalf("table5 must carry at least one sweep")
				}
			},
		},
		{
			name: "topo",
			body: `{"panel":"topo"}`,
			check: func(t *testing.T, resp SweepResponse) {
				if len(resp.Topo) == 0 {
					t.Fatalf("topo panel must carry rows")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(t, s, "/v1/sweep", tc.body)
			if code != http.StatusOK {
				t.Fatalf("sweep = %d: %s", code, body)
			}
			var resp SweepResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatalf("decoding response: %v", err)
			}
			if resp.Panel != tc.name {
				t.Errorf("panel = %q, want %q", resp.Panel, tc.name)
			}
			tc.check(t, resp)
		})
	}
}

// TestSweepDeterministicAcrossWorkers pins the serving contract that a
// response body is a pure function of the request: fresh servers with
// different worker pools must produce byte-identical bodies.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	const body = `{"panel":"fig8-megatron","config":1,"gpus":[128,512]}`
	var ref []byte
	for _, workers := range []int{1, 3, 8} {
		s := newTestServer(t, Config{Workers: workers})
		code, got := post(t, s, "/v1/sweep", body)
		if code != http.StatusOK {
			t.Fatalf("workers=%d: sweep = %d: %s", workers, code, got)
		}
		if ref == nil {
			ref = got
		} else if !bytes.Equal(ref, got) {
			t.Fatalf("workers=%d produced a different body:\n%s\nvs\n%s", workers, got, ref)
		}
	}
}

// TestEvaluateCanonicalization pins that semantically identical
// requests — a named transformer vs. its explicit configuration, and
// defaulted vs. explicit fields — share one cache entry and return
// byte-identical bodies.
func TestEvaluateCanonicalization(t *testing.T) {
	s := newTestServer(t, Config{})
	cfg := model.MegatronConfigs()[0]
	variants := []string{
		`{"family":"karma-dp","model":"megatron-0.3B","gpus":128,"batch":128}`,
		fmt.Sprintf(`{"family":"karma-dp","transformer":{"name":%q,"hidden":%d,"heads":%d,"layers":%d,"seq":%d,"vocab":%d},"gpus":128,"batch":128}`,
			cfg.Name, cfg.Hidden, cfg.Heads, cfg.Layers, cfg.Seq, cfg.Vocab),
		`{"family":"karma-dp","model":"megatron-0.3B","backend":"analytic","precision":"fp32","gpus":128,"batch":128,"samples":7200000}`,
	}
	var ref []byte
	for i, body := range variants {
		code, got := post(t, s, "/v1/evaluate", body)
		if code != http.StatusOK {
			t.Fatalf("variant %d = %d: %s", i, code, got)
		}
		if ref == nil {
			ref = got
		} else if !bytes.Equal(ref, got) {
			t.Fatalf("variant %d body differs:\n%s\nvs\n%s", i, got, ref)
		}
	}
	st := s.cache.stats()
	if st.Misses != 1 || st.Hits != uint64(len(variants)-1) {
		t.Errorf("cache = %+v, want 1 miss and %d hits (one key for all variants)", st, len(variants)-1)
	}
}

// TestConcurrentDedup pins the singleflight: identical concurrent
// requests cost one evaluation and every caller reads identical bytes.
func TestConcurrentDedup(t *testing.T) {
	s := newTestServer(t, Config{})
	var evals atomic.Int64
	release := make(chan struct{})
	s.evalHook = func(string) {
		evals.Add(1)
		<-release
	}
	const body = `{"family":"karma-dp","model":"megatron-1.2B","gpus":256,"batch":256}`
	const n = 16
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	var started sync.WaitGroup
	started.Add(n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			codes[i], bodies[i] = post(t, s, "/v1/evaluate", body)
		}(i)
	}
	started.Wait()
	// Give every request time to reach the flight before releasing it;
	// late arrivals still join the cached entry either way.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d = %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := evals.Load(); got != 1 {
		t.Errorf("evaluations = %d, want 1 (singleflight dedup)", got)
	}
}

// TestStatsCacheCounters drives a hit, a miss, and an eviction through
// a one-entry response cache and reads them back via /stats.
func TestStatsCacheCounters(t *testing.T) {
	s := newTestServer(t, Config{CacheEntries: 1})
	reqA := `{"family":"karma-dp","model":"megatron-0.3B","gpus":128,"batch":128}`
	reqB := `{"family":"karma-dp","model":"megatron-0.3B","gpus":256,"batch":256}`
	for _, body := range []string{reqA, reqA, reqB} {
		if code, b := post(t, s, "/v1/evaluate", body); code != http.StatusOK {
			t.Fatalf("evaluate = %d: %s", code, b)
		}
	}
	code, stats := get(t, s, "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	for _, want := range []string{
		`karma_serve_cache_hits_total{cache="response"} 1`,
		`karma_serve_cache_misses_total{cache="response"} 2`,
		`karma_serve_cache_evictions_total{cache="response"} 1`,
		`karma_serve_cache_entries{cache="response"} 1`,
		`karma_serve_requests_total{endpoint="/v1/evaluate",code="200"} 3`,
		`karma_serve_request_seconds_bucket{endpoint="/v1/evaluate",le="+Inf"} 3`,
		`karma_serve_cache_misses_total{cache="evaluator_shared"}`,
	} {
		if !strings.Contains(string(stats), want) {
			t.Errorf("stats missing %q:\n%s", want, stats)
		}
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name, method, path, body string
		wantCode                 int
	}{
		{"get on evaluate", http.MethodGet, "/v1/evaluate", "", http.StatusMethodNotAllowed},
		{"get on sweep", http.MethodGet, "/v1/sweep", "", http.StatusMethodNotAllowed},
		{"unknown field", http.MethodPost, "/v1/evaluate",
			`{"family":"karma-dp","model":"megatron-0.3B","gpus":128,"batch":128,"gpuz":1}`, http.StatusBadRequest},
		{"unknown family", http.MethodPost, "/v1/evaluate",
			`{"family":"fsdp","model":"megatron-0.3B","gpus":128,"batch":128}`, http.StatusBadRequest},
		{"model and transformer", http.MethodPost, "/v1/evaluate",
			`{"family":"karma-dp","model":"megatron-0.3B","transformer":{"hidden":1,"heads":1,"layers":1,"seq":1,"vocab":1},"gpus":128,"batch":128}`,
			http.StatusBadRequest},
		{"neither model nor transformer", http.MethodPost, "/v1/evaluate",
			`{"family":"karma-dp","gpus":128,"batch":128}`, http.StatusBadRequest},
		{"unknown model", http.MethodPost, "/v1/evaluate",
			`{"family":"karma-dp","model":"gpt-5","gpus":128,"batch":128}`, http.StatusUnprocessableEntity},
		{"hybrid without transformer", http.MethodPost, "/v1/evaluate",
			`{"family":"mp+dp","model":"resnet50","mp":4,"gpus":128,"batch":128}`, http.StatusBadRequest},
		{"zero gpus", http.MethodPost, "/v1/evaluate",
			`{"family":"karma-dp","model":"megatron-0.3B","gpus":0,"batch":128}`, http.StatusBadRequest},
		{"bad precision", http.MethodPost, "/v1/evaluate",
			`{"family":"karma-dp","model":"megatron-0.3B","gpus":128,"batch":128,"precision":"bf16"}`, http.StatusBadRequest},
		{"bad topology", http.MethodPost, "/v1/evaluate",
			`{"family":"karma-dp","model":"megatron-0.3B","gpus":128,"batch":128,"cluster":{"topology":"torus"}}`, http.StatusBadRequest},
		{"trailing garbage", http.MethodPost, "/v1/evaluate",
			`{"family":"karma-dp","model":"megatron-0.3B","gpus":128,"batch":128} {"x":1}`, http.StatusBadRequest},
		{"unknown panel", http.MethodPost, "/v1/sweep", `{"panel":"fig9"}`, http.StatusBadRequest},
		{"config on turing panel", http.MethodPost, "/v1/sweep",
			`{"panel":"fig8-turing","config":1}`, http.StatusBadRequest},
		{"gpu grid on table4", http.MethodPost, "/v1/sweep",
			`{"panel":"table4","gpus":[128]}`, http.StatusBadRequest},
		{"two topo counts", http.MethodPost, "/v1/sweep",
			`{"panel":"topo","gpus":[128,256]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != tc.wantCode {
				t.Fatalf("code = %d, want %d: %s", rec.Code, tc.wantCode, rec.Body.String())
			}
			var e apiError
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Errorf("error body must be {\"error\": ...}, got %q (%v)", rec.Body.String(), err)
			}
		})
	}
	if st := s.cache.stats(); st.Entries != 0 {
		t.Errorf("rejected requests must not populate the response cache, got %+v", st)
	}
}

// TestRequestTimeout pins the deadline path: a request whose evaluation
// outlives RequestTimeout gets 504, the computation finishes anyway,
// and a retry is served from cache.
func TestRequestTimeout(t *testing.T) {
	s := newTestServer(t, Config{RequestTimeout: 25 * time.Millisecond})
	release := make(chan struct{})
	s.evalHook = func(string) { <-release }
	const body = `{"family":"karma-dp","model":"megatron-0.3B","gpus":128,"batch":128}`
	code, got := post(t, s, "/v1/evaluate", body)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("slow evaluate = %d, want 504: %s", code, got)
	}
	close(release)
	// The retry joins the still-running flight (same key) and waits it
	// out within its own fresh deadline.
	code, got = post(t, s, "/v1/evaluate", body)
	if code != http.StatusOK {
		t.Fatalf("retry = %d, want 200: %s", code, got)
	}
}

// TestGracefulShutdown pins draining: http.Server.Shutdown must wait
// for an in-flight evaluation and its client must read a full 200.
func TestGracefulShutdown(t *testing.T) {
	s := newTestServer(t, Config{})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.evalHook = func(string) {
		once.Do(func() { close(inFlight) })
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		code int
		body []byte
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json",
			strings.NewReader(`{"family":"karma-dp","model":"megatron-0.3B","gpus":128,"batch":128}`))
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{code: resp.StatusCode, body: b, err: err}
	}()
	<-inFlight

	shutdownDone := make(chan struct{})
	go func() {
		ts.Config.Shutdown(context.Background()) //nolint:errcheck // no deadline: wait for the drain
		close(shutdownDone)
	}()
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while a request was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case r := <-got:
		if r.err != nil || r.code != http.StatusOK {
			t.Fatalf("drained request = %d %v: %s", r.code, r.err, r.body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("request did not complete after release")
	}
	select {
	case <-shutdownDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after the last request drained")
	}
}
