package serve

import (
	"sync"

	"karma/internal/dist"
)

// flightCache is the response-layer cache of karma-serve: a bounded LRU
// keyed by canonicalized request, with singleflight semantics — the
// first request for a key computes while identical concurrent requests
// block on that one computation, so a burst of the same sweep costs one
// evaluation and every caller gets byte-identical bytes. It is the same
// contract as the evaluator memos in internal/dist, one layer up: the
// evaluator caches dedupe shared sub-computations (profiles, partition
// searches) across *different* requests; this cache dedupes and stores
// whole responses for *identical* requests.
//
// Errors are never retained (a failed computation is forgotten as soon
// as its error is observed), and every cached computation must be a
// pure function of its key — which holds for evaluation responses: the
// canonical key encodes every input, and the response encoder is
// deterministic.
type flightCache[V any] struct {
	mu    sync.Mutex
	limit int // entry bound; <= 0 means flightCacheDefaultLimit
	m     map[string]*flightEntry[V]
	// Intrusive LRU ring; root.next is the most recently used.
	root                    flightEntry[V]
	hits, misses, evictions uint64
}

// flightCacheDefaultLimit bounds a zero flightCache.
const flightCacheDefaultLimit = 1024

type flightEntry[V any] struct {
	key        string
	once       sync.Once
	v          V
	err        error
	prev, next *flightEntry[V]
}

func newFlightCache[V any](limit int) *flightCache[V] {
	c := &flightCache[V]{limit: limit}
	c.root.prev = &c.root
	c.root.next = &c.root
	return c
}

func (c *flightCache[V]) pushFront(e *flightEntry[V]) {
	e.prev = &c.root
	e.next = c.root.next
	e.prev.next = e
	e.next.prev = e
}

func (c *flightCache[V]) unlink(e *flightEntry[V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// do returns the cached value for key, computing it with fn exactly
// once across all concurrent callers of the key.
func (c *flightCache[V]) do(key string, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = map[string]*flightEntry[V]{}
	}
	e := c.m[key]
	if e != nil {
		c.hits++
		c.unlink(e)
		c.pushFront(e)
	} else {
		c.misses++
		e = &flightEntry[V]{key: key}
		c.m[key] = e
		c.pushFront(e)
		limit := c.limit
		if limit <= 0 {
			limit = flightCacheDefaultLimit
		}
		for len(c.m) > limit {
			old := c.root.prev
			c.unlink(old)
			delete(c.m, old.key)
			c.evictions++
		}
	}
	c.mu.Unlock()

	e.once.Do(func() { e.v, e.err = fn() })
	if e.err != nil {
		c.mu.Lock()
		if c.m[key] == e {
			c.unlink(e)
			delete(c.m, key)
		}
		c.mu.Unlock()
	}
	return e.v, e.err
}

// stats snapshots the cache counters in the shared CacheStats shape.
func (c *flightCache[V]) stats() dist.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return dist.CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.m),
	}
}
