// Package serve is karma-serve's HTTP layer: the planner and both
// evaluator backends behind a long-running JSON API (ROADMAP item 2) —
// "can model M train on cluster C, and how fast?" as a service.
//
// Endpoints:
//
//	POST /v1/evaluate    one configuration -> dist.Result (+ breakdown)
//	POST /v1/feasibility one configuration -> verdict + Reason only
//	POST /v1/sweep       one experiment panel (fig8/table4/table5/topo)
//	BOTH /v1/plan        one configuration -> compiled plan.Plan JSON
//	BOTH /v1/trace       one configuration -> Chrome trace-event JSON
//	GET  /healthz        liveness + build info
//	GET  /stats          Prometheus text: requests, latency, phases, caches
//
// /v1/plan and /v1/trace accept the /v1/evaluate JSON body via POST, or
// the same fields as query parameters via GET (curl-friendly); both run
// the planned backend regardless of the requested one — the export is
// the planner's schedule by definition.
//
// Every request carries an ID: the inbound X-Request-ID when the client
// set one, a generated hex token otherwise. It is echoed in the
// X-Request-ID response header, attached to every structured log line,
// and embedded in JSON error bodies — success bodies never carry it, so
// cached responses stay byte-identical across requests.
//
// The serving stack is three bounded layers. A canonicalized-request
// LRU response cache (flightCache) returns byte-identical bodies for
// semantically identical requests and singleflights identical
// concurrent ones down to a single evaluation. Below it, the evaluator
// memos in internal/dist (bounded LRUs since the same PR) dedupe shared
// sub-computations — profiles, shard builds, partition searches —
// across *different* requests. A semaphore caps concurrent evaluations
// (each of which fans its grid out through internal/sweep's bounded
// pool), so a request burst degrades by queueing, not by oversubscribing
// the machine.
//
// Every evaluation is a pure function of its canonicalized request, so
// responses are deterministic: identical request bodies produce
// byte-identical response bodies at any worker count, cold or cached.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"karma/internal/dist"
	"karma/internal/graph"
)

// Config tunes a Server. The zero value serves with NumCPU sweep
// workers, 2 evaluation slots per CPU, a 1024-entry response cache and
// a 120s compute deadline.
type Config struct {
	// Workers bounds the goroutines each sweep fans grid points across
	// (sweep.Workers semantics: 0 means NumCPU). Responses are identical
	// for every value.
	Workers int
	// MaxInFlight caps concurrently computing evaluations; requests
	// beyond it queue on the semaphore. 0 means 2x NumCPU.
	MaxInFlight int
	// CacheEntries bounds the response LRU. 0 means 1024.
	CacheEntries int
	// RequestTimeout is the per-request compute deadline; a request
	// whose evaluation runs past it gets 504 while the computation
	// finishes and populates the cache for the retry. 0 means 120s.
	RequestTimeout time.Duration
	// Logger receives one structured line per request. nil discards.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// the profiler exposes stacks and heap contents, so a deployment
	// opts in explicitly (karma-serve's -pprof flag).
	Pprof bool
}

// Server is the karma-serve HTTP handler set.
type Server struct {
	cfg     Config
	log     *slog.Logger
	evals   map[string]dist.Evaluator
	cache   *flightCache[[]byte]
	graphs  *flightCache[*graph.Graph]
	metrics *metrics
	build   buildInfo
	slots   chan struct{}
	mux     *http.ServeMux
	// evalHook, when set, runs at the start of every cache-miss
	// computation (inside the singleflight, before the semaphore).
	// Tests use it to count evaluations and to hold one in flight.
	evalHook func(endpoint string)
}

// New returns a ready Server.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * runtime.NumCPU()
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 120 * time.Second
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg: cfg,
		log: log,
		// One long-lived evaluator per backend: the planned evaluator's
		// instance memos are request-spanning by design, and bounded
		// (internal/dist memo LRU), so holding it for the process
		// lifetime is safe.
		evals: map[string]dist.Evaluator{
			"analytic": dist.Analytic{},
			"planned":  dist.NewPlanned(),
		},
		cache:   newFlightCache[[]byte](cfg.CacheEntries),
		graphs:  newFlightCache[*graph.Graph](64),
		metrics: newMetrics(),
		build:   readBuildInfo(),
		slots:   make(chan struct{}, cfg.MaxInFlight),
	}
	// Feed the planner's phase timings (search / plan_build / simulate)
	// into the /stats series. The hook only costs clock reads when
	// registered, which a serving process always wants.
	if pe, ok := s.evals["planned"].(*dist.Planned); ok {
		pe.Observe(s.metrics.evalPhase)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/evaluate", s.instrument("/v1/evaluate", s.handleEvaluate))
	mux.HandleFunc("/v1/feasibility", s.instrument("/v1/feasibility", s.handleFeasibility))
	mux.HandleFunc("/v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	mux.HandleFunc("/v1/plan", s.instrument("/v1/plan", s.handlePlan))
	mux.HandleFunc("/v1/trace", s.instrument("/v1/trace", s.handleTrace))
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("/stats", s.instrument("/stats", s.handleStats))
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s
}

// readBuildInfo snapshots the binary's build metadata for /healthz and
// the karma_build_info gauge.
func readBuildInfo() buildInfo {
	bi := buildInfo{goVersion: runtime.Version(), version: "unknown"}
	if info, ok := debug.ReadBuildInfo(); ok && info.Main.Version != "" {
		bi.version = info.Main.Version
	}
	return bi
}

// Handler returns the root handler (mount it on an http.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// apiError is the JSON error body. The request ID rides along so a
// client can quote the exact failing request at the server's logs;
// success bodies never carry it (they are cached and shared across
// requests).
type apiError struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// requestIDKey is the context key instrument stores the request ID
// under.
type requestIDKey struct{}

// requestID returns the ID instrument attached to this request.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

// newRequestID mints a 16-hex-char correlation token.
func newRequestID() string {
	//karma:det-ok request IDs are correlation tokens; no model output depends on them
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the response code for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the request middleware: request-ID
// assignment (inbound X-Request-ID honored, a fresh token minted
// otherwise, either way echoed in the response header), in-flight
// accounting, latency observation, and one structured log line.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		//karma:det-ok request latency and logs are wall-clock by nature; no model output depends on them
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))
		w.Header().Set("X-Request-ID", id)
		s.metrics.requestStart()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		s.metrics.requestEnd(endpoint, rec.code, elapsed.Seconds())
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"code", rec.code,
			"duration", elapsed,
			"remote", r.RemoteAddr,
			"request_id", id,
		)
	}
}

// writeJSON writes body (pre-encoded canonical bytes) as JSON.
func writeJSON(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

// writeError writes a JSON error body carrying the request's ID.
func writeError(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	b, _ := json.Marshal(apiError{Error: fmt.Sprintf(format, args...), RequestID: requestID(r)})
	writeJSON(w, code, append(b, '\n'))
}

// encode marshals a response body in the canonical form the cache
// stores: compact JSON plus a trailing newline.
func encode(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// decodeStrict decodes a JSON request body, rejecting unknown fields
// (a typoed option must fail loudly, not silently evaluate a default).
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Trailing garbage after the JSON value is a malformed request too.
	if dec.More() {
		return fmt.Errorf("request body holds more than one JSON value")
	}
	return nil
}

// compute runs fn under the response cache, the singleflight, the
// evaluation semaphore and the request deadline: a cache hit returns
// stored bytes; a miss computes once for all identical concurrent
// requests. When the deadline (or the client) cancels first, the
// computation keeps running to completion so its result still lands in
// the cache — pure CPU work cannot be preempted midway, only awaited or
// abandoned — and the abandoning request reports 504.
func (s *Server) compute(ctx context.Context, endpoint, key string, fn func() (any, error)) ([]byte, int, error) {
	return s.computeRaw(ctx, endpoint, key, func() ([]byte, error) {
		v, err := fn()
		if err != nil {
			return nil, err
		}
		return encode(v)
	})
}

// computeRaw is compute for endpoints whose cached body is not the
// canonical compact-JSON encoding (the Chrome trace is served verbatim
// as its writer produced it).
func (s *Server) computeRaw(ctx context.Context, endpoint, key string, fn func() ([]byte, error)) ([]byte, int, error) {
	type outcome struct {
		body []byte
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		body, err := s.cache.do(key, func() ([]byte, error) {
			if s.evalHook != nil {
				s.evalHook(endpoint)
			}
			s.slots <- struct{}{}
			defer func() { <-s.slots }()
			return fn()
		})
		ch <- outcome{body: body, err: err}
	}()
	select {
	case out := <-ch:
		if out.err != nil {
			return nil, http.StatusUnprocessableEntity, out.err
		}
		return out.body, http.StatusOK, nil
	case <-ctx.Done():
		return nil, http.StatusGatewayTimeout,
			fmt.Errorf("request deadline exceeded; the evaluation continues and will be cached for a retry")
	}
}

// postJSON guards method and content shape for the POST endpoints.
func postJSON(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, r, http.StatusMethodNotAllowed, "use POST with a JSON body")
		return false
	}
	return true
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	s.handleEval(w, r, "/v1/evaluate", func(res *dist.Result) any {
		return EvaluateResponse{Result: res}
	})
}

func (s *Server) handleFeasibility(w http.ResponseWriter, r *http.Request) {
	s.handleEval(w, r, "/v1/feasibility", func(res *dist.Result) any {
		return FeasibilityResponse{
			Feasible:    res.Feasible,
			Reason:      res.Reason,
			GPUs:        res.GPUs,
			GlobalBatch: res.GlobalBatch,
			Backend:     res.Backend,
		}
	})
}

// handleEval is the shared evaluate/feasibility path; project shapes
// the evaluation into the endpoint's response body.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request, endpoint string, project func(*dist.Result) any) {
	if !postJSON(w, r) {
		return
	}
	var req EvaluateRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := canonicalKey(endpoint, &req)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	body, code, err := s.compute(ctx, endpoint, key, func() (any, error) {
		res, err := req.evaluate(s.evals[req.Backend], s.graphs)
		if err != nil {
			return nil, err
		}
		return project(res), nil
	})
	if err != nil {
		writeError(w, r, code, "%v", err)
		return
	}
	writeJSON(w, code, body)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !postJSON(w, r) {
		return
	}
	var req SweepRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := canonicalKey("/v1/sweep", &req)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	body, code, err := s.compute(ctx, "/v1/sweep", key, func() (any, error) {
		return req.run(s.evals[req.Backend], s.cfg.Workers)
	})
	if err != nil {
		writeError(w, r, code, "%v", err)
		return
	}
	writeJSON(w, code, body)
}

// healthBody is the /healthz response: liveness plus the build identity
// of the serving binary, so a probe (or a human with curl) can tell
// which build answered.
type healthBody struct {
	Status  string `json:"status"`
	Go      string `json:"go"`
	Version string `json:"version"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body, err := encode(healthBody{Status: "ok", Go: s.build.goVersion, Version: s.build.version})
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var sb strings.Builder
	planned, _ := s.evals["planned"].(*dist.Planned)
	caches := []cacheStats{
		{name: "response", s: s.cache.stats()},
		{name: "graphs", s: s.graphs.stats()},
		{name: "evaluator_shared", s: dist.SharedCacheStats()},
	}
	if planned != nil {
		caches = append(caches, cacheStats{name: "evaluator_planned", s: planned.CacheStats()})
	}
	s.metrics.render(&sb, s.build, caches)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, sb.String())
}
