package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"karma/internal/plan"
)

// exportBody is the /v1/evaluate request the export tests share: a
// planner-backed hybrid whose plan has real multi-stream structure.
const exportBody = `{"family":"mp+dp","model":"megatron-2.5B","mp":4,"gpus":256,"batch":4,"ckpt":true}`

// chromeTrace is the subset of the trace-event schema the tests check.
type chromeTrace struct {
	TraceEvents []struct {
		Name  string  `json:"name"`
		Cat   string  `json:"cat"`
		Phase string  `json:"ph"`
		TS    float64 `json:"ts"`
		PID   int     `json:"pid"`
		TID   int     `json:"tid"`
	} `json:"traceEvents"`
}

// TestPlanEndpoint pins the /v1/plan contract: the exported plan
// round-trips through plan.Decode and rides next to the evaluator's
// verdict (with its breakdown).
func TestPlanEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	code, body := post(t, s, "/v1/plan", exportBody)
	if code != http.StatusOK {
		t.Fatalf("plan = %d: %s", code, body)
	}
	var resp PlanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if len(resp.Plan) == 0 {
		t.Fatal("response carries no plan")
	}
	pl, err := plan.Decode(bytes.NewReader(resp.Plan))
	if err != nil {
		t.Fatalf("exported plan does not round-trip through plan.Decode: %v", err)
	}
	if len(pl.Stages) == 0 {
		t.Error("decoded plan has no stages")
	}
	if resp.Result == nil || !resp.Result.Feasible {
		t.Fatalf("plan must ride with a feasible verdict, got %+v", resp.Result)
	}
	if resp.Result.Backend != "planned" {
		t.Errorf("export backend = %q, want planned (forced)", resp.Result.Backend)
	}
	if resp.Result.Breakdown == nil {
		t.Error("export verdict carries no breakdown")
	}
}

// TestTraceEndpoint pins the /v1/trace contract: valid Chrome
// trace-event JSON, byte-identical across worker counts, a GET query
// variant sharing the POST cache entry, and the cache hit visible in
// /stats.
func TestTraceEndpoint(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 3, 8} {
		s := newTestServer(t, Config{Workers: workers})
		code, body := post(t, s, "/v1/trace", exportBody)
		if code != http.StatusOK {
			t.Fatalf("workers=%d: trace = %d: %s", workers, code, body)
		}
		if ref == nil {
			ref = body
		} else if !bytes.Equal(ref, body) {
			t.Fatalf("workers=%d produced a different trace body", workers)
		}
	}
	var tr chromeTrace
	if err := json.Unmarshal(ref, &tr); err != nil {
		t.Fatalf("trace body is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	tids := map[int]bool{}
	for i, e := range tr.TraceEvents {
		if e.Name == "" || e.Cat == "" || e.PID != 1 || e.TID < 1 {
			t.Fatalf("event %d malformed: %+v", i, e)
		}
		if e.Phase != "X" && e.Phase != "i" {
			t.Fatalf("event %d has phase %q, want X or i", i, e.Phase)
		}
		tids[e.TID] = true
	}
	if len(tids) < 2 {
		t.Errorf("trace uses %d streams, want at least compute plus one copy/comm stream", len(tids))
	}

	// The GET variant canonicalizes to the same key as the POST body, so
	// a fresh server serves the second request from cache — observable as
	// a response-cache hit in /stats.
	s := newTestServer(t, Config{})
	const query = "/v1/trace?family=mp%2Bdp&model=megatron-2.5B&mp=4&gpus=256&batch=4&ckpt=true"
	code, got := get(t, s, query)
	if code != http.StatusOK {
		t.Fatalf("GET trace = %d: %s", code, got)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("GET trace body differs from the POST body")
	}
	if code, body := post(t, s, "/v1/trace", exportBody); code != http.StatusOK {
		t.Fatalf("POST after GET = %d: %s", code, body)
	}
	code, stats := get(t, s, "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if !strings.Contains(string(stats), `karma_serve_cache_hits_total{cache="response"} 1`) {
		t.Errorf("GET and POST must share one cache entry; stats:\n%s", stats)
	}
}

// TestExportBadRequests pins the rejection paths specific to the export
// endpoints.
func TestExportBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, path string
		wantCode   int
	}{
		{"dp has no plan", "/v1/plan?family=dp&model=resnet50&gpus=16&batch=32", http.StatusBadRequest},
		{"unknown query param", "/v1/trace?family=karma-dp&model=resnet50&gpus=16&batch=32&gpuz=1", http.StatusBadRequest},
		{"bad int", "/v1/trace?family=karma-dp&model=resnet50&gpus=many&batch=32", http.StatusBadRequest},
		{"bad bool", "/v1/trace?family=karma-dp&model=resnet50&gpus=16&batch=32&ckpt=maybe", http.StatusBadRequest},
		{"missing model", "/v1/plan?family=karma-dp&gpus=16&batch=32", http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, body := get(t, s, tc.path)
			if code != tc.wantCode {
				t.Fatalf("code = %d, want %d: %s", code, tc.wantCode, body)
			}
			var e apiError
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("error body must be {\"error\": ...}, got %q (%v)", body, err)
			}
		})
	}
}
