package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"

	"karma/internal/dist"
	"karma/internal/tensor"
	"karma/internal/trace"
)

// The /v1/plan and /v1/trace endpoints export one configuration's full
// execution story: the compiled plan IR and its simulated timeline.
// They accept the /v1/evaluate JSON body via POST, or the same fields
// as flat query parameters via GET (the explicit transformer config is
// POST-only; GET selects models by name). Either way the planned
// backend runs — the export is the planner's schedule by definition, so
// a requested backend is overridden before the cache key is derived.

// exportQueryFields lists the accepted GET query parameters, mirroring
// EvaluateRequest's JSON tags.
var exportQueryFields = []string{
	"family", "model", "gpus", "batch", "samples", "mp", "stages", "micro",
	"ckpt", "phased", "precision", "zero_shard", "update_on_device",
	"preset", "nodes", "topology",
}

// queryRequest builds an EvaluateRequest from GET query parameters,
// rejecting unknown names (the query-string analogue of decodeStrict).
func queryRequest(q url.Values) (*EvaluateRequest, error) {
	known := map[string]bool{}
	for _, f := range exportQueryFields {
		known[f] = true
	}
	var unknown []string
	for k := range q { //karma:det-ok keys are sorted before use
		if !known[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown query parameter %q", unknown[0])
	}
	req := &EvaluateRequest{
		Family:    q.Get("family"),
		Model:     q.Get("model"),
		Precision: q.Get("precision"),
		Cluster: ClusterSpec{
			Preset:   q.Get("preset"),
			Topology: q.Get("topology"),
		},
	}
	for _, f := range []struct {
		name string
		dst  *int
	}{
		{"gpus", &req.GPUs}, {"batch", &req.Batch}, {"samples", &req.Samples},
		{"mp", &req.MP}, {"stages", &req.Stages}, {"micro", &req.Micro},
		{"nodes", &req.Cluster.Nodes},
	} {
		if v := q.Get(f.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("query parameter %s: %v", f.name, err)
			}
			*f.dst = n
		}
	}
	for _, f := range []struct {
		name string
		dst  *bool
	}{
		{"ckpt", &req.Ckpt}, {"phased", &req.Phased},
		{"zero_shard", &req.ZeROShard}, {"update_on_device", &req.UpdateOnDevice},
	} {
		if v := q.Get(f.name); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return nil, fmt.Errorf("query parameter %s: %v", f.name, err)
			}
			*f.dst = b
		}
	}
	return req, nil
}

// exportRequest decodes, normalizes and keys a plan/trace request. It
// writes the error response itself; ok reports whether the caller may
// proceed.
func (s *Server) exportRequest(w http.ResponseWriter, r *http.Request, endpoint string) (req *EvaluateRequest, key string, ok bool) {
	switch r.Method {
	case http.MethodGet:
		var err error
		if req, err = queryRequest(r.URL.Query()); err != nil {
			writeError(w, r, http.StatusBadRequest, "%v", err)
			return nil, "", false
		}
	case http.MethodPost:
		req = &EvaluateRequest{}
		if err := decodeStrict(r, req); err != nil {
			writeError(w, r, http.StatusBadRequest, "decoding request: %v", err)
			return nil, "", false
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, r, http.StatusMethodNotAllowed, "use GET with query parameters or POST with a JSON body")
		return nil, "", false
	}
	// The export is the planner's schedule by definition; overriding the
	// backend before keying lets explicit-planned and defaulted requests
	// share one cache entry.
	req.Backend = "planned"
	if err := req.normalize(); err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return nil, "", false
	}
	if req.Family == "dp" {
		writeError(w, r, http.StatusBadRequest,
			"family %q has no planner schedule to export (its exchange is closed-form); use karma-dp", req.Family)
		return nil, "", false
	}
	key, err := canonicalKey(endpoint, req)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return nil, "", false
	}
	return req, key, true
}

// export dispatches a normalized request to the planned evaluator's
// export API.
func (s *Server) export(req *EvaluateRequest) (*dist.PlanExport, error) {
	pe, ok := s.evals["planned"].(*dist.Planned)
	if !ok {
		return nil, fmt.Errorf("planned backend unavailable")
	}
	cl, err := req.Cluster.cluster()
	if err != nil {
		return nil, err
	}
	prec, err := tensor.ParsePrecision(req.Precision)
	if err != nil {
		return nil, err
	}
	ho := dist.HybridOptions{Phased: req.Phased, Checkpoint: req.Ckpt, Precision: prec}
	switch req.Family {
	case "karma-dp":
		g, err := req.graphFor(s.graphs)
		if err != nil {
			return nil, err
		}
		return pe.ExportKARMA(g, cl, req.GPUs, req.Batch, req.Samples, dist.KARMAOptions{
			UpdateOnDevice: req.UpdateOnDevice,
			ZeROShard:      req.ZeROShard,
			Precision:      prec,
		})
	case "mp+dp":
		return pe.ExportHybrid(*req.Transformer, cl, req.MP, req.GPUs, req.Batch, req.Samples, false, ho)
	case "zero":
		return pe.ExportHybrid(*req.Transformer, cl, req.MP, req.GPUs, req.Batch, req.Samples, true, ho)
	case "pipeline":
		return pe.ExportPipeline(*req.Transformer, cl, req.Stages, req.GPUs, req.Batch, req.Micro, req.Samples, ho)
	default:
		return nil, fmt.Errorf("family %q has no plan to export", req.Family)
	}
}

// PlanResponse is the /v1/plan body: the compiled plan in its canonical
// JSON codec form (plan.Encode — the same bytes karma-plan emits, so
// plan.Decode round-trips it), next to the evaluator's verdict for the
// same configuration.
type PlanResponse struct {
	Plan   json.RawMessage `json:"plan"`
	Result *dist.Result    `json:"result"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	req, key, ok := s.exportRequest(w, r, "/v1/plan")
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	body, code, err := s.compute(ctx, "/v1/plan", key, func() (any, error) {
		ex, err := s.export(req)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := ex.Plan.Encode(&buf); err != nil {
			return nil, err
		}
		return PlanResponse{Plan: bytes.TrimSpace(buf.Bytes()), Result: ex.Result}, nil
	})
	if err != nil {
		writeError(w, r, code, "%v", err)
		return
	}
	writeJSON(w, code, body)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	req, key, ok := s.exportRequest(w, r, "/v1/trace")
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	body, code, err := s.computeRaw(ctx, "/v1/trace", key, func() ([]byte, error) {
		ex, err := s.export(req)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, trace.Collect(ex.Compiled.Ops, ex.Timeline)); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	if err != nil {
		writeError(w, r, code, "%v", err)
		return
	}
	writeJSON(w, code, body)
}
