package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"karma/internal/dist"
)

// latencyBuckets are the fixed histogram bounds (seconds) of the
// request-latency histogram. They span a cache hit (~100µs) to a cold
// planned table5 sweep (tens of seconds); +Inf is implicit.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 30}

// metrics is the /stats state: request counters by (endpoint, code), an
// in-flight gauge, and one latency histogram per endpoint. All writes
// go through the mutex; rendering iterates sorted keys so the exposition
// is byte-stable for a given state.
type metrics struct {
	mu       sync.Mutex
	requests map[requestKey]uint64
	inFlight int
	hist     map[string]*histogram
	phases   map[string]*phaseStat
}

// phaseStat accumulates one evaluation phase's wall-clock time (the
// Planned evaluator's Observe feed: search, plan_build, simulate).
type phaseStat struct {
	sum   float64
	count uint64
}

type requestKey struct {
	endpoint string
	code     int
}

type histogram struct {
	counts []uint64 // one per latencyBuckets entry, plus a final +Inf
	sum    float64
	count  uint64
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[requestKey]uint64{},
		hist:     map[string]*histogram{},
		phases:   map[string]*phaseStat{},
	}
}

// evalPhase records one evaluation phase duration; it is the callback
// registered with the planned evaluator's Observe hook and may be
// invoked from concurrent evaluations.
func (m *metrics) evalPhase(phase string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.phases[phase]
	if p == nil {
		p = &phaseStat{}
		m.phases[phase] = p
	}
	p.sum += seconds
	p.count++
}

func (m *metrics) requestStart() {
	m.mu.Lock()
	m.inFlight++
	m.mu.Unlock()
}

func (m *metrics) requestEnd(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inFlight--
	m.requests[requestKey{endpoint: endpoint, code: code}]++
	h := m.hist[endpoint]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(latencyBuckets)+1)}
		m.hist[endpoint] = h
	}
	for i, b := range latencyBuckets {
		if seconds <= b {
			h.counts[i]++
		}
	}
	h.counts[len(latencyBuckets)]++ // +Inf
	h.sum += seconds
	h.count++
}

// cacheStats is one named cache's snapshot for rendering.
type cacheStats struct {
	name string
	s    dist.CacheStats
}

// buildInfo labels the karma_build_info gauge: the Go toolchain that
// built the binary and the main-module version when one is stamped.
type buildInfo struct {
	goVersion string
	version   string
}

// render writes the Prometheus text exposition: the build-info gauge,
// request counters, the in-flight gauge, per-endpoint latency
// histograms, the evaluation-phase timing series, and one block of
// hit/miss/eviction/entry series per cache layer (response cache,
// shared evaluator memos, planner instance memos).
func (m *metrics) render(sb *strings.Builder, bi buildInfo, caches []cacheStats) {
	m.mu.Lock()
	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests { //karma:det-ok keys are sorted before rendering
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	endpoints := make([]string, 0, len(m.hist))
	hists := map[string]histogram{}
	for k, h := range m.hist { //karma:det-ok keys are sorted before rendering
		endpoints = append(endpoints, k)
		snap := *h
		snap.counts = append([]uint64(nil), h.counts...)
		hists[k] = snap
	}
	sort.Strings(endpoints)
	counts := make([]uint64, len(keys))
	for i, k := range keys {
		counts[i] = m.requests[k]
	}
	phaseNames := make([]string, 0, len(m.phases))
	phaseSnaps := map[string]phaseStat{}
	for k, p := range m.phases { //karma:det-ok keys are sorted before rendering
		phaseNames = append(phaseNames, k)
		phaseSnaps[k] = *p
	}
	sort.Strings(phaseNames)
	inFlight := m.inFlight
	m.mu.Unlock()

	fmt.Fprintf(sb, "# HELP karma_build_info Build metadata of the serving binary, as labels.\n")
	fmt.Fprintf(sb, "# TYPE karma_build_info gauge\n")
	fmt.Fprintf(sb, "karma_build_info{go=%q,version=%q} 1\n", bi.goVersion, bi.version)

	fmt.Fprintf(sb, "# HELP karma_serve_requests_total Requests served, by endpoint and status code.\n")
	fmt.Fprintf(sb, "# TYPE karma_serve_requests_total counter\n")
	for i, k := range keys {
		fmt.Fprintf(sb, "karma_serve_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, counts[i])
	}
	fmt.Fprintf(sb, "# HELP karma_serve_in_flight Requests currently being served.\n")
	fmt.Fprintf(sb, "# TYPE karma_serve_in_flight gauge\n")
	fmt.Fprintf(sb, "karma_serve_in_flight %d\n", inFlight)

	fmt.Fprintf(sb, "# HELP karma_serve_request_seconds Request latency, by endpoint.\n")
	fmt.Fprintf(sb, "# TYPE karma_serve_request_seconds histogram\n")
	for _, ep := range endpoints {
		h := hists[ep]
		for i, b := range latencyBuckets {
			fmt.Fprintf(sb, "karma_serve_request_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, formatFloat(b), h.counts[i])
		}
		fmt.Fprintf(sb, "karma_serve_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, h.counts[len(latencyBuckets)])
		fmt.Fprintf(sb, "karma_serve_request_seconds_sum{endpoint=%q} %s\n", ep, formatFloat(h.sum))
		fmt.Fprintf(sb, "karma_serve_request_seconds_count{endpoint=%q} %d\n", ep, h.count)
	}

	if len(phaseNames) > 0 {
		fmt.Fprintf(sb, "# HELP karma_serve_eval_phase_seconds Wall-clock time inside planner evaluation phases (search, plan_build, simulate).\n")
		fmt.Fprintf(sb, "# TYPE karma_serve_eval_phase_seconds summary\n")
		for _, name := range phaseNames {
			p := phaseSnaps[name]
			fmt.Fprintf(sb, "karma_serve_eval_phase_seconds_sum{phase=%q} %s\n", name, formatFloat(p.sum))
			fmt.Fprintf(sb, "karma_serve_eval_phase_seconds_count{phase=%q} %d\n", name, p.count)
		}
	}

	fmt.Fprintf(sb, "# HELP karma_serve_cache_hits_total Cache lookups that found an entry, by cache layer.\n")
	fmt.Fprintf(sb, "# TYPE karma_serve_cache_hits_total counter\n")
	for _, c := range caches {
		fmt.Fprintf(sb, "karma_serve_cache_hits_total{cache=%q} %d\n", c.name, c.s.Hits)
	}
	fmt.Fprintf(sb, "# HELP karma_serve_cache_misses_total Cache lookups that started a computation, by cache layer.\n")
	fmt.Fprintf(sb, "# TYPE karma_serve_cache_misses_total counter\n")
	for _, c := range caches {
		fmt.Fprintf(sb, "karma_serve_cache_misses_total{cache=%q} %d\n", c.name, c.s.Misses)
	}
	fmt.Fprintf(sb, "# HELP karma_serve_cache_evictions_total Entries dropped by the LRU bound, by cache layer.\n")
	fmt.Fprintf(sb, "# TYPE karma_serve_cache_evictions_total counter\n")
	for _, c := range caches {
		fmt.Fprintf(sb, "karma_serve_cache_evictions_total{cache=%q} %d\n", c.name, c.s.Evictions)
	}
	fmt.Fprintf(sb, "# HELP karma_serve_cache_entries Entries resident, by cache layer.\n")
	fmt.Fprintf(sb, "# TYPE karma_serve_cache_entries gauge\n")
	for _, c := range caches {
		fmt.Fprintf(sb, "karma_serve_cache_entries{cache=%q} %d\n", c.name, c.s.Entries)
	}
}

// formatFloat renders a float the shortest round-trippable way (the
// Prometheus text convention for bucket bounds).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
