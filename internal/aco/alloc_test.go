package aco

import (
	"testing"

	"karma/internal/race"
)

// TestMinimizeIterationsAllocFree pins the colony's steady state: all
// allocation happens in setup (RNG, archive, weights, scratch point) and
// the final result copy, so extra iterations cost zero allocations. The
// measurement compares two runs differing only in iteration count —
// with a fixed seed both are deterministic, so any per-iteration
// allocation shows up as an exact difference.
func TestMinimizeIterationsAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	prob := Problem{
		Lower: []int{0, 0, 0, 0},
		Upper: []int{40, 40, 40, 40},
		Objective: func(x []int) float64 {
			var v float64
			for _, xi := range x {
				d := float64(xi - 17)
				v += d * d
			}
			return v
		},
		Feasible: func(x []int) bool { return x[0] <= x[3]+30 },
	}
	measure := func(iterations int) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := Minimize(prob, Options{Seed: 11, Ants: 8, Archive: 6, Iterations: iterations}); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(20)
	long := measure(220)
	if long != base {
		t.Errorf("200 extra iterations changed allocations: %.1f -> %.1f objects/op (want identical; %.3f/iteration)",
			base, long, (long-base)/200)
	}
}
