package aco

import (
	"math"
	"testing"
)

func TestMinimizeQuadratic(t *testing.T) {
	// min (x-7)^2 + (y+3)^2 over [-20, 20]^2 -> (7, -3).
	p := Problem{
		Lower: []int{-20, -20},
		Upper: []int{20, 20},
		Objective: func(x []int) float64 {
			dx, dy := float64(x[0]-7), float64(x[1]+3)
			return dx*dx + dy*dy
		},
	}
	r, err := Minimize(p, Options{Seed: 1})
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if r.X[0] != 7 || r.X[1] != -3 {
		t.Errorf("argmin = %v, want [7 -3] (value %v)", r.X, r.Value)
	}
	if r.Value != 0 {
		t.Errorf("value = %v, want 0", r.Value)
	}
	if r.Evals <= 0 {
		t.Error("no evaluations counted")
	}
}

func TestMinimizeWithConstraint(t *testing.T) {
	// min -(x+y) s.t. x+y <= 10, x,y in [0, 20] -> value -10.
	p := Problem{
		Lower:     []int{0, 0},
		Upper:     []int{20, 20},
		Objective: func(x []int) float64 { return -float64(x[0] + x[1]) },
		Feasible:  func(x []int) bool { return x[0]+x[1] <= 10 },
	}
	r, err := Minimize(p, Options{Seed: 2})
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if r.Value != -10 {
		t.Errorf("value = %v, want -10 (x=%v)", r.Value, r.X)
	}
	if r.X[0]+r.X[1] > 10 {
		t.Errorf("infeasible solution %v", r.X)
	}
}

func TestMinimizeMatchesBruteForce(t *testing.T) {
	// A bumpy 1-D objective over a small domain: ACO must find the global
	// optimum that exhaustive search identifies.
	obj := func(x []int) float64 {
		v := float64(x[0])
		return math.Sin(v)*10 + math.Abs(v-3)
	}
	best := math.Inf(1)
	for x := -15; x <= 15; x++ {
		if v := obj([]int{x}); v < best {
			best = v
		}
	}
	r, err := Minimize(Problem{
		Lower: []int{-15}, Upper: []int{15}, Objective: obj,
	}, Options{Seed: 3, Iterations: 400})
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if math.Abs(r.Value-best) > 1e-12 {
		t.Errorf("value = %v, brute force found %v", r.Value, best)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	p := Problem{
		Lower: []int{-50, -50, -50},
		Upper: []int{50, 50, 50},
		Objective: func(x []int) float64 {
			s := 0.0
			for i, v := range x {
				d := float64(v - 5*i)
				s += d * d
			}
			return s
		},
	}
	a, err := Minimize(p, Options{Seed: 42, Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Minimize(p, Options{Seed: 42, Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("same seed, different results: %v vs %v", a.X, b.X)
		}
	}
}

func TestValidation(t *testing.T) {
	obj := func(x []int) float64 { return 0 }
	cases := []Problem{
		{},
		{Lower: []int{0}, Upper: []int{1, 2}, Objective: obj},
		{Lower: []int{5}, Upper: []int{1}, Objective: obj},
		{Lower: []int{0}, Upper: []int{1}},
	}
	for i, p := range cases {
		if _, err := Minimize(p, Options{}); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestNoFeasiblePoint(t *testing.T) {
	p := Problem{
		Lower:     []int{0},
		Upper:     []int{3},
		Objective: func(x []int) float64 { return 0 },
		Feasible:  func(x []int) bool { return false },
	}
	if _, err := Minimize(p, Options{Seed: 1, Iterations: 5}); err == nil {
		t.Error("fully infeasible problem should error")
	}
}

func TestSingletonDomain(t *testing.T) {
	p := Problem{
		Lower:     []int{4},
		Upper:     []int{4},
		Objective: func(x []int) float64 { return float64(x[0]) },
	}
	r, err := Minimize(p, Options{Seed: 1, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.X[0] != 4 {
		t.Errorf("singleton domain returned %v", r.X)
	}
}

func TestBoundsRespected(t *testing.T) {
	// Objective pushes toward the boundary; result must stay in bounds.
	p := Problem{
		Lower:     []int{-3, -3},
		Upper:     []int{3, 3},
		Objective: func(x []int) float64 { return -float64(x[0]*x[0] + x[1]*x[1]) },
	}
	r, err := Minimize(p, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range r.X {
		if v < p.Lower[i] || v > p.Upper[i] {
			t.Errorf("dimension %d out of bounds: %d", i, v)
		}
	}
	if r.Value != -18 {
		t.Errorf("value = %v, want -18 (corner)", r.Value)
	}
}
