// Package aco is a from-scratch mixed-integer ant-colony optimizer — the
// stand-in for the closed-source MIDACO solver the paper uses for its
// two-tier ILP problem (§III-H; MIDACO itself is an extended ant-colony
// method, Schlüter et al.). The algorithm follows ACO-R adapted to integer
// domains: a ranked solution archive induces per-dimension Gaussian
// mixture kernels from which ants sample; samples are rounded and clamped
// to bounds, infeasible samples are penalized.
//
// The block partitioner in internal/solve uses an exact DP by default and
// cross-checks this solver in tests (ablation A5 in DESIGN.md).
package aco

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Problem is a bounded integer minimization problem.
type Problem struct {
	// Lower and Upper are inclusive per-dimension bounds.
	Lower, Upper []int
	// Objective returns the value to minimize. It is only called on
	// points within bounds.
	Objective func(x []int) float64
	// Feasible optionally rejects points (hard constraints). Infeasible
	// points are retried a few times, then penalized.
	Feasible func(x []int) bool
}

func (p Problem) validate() error {
	if len(p.Lower) == 0 || len(p.Lower) != len(p.Upper) {
		return errors.New("aco: bounds must be non-empty and congruent")
	}
	for i := range p.Lower {
		if p.Lower[i] > p.Upper[i] {
			return fmt.Errorf("aco: dimension %d: lower %d > upper %d", i, p.Lower[i], p.Upper[i])
		}
	}
	if p.Objective == nil {
		return errors.New("aco: nil objective")
	}
	return nil
}

// Options tunes the colony.
type Options struct {
	// Ants per iteration (default 24).
	Ants int
	// Iterations of the colony (default 200).
	Iterations int
	// Archive size k (default 12).
	Archive int
	// Q is the rank-weight locality parameter (default 0.3; smaller
	// exploits the best solutions harder).
	Q float64
	// Xi scales sampling spread (default 0.85).
	Xi float64
	// Seed for the deterministic RNG.
	Seed int64
}

func (o *Options) normalize() {
	if o.Ants <= 0 {
		o.Ants = 24
	}
	if o.Iterations <= 0 {
		o.Iterations = 200
	}
	if o.Archive <= 1 {
		o.Archive = 12
	}
	if o.Q <= 0 {
		o.Q = 0.3
	}
	if o.Xi <= 0 {
		o.Xi = 0.85
	}
}

// Result is the best point found.
type Result struct {
	X     []int
	Value float64
	// Evals counts objective evaluations.
	Evals int
}

type member struct {
	x []int
	v float64
}

// Minimize runs the colony and returns the best feasible point found.
func Minimize(p Problem, opts Options) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	opts.normalize()
	rng := rand.New(rand.NewSource(opts.Seed))
	dim := len(p.Lower)

	feasible := p.Feasible
	if feasible == nil {
		feasible = func([]int) bool { return true }
	}

	evals := 0
	eval := func(x []int) (float64, bool) {
		evals++
		if !feasible(x) {
			return math.Inf(1), false
		}
		return p.Objective(x), true
	}

	randomPoint := func() []int {
		x := make([]int, dim)
		for i := range x {
			span := p.Upper[i] - p.Lower[i] + 1
			x[i] = p.Lower[i] + rng.Intn(span)
		}
		return x
	}

	// Seed the archive with random points (retrying for feasibility).
	archive := make([]member, 0, opts.Archive)
	for len(archive) < opts.Archive {
		x := randomPoint()
		v, ok := eval(x)
		if !ok {
			v = math.Inf(1)
		}
		archive = append(archive, member{x: x, v: v})
	}
	// Stable insertion sort: a stable sort's output permutation is unique,
	// so this matches sort.SliceStable without its reflection allocations.
	for i := 1; i < len(archive); i++ {
		for p := i; p > 0 && archive[p-1].v > archive[p].v; p-- {
			archive[p-1], archive[p] = archive[p], archive[p-1]
		}
	}

	// Rank weights (ACO-R): w_j ~ exp(-(j)^2 / (2 q^2 k^2)).
	k := float64(opts.Archive)
	weights := make([]float64, opts.Archive)
	var wsum float64
	for j := range weights {
		z := float64(j) / (opts.Q * k)
		weights[j] = math.Exp(-z * z / 2)
		wsum += weights[j]
	}
	pickKernel := func() int {
		r := rng.Float64() * wsum
		for j, w := range weights {
			if r -= w; r <= 0 {
				return j
			}
		}
		return opts.Archive - 1
	}

	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}

	// One scratch point serves every ant: accepted samples are copied
	// into the evicted archive member rather than stealing the slice, so
	// steady-state iterations allocate nothing.
	x := make([]int, dim)
	for it := 0; it < opts.Iterations; it++ {
		for a := 0; a < opts.Ants; a++ {
			j := pickKernel()
			for i := 0; i < dim; i++ {
				// Spread: mean absolute distance of the archive to the
				// chosen kernel in this dimension.
				var dist float64
				for _, m := range archive {
					dist += math.Abs(float64(m.x[i] - archive[j].x[i]))
				}
				sigma := opts.Xi * dist / k
				if sigma < 0.5 {
					sigma = 0.5 // keep integer moves possible
				}
				v := float64(archive[j].x[i]) + rng.NormFloat64()*sigma
				x[i] = clamp(int(math.Round(v)), p.Lower[i], p.Upper[i])
			}
			v, ok := eval(x)
			if !ok {
				continue
			}
			worst := &archive[opts.Archive-1]
			if v < worst.v {
				copy(worst.x, x)
				worst.v = v
				// Everything but the last member is already ordered; bubble
				// it into place (swap only on strict >, preserving the
				// stable order among equal values).
				for p := opts.Archive - 1; p > 0 && archive[p-1].v > archive[p].v; p-- {
					archive[p-1], archive[p] = archive[p], archive[p-1]
				}
			}
		}
	}
	best := archive[0]
	if math.IsInf(best.v, 1) {
		return Result{Evals: evals}, errors.New("aco: no feasible point found")
	}
	return Result{X: append([]int(nil), best.x...), Value: best.v, Evals: evals}, nil
}
