// Package analysis is a minimal, dependency-free clone of the
// golang.org/x/tools/go/analysis framework: just enough structure —
// Analyzer, Pass, Diagnostic — for the karma-vet suite (unitcheck,
// detcheck, plancheck) to be written in the standard modular-analyzer
// style without pulling x/tools into the module (the build environment
// is offline; the toolchain ships only the standard library).
//
// The deliberate differences from x/tools are small: there is no fact
// propagation (every analyzer here is a single-package syntactic or
// type-based check), no SuggestedFixes, and suppression is built in via
// `//karma:<name>-ok reason` comment directives rather than external
// nolint tooling. An analyzer declares the package import paths it
// applies to and whether it wants *_test.go files; the drivers
// (cmd/karma-vet and the analysistest harness) handle loading and
// filtering.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in output and selects its suppression
	// directive: a diagnostic from analyzer "unitcheck" is waived by a
	// `//karma:unit-ok reason` comment on the offending line or the line
	// above it (the directive name is Directive, defaulting to
	// Name-derived).
	Name string
	// Doc is the one-paragraph description shown by karma-vet -help.
	Doc string
	// Directive is the suppression directive keyword, e.g. "unit-ok".
	Directive string
	// Packages restricts the analyzer to packages whose import path
	// equals one of these entries (or, for entries ending in "/...", has
	// it as a prefix). Empty means every package.
	Packages []string
	// IncludeTests reports whether *_test.go files are analyzed too.
	IncludeTests bool
	// Run performs the check, reporting findings through the Pass.
	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer wants the given import path.
func (a *Analyzer) AppliesTo(importPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if prefix, ok := strings.CutSuffix(p, "/..."); ok {
			if importPath == prefix || strings.HasPrefix(importPath, prefix+"/") {
				return true
			}
		} else if importPath == p {
			return true
		}
	}
	return false
}

// Diagnostic is one finding, positioned in the analyzed package's fset.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// IsTestFile reports whether a file came from *_test.go (the loader
	// marks them so analyzers with IncludeTests=false can be fed a
	// pre-filtered view, and ones with it true can still tell).
	IsTestFile map[*ast.File]bool

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directiveRE matches `//karma:<word>-ok` with an optional reason.
var directiveRE = regexp.MustCompile(`^//karma:([a-z]+-ok)(?:[ \t]+(.*))?$`)

// directive is one parsed //karma:...-ok comment.
type directive struct {
	file   string
	line   int
	kind   string // e.g. "unit-ok"
	reason string
	pos    token.Pos
}

// directives extracts every //karma: suppression comment in the files.
func directives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				out = append(out, directive{
					file:   p.Filename,
					line:   p.Line,
					kind:   m[1],
					reason: strings.TrimSpace(m[2]),
					pos:    c.Pos(),
				})
			}
		}
	}
	return out
}

// RunAnalyzer executes a on the pass and returns its diagnostics with
// directive suppression applied: a finding is waived when a matching
// `//karma:<directive> reason` sits on the same line or the line above.
// Directives of the analyzer's kind that carry no reason are themselves
// reported — the escape hatch must document why it is used.
func RunAnalyzer(a *Analyzer, pass *Pass) ([]Diagnostic, error) {
	pass.Analyzer = a
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	dirs := directives(pass.Fset, pass.Files)
	waived := map[[2]any]bool{} // {file, line} with a reasoned directive
	for _, d := range dirs {
		if d.kind != a.Directive {
			continue
		}
		if d.reason == "" {
			pass.diags = append(pass.diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: a.Name,
				Message:  fmt.Sprintf("//karma:%s directive requires a reason", d.kind),
			})
			continue
		}
		waived[[2]any{d.file, d.line}] = true
		waived[[2]any{d.file, d.line + 1}] = true
	}
	var kept []Diagnostic
	for _, d := range pass.diags {
		p := pass.Fset.Position(d.Pos)
		if waived[[2]any{p.Filename, p.Line}] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// NamedFrom reports whether t (or its pointer elem) is the named type
// pkgPath.name. Analyzers match types structurally by path+name rather
// than object identity: the loader type-checks each package in its own
// pass, so the same source type can surface as distinct types.Object
// values across passes.
func NamedFrom(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// ObjectFrom reports whether obj belongs to pkgPath and has the name.
func ObjectFrom(obj types.Object, pkgPath, name string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
