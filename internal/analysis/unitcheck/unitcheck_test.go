package unitcheck_test

import (
	"testing"

	"karma/internal/analysis/analysistest"
	"karma/internal/analysis/unitcheck"
)

func TestUnitcheck(t *testing.T) {
	analysistest.Run(t, ".", unitcheck.Analyzer, "a")
}

func TestAppliesTo(t *testing.T) {
	a := unitcheck.Analyzer
	for _, pkg := range []string{"karma/internal/dist", "karma/internal/topo", "karma/internal/hw"} {
		if !a.AppliesTo(pkg) {
			t.Errorf("unitcheck should apply to %s", pkg)
		}
	}
	for _, pkg := range []string{"karma/internal/trace", "karma/internal/experiments"} {
		if a.AppliesTo(pkg) {
			t.Errorf("unitcheck should not apply to %s", pkg)
		}
	}
}
