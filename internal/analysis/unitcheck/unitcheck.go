// Package unitcheck flags unit-safety violations in the model packages:
// arithmetic that silently strips or mixes the dimensions carried by the
// karma/internal/unit types. The headline calibration numbers are plain
// float64 underneath — one unit-stripped conversion feeding a
// differently-dimensioned quantity corrupts a result without failing a
// test, so the dimensional bookkeeping is enforced statically instead.
//
// Three rules, built on a small dimension algebra (exponent vectors over
// {bytes, seconds, flops}; unit.BytesPerSec is bytes·sec⁻¹, FLOPSRate is
// flops·sec⁻¹; raw numeric expressions are dimensionless scalars, and
// float64(x)/int64(x) conversions propagate x's dimension rather than
// erasing it):
//
//  1. Mixed-dimension arithmetic: a + or - whose operands have different
//     non-scalar dimensions (adding bytes to seconds), and conversions
//     unit.T(expr) where expr's inferred dimension differs from T's
//     (wrapping a seconds-dimensioned value in unit.Bytes).
//
//  2. Same-unit scaling: x*y or x/y where both operands have the same
//     unit type and neither is a constant. The product is a squared
//     dimension and the quotient a dimensionless ratio, yet both keep
//     the unit type in Go's type system — almost always a scalar
//     wearing a unit costume (unit.Seconds(float64(n)) * perStep).
//     Compute in float64 and convert once.
//
//  3. Raw dimensioned names: struct fields, parameters, results and
//     local variables of plain float64 whose name ends in Bytes, BW,
//     Secs or FLOPS (case-insensitive). Quantities with dimensioned
//     names must carry the unit type; a fraction or ratio should not
//     have a dimensioned name.
//
// Genuinely dimensionless spots are waived with a
// `//karma:unit-ok reason` directive on the offending line or the line
// above.
package unitcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"karma/internal/analysis"
)

// unitPkg is the import path of the typed-quantity package.
const unitPkg = "karma/internal/unit"

// Analyzer is the unitcheck pass.
var Analyzer = &analysis.Analyzer{
	Name:      "unitcheck",
	Directive: "unit-ok",
	Doc: "flags unit-stripping conversions, mixed-dimension arithmetic, " +
		"same-unit scaling, and raw float64 declarations with dimensioned names " +
		"in the model packages",
	Packages: []string{
		"karma/internal/hw", "karma/internal/comm", "karma/internal/topo",
		"karma/internal/dist", "karma/internal/karma", "karma/internal/sim",
		"karma/internal/plan",
	},
	Run: run,
}

// dim is a dimension: exponents over bytes, seconds, flops. The zero
// value is a dimensionless scalar.
type dim struct{ b, s, f int }

func (d dim) scalar() bool { return d == dim{} }

func (d dim) mul(o dim) dim { return dim{d.b + o.b, d.s + o.s, d.f + o.f} }
func (d dim) div(o dim) dim { return dim{d.b - o.b, d.s - o.s, d.f - o.f} }

// String renders the dimension for diagnostics, e.g. "bytes·sec⁻¹".
func (d dim) String() string {
	if d.scalar() {
		return "dimensionless"
	}
	var parts []string
	for _, t := range []struct {
		name string
		exp  int
	}{{"bytes", d.b}, {"sec", d.s}, {"flops", d.f}} {
		switch {
		case t.exp == 1:
			parts = append(parts, t.name)
		case t.exp != 0:
			parts = append(parts, fmt.Sprintf("%s^%d", t.name, t.exp))
		}
	}
	return strings.Join(parts, "·")
}

// unitDims maps the unit package's named types to their dimensions.
var unitDims = map[string]dim{
	"Bytes":       {b: 1},
	"Seconds":     {s: 1},
	"FLOPs":       {f: 1},
	"BytesPerSec": {b: 1, s: -1},
	"FLOPSRate":   {s: -1, f: 1},
}

// unitDim returns the dimension of t when it is one of the unit types.
func unitDim(t types.Type) (dim, bool) {
	n, ok := t.(*types.Named)
	if !ok {
		return dim{}, false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != unitPkg {
		return dim{}, false
	}
	d, ok := unitDims[obj.Name()]
	return d, ok
}

// suffixTypes maps a dimensioned name suffix (lower-case) to the unit
// type that should carry it.
var suffixTypes = []struct{ suffix, unit string }{
	{"bytes", "unit.Bytes"},
	{"flops", "unit.FLOPs"},
	{"secs", "unit.Seconds"},
	{"bw", "unit.BytesPerSec"},
}

func dimSuffix(name string) (string, bool) {
	l := strings.ToLower(name)
	for _, s := range suffixTypes {
		if strings.HasSuffix(l, s.suffix) {
			return s.unit, true
		}
	}
	return "", false
}

type checker struct {
	pass *analysis.Pass
	// dims memoizes expression dimensions so shared subtrees are
	// evaluated (and reported) once.
	dims map[ast.Expr]dim
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, dims: map[ast.Expr]dim{}}
	for _, f := range pass.Files {
		if pass.IsTestFile[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				c.exprDim(n)
			case *ast.CallExpr:
				c.exprDim(n)
			case *ast.AssignStmt:
				c.checkAssign(n)
			case *ast.StructType:
				c.checkFieldList(n.Fields, "field")
			case *ast.FuncType:
				c.checkFieldList(n.Params, "parameter")
				c.checkFieldList(n.Results, "result")
			}
			return true
		})
	}
	return nil
}

// exprType returns the type recorded for e (nil when untypeable).
func (c *checker) exprType(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isConst reports whether e is a compile-time constant expression.
func (c *checker) isConst(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// exprDim infers the dimension of e, reporting violations as it goes.
func (c *checker) exprDim(e ast.Expr) dim {
	if d, ok := c.dims[e]; ok {
		return d
	}
	c.dims[e] = dim{} // break cycles; overwritten below
	d := c.inferDim(e)
	c.dims[e] = d
	return d
}

func (c *checker) inferDim(e ast.Expr) dim {
	switch e := e.(type) {
	case *ast.BasicLit:
		// A literal is a dimensionless scale factor even when context
		// types it as a unit (2 * b.WeightBytes).
		return dim{}
	case *ast.ParenExpr:
		return c.exprDim(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return c.exprDim(e.X)
		}
	case *ast.BinaryExpr:
		return c.binaryDim(e)
	case *ast.CallExpr:
		return c.callDim(e)
	}
	// Leaves (identifiers, selectors, index expressions, literals):
	// unit-typed expressions carry their type's dimension; every other
	// numeric expression is assumed dimensionless — the whole point of
	// the rule set is that dimensions must ride on unit types.
	if t := c.exprType(e); t != nil {
		if d, ok := unitDim(t); ok {
			return d
		}
	}
	return dim{}
}

func (c *checker) binaryDim(e *ast.BinaryExpr) dim {
	x, y := c.exprDim(e.X), c.exprDim(e.Y)
	switch e.Op {
	case token.MUL, token.QUO:
		c.checkSameUnitScaling(e)
		if e.Op == token.MUL {
			return x.mul(y)
		}
		return x.div(y)
	case token.ADD, token.SUB:
		if !x.scalar() && !y.scalar() && x != y {
			c.pass.Reportf(e.OpPos,
				"mixed-dimension arithmetic: %s operand %s %s operand (wrap one side in the right unit type or convert both to float64 at the same dimension)",
				x, e.Op, y)
		}
		if x.scalar() {
			return y
		}
		return x
	case token.REM:
		return x
	}
	return dim{}
}

// checkSameUnitScaling reports x*y / x/y where both operands share one
// unit type and neither is a constant: the result silently keeps the
// unit type while its dimension squared or cancelled.
func (c *checker) checkSameUnitScaling(e *ast.BinaryExpr) {
	tx, ty := c.exprType(e.X), c.exprType(e.Y)
	if tx == nil || ty == nil || !types.Identical(tx, ty) {
		return
	}
	if _, ok := unitDim(tx); !ok {
		return
	}
	if c.isConst(e.X) || c.isConst(e.Y) {
		return // scaling by a dimensionless literal constant is fine
	}
	name := "unit." + tx.(*types.Named).Obj().Name()
	if e.Op == token.MUL {
		c.pass.Reportf(e.OpPos,
			"%s * %s squares the dimension but keeps the type; do the arithmetic in float64 and convert once",
			name, name)
	} else {
		c.pass.Reportf(e.OpPos,
			"%s / %s is a dimensionless ratio (or a scalar disguised as %s); do the arithmetic in float64 and convert once",
			name, name, name)
	}
}

func (c *checker) callDim(e *ast.CallExpr) dim {
	// Conversions: T(x).
	if tv, ok := c.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
		inner := dim{}
		if len(e.Args) == 1 {
			inner = c.exprDim(e.Args[0])
		}
		if d, ok := unitDim(tv.Type); ok {
			if !inner.scalar() && inner != d {
				c.pass.Reportf(e.Pos(),
					"converting a %s-dimensioned value to %s (%s)",
					inner, "unit."+tv.Type.(*types.Named).Obj().Name(), d)
			}
			return d
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
			// float64(x), int64(x), ...: the dimension survives the
			// stripped representation and keeps being tracked.
			return inner
		}
		return dim{}
	}
	// math helpers preserve their argument's dimension.
	if sel, ok := e.Fun.(*ast.SelectorExpr); ok && len(e.Args) >= 1 {
		if obj, ok := c.pass.TypesInfo.Uses[sel.Sel]; ok &&
			obj.Pkg() != nil && obj.Pkg().Path() == "math" {
			switch sel.Sel.Name {
			case "Max", "Min", "Abs", "Ceil", "Floor", "Round", "Trunc":
				d := c.exprDim(e.Args[0])
				if sel.Sel.Name == "Max" || sel.Sel.Name == "Min" {
					if d2 := c.exprDim(e.Args[1]); !d.scalar() && !d2.scalar() && d != d2 {
						c.pass.Reportf(e.Pos(), "math.%s over mixed dimensions: %s vs %s", sel.Sel.Name, d, d2)
					} else if d.scalar() {
						d = d2
					}
				}
				return d
			}
		}
	}
	// Ordinary calls: trust the declared result type.
	if t := c.exprType(e); t != nil {
		if d, ok := unitDim(t); ok {
			return d
		}
	}
	return dim{}
}

// checkAssign handles *= and /= same-unit scaling and dimensioned-name
// short variable declarations.
func (c *checker) checkAssign(a *ast.AssignStmt) {
	switch a.Tok {
	case token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
			return
		}
		tx, ty := c.exprType(a.Lhs[0]), c.exprType(a.Rhs[0])
		if tx == nil || ty == nil || !types.Identical(tx, ty) || c.isConst(a.Rhs[0]) {
			return
		}
		if _, ok := unitDim(tx); ok {
			name := "unit." + tx.(*types.Named).Obj().Name()
			c.pass.Reportf(a.TokPos,
				"%s %s %s scales a unit quantity by a same-typed non-constant; do the arithmetic in float64 and convert once",
				name, a.Tok, name)
		}
	case token.DEFINE:
		for _, lhs := range a.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := c.pass.TypesInfo.Defs[id]
			if obj == nil {
				continue
			}
			c.checkRawName(id.Pos(), "variable", id.Name, obj.Type())
		}
	}
}

// checkFieldList reports raw float64 fields/params/results whose names
// carry a dimension suffix.
func (c *checker) checkFieldList(fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		t := c.exprType(f.Type)
		if t == nil {
			continue
		}
		for _, name := range f.Names {
			if name.Name == "_" {
				continue
			}
			c.checkRawName(name.Pos(), kind, name.Name, t)
		}
	}
}

// checkRawName reports a declaration of plain float64 with a
// dimensioned name suffix.
func (c *checker) checkRawName(pos token.Pos, kind, name string, t types.Type) {
	want, ok := dimSuffix(name)
	if !ok {
		return
	}
	b, ok := t.(*types.Basic)
	if !ok || b.Kind() != types.Float64 {
		return
	}
	c.pass.Reportf(pos,
		"%s %s is raw float64 but its name is dimensioned; use %s (or rename if it is genuinely a ratio)",
		kind, name, want)
}
