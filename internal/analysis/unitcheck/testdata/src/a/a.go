// Package a is the unitcheck fixture: each want line exercises one
// rule, and the clean section pins down the patterns the analyzer must
// keep accepting.
package a

import (
	"math"

	"karma/internal/unit"
)

type config struct {
	WeightBytes unit.Bytes
	LinkBW      float64 // want `field LinkBW is raw float64`
	Frac        float64
}

func mixed(b unit.Bytes, s unit.Seconds) float64 {
	return float64(b) + float64(s) // want `mixed-dimension arithmetic`
}

func scaled(per unit.Seconds, n int) unit.Seconds {
	steps := unit.Seconds(float64(n))
	return steps * per // want `unit\.Seconds \* unit\.Seconds squares the dimension`
}

func ratio(x, y unit.Seconds) unit.Seconds {
	return x / y // want `unit\.Seconds / unit\.Seconds is a dimensionless ratio`
}

func convert(s unit.Seconds) unit.Bytes {
	return unit.Bytes(float64(s)) // want `converting a sec-dimensioned value to unit\.Bytes`
}

func mulAssign(t, other unit.Seconds) unit.Seconds {
	t *= other // want `unit\.Seconds \*= unit\.Seconds scales a unit quantity`
	return t
}

func rawLocal(c config) float64 {
	weightBytes := float64(c.WeightBytes) * c.Frac // want `variable weightBytes is raw float64`
	return weightBytes
}

func names(totalSecs float64) (peakFLOPS float64) { // want `parameter totalSecs is raw float64` `result peakFLOPS is raw float64`
	return totalSecs
}

func mixedMax(b unit.Bytes, s unit.Seconds) float64 {
	return math.Max(float64(b), float64(s)) // want `math\.Max over mixed dimensions`
}

// Clean spots the analyzer must not flag.

func ok(c config, b unit.Bytes, s unit.Seconds, bw unit.BytesPerSec) unit.Seconds {
	_ = 2 * c.WeightBytes                      // literal scale factor, not bytes^2
	_ = b + c.WeightBytes                      // same dimension adds fine
	_ = unit.Seconds(float64(b) / float64(bw)) // bytes / (bytes/sec) = sec
	return s / 2                               // constant divisor is plain scaling
}

func waived(x, y unit.Seconds) unit.Seconds {
	//karma:unit-ok fixture exercises the reasoned waiver
	return x * y
}
