// Package detcheck flags nondeterminism hazards in the packages whose
// output is pinned by golden snapshots and cross-backend ordering tests
// (internal/experiments, internal/dist, internal/karma):
//
//  1. Map iteration. Go randomizes map order per run; in these packages
//     an iteration's order routinely reaches rendered tables, float
//     accumulation (non-associative), or plan construction, and a
//     reorder silently invalidates a golden row instead of failing
//     loudly. The rule is strict — every `range` over a map is flagged
//     — because auditing "can the order reach output?" by hand is
//     exactly the mistake-prone process this analyzer replaces. Iterate
//     a sorted key slice, use a slice keyed by index, or waive a
//     genuinely order-free loop with `//karma:det-ok reason`.
//
//  2. time.Now in model code. Simulated time is unit.Seconds; wall
//     clock reads make results environment-dependent.
//
//  3. math/rand package-level functions (rand.Intn, rand.Shuffle, ...).
//     These draw from the unseeded (Go ≥1.20: randomly-seeded) global
//     source; model code must thread an explicit seeded *rand.Rand the
//     way internal/aco and the property harnesses do.
package detcheck

import (
	"go/ast"
	"go/types"

	"karma/internal/analysis"
)

// Analyzer is the detcheck pass.
var Analyzer = &analysis.Analyzer{
	Name:      "detcheck",
	Directive: "det-ok",
	Doc: "flags map iteration, time.Now and global math/rand use in the " +
		"packages whose deterministic output golden tests depend on",
	Packages: []string{
		"karma/internal/experiments", "karma/internal/dist", "karma/internal/karma",
		// The sweep engine orders results; the bench gate orders reports.
		"karma/internal/sweep", "karma/internal/benchcmp",
		// The simulator core retired its `running` map for an indexed
		// heap; keep map iteration from creeping back into the hot loop.
		"karma/internal/sim",
		// karma-serve promises byte-identical responses for identical
		// requests; an unordered iteration in the response or /stats
		// rendering path would break that silently.
		"karma/internal/serve",
		// Exported traces are cached and compared byte-for-byte across
		// worker counts; an unordered iteration in the renderer would
		// shuffle events between identical requests.
		"karma/internal/trace",
	},
	Run: run,
}

// globalRandFns are the math/rand package-level functions drawing from
// the global source. Constructors (New, NewSource, NewZipf) are fine.
var globalRandFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "Perm": true, "Shuffle": true,
	"ExpFloat64": true, "NormFloat64": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkRange(pass, n)
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkRange(pass *analysis.Pass, r *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[r.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	pass.Reportf(r.For,
		"map iteration order is nondeterministic and this package feeds golden output, accumulation or plan construction; iterate sorted keys or an index-keyed slice")
}

func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	if _, isMethodOrField := pass.TypesInfo.Selections[sel]; isMethodOrField {
		// r.Intn on an explicit *rand.Rand is the sanctioned pattern; only
		// package-level qualified identifiers touch the global source.
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Now" {
			pass.Reportf(sel.Pos(),
				"time.Now in model code makes results wall-clock dependent; simulated time is unit.Seconds")
		}
	case "math/rand", "math/rand/v2":
		if globalRandFns[obj.Name()] {
			pass.Reportf(sel.Pos(),
				"rand.%s draws from the global source; thread an explicit seeded *rand.Rand instead", obj.Name())
		}
	}
}
