package detcheck_test

import (
	"testing"

	"karma/internal/analysis/analysistest"
	"karma/internal/analysis/detcheck"
)

func TestDetcheck(t *testing.T) {
	analysistest.Run(t, ".", detcheck.Analyzer, "a")
}

func TestAppliesTo(t *testing.T) {
	a := detcheck.Analyzer
	for _, pkg := range []string{"karma/internal/experiments", "karma/internal/dist", "karma/internal/karma"} {
		if !a.AppliesTo(pkg) {
			t.Errorf("detcheck should apply to %s", pkg)
		}
	}
	if a.AppliesTo("karma/internal/aco") {
		t.Error("detcheck should not apply to karma/internal/aco (it threads seeded *rand.Rand)")
	}
}
