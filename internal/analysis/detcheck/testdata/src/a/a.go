// Package a is the detcheck fixture.
package a

import (
	"math/rand"
	"sort"
	"time"
)

func mapOrder(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration order is nondeterministic`
		sum += v
	}
	return sum
}

func sortedOrder(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	//karma:det-ok keys are collected unordered here and iterated sorted below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

func wallClock() time.Time {
	return time.Now() // want `time\.Now in model code`
}

func globalRand() int {
	return rand.Intn(10) // want `rand\.Intn draws from the global source`
}

func seeded(r *rand.Rand) int {
	return r.Intn(10) // method on an explicit seeded source: sanctioned
}
