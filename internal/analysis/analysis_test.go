package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestAppliesTo(t *testing.T) {
	a := &Analyzer{Packages: []string{"karma/internal/dist", "karma/internal/analysis/..."}}
	cases := []struct {
		path string
		want bool
	}{
		{"karma/internal/dist", true},
		{"karma/internal/distx", false},
		{"karma/internal/analysis", true},
		{"karma/internal/analysis/load", true},
		{"karma/internal/trace", false},
	}
	for _, c := range cases {
		if got := a.AppliesTo(c.path); got != c.want {
			t.Errorf("AppliesTo(%q) = %v, want %v", c.path, got, c.want)
		}
	}
	all := &Analyzer{}
	if !all.AppliesTo("anything") {
		t.Error("empty Packages must apply everywhere")
	}
}

// TestRunAnalyzerDirectives pins the suppression semantics: a reasoned
// directive waives findings on its line and the next, a reason-less
// directive is itself a finding, and survivors come out sorted.
func TestRunAnalyzerDirectives(t *testing.T) {
	src := `package p

func f() int {
	//karma:test-ok covered by the harness
	a := 1
	b := 2 //karma:test-ok
	return a + b
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tf := fset.File(f.Pos())
	a := &Analyzer{
		Name:      "test",
		Directive: "test-ok",
		Run: func(p *Pass) error {
			p.Reportf(tf.LineStart(7), "kept finding")
			p.Reportf(tf.LineStart(5), "waived finding")
			return nil
		},
	}
	diags, err := RunAnalyzer(a, &Pass{Fset: fset, Files: []*ast.File{f}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %d, want 2:\n%+v", len(diags), diags)
	}
	// Sorted by position: the reason-less directive on line 6 first.
	if !strings.Contains(diags[0].Message, "requires a reason") {
		t.Errorf("diag[0] = %q, want the reason-less directive finding", diags[0].Message)
	}
	if diags[1].Message != "kept finding" {
		t.Errorf("diag[1] = %q, want the unwaived finding", diags[1].Message)
	}
	for _, d := range diags {
		if d.Message == "waived finding" {
			t.Error("the reasoned directive on line 4 must waive line 5")
		}
	}
}
