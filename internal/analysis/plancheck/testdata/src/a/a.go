// Package a is the plancheck fixture.
package a

import (
	"karma/internal/plan"
	"karma/internal/sim"
)

func bypass(ops []sim.Op) {
	sim.Run(ops, 1) // want `sim\.Run on hand-assembled ops bypasses plan validation`
}

func harness(ops []sim.Op) {
	//karma:plan-ok fixture exercises the reasoned waiver
	sim.Run(ops, 1)
}

func sendOnly(pl *plan.Plan) {
	pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
		Kind: plan.Send, // want `sendOnly constructs plan\.Send ops with no matching Recv`
	}}})
}

func recvOnly(pl *plan.Plan) {
	pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
		Kind: plan.RecvLocal, // want `recvOnly constructs plan\.Recv ops with no matching Send`
	}}})
}

func paired(pl *plan.Plan) {
	pl.Stages = append(pl.Stages,
		plan.Stage{Ops: []plan.Op{{Kind: plan.Send}}},
		plan.Stage{Ops: []plan.Op{{Kind: plan.Recv}}})
}

func deps() []sim.Op {
	return []sim.Op{
		{Stream: sim.Compute},
		{Stream: sim.Compute, Deps: []int{0}},
		{Stream: sim.Compute, Deps: []int{2}},  // want `dep index 2 references op 2 or later`
		{Stream: sim.Compute, Deps: []int{-1}}, // want `negative dep index -1`
	}
}

func negCosts() []plan.Op {
	return []plan.Op{
		{Kind: plan.Fwd, Duration: -1}, // want `negative Duration in plan\.Op literal`
		{Kind: plan.Fwd, Alloc: -5},    // want `negative Alloc in plan\.Op literal`
		{Kind: plan.Fwd, Duration: 2, Alloc: 8, Free: 8},
	}
}
