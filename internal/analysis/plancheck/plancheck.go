// Package plancheck enforces the construction invariants of the
// internal/plan execution-plan IR at every builder site in the module:
//
//  1. No validation bypass: ops reach internal/sim only through
//     (*plan.Plan).Compile / Simulate, whose first act is Validate.
//     Calling sim.Run on a hand-assembled []sim.Op skips the structural
//     checks (block ranges, producer-before-consumer ordering), so any
//     such call outside internal/plan and internal/sim themselves is
//     flagged. Deliberate low-level harnesses (stream-contention tests)
//     waive with `//karma:plan-ok reason`.
//
//  2. Send/Recv pairing: a builder function constructing pipeline
//     boundary Send (or SendLocal) ops must also construct the matching
//     Recv (RecvLocal) side in the same scope, and vice versa — a
//     one-sided boundary deadlocks or under-costs the wire. The check
//     is per function, matching how every builder in internal/dist is
//     written.
//
//  3. Dep edges reference ops already added: in a []sim.Op composite
//     literal, a literal Deps index must be non-negative and smaller
//     than the op's own position (the DAG is append-ordered; a forward
//     or self reference is a cycle the simulator only catches at run
//     time).
//
//  4. No negative costs in plan.Op literals: Duration, Alloc and Free
//     must be non-negative; Validate rejects them at run time, this
//     rejects them at vet time.
//
// The analyzer runs over test files too — hand-built op DAGs live in
// tests.
package plancheck

import (
	"go/ast"
	"go/constant"
	"go/types"

	"karma/internal/analysis"
)

const (
	planPkg = "karma/internal/plan"
	simPkg  = "karma/internal/sim"
)

// Analyzer is the plancheck pass.
var Analyzer = &analysis.Analyzer{
	Name:         "plancheck",
	Directive:    "plan-ok",
	Doc:          "enforces plan-IR construction invariants: no sim.Run validation bypass, Send/Recv pairing per builder scope, backward-only literal dep edges, non-negative op costs",
	IncludeTests: true,
	Run:          run,
}

func run(pass *analysis.Pass) error {
	self := pass.Pkg != nil && (pass.Pkg.Path() == planPkg || pass.Pkg.Path() == simPkg)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !self {
				checkSendRecvPairing(pass, fd)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if !self {
						checkSimRunBypass(pass, n)
					}
				case *ast.CompositeLit:
					checkSimOpLiteral(pass, n)
					checkPlanOpCosts(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

// kindUse reports whether obj is the plan kind constant with the name.
func kindUse(obj types.Object, name string) bool {
	return analysis.ObjectFrom(obj, planPkg, name)
}

// checkSendRecvPairing flags builder functions constructing only one
// side of a pipeline boundary.
func checkSendRecvPairing(pass *analysis.Pass, fd *ast.FuncDecl) {
	var firstSend, firstRecv *ast.Ident
	sends, recvs := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		switch {
		case kindUse(obj, "Send") || kindUse(obj, "SendLocal"):
			if !sends {
				firstSend = id
			}
			sends = true
		case kindUse(obj, "Recv") || kindUse(obj, "RecvLocal"):
			if !recvs {
				firstRecv = id
			}
			recvs = true
		}
		return true
	})
	if sends && !recvs {
		pass.Reportf(firstSend.Pos(),
			"%s constructs plan.Send ops with no matching Recv in the same builder scope; a one-sided boundary deadlocks or under-costs the wire", fd.Name.Name)
	}
	if recvs && !sends {
		pass.Reportf(firstRecv.Pos(),
			"%s constructs plan.Recv ops with no matching Send in the same builder scope; a one-sided boundary deadlocks or under-costs the wire", fd.Name.Name)
	}
}

// checkSimRunBypass flags direct sim.Run calls outside internal/plan.
func checkSimRunBypass(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if obj := pass.TypesInfo.Uses[sel.Sel]; analysis.ObjectFrom(obj, simPkg, "Run") {
		pass.Reportf(call.Pos(),
			"sim.Run on hand-assembled ops bypasses plan validation; build a plan.Plan and use Compile/Simulate")
	}
}

// checkSimOpLiteral verifies literal Deps edges in []sim.Op composite
// literals point strictly backward.
func checkSimOpLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok || !analysis.NamedFrom(sl.Elem(), simPkg, "Op") {
		return
	}
	for i, elt := range lit.Elts {
		op, ok := elt.(*ast.CompositeLit)
		if !ok {
			continue
		}
		for _, f := range op.Elts {
			kv, ok := f.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Deps" {
				continue
			}
			deps, ok := kv.Value.(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, d := range deps.Elts {
				v := constInt(pass, d)
				if v == nil {
					continue
				}
				switch {
				case *v < 0:
					pass.Reportf(d.Pos(), "negative dep index %d in sim.Op literal", *v)
				case *v >= int64(i):
					pass.Reportf(d.Pos(),
						"dep index %d references op %d or later from op %d; dep edges must reference ops already added", *v, i, i)
				}
			}
		}
	}
}

// checkPlanOpCosts flags negative constant Duration/Alloc/Free fields
// in plan.Op composite literals.
func checkPlanOpCosts(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !analysis.NamedFrom(tv.Type, planPkg, "Op") {
		return
	}
	for _, f := range lit.Elts {
		kv, ok := f.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Duration", "Alloc", "Free":
			if v := constInt(pass, kv.Value); v != nil && *v < 0 {
				pass.Reportf(kv.Value.Pos(), "negative %s in plan.Op literal; Validate rejects it at run time", key.Name)
			} else if fv := constFloat(pass, kv.Value); fv != nil && *fv < 0 {
				pass.Reportf(kv.Value.Pos(), "negative %s in plan.Op literal; Validate rejects it at run time", key.Name)
			}
		}
	}
}

// constInt returns e's value when it is an integer constant.
func constInt(pass *analysis.Pass, e ast.Expr) *int64 {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return nil
	}
	if v, exact := constant.Int64Val(tv.Value); exact {
		return &v
	}
	return nil
}

// constFloat returns e's value when it is a float constant.
func constFloat(pass *analysis.Pass, e ast.Expr) *float64 {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return nil
	}
	if tv.Value.Kind() != constant.Float && tv.Value.Kind() != constant.Int {
		return nil
	}
	v, _ := constant.Float64Val(tv.Value)
	return &v
}
