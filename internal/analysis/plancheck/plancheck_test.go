package plancheck_test

import (
	"testing"

	"karma/internal/analysis/analysistest"
	"karma/internal/analysis/plancheck"
)

func TestPlancheck(t *testing.T) {
	analysistest.Run(t, ".", plancheck.Analyzer, "a")
}

func TestAppliesEverywhereExceptSelf(t *testing.T) {
	a := plancheck.Analyzer
	if !a.AppliesTo("karma/internal/dist") || !a.AppliesTo("karma/internal/trace") {
		t.Error("plancheck should apply to every package")
	}
	if !a.IncludeTests {
		t.Error("plancheck must analyze _test.go files: hand-built op DAGs live in tests")
	}
}
