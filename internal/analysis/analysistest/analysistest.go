// Package analysistest runs an analyzer over a testdata fixture package
// and checks its diagnostics against `// want` comment annotations, in
// the style of golang.org/x/tools/go/analysis/analysistest (stdlib-only
// — see karma/internal/analysis for why the framework is home-grown).
//
// A fixture line expecting diagnostics carries one or more quoted
// regular expressions:
//
//	x := float64(b) + float64(s) // want `mixed-dimension`
//
// Every want must be matched by a diagnostic reported on its line, and
// every diagnostic must match a want; anything else fails the test.
// Fixtures live under testdata/src/<name>/ and may import real module
// packages (karma/internal/unit, karma/internal/plan, ...): the loader
// type-checks from source, and the test's working directory — the
// analyzer package directory — anchors module-path resolution.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"karma/internal/analysis"
	"karma/internal/analysis/load"
)

// wantRE captures the comment tail after "// want".
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// expectation is one want annotation.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkgname> relative to dir, applies the
// analyzer, and diffs diagnostics against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgname string) {
	t.Helper()
	fixture := filepath.Join(dir, "testdata", "src", pkgname)
	entries, err := os.ReadDir(fixture)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []string
	testSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		p := filepath.Join(fixture, e.Name())
		files = append(files, p)
		if strings.HasSuffix(e.Name(), "_test.go") {
			testSet[p] = true
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", fixture)
	}

	fset := token.NewFileSet()
	pkg, err := load.Check(fset, load.NewImporter(fset), pkgname, fixture, files, testSet)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture type error: %v", terr)
	}

	wants := collectWants(t, files)
	pass := &analysis.Pass{
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		IsTestFile: pkg.IsTestFile,
	}
	diags, err := analysis.RunAnalyzer(a, pass)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	for _, d := range diags {
		p := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.file == p.Filename && w.line == p.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// collectWants parses want annotations out of the fixture sources.
func collectWants(t *testing.T, files []string) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, pat := range parsePatterns(t, name, i+1, strings.TrimSpace(m[1])) {
				rx, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: name, line: i + 1, rx: rx})
			}
		}
	}
	return wants
}

// parsePatterns splits a want tail into its quoted regexp strings
// (double- or back-quoted, space separated).
func parsePatterns(t *testing.T, file string, line int, tail string) []string {
	t.Helper()
	var pats []string
	for tail != "" {
		tail = strings.TrimLeft(tail, " \t")
		if tail == "" {
			break
		}
		switch tail[0] {
		case '"':
			end := -1
			for i := 1; i < len(tail); i++ {
				if tail[i] == '"' && tail[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want string", file, line)
			}
			s, err := strconv.Unquote(tail[:end+1])
			if err != nil {
				t.Fatalf("%s:%d: bad want string: %v", file, line, err)
			}
			pats = append(pats, s)
			tail = tail[end+1:]
		case '`':
			end := strings.IndexByte(tail[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want raw string", file, line)
			}
			pats = append(pats, tail[1:1+end])
			tail = tail[end+2:]
		default:
			t.Fatalf("%s:%d: want patterns must be quoted, got %q", file, line, tail)
		}
	}
	if len(pats) == 0 {
		t.Fatalf("%s:%d: want comment with no patterns", file, line)
	}
	return pats
}

// Fprint is a debugging helper rendering diagnostics compactly.
func Fprint(fset *token.FileSet, diags []analysis.Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return sb.String()
}
