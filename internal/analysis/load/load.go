// Package load turns package patterns into parsed, type-checked
// packages for the karma-vet analyzers, using only the standard
// library: `go list -json` enumerates the packages and the stdlib
// source importer (go/importer "source") resolves their imports by
// type-checking dependencies from source. That keeps the analysis
// suite fully offline — no x/tools, no export-data plumbing — at the
// cost of some redundant type-checking work, which is negligible at
// this module's size.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	IsTestFile map[*ast.File]bool
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects non-fatal type-check problems (the analyzers
	// still run on what was resolved; the driver surfaces them).
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath  string
	Dir         string
	GoFiles     []string
	TestGoFiles []string
	Error       *struct{ Err string }
}

// Packages loads every package matching the patterns. With tests set,
// each package's in-package *_test.go files are parsed and checked
// alongside it (external _test packages are not loaded: the analyzers
// that look at tests care about hand-built op DAGs, which live in
// in-package tests here).
func Packages(dir string, patterns []string, tests bool) ([]*Package, error) {
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		listed = append(listed, p)
	}

	fset := token.NewFileSet()
	imp := newImporter(fset)
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		testSet := map[string]bool{}
		if tests {
			for _, f := range lp.TestGoFiles {
				p := filepath.Join(lp.Dir, f)
				files = append(files, p)
				testSet[p] = true
			}
		}
		pkg, err := Check(fset, imp, lp.ImportPath, lp.Dir, files, testSet)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Importer resolves import paths to type-checked packages.
type Importer interface {
	types.ImporterFrom
}

// NewImporter returns a source-based importer sharing the fset.
func NewImporter(fset *token.FileSet) Importer { return newImporter(fset) }

func newImporter(fset *token.FileSet) types.ImporterFrom {
	return importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
}

// srcDirImporter adapts ImportFrom to the plain Importer the
// type-checker calls for non-vendored packages, pinning the source
// directory so module-relative resolution works regardless of cwd.
type srcDirImporter struct {
	imp types.ImporterFrom
	dir string
}

func (s srcDirImporter) Import(path string) (*types.Package, error) {
	return s.imp.ImportFrom(path, s.dir, 0)
}

func (s srcDirImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if dir == "" {
		dir = s.dir
	}
	return s.imp.ImportFrom(path, dir, mode)
}

// Check parses and type-checks one package from explicit file paths.
// testSet marks which of them are *_test.go files.
func Check(fset *token.FileSet, imp Importer, importPath, dir string, filenames []string, testSet map[string]bool) (*Package, error) {
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		IsTestFile: map[*ast.File]bool{},
	}
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		pkg.Files = append(pkg.Files, f)
		if testSet[name] {
			pkg.IsTestFile[f] = true
		}
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: srcDirImporter{imp: imp, dir: dir},
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tp, err := conf.Check(importPath, fset, pkg.Files, pkg.Info)
	if err != nil && tp == nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	pkg.Types = tp
	return pkg, nil
}
