package dist

import (
	"sync"

	"karma/internal/graph"
	"karma/internal/hw"
	"karma/internal/karma"
	"karma/internal/model"
	"karma/internal/profiler"
	"karma/internal/tensor"
	"karma/internal/unit"
)

// memo is a singleflight-style concurrent cache: the first caller of a
// key computes it while concurrent callers of the same key block on
// that one computation, and distinct keys compute in parallel — the
// property the parallel sweep engine needs from the shared evaluator
// caches (one mutex around the compute would serialize every worker;
// no dedup would compute each shared grid-point profile once per
// worker). Errors are cached alongside values: a failing computation
// is as deterministic as a succeeding one, so retrying it on the next
// lookup would only duplicate work.
//
// The zero memo is ready to use. Entries live for the life of the
// memo; every cached computation here is a pure function of its key,
// so entries never go stale — the caches are bounded by the number of
// distinct grid points a process evaluates.
type memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	v    V
	err  error
}

// do returns the cached value for k, computing it with fn exactly once
// across all concurrent callers.
func (c *memo[K, V]) do(k K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = map[K]*memoEntry[V]{}
	}
	e := c.m[k]
	if e == nil {
		e = &memoEntry[V]{}
		c.m[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.v, e.err = fn() })
	return e.v, e.err
}

// ---------------------------------------------------------------------------
// Cross-grid memoization shared by both evaluator backends
// ---------------------------------------------------------------------------
//
// The hybrid and pipeline setup paths (hybridSetup, pipelineSetup) are
// pure functions of value-typed inputs: a transformer config, an MP
// degree, a node spec, a batch, a dtype, a byte budget. Dense sweeps
// hit the same (model, mp, precision) shard from many grid points —
// every GPU count of a Fig. 8 row, both exchange variants of the MP+DP
// curve, every topology of the sensitivity ladder — so the builds,
// profiles, in-core/checkpointed schedules and footprints are memoized
// process-wide, keyed by value (no caller pointers are retained). Both
// backends share these caches: the planned path re-simulates each
// configuration's exchange composition, but never re-profiles or
// re-partitions a shard shape the analytic path already solved.

// modelKey identifies a (possibly MP-sharded) transformer build: mp >=
// 1 selects the mp-way tensor-parallel shard build (the hybrids always
// profile the shard graph, degree 1 included, so collective markers are
// present), mp == 0 the plain full-model build the pipeline baseline
// partitions.
type modelKey struct {
	cfg model.TransformerConfig
	mp  int
}

// shardProfileKey identifies a shard profile: the build plus the
// profiling batch, node and dtype.
type shardProfileKey struct {
	mk    modelKey
	node  hw.Node
	batch int
	dt    tensor.DType
}

// shardSchedKey identifies an in-core or checkpointed schedule of a
// shard profile under an activation budget.
type shardSchedKey struct {
	pk     shardProfileKey
	budget unit.Bytes
	ckpt   bool
}

var (
	sharedGraphs    memo[model.TransformerConfig, *graph.Graph]
	sharedShards    memo[modelKey, *model.Shard]
	sharedProfiles  memo[shardProfileKey, *profiler.Profile]
	sharedScheds    memo[shardSchedKey, *karma.Schedule]
	sharedFootprint memo[shardProfileKey, unit.Bytes]
)

// cachedGraph returns the memoized full-model build for cfg.
func cachedGraph(cfg model.TransformerConfig) *graph.Graph {
	g, _ := sharedGraphs.do(cfg, func() (*graph.Graph, error) {
		return model.Transformer(cfg), nil
	})
	return g
}

// cachedShard returns the memoized 1/mp tensor-parallel shard build.
func cachedShard(cfg model.TransformerConfig, mp int) *model.Shard {
	s, _ := sharedShards.do(modelKey{cfg: cfg, mp: mp}, func() (*model.Shard, error) {
		return model.TransformerShard(cfg, mp), nil
	})
	return s
}

// cachedProfile returns the memoized profile for a model key: the
// mp-way shard build for mp >= 1, the full model for mp == 0 (the
// pipeline baseline partitions the unsharded transformer).
func cachedProfile(k shardProfileKey) (*profiler.Profile, error) {
	return sharedProfiles.do(k, func() (*profiler.Profile, error) {
		g := cachedGraph(k.mk.cfg)
		if k.mk.mp >= 1 {
			g = cachedShard(k.mk.cfg, k.mk.mp).Graph
		}
		return profiler.New(g, k.node, profiler.Options{Batch: k.batch, DType: k.dt})
	})
}

// cachedSchedule returns the memoized in-core (or checkpointed)
// schedule of the profile under the activation budget, or nil when the
// regime cannot fit — the capacity verdict both backends share. The
// profile must be the cachedProfile of k.pk (the key carries the
// identity; the pointer carries the data).
func cachedSchedule(k shardSchedKey, p *profiler.Profile) *karma.Schedule {
	s, err := sharedScheds.do(k, func() (*karma.Schedule, error) {
		if k.ckpt {
			return karma.Checkpoint(p, k.budget)
		}
		return karma.InCore(p, k.budget)
	})
	if err != nil {
		return nil
	}
	return s
}

// cachedFootprint returns the memoized minimal checkpointed activation
// footprint of the profile (karma.CheckpointFootprint scans every run
// count; infeasible sweep cells would otherwise pay that scan per grid
// point).
func cachedFootprint(k shardProfileKey, p *profiler.Profile) unit.Bytes {
	f, _ := sharedFootprint.do(k, func() (unit.Bytes, error) {
		return karma.CheckpointFootprint(p), nil
	})
	return f
}
