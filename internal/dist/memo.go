package dist

import (
	"sync"

	"karma/internal/graph"
	"karma/internal/hw"
	"karma/internal/karma"
	"karma/internal/model"
	"karma/internal/profiler"
	"karma/internal/tensor"
	"karma/internal/unit"
)

// defaultMemoLimit is the entry bound a zero memo gets. It is set far
// above the distinct-key count of any batch sweep (a full Fig. 8 +
// Table IV/V + topology run touches a few hundred keys), so the CLI
// sweeps never see an eviction, while a long-running daemon serving
// request-derived keys stays bounded instead of growing for the life of
// the process.
const defaultMemoLimit = 8192

// memo is a bounded, singleflight-style concurrent cache: the first
// caller of a key computes it while concurrent callers of the same key
// block on that one computation, and distinct keys compute in parallel —
// the property the parallel sweep engine needs from the shared evaluator
// caches (one mutex around the compute would serialize every worker; no
// dedup would compute each shared grid-point profile once per worker).
//
// Two properties make the memo safe to hold for the life of a daemon
// process (karma-serve), where keys derive from client requests:
//
//   - Entries are bounded by an LRU policy (limit, defaulting to
//     defaultMemoLimit): inserting a fresh key beyond the bound evicts
//     the least-recently-used entry. Every cached computation is a pure
//     function of its key, so eviction can never change a result — a
//     re-computed entry is bit-identical to the evicted one — it only
//     trades memory for recompute time.
//   - Errors are never retained: a computation that fails is removed as
//     soon as its error is observed, so the next lookup of that key
//     retries instead of serving a stale failure forever. Callers that
//     were already blocked on the failing flight share its error (that
//     is the singleflight contract); callers arriving after it resolved
//     start a fresh computation.
//
// The zero memo is ready to use.
type memo[K comparable, V any] struct {
	mu sync.Mutex
	// limit bounds the entry count; 0 means defaultMemoLimit. Set it
	// before first use (tests shrink it to force eviction churn).
	limit int
	m     map[K]*memoEntry[K, V]
	// Doubly-linked LRU list threaded through the entries; front is the
	// most recently used, back the eviction candidate. The list head is
	// a sentinel so link surgery has no nil special cases.
	lru memoList[K, V]
	// Counters for the /stats surface of karma-serve (read via stats()).
	hits, misses, evictions uint64
}

type memoEntry[K comparable, V any] struct {
	key        K
	once       sync.Once
	v          V
	err        error
	prev, next *memoEntry[K, V]
}

// memoList is the intrusive LRU ring; root.next is the front.
type memoList[K comparable, V any] struct {
	root memoEntry[K, V]
}

func (l *memoList[K, V]) init() {
	l.root.prev = &l.root
	l.root.next = &l.root
}

func (l *memoList[K, V]) pushFront(e *memoEntry[K, V]) {
	e.prev = &l.root
	e.next = l.root.next
	e.prev.next = e
	e.next.prev = e
}

func (l *memoList[K, V]) remove(e *memoEntry[K, V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (l *memoList[K, V]) back() *memoEntry[K, V] {
	if l.root.prev == &l.root {
		return nil
	}
	return l.root.prev
}

// do returns the cached value for k, computing it with fn exactly once
// across all concurrent callers. A nil error caches the value (until
// LRU eviction); a non-nil error is propagated to every caller of the
// in-flight computation and then forgotten, so later callers retry.
func (c *memo[K, V]) do(k K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = map[K]*memoEntry[K, V]{}
		c.lru.init()
	}
	e := c.m[k]
	if e != nil {
		c.hits++
		c.lru.remove(e)
		c.lru.pushFront(e)
	} else {
		c.misses++
		e = &memoEntry[K, V]{key: k}
		c.m[k] = e
		c.lru.pushFront(e)
		limit := c.limit
		if limit <= 0 {
			limit = defaultMemoLimit
		}
		// Evicting an entry whose computation is still in flight is
		// harmless: its waiters hold the entry pointer and complete on
		// it; the entry is merely no longer findable, exactly as if it
		// had been evicted the moment it resolved.
		for len(c.m) > limit {
			old := c.lru.back()
			c.lru.remove(old)
			delete(c.m, old.key)
			c.evictions++
		}
	}
	c.mu.Unlock()

	e.once.Do(func() { e.v, e.err = fn() })
	if e.err != nil {
		// Forget the failed flight so the next do(k) retries. Guard on
		// identity: the slot may already hold a fresh retry entry (or the
		// failed one may have been evicted), which must not be dropped.
		c.mu.Lock()
		if c.m[k] == e {
			c.lru.remove(e)
			delete(c.m, k)
		}
		c.mu.Unlock()
	}
	return e.v, e.err
}

// len returns the current entry count (test and stats introspection).
func (c *memo[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// stats returns a snapshot of the memo's counters and size.
func (c *memo[K, V]) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.m),
	}
}

// CacheStats is a point-in-time snapshot of one or more evaluator
// caches, exposed so karma-serve's /stats endpoint can report the
// process-wide memoization behaviour.
type CacheStats struct {
	// Hits counts lookups that found an entry (including joins on an
	// in-flight computation).
	Hits uint64
	// Misses counts lookups that started a computation.
	Misses uint64
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64
	// Entries is the resident entry count at snapshot time.
	Entries int
}

// add accumulates another snapshot into s.
func (s *CacheStats) add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Entries += o.Entries
}

// SharedCacheStats sums the process-wide evaluator caches both backends
// share (graph/shard builds, shard profiles, schedules, footprints).
func SharedCacheStats() CacheStats {
	var s CacheStats
	s.add(sharedGraphs.stats())
	s.add(sharedShards.stats())
	s.add(sharedProfiles.stats())
	s.add(sharedScheds.stats())
	s.add(sharedFootprint.stats())
	return s
}

// CacheStats sums the planner-backed evaluator's instance caches (KARMA
// replica profiles and partition searches).
func (p *Planned) CacheStats() CacheStats {
	var s CacheStats
	s.add(p.profiles.stats())
	s.add(p.schedules.stats())
	return s
}

// ---------------------------------------------------------------------------
// Cross-grid memoization shared by both evaluator backends
// ---------------------------------------------------------------------------
//
// The hybrid and pipeline setup paths (hybridSetup, pipelineSetup) are
// pure functions of value-typed inputs: a transformer config, an MP
// degree, a node spec, a batch, a dtype, a byte budget. Dense sweeps
// hit the same (model, mp, precision) shard from many grid points —
// every GPU count of a Fig. 8 row, both exchange variants of the MP+DP
// curve, every topology of the sensitivity ladder — so the builds,
// profiles, in-core/checkpointed schedules and footprints are memoized
// process-wide, keyed by value (no caller pointers are retained). Both
// backends share these caches: the planned path re-simulates each
// configuration's exchange composition, but never re-profiles or
// re-partitions a shard shape the analytic path already solved.

// modelKey identifies a (possibly MP-sharded) transformer build: mp >=
// 1 selects the mp-way tensor-parallel shard build (the hybrids always
// profile the shard graph, degree 1 included, so collective markers are
// present), mp == 0 the plain full-model build the pipeline baseline
// partitions.
type modelKey struct {
	cfg model.TransformerConfig
	mp  int
}

// shardProfileKey identifies a shard profile: the build plus the
// profiling batch, node and dtype.
type shardProfileKey struct {
	mk    modelKey
	node  hw.Node
	batch int
	dt    tensor.DType
}

// shardSchedKey identifies an in-core or checkpointed schedule of a
// shard profile under an activation budget.
type shardSchedKey struct {
	pk     shardProfileKey
	budget unit.Bytes
	ckpt   bool
}

var (
	sharedGraphs    memo[model.TransformerConfig, *graph.Graph]
	sharedShards    memo[modelKey, *model.Shard]
	sharedProfiles  memo[shardProfileKey, *profiler.Profile]
	sharedScheds    memo[shardSchedKey, *karma.Schedule]
	sharedFootprint memo[shardProfileKey, unit.Bytes]
)

// cachedGraph returns the memoized full-model build for cfg.
func cachedGraph(cfg model.TransformerConfig) *graph.Graph {
	g, _ := sharedGraphs.do(cfg, func() (*graph.Graph, error) {
		return model.Transformer(cfg), nil
	})
	return g
}

// CachedTransformer returns the process-wide memoized full-model build
// for cfg. Long-lived callers (karma-serve) route transformer builds
// through this cache so that repeated requests for one configuration
// reuse one *graph.Graph — which in turn keeps the planner-backed
// evaluator's pointer-keyed caches hitting instead of growing.
func CachedTransformer(cfg model.TransformerConfig) *graph.Graph {
	return cachedGraph(cfg)
}

// cachedShard returns the memoized 1/mp tensor-parallel shard build.
func cachedShard(cfg model.TransformerConfig, mp int) *model.Shard {
	s, _ := sharedShards.do(modelKey{cfg: cfg, mp: mp}, func() (*model.Shard, error) {
		return model.TransformerShard(cfg, mp), nil
	})
	return s
}

// cachedProfile returns the memoized profile for a model key: the
// mp-way shard build for mp >= 1, the full model for mp == 0 (the
// pipeline baseline partitions the unsharded transformer).
func cachedProfile(k shardProfileKey) (*profiler.Profile, error) {
	return sharedProfiles.do(k, func() (*profiler.Profile, error) {
		g := cachedGraph(k.mk.cfg)
		if k.mk.mp >= 1 {
			g = cachedShard(k.mk.cfg, k.mk.mp).Graph
		}
		return profiler.New(g, k.node, profiler.Options{Batch: k.batch, DType: k.dt})
	})
}

// cachedSchedule returns the memoized in-core (or checkpointed)
// schedule of the profile under the activation budget, or nil when the
// regime cannot fit — the capacity verdict both backends share. The
// profile must be the cachedProfile of k.pk (the key carries the
// identity; the pointer carries the data).
//
// "Does not fit" is a pure verdict of the key, so it is cached as a nil
// *value* rather than an error: the memo never retains errors, but a
// sweep that probes the same infeasible cell from every GPU count (the
// ZeRO capacity-batch boundary) must not re-run the capacity search per
// grid point.
func cachedSchedule(k shardSchedKey, p *profiler.Profile) *karma.Schedule {
	s, _ := sharedScheds.do(k, func() (*karma.Schedule, error) {
		var s *karma.Schedule
		var err error
		if k.ckpt {
			s, err = karma.Checkpoint(p, k.budget)
		} else {
			s, err = karma.InCore(p, k.budget)
		}
		if err != nil {
			return nil, nil // the verdict: this regime cannot fit
		}
		return s, nil
	})
	return s
}

// cachedFootprint returns the memoized minimal checkpointed activation
// footprint of the profile (karma.CheckpointFootprint scans every run
// count; infeasible sweep cells would otherwise pay that scan per grid
// point).
func cachedFootprint(k shardProfileKey, p *profiler.Profile) unit.Bytes {
	f, _ := sharedFootprint.do(k, func() (unit.Bytes, error) {
		return karma.CheckpointFootprint(p), nil
	})
	return f
}
