package dist

import (
	"fmt"
	"testing"

	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/unit"
)

// ---------------------------------------------------------------------------
// Edge cases and stable infeasibility reasons
// ---------------------------------------------------------------------------

// TestHybridReasonStrings pins the exact Reason strings of the hybrid
// feasibility verdicts: sweep renderers and operators grep for them, so
// they are part of the package's contract.
func TestHybridReasonStrings(t *testing.T) {
	cl := hw.ABCI()
	cfg := smallLM()

	r, err := MegatronHybrid(cfg, cl, 3, 16, 4, samples, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible || r.Reason != "16 GPUs do not divide into MP groups of 3" {
		t.Errorf("mp∤gpus Reason = %q", r.Reason)
	}

	gpus := cl.TotalDevices() + 4
	r, err = ZeRO(cfg, cl, 4, gpus, 4, samples, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("cluster %s has %d devices, need %d", cl.Name, cl.TotalDevices(), gpus)
	if r.Feasible || r.Reason != want {
		t.Errorf("undersized cluster Reason = %q, want %q", r.Reason, want)
	}

	// Batch far beyond capacity: the memory verdict names the MP factor,
	// the shortfall, and both remedies.
	r, err = MegatronHybrid(cfg, cl, 4, 16, 1<<14, samples, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible {
		t.Fatal("batch 16384 should exceed device memory")
	}
	const pre, suf = "MP=4 shard needs ", " device memory; increase the MP factor or go out-of-core"
	if len(r.Reason) < len(pre)+len(suf) || r.Reason[:len(pre)] != pre || r.Reason[len(r.Reason)-len(suf):] != suf {
		t.Errorf("capacity Reason = %q, want %q...%q", r.Reason, pre, suf)
	}
}

// TestHybridMPDividesButTooWide: mp larger than the GPU count leaves no
// replica.
func TestHybridMPDividesButTooWide(t *testing.T) {
	cl := hw.ABCI()
	r, err := MegatronHybrid(smallLM(), cl, 32, 16, 4, samples, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible {
		t.Error("MP wider than the GPU count cannot form a group")
	}
}

// TestHybridMPSpansNodes: on ABCI's 4-GPU nodes an MP=8 group spans two
// nodes and pays network-priced blocking collectives, while MP=4 stays
// on NVLink — at the same GPU count the narrower sharding must win the
// epoch under both backends.
func TestHybridMPSpansNodes(t *testing.T) {
	cfg := smallLM()
	cl := hw.ABCI()
	pe := NewPlanned()
	for _, ev := range []Evaluator{Analytic{}, pe} {
		intra, err := ev.MegatronHybrid(cfg, cl, 4, 64, 4, samples, HybridOptions{Phased: true})
		if err != nil {
			t.Fatal(err)
		}
		span, err := ev.MegatronHybrid(cfg, cl, 8, 64, 4, samples, HybridOptions{Phased: true})
		if err != nil {
			t.Fatal(err)
		}
		if !intra.Feasible || !span.Feasible {
			t.Fatalf("%s: both MP widths must fit: %v / %v", ev.Name(), intra.Reason, span.Reason)
		}
		if intra.EpochTime >= span.EpochTime {
			t.Errorf("%s: node-local MP=4 epoch %v not faster than node-spanning MP=8 %v",
				ev.Name(), intra.EpochTime, span.EpochTime)
		}
	}
}

// ---------------------------------------------------------------------------
// Backend tagging (Results carry their cost model from construction)
// ---------------------------------------------------------------------------

// TestResultBackendTagged: package-level model functions ARE the
// analytic backend and must tag their results at construction — both
// feasible and infeasible — while the planned evaluator re-tags what it
// simulates.
func TestResultBackendTagged(t *testing.T) {
	cl := hw.ABCI()
	cfg := smallLM()
	g := model.SmallCNN()

	cases := map[string]*Result{}
	var err error
	if cases["karma"], err = KARMADataParallel(g, cl, 16, 32, samples, KARMAOptions{}); err != nil {
		t.Fatal(err)
	}
	if cases["dp"], err = DataParallel(g, cl, 16, 32, samples); err != nil {
		t.Fatal(err)
	}
	if cases["hybrid"], err = MegatronHybrid(cfg, cl, 4, 16, 4, samples, HybridOptions{}); err != nil {
		t.Fatal(err)
	}
	if cases["zero"], err = ZeRO(cfg, cl, 4, 16, 4, samples, HybridOptions{}); err != nil {
		t.Fatal(err)
	}
	if cases["infeasible"], err = MegatronHybrid(cfg, cl, 3, 16, 4, samples, HybridOptions{}); err != nil {
		t.Fatal(err)
	}
	if cases["undersized"], err = KARMADataParallel(g, cl, 1<<20, 32, samples, KARMAOptions{}); err != nil {
		t.Fatal(err)
	}
	for name, r := range cases {
		if r.Backend != "analytic" {
			t.Errorf("%s: package-level result Backend = %q, want analytic", name, r.Backend)
		}
	}

	pe := NewPlanned()
	ph, err := pe.MegatronHybrid(cfg, cl, 4, 16, 4, samples, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ph.Backend != "planned" {
		t.Errorf("planned hybrid Backend = %q (silent fallback?)", ph.Backend)
	}
	pz, err := pe.ZeRO(model.TuringNLG(), cl, 16, 512, 4, samples, HybridOptions{Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if !pz.Feasible || pz.Backend != "planned" {
		t.Errorf("planned checkpointed ZeRO: feasible=%v Backend=%q", pz.Feasible, pz.Backend)
	}
	if !pz.Ckpt {
		t.Error("checkpointed result must record Ckpt")
	}
	pbad, err := pe.MegatronHybrid(cfg, cl, 3, 16, 4, samples, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pbad.Feasible || pbad.Backend != "planned" {
		t.Errorf("planned infeasible result Backend = %q", pbad.Backend)
	}
}

// ---------------------------------------------------------------------------
// Cross-backend properties of the per-layer hybrid path
// ---------------------------------------------------------------------------

// The hand-picked backend feasibility-agreement sweep that used to live
// here is subsumed by the randomized harness in property_test.go
// (TestBackendProperties), which draws every family, both precision
// regimes and the pipeline baseline from one seeded generator.

// TestHybridBoundedDivergence: on feasible configurations the per-layer
// simulation refines the closed form without wandering from it — the
// iteration times stay within a factor band.
func TestHybridBoundedDivergence(t *testing.T) {
	an := Analytic{}
	pe := NewPlanned()
	cl := hw.ABCI()
	type cc struct {
		cfg        model.TransformerConfig
		mp, gpus   int
		batch      int
		zero, ckpt bool
	}
	cases := []cc{
		{smallLM(), 1, 16, 8, false, false},
		{smallLM(), 4, 64, 4, false, true},
		{model.MegatronConfigs()[2], 4, 512, 4, false, true},
		{model.TuringNLG(), 16, 512, 2, true, true},
		{model.TuringNLG(), 8, 512, 8, true, true},
	}
	for _, c := range cases {
		o := HybridOptions{Phased: true, Checkpoint: c.ckpt}
		eval := func(ev Evaluator) *Result {
			var r *Result
			var err error
			if c.zero {
				r, err = ev.ZeRO(c.cfg, cl, c.mp, c.gpus, c.batch, samples, o)
			} else {
				r, err = ev.MegatronHybrid(c.cfg, cl, c.mp, c.gpus, c.batch, samples, o)
			}
			if err != nil {
				t.Fatalf("%s mp=%d: %v", c.cfg.Name, c.mp, err)
			}
			if !r.Feasible {
				t.Fatalf("%s mp=%d b=%d: infeasible: %s", c.cfg.Name, c.mp, c.batch, r.Reason)
			}
			return r
		}
		ra, rp := eval(an), eval(pe)
		if rp.Backend != "planned" {
			t.Fatalf("%s mp=%d: planned fell back to %q", c.cfg.Name, c.mp, rp.Backend)
		}
		ratio := float64(rp.IterTime) / float64(ra.IterTime)
		if ratio < 0.7 || ratio > 1.6 {
			t.Errorf("%s mp=%d b=%d zero=%v: planned/analytic iteration ratio %.2f outside [0.7, 1.6] (%v vs %v)",
				c.cfg.Name, c.mp, c.batch, c.zero, ratio, rp.IterTime, ra.IterTime)
		}
	}
}

// TestHybridOrderingAgreement: the qualitative exchange and sharding
// orderings hold under both backends — phased never meaningfully loses
// to bulk, and ZeRO never loses to the matching unsharded hybrid. The
// tolerance is per-configuration: 2% where the backward is merely
// network-bound, 10% for the tiny exchange-latency-bound model, whose
// per-block phasing fragments one collective into many and has no
// compute window to hide in (the planner exposes that honestly; the
// closed form folds it into the overlap max).
func TestHybridOrderingAgreement(t *testing.T) {
	cl := hw.ABCI()
	pe := NewPlanned()
	for _, ev := range []Evaluator{Analytic{}, pe} {
		for _, c := range []struct {
			cfg      model.TransformerConfig
			mp, gpus int
			ckpt     bool
			tol      float64
		}{
			{smallLM(), 4, 64, false, 1.10},
			{model.MegatronConfigs()[2], 4, 512, true, 1.02},
			{model.MegatronConfigs()[4], 16, 512, true, 1.02},
		} {
			bulk, err := ev.MegatronHybrid(c.cfg, cl, c.mp, c.gpus, 4, samples, HybridOptions{Checkpoint: c.ckpt})
			if err != nil {
				t.Fatal(err)
			}
			opt, err := ev.MegatronHybrid(c.cfg, cl, c.mp, c.gpus, 4, samples, HybridOptions{Phased: true, Checkpoint: c.ckpt})
			if err != nil {
				t.Fatal(err)
			}
			z, err := ev.ZeRO(c.cfg, cl, c.mp, c.gpus, 4, samples, HybridOptions{Checkpoint: c.ckpt})
			if err != nil {
				t.Fatal(err)
			}
			if !bulk.Feasible || !opt.Feasible || !z.Feasible {
				t.Fatalf("%s %s: infeasible: %q %q %q", ev.Name(), c.cfg.Name, bulk.Reason, opt.Reason, z.Reason)
			}
			if float64(opt.IterTime) > c.tol*float64(bulk.IterTime) {
				t.Errorf("%s %s mp=%d: phased (%v) loses to bulk (%v)", ev.Name(), c.cfg.Name, c.mp, opt.IterTime, bulk.IterTime)
			}
			if float64(z.IterTime) > c.tol*float64(opt.IterTime) {
				t.Errorf("%s %s mp=%d: ZeRO (%v) loses to the phased hybrid (%v)", ev.Name(), c.cfg.Name, c.mp, z.IterTime, opt.IterTime)
			}
		}
	}
}

// TestCheckpointRaisesHybridCapacity: the Checkpoint regime's purpose —
// configurations whose per-layer activations bust a V100 become
// feasible, and the largest feasible batch strictly grows.
func TestCheckpointRaisesHybridCapacity(t *testing.T) {
	cl := hw.ABCI()
	cfg := model.TuringNLG()
	plain, err := ZeRO(cfg, cl, 16, 512, 8, samples, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Feasible {
		t.Fatal("Turing-NLG at MP=16 batch 8 should not fit without checkpointing")
	}
	ck, err := ZeRO(cfg, cl, 16, 512, 8, samples, HybridOptions{Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Feasible {
		t.Fatalf("checkpointing should fit batch 8: %s", ck.Reason)
	}
	if !ck.Ckpt {
		t.Error("result must record the checkpointing regime")
	}
	// The regime is adaptive: at a batch whose activations fit resident,
	// Checkpoint recomputes nothing and matches the plain run exactly.
	p2, err := ZeRO(cfg, cl, 16, 512, 1, samples, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ZeRO(cfg, cl, 16, 512, 1, samples, HybridOptions{Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Feasible || !c2.Feasible {
		t.Fatalf("batch 1 must fit both regimes: %q %q", p2.Reason, c2.Reason)
	}
	if c2.IterTime != p2.IterTime {
		t.Errorf("all-resident checkpointed iteration (%v) should equal plain (%v)", c2.IterTime, p2.IterTime)
	}
}

// TestHybridInCoreMatchesAnalyticClosely: with no collectives (MP=1),
// no recompute and one replica... the simulated plan is a serial chain
// and must land on the closed form almost exactly.
func TestHybridInCoreMatchesAnalyticClosely(t *testing.T) {
	cl := hw.ABCI()
	cfg := smallLM()
	an, err := MegatronHybrid(cfg, cl, 1, 4, 8, samples, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pe := NewPlanned()
	pl, err := pe.MegatronHybrid(cfg, cl, 1, 4, 8, samples, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !an.Feasible || !pl.Feasible {
		t.Fatalf("infeasible: %q %q", an.Reason, pl.Reason)
	}
	diff := float64(pl.IterTime-an.IterTime) / float64(an.IterTime)
	if diff < -0.02 || diff > 0.02 {
		t.Errorf("MP=1 planned (%v) and analytic (%v) diverge %.1f%%", pl.IterTime, an.IterTime, 100*diff)
	}
}

// TestHybridGlobalBatchAccounting: the hybrid's global batch counts one
// per-replica batch per MP group, not per GPU.
func TestHybridGlobalBatchAccounting(t *testing.T) {
	cl := hw.ABCI()
	r, err := MegatronHybrid(smallLM(), cl, 4, 64, 4, samples, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal(r.Reason)
	}
	if want := (64 / 4) * 4; r.GlobalBatch != want {
		t.Errorf("GlobalBatch = %d, want %d", r.GlobalBatch, want)
	}
	if r.GPUs != 64 {
		t.Errorf("GPUs = %d, want 64", r.GPUs)
	}
	if r.IterPerSec <= 0 || unit.Seconds(1)/unit.Seconds(r.IterPerSec) == 0 {
		t.Errorf("bad rate %v", r.IterPerSec)
	}
}
