package dist

import (
	"fmt"

	"karma/internal/comm"
	"karma/internal/graph"
	"karma/internal/hw"
	"karma/internal/karma"
	"karma/internal/model"
	"karma/internal/plan"
	"karma/internal/sim"
	"karma/internal/unit"
)

// PlanExport is one configuration's full execution story: the compiled
// plan IR, its simulated timeline, the activation budget the simulation
// ran under, and the verdict the evaluator produced for the same
// configuration. The serve layer renders Plan as JSON (plan.Encode) and
// Timeline as a Chrome trace (trace.Collect/WriteChrome); everything
// here is freshly allocated — never aliased to the evaluator's pooled
// scratch — so it may outlive the call arbitrarily.
type PlanExport struct {
	Plan     *plan.Plan
	Compiled *plan.Compiled
	Timeline *sim.Timeline
	Budget   unit.Bytes
	Result   *Result
}

// exportable rejects configurations that have no plan to export,
// rendering the evaluator's infeasibility reason.
func exportable(r *Result) (*Result, error) {
	if !r.Feasible {
		return nil, fmt.Errorf("dist: no plan for an infeasible configuration: %s", r.Reason)
	}
	return r, nil
}

// ExportKARMA re-derives the planner-backed KARMA data-parallel plan for
// one configuration and simulates it for export. Unlike the evaluator —
// which delegates fully in-core configurations to the exact closed form
// — the export always runs the partition search (an in-core profile
// plans to all-resident blocks), so every feasible configuration yields
// a concrete plan. The schedule and profile come from the evaluator's
// memo caches; the plan, compilation and timeline are fresh.
func (pe *Planned) ExportKARMA(g *graph.Graph, cl hw.Cluster, gpus, perReplicaBatch, samples int, o KARMAOptions) (*PlanExport, error) {
	res, err := pe.KARMADataParallel(g, cl, gpus, perReplicaBatch, samples, o)
	if err != nil {
		return nil, err
	}
	if res, err = exportable(res); err != nil {
		return nil, err
	}
	p, err := pe.profile(g, cl.Node, perReplicaBatch, o.Precision.DType())
	if err != nil {
		return nil, err
	}
	gs := 1.0
	if o.ZeROShard {
		gs = 1 / float64(gpus)
	}
	opts := karma.Options{GradScale: gs, Seed: 1}
	s, err := pe.plan(p, opts)
	if err != nil {
		opts.StreamWeights = true
		if s, err = pe.plan(p, opts); err != nil {
			return nil, err
		}
	}
	pl, err := karma.BuildPlan(s)
	if err != nil {
		return nil, err
	}
	if o.UpdateOnDevice {
		addMomentumTraffic(pl, s, cl, o, gpus)
	}
	if gpus > 1 {
		injectExchange(pl, s, cl, gpus)
	}
	c, tl, err := pl.Simulate(s.Budget)
	if err != nil {
		return nil, err
	}
	return &PlanExport{Plan: pl, Compiled: c, Timeline: tl, Budget: s.Budget, Result: res}, nil
}

// ExportHybrid re-derives the per-layer simulated MP+DP (or, with zero,
// ZeRO) shard plan for one configuration. The stage arenas are fresh —
// the evaluator's pooled scratch must never leak into a value that
// outlives the call.
func (pe *Planned) ExportHybrid(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int, zero bool, o HybridOptions) (*PlanExport, error) {
	eval := pe.MegatronHybrid
	if zero {
		eval = pe.ZeRO
		o.Phased = true // ZeRO's exchange is phased by construction
	}
	res, err := eval(cfg, cl, mp, gpus, perReplicaBatch, samples, o)
	if err != nil {
		return nil, err
	}
	if res, err = exportable(res); err != nil {
		return nil, err
	}
	shard, p, s, bad, err := hybridSetup(cfg, cl, mp, gpus, perReplicaBatch, samples, zero, o)
	if err != nil {
		return nil, err
	}
	if bad != nil {
		return nil, fmt.Errorf("dist: no plan for an infeasible configuration: %s", bad.Reason)
	}
	var ex, mpArena stageArena
	pl, err := buildHybridPlan(cfg, shard, p, s, cl, mp, gpus/mp, zero, o, &ex, &mpArena)
	if err != nil {
		return nil, err
	}
	c, tl, err := pl.Simulate(s.Budget)
	if err != nil {
		return nil, err
	}
	return &PlanExport{Plan: pl, Compiled: c, Timeline: tl, Budget: s.Budget, Result: res}, nil
}

// ExportPipeline re-derives the simulated bottleneck-stage plan of one
// pipeline configuration (the other stages contribute closed-form terms
// only and have no per-op schedule to export).
func (pe *Planned) ExportPipeline(cfg model.TransformerConfig, cl hw.Cluster, stages, gpus, perReplicaBatch, micro, samples int, o HybridOptions) (*PlanExport, error) {
	res, err := pe.Pipeline(cfg, cl, stages, gpus, perReplicaBatch, micro, samples, o)
	if err != nil {
		return nil, err
	}
	if res, err = exportable(res); err != nil {
		return nil, err
	}
	sts, _, bad, err := pipelineSetup(cfg, cl, stages, gpus, perReplicaBatch, micro, samples, o)
	if err != nil {
		return nil, err
	}
	if bad != nil {
		return nil, fmt.Errorf("dist: no plan for an infeasible configuration: %s", bad.Reason)
	}
	replicas := gpus / stages
	backend := comm.Pick(stages * replicas)
	wire, local := pipeWire(cl, stages, backend)
	sb, best := 0, unit.Seconds(-1)
	for s, st := range sts {
		if r := st.rate(wire); r > best {
			best, sb = r, s
		}
	}
	st := sts[sb]
	pl := buildStagePlan(st, micro, wire, local, sb, len(sts))
	budget := pipelineBudget(st, cl, o)
	c, tl, err := pl.Simulate(budget)
	if err != nil {
		return nil, err
	}
	return &PlanExport{Plan: pl, Compiled: c, Timeline: tl, Budget: budget, Result: res}, nil
}
