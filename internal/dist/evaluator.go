package dist

import (
	"fmt"

	"karma/internal/graph"
	"karma/internal/hw"
	"karma/internal/model"
)

// Evaluator evaluates distributed training configurations. Two backends
// implement it:
//
//   - Analytic: the closed-form cost models of this package, cheap enough
//     for dense sweeps (Fig. 8 grids, Table V ladders).
//   - Planned: the planner-backed path — each replica runs the real KARMA
//     partition search (internal/karma, Opt-1/Opt-2) and the resulting
//     schedule is simulated with the phased gradient exchange injected
//     (internal/sim + internal/comm), trading sweep speed for fidelity.
//
// Both backends agree on feasibility verdicts and coincide exactly for
// fully in-core replicas; they differ in how out-of-core stalls are
// costed.
type Evaluator interface {
	// Name identifies the backend ("analytic", "planned").
	Name() string
	// KARMADataParallel evaluates KARMA's out-of-core data parallelism
	// (see the package-level KARMADataParallel).
	KARMADataParallel(g *graph.Graph, cl hw.Cluster, gpus, perReplicaBatch, samples int, o KARMAOptions) (*Result, error)
	// DataParallel evaluates conventional in-core data parallelism.
	DataParallel(g *graph.Graph, cl hw.Cluster, gpus, perReplicaBatch, samples int) (*Result, error)
	// MegatronHybrid evaluates the Megatron-LM MP+DP hybrid.
	MegatronHybrid(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int, phased bool) (*Result, error)
	// ZeRO evaluates the ZeRO-sharded hybrid.
	ZeRO(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int) (*Result, error)
}

// Analytic is the closed-form backend: every method delegates to the
// package-level cost model of the same name.
type Analytic struct{}

// Name implements Evaluator.
func (Analytic) Name() string { return "analytic" }

// KARMADataParallel implements Evaluator.
func (Analytic) KARMADataParallel(g *graph.Graph, cl hw.Cluster, gpus, perReplicaBatch, samples int, o KARMAOptions) (*Result, error) {
	return tag(KARMADataParallel(g, cl, gpus, perReplicaBatch, samples, o))
}

// DataParallel implements Evaluator.
func (Analytic) DataParallel(g *graph.Graph, cl hw.Cluster, gpus, perReplicaBatch, samples int) (*Result, error) {
	return tag(DataParallel(g, cl, gpus, perReplicaBatch, samples))
}

// MegatronHybrid implements Evaluator.
func (Analytic) MegatronHybrid(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int, phased bool) (*Result, error) {
	return tag(MegatronHybrid(cfg, cl, mp, gpus, perReplicaBatch, samples, phased))
}

// ZeRO implements Evaluator.
func (Analytic) ZeRO(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int) (*Result, error) {
	return tag(ZeRO(cfg, cl, mp, gpus, perReplicaBatch, samples))
}

// tag stamps the analytic backend name on a result.
func tag(r *Result, err error) (*Result, error) {
	if r != nil {
		r.Backend = "analytic"
	}
	return r, err
}

// BackendNames lists the selectable evaluator backends.
func BackendNames() []string { return []string{"analytic", "planned"} }

// ByName returns a fresh evaluator for the named backend.
func ByName(name string) (Evaluator, error) {
	switch name {
	case "analytic":
		return Analytic{}, nil
	case "planned":
		return NewPlanned(), nil
	default:
		return nil, fmt.Errorf("dist: unknown backend %q (have analytic, planned)", name)
	}
}
