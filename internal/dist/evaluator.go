package dist

import (
	"fmt"

	"karma/internal/graph"
	"karma/internal/hw"
	"karma/internal/model"
)

// Evaluator evaluates distributed training configurations. Two backends
// implement it:
//
//   - Analytic: the closed-form cost models of this package, cheap enough
//     for dense sweeps (Fig. 8 grids, Table V ladders).
//   - Planned: the planner-backed path — each KARMA replica runs the real
//     partition search (internal/karma, Opt-1/Opt-2) and each in-core
//     hybrid shard profiles per layer (model.TransformerShard) and builds
//     an explicit forward/backward plan; either way the schedule is
//     simulated by internal/sim with the collectives of internal/comm on
//     the network stream, trading sweep speed for fidelity.
//
// Both backends agree on feasibility verdicts and coincide exactly for
// fully in-core KARMA replicas; they differ in how out-of-core stalls
// and per-layer collective overlap are costed.
type Evaluator interface {
	// Name identifies the backend ("analytic", "planned").
	Name() string
	// KARMADataParallel evaluates KARMA's out-of-core data parallelism
	// (see the package-level KARMADataParallel).
	KARMADataParallel(g *graph.Graph, cl hw.Cluster, gpus, perReplicaBatch, samples int, o KARMAOptions) (*Result, error)
	// DataParallel evaluates conventional in-core data parallelism.
	DataParallel(g *graph.Graph, cl hw.Cluster, gpus, perReplicaBatch, samples int) (*Result, error)
	// MegatronHybrid evaluates the Megatron-LM MP+DP hybrid.
	MegatronHybrid(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int, o HybridOptions) (*Result, error)
	// ZeRO evaluates the ZeRO-sharded hybrid.
	ZeRO(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int, o HybridOptions) (*Result, error)
	// Pipeline evaluates the GPipe-style pipeline-parallel baseline:
	// `stages` inter-layer stages per replica, gpus/stages data-parallel
	// replicas, `micro` micro-batches filling and draining the pipeline
	// per iteration.
	Pipeline(cfg model.TransformerConfig, cl hw.Cluster, stages, gpus, perReplicaBatch, micro, samples int, o HybridOptions) (*Result, error)
}

// Analytic is the closed-form backend: every method delegates to the
// package-level cost model of the same name (which tags results
// "analytic" at construction).
type Analytic struct{}

// Name implements Evaluator.
func (Analytic) Name() string { return "analytic" }

// KARMADataParallel implements Evaluator.
func (Analytic) KARMADataParallel(g *graph.Graph, cl hw.Cluster, gpus, perReplicaBatch, samples int, o KARMAOptions) (*Result, error) {
	return KARMADataParallel(g, cl, gpus, perReplicaBatch, samples, o)
}

// DataParallel implements Evaluator.
func (Analytic) DataParallel(g *graph.Graph, cl hw.Cluster, gpus, perReplicaBatch, samples int) (*Result, error) {
	return DataParallel(g, cl, gpus, perReplicaBatch, samples)
}

// MegatronHybrid implements Evaluator.
func (Analytic) MegatronHybrid(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int, o HybridOptions) (*Result, error) {
	return MegatronHybrid(cfg, cl, mp, gpus, perReplicaBatch, samples, o)
}

// ZeRO implements Evaluator.
func (Analytic) ZeRO(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int, o HybridOptions) (*Result, error) {
	return ZeRO(cfg, cl, mp, gpus, perReplicaBatch, samples, o)
}

// Pipeline implements Evaluator.
func (Analytic) Pipeline(cfg model.TransformerConfig, cl hw.Cluster, stages, gpus, perReplicaBatch, micro, samples int, o HybridOptions) (*Result, error) {
	return Pipeline(cfg, cl, stages, gpus, perReplicaBatch, micro, samples, o)
}

// BackendNames lists the selectable evaluator backends.
func BackendNames() []string { return []string{"analytic", "planned"} }

// ByName returns a fresh evaluator for the named backend.
func ByName(name string) (Evaluator, error) {
	switch name {
	case "analytic":
		return Analytic{}, nil
	case "planned":
		return NewPlanned(), nil
	default:
		return nil, fmt.Errorf("dist: unknown backend %q (have analytic, planned)", name)
	}
}
