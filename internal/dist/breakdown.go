package dist

import (
	"sort"

	"karma/internal/plan"
	"karma/internal/sim"
	"karma/internal/unit"
)

// StreamBusy is the informational per-stream busy time of one iteration:
// how long each hardware stream executed work, regardless of overlap.
// Streams run concurrently, so these do NOT sum to IterTime — the
// critical-path components of Breakdown do.
type StreamBusy struct {
	// Compute is device math (forward, backward, recompute, GPU update).
	Compute unit.Seconds `json:"compute_s"`
	// H2D and D2H are the swap copies over the host link.
	H2D unit.Seconds `json:"h2d_s"`
	D2H unit.Seconds `json:"d2h_s"`
	// Host is CPU-side compute (host weight updates).
	Host unit.Seconds `json:"host_s"`
	// Network is inter-node collective traffic; NVLink intra-node.
	Network unit.Seconds `json:"network_s"`
	NVLink  unit.Seconds `json:"nvlink_s"`
}

// Breakdown attributes one iteration's critical path: the seven
// component fields partition IterTime exactly (the reconciliation the
// property tests pin for every family, backend and precision), so every
// verdict explains *where* its time goes — the paper's decomposition
// argument (Fig. 2/3) as data. Busy adds the per-stream view (overlapping,
// so informational), and Occupancy is the paper's Eq. (1) compute-stream
// occupancy.
type Breakdown struct {
	// Compute is forward+backward device math on the critical path.
	Compute unit.Seconds `json:"compute_s"`
	// Recompute is redundant forward work (Opt-2 drops, checkpoint replay).
	Recompute unit.Seconds `json:"recompute_s"`
	// SwapStall is swap-copy time not hidden under compute.
	SwapStall unit.Seconds `json:"swap_stall_s"`
	// ExchangeStall is data-parallel gradient-exchange exposure.
	ExchangeStall unit.Seconds `json:"exchange_stall_s"`
	// Collective is blocking model-parallel collective exposure.
	Collective unit.Seconds `json:"collective_s"`
	// Bubble is pipeline fill/drain and stage-boundary wire exposure,
	// plus idle the other categories cannot explain.
	Bubble unit.Seconds `json:"bubble_s"`
	// Update is optimizer-step time on the critical path (device update
	// plus host-update stall).
	Update unit.Seconds `json:"update_s"`

	Busy      StreamBusy `json:"busy"`
	Occupancy float64    `json:"occupancy"`
}

// Components sums the critical-path attribution; it reconciles with
// Result.IterTime by construction in both backends.
func (b *Breakdown) Components() unit.Seconds {
	return b.Compute + b.Recompute + b.SwapStall + b.ExchangeStall +
		b.Collective + b.Bubble + b.Update
}

// withOccupancy derives the analytic occupancy proxy (compute-stream
// busy over the iteration) and returns the breakdown for attachment.
func (b *Breakdown) withOccupancy(iter unit.Seconds) *Breakdown {
	if iter > 0 {
		b.Occupancy = float64(b.Busy.Compute) / float64(iter)
		if b.Occupancy > 1 {
			b.Occupancy = 1
		}
	}
	return b
}

// coverCat classifies non-compute plan ops for idle attribution, in
// priority order: a compute-stream gap overlapped by a swap copy is a
// swap stall before it is anything else, then blocking collectives, the
// data-parallel exchange, the host update, and stage-boundary wires.
type coverCat int

const (
	coverSwap coverCat = iota
	coverCollective
	coverExchange
	coverHost
	coverWire
	numCoverCats
)

// coverCatOf maps a plan op kind to its idle-attribution category.
func coverCatOf(k plan.Kind) (coverCat, bool) {
	switch k {
	case plan.SwapIn, plan.SwapOut:
		return coverSwap, true
	case plan.MPAllReduce, plan.MPAllReduceLocal, plan.ParamGather:
		return coverCollective, true
	case plan.GradExchange:
		return coverExchange, true
	case plan.UpdateCPU:
		return coverHost, true
	case plan.Send, plan.Recv, plan.SendLocal, plan.RecvLocal:
		return coverWire, true
	}
	return 0, false
}

// timelineBreakdown derives the critical-path attribution from one
// simulated plan. Compute-stream busy time classifies by op kind
// (forward/backward, recompute, GPU update); compute-stream idle over
// [0, Makespan] attributes greedily by what overlapped it, in coverCat
// priority order, and the residual no stream explains is bubble. The
// components sum to the makespan exactly by construction — what makes
// the reconciliation property test meaningful is that the planned and
// analytic paths must agree through two entirely different derivations.
func timelineBreakdown(c *plan.Compiled, tl *sim.Timeline) *Breakdown {
	b := &Breakdown{
		Busy: StreamBusy{
			Compute: tl.Busy[sim.Compute],
			H2D:     tl.Busy[sim.H2D],
			D2H:     tl.Busy[sim.D2H],
			Host:    tl.Busy[sim.HostCPU],
			Network: tl.Busy[sim.Network],
			NVLink:  tl.Busy[sim.NVLink],
		},
		Occupancy: tl.Occupancy(c.Ops),
	}

	type span struct{ start, end unit.Seconds }
	type cover struct {
		span
		cat coverCat
	}
	// Compute-stream gaps over [0, Makespan]. Stream queues are FIFO, so
	// compute ops run serially in submission order and one pass yields
	// the classified busy time and the ordered idle gaps.
	var gaps []span
	cursor := unit.Seconds(0)
	var covers []cover
	for i := range c.Ops {
		r := tl.Ops[i]
		kind := c.PlanOps[i].Kind
		if c.Ops[i].Stream != sim.Compute {
			if cat, ok := coverCatOf(kind); ok && r.End > r.Start {
				covers = append(covers, cover{span{r.Start, r.End}, cat})
			}
			continue
		}
		if r.Start > cursor {
			gaps = append(gaps, span{cursor, r.Start})
		}
		if r.End > cursor {
			cursor = r.End
		}
		switch kind {
		case plan.Recompute:
			b.Recompute += r.End - r.Start
		case plan.UpdateGPU:
			b.Update += r.End - r.Start
		default: // Fwd, Bwd
			b.Compute += r.End - r.Start
		}
	}
	if tl.Makespan > cursor {
		gaps = append(gaps, span{cursor, tl.Makespan})
	}

	// Per-gap overlap with each category: covers sorted by start, then a
	// two-pointer sweep (gaps are already ordered) touches only the
	// intersecting pairs.
	sort.Slice(covers, func(i, j int) bool { return covers[i].start < covers[j].start })
	overlap := make([][numCoverCats]unit.Seconds, len(gaps))
	gi := 0
	for _, cv := range covers {
		for gi < len(gaps) && gaps[gi].end <= cv.start {
			gi++
		}
		for j := gi; j < len(gaps) && gaps[j].start < cv.end; j++ {
			lo, hi := gaps[j].start, gaps[j].end
			if cv.start > lo {
				lo = cv.start
			}
			if cv.end < hi {
				hi = cv.end
			}
			if hi > lo {
				overlap[j][cv.cat] += hi - lo
			}
		}
	}

	// Greedy attribution: each category claims up to its overlap with the
	// gap, in priority order, so the gap total — and with it the makespan
	// — is conserved exactly even where covers overlap each other.
	for j, g := range gaps {
		remaining := g.end - g.start
		for cat := coverSwap; cat < numCoverCats; cat++ {
			t := overlap[j][cat]
			if t > remaining {
				t = remaining
			}
			remaining -= t
			switch cat {
			case coverSwap:
				b.SwapStall += t
			case coverCollective:
				b.Collective += t
			case coverExchange:
				b.ExchangeStall += t
			case coverHost:
				b.Update += t
			case coverWire:
				b.Bubble += t
			}
		}
		b.Bubble += remaining
	}
	return b
}
