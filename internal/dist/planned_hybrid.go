package dist

import (
	"fmt"
	"sync"

	"karma/internal/comm"
	"karma/internal/hw"
	"karma/internal/karma"
	"karma/internal/model"
	"karma/internal/plan"
	"karma/internal/profiler"
	"karma/internal/sim"
	"karma/internal/unit"
)

// This file is the planner-backed path for the in-core hybrid baselines
// (Megatron MP+DP, ZeRO): instead of the closed forms of hybrid.go, the
// 1/mp shard graph is profiled per layer, its in-core (or checkpointed)
// schedule lowered to the plan IR, the Megatron collectives and the
// data-parallel exchange injected on the collective streams, and the
// iteration costed by the event simulator — so the blocking per-layer
// all-reduces, checkpoint replays and the phased exchange contend and
// overlap exactly as scheduled (the fidelity tier above hybrid.go's
// phase algebra).

// hybrid evaluates one MP+DP (or ZeRO) configuration through the shared
// setup (whose shard builds, profiles and schedules come from the
// process-wide memo caches) and the per-layer simulation; a simulator
// failure on a configuration the shared precheck deems feasible falls
// back to the analytic closed form (the result keeps its "analytic"
// tag).
func (pe *Planned) hybrid(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int, zero bool, o HybridOptions) (*Result, error) {
	shard, p, s, bad, err := hybridSetup(cfg, cl, mp, gpus, perReplicaBatch, samples, zero, o)
	if err != nil {
		return nil, err
	}
	if bad != nil {
		bad.Backend = pe.Name()
		return bad, nil
	}
	replicas := gpus / mp
	r := func(iter unit.Seconds) *Result {
		res := finalize(iter, gpus, replicas*perReplicaBatch, samples)
		res.Ckpt = o.Checkpoint
		return res
	}
	iter, bd, err := pe.hybridIter(cfg, shard, p, s, cl, mp, replicas, zero, o)
	if err != nil {
		c := megatronCost(cfg, shard, p, s, cl, mp, replicas, zero, o)
		res := r(c.iter()) // Backend stays "analytic": explicit fallback
		res.Breakdown = c.breakdown()
		return res, nil
	}
	res := r(iter)
	res.Backend = pe.Name()
	res.Breakdown = bd
	return res, nil
}

// buildHybridPlan lowers the shard schedule to the plan IR and injects
// the MP collectives, the data-parallel exchange and the closing update
// — the shared front half of hybridIter and the export API. The arenas
// back the injectors' rebuilt stage lists (pooled in the evaluator's hot
// path, fresh for exports that outlive the call).
func buildHybridPlan(cfg model.TransformerConfig, shard *model.Shard, p *profiler.Profile, s *karma.Schedule, cl hw.Cluster, mp, replicas int, zero bool, o HybridOptions, ex, mpArena *stageArena) (*plan.Plan, error) {
	pl, err := karma.BuildPlan(s)
	if err != nil {
		return nil, err
	}
	// Exchange first, collectives second: the walk below then queues each
	// backward's blocking all-reduce ahead of the exchange phase it
	// unblocks, the priority a real implementation gives the collective
	// the next layer's compute is stalled on.
	injectHybridExchange(pl, s, cl, replicas, mp*replicas, zero, o, ex)
	injectMPCollectives(pl, s, shard, p, cfg, cl, mp, replicas, mpArena)
	appendHybridUpdate(pl, s, cl, zero, replicas)
	return pl, nil
}

// hybridIter lowers the shard schedule to a plan, injects the exchange
// and the MP collectives, and simulates one iteration. The breakdown
// derives from the simulated timeline; the update is a scheduled op
// here, so no supplement is needed and the components sum to the
// makespan by construction.
func (pe *Planned) hybridIter(cfg model.TransformerConfig, shard *model.Shard, p *profiler.Profile, s *karma.Schedule, cl hw.Cluster, mp, replicas int, zero bool, o HybridOptions) (unit.Seconds, *Breakdown, error) {
	if pe.failSim {
		return 0, nil, errForcedFallback
	}
	sc := hybridScratchPool.Get().(*hybridScratch)
	defer hybridScratchPool.Put(sc)
	var pl *plan.Plan
	var err error
	pe.timed("plan_build", func() {
		pl, err = buildHybridPlan(cfg, shard, p, s, cl, mp, replicas, zero, o, &sc.ex, &sc.mp)
	})
	if err != nil {
		return 0, nil, err
	}
	// Compile and run on the scratch's long-lived compiler and simulator
	// (exactly what pl.Simulate does on fresh ones, error strings
	// included) so the per-configuration evaluation stays allocation-lean.
	var c *plan.Compiled
	var tl *sim.Timeline
	pe.timed("simulate", func() {
		c, err = sc.comp.Compile(pl)
		if err != nil {
			return
		}
		//karma:plan-ok ops come from Compile on this same plan; the pooled Runner just skips Simulate's per-call allocations
		if tl, err = sc.run.Run(c.Ops, s.Budget); err != nil {
			err = fmt.Errorf("plan %s: %w", pl.Name, err)
		}
	})
	if err != nil {
		return 0, nil, err
	}
	return tl.Makespan, timelineBreakdown(c, tl), nil
}

// hybridScratch is the reusable evaluation state of one planned-hybrid
// simulation: the stage arenas the injectors rebuild into plus the
// compiler and simulator. Pooled because the sweep engine evaluates
// configurations from several workers; reuse never changes results, it
// only skips re-growing the buffers.
type hybridScratch struct {
	comp plan.Compiler
	run  sim.Runner
	ex   stageArena
	mp   stageArena
}

var hybridScratchPool = sync.Pool{New: func() any { return new(hybridScratch) }}

// stageArena backs one injector's rebuilt stage list with two flat
// slices, so a steady-state rebuild allocates nothing once grown. Ops of
// kept stages alias the input plan; single-op stages point into the ops
// arena (growth may leave earlier stages on an older backing array,
// which is fine — they are never mutated afterwards).
type stageArena struct {
	stages []plan.Stage
	ops    []plan.Op
}

func (a *stageArena) reset() {
	a.stages = a.stages[:0]
	a.ops = a.ops[:0]
}

// keep copies an existing stage through unchanged.
func (a *stageArena) keep(st plan.Stage) {
	a.stages = append(a.stages, st)
}

// one appends a new single-op stage.
func (a *stageArena) one(op plan.Op) {
	a.ops = append(a.ops, op)
	n := len(a.ops)
	a.stages = append(a.stages, plan.Stage{Ops: a.ops[n-1 : n : n]})
}

// injectMPCollectives inserts the blocking Megatron all-reduces: one
// after every forward pass (and interior checkpoint-run replay, whose
// boundary must be re-reduced) of a block ending in a row-parallel
// boundary, stalling the next block's forward; and one per such block in
// backward, where the input-gradient collective launches after the
// dgrad half of the backward pass and overlaps the wgrad half — the
// standard Megatron-LM overlap — before the previous block's backward
// may start. MP groups packed inside one node collect over NVLink
// (plan.MPAllReduceLocal) and leave the network stream to the exchange;
// groups spanning nodes contend with it (plan.MPAllReduce).
func injectMPCollectives(pl *plan.Plan, s *karma.Schedule, shard *model.Shard, p *profiler.Profile, cfg model.TransformerConfig, cl hw.Cluster, mp, replicas int, arena *stageArena) {
	if mp <= 1 {
		return
	}
	backend := comm.Pick(mp * replicas)
	perAR := comm.HierarchicalAllReduce(mpARPayload(cfg, p), cl, mp, backend)
	if perAR <= 0 {
		return
	}
	kind := plan.MPAllReduce
	if mp <= cl.Node.Devices {
		kind = plan.MPAllReduceLocal
	}
	ar := func(block, n int) {
		arena.one(plan.Op{
			Kind: kind, Block: block,
			Duration: unit.Seconds(float64(n) * float64(perAR)),
		})
	}
	fwdAR, bwdAR := arCounts(shard, p)
	arena.reset()
	for _, st := range pl.Stages {
		if len(st.Ops) == 1 && st.Ops[0].Kind == plan.Bwd && bwdAR[st.Ops[0].Block] > 0 {
			// dgrad → input-gradient all-reduce ∥ wgrad: the collective
			// launches once the data-gradient half produced its partial
			// sums and overlaps the weight-gradient half; memory frees
			// when the whole backward pass retires.
			op := st.Ops[0]
			dgrad, wgrad := op, op
			dgrad.Duration = op.Duration / 2
			dgrad.Alloc, dgrad.Free = op.Alloc, 0
			wgrad.Duration = op.Duration - dgrad.Duration
			wgrad.Alloc, wgrad.Free = 0, op.Free
			arena.one(dgrad)
			ar(op.Block, bwdAR[op.Block])
			arena.one(wgrad)
			continue
		}
		arena.keep(st)
		for _, op := range st.Ops {
			n := 0
			switch op.Kind {
			case plan.Fwd:
				n = fwdAR[op.Block]
			case plan.Bwd:
				// A backward sharing its stage with other ops (none of the
				// in-core/checkpointed schedules emit this today) still
				// gets its blocking collective — serially, without the
				// wgrad overlap of the split above.
				n = bwdAR[op.Block]
			case plan.Recompute:
				if s.RunContinues(op.Block) {
					n = fwdAR[op.Block]
				}
			}
			if n > 0 {
				ar(op.Block, n)
			}
		}
	}
	pl.Stages = arena.stages
}

// firstWeightedBlock returns the lowest block index carrying weights —
// the block whose backward completes last among weighted blocks, and
// therefore the one whose exchange phase drains the network last.
func firstWeightedBlock(s *karma.Schedule) int {
	for i, b := range s.Blocks {
		if b.Cost.WeightBytes > 0 {
			return i
		}
	}
	return 0
}

// injectHybridExchange adds the data-parallel gradient exchange across
// the shard's replicas. Bulk mode appends one ring collective after the
// whole backward pass; phased mode groups per-block payloads in backward
// completion order (comm.RingPhasedGroups) and launches each phase right
// after the backward that completes it. Under ZeRO each phase is the
// reduce-scatter half, and the matching parameter all-gather half
// prefetches ahead of the forward pass that consumes it (steady state),
// filling the network gaps between the blocking forward collectives.
func injectHybridExchange(pl *plan.Plan, s *karma.Schedule, cl hw.Cluster, replicas, gpus int, zero bool, o HybridOptions, arena *stageArena) {
	if replicas <= 1 {
		return
	}
	backend := comm.Pick(gpus)
	ring := shardEngine(cl)
	k := len(s.Blocks)

	if !zero && !o.Phased {
		var total unit.Bytes
		for _, b := range s.Blocks {
			total += b.Cost.WeightBytes
		}
		if t := comm.RingAllReduceOver(ring, total, replicas, backend); t > 0 {
			// Attached to the first weighted block so the update op's
			// GradExchange dependency (appendHybridUpdate) finds it.
			pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
				Kind: plan.GradExchange, Block: firstWeightedBlock(s), Duration: t,
			}}})
		}
		return
	}

	// A group is one collective — merging amortizes its latency — but its
	// traffic drains per block as gradients are produced, so each member
	// block carries its byte-share of the group's time. Spreading the
	// phases this way lets the blocking MP all-reduces slot between them
	// on the network FIFO instead of stalling behind a monolithic phase.
	spread := func(sizes []unit.Bytes, half bool) []unit.Seconds {
		out := make([]unit.Seconds, len(sizes))
		for _, g := range comm.RingPhasedGroupsOver(ring, sizes, replicas, backend) {
			t := g.Time
			if half {
				t /= 2 // reduce-scatter or all-gather: half the ring steps
			}
			for _, i := range g.Blocks {
				if g.Bytes > 0 && sizes[i] > 0 {
					out[i] += unit.Seconds(float64(t) * float64(sizes[i]) / float64(g.Bytes))
				}
			}
		}
		return out
	}
	sizes := make([]unit.Bytes, k)
	for i := 0; i < k; i++ {
		sizes[i] = s.Blocks[k-1-i].Cost.WeightBytes // completion order
	}
	exAfter := make([]unit.Seconds, k)
	for i, t := range spread(sizes, zero) {
		exAfter[k-1-i] = t
	}
	agBefore := make([]unit.Seconds, k)
	if zero {
		fwdSizes := make([]unit.Bytes, k)
		for i := 0; i < k; i++ {
			fwdSizes[i] = s.Blocks[i].Cost.WeightBytes
		}
		agBefore = spread(fwdSizes, true)
	}

	arena.reset()
	for _, st := range pl.Stages {
		for _, op := range st.Ops {
			if op.Kind == plan.Fwd && agBefore[op.Block] > 0 {
				arena.one(plan.Op{
					Kind: plan.ParamGather, Block: op.Block, Duration: agBefore[op.Block],
				})
			}
		}
		arena.keep(st)
		for _, op := range st.Ops {
			if op.Kind == plan.Bwd && exAfter[op.Block] > 0 {
				arena.one(plan.Op{
					Kind: plan.GradExchange, Block: op.Block, Duration: exAfter[op.Block],
				})
			}
		}
	}
	pl.Stages = arena.stages
}

// appendHybridUpdate closes the iteration with the device-side optimizer
// step: it is attached to the first weighted block — whose exchange
// phase drains last — so the compiler's GradExchange dependency makes it
// wait for the full exchange before serializing on the compute stream.
// Under ZeRO every replica updates only its 1/replicas optimizer
// partition.
func appendHybridUpdate(pl *plan.Plan, s *karma.Schedule, cl hw.Cluster, zero bool, replicas int) {
	var updF float64
	for _, b := range s.Blocks {
		updF += float64(b.Cost.UpdateFLOPs)
	}
	if zero {
		updF /= float64(replicas)
	}
	pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
		Kind: plan.UpdateGPU, Block: firstWeightedBlock(s),
		Duration: unit.ComputeTime(unit.FLOPs(updF), cl.Node.Device.SustainedFLOPS()),
	}}})
}
