package dist

import (
	"testing"

	"karma/internal/hw"
	"karma/internal/model"
)

// The planned evaluator's fallback contract: when the simulator cannot
// cost a configuration the shared precheck deems feasible, the result
// falls back to the analytic closed form and must carry the SAME fields
// a planned result would — Ckpt, GPUs, GlobalBatch — with only the
// Backend tag marking the fallback ("analytic", the documented signal
// sweep tooling uses to detect silent degradation). These are the
// regression tests for that contract, driven through the failSim hook.

func TestAnalyticFallbackTagging(t *testing.T) {
	cl := hw.ABCI()
	cfg := model.TuringNLG()
	o := HybridOptions{Phased: true, Checkpoint: true}

	pe := NewPlanned()
	pe.failSim = true
	real := NewPlanned()

	type variant struct {
		name string
		run  func(pe *Planned) (*Result, error)
	}
	variants := []variant{
		{"megatron", func(pe *Planned) (*Result, error) {
			return pe.MegatronHybrid(cfg, cl, 16, 512, 2, samples, o)
		}},
		{"zero", func(pe *Planned) (*Result, error) {
			return pe.ZeRO(cfg, cl, 16, 512, 2, samples, o)
		}},
		{"pipeline", func(pe *Planned) (*Result, error) {
			return pe.Pipeline(cfg, cl, 16, 512, 8, 8, samples, o)
		}},
	}
	for _, v := range variants {
		fb, err := v.run(pe)
		if err != nil {
			t.Fatalf("%s fallback: %v", v.name, err)
		}
		pl, err := v.run(real)
		if err != nil {
			t.Fatalf("%s planned: %v", v.name, err)
		}
		if !fb.Feasible || !pl.Feasible {
			t.Fatalf("%s: both paths must be feasible: %q %q", v.name, fb.Reason, pl.Reason)
		}
		if fb.Backend != "analytic" {
			t.Errorf("%s: fallback Backend = %q, want the explicit analytic tag", v.name, fb.Backend)
		}
		if pl.Backend != "planned" {
			t.Errorf("%s: live path Backend = %q", v.name, pl.Backend)
		}
		// The regression: the fallback result must carry the same Ckpt and
		// identity fields as the planned path, not a half-initialized
		// Result.
		if fb.Ckpt != pl.Ckpt {
			t.Errorf("%s: fallback Ckpt = %v, planned path has %v", v.name, fb.Ckpt, pl.Ckpt)
		}
		if fb.GPUs != pl.GPUs || fb.GlobalBatch != pl.GlobalBatch {
			t.Errorf("%s: fallback identity (%d gpus, %d batch) differs from planned (%d, %d)",
				v.name, fb.GPUs, fb.GlobalBatch, pl.GPUs, pl.GlobalBatch)
		}
		if fb.IterTime <= 0 || fb.EpochTime <= 0 {
			t.Errorf("%s: fallback carries no timing", v.name)
		}
	}

	// KARMA's planned path falls back to the package-level closed form;
	// the analytic tag and identity fields follow the same contract.
	g := model.Transformer(cfg)
	fb, err := pe.KARMADataParallel(g, cl, 512, 2, samples, KARMAOptions{ZeROShard: true})
	if err != nil {
		t.Fatalf("karma fallback: %v", err)
	}
	if !fb.Feasible || fb.Backend != "analytic" {
		t.Errorf("karma fallback: feasible=%v Backend=%q", fb.Feasible, fb.Backend)
	}
	if fb.GPUs != 512 || fb.GlobalBatch != 1024 {
		t.Errorf("karma fallback identity: gpus=%d batch=%d", fb.GPUs, fb.GlobalBatch)
	}

	// Infeasible verdicts are produced by the shared precheck, not the
	// simulator, so they keep the live "planned" tag even under failSim.
	bad, err := pe.MegatronHybrid(cfg, cl, 3, 512, 2, samples, o)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Feasible || bad.Backend != "planned" {
		t.Errorf("infeasible under failSim: feasible=%v Backend=%q", bad.Feasible, bad.Backend)
	}
	if !bad.Ckpt {
		t.Error("infeasible verdict must still record the checkpoint regime")
	}
}
