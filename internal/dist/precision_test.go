package dist

import (
	"testing"

	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/profiler"
	"karma/internal/tensor"
	"karma/internal/unit"
)

// mixed is the fp16-with-fp32-master regime under test.
var mixed = tensor.MixedFP16

// TestMixedPrecisionRaisesZeROCapacityBatch: the tentpole effect — fp16
// tensors halve the activation footprint and the sharded optimizer
// state, so ZeRO's capacity batch at the shipped MP=16 grows materially
// (the batch headroom the real Turing-NLG run had and the fp32-only
// model denied it).
func TestMixedPrecisionRaisesZeROCapacityBatch(t *testing.T) {
	cl := hw.ABCI()
	cfg := model.TuringNLG()
	capacity := func(prec tensor.Precision) int {
		o := HybridOptions{Phased: true, Checkpoint: true, Precision: prec}
		batch := 0
		for b := 1; b <= 1<<10; b *= 2 {
			r, err := ZeRO(cfg, cl, 16, 512, b, samples, o)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Feasible {
				break
			}
			batch = b
		}
		return batch
	}
	fp32, fp16 := capacity(tensor.FP32Training), capacity(mixed)
	t.Logf("ZeRO capacity batch at MP=16, 512 GPUs: fp32=%d fp16=%d", fp32, fp16)
	if fp32 < 1 {
		t.Fatal("fp32 ZeRO must fit some batch")
	}
	if fp16 < 2*fp32 {
		t.Errorf("fp16 capacity batch %d should at least double the fp32 one %d", fp16, fp32)
	}
}

// TestMixedPrecisionNeverSlower: with compute rates held constant and
// every byte quantity halved, no family's iteration gets slower under
// mixed precision, under either backend.
func TestMixedPrecisionNeverSlower(t *testing.T) {
	cl := hw.ABCI()
	cfg := smallLM()
	g := model.Transformer(cfg)
	pe := NewPlanned()
	for _, ev := range []Evaluator{Analytic{}, pe} {
		eval := func(prec tensor.Precision) map[string]*Result {
			out := map[string]*Result{}
			o := HybridOptions{Phased: true, Precision: prec}
			var err error
			if out["megatron"], err = ev.MegatronHybrid(cfg, cl, 4, 64, 8, samples, o); err != nil {
				t.Fatal(err)
			}
			if out["zero"], err = ev.ZeRO(cfg, cl, 4, 64, 8, samples, o); err != nil {
				t.Fatal(err)
			}
			if out["pipeline"], err = ev.Pipeline(cfg, cl, 4, 64, 8, 4, samples, o); err != nil {
				t.Fatal(err)
			}
			if out["karma"], err = ev.KARMADataParallel(g, cl, 64, 8, samples, KARMAOptions{Precision: prec}); err != nil {
				t.Fatal(err)
			}
			return out
		}
		fp32, fp16 := eval(tensor.FP32Training), eval(mixed)
		for name, r32 := range fp32 {
			r16 := fp16[name]
			if !r32.Feasible || !r16.Feasible {
				t.Fatalf("%s %s: infeasible: %q %q", ev.Name(), name, r32.Reason, r16.Reason)
			}
			if r16.IterTime > r32.IterTime {
				t.Errorf("%s %s: fp16 iteration (%v) slower than fp32 (%v)",
					ev.Name(), name, r16.IterTime, r32.IterTime)
			}
		}
	}
}

// TestMixedPrecisionMasterCosts: the fp32 master is not free — a plain
// (unsharded) Megatron shard pays 2+2+4 bytes per parameter resident, so
// a configuration can exist that fits at fp32 (4+4) but has LESS
// activation headroom at fp16 only if the master were mis-accounted.
// Pin the direction that must hold: at identical batch the fp16 shard's
// activation budget is strictly larger (activations halve; weights+
// grads+master total the same 8 bytes/param), so fp16 feasibility is a
// superset for the plain hybrid.
func TestMixedPrecisionMasterCosts(t *testing.T) {
	cl := hw.ABCI()
	cfg := model.MegatronConfigs()[2]
	for _, batch := range []int{1, 2, 4, 8, 16} {
		o32 := HybridOptions{Checkpoint: true}
		o16 := HybridOptions{Checkpoint: true, Precision: mixed}
		r32, err := MegatronHybrid(cfg, cl, 4, 64, batch, samples, o32)
		if err != nil {
			t.Fatal(err)
		}
		r16, err := MegatronHybrid(cfg, cl, 4, 64, batch, samples, o16)
		if err != nil {
			t.Fatal(err)
		}
		if r32.Feasible && !r16.Feasible {
			t.Errorf("batch %d fits at fp32 but not fp16: %s", batch, r16.Reason)
		}
	}
}

// TestMixedPrecisionKARMAStreaming: the out-of-core replica's streamed
// bytes halve, so on a saturated link the fp16 iteration is strictly
// faster (the karma-side thread of the tentpole: WBytes/GBytes scale
// with the profile's dtype).
func TestMixedPrecisionKARMAStreaming(t *testing.T) {
	cl := slowLinkCluster()
	g := model.Transformer(model.MegatronConfigs()[2])
	pe := NewPlanned()
	for _, ev := range []Evaluator{Analytic{}, pe} {
		r32, err := ev.KARMADataParallel(g, cl, 16, 4, samples, KARMAOptions{})
		if err != nil {
			t.Fatal(err)
		}
		r16, err := ev.KARMADataParallel(g, cl, 16, 4, samples, KARMAOptions{Precision: mixed})
		if err != nil {
			t.Fatal(err)
		}
		if !r32.Feasible || !r16.Feasible {
			t.Fatalf("%s: infeasible: %q %q", ev.Name(), r32.Reason, r16.Reason)
		}
		if r16.IterTime >= r32.IterTime {
			t.Errorf("%s: fp16 streaming (%v) not faster than fp32 (%v) on a saturated link",
				ev.Name(), r16.IterTime, r32.IterTime)
		}
	}
}

// TestParamBytesMatchesProfiledWeights pins the model-level byte
// accounting (TransformerConfig.ParamBytes) to the profiled weight
// footprint the cluster models actually size from, in both regimes —
// the two may not drift apart (Params() is the 12LH²+VH approximation;
// the profiler counts real layer parameters, so a 10% band covers the
// layer-norm and bias remainder).
func TestParamBytesMatchesProfiledWeights(t *testing.T) {
	cfg := smallLM()
	for _, prec := range []tensor.Precision{tensor.FP32Training, mixed} {
		p, err := profiler.New(model.Transformer(cfg), hw.ABCINode(),
			profiler.Options{Batch: 1, DType: prec.DType()})
		if err != nil {
			t.Fatal(err)
		}
		pb := cfg.ParamBytes(prec)
		ratio := float64(pb) / float64(p.TotalWeightBytes)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%v: ParamBytes %v vs profiled %v (ratio %.3f) — the accountings drifted",
				prec, pb, p.TotalWeightBytes, ratio)
		}
	}
	if 2*cfg.ParamBytes(mixed) != cfg.ParamBytes(tensor.FP32Training) {
		t.Error("mixed-precision weights must be exactly half the fp32 bytes")
	}
}

// TestPrecisionParsing: the karma-bench surface round-trips.
func TestPrecisionParsing(t *testing.T) {
	for _, c := range []struct {
		in   string
		want tensor.Precision
		ok   bool
	}{
		{"fp32", tensor.FP32Training, true},
		{"fp16", tensor.MixedFP16, true},
		{"mixed", tensor.MixedFP16, true},
		{"bf16", tensor.FP32Training, false},
	} {
		got, err := tensor.ParsePrecision(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParsePrecision(%q) = %v, %v", c.in, got, err)
		}
	}
	if tensor.MixedFP16.DType() != tensor.FP16 || tensor.FP32Training.DType() != tensor.FP32 {
		t.Error("precision element types wrong")
	}
	if tensor.MixedFP16.MasterBytes(10) != 20 || tensor.FP32Training.MasterBytes(10) != 0 {
		t.Error("master-copy accounting wrong")
	}
	if tensor.MixedFP16.OptimBytes(10) != 20 || tensor.FP32Training.OptimBytes(10) != unit.Bytes(10) {
		t.Error("optimizer-state accounting wrong")
	}
}
