package dist

import (
	"fmt"
	"math"
	"sort"
	"time"

	"karma/internal/comm"
	"karma/internal/graph"
	"karma/internal/hw"
	"karma/internal/karma"
	"karma/internal/model"
	"karma/internal/plan"
	"karma/internal/profiler"
	"karma/internal/sim"
	"karma/internal/tensor"
	"karma/internal/unit"
)

// Planned is the planner-backed evaluator: instead of the closed-form
// heavy/cheap activation split, each KARMA replica derives a per-replica
// profile (sharded batch, optionally ZeRO-shrunk gradient footprint),
// runs the real two-tier partition search (karma.Plan: Opt-1 blocking,
// Opt-2 recompute interleave — at cluster scale in the §III-G
// weight-streaming regime), and feeds the schedule through the event
// simulator with the phased gradient exchange of internal/comm injected
// as Network-stream ops, so swap and recompute stalls overlap the
// exchange exactly as in Fig. 3.
//
// Planner runs are cached by (graph, node, batch) for profiles and by
// (profile, planner options) for schedules, so sweeps re-plan each
// replica shape once and re-simulate only the cheap exchange composition
// per configuration. Note that under ZeROShard the gradient shard
// (1/gpus) is part of the replica shape — each GPU count genuinely plans
// a different footprint — so a ZeRO sweep replans per GPU count by
// design. Distinct graphs must be distinct pointers (true for every
// model.Build/model.Transformer call site).
//
// Both caches are singleflight memos (memo.go), so one shared Planned
// serves a parallel sweep: concurrent grid points that need the same
// replica profile or partition search block on one computation instead
// of duplicating or serializing it, and distinct keys plan in parallel.
// The hybrid and pipeline shard builds/profiles/schedules come from the
// process-wide caches both backends share (see hybridSetup).
//
// The in-core hybrid baselines (MegatronHybrid, ZeRO) run per layer too:
// the 1/mp shard of model.TransformerShard is profiled, its in-core (or
// checkpointed) schedule lowered to a plan, the blocking MP all-reduces
// and the data-parallel exchange injected as collective-stream ops, and
// the whole iteration simulated — so compute/collective overlap and
// checkpoint-recompute stalls interact per layer (see planned_hybrid.go).
// Conventional DataParallel stays on the closed form, which is exact for
// a schedule with no overlap structure at all. When the partition search
// or the simulator cannot cost a configuration the shared precheck deems
// feasible, Planned falls back to the analytic cost (the result keeps
// its "analytic" tag in Result.Backend) rather than diverging on the
// feasibility verdict.
type Planned struct {
	profiles  memo[profileKey, *profiler.Profile]
	schedules memo[schedKey, planOutcome]

	// observe, when set, receives the wall-clock duration of each
	// evaluation phase (see Observe). nil on the hot path: no clock reads.
	observe func(phase string, seconds float64)

	// failSim, when set, makes every simulation attempt report an error,
	// forcing the analytic fallback paths. It exists only so the fallback
	// tagging contract (Backend stays "analytic", Ckpt still recorded)
	// can be regression-tested; nothing outside the tests sets it.
	failSim bool
}

// Observe registers a callback receiving the wall-clock seconds spent in
// each evaluation phase: "search" (the karma.Plan partition search),
// "plan_build" (plan lowering and collective injection), and "simulate"
// (the event simulator). Register before serving evaluations; the
// callback may be invoked concurrently and must synchronize itself.
// With no observer registered the evaluator never reads the clock.
func (pe *Planned) Observe(fn func(phase string, seconds float64)) {
	pe.observe = fn
}

// timed runs fn, reporting its duration to the observer when one is
// registered.
func (pe *Planned) timed(phase string, fn func()) {
	if pe.observe == nil {
		fn()
		return
	}
	//karma:det-ok phase timings are observability wall-clock; no model output depends on them
	start := time.Now()
	fn()
	pe.observe(phase, time.Since(start).Seconds())
}

type profileKey struct {
	g     *graph.Graph
	node  hw.Node
	batch int
	dt    tensor.DType
}

type schedKey struct {
	p    *profiler.Profile
	opts karma.Options
}

// NewPlanned returns a planner-backed evaluator with empty caches.
func NewPlanned() *Planned {
	return &Planned{}
}

// errForcedFallback is returned by the simulation paths under the
// failSim test hook.
var errForcedFallback = fmt.Errorf("dist: simulation disabled (test hook)")

// Name implements Evaluator.
func (*Planned) Name() string { return "planned" }

// profile returns the cached per-replica profile.
func (pe *Planned) profile(g *graph.Graph, node hw.Node, batch int, dt tensor.DType) (*profiler.Profile, error) {
	key := profileKey{g: g, node: node, batch: batch, dt: dt}
	return pe.profiles.do(key, func() (*profiler.Profile, error) {
		return profiler.New(g, node, profiler.Options{Batch: batch, DType: dt})
	})
}

// planOutcome is a cached partition-search verdict. karma.Plan is a
// pure function of (profile, options), so "no feasible schedule" is as
// deterministic as a schedule and is cached as a value — plannedIter
// probes the residency regime first and falls back to weight-streaming
// on failure, and a sweep must not re-run that failing search per grid
// point. The memo itself never retains errors (transient failures would
// retry); the error lives inside the value by the caller's choice.
type planOutcome struct {
	s   *karma.Schedule
	err error
}

// plan returns the cached planner schedule for (profile, options).
func (pe *Planned) plan(p *profiler.Profile, opts karma.Options) (*karma.Schedule, error) {
	out, _ := pe.schedules.do(schedKey{p: p, opts: opts}, func() (planOutcome, error) {
		s, err := karma.Plan(p, opts)
		return planOutcome{s: s, err: err}, nil
	})
	return out.s, out.err
}

// KARMADataParallel implements Evaluator with the planner-backed replica
// cost.
func (pe *Planned) KARMADataParallel(g *graph.Graph, cl hw.Cluster, gpus, perReplicaBatch, samples int, o KARMAOptions) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("dist: nil graph")
	}
	if err := validateRun(cl, gpus, perReplicaBatch, samples); err != nil {
		return nil, err
	}
	global := gpus * perReplicaBatch
	stamp := func(r *Result) *Result { r.Backend = pe.Name(); return r }
	if total := cl.TotalDevices(); gpus > total {
		return stamp(infeasible(gpus, global, "cluster %s has %d devices, need %d", cl.Name, total, gpus)), nil
	}
	p, err := pe.profile(g, cl.Node, perReplicaBatch, o.Precision.DType())
	if err != nil {
		return nil, err
	}
	m := budget(cl)
	if mb := maxBlockBytes(p); mb > m {
		// Shared verdict with the analytic backend: a single block that
		// cannot fit is infeasible under any policy.
		return stamp(infeasible(gpus, global, "largest block needs %v of %v device memory", mb, m)), nil
	}
	weights := p.TotalWeightBytes
	grads := weights
	gs := 1.0
	if o.ZeROShard {
		gs = 1 / float64(gpus)
		grads = unit.Bytes(math.Ceil(float64(weights) / float64(gpus)))
	}
	if weights+grads+p.TotalActBytes <= m {
		// Fully in-core the planner degenerates to conventional data
		// parallelism and the closed form is exact; both backends agree
		// bit-for-bit here by construction.
		r, err := KARMADataParallel(g, cl, gpus, perReplicaBatch, samples, o)
		if err != nil {
			return nil, err
		}
		return stamp(r), nil
	}
	iter, bd, err := pe.plannedIter(p, cl, gpus, o, gs)
	if err != nil {
		// The search found no simulable schedule for a configuration the
		// shared precheck deems feasible: keep the feasibility verdict
		// aligned and fall back to the closed form.
		r, ferr := KARMADataParallel(g, cl, gpus, perReplicaBatch, samples, o)
		if r != nil {
			r.Backend = "analytic"
		}
		return r, ferr
	}
	r := finalize(iter, gpus, global, samples)
	r.Breakdown = bd
	return stamp(r), nil
}

// plannedIter plans one replica and simulates its iteration with the
// phased gradient exchange overlapped. The returned breakdown derives
// from the simulated timeline (timelineBreakdown) with the update cost
// — which the simulation does not schedule — added to both the
// iteration and its Update component, so the attribution still sums to
// the iteration time.
func (pe *Planned) plannedIter(p *profiler.Profile, cl hw.Cluster, gpus int, o KARMAOptions, gs float64) (unit.Seconds, *Breakdown, error) {
	if pe.failSim {
		return 0, nil, errForcedFallback
	}
	// Prefer the single-GPU residency regime (weights resident, only
	// activations stream); when weights cannot stay resident, plan the
	// §III-G weight-streaming regime instead.
	opts := karma.Options{GradScale: gs, Seed: 1}
	var s *karma.Schedule
	var err error
	pe.timed("search", func() {
		s, err = pe.plan(p, opts)
		if err != nil {
			opts.StreamWeights = true
			s, err = pe.plan(p, opts)
		}
	})
	if err != nil {
		return 0, nil, err
	}
	var pl *plan.Plan
	pe.timed("plan_build", func() {
		pl, err = karma.BuildPlan(s)
		if err != nil {
			return
		}
		if o.UpdateOnDevice {
			addMomentumTraffic(pl, s, cl, o, gpus)
		}
		if gpus > 1 {
			injectExchange(pl, s, cl, gpus)
		}
	})
	if err != nil {
		return 0, nil, err
	}
	var c *plan.Compiled
	var tl *sim.Timeline
	pe.timed("simulate", func() {
		c, tl, err = pl.Simulate(s.Budget)
	})
	if err != nil {
		return 0, nil, err
	}
	upd := updateCost(s, cl, o, gs)
	b := timelineBreakdown(c, tl)
	b.Update += upd
	return tl.Makespan + upd, b, nil
}

// updateCost returns the weight-update time on the iteration's critical
// path: the device-side update of resident (and, under UpdateOnDevice,
// streamed) blocks serializes; the host-side update of streamed blocks
// overlaps the next iteration's forward pass and only the excess stalls
// — the same accounting as the analytic replica model.
func updateCost(s *karma.Schedule, cl hw.Cluster, o KARMAOptions, gs float64) unit.Seconds {
	var devF, hostF float64
	var fwd unit.Seconds
	for _, b := range s.Blocks {
		fwd += b.Cost.FwdTime
		u := gs * float64(b.Cost.UpdateFLOPs)
		if o.UpdateOnDevice || b.Policy == karma.Keep || b.WBytes == 0 {
			devF += u
		} else {
			hostF += u
		}
	}
	t := unit.ComputeTime(unit.FLOPs(devF), cl.Node.Device.SustainedFLOPS())
	if hostT := unit.ComputeTime(unit.FLOPs(hostF), cl.Node.Host.SustainedFLOPS()); hostT > fwd {
		t += hostT - fwd
	}
	return t
}

// addMomentumTraffic models ablation A4 on a planned schedule: forcing
// streamed blocks to update on the GPU round-trips their momentum
// buffers over the link, inflating the backward weight refetch and the
// gradient drain of every streamed block. The buffers are fp32 in both
// precision regimes (ZeRO partitions momentum like the rest of the
// optimizer state).
func addMomentumTraffic(pl *plan.Plan, s *karma.Schedule, cl hw.Cluster, o KARMAOptions, gpus int) {
	swapBW := hw.SwapThroughput(cl.Node)
	lat := cl.Node.Link.Latency
	lastIn := map[int]*plan.Op{}
	lastOut := map[int]*plan.Op{}
	for si := range pl.Stages {
		for oi := range pl.Stages[si].Ops {
			op := &pl.Stages[si].Ops[oi]
			switch op.Kind {
			case plan.SwapIn:
				lastIn[op.Block] = op
			case plan.SwapOut:
				lastOut[op.Block] = op
			}
		}
	}
	for b, blk := range s.Blocks {
		if blk.Policy == karma.Keep || blk.WBytes == 0 {
			continue
		}
		mom := float64(o.Precision.OptimBytes(blk.WBytes))
		if o.ZeROShard {
			mom /= float64(gpus)
		}
		t := unit.TransferTime(unit.Bytes(mom), swapBW, lat)
		if op := lastIn[b]; op != nil {
			op.Duration += t
		}
		if op := lastOut[b]; op != nil {
			op.Duration += t
		}
	}
}

// injectExchange appends the phased block-wise gradient exchange to a
// replica plan: per-block gradient payloads in backward completion order
// merge into phases (comm.PhasedGroups), and each phase becomes one
// Network-stream op right after the stage that produces its last
// gradient — its drain for streamed blocks, its backward pass otherwise
// (the compiler derives that dependency). The simulator then overlaps
// the exchange against the backward work still in flight, and only the
// excess extends the makespan.
func injectExchange(pl *plan.Plan, s *karma.Schedule, cl hw.Cluster, gpus int) {
	k := len(s.Blocks)
	backend := comm.Pick(gpus)
	sizes := make([]unit.Bytes, k)
	for i := 0; i < k; i++ {
		sizes[i] = s.Blocks[k-1-i].Cost.WeightBytes // completion order
	}
	groups := comm.PhasedGroups(sizes, cl, gpus, backend)

	// lastStage[b] is the stage after which block b's gradients are
	// available for exchange.
	lastStage := make([]int, k)
	for si, st := range pl.Stages {
		for _, op := range st.Ops {
			if op.Kind == plan.Bwd || op.Kind == plan.SwapOut {
				if si > lastStage[op.Block] {
					lastStage[op.Block] = si
				}
			}
		}
	}
	type insertion struct {
		after int
		op    plan.Op
	}
	var ins []insertion
	for _, g := range groups {
		last := 0
		for _, i := range g.Blocks {
			if i > last {
				last = i
			}
		}
		blk := k - 1 - last
		ins = append(ins, insertion{after: lastStage[blk], op: plan.Op{
			Kind: plan.GradExchange, Block: blk, Duration: g.Time,
		}})
	}
	sort.Slice(ins, func(a, b int) bool { return ins[a].after < ins[b].after })

	out := make([]plan.Stage, 0, len(pl.Stages)+len(ins))
	next := 0
	for si, st := range pl.Stages {
		out = append(out, st)
		for next < len(ins) && ins[next].after == si {
			out = append(out, plan.Stage{Ops: []plan.Op{ins[next].op}})
			next++
		}
	}
	pl.Stages = out
}

// DataParallel implements Evaluator. Conventional data parallelism is
// in-core by definition with no overlap structure to simulate; the
// closed form is exact and the result keeps its "analytic" tag.
func (pe *Planned) DataParallel(g *graph.Graph, cl hw.Cluster, gpus, perReplicaBatch, samples int) (*Result, error) {
	return DataParallel(g, cl, gpus, perReplicaBatch, samples)
}

// MegatronHybrid implements Evaluator with the per-layer simulated shard
// (see planned_hybrid.go).
func (pe *Planned) MegatronHybrid(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int, o HybridOptions) (*Result, error) {
	return pe.hybrid(cfg, cl, mp, gpus, perReplicaBatch, samples, false, o)
}

// ZeRO implements Evaluator with the per-layer simulated shard; the
// exchange is always phased (reduce-scatter behind backward, parameter
// all-gather under forward).
func (pe *Planned) ZeRO(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int, o HybridOptions) (*Result, error) {
	o.Phased = true
	return pe.hybrid(cfg, cl, mp, gpus, perReplicaBatch, samples, true, o)
}
