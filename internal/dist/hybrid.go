package dist

import (
	"fmt"

	"karma/internal/comm"
	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/profiler"
	"karma/internal/unit"
)

// mpCollectivesPerLayer is the Megatron-LM partitioning cost: one
// all-reduce after the attention block and one after the MLP block, in
// both the forward and backward pass of every transformer layer.
const mpCollectivesPerLayer = 4

// validateTransformer rejects degenerate configurations before the model
// builder (which panics on structural errors) runs.
func validateTransformer(cfg model.TransformerConfig) error {
	if cfg.Hidden <= 0 || cfg.Heads <= 0 || cfg.Layers <= 0 || cfg.Seq <= 0 || cfg.Vocab <= 0 {
		return fmt.Errorf("dist: degenerate transformer config %+v", cfg)
	}
	return nil
}

// shardRingBW is the per-collective network bandwidth available to the
// hybrid's data-parallel exchange: each shard's replicas sit on distinct
// nodes, so every node injects into Devices concurrent shard collectives
// and the per-node bandwidth divides among them.
func shardRingBW(cl hw.Cluster) unit.BytesPerSec {
	return cl.NetBW / unit.BytesPerSec(float64(cl.Node.Devices))
}

// hybridCost aggregates the per-iteration phases shared by MegatronHybrid
// and ZeRO: per-shard compute, MP activation collectives, and the
// data-parallel gradient exchange across replicas.
type hybridCost struct {
	fwd, bwd, mpComm, exchange, update unit.Seconds
}

// megatronCost evaluates the MP-sharded transformer iteration. zero
// additionally shards gradient and optimizer state across the replicas
// (ZeRO-style), which divides the update work and always overlaps the
// exchange with backward.
func megatronCost(cfg model.TransformerConfig, p *profiler.Profile, cl hw.Cluster, mp, replicas int, phased, zero bool) hybridCost {
	fwd, bwd, updateFLOPs := p.Totals()
	c := hybridCost{
		fwd: fwd / unit.Seconds(float64(mp)),
		bwd: bwd / unit.Seconds(float64(mp)),
	}

	updWork := float64(updateFLOPs) / float64(mp)
	if zero {
		// Each replica updates only its optimizer-state partition.
		updWork /= float64(replicas)
	}
	c.update = unit.ComputeTime(unit.FLOPs(updWork), cl.Node.Device.SustainedFLOPS())

	gpus := mp * replicas
	backend := comm.Pick(gpus)
	if mp > 1 {
		// Partial-sum activations all-reduce inside the MP group, which
		// Megatron's placement packs onto consecutive devices.
		payload := unit.Bytes(int64(p.Opts.Batch)*int64(cfg.Seq)*int64(cfg.Hidden)) * p.Opts.DType.Size()
		perAR := comm.HierarchicalAllReduce(payload, cl, mp, backend)
		c.mpComm = unit.Seconds(float64(mpCollectivesPerLayer*cfg.Layers)) * perAR
	}

	// Data-parallel exchange of the shard's gradients across replicas on
	// a flat contended ring (one participant per node per collective).
	// ZeRO's reduce-scatter plus parameter all-gather moves the same ring
	// volume as the all-reduce.
	shardGrads := unit.Bytes(float64(p.TotalWeightBytes) / float64(mp))
	c.exchange = comm.RingAllReduce(shardGrads, replicas, shardRingBW(cl), backend)
	if phased || zero {
		// The per-block grouping overlaps the exchange with the backward
		// work still in flight; only the excess stalls the iteration.
		if c.exchange <= c.bwd {
			c.exchange = 0
		} else {
			c.exchange -= c.bwd
		}
	}
	return c
}

func (c hybridCost) iter() unit.Seconds {
	return c.fwd + c.bwd + c.mpComm + c.exchange + c.update
}

// megatronSetup validates the shared MP+DP argument set and profiles the
// configuration; a non-nil Result reports an infeasible configuration.
// With zero set, gradient and optimizer state additionally shard across
// the data-parallel replicas — ZeRO's defining memory property.
func megatronSetup(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int, zero bool) (*profiler.Profile, *Result, error) {
	if err := validateRun(cl, gpus, perReplicaBatch, samples); err != nil {
		return nil, nil, err
	}
	if mp <= 0 {
		return nil, nil, fmt.Errorf("dist: model-parallel factor must be positive, got %d", mp)
	}
	if err := validateTransformer(cfg); err != nil {
		return nil, nil, err
	}
	replicas := gpus / mp
	global := replicas * perReplicaBatch
	if gpus%mp != 0 || replicas < 1 {
		return nil, infeasible(gpus, global, "%d GPUs do not divide into MP groups of %d", gpus, mp), nil
	}
	if total := cl.TotalDevices(); gpus > total {
		return nil, infeasible(gpus, global, "cluster %s has %d devices, need %d", cl.Name, total, gpus), nil
	}
	p, err := profiler.New(model.Transformer(cfg), cl.Node, profiler.Options{Batch: perReplicaBatch})
	if err != nil {
		return nil, nil, err
	}
	// Each GPU holds a 1/mp shard of weights, gradients and activations;
	// under ZeRO the gradient+optimizer shard further divides across the
	// replicas and only 1/replicas of it stays resident per GPU.
	weights := float64(p.TotalWeightBytes)
	grads := weights
	if zero {
		grads /= float64(replicas)
	}
	perGPU := unit.Bytes((weights + grads + float64(p.TotalActBytes)) / float64(mp))
	if m := budget(cl); perGPU > m {
		return nil, infeasible(gpus, global,
			"MP=%d shard needs %v of %v device memory; increase the MP factor or go out-of-core", mp, perGPU, m), nil
	}
	return p, nil, nil
}

// MegatronHybrid evaluates the Megatron-LM model+data-parallel hybrid:
// the transformer shards mp ways (per-layer tensor parallelism paying
// mpCollectivesPerLayer activation all-reduces per layer), and gpus/mp
// replicas of the shard group train data-parallel. When phased is true
// the gradient exchange uses the optimized per-block grouping that
// overlaps the backward pass (§III-G); otherwise it runs as one bulk
// collective after backward completes — the configuration of Fig. 8's
// "MP+DP" versus "MP+DP opt-ex" curves.
func MegatronHybrid(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int, phased bool) (*Result, error) {
	p, bad, err := megatronSetup(cfg, cl, mp, gpus, perReplicaBatch, samples, false)
	if err != nil || bad != nil {
		return bad, err
	}
	replicas := gpus / mp
	c := megatronCost(cfg, p, cl, mp, replicas, phased, false)
	return finalize(c.iter(), gpus, replicas*perReplicaBatch, samples), nil
}

// ZeRO evaluates the sharded hybrid Turing-NLG shipped with: Megatron
// tensor parallelism of degree mp combined with ZeRO-style partitioning
// of gradients and optimizer state across the gpus/mp data-parallel
// replicas. The exchange becomes a reduce-scatter plus parameter
// all-gather overlapped with backward, and each replica updates only its
// optimizer partition — the "ZeRO" reference curve of Fig. 8's right
// panel.
func ZeRO(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int) (*Result, error) {
	p, bad, err := megatronSetup(cfg, cl, mp, gpus, perReplicaBatch, samples, true)
	if err != nil || bad != nil {
		return bad, err
	}
	replicas := gpus / mp
	c := megatronCost(cfg, p, cl, mp, replicas, true, true)
	return finalize(c.iter(), gpus, replicas*perReplicaBatch, samples), nil
}
