package dist

import (
	"fmt"
	"math"

	"karma/internal/comm"
	"karma/internal/graph"
	"karma/internal/hw"
	"karma/internal/karma"
	"karma/internal/model"
	"karma/internal/profiler"
	"karma/internal/tensor"
	"karma/internal/topo"
	"karma/internal/unit"
)

// HybridOptions selects variants of the in-core MP hybrid baselines.
type HybridOptions struct {
	// Phased uses the per-block grouped gradient exchange overlapped with
	// the backward pass (§III-G, "MP+DP opt-ex" in Fig. 8); false runs one
	// bulk collective after backward completes. ZeRO ignores it: its
	// reduce-scatter/all-gather exchange is phased by construction.
	Phased bool
	// Checkpoint enables activation checkpointing in the shard
	// (karma.Checkpoint): boundary activations stay resident and the rest
	// recompute during backward, trading redundant forward work for the
	// larger capacity batches real Megatron-LM and ZeRO deployments train
	// at.
	Checkpoint bool
	// Precision selects the training regime (fp32 default, or mixed
	// fp16-with-fp32-master). Under mixed precision the shard's weights,
	// gradients and activations are fp16 — halving the MP collectives,
	// the data-parallel exchange and the activation footprint that bounds
	// the capacity batch — while the optimizer holds an fp32 master copy
	// on the device: resident per GPU in the plain hybrid, partitioned
	// across the replicas under ZeRO (the sharded state that gave the
	// real Turing-NLG run its batch headroom). Compute rates are held
	// constant across regimes (see tensor.Precision).
	Precision tensor.Precision
}

// validateTransformer rejects degenerate configurations before the model
// builder (which panics on structural errors) runs.
func validateTransformer(cfg model.TransformerConfig) error {
	if cfg.Hidden <= 0 || cfg.Heads <= 0 || cfg.Layers <= 0 || cfg.Seq <= 0 || cfg.Vocab <= 0 {
		return fmt.Errorf("dist: degenerate transformer config %+v", cfg)
	}
	return nil
}

// shardEngine is the routing engine for the hybrids' data-parallel
// exchange: each shard's replicas sit on distinct nodes, so every node
// injects into Devices concurrent shard collectives that contend for the
// node's egress. The per-collective share derives from the topology's
// NIC tier — aggregate rail bandwidth divided among the concurrent
// collectives (on the flat model this is exactly the seed's
// NetBW/Devices split; on ABCI's 2-NIC nodes each collective gets twice
// that) — not from dividing cl.NetBW by Node.Devices unconditionally.
func shardEngine(cl hw.Cluster) topo.Engine {
	return topo.Engine{T: cl.Topo(), Concurrent: cl.Node.Devices}
}

// nodeShareBW is the per-collective bottleneck bandwidth of the shard
// exchange route (pinned by a flat-topology regression test).
func nodeShareBW(cl hw.Cluster) unit.BytesPerSec {
	return shardEngine(cl).InterRoute().Bottleneck()
}

// hybridSetup validates the shared MP+DP argument set, profiles the
// 1/mp shard (model.TransformerShard), and builds the shard's in-core
// schedule — all-resident, or checkpointed under o.Checkpoint. Both
// evaluator backends go through it — so feasibility verdicts agree by
// construction — and both draw the shard build, profile and schedule
// from the process-wide memo caches (memo.go): grid points sharing
// (model, mp, batch, precision) profile and partition the shard exactly
// once, concurrent sweep workers included. A non-nil Result reports an
// infeasible configuration. With zero set, gradient and optimizer state
// additionally shard across the data-parallel replicas — ZeRO's
// defining memory property.
func hybridSetup(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int, zero bool, o HybridOptions) (*model.Shard, *profiler.Profile, *karma.Schedule, *Result, error) {
	if err := validateRun(cl, gpus, perReplicaBatch, samples); err != nil {
		return nil, nil, nil, nil, err
	}
	if mp <= 0 {
		return nil, nil, nil, nil, fmt.Errorf("dist: model-parallel factor must be positive, got %d", mp)
	}
	if err := validateTransformer(cfg); err != nil {
		return nil, nil, nil, nil, err
	}
	replicas := gpus / mp
	global := replicas * perReplicaBatch
	// Infeasible verdicts still record the checkpointing regime they were
	// computed under (the tables' ckpt column reads it).
	bad := func(format string, args ...any) *Result {
		r := infeasible(gpus, global, format, args...)
		r.Ckpt = o.Checkpoint
		return r
	}
	if gpus%mp != 0 || replicas < 1 {
		return nil, nil, nil, bad("%d GPUs do not divide into MP groups of %d", gpus, mp), nil
	}
	if total := cl.TotalDevices(); gpus > total {
		return nil, nil, nil, bad("cluster %s has %d devices, need %d", cl.Name, total, gpus), nil
	}
	shard := cachedShard(cfg, mp)
	pk := shardProfileKey{
		mk:    modelKey{cfg: cfg, mp: mp},
		node:  cl.Node,
		batch: perReplicaBatch,
		dt:    o.Precision.DType(),
	}
	p, err := cachedProfile(pk)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	// Each GPU keeps its shard's weights and gradients resident (fp16
	// under mixed precision), plus the optimizer's fp32 master copy;
	// under ZeRO the gradient+optimizer shard further divides across the
	// replicas and only 1/replicas of it stays resident per GPU.
	weights := p.TotalWeightBytes
	grads := weights
	master := o.Precision.MasterBytes(weights)
	if zero {
		grads = unit.Bytes(math.Ceil(float64(weights) / float64(replicas)))
		master = unit.Bytes(math.Ceil(float64(master) / float64(replicas)))
	}
	m := budget(cl)
	actBudget := m - weights - grads - master
	// The schedule construction IS the capacity verdict (one scan, shared
	// by both backends and memoized per (profile, budget, regime)); its
	// failure is re-rendered below as the stable memory Reason carrying
	// the minimal activation footprint the regime could have reached.
	var s *karma.Schedule
	if actBudget > 0 {
		s = cachedSchedule(shardSchedKey{pk: pk, budget: actBudget, ckpt: o.Checkpoint}, p)
	}
	if s == nil {
		actNeed := p.TotalActBytes
		if o.Checkpoint {
			actNeed = cachedFootprint(pk, p)
		}
		return nil, nil, nil, bad(
			"MP=%d shard needs %v of %v device memory; increase the MP factor or go out-of-core",
			mp, weights+grads+master+actNeed, m), nil
	}
	return shard, p, s, nil, nil
}

// arCounts maps the shard's marked collectives onto the profile's
// blocks: fwdAR[i] counts the partial-sum all-reduces block i's forward
// pass ends with (row-parallel projections, plus the vocab-parallel
// embedding gather), bwdAR[i] the matching input-gradient all-reduces of
// its backward pass (the embedding has none — token ids carry no
// gradient).
func arCounts(shard *model.Shard, p *profiler.Profile) (fwdAR, bwdAR []int) {
	blockOf := map[graph.NodeID]int{}
	for i, b := range p.Blocks {
		for _, id := range b.Seg.Nodes {
			blockOf[id] = i
		}
	}
	fwdAR = make([]int, len(p.Blocks))
	bwdAR = make([]int, len(p.Blocks))
	for _, id := range shard.AllReduce {
		if i, ok := blockOf[id]; ok {
			fwdAR[i]++
			bwdAR[i]++
		}
	}
	if shard.EmbedAllReduce >= 0 {
		if i, ok := blockOf[shard.EmbedAllReduce]; ok {
			fwdAR[i]++
		}
	}
	return fwdAR, bwdAR
}

// mpARPayload is the boundary activation each MP collective reduces: the
// full {batch, seq, hidden} tensor of partial sums.
func mpARPayload(cfg model.TransformerConfig, p *profiler.Profile) unit.Bytes {
	return unit.Bytes(int64(p.Opts.Batch) * int64(cfg.Seq) * int64(cfg.Hidden) * int64(p.Opts.DType.Size()))
}

// hybridCost is the analytic phase decomposition of one MP+DP iteration:
// a forward phase (compute serialized with the blocking forward
// collectives, the ZeRO parameter gather overlapped), a backward phase
// (backward compute, recompute replays and the blocking gradient
// collectives, with the data-parallel exchange overlapped on the same
// network), and the optimizer update.
type hybridCost struct {
	fwdPhase, bwdPhase, update unit.Seconds
	// bd attributes the same algebra phase by phase; its components sum
	// to iter() by construction.
	bd Breakdown
}

func (c hybridCost) iter() unit.Seconds { return c.fwdPhase + c.bwdPhase + c.update }

// breakdown returns the attribution for attachment to a Result.
func (c hybridCost) breakdown() *Breakdown {
	b := c.bd
	return b.withOccupancy(c.iter())
}

// megatronCost evaluates the MP-sharded transformer iteration from the
// shard profile and its in-core schedule — the closed form mirroring the
// per-layer simulated plan of the planned backend (dense sweeps use
// this; property tests bound the divergence). zero additionally shards
// gradient and optimizer state across the replicas (ZeRO-style), which
// divides the update work, splits the exchange into a backward
// reduce-scatter and a forward-overlapped parameter all-gather, and is
// always phased.
func megatronCost(cfg model.TransformerConfig, shard *model.Shard, p *profiler.Profile, s *karma.Schedule, cl hw.Cluster, mp, replicas int, zero bool, o HybridOptions) hybridCost {
	fwd, bwd, updateFLOPs := p.Totals()
	rec := s.RecomputedTime()
	gpus := mp * replicas
	backend := comm.Pick(gpus)

	// Blocking MP collectives: every marked boundary all-reduces in
	// forward and backward, and the interior boundaries of multi-block
	// checkpoint runs reduce again during their replay.
	perAR := comm.HierarchicalAllReduce(mpARPayload(cfg, p), cl, mp, backend)
	fwdAR, bwdAR := arCounts(shard, p)
	var fwdART, bwdART, replayART unit.Seconds
	for i := range p.Blocks {
		fwdART += unit.Seconds(float64(fwdAR[i]) * float64(perAR))
		bwdART += unit.Seconds(float64(bwdAR[i]) * float64(perAR))
		if s.Blocks[i].Policy == karma.Recompute && s.RunContinues(i) {
			replayART += unit.Seconds(float64(fwdAR[i]) * float64(perAR))
		}
	}

	// Data-parallel exchange of the shard's gradients across replicas,
	// routed over the topology's contended node egress (one participant
	// per node per collective, Devices collectives per node).
	exT := comm.RingAllReduceOver(shardEngine(cl), p.TotalWeightBytes, replicas, backend)

	updWork := float64(updateFLOPs)
	if zero {
		// Each replica updates only its optimizer-state partition.
		updWork /= float64(replicas)
	}
	c := hybridCost{update: unit.ComputeTime(unit.FLOPs(updWork), cl.Node.Device.SustainedFLOPS())}
	c.bd.Update = c.update
	// Informational per-stream busy: device math on the compute stream,
	// the MP collectives on NVLink when the group fits inside a node
	// (matching injectMPCollectives' kind choice), and the replica
	// exchange on the inter-node network.
	c.bd.Busy.Compute = fwd + bwd + rec + c.update
	if mpT := fwdART + bwdART + replayART; mp <= cl.Node.Devices {
		c.bd.Busy.NVLink = mpT
	} else {
		c.bd.Busy.Network = mpT
	}
	c.bd.Busy.Network += exT

	// The backward critical chain: each input-gradient collective
	// launches after its block's dgrad half and overlaps the wgrad half
	// (Megatron-LM's standard overlap), while interior checkpoint-run
	// replays re-reduce their boundaries serially.
	bwdChain := bwd/2 + max(bwd/2, bwdART) + rec + replayART
	// Collective exposure inside the chain: the part of the dgrad-side
	// all-reduces the wgrad half could not hide.
	chainColl := max(bwd/2, bwdART) - bwd/2
	// attrBwd attributes a backward phase of max(bwdChain, alt) where
	// alt = bwdART + replayART + exW is the exchange-side chain and exW
	// its serialized exchange span.
	attrBwd := func(alt, exW unit.Seconds) {
		c.bd.Compute += bwd
		c.bd.Recompute += rec
		c.bd.Collective += replayART
		if bwdChain >= alt {
			c.bd.Collective += chainColl
			return
		}
		// Comm-bound: the span beyond compute and replay splits between
		// the MP collectives and the exchange in proportion to their
		// serialized extents, the exchange share taking the exact
		// remainder so the components still sum to the phase.
		residual := alt - bwd - rec - replayART
		var collPart unit.Seconds
		if w := bwdART + exW; w > 0 {
			collPart = unit.Seconds(float64(residual) * float64(bwdART) / float64(w))
		}
		c.bd.Collective += collPart
		c.bd.ExchangeStall += residual - collPart
	}
	switch {
	case zero:
		// Reduce-scatter overlaps backward; the parameter all-gather of
		// the next iteration's weights overlaps forward (steady state).
		half := exT / 2
		c.fwdPhase = fwdART + max(fwd, half)
		c.bwdPhase = max(bwdChain, bwdART+replayART+half)
		c.bd.Collective += fwdART
		c.bd.Compute += fwd
		if half > fwd {
			c.bd.ExchangeStall += half - fwd
		}
		attrBwd(bwdART+replayART+half, half)
	case o.Phased:
		// Per-block grouping drains the exchange behind the backward
		// collectives on the same network; only the excess stalls.
		c.fwdPhase = fwd + fwdART
		c.bwdPhase = max(bwdChain, bwdART+replayART+exT)
		c.bd.Compute += fwd
		c.bd.Collective += fwdART
		attrBwd(bwdART+replayART+exT, exT)
	default:
		// One bulk collective after backward completes.
		c.fwdPhase = fwd + fwdART
		c.bwdPhase = bwdChain + exT
		c.bd.Compute += fwd
		c.bd.Collective += fwdART
		attrBwd(0, 0) // chain-bound by construction
		c.bd.ExchangeStall += exT
	}
	return c
}

// MegatronHybrid evaluates the Megatron-LM model+data-parallel hybrid:
// the transformer shards mp ways per layer (tensor parallelism paying
// two blocking activation all-reduces per transformer layer in each
// direction), and gpus/mp replicas of the shard group train
// data-parallel. HybridOptions selects the phased vs bulk gradient
// exchange — the configuration of Fig. 8's "MP+DP" versus "MP+DP
// opt-ex" curves — and activation checkpointing in the shard.
func MegatronHybrid(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int, o HybridOptions) (*Result, error) {
	shard, p, s, bad, err := hybridSetup(cfg, cl, mp, gpus, perReplicaBatch, samples, false, o)
	if err != nil || bad != nil {
		return bad, err
	}
	replicas := gpus / mp
	c := megatronCost(cfg, shard, p, s, cl, mp, replicas, false, o)
	r := finalize(c.iter(), gpus, replicas*perReplicaBatch, samples)
	r.Ckpt = o.Checkpoint
	r.Breakdown = c.breakdown()
	return r, nil
}

// ZeRO evaluates the sharded hybrid Turing-NLG shipped with: Megatron
// tensor parallelism of degree mp combined with ZeRO-style partitioning
// of gradients and optimizer state across the gpus/mp data-parallel
// replicas. The exchange becomes a backward reduce-scatter plus a
// forward-overlapped parameter all-gather, and each replica updates only
// its optimizer partition — the "ZeRO" reference curve of Fig. 8's right
// panel. o.Phased is ignored (the exchange is phased by construction);
// o.Checkpoint enables the activation checkpointing real ZeRO
// deployments run with.
func ZeRO(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus, perReplicaBatch, samples int, o HybridOptions) (*Result, error) {
	shard, p, s, bad, err := hybridSetup(cfg, cl, mp, gpus, perReplicaBatch, samples, true, o)
	if err != nil || bad != nil {
		return bad, err
	}
	replicas := gpus / mp
	c := megatronCost(cfg, shard, p, s, cl, mp, replicas, true, o)
	r := finalize(c.iter(), gpus, replicas*perReplicaBatch, samples)
	r.Ckpt = o.Checkpoint
	r.Breakdown = c.breakdown()
	return r, nil
}
