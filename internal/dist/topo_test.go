package dist

import (
	"testing"

	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/tensor"
	"karma/internal/topo"
	"karma/internal/unit"
)

// ---------------------------------------------------------------------------
// Topology threading: the five families take their exchange and
// collective times from the internal/topo engine.
// ---------------------------------------------------------------------------

// TestNodeShareBWFlatRegression pins the per-collective exchange share.
// On the flat (default) topology it must equal the seed model's
// NetBW/Devices split exactly — the regression guard for the nodeShareBW
// fix — while the ABCI preset derives it from the NIC tier instead: two
// EDR rails shared by four concurrent shard collectives.
func TestNodeShareBWFlatRegression(t *testing.T) {
	cl := hw.ABCI()
	if got, want := nodeShareBW(cl), cl.NetBW/unit.BytesPerSec(float64(cl.Node.Devices)); got != want {
		t.Fatalf("flat share = %v, want the seed's NetBW/Devices = %v", got, want)
	}
	abci := cl.WithTopology(topo.ABCI())
	if got, want := nodeShareBW(abci), 6.25*unit.GBps; got != want {
		t.Fatalf("abci share = %v, want 2x12.5/4 = %v", got, want)
	}
	over := cl.WithTopology(topo.FatTree(4))
	if got, want := nodeShareBW(over), 6.25*unit.GBps/4; got != want {
		t.Fatalf("fattree:4 share = %v, want %v", got, want)
	}
}

// evalAll runs every family of one backend at a fixed shape and returns
// the feasible iteration times keyed by family.
func evalAll(t *testing.T, ev Evaluator, cl hw.Cluster) map[string]unit.Seconds {
	t.Helper()
	cfg := smallLM()
	g := model.Transformer(cfg)
	o := HybridOptions{Phased: true, Checkpoint: true}
	out := map[string]unit.Seconds{}
	add := func(name string, r *Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.Feasible {
			t.Fatalf("%s infeasible: %s", name, r.Reason)
		}
		out[name] = r.IterTime
	}
	r, err := ev.MegatronHybrid(cfg, cl, 4, 64, 4, samples, o)
	add("hybrid", r, err)
	r, err = ev.ZeRO(cfg, cl, 4, 64, 4, samples, o)
	add("zero", r, err)
	r, err = ev.KARMADataParallel(g, cl, 64, 4, samples, KARMAOptions{})
	add("karma", r, err)
	r, err = ev.DataParallel(g, cl, 64, 2, samples)
	add("dp", r, err)
	r, err = ev.Pipeline(cfg, cl, 8, 64, 8, 4, samples, o)
	add("pipeline", r, err)
	return out
}

// TestABCITopologyNeverSlower: under both backends, every family's
// iteration is at least as fast on ABCI's 2-NIC fat tree as on the flat
// single-ring model (more egress, same everything else), and the
// network-bound families are strictly faster.
func TestABCITopologyNeverSlower(t *testing.T) {
	for _, ev := range []Evaluator{Analytic{}, NewPlanned()} {
		cl := hw.ABCI()
		flat := evalAll(t, ev, cl)
		abci := evalAll(t, ev, cl.WithTopology(topo.ABCI()))
		for fam, ft := range flat {
			if abci[fam] > ft {
				t.Errorf("%s %s: ABCI iter %v slower than flat %v", ev.Name(), fam, abci[fam], ft)
			}
		}
		for _, fam := range []string{"hybrid", "zero"} {
			if abci[fam] >= flat[fam] {
				t.Errorf("%s %s: exchange-bound family should strictly gain from the second rail (flat %v, abci %v)",
					ev.Name(), fam, flat[fam], abci[fam])
			}
		}
	}
}

// TestOversubscriptionMonotoneAcrossFamilies: iteration time never
// improves as the fabric oversubscribes (fattree:1 -> 2 -> 4).
func TestOversubscriptionMonotoneAcrossFamilies(t *testing.T) {
	ev := Analytic{}
	cl := hw.ABCI()
	prev := evalAll(t, ev, cl.WithTopology(topo.FatTree(1)))
	for _, ratio := range []float64{2, 4} {
		cur := evalAll(t, ev, cl.WithTopology(topo.FatTree(ratio)))
		for fam, ct := range cur {
			if ct < prev[fam] {
				t.Errorf("%s: fattree:%g iter %v faster than less oversubscribed %v", fam, ratio, ct, prev[fam])
			}
		}
		prev = cur
	}
}

// ---------------------------------------------------------------------------
// Tensor-core satellite: the per-precision Efficiency override drops
// fp16 iteration time when enabled and leaves fp32 untouched.
// ---------------------------------------------------------------------------

func TestTensorCoreBoostDropsFP16IterTime(t *testing.T) {
	cfg := smallLM()
	cl := hw.ABCI()
	boosted := cl
	boosted.Node.Device = boosted.Node.Device.WithTensorCores(4)
	o := HybridOptions{Phased: true, Checkpoint: true, Precision: tensor.MixedFP16}

	for _, ev := range []Evaluator{Analytic{}, NewPlanned()} {
		base, err := ev.MegatronHybrid(cfg, cl, 4, 64, 4, samples, o)
		if err != nil || !base.Feasible {
			t.Fatalf("%s base: %v %+v", ev.Name(), err, base)
		}
		fast, err := ev.MegatronHybrid(cfg, boosted, 4, 64, 4, samples, o)
		if err != nil || !fast.Feasible {
			t.Fatalf("%s boosted: %v %+v", ev.Name(), err, fast)
		}
		if fast.IterTime >= base.IterTime {
			t.Errorf("%s: fp16 iteration did not drop under tensor cores (%v -> %v)",
				ev.Name(), base.IterTime, fast.IterTime)
		}

		// fp32 is unaffected: the boost only applies to fp16 math.
		o32 := o
		o32.Precision = tensor.FP32Training
		b32, err := ev.MegatronHybrid(cfg, cl, 4, 64, 4, samples, o32)
		if err != nil {
			t.Fatal(err)
		}
		f32, err := ev.MegatronHybrid(cfg, boosted, 4, 64, 4, samples, o32)
		if err != nil {
			t.Fatal(err)
		}
		if b32.IterTime != f32.IterTime {
			t.Errorf("%s: tensor cores changed the fp32 iteration (%v -> %v)", ev.Name(), b32.IterTime, f32.IterTime)
		}
	}
}
