package dist

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/unit"
)

const samples = 1_000_000

// smallLM is a transformer small enough to profile in microseconds but
// large enough (≈40M parameters) to exercise the sharding paths.
func smallLM() model.TransformerConfig {
	return model.TransformerConfig{
		Name: "test-lm", Hidden: 512, Heads: 8, Layers: 12, Seq: 128, Vocab: 8192,
	}
}

// slowLinkCluster returns an ABCI-like cluster whose host link is slow
// enough that out-of-core streaming stalls the pipeline, making the
// KARMAOptions traffic differences observable in IterTime.
func slowLinkCluster() hw.Cluster {
	cl := hw.ABCI()
	cl.Node.Link.BWPerDirection = 2 * unit.GBps
	return cl
}

func TestKARMAUndersizedCluster(t *testing.T) {
	cl := hw.ABCI()
	g := model.SmallCNN()
	r, err := KARMADataParallel(g, cl, cl.TotalDevices()+1, 32, samples, KARMAOptions{})
	if err != nil {
		t.Fatalf("KARMADataParallel: %v", err)
	}
	if r.Feasible {
		t.Fatal("requesting more GPUs than the cluster has must be infeasible")
	}
	if !strings.Contains(r.Reason, "devices") {
		t.Errorf("Reason %q should name the device shortfall", r.Reason)
	}
	if r.GPUs != cl.TotalDevices()+1 {
		t.Errorf("infeasible result should keep GPUs = %d, got %d", cl.TotalDevices()+1, r.GPUs)
	}
}

func TestKARMABlockTooLarge(t *testing.T) {
	cl := hw.ABCI()
	cl.Node.Device.MemCapacity = 2 * unit.GiB
	cl.Node.Device.Reserved = unit.GiB
	g := model.Transformer(smallLM())
	// At a huge batch a single transformer layer's working set exceeds
	// the 1 GiB budget; no amount of streaming can run it.
	r, err := KARMADataParallel(g, cl, 4, 4096, samples, KARMAOptions{})
	if err != nil {
		t.Fatalf("KARMADataParallel: %v", err)
	}
	if r.Feasible {
		t.Fatal("a block larger than device memory must be infeasible")
	}
	if !strings.Contains(r.Reason, "block") {
		t.Errorf("Reason %q should name the oversized block", r.Reason)
	}
}

func TestKARMAArgumentErrors(t *testing.T) {
	cl := hw.ABCI()
	g := model.SmallCNN()
	if _, err := KARMADataParallel(nil, cl, 4, 32, samples, KARMAOptions{}); err == nil {
		t.Error("nil graph should error")
	}
	if _, err := KARMADataParallel(g, cl, 0, 32, samples, KARMAOptions{}); err == nil {
		t.Error("zero GPUs should error")
	}
	if _, err := KARMADataParallel(g, cl, 4, 0, samples, KARMAOptions{}); err == nil {
		t.Error("zero batch should error")
	}
	if _, err := KARMADataParallel(g, cl, 4, 32, 0, KARMAOptions{}); err == nil {
		t.Error("zero samples should error")
	}
	if _, err := MegatronHybrid(smallLM(), cl, 0, 16, 4, samples, HybridOptions{}); err == nil {
		t.Error("non-positive MP factor should error")
	}
	if _, err := ZeRO(model.TransformerConfig{}, cl, 1, 16, 4, samples, HybridOptions{}); err == nil {
		t.Error("degenerate transformer config should error")
	}
}

func TestKARMAOptionUpdateOnDevice(t *testing.T) {
	cl := slowLinkCluster()
	g := model.Transformer(model.MegatronConfigs()[2]) // 2.5B: heavily out-of-core
	host, err := KARMADataParallel(g, cl, 16, 4, samples, KARMAOptions{})
	if err != nil {
		t.Fatalf("host update: %v", err)
	}
	dev, err := KARMADataParallel(g, cl, 16, 4, samples, KARMAOptions{UpdateOnDevice: true})
	if err != nil {
		t.Fatalf("device update: %v", err)
	}
	if !host.Feasible || !dev.Feasible {
		t.Fatalf("both variants must be feasible: host=%v dev=%v", host, dev)
	}
	// Moving the update back to the GPU round-trips momentum over the
	// (slow) link, which must cost strictly more than the host-side
	// update here and can never beat it anywhere (ablation A4).
	if dev.IterTime <= host.IterTime {
		t.Errorf("device update (%v) should stall beyond host update (%v)", dev.IterTime, host.IterTime)
	}
}

func TestKARMAOptionZeROShard(t *testing.T) {
	cl := slowLinkCluster()
	g := model.Transformer(model.MegatronConfigs()[2])
	plain, err := KARMADataParallel(g, cl, 16, 4, samples, KARMAOptions{})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	combo, err := KARMADataParallel(g, cl, 16, 4, samples, KARMAOptions{ZeROShard: true})
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	if !plain.Feasible || !combo.Feasible {
		t.Fatalf("both variants must be feasible: plain=%v combo=%v", plain, combo)
	}
	// Sharding gradient and optimizer state shrinks the streamed
	// footprint; with the link saturated the reduction must show up as a
	// strictly faster iteration (Fig. 8's ZeRO+KARMA composition).
	if combo.IterTime >= plain.IterTime {
		t.Errorf("ZeRO+KARMA (%v) should beat plain KARMA (%v) on a saturated link", combo.IterTime, plain.IterTime)
	}
}

func TestKARMAEpochTimeMonotonicInGPUs(t *testing.T) {
	cl := hw.ABCI()
	g := model.ResNet50()
	prev := unit.Seconds(math.Inf(1))
	for _, gpus := range []int{32, 64, 128, 256} {
		r, err := KARMADataParallel(g, cl, gpus, 64, samples, KARMAOptions{})
		if err != nil {
			t.Fatalf("%d GPUs: %v", gpus, err)
		}
		if !r.Feasible {
			t.Fatalf("%d GPUs infeasible: %s", gpus, r.Reason)
		}
		if r.EpochTime >= prev {
			t.Errorf("%d GPUs: epoch %v did not improve on %v", gpus, r.EpochTime, prev)
		}
		prev = r.EpochTime
	}
}

func TestResultDerivedFields(t *testing.T) {
	cl := hw.ABCI()
	g := model.SmallCNN()
	const gpus, batch = 16, 32
	r, err := KARMADataParallel(g, cl, gpus, batch, samples, KARMAOptions{})
	if err != nil {
		t.Fatalf("KARMADataParallel: %v", err)
	}
	if !r.Feasible {
		t.Fatalf("infeasible: %s", r.Reason)
	}
	if r.GlobalBatch != gpus*batch {
		t.Errorf("GlobalBatch = %d, want %d", r.GlobalBatch, gpus*batch)
	}
	if got, want := r.IterPerSec, 1/float64(r.IterTime); math.Abs(got-want) > 1e-9*want {
		t.Errorf("IterPerSec = %v, want %v", got, want)
	}
	iters := (samples + r.GlobalBatch - 1) / r.GlobalBatch
	if got, want := float64(r.EpochTime), float64(iters)*float64(r.IterTime); math.Abs(got-want) > 1e-6*want {
		t.Errorf("EpochTime = %v, want %v", got, want)
	}
	if got, want := r.CostPerf, float64(gpus)*float64(r.IterTime)/float64(r.GlobalBatch); math.Abs(got-want) > 1e-9*want {
		t.Errorf("CostPerf = %v, want %v", got, want)
	}
}

func TestDataParallelRequiresInCore(t *testing.T) {
	cl := hw.ABCI()
	g := model.ResNet50()
	// Batch 512 is far beyond the V100's capacity (Fig. 5 grid).
	dp, err := DataParallel(g, cl, 16, 512, samples)
	if err != nil {
		t.Fatalf("DataParallel: %v", err)
	}
	if dp.Feasible {
		t.Fatal("conventional DP must be infeasible beyond device memory")
	}
	if !strings.Contains(dp.Reason, "KARMADataParallel") {
		t.Errorf("Reason %q should point at the out-of-core path", dp.Reason)
	}
	karma, err := KARMADataParallel(g, cl, 16, 512, samples, KARMAOptions{})
	if err != nil {
		t.Fatalf("KARMADataParallel: %v", err)
	}
	if !karma.Feasible {
		t.Fatalf("KARMA should train the same batch out-of-core: %s", karma.Reason)
	}
	// Where both run, they agree: at an in-core batch KARMA degenerates
	// to conventional data parallelism.
	small, err := DataParallel(g, cl, 16, 64, samples)
	if err != nil {
		t.Fatal(err)
	}
	kSmall, err := KARMADataParallel(g, cl, 16, 64, samples, KARMAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !small.Feasible || !kSmall.Feasible {
		t.Fatal("in-core configs must be feasible")
	}
	if math.Abs(float64(small.IterTime-kSmall.IterTime)) > 1e-9 {
		t.Errorf("in-core KARMA (%v) should match DP (%v)", kSmall.IterTime, small.IterTime)
	}
}

func TestMegatronHybridValidation(t *testing.T) {
	cl := hw.ABCI()
	cfg := smallLM()
	r, err := MegatronHybrid(cfg, cl, 3, 16, 4, samples, HybridOptions{})
	if err != nil {
		t.Fatalf("MegatronHybrid: %v", err)
	}
	if r.Feasible {
		t.Error("16 GPUs cannot divide into MP groups of 3")
	}
	// The 2.5B model cannot fit a single V100 unsharded (the paper's
	// premise): MP=1 must be infeasible with a memory reason.
	big := model.MegatronConfigs()[2]
	r, err = MegatronHybrid(big, cl, 1, 64, 4, samples, HybridOptions{})
	if err != nil {
		t.Fatalf("MegatronHybrid: %v", err)
	}
	if r.Feasible {
		t.Error("2.5B at MP=1 should exceed device memory")
	}
	if !strings.Contains(r.Reason, "memory") {
		t.Errorf("Reason %q should name the memory shortfall", r.Reason)
	}
}

func TestPhasedExchangeNeverLoses(t *testing.T) {
	cl := hw.ABCI()
	cfg := smallLM()
	for _, gpus := range []int{16, 64, 256} {
		plain, err := MegatronHybrid(cfg, cl, 4, gpus, 4, samples, HybridOptions{})
		if err != nil {
			t.Fatalf("%d GPUs plain: %v", gpus, err)
		}
		opt, err := MegatronHybrid(cfg, cl, 4, gpus, 4, samples, HybridOptions{Phased: true})
		if err != nil {
			t.Fatalf("%d GPUs phased: %v", gpus, err)
		}
		if !plain.Feasible || !opt.Feasible {
			t.Fatalf("%d GPUs: infeasible hybrid", gpus)
		}
		if opt.IterTime > plain.IterTime {
			t.Errorf("%d GPUs: phased exchange (%v) slower than bulk (%v)", gpus, opt.IterTime, plain.IterTime)
		}
	}
}

func TestZeROFitsWhereHybridFits(t *testing.T) {
	cl := hw.ABCI()
	cfg := model.TuringNLG()
	// Turing-NLG's shipped configuration trained with activation
	// checkpointing; without it even the MP=16 shard's per-layer
	// activations exceed a V100 at batch 2.
	ckpt := HybridOptions{Phased: true, Checkpoint: true}
	z, err := ZeRO(cfg, cl, 16, 512, 2, samples, ckpt)
	if err != nil {
		t.Fatalf("ZeRO: %v", err)
	}
	if !z.Feasible {
		t.Fatalf("Turing-NLG at MP=16 should fit with ZeRO sharding and checkpointing: %s", z.Reason)
	}
	h, err := MegatronHybrid(cfg, cl, 16, 512, 2, samples, ckpt)
	if err != nil {
		t.Fatalf("MegatronHybrid: %v", err)
	}
	if !h.Feasible {
		t.Fatalf("hybrid baseline infeasible: %s", h.Reason)
	}
	// Sharding the optimizer work can only help the iteration.
	if z.IterTime > h.IterTime {
		t.Errorf("ZeRO (%v) slower than the plain phased hybrid (%v)", z.IterTime, h.IterTime)
	}
	// ZeRO's defining property: at MP=8 the unsharded hybrid no longer
	// fits a V100 even checkpointed (two full weight copies), but
	// partitioning gradient+optimizer state across the 64 replicas does.
	h8, err := MegatronHybrid(cfg, cl, 8, 512, 2, samples, ckpt)
	if err != nil {
		t.Fatalf("MegatronHybrid mp=8: %v", err)
	}
	if h8.Feasible {
		t.Error("Turing-NLG at MP=8 should exceed device memory without sharding")
	}
	z8, err := ZeRO(cfg, cl, 8, 512, 2, samples, ckpt)
	if err != nil {
		t.Fatalf("ZeRO mp=8: %v", err)
	}
	if !z8.Feasible {
		t.Errorf("ZeRO should fit Turing-NLG at MP=8 by sharding the optimizer state: %s", z8.Reason)
	}
}

// ---------------------------------------------------------------------------
// Evaluator backends (Analytic vs Planned)
// ---------------------------------------------------------------------------

func TestByName(t *testing.T) {
	for _, name := range BackendNames() {
		ev, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if ev.Name() != name {
			t.Errorf("ByName(%s).Name() = %s", name, ev.Name())
		}
	}
	if _, err := ByName("quantum"); err == nil {
		t.Error("unknown backend should error")
	}
}

// The hand-picked KARMA backend feasibility-agreement grid that used to
// live here is subsumed by the randomized harness in property_test.go
// (TestBackendProperties). The exact in-core coincidence below is a
// stronger statement than agreement and stays pinned by hand.

// TestBackendsAgreeInCore: where the replica runs fully in-core, the
// planner degenerates to conventional data parallelism and the two
// backends must coincide exactly.
func TestBackendsAgreeInCore(t *testing.T) {
	cl := hw.ABCI()
	g := model.ResNet50()
	an := Analytic{}
	pe := NewPlanned()
	ra, err := an.KARMADataParallel(g, cl, 16, 64, samples, KARMAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := pe.KARMADataParallel(g, cl, 16, 64, samples, KARMAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ra.Feasible || !rp.Feasible {
		t.Fatalf("in-core config must be feasible: %v %v", ra, rp)
	}
	if ra.IterTime != rp.IterTime {
		t.Errorf("in-core iteration differs: analytic %v, planned %v", ra.IterTime, rp.IterTime)
	}
	if ra.Backend != "analytic" || rp.Backend != "planned" {
		t.Errorf("backend tags: %q, %q", ra.Backend, rp.Backend)
	}
}

// TestIterMonotoneInDeviceMemory: more device memory never slows the
// iteration, under either backend.
func TestIterMonotoneInDeviceMemory(t *testing.T) {
	g := model.ResNet50()
	pe := NewPlanned()
	for _, ev := range []Evaluator{Analytic{}, pe} {
		prev := unit.Seconds(math.Inf(1))
		for _, gib := range []float64{12, 16, 24, 32, 48} {
			cl := hw.ABCI()
			cl.Node.Device.MemCapacity = unit.Bytes(gib * float64(unit.GiB))
			r, err := ev.KARMADataParallel(g, cl, 16, 512, samples, KARMAOptions{})
			if err != nil {
				t.Fatalf("%s %vGiB: %v", ev.Name(), gib, err)
			}
			if !r.Feasible {
				t.Fatalf("%s %vGiB: infeasible: %s", ev.Name(), gib, r.Reason)
			}
			if r.Backend != ev.Name() {
				t.Fatalf("%s %vGiB: backend tag %q (silent fallback?)", ev.Name(), gib, r.Backend)
			}
			if float64(r.IterTime) > float64(prev)*1.0001 {
				t.Errorf("%s: %vGiB iteration %v regressed from %v", ev.Name(), gib, r.IterTime, prev)
			}
			prev = r.IterTime
		}
	}
}

// TestIterMonotoneInModelSize: a deeper transformer never trains faster
// per iteration, under either backend.
func TestIterMonotoneInModelSize(t *testing.T) {
	pe := NewPlanned()
	for _, ev := range []Evaluator{Analytic{}, pe} {
		prev := unit.Seconds(0)
		for _, layers := range []int{6, 12, 24, 36} {
			cfg := model.TransformerConfig{
				Name: fmt.Sprintf("mono-lm-%d", layers), Hidden: 1024, Heads: 16,
				Layers: layers, Seq: 512, Vocab: 16384,
			}
			g := model.Transformer(cfg)
			cl := hw.ABCI()
			cl.Node.Device.MemCapacity = 8 * unit.GiB
			r, err := ev.KARMADataParallel(g, cl, 16, 8, samples, KARMAOptions{})
			if err != nil {
				t.Fatalf("%s L=%d: %v", ev.Name(), layers, err)
			}
			if !r.Feasible {
				t.Fatalf("%s L=%d: infeasible: %s", ev.Name(), layers, r.Reason)
			}
			if r.Backend != ev.Name() {
				t.Fatalf("%s L=%d: backend tag %q (silent fallback?)", ev.Name(), layers, r.Backend)
			}
			if float64(r.IterTime) < float64(prev)*0.9999 {
				t.Errorf("%s: %d layers iterate in %v, faster than %v with fewer layers",
					ev.Name(), layers, r.IterTime, prev)
			}
			prev = r.IterTime
		}
	}
}

// TestPlannedZeROShardHelps mirrors TestKARMAOptionZeROShard on the
// planner-backed path: sharding the streamed gradients can only help.
func TestPlannedZeROShardHelps(t *testing.T) {
	cl := slowLinkCluster()
	g := model.Transformer(model.MegatronConfigs()[2])
	pe := NewPlanned()
	plain, err := pe.KARMADataParallel(g, cl, 16, 4, samples, KARMAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	combo, err := pe.KARMADataParallel(g, cl, 16, 4, samples, KARMAOptions{ZeROShard: true})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Feasible || !combo.Feasible {
		t.Fatalf("both variants must be feasible: %v %v", plain, combo)
	}
	if plain.Backend != "planned" || combo.Backend != "planned" {
		t.Fatalf("backend tags %q/%q: the planner-backed path silently fell back", plain.Backend, combo.Backend)
	}
	if combo.IterTime > plain.IterTime {
		t.Errorf("planned ZeRO+KARMA (%v) slower than plain (%v) on a saturated link",
			combo.IterTime, plain.IterTime)
	}
}

// TestPlannedUpdateOnDeviceNeverFaster mirrors ablation A4 on the
// planner-backed path: the momentum round-trip cannot win.
func TestPlannedUpdateOnDeviceNeverFaster(t *testing.T) {
	cl := slowLinkCluster()
	g := model.Transformer(model.MegatronConfigs()[2])
	pe := NewPlanned()
	host, err := pe.KARMADataParallel(g, cl, 16, 4, samples, KARMAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := pe.KARMADataParallel(g, cl, 16, 4, samples, KARMAOptions{UpdateOnDevice: true})
	if err != nil {
		t.Fatal(err)
	}
	if !host.Feasible || !dev.Feasible {
		t.Fatalf("both variants must be feasible: %v %v", host, dev)
	}
	if host.Backend != "planned" || dev.Backend != "planned" {
		t.Fatalf("backend tags %q/%q: the planner-backed path silently fell back", host.Backend, dev.Backend)
	}
	if dev.IterTime < host.IterTime {
		t.Errorf("planned device update (%v) beat host update (%v)", dev.IterTime, host.IterTime)
	}
}
