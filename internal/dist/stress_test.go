package dist

import (
	"fmt"
	"sync"
	"testing"

	"karma/internal/hw"
	"karma/internal/model"
)

// sameResult compares two results by value, following the Breakdown
// pointer (plain struct equality stopped meaning "same verdict" when
// Result gained the attribution payload).
func sameResult(a, b *Result) bool {
	if (a.Breakdown == nil) != (b.Breakdown == nil) {
		return false
	}
	if a.Breakdown != nil && *a.Breakdown != *b.Breakdown {
		return false
	}
	x, y := *a, *b
	x.Breakdown, y.Breakdown = nil, nil
	return x == y
}

// TestPlannedConcurrentStress hammers one shared Planned evaluator from
// many goroutines — the exact shape a parallel sweep produces. Half the
// work hits overlapping cache keys (every goroutine evaluates the same
// Megatron-2.5B hybrid, so the singleflight memos must dedupe one
// planning run under contention), half hits distinct keys (per-goroutine
// GPU counts and configs, which must proceed in parallel without
// corrupting each other). Run under -race this is the data-race gate
// for the memo caches; the value checks make it a determinism gate too:
// every concurrent result must equal the serial reference bit-for-bit.
func TestPlannedConcurrentStress(t *testing.T) {
	cl := hw.ABCI()
	cfgs := model.MegatronConfigs()
	const samples = 1_000_000

	// Serial references on a private evaluator.
	ref := NewPlanned()
	refShared, err := ref.MegatronHybrid(cfgs[2], cl, 4, 256, 4, samples, HybridOptions{Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	refZero := make(map[int]*Result)
	for _, gpus := range []int{64, 128, 256, 512} {
		r, err := ref.ZeRO(cfgs[1], cl, 2, gpus, 2, samples, HybridOptions{Phased: true, Checkpoint: true})
		if err != nil {
			t.Fatal(err)
		}
		refZero[gpus] = r
	}
	refPipe, err := ref.Pipeline(cfgs[2], cl, 4, 256, 4, 4, samples, HybridOptions{Phased: true, Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}

	// One shared evaluator, many goroutines, overlapping and distinct keys.
	pe := NewPlanned()
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Overlapping: every goroutine plans the same shard.
			shared, err := pe.MegatronHybrid(cfgs[2], cl, 4, 256, 4, samples, HybridOptions{Checkpoint: true})
			if err != nil {
				errs[g] = err
				return
			}
			if !sameResult(shared, refShared) {
				errs[g] = fmt.Errorf("shared hybrid diverged: %+v vs %+v", shared, refShared)
				return
			}
			// Distinct: a per-goroutine GPU count (ZeRO replans per count by
			// design — the gradient shard is part of the replica shape).
			gpus := []int{64, 128, 256, 512}[g%4]
			z, err := pe.ZeRO(cfgs[1], cl, 2, gpus, 2, samples, HybridOptions{Phased: true, Checkpoint: true})
			if err != nil {
				errs[g] = err
				return
			}
			if !sameResult(z, refZero[gpus]) {
				errs[g] = fmt.Errorf("zero@%d diverged: %+v vs %+v", gpus, z, refZero[gpus])
				return
			}
			// Overlapping again through a different family: the pipeline
			// path shares the full-model graph cache.
			p, err := pe.Pipeline(cfgs[2], cl, 4, 256, 4, 4, samples, HybridOptions{Phased: true, Checkpoint: true})
			if err != nil {
				errs[g] = err
				return
			}
			if !sameResult(p, refPipe) {
				errs[g] = fmt.Errorf("pipeline diverged: %+v vs %+v", p, refPipe)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}

	// Eviction-pressure pass: the same workload on an evaluator whose
	// instance memos are bounded far below the working set, so entries
	// are constantly evicted and recomputed mid-flight. Every cached
	// computation is a pure function of its key, so churn may cost time
	// but must never change a value — and under -race this exercises the
	// LRU surgery concurrently with singleflight joins.
	tiny := NewPlanned()
	tiny.profiles.limit = 2
	tiny.schedules.limit = 2
	var ewg sync.WaitGroup
	eerrs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		ewg.Add(1)
		go func(g int) {
			defer ewg.Done()
			gpus := []int{64, 128, 256, 512}[g%4]
			z, err := tiny.ZeRO(cfgs[1], cl, 2, gpus, 2, samples, HybridOptions{Phased: true, Checkpoint: true})
			if err != nil {
				eerrs[g] = err
				return
			}
			if !sameResult(z, refZero[gpus]) {
				eerrs[g] = fmt.Errorf("zero@%d diverged under eviction churn: %+v vs %+v", gpus, z, refZero[gpus])
				return
			}
			shared, err := tiny.MegatronHybrid(cfgs[2], cl, 4, 256, 4, samples, HybridOptions{Checkpoint: true})
			if err != nil {
				eerrs[g] = err
				return
			}
			if !sameResult(shared, refShared) {
				eerrs[g] = fmt.Errorf("hybrid diverged under eviction churn: %+v vs %+v", shared, refShared)
			}
		}(g)
	}
	ewg.Wait()
	for g, err := range eerrs {
		if err != nil {
			t.Errorf("eviction goroutine %d: %v", g, err)
		}
	}
}
