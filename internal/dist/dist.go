// Package dist models KARMA at cluster scale (paper §III-G, Fig. 3): the
// five-stage out-of-core data-parallel pipeline (swap-in, compute,
// swap-out, phased gradient exchange, host-side weight update), the
// Megatron-LM model+data-parallel hybrid it is compared against (Fig. 8,
// Table IV), ZeRO-style sharded data parallelism, GPipe-style pipeline
// (inter-layer) parallelism, and conventional in-core data parallelism
// (Table V). Every family evaluates at fp32 or mixed precision
// (tensor.Precision): fp16 tensors halve the swap, collective and
// activation bytes while the optimizer's fp32 master state stays
// resident, sharded, or host-side depending on the family.
//
// Two Evaluator backends cost each configuration:
//
//   - Analytic (the package-level functions): closed-form models layered
//     on the profiled per-block quantities of internal/profiler and the
//     collective costs of internal/comm. The out-of-core KARMA replica
//     is approximated by a heavy/cheap activation split with a streamed
//     fraction; the MP hybrids by a forward/backward phase algebra over
//     the 1/mp shard profile (megatronCost). Use it for dense sweeps —
//     a full Fig. 8 grid costs milliseconds.
//
//   - Planned: everything runs through the planner/sim pipeline. A KARMA
//     replica runs the real internal/karma two-tier partition search
//     (Opt-1/Opt-2, in the §III-G weight-streaming regime when weights
//     cannot stay resident); an MP hybrid shard (MegatronHybrid, ZeRO)
//     profiles model.TransformerShard per layer, takes its in-core or
//     activation-checkpointed schedule (karma.InCore / karma.Checkpoint)
//     and gets the blocking Megatron collectives, the phased or bulk
//     data-parallel exchange, and ZeRO's reduce-scatter/all-gather split
//     injected as collective-stream ops. Either way internal/sim plays
//     the schedule out, so swap, recompute, checkpoint-replay and
//     collective stalls interact per block exactly as in Fig. 3. Use it
//     when fidelity matters (calibration, headline ratios); profiles and
//     shard builds are cached so sweeps stay tractable.
//
// The two backends diverge only in timing fidelity, never on "does it
// fit": they share one feasibility path (the KARMA precheck, and
// hybridSetup for the MP hybrids), so verdicts and Reason strings agree
// by construction, and they coincide exactly for fully in-core KARMA
// replicas. Analytic-vs-Planned iteration times are held to a bounded
// band by the property tests in hybrid_test.go. The models return a
// Result rather than an error for capacity problems (undersized
// clusters, models that cannot be sharded small enough), so experiment
// sweeps can render infeasible cells; errors are reserved for invalid
// arguments.
package dist

import (
	"fmt"
	"math"

	"karma/internal/comm"
	"karma/internal/graph"
	"karma/internal/hw"
	"karma/internal/profiler"
	"karma/internal/tensor"
	"karma/internal/unit"
)

// headroomFrac is the fraction of usable device memory reserved for
// transient working tensors (mirrors the planner's Options.Headroom).
const headroomFrac = 0.03

// Result is the outcome of evaluating one distributed configuration.
// The JSON field names are the karma-serve wire format; experiment
// panels embed Results, so the tags keep every panel marshalable as-is.
type Result struct {
	// Feasible reports whether the configuration fits the cluster; when
	// false, Reason explains why and the timing fields are zero.
	Feasible bool   `json:"feasible"`
	Reason   string `json:"reason,omitempty"`

	// EpochTime is the time to process one epoch of the sample set.
	EpochTime unit.Seconds `json:"epoch_time_s"`
	// IterTime is the time of one global mini-batch iteration.
	IterTime unit.Seconds `json:"iter_time_s"`
	// IterPerSec is the iteration rate (Table IV's perf column).
	IterPerSec float64 `json:"iter_per_sec"`
	// CostPerf is the cost/performance proxy of Table V: GPU-seconds
	// spent per training sample ($/P up to a constant price factor).
	CostPerf float64 `json:"cost_perf"`
	// GPUs is the device count the configuration uses.
	GPUs int `json:"gpus"`
	// GlobalBatch is the samples processed per iteration across the run.
	GlobalBatch int `json:"global_batch"`
	// Backend names the cost model that produced the numbers. Results are
	// tagged "analytic" at construction (the package-level functions ARE
	// the analytic backend); the planner-backed evaluator overwrites the
	// tag with "planned" on the paths it actually simulates, so a
	// "analytic" tag from Planned marks an explicit fallback.
	Backend string `json:"backend"`
	// Ckpt records whether the configuration ran with activation
	// checkpointing (the in-core hybrids under HybridOptions.Checkpoint).
	Ckpt bool `json:"ckpt"`
	// Breakdown attributes IterTime across the pipeline's phases (nil for
	// infeasible results). Its critical-path components sum to IterTime in
	// both backends — every verdict is self-explaining.
	Breakdown *Breakdown `json:"breakdown,omitempty"`
}

// KARMAOptions selects KARMA-DP variants.
type KARMAOptions struct {
	// UpdateOnDevice forces the weight update of swapped blocks back onto
	// the GPU (ablation A4). The default updates swapped blocks on the
	// host during swap-out (Fig. 3 stage 5), which avoids the momentum
	// round-trip over the link.
	UpdateOnDevice bool
	// ZeROShard composes KARMA with ZeRO-style sharding: gradient and
	// optimizer state partition across the replicas, shrinking the
	// out-of-core footprint each GPU must stream (Fig. 8 right panel).
	ZeROShard bool
	// Precision selects the training regime (fp32 default, or mixed
	// fp16-with-fp32-master). Mixed precision halves the weight,
	// gradient and activation bytes the replica streams and exchanges;
	// the fp32 master copy lives with the host-side update (far memory)
	// in every KARMA regime, so it never costs device capacity. Compute
	// rates are deliberately held constant across regimes (see
	// tensor.Precision).
	Precision tensor.Precision
}

// infeasible returns a non-viable Result carrying the configuration's
// identity so tables can still render the row. Like finalize it tags the
// result "analytic" at construction; evaluator backends re-tag.
func infeasible(gpus, globalBatch int, format string, args ...any) *Result {
	return &Result{
		Feasible:    false,
		Reason:      fmt.Sprintf(format, args...),
		GPUs:        gpus,
		GlobalBatch: globalBatch,
		Backend:     "analytic",
	}
}

// finalize derives the rate and epoch quantities from one iteration
// time, tagged with the analytic backend the package-level functions
// implement (the planned evaluator re-tags what it simulates).
func finalize(iter unit.Seconds, gpus, globalBatch, samples int) *Result {
	iters := (samples + globalBatch - 1) / globalBatch
	return &Result{
		Feasible:    true,
		EpochTime:   unit.Seconds(float64(iters) * float64(iter)),
		IterTime:    iter,
		IterPerSec:  1 / float64(iter),
		CostPerf:    float64(gpus) * float64(iter) / float64(globalBatch),
		GPUs:        gpus,
		GlobalBatch: globalBatch,
		Backend:     "analytic",
	}
}

// validateRun checks the argument combinations shared by all models.
func validateRun(cl hw.Cluster, gpus, batch, samples int) error {
	if gpus <= 0 {
		return fmt.Errorf("dist: gpus must be positive, got %d", gpus)
	}
	if batch <= 0 {
		return fmt.Errorf("dist: per-replica batch must be positive, got %d", batch)
	}
	if samples <= 0 {
		return fmt.Errorf("dist: sample count must be positive, got %d", samples)
	}
	if cl.Nodes <= 0 || cl.Node.Devices <= 0 {
		return fmt.Errorf("dist: cluster %s has no devices", cl.Name)
	}
	return cl.Node.Device.Validate()
}

// budget returns the per-device memory available after headroom.
func budget(cl hw.Cluster) unit.Bytes {
	usable := cl.Node.Device.UsableMem()
	return usable - unit.Bytes(float64(usable)*headroomFrac)
}

// maxBlockBytes returns the largest single-block working set of the
// profile — two weight copies, activations, and pinned inputs. A block
// whose working set exceeds the device budget cannot run under any
// streaming policy; both backends share this feasibility verdict.
func maxBlockBytes(p *profiler.Profile) unit.Bytes {
	var maxBlock unit.Bytes
	for _, b := range p.Blocks {
		if work := 2*b.WeightBytes + b.ActBytes + b.PinnedInBytes; work > maxBlock {
			maxBlock = work
		}
	}
	return maxBlock
}

// replicaCost is the per-replica iteration cost of KARMA's out-of-core
// pipeline, before the gradient exchange is added.
type replicaCost struct {
	// fwd and bwd are the device compute phases; recompute is the Opt-2
	// style redundant forward work for dropped cheap activations.
	fwd, bwd, recompute unit.Seconds
	// swapStall is link time not hidden under compute.
	swapStall unit.Seconds
	// serialUpdate is weight-update work on the iteration's critical path.
	serialUpdate unit.Seconds
	// updateStall is host-update time not hidden under the next forward.
	updateStall unit.Seconds
	// stream is the fraction of the working set crossing the link each
	// iteration (0 when the replica runs in-core).
	stream float64
	// h2d, d2h and hostUpdate are informational busy times (Breakdown's
	// per-stream view); they do not enter iter().
	h2d, d2h, hostUpdate unit.Seconds
}

func (rc replicaCost) iter() unit.Seconds {
	return rc.fwd + rc.bwd + rc.recompute + rc.swapStall + rc.serialUpdate + rc.updateStall
}

// breakdown attributes the replica's critical path plus the exchange
// exposure; components sum to iter (= rc.iter() + exStall) exactly.
func (rc replicaCost) breakdown(exTotal, exStall, iter unit.Seconds) *Breakdown {
	b := &Breakdown{
		Compute:       rc.fwd + rc.bwd,
		Recompute:     rc.recompute,
		SwapStall:     rc.swapStall,
		ExchangeStall: exStall,
		Update:        rc.serialUpdate + rc.updateStall,
		Busy: StreamBusy{
			Compute: rc.fwd + rc.bwd + rc.recompute + rc.serialUpdate,
			H2D:     rc.h2d,
			D2H:     rc.d2h,
			Host:    rc.hostUpdate,
			Network: exTotal,
		},
	}
	return b.withOccupancy(iter)
}

// karmaReplica evaluates one out-of-core replica at the profile's batch.
// gpus is the data-parallel width (it sizes ZeRO's shards). A nil result
// means the configuration cannot run; reason explains it.
func karmaReplica(p *profiler.Profile, cl hw.Cluster, gpus int, o KARMAOptions) (*replicaCost, string) {
	m := budget(cl)
	weights := p.TotalWeightBytes
	grads := weights
	if o.ZeROShard {
		// Gradient and optimizer state shard across the replicas; each
		// GPU holds only its 1/gpus partition between exchanges.
		grads = unit.Bytes(math.Ceil(float64(weights) / float64(gpus)))
	}

	var fwd, bwd, cheapFwd unit.Seconds
	var heavyActs unit.Bytes
	var updateFLOPs unit.FLOPs
	for _, b := range p.Blocks {
		fwd += b.FwdTime
		bwd += b.BwdTime
		cheapFwd += b.CheapFwdTime
		heavyActs += b.HeavyActBytes
		updateFLOPs += b.UpdateFLOPs
	}
	if maxBlock := maxBlockBytes(p); maxBlock > m {
		return nil, fmt.Sprintf("largest block needs %v of %v device memory", maxBlock, m)
	}

	rc := &replicaCost{fwd: fwd, bwd: bwd}
	devRate := cl.Node.Device.SustainedFLOPS()
	updDev := unit.ComputeTime(updateFLOPs, devRate)
	if o.ZeROShard {
		// Every replica updates only its 1/gpus partition (the all-gather
		// of fresh parameters is folded into the exchange).
		updDev = unit.Seconds(float64(updDev) / float64(gpus))
	}

	if weights+grads+p.TotalActBytes <= m {
		// Fully in-core: KARMA degenerates to conventional data
		// parallelism with a device-side update.
		rc.serialUpdate = updDev
		return rc, ""
	}

	// Drop cheap activations (normalization, pooling, element-wise) and
	// recompute them in backward — the Opt-2 interleave at block scale.
	rc.recompute = cheapFwd
	footprint := weights + grads + heavyActs
	if footprint <= m {
		rc.serialUpdate = updDev
		return rc, ""
	}

	// Block streaming: the nonresident share of weights and heavy
	// activations crosses the link every iteration. Weights enter twice
	// (forward and backward sweeps), activations leave after forward and
	// return for backward, gradients drain to far memory.
	f := 1 - float64(m)/float64(footprint)
	rc.stream = f
	in := f * float64(2*weights+heavyActs)
	out := f * float64(heavyActs+grads)

	hostFrac := f // share of the update handled off-device
	if o.ZeROShard {
		hostFrac /= float64(gpus)
	}
	if o.UpdateOnDevice {
		// Forcing streamed blocks to update on the GPU round-trips their
		// momentum buffers and serializes the update kernel (A4). The
		// buffers are fp32 in both regimes, so under mixed precision they
		// cost twice the fp16 weight bytes. ZeRO partitions the momentum
		// like the rest of the optimizer state.
		momentum := f * float64(o.Precision.OptimBytes(weights))
		if o.ZeROShard {
			momentum /= float64(gpus)
		}
		in += momentum
		out += momentum
		rc.serialUpdate = updDev
		hostFrac = 0
	} else {
		// Streamed blocks update on the host during swap-out; resident
		// blocks update on the device.
		rc.serialUpdate = unit.Seconds((1 - f) * float64(updDev))
	}
	hostFLOPs := unit.FLOPs(hostFrac * float64(updateFLOPs))
	hostT := unit.ComputeTime(hostFLOPs, cl.Node.Host.SustainedFLOPS())
	rc.hostUpdate = hostT
	if hostT > fwd {
		// CPU update overlaps the next iteration's forward pass.
		rc.updateStall = hostT - fwd
	}

	swapBW := hw.SwapThroughput(cl.Node)
	lat := unit.Seconds(float64(len(p.Blocks)) * float64(cl.Node.Link.Latency))
	rc.h2d = unit.TransferTime(unit.Bytes(in), swapBW, lat)
	rc.d2h = unit.TransferTime(unit.Bytes(out), swapBW, lat)
	dir := math.Max(in, out)
	link := unit.TransferTime(unit.Bytes(dir), swapBW, lat)
	if compute := rc.fwd + rc.bwd + rc.recompute; link > compute {
		rc.swapStall = link - compute
	}
	return rc, ""
}

// gradExchange returns the per-iteration cost of the phased block-wise
// gradient exchange: a hierarchical all-reduce of the full gradient
// payload, overlapped with the backward pass that produces it. With
// ZeROShard the exchange is a reduce-scatter plus the all-gather of
// updated parameters — the same ring volume in this cost model.
func gradExchange(grads unit.Bytes, cl hw.Cluster, gpus int, window unit.Seconds) unit.Seconds {
	_, stall := gradExchangeTimes(grads, cl, gpus, window)
	return stall
}

// gradExchangeTimes returns both the full collective time (the network
// busy view) and the stall beyond the overlap window (the critical-path
// view) — same arithmetic as gradExchange.
func gradExchangeTimes(grads unit.Bytes, cl hw.Cluster, gpus int, window unit.Seconds) (total, stall unit.Seconds) {
	if gpus <= 1 {
		return 0, 0
	}
	b := comm.Pick(gpus)
	t := comm.HierarchicalAllReduce(grads, cl, gpus, b)
	if t <= window {
		return t, 0
	}
	return t, t - window
}

// KARMADataParallel evaluates KARMA's pure data-parallel training of g:
// every GPU holds the whole model out-of-core at the given per-replica
// batch, blocks swap with their weights, gradients exchange per block in
// phases, and the weight update runs host-side (Fig. 3). The global
// mini-batch is gpus x perReplicaBatch.
func KARMADataParallel(g *graph.Graph, cl hw.Cluster, gpus, perReplicaBatch, samples int, o KARMAOptions) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("dist: nil graph")
	}
	if err := validateRun(cl, gpus, perReplicaBatch, samples); err != nil {
		return nil, err
	}
	global := gpus * perReplicaBatch
	if total := cl.TotalDevices(); gpus > total {
		return infeasible(gpus, global, "cluster %s has %d devices, need %d", cl.Name, total, gpus), nil
	}
	p, err := profiler.New(g, cl.Node, profiler.Options{Batch: perReplicaBatch, DType: o.Precision.DType()})
	if err != nil {
		return nil, err
	}
	rc, reason := karmaReplica(p, cl, gpus, o)
	if rc == nil {
		return infeasible(gpus, global, "%s", reason), nil
	}
	exTotal, exStall := gradExchangeTimes(p.TotalWeightBytes, cl, gpus, rc.bwd)
	iter := rc.iter() + exStall
	r := finalize(iter, gpus, global, samples)
	r.Breakdown = rc.breakdown(exTotal, exStall, iter)
	return r, nil
}

// DataParallel evaluates conventional in-core data parallelism: gpus
// replicas at the given batch, gradients all-reduced hierarchically and
// overlapped with backward, weights updated on the device. Models whose
// working set exceeds device memory are infeasible — the regime KARMA
// (and the MP hybrid) exist for.
func DataParallel(g *graph.Graph, cl hw.Cluster, gpus, perReplicaBatch, samples int) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("dist: nil graph")
	}
	if err := validateRun(cl, gpus, perReplicaBatch, samples); err != nil {
		return nil, err
	}
	global := gpus * perReplicaBatch
	if total := cl.TotalDevices(); gpus > total {
		return infeasible(gpus, global, "cluster %s has %d devices, need %d", cl.Name, total, gpus), nil
	}
	p, err := profiler.New(g, cl.Node, profiler.Options{Batch: perReplicaBatch})
	if err != nil {
		return nil, err
	}
	if need, have := p.InCoreBytes(), budget(cl); need > have {
		return infeasible(gpus, global,
			"batch %d needs %v of %v device memory; use KARMADataParallel", perReplicaBatch, need, have), nil
	}
	fwd, bwd, updateFLOPs := p.Totals()
	upd := unit.ComputeTime(updateFLOPs, cl.Node.Device.SustainedFLOPS())
	exTotal, exStall := gradExchangeTimes(p.TotalWeightBytes, cl, gpus, bwd)
	iter := fwd + bwd + upd + exStall
	r := finalize(iter, gpus, global, samples)
	r.Breakdown = (&Breakdown{
		Compute:       fwd + bwd,
		ExchangeStall: exStall,
		Update:        upd,
		Busy:          StreamBusy{Compute: fwd + bwd + upd, Network: exTotal},
	}).withOccupancy(iter)
	return r, nil
}
