package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"karma/internal/profiler"
)

// TestMemoSingleflight checks the dedup contract: concurrent callers of
// one key share exactly one computation, distinct keys compute in
// parallel (not serialized behind each other's fn).
func TestMemoSingleflight(t *testing.T) {
	var c memo[int, int]
	var calls atomic.Int64
	const goroutines = 32
	var wg sync.WaitGroup
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := c.do(7, func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
			}
			results[g] = v
		}(g)
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("key computed %d times, want 1", n)
	}
	for g, v := range results {
		if v != 42 {
			t.Errorf("goroutine %d got %d, want 42", g, v)
		}
	}
}

// TestMemoErrorNotCached checks the daemon-safety half of the contract:
// a failing computation is forgotten as soon as its error is observed,
// so the next lookup retries — a transient failure must not poison a
// key for the life of the process.
func TestMemoErrorNotCached(t *testing.T) {
	var c memo[string, int]
	calls := 0
	boom := fmt.Errorf("transient")
	fn := func() (int, error) {
		calls++
		if calls == 1 {
			return 0, boom
		}
		return 99, nil
	}
	if _, err := c.do("k", fn); err != boom {
		t.Fatalf("first call: err = %v, want %v", err, boom)
	}
	if got := c.len(); got != 0 {
		t.Fatalf("after error: %d entries resident, want 0", got)
	}
	v, err := c.do("k", fn)
	if err != nil || v != 99 {
		t.Fatalf("retry: got (%d, %v), want (99, nil)", v, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (fail once, retry once)", calls)
	}
	// The successful retry is cached normally.
	v, err = c.do("k", func() (int, error) { t.Error("recomputed a cached success"); return 0, nil })
	if err != nil || v != 99 {
		t.Fatalf("cached: got (%d, %v), want (99, nil)", v, err)
	}
}

// TestMemoErrorSharedByFlight checks that callers concurrent with a
// failing computation all see its error (singleflight), while callers
// arriving after it resolved start a fresh computation.
func TestMemoErrorSharedByFlight(t *testing.T) {
	var c memo[int, int]
	var calls atomic.Int64
	boom := fmt.Errorf("flight failure")
	release := make(chan struct{})
	started := make(chan struct{})
	// The first flight blocks until released, then fails; any retry
	// flight (a caller that arrived after the failure was forgotten)
	// succeeds — both outcomes are legal for a given waiter, and the
	// assertions below accept exactly those two.
	fn := func() (int, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-release
			return 0, boom
		}
		return 5, nil
	}

	const waiters = 8
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	vals := make([]int, waiters)
	for g := 0; g < waiters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals[g], errs[g] = c.do(1, fn)
		}(g)
	}
	<-started
	close(release)
	wg.Wait()
	sawBoom := 0
	for g, err := range errs {
		switch {
		case err == boom:
			sawBoom++
		case err == nil && vals[g] == 5: // late arrival, successful retry
		default:
			t.Errorf("waiter %d: got (%d, %v), want the flight's error or a retried 5", g, vals[g], err)
		}
	}
	if sawBoom == 0 {
		t.Error("no waiter observed the failing flight's error")
	}
	// Post-flight lookup never sees the stale error.
	v, err := c.do(1, fn)
	if err != nil || v != 5 {
		t.Fatalf("post-flight: got (%d, %v), want (5, nil)", v, err)
	}
}

// TestMemoLRUEviction checks the bound: inserting past the limit evicts
// the least-recently-used key, a re-lookup of an evicted key recomputes
// (and re-caches) it, and recently-touched keys survive.
func TestMemoLRUEviction(t *testing.T) {
	c := memo[int, int]{limit: 3}
	compute := func(k int) func() (int, error) {
		return func() (int, error) { return k * 10, nil }
	}
	for k := 0; k < 3; k++ {
		if v, _ := c.do(k, compute(k)); v != k*10 {
			t.Fatalf("do(%d) = %d", k, v)
		}
	}
	// Touch 0 so 1 becomes the LRU, then insert 3 to force an eviction.
	c.do(0, compute(0))
	c.do(3, compute(3))
	if got := c.len(); got != 3 {
		t.Fatalf("%d entries resident, want 3", got)
	}
	st := c.stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// 0, 2, 3 are resident; 1 was evicted and recomputes.
	recomputed := false
	v, _ := c.do(1, func() (int, error) { recomputed = true; return 10, nil })
	if !recomputed || v != 10 {
		t.Fatalf("evicted key: recomputed=%v v=%d, want true 10", recomputed, v)
	}
	// 0 survived its touch (the insert of 3 evicted 1, not 0)... but the
	// re-insert of 1 just evicted the then-LRU 2. Check 0 is still cached.
	c.do(0, func() (int, error) { t.Error("recently-used key was evicted"); return 0, nil })
}

// TestMemoEvictionUnderConcurrency hammers a tiny-limit memo from many
// goroutines over a keyspace far larger than the bound — constant
// eviction churn, interleaved with singleflight joins — and checks every
// returned value is the key's pure function. Run under -race this is
// the eviction-path data-race gate.
func TestMemoEvictionUnderConcurrency(t *testing.T) {
	c := memo[int, int]{limit: 4}
	const goroutines = 16
	const lookups = 400
	const keyspace = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < lookups; i++ {
				k := (g*7 + i) % keyspace
				v, err := c.do(k, func() (int, error) { return k * k, nil })
				if err != nil {
					t.Errorf("do(%d): %v", k, err)
					return
				}
				if v != k*k {
					t.Errorf("do(%d) = %d, want %d", k, v, k*k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.len(); got > 4 {
		t.Errorf("%d entries resident, limit 4", got)
	}
	st := c.stats()
	if st.Evictions == 0 {
		t.Error("no evictions under a keyspace 8x the limit")
	}
	if st.Hits+st.Misses != goroutines*lookups {
		t.Errorf("hits+misses = %d, want %d lookups", st.Hits+st.Misses, goroutines*lookups)
	}
}

// TestMemoStatsAggregate checks the exported stats surfaces sum their
// member caches (the /stats endpoint of karma-serve reads these).
func TestMemoStatsAggregate(t *testing.T) {
	pe := NewPlanned()
	if s := pe.CacheStats(); s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Fatalf("fresh evaluator stats = %+v, want zeros", s)
	}
	pe.profiles.do(profileKey{batch: 1}, func() (*profiler.Profile, error) {
		return nil, nil
	})
	if s := pe.CacheStats(); s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("after one miss: %+v", s)
	}
	// The shared caches are process-wide: only check the snapshot is
	// coherent (entries resident implies lookups happened).
	sh := SharedCacheStats()
	if sh.Entries > 0 && sh.Hits+sh.Misses == 0 {
		t.Errorf("shared stats incoherent: %+v", sh)
	}
}
