package dist

import (
	"fmt"
	"math/rand"
	"testing"

	"karma/internal/graph"
	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/tensor"
	"karma/internal/unit"
)

// This file is the cross-backend property harness: a table of seeded
// randomized cluster/model/option configurations runs through both the
// Analytic and Planned evaluators, asserting the contract the package
// documents — identical feasibility verdicts with identical Reason
// strings (the backends share one setup path), iteration times within a
// bounded band, and agreement on every ordering the two backends are
// both confident about. It replaces the earlier hand-picked
// feasibility-agreement loops: every family (KARMA-DP, conventional DP,
// Megatron MP+DP, ZeRO, pipeline) and both precision regimes are drawn
// from one seeded generator, so coverage grows by bumping a count
// instead of curating cases.

// propCase is one randomized configuration.
type propCase struct {
	name   string
	family string // karma | dp | megatron | zero | pipeline
	memGiB float64
	cfg    model.TransformerConfig
	mp     int // MP ways, or pipeline stages
	gpus   int
	batch  int
	micro  int
	o      HybridOptions
	ko     KARMAOptions
}

// propModel draws a transformer small enough to profile quickly but
// varied enough to cross the in-core/checkpointed/infeasible regimes at
// the drawn memory sizes.
func propModel(r *rand.Rand) model.TransformerConfig {
	hidden := []int{256, 512, 1024}[r.Intn(3)]
	layers := []int{4, 8, 12, 24}[r.Intn(4)]
	seq := []int{128, 256}[r.Intn(2)]
	vocab := []int{4096, 16384}[r.Intn(2)]
	return model.TransformerConfig{
		Name:   fmt.Sprintf("prop-h%d-l%d-s%d-v%d", hidden, layers, seq, vocab),
		Hidden: hidden, Heads: hidden / 64, Layers: layers, Seq: seq, Vocab: vocab,
	}
}

// propCases generates n seeded configurations. The same seed always
// yields the same table, so a failure reproduces by name.
func propCases(n int, seed int64) []propCase {
	r := rand.New(rand.NewSource(seed))
	families := []string{"karma", "dp", "megatron", "zero", "pipeline"}
	var out []propCase
	for i := 0; i < n; i++ {
		c := propCase{
			family: families[r.Intn(len(families))],
			memGiB: []float64{4, 8, 16, 32}[r.Intn(4)],
			cfg:    propModel(r),
			mp:     1 << r.Intn(4), // 1..8 ways/stages
			gpus:   []int{8, 16, 64, 256}[r.Intn(4)],
			batch:  1 << r.Intn(6), // 1..32
		}
		c.micro = 1 << r.Intn(4)
		if c.micro > c.batch {
			c.micro = c.batch
		}
		prec := tensor.FP32Training
		if r.Intn(2) == 1 {
			prec = tensor.MixedFP16
		}
		c.o = HybridOptions{
			Phased:     r.Intn(2) == 1,
			Checkpoint: r.Intn(2) == 1,
			Precision:  prec,
		}
		c.ko = KARMAOptions{
			UpdateOnDevice: r.Intn(4) == 0,
			ZeROShard:      r.Intn(2) == 1,
			Precision:      prec,
		}
		c.name = fmt.Sprintf("%s/%s/mem%g/mp%d/g%d/b%d/m%d/ckpt%v/%v",
			c.family, c.cfg.Name, c.memGiB, c.mp, c.gpus, c.batch, c.micro, c.o.Checkpoint, prec)
		out = append(out, c)
	}
	return out
}

// run evaluates the case under one backend. Full-model graphs are
// shared via the cache so the planned evaluator's profile cache keys
// stay stable across backends and cases.
func (c propCase) run(ev Evaluator, graphs map[model.TransformerConfig]*graph.Graph) (*Result, error) {
	cl := hw.ABCI()
	cl.Node.Device.MemCapacity = unit.Bytes(c.memGiB * float64(unit.GiB))
	g, ok := graphs[c.cfg]
	if !ok {
		g = model.Transformer(c.cfg)
		graphs[c.cfg] = g
	}
	switch c.family {
	case "karma":
		return ev.KARMADataParallel(g, cl, c.gpus, c.batch, samples, c.ko)
	case "dp":
		return ev.DataParallel(g, cl, c.gpus, c.batch, samples)
	case "megatron":
		return ev.MegatronHybrid(c.cfg, cl, c.mp, c.gpus, c.batch, samples, c.o)
	case "zero":
		return ev.ZeRO(c.cfg, cl, c.mp, c.gpus, c.batch, samples, c.o)
	case "pipeline":
		return ev.Pipeline(c.cfg, cl, c.mp, c.gpus, c.batch, c.micro, samples, c.o)
	default:
		panic("unknown family " + c.family)
	}
}

// propOutcome pairs the two backends' results for the ordering pass.
type propOutcome struct {
	c      propCase
	an, pl *Result
}

// TestBackendProperties is the harness entry point: verdict agreement,
// Reason-string identity, bounded timing divergence, and pairwise
// ordering agreement within every family.
func TestBackendProperties(t *testing.T) {
	n := 64
	if testing.Short() {
		n = 32
	}
	cases := propCases(n, 20260730)
	an := Analytic{}
	pe := NewPlanned()
	graphs := map[model.TransformerConfig]*graph.Graph{}
	byFamily := map[string][]propOutcome{}

	for _, c := range cases {
		ra, erra := c.run(an, graphs)
		rp, errp := c.run(pe, graphs)
		if (erra != nil) != (errp != nil) {
			t.Fatalf("%s: error mismatch: analytic %v, planned %v", c.name, erra, errp)
		}
		if erra != nil {
			continue
		}
		if ra.Feasible != rp.Feasible {
			t.Errorf("%s: feasibility disagrees: analytic %v (%q), planned %v (%q)",
				c.name, ra.Feasible, ra.Reason, rp.Feasible, rp.Reason)
			continue
		}
		if ra.Reason != rp.Reason {
			t.Errorf("%s: Reason strings differ: %q vs %q", c.name, ra.Reason, rp.Reason)
		}
		if !ra.Feasible {
			continue
		}
		if ra.GPUs != rp.GPUs || ra.GlobalBatch != rp.GlobalBatch {
			t.Errorf("%s: identity fields differ: gpus %d/%d batch %d/%d",
				c.name, ra.GPUs, rp.GPUs, ra.GlobalBatch, rp.GlobalBatch)
		}
		ratio := float64(rp.IterTime) / float64(ra.IterTime)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: planned/analytic iteration ratio %.2f outside [0.5, 2.0] (%v vs %v)",
				c.name, ratio, rp.IterTime, ra.IterTime)
		}
		byFamily[c.family] = append(byFamily[c.family], propOutcome{c: c, an: ra, pl: rp})
	}

	// Ordering agreement: wherever both backends separate a pair of
	// configurations by more than 10%, they must rank them identically —
	// the planner refines magnitudes, never flips confident orderings.
	const margin = 1.10
	for fam, outs := range byFamily {
		for i := 0; i < len(outs); i++ {
			for j := i + 1; j < len(outs); j++ {
				a, b := outs[i], outs[j]
				anAB := float64(a.an.IterTime)*margin < float64(b.an.IterTime)
				anBA := float64(b.an.IterTime)*margin < float64(a.an.IterTime)
				plAB := float64(a.pl.IterTime)*margin < float64(b.pl.IterTime)
				plBA := float64(b.pl.IterTime)*margin < float64(a.pl.IterTime)
				if (anAB && plBA) || (anBA && plAB) {
					t.Errorf("%s: ordering flips between backends:\n  %s: analytic %v, planned %v\n  %s: analytic %v, planned %v",
						fam, a.c.name, a.an.IterTime, a.pl.IterTime, b.c.name, b.an.IterTime, b.pl.IterTime)
				}
			}
		}
	}
	for fam, outs := range byFamily {
		t.Logf("%s: %d feasible configurations compared", fam, len(outs))
	}
}
