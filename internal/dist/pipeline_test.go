package dist

import (
	"strings"
	"testing"

	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/unit"
)

func TestPipelineArgumentErrors(t *testing.T) {
	cl := hw.ABCI()
	cfg := smallLM()
	if _, err := Pipeline(cfg, cl, 0, 16, 8, 2, samples, HybridOptions{}); err == nil {
		t.Error("zero stages should error")
	}
	if _, err := Pipeline(cfg, cl, 4, 16, 8, 0, samples, HybridOptions{}); err == nil {
		t.Error("zero micro-batches should error")
	}
	if _, err := Pipeline(model.TransformerConfig{}, cl, 4, 16, 8, 2, samples, HybridOptions{}); err == nil {
		t.Error("degenerate transformer config should error")
	}
	if _, err := Pipeline(cfg, cl, 4, 0, 8, 2, samples, HybridOptions{}); err == nil {
		t.Error("zero GPUs should error")
	}
}

// TestPipelineReasonStrings pins the feasibility Reason strings of the
// pipeline family — like the hybrids', they are part of the package's
// contract, and both backends must emit them identically (the harness in
// property_test.go checks agreement; this pins the wording).
func TestPipelineReasonStrings(t *testing.T) {
	cl := hw.ABCI()
	cfg := smallLM()
	pe := NewPlanned()
	for _, ev := range []Evaluator{Analytic{}, pe} {
		r, err := ev.Pipeline(cfg, cl, 3, 16, 8, 2, samples, HybridOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Feasible || r.Reason != "16 GPUs do not divide into pipelines of 3 stages" {
			t.Errorf("%s: stages∤gpus Reason = %q", ev.Name(), r.Reason)
		}
		r, err = ev.Pipeline(cfg, cl, 4, 16, 6, 4, samples, HybridOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Feasible || r.Reason != "4 micro-batches do not divide the per-replica batch 6" {
			t.Errorf("%s: micro∤batch Reason = %q", ev.Name(), r.Reason)
		}
		r, err = ev.Pipeline(model.TuringNLG(), cl, 16, 512, 128, 8, samples, HybridOptions{Checkpoint: true})
		if err != nil {
			t.Fatal(err)
		}
		if r.Feasible || !strings.Contains(r.Reason, "pipeline stage") || !strings.Contains(r.Reason, "device memory") {
			t.Errorf("%s: capacity Reason = %q", ev.Name(), r.Reason)
		}
	}
}

// TestPipelineMicroBatchingShrinksBubble: at a fixed per-replica batch,
// more micro-batches mean a smaller fill/drain bubble — the epoch never
// gets slower as micro grows, under either backend (GPipe's defining
// trade).
func TestPipelineMicroBatchingShrinksBubble(t *testing.T) {
	cl := hw.ABCI()
	cfg := smallLM()
	pe := NewPlanned()
	for _, ev := range []Evaluator{Analytic{}, pe} {
		prev := unit.Seconds(0)
		for i, micro := range []int{1, 2, 4, 8} {
			r, err := ev.Pipeline(cfg, cl, 4, 64, 16, micro, samples, HybridOptions{Phased: true})
			if err != nil {
				t.Fatalf("%s micro=%d: %v", ev.Name(), micro, err)
			}
			if !r.Feasible {
				t.Fatalf("%s micro=%d infeasible: %s", ev.Name(), micro, r.Reason)
			}
			if r.Backend != ev.Name() {
				t.Fatalf("%s micro=%d: backend tag %q (silent fallback?)", ev.Name(), micro, r.Backend)
			}
			if i > 0 && float64(r.IterTime) > 1.01*float64(prev) {
				t.Errorf("%s: micro=%d iteration %v regressed from %v", ev.Name(), micro, r.IterTime, prev)
			}
			prev = r.IterTime
		}
	}
}

// TestPipelineCheckpointRaisesCapacity: Turing-NLG at 16 stages cannot
// hold 8 in-flight micro-batches resident, but GPipe rematerialization
// fits it — and the largest feasible batch strictly grows.
func TestPipelineCheckpointRaisesCapacity(t *testing.T) {
	cl := hw.ABCI()
	cfg := model.TuringNLG()
	plain, err := Pipeline(cfg, cl, 16, 512, 8, 8, samples, HybridOptions{Phased: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Feasible {
		t.Fatal("8 resident micro-batches of Turing-NLG should not fit a V100 stage")
	}
	ck, err := Pipeline(cfg, cl, 16, 512, 8, 8, samples, HybridOptions{Phased: true, Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Feasible {
		t.Fatalf("rematerialization should fit 8 micro-batches: %s", ck.Reason)
	}
	if !ck.Ckpt {
		t.Error("checkpointed pipeline result must record Ckpt")
	}
	b1, r1, err := PipelineCapacityBatch(cfg, cl, 16, 512, 8, samples, Analytic{}, HybridOptions{Phased: true})
	if err != nil {
		t.Fatal(err)
	}
	b2, r2, err := PipelineCapacityBatch(cfg, cl, 16, 512, 8, samples, Analytic{}, HybridOptions{Phased: true, Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Feasible && !r2.Feasible {
		t.Fatal("checkpointing lost capacity")
	}
	if r2.Feasible && b2 <= b1 {
		t.Errorf("checkpointed capacity batch %d should exceed the resident one %d", b2, b1)
	}
	if r2.Feasible && r2.GlobalBatch != b2*(512/16) {
		t.Errorf("GlobalBatch %d inconsistent with batch %d at 32 replicas", r2.GlobalBatch, b2)
	}
}

// TestPipelineDegenerateCoincides: one stage and one micro-batch is a
// serial iteration with no boundary, no bubble and no recompute — the
// simulated plan is a chain and both backends must land on the same
// number exactly.
func TestPipelineDegenerateCoincides(t *testing.T) {
	cl := hw.ABCI()
	cfg := smallLM()
	an, err := Pipeline(cfg, cl, 1, 8, 8, 1, samples, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pe := NewPlanned()
	pl, err := pe.Pipeline(cfg, cl, 1, 8, 8, 1, samples, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !an.Feasible || !pl.Feasible {
		t.Fatalf("degenerate pipeline must fit: %q %q", an.Reason, pl.Reason)
	}
	if pl.Backend != "planned" {
		t.Fatalf("backend tag %q (silent fallback?)", pl.Backend)
	}
	if an.IterTime != pl.IterTime {
		t.Errorf("degenerate pipeline diverges: analytic %v, planned %v", an.IterTime, pl.IterTime)
	}
}

// TestPipelineGlobalBatchAccounting: one per-replica batch per pipeline
// of `stages` GPUs, not per GPU.
func TestPipelineGlobalBatchAccounting(t *testing.T) {
	cl := hw.ABCI()
	r, err := Pipeline(smallLM(), cl, 4, 64, 8, 4, samples, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal(r.Reason)
	}
	if want := (64 / 4) * 8; r.GlobalBatch != want {
		t.Errorf("GlobalBatch = %d, want %d", r.GlobalBatch, want)
	}
	if r.GPUs != 64 {
		t.Errorf("GPUs = %d, want 64", r.GPUs)
	}
}
