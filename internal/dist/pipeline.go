package dist

import (
	"fmt"

	"karma/internal/comm"
	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/profiler"
	"karma/internal/solve"
	"karma/internal/unit"
)

// This file is the GPipe-style pipeline (inter-layer) parallel baseline —
// the third hybrid family alongside Megatron MP+DP and ZeRO. The model
// splits into `stages` contiguous layer groups balanced by compute time;
// each stage lives on one GPU, gpus/stages replicas of the pipeline train
// data-parallel, and the per-replica batch splits into micro-batches that
// fill and drain the pipeline (the fill/drain bubble GPipe pays instead
// of the hybrids' blocking collectives). Stage boundaries cross a wire
// per micro-batch: the boundary activation forward, its gradient
// backward. Under HybridOptions.Checkpoint a stage that cannot hold all
// in-flight micro-batch activations stores only its boundary inputs and
// recomputes per micro-batch during backward — GPipe's rematerialization,
// decided adaptively per stage. As everywhere, mixed precision halves
// the boundary, exchange and activation bytes while the optimizer's fp32
// master stays resident per stage.
//
// The analytic backend costs the schedule in closed form (fill/drain
// traversal + steady-state bottleneck + exchange stall); the planned
// backend simulates the bottleneck stage's micro-batch loop with real
// stage-boundary Send/Recv ops on the wire stream (planned_pipeline.go).
// Both go through pipelineSetup, so feasibility verdicts and Reason
// strings agree by construction.

// pipeStage is one stage of the partitioned pipeline, costed at the
// micro-batch size.
type pipeStage struct {
	// Range is the half-open [start, end) span of profiler blocks.
	Range [2]int
	// Fwd, Bwd are the stage's compute times per micro-batch; Recompute
	// is the replay cost per backward micro-batch (Fwd when the stage
	// checkpoints, 0 otherwise).
	Fwd, Bwd, Recompute unit.Seconds
	// WeightBytes is the stage's resident parameter footprint; ActBytes
	// its stored activations per micro-batch; InBytes the boundary
	// activation arriving from the previous stage per micro-batch (zero
	// for stage 0); OutBytes the boundary leaving to the next (zero for
	// the last stage).
	WeightBytes, ActBytes, InBytes, OutBytes unit.Bytes
	// UpdateFLOPs is the stage's weight-update work.
	UpdateFLOPs unit.FLOPs
	// Ckpt marks the stage as rematerializing: only boundary inputs stay
	// resident across micro-batches.
	Ckpt bool
}

// perMicro is the stage's compute time per steady-state micro-batch.
func (st pipeStage) perMicro() unit.Seconds { return st.Fwd + st.Recompute + st.Bwd }

// rate is the stage's steady-state micro-batch period: its compute, or
// its boundary wire when that is slower. Both backends pick the
// bottleneck stage by this one metric.
func (st pipeStage) rate(wire func(unit.Bytes) unit.Seconds) unit.Seconds {
	r := st.perMicro()
	if w := wire(st.InBytes) + wire(st.OutBytes); w > r {
		r = w
	}
	return r
}

// fixedBytes is the stage's micro-batch-independent residency: weights,
// gradients and the fp32 master (pipeline parallelism shards none of
// them). The shared capacity verdict and the planned backend's
// simulation budget both derive from it.
func (st pipeStage) fixedBytes(o HybridOptions) unit.Bytes {
	return 2*st.WeightBytes + o.Precision.MasterBytes(st.WeightBytes)
}

// pipeWire returns the stage-boundary transfer cost function and whether
// the boundary rides NVLink: a pipeline whose stages pack inside one
// node crosses boundaries over the topology's device tier; one spanning
// nodes pays the contended inter-node route, like the hybrids' exchange
// (every device on a node drives a concurrent pipeline).
func pipeWire(cl hw.Cluster, stages int, b comm.Backend) (func(unit.Bytes) unit.Seconds, bool) {
	e := shardEngine(cl)
	local := stages <= cl.Node.Devices
	return func(n unit.Bytes) unit.Seconds {
		return comm.PointToPointOver(e, n, local, b)
	}, local
}

// pipelineSetup validates the argument set shared by both backends,
// profiles the full model at the micro-batch size (memoized
// process-wide, like the hybrids' shard profiles), partitions it into
// balanced stages, and decides each stage's residency regime. Both
// evaluator backends go through it, so feasibility verdicts agree by
// construction. A non-nil Result reports an infeasible configuration.
func pipelineSetup(cfg model.TransformerConfig, cl hw.Cluster, stages, gpus, perReplicaBatch, micro, samples int, o HybridOptions) ([]pipeStage, *profiler.Profile, *Result, error) {
	if err := validateRun(cl, gpus, perReplicaBatch, samples); err != nil {
		return nil, nil, nil, err
	}
	if stages <= 0 {
		return nil, nil, nil, fmt.Errorf("dist: pipeline stage count must be positive, got %d", stages)
	}
	if micro <= 0 {
		return nil, nil, nil, fmt.Errorf("dist: micro-batch count must be positive, got %d", micro)
	}
	if err := validateTransformer(cfg); err != nil {
		return nil, nil, nil, err
	}
	replicas := gpus / stages
	global := replicas * perReplicaBatch
	bad := func(format string, args ...any) *Result {
		r := infeasible(gpus, global, format, args...)
		r.Ckpt = o.Checkpoint
		return r
	}
	if gpus%stages != 0 || replicas < 1 {
		return nil, nil, bad("%d GPUs do not divide into pipelines of %d stages", gpus, stages), nil
	}
	if total := cl.TotalDevices(); gpus > total {
		return nil, nil, bad("cluster %s has %d devices, need %d", cl.Name, total, gpus), nil
	}
	if perReplicaBatch%micro != 0 {
		return nil, nil, bad("%d micro-batches do not divide the per-replica batch %d", micro, perReplicaBatch), nil
	}
	p, err := cachedProfile(shardProfileKey{
		mk:    modelKey{cfg: cfg},
		node:  cl.Node,
		batch: perReplicaBatch / micro,
		dt:    o.Precision.DType(),
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if stages > len(p.Blocks) {
		return nil, nil, bad("model %s has %d blocks; cannot form %d pipeline stages", cfg.Name, len(p.Blocks), stages), nil
	}

	// Balance stages by compute time (the quantity the steady-state
	// bottleneck maximizes over).
	weights := make([]float64, len(p.Blocks))
	for i, b := range p.Blocks {
		weights[i] = float64(b.FwdTime+b.BwdTime) + 1e-12
	}
	cuts, err := solve.BalancedPartition(weights, stages)
	if err != nil {
		return nil, nil, nil, err
	}
	m := budget(cl)
	var sts []pipeStage
	for si, rg := range solve.Ranges(cuts, len(p.Blocks)) {
		st := pipeStage{Range: rg}
		for i := rg[0]; i < rg[1]; i++ {
			b := p.Blocks[i]
			st.Fwd += b.FwdTime
			st.Bwd += b.BwdTime
			st.WeightBytes += b.WeightBytes
			st.ActBytes += b.ActBytes
			st.UpdateFLOPs += b.UpdateFLOPs
		}
		if rg[0] > 0 {
			st.InBytes = p.Blocks[rg[0]-1].OutBytes
		}
		if rg[1] < len(p.Blocks) {
			st.OutBytes = p.Blocks[rg[1]-1].OutBytes
		}
		// Residency: the fixed stage footprint plus the in-flight
		// micro-batch activations — all of them resident, or boundary
		// inputs only with one replayed micro under Checkpoint.
		fixed := st.fixedBytes(o)
		mm := int64(micro)
		resident := fixed + unit.Bytes(mm*int64(st.InBytes+st.ActBytes))
		ckpt := fixed + unit.Bytes(mm*int64(st.InBytes)) + st.ActBytes
		switch {
		case resident <= m:
			// All micro-batch activations stay resident.
		case o.Checkpoint && ckpt <= m:
			st.Ckpt = true
			st.Recompute = st.Fwd
		default:
			need := resident
			if o.Checkpoint && ckpt < need {
				need = ckpt
			}
			return nil, nil, bad(
				"pipeline stage %d/%d needs %v of %v device memory; add stages or micro-batches",
				si+1, stages, need, m), nil
		}
		sts = append(sts, st)
	}
	return sts, p, nil, nil
}

// pipeCost is the analytic decomposition of one pipeline iteration.
type pipeCost struct {
	// traversal is the fill+drain path: one micro-batch's pass through
	// every stage and across every boundary, forward and backward.
	traversal unit.Seconds
	// steady is the remaining micro-batches at the bottleneck stage's
	// rate (compute- or wire-bound, whichever is slower).
	steady unit.Seconds
	// exchangeStall is data-parallel gradient-exchange time not hidden
	// under the drain of earlier stages.
	exchangeStall unit.Seconds
	// update is the slowest stage's optimizer step.
	update unit.Seconds
	// bd attributes the same algebra from the bottleneck stage's point of
	// view; its components sum to iter() by construction.
	bd Breakdown
}

func (c pipeCost) iter() unit.Seconds {
	return c.traversal + c.steady + c.exchangeStall + c.update
}

// breakdown returns the attribution for attachment to a Result.
func (c pipeCost) breakdown() *Breakdown {
	b := c.bd
	return b.withOccupancy(c.iter())
}

// pipelineCost evaluates the GPipe fill-drain schedule in closed form:
// the first micro-batch traverses all stages and boundaries (fill +
// drain), the remaining micro-1 proceed at the bottleneck stage's rate,
// the per-stage gradient exchanges (one ring per stage across its
// replicas) overlap the drain of earlier stages under o.Phased, and the
// slowest stage's update closes the iteration.
func pipelineCost(sts []pipeStage, cl hw.Cluster, stages, replicas, micro int, o HybridOptions) pipeCost {
	backend := comm.Pick(stages * replicas)
	wire, local := pipeWire(cl, stages, backend)

	var c pipeCost
	var bottleneck unit.Seconds
	sb := 0
	for s, st := range sts {
		c.traversal += st.perMicro() + wire(st.OutBytes)*2 // boundary: activation out, gradient back
		if r := st.rate(wire); r > bottleneck {
			bottleneck = r
			sb = s
		}
		if u := unit.ComputeTime(st.UpdateFLOPs, cl.Node.Device.SustainedFLOPS()); u > c.update {
			c.update = u
		}
	}
	c.steady = unit.Seconds(float64(micro-1) * float64(bottleneck))

	// Attribution from the bottleneck stage's seat: its micro-batch math
	// is compute (and recompute), everything it waits on — other stages'
	// traversal, boundary wires, and its own wire-bound steady-state
	// excess — is bubble. The components sum to iter() by construction.
	bt := sts[sb]
	c.bd.Compute = unit.Seconds(float64(micro) * float64(bt.Fwd+bt.Bwd))
	c.bd.Recompute = unit.Seconds(float64(micro) * float64(bt.Recompute))
	c.bd.Bubble = (c.traversal - bt.perMicro()) +
		unit.Seconds(float64(micro-1)*float64(bottleneck-bt.perMicro()))
	c.bd.Busy.Compute = unit.Seconds(float64(micro)*float64(bt.perMicro())) + c.update
	if wireT := unit.Seconds(float64(micro) * float64(wire(bt.InBytes)+wire(bt.OutBytes))); local {
		c.bd.Busy.NVLink = wireT
	} else {
		c.bd.Busy.Network = wireT
	}

	// Exchange: stage s's gradients complete at its last backward; while
	// they reduce, stages before it are still draining. Under o.Phased
	// only the excess over that drain window stalls; bulk serializes.
	if replicas > 1 {
		ring := shardEngine(cl)
		var window unit.Seconds
		for s := range sts {
			// Stage s's last backward retires while stages 0..s-1 are still
			// draining; its exchange overlaps that window (backward ripples
			// from the last stage toward stage 0, which finishes last and
			// has no window at all).
			exT := comm.RingAllReduceOver(ring, sts[s].WeightBytes, replicas, backend)
			stall := exT
			if o.Phased {
				stall = exT - window
				if stall < 0 {
					stall = 0
				}
			}
			if stall > c.exchangeStall {
				c.exchangeStall = stall
			}
			if s == sb {
				c.bd.Busy.Network += exT
			}
			window += sts[s].Bwd + sts[s].Recompute
		}
	}
	c.bd.ExchangeStall = c.exchangeStall
	c.bd.Update = c.update
	return c
}

// Pipeline evaluates GPipe-style pipeline parallelism: the transformer
// splits into `stages` balanced layer groups (one GPU each), gpus/stages
// replicas train data-parallel, and each per-replica batch runs as
// `micro` micro-batches filling and draining the pipeline. o.Checkpoint
// enables per-stage rematerialization (GPipe's memory regime),
// o.Phased overlaps the per-stage gradient exchange with the drain, and
// o.Precision selects the training regime. This is the analytic closed
// form; the planned backend simulates the bottleneck stage per
// micro-batch (see planned_pipeline.go).
func Pipeline(cfg model.TransformerConfig, cl hw.Cluster, stages, gpus, perReplicaBatch, micro, samples int, o HybridOptions) (*Result, error) {
	sts, _, bad, err := pipelineSetup(cfg, cl, stages, gpus, perReplicaBatch, micro, samples, o)
	if err != nil || bad != nil {
		return bad, err
	}
	replicas := gpus / stages
	c := pipelineCost(sts, cl, stages, replicas, micro, o)
	r := finalize(c.iter(), gpus, replicas*perReplicaBatch, samples)
	r.Ckpt = o.Checkpoint
	r.Breakdown = c.breakdown()
	return r, nil
}

// PipelineCapacityBatch returns the largest power-of-two per-replica
// batch at which the pipeline stays feasible (micro-batch count held
// fixed), with its evaluation — the same operational rule as
// ZeROCapacityBatch: a deployment maximizes the per-replica batch before
// scaling out. When no batch fits, the batch-`micro` infeasible Result
// is returned so sweeps can render the cell.
func PipelineCapacityBatch(cfg model.TransformerConfig, cl hw.Cluster, stages, gpus, micro, samples int, ev Evaluator, o HybridOptions) (int, *Result, error) {
	batch := micro
	best, err := ev.Pipeline(cfg, cl, stages, gpus, batch, micro, samples, o)
	if err != nil {
		return 0, nil, err
	}
	for b := 2 * micro; best.Feasible && b <= micro<<12; b *= 2 {
		r, err := ev.Pipeline(cfg, cl, stages, gpus, b, micro, samples, o)
		if err != nil {
			return 0, nil, err
		}
		if !r.Feasible {
			break
		}
		batch, best = b, r
	}
	return batch, best, nil
}

// pipelineBudget returns the device memory available to one stage's
// in-flight activations (used by the planned backend's simulation).
func pipelineBudget(st pipeStage, cl hw.Cluster, o HybridOptions) unit.Bytes {
	b := budget(cl) - st.fixedBytes(o)
	if b < 0 {
		b = 0
	}
	return b
}
