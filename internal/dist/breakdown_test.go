package dist

import (
	"bytes"
	"math"
	"testing"

	"karma/internal/graph"
	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/plan"
	"karma/internal/unit"
)

// checkBreakdown asserts the attribution contract on one feasible
// result: a non-nil breakdown whose seven components are non-negative
// and sum to IterTime within float-reassociation tolerance, with a
// sane occupancy. Infeasible results must carry none.
func checkBreakdown(t *testing.T, name string, r *Result) {
	t.Helper()
	if !r.Feasible {
		if r.Breakdown != nil {
			t.Errorf("%s: infeasible result carries a breakdown", name)
		}
		return
	}
	b := r.Breakdown
	if b == nil {
		t.Errorf("%s: feasible result has no breakdown", name)
		return
	}
	for _, c := range []struct {
		label string
		v     unit.Seconds
	}{
		{"compute", b.Compute}, {"recompute", b.Recompute},
		{"swap_stall", b.SwapStall}, {"exchange_stall", b.ExchangeStall},
		{"collective", b.Collective}, {"bubble", b.Bubble}, {"update", b.Update},
	} {
		if c.v < 0 {
			t.Errorf("%s: negative %s component %v", name, c.label, c.v)
		}
	}
	// The components must partition the iteration: both backends build
	// them from the same quantities that sum to IterTime, so only float
	// reassociation separates the two.
	sum, iter := float64(b.Components()), float64(r.IterTime)
	if tol := 1e-9*iter + 1e-12; math.Abs(sum-iter) > tol {
		t.Errorf("%s: components sum %v, IterTime %v (diff %g, tol %g)",
			name, b.Components(), r.IterTime, sum-iter, tol)
	}
	if b.Occupancy < 0 || b.Occupancy > 1 {
		t.Errorf("%s: occupancy %v outside [0,1]", name, b.Occupancy)
	}
	if b.Busy.Compute <= 0 {
		t.Errorf("%s: compute stream never busy", name)
	}
}

// TestBreakdownReconciliation is the tentpole property: every family ×
// backend × precision drawn from the seeded generator must attribute
// its full iteration time, through two entirely different derivations —
// the analytic phase algebra and the simulated-timeline gap
// attribution.
func TestBreakdownReconciliation(t *testing.T) {
	n := 48
	if testing.Short() {
		n = 24
	}
	cases := propCases(n, 20260808)
	graphs := map[model.TransformerConfig]*graph.Graph{}
	evs := []Evaluator{Analytic{}, NewPlanned()}
	seen := map[string]int{}
	for _, c := range cases {
		for _, ev := range evs {
			r, err := c.run(ev, graphs)
			if err != nil {
				continue // argument errors are the property harness's concern
			}
			checkBreakdown(t, c.name+"/"+ev.Name(), r)
			if r.Feasible {
				seen[c.family+"/"+ev.Name()]++
			}
		}
	}
	// The draw must actually exercise every family on both backends;
	// a silent coverage collapse would make the property vacuous.
	for _, fam := range []string{"karma", "dp", "megatron", "zero", "pipeline"} {
		for _, ev := range evs {
			if seen[fam+"/"+ev.Name()] == 0 {
				t.Errorf("no feasible %s configuration reached backend %s", fam, ev.Name())
			}
		}
	}
}

// streamingConfig is a KARMA data-parallel configuration that does not
// fit in-core (weights stream), so the planned path runs the real
// partition search and simulation instead of delegating to the closed
// form.
func streamingConfig() (*graph.Graph, hw.Cluster) {
	cl := hw.ABCI()
	cl.Node.Device.MemCapacity = 4 * unit.GiB
	cfg := model.TransformerConfig{
		Name: "bd-stream", Hidden: 1024, Heads: 16, Layers: 24, Seq: 256, Vocab: 16384,
	}
	return model.Transformer(cfg), cl
}

// TestBreakdownStreamingKARMA pins the out-of-core attribution paths:
// swap traffic appears in the stream view and the update lands on the
// critical path, on both backends.
func TestBreakdownStreamingKARMA(t *testing.T) {
	g, cl := streamingConfig()
	for _, ev := range []Evaluator{Analytic{}, NewPlanned()} {
		r, err := ev.KARMADataParallel(g, cl, 16, 8, samples, KARMAOptions{})
		if err != nil {
			t.Fatalf("%s: %v", ev.Name(), err)
		}
		if !r.Feasible {
			t.Fatalf("%s: expected feasible streaming config: %s", ev.Name(), r.Reason)
		}
		checkBreakdown(t, "streaming/"+ev.Name(), r)
		b := r.Breakdown
		if b.Busy.H2D <= 0 && b.Busy.D2H <= 0 {
			t.Errorf("%s: streaming run shows no swap traffic: %+v", ev.Name(), b.Busy)
		}
		if b.Update <= 0 {
			t.Errorf("%s: streaming run shows no update time", ev.Name())
		}
	}
}

// TestExportKARMA exercises the export API on the streaming config: a
// fresh plan that round-trips through the JSON codec, a timeline whose
// op records match the compiled ops, and the evaluator's own verdict.
func TestExportKARMA(t *testing.T) {
	g, cl := streamingConfig()
	pe := NewPlanned()
	ex, err := pe.ExportKARMA(g, cl, 16, 8, samples, KARMAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Plan == nil || ex.Compiled == nil || ex.Timeline == nil || ex.Result == nil {
		t.Fatalf("incomplete export: %+v", ex)
	}
	if len(ex.Compiled.Ops) == 0 || len(ex.Compiled.Ops) != len(ex.Timeline.Ops) {
		t.Fatalf("ops/timeline mismatch: %d vs %d", len(ex.Compiled.Ops), len(ex.Timeline.Ops))
	}
	if ex.Timeline.Makespan <= 0 || ex.Budget <= 0 {
		t.Fatalf("degenerate export: makespan %v, budget %v", ex.Timeline.Makespan, ex.Budget)
	}
	var buf bytes.Buffer
	if err := ex.Plan.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := plan.Decode(&buf); err != nil {
		t.Fatalf("exported plan does not round-trip: %v", err)
	}
	// The export must also work for a fully in-core configuration, where
	// the evaluator itself delegates to the closed form.
	big := hw.ABCI()
	ex2, err := pe.ExportKARMA(g, big, 16, 8, samples, KARMAOptions{})
	if err != nil {
		t.Fatalf("in-core export: %v", err)
	}
	if len(ex2.Compiled.Ops) == 0 {
		t.Fatal("in-core export has no ops")
	}
}

// TestExportHybridAndPipeline exercises the remaining families and the
// infeasible-rejection contract.
func TestExportHybridAndPipeline(t *testing.T) {
	cl := hw.ABCI()
	cfgs := model.MegatronConfigs()
	pe := NewPlanned()
	o := HybridOptions{Checkpoint: true}

	hy, err := pe.ExportHybrid(cfgs[2], cl, 4, 256, 4, samples, false, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(hy.Compiled.Ops) == 0 || hy.Timeline.Makespan <= 0 {
		t.Fatalf("degenerate hybrid export: %+v", hy)
	}
	var buf bytes.Buffer
	if err := hy.Plan.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := plan.Decode(&buf); err != nil {
		t.Fatalf("hybrid plan does not round-trip: %v", err)
	}

	ze, err := pe.ExportHybrid(cfgs[1], cl, 2, 64, 2, samples, true, HybridOptions{Phased: true, Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if ze.Result.Backend != "planned" {
		t.Errorf("zero export backend = %q", ze.Result.Backend)
	}

	pi, err := pe.ExportPipeline(cfgs[2], cl, 4, 256, 4, 4, samples, HybridOptions{Phased: true, Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pi.Compiled.Ops) == 0 || pi.Timeline.Makespan <= 0 {
		t.Fatalf("degenerate pipeline export: %+v", pi)
	}

	// Infeasible configurations have no plan to export.
	if _, err := pe.ExportHybrid(cfgs[2], cl, 4, 10, 4, samples, false, o); err == nil {
		t.Error("export of an indivisible GPU count should fail")
	}
}
