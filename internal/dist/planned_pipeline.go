package dist

import (
	"fmt"

	"karma/internal/comm"
	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/plan"
	"karma/internal/sim"
	"karma/internal/unit"
)

// This file is the planner-backed path for the pipeline-parallel
// baseline: the bottleneck stage's micro-batch loop is lowered to the
// plan IR with real stage-boundary Send/Recv ops on the wire stream
// (network, or NVLink when the pipeline packs inside one node) and
// simulated by internal/sim — so boundary transfers, per-micro-batch
// rematerialization and the capacity gating of in-flight activations
// interact exactly as scheduled. The fill/drain contribution of the
// other stages, the data-parallel exchange stall and the update are the
// same closed-form terms as the analytic backend (pipelineCost), so the
// two backends diverge only where the simulation adds fidelity.

// Pipeline implements Evaluator with the simulated bottleneck stage; a
// simulator failure on a configuration the shared precheck deems
// feasible falls back to the analytic closed form (the result keeps its
// "analytic" tag, Ckpt still recorded — the fallback contract).
func (pe *Planned) Pipeline(cfg model.TransformerConfig, cl hw.Cluster, stages, gpus, perReplicaBatch, micro, samples int, o HybridOptions) (*Result, error) {
	sts, _, bad, err := pipelineSetup(cfg, cl, stages, gpus, perReplicaBatch, micro, samples, o)
	if err != nil {
		return nil, err
	}
	if bad != nil {
		bad.Backend = pe.Name()
		return bad, nil
	}
	replicas := gpus / stages
	r := func(iter unit.Seconds) *Result {
		res := finalize(iter, gpus, replicas*perReplicaBatch, samples)
		res.Ckpt = o.Checkpoint
		return res
	}
	iter, bd, err := pe.pipeIter(sts, cl, stages, replicas, micro, o)
	if err != nil {
		c := pipelineCost(sts, cl, stages, replicas, micro, o)
		res := r(c.iter()) // Backend stays "analytic": explicit fallback
		res.Breakdown = c.breakdown()
		return res, nil
	}
	res := r(iter)
	res.Backend = pe.Name()
	res.Breakdown = bd
	return res, nil
}

// pipeIter simulates the bottleneck stage's micro-batch loop and closes
// the iteration with the analytic fill/drain, exchange and update terms.
// The breakdown derives from the simulated timeline; the closed-form
// supplement lands on the components it represents (other stages'
// traversal and wires are pipeline bubble from the bottleneck's seat,
// the exchange stall and update on their own components), so the
// attribution still sums to the iteration time.
func (pe *Planned) pipeIter(sts []pipeStage, cl hw.Cluster, stages, replicas, micro int, o HybridOptions) (unit.Seconds, *Breakdown, error) {
	if pe.failSim {
		return 0, nil, errForcedFallback
	}
	backend := comm.Pick(stages * replicas)
	wire, local := pipeWire(cl, stages, backend)

	// The bottleneck stage under the same rate metric as the closed form.
	sb, best := 0, unit.Seconds(-1)
	for s, st := range sts {
		if r := st.rate(wire); r > best {
			best, sb = r, s
		}
	}
	st := sts[sb]
	var pl *plan.Plan
	pe.timed("plan_build", func() {
		pl = buildStagePlan(st, micro, wire, local, sb, len(sts))
	})
	var cp *plan.Compiled
	var tl *sim.Timeline
	var err error
	pe.timed("simulate", func() {
		cp, tl, err = pl.Simulate(pipelineBudget(st, cl, o))
	})
	if err != nil {
		return 0, nil, err
	}

	// Closed-form supplement: the traversal through every other stage and
	// every boundary the simulation did not carry (both directions of the
	// bottleneck's adjacent boundaries ride inside the simulated plan),
	// plus the exchange stall and update shared with the analytic model.
	c := pipelineCost(sts, cl, stages, replicas, micro, o)
	supplement := c.exchangeStall + c.update
	var bubble unit.Seconds
	for s, other := range sts {
		if s == sb {
			continue
		}
		supplement += other.perMicro()
		bubble += other.perMicro()
		if s != sb-1 { // boundary s→s+1; sb's own two are simulated
			supplement += 2 * wire(other.OutBytes)
			bubble += 2 * wire(other.OutBytes)
		}
	}
	iter := tl.Makespan + supplement
	b := timelineBreakdown(cp, tl)
	b.Bubble += bubble
	b.ExchangeStall += c.exchangeStall
	b.Update += c.update
	return iter, b.withOccupancy(iter), nil
}

// buildStagePlan lowers one stage's GPipe micro-batch loop to the plan
// IR. Blocks are micro-batches. Forward fill: each micro-batch's input
// boundary arrives (Recv, overlapped with the previous micro-batch's
// compute), its forward runs (allocating the boundary plus — resident
// regime — its stored activations; a checkpointed stage drops them
// again), and its output boundary leaves (Send, overlapped with the next
// forward). Backward drain in reverse order: the output-boundary
// gradient arrives (overlapped with the previous backward), a
// checkpointed stage replays its forward, the backward frees the
// micro-batch's footprint, and the input-boundary gradient departs.
// Wire ops carry no memory (transfer buffers live in the headroom, like
// every collective op); the boundary tensor itself is charged to the
// forward compute that retains it.
func buildStagePlan(st pipeStage, micro int, wire func(unit.Bytes) unit.Seconds, local bool, sb, stages int) *plan.Plan {
	sendK, recvK := plan.Send, plan.Recv
	if local {
		sendK, recvK = plan.SendLocal, plan.RecvLocal
	}
	tIn, tOut := wire(st.InBytes), wire(st.OutBytes)
	first := sb == 0
	last := sb == stages-1

	pl := &plan.Plan{Name: fmt.Sprintf("pipeline/stage%d", sb), NumBlocks: micro}
	if !first && tIn > 0 {
		pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
			Kind: recvK, Block: 0, Duration: tIn,
		}}})
	}
	for m := 0; m < micro; m++ {
		fwd := plan.Op{
			Kind: plan.Fwd, Block: m, Duration: st.Fwd,
			Alloc: st.InBytes + st.ActBytes,
		}
		if st.Ckpt {
			// Rematerializing stage: internals drop at the end of the
			// micro-batch's forward; only the boundary input stays.
			fwd.Free = st.ActBytes
		}
		stg := plan.Stage{Ops: []plan.Op{fwd}}
		if m+1 < micro && !first && tIn > 0 {
			// Prefetch the next micro-batch's boundary under this forward.
			stg.Ops = append(stg.Ops, plan.Op{Kind: recvK, Block: m + 1, Duration: tIn})
		}
		pl.Stages = append(pl.Stages, stg)
		if !last && tOut > 0 {
			pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
				Kind: sendK, Block: m, Duration: tOut,
			}}})
		}
	}
	for m := micro - 1; m >= 0; m-- {
		if m == micro-1 && !last && tOut > 0 {
			pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
				Kind: recvK, Block: m, Duration: tOut,
			}}})
		}
		if st.Ckpt {
			pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
				Kind: plan.Recompute, Block: m, Duration: st.Recompute,
				Alloc: st.ActBytes,
			}}})
		}
		bwd := plan.Op{
			Kind: plan.Bwd, Block: m, Duration: st.Bwd,
			Free: st.InBytes + st.ActBytes,
		}
		stg := plan.Stage{Ops: []plan.Op{bwd}}
		if m > 0 && !last && tOut > 0 {
			// The previous micro-batch's gradient arrives under this
			// backward.
			stg.Ops = append(stg.Ops, plan.Op{Kind: recvK, Block: m - 1, Duration: tOut})
		}
		pl.Stages = append(pl.Stages, stg)
		if !first && tIn > 0 {
			pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
				Kind: sendK, Block: m, Duration: tIn,
			}}})
		}
	}
	return pl
}
