// Package sweep is the bounded worker pool behind the dense experiment
// sweeps (Fig. 8 grids, Table IV/V ladders, the topology panel): grid
// points fan out across at most `workers` goroutines while every result
// lands at its own index, so a parallel sweep renders byte-identical to
// the serial one. The grid points themselves are pure functions of
// their inputs (detcheck keeps the model packages free of wall-clock
// and global randomness), which is what makes "deterministic ordering"
// sufficient for bit-exact output: no number depends on completion
// order, only on the index it lands at.
//
// The pool is per-call, not global: nested sweeps (a panel fanning out
// rows whose ZeRO cell fans out MP degrees) multiply their bounds
// rather than deadlocking on a shared pool. Jobs are CPU-bound model
// evaluations, so the Go scheduler multiplexes any transient
// oversubscription harmlessly.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count request: n >= 1 is taken as given,
// anything else (0, negative) means one worker per CPU. Callers thread
// the resolved count through flags and options so that 0 stays "auto"
// end to end.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.NumCPU()
}

// Do runs jobs 0..n-1 across at most workers goroutines (resolved by
// Workers) and returns the first error in index order — not completion
// order — so a failing sweep reports the same error no matter how the
// pool interleaved. With one worker the jobs run inline in index order
// and stop at the first error, exactly the serial loop it replaces.
//
// Jobs communicate results by writing to distinct indices of
// caller-owned slices; Do's completion (one sync.WaitGroup barrier)
// orders those writes before Do returns.
func Do(workers, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs f over 0..n-1 with Do's pool and ordering guarantees and
// collects the results by index. On error the slice is nil.
func Map[T any](workers, n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Do(workers, n, func(i int) error {
		v, err := f(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
