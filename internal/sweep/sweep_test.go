package sweep

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	ncpu := runtime.NumCPU()
	if got := Workers(0); got != ncpu {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, ncpu)
	}
	if got := Workers(-3); got != ncpu {
		t.Fatalf("Workers(-3) = %d, want NumCPU %d", got, ncpu)
	}
}

func TestDoOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			out := make([]int, n)
			if err := Do(workers, n, func(i int) error {
				out[i] = i * i
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestDoEmpty(t *testing.T) {
	called := false
	if err := Do(8, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("job ran for n=0")
	}
}

// TestDoFirstErrorByIndex pins the determinism of error selection: with
// several failing jobs the reported error is the lowest-index one,
// regardless of worker interleaving.
func TestDoFirstErrorByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			errAt := map[int]bool{3: true, 7: true, 11: true}
			err := Do(workers, 20, func(i int) error {
				if errAt[i] {
					return fmt.Errorf("job %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != "job 3 failed" {
				t.Fatalf("err = %v, want job 3's", err)
			}
		})
	}
}

// TestDoSerialEarlyExit pins the serial contract: one worker runs
// inline, in order, and stops at the first error — the exact semantics
// of the loops the pool replaces, so workers=1 is not just bit-identical
// in output but in work performed.
func TestDoSerialEarlyExit(t *testing.T) {
	var ran []int
	err := Do(1, 10, func(i int) error {
		ran = append(ran, i)
		if i == 4 {
			return fmt.Errorf("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if len(ran) != 5 {
		t.Fatalf("ran %v, want inline stop after index 4", ran)
	}
	for i, v := range ran {
		if v != i {
			t.Fatalf("ran %v, want strict index order", ran)
		}
	}
}

// TestDoBoundedConcurrency checks the pool never runs more than the
// requested number of jobs at once.
func TestDoBoundedConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	if err := Do(workers, 64, func(int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		for i := 0; i < 1000; i++ { // spin a little to force overlap
			_ = i
		}
		inFlight.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestMap(t *testing.T) {
	out, err := Map(4, 10, func(i int) (string, error) {
		return fmt.Sprintf("v%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if want := fmt.Sprintf("v%d", i); v != want {
			t.Fatalf("out[%d] = %q, want %q", i, v, want)
		}
	}
	if _, err := Map(4, 10, func(i int) (int, error) {
		if i >= 5 {
			return 0, fmt.Errorf("bad %d", i)
		}
		return i, nil
	}); err == nil || err.Error() != "bad 5" {
		t.Fatalf("err = %v, want bad 5", err)
	}
}
