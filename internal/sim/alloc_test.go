package sim

import (
	"testing"

	"karma/internal/race"
	"karma/internal/unit"
)

// TestRunnerSteadyStateAllocFree pins the contract the planner's
// candidate search depends on: after the first run sizes its buffers, a
// reused Runner replays same-shape plans without allocating. The plan
// exercises every reusable buffer — all six streams, deps, the
// completion heap, and memory-gated starts.
func TestRunnerSteadyStateAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	var ops []Op
	for i := 0; i < 8; i++ {
		ops = append(ops,
			Op{Label: "in", Stream: H2D, Duration: 2, AllocBytes: 4},
			Op{Label: "fwd", Stream: Compute, Duration: 3, Deps: []int{len(ops)}},
			Op{Label: "out", Stream: D2H, Duration: 2, Deps: []int{len(ops) + 1}, FreeBytes: 4},
		)
	}
	ops = append(ops,
		Op{Label: "sync", Stream: Network, Duration: 1, Deps: []int{len(ops) - 1}},
		Op{Label: "upd", Stream: HostCPU, Duration: 1, Deps: []int{len(ops)}},
	)
	const capacity = unit.Bytes(9) // two resident swap-ins, the third waits

	var r Runner
	want, err := r.Run(ops, capacity)
	if err != nil {
		t.Fatal(err)
	}
	makespan := want.Makespan

	allocs := testing.AllocsPerRun(100, func() {
		tl, err := r.Run(ops, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if tl.Makespan != makespan {
			t.Fatalf("makespan drifted: %v != %v", tl.Makespan, makespan)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Runner.Run allocated %.1f objects/op, want 0", allocs)
	}
}
