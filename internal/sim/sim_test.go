package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"karma/internal/unit"
)

func mustRun(t *testing.T, ops []Op, cap unit.Bytes) *Timeline {
	t.Helper()
	tl, err := Run(ops, cap)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return tl
}

func TestSerialSameStream(t *testing.T) {
	ops := []Op{
		{Label: "a", Stream: Compute, Duration: 1},
		{Label: "b", Stream: Compute, Duration: 2},
		{Label: "c", Stream: Compute, Duration: 3},
	}
	tl := mustRun(t, ops, 1)
	if tl.Makespan != 6 {
		t.Errorf("makespan = %v, want 6 (FIFO serialization)", tl.Makespan)
	}
	if tl.Ops[1].Start != 1 || tl.Ops[2].Start != 3 {
		t.Errorf("starts = %v, %v; want 1, 3", tl.Ops[1].Start, tl.Ops[2].Start)
	}
}

func TestParallelStreams(t *testing.T) {
	ops := []Op{
		{Label: "compute", Stream: Compute, Duration: 3},
		{Label: "copy", Stream: H2D, Duration: 2},
	}
	tl := mustRun(t, ops, 1)
	if tl.Makespan != 3 {
		t.Errorf("makespan = %v, want 3 (streams overlap)", tl.Makespan)
	}
	if tl.Ops[1].Start != 0 {
		t.Errorf("copy should start at 0, got %v", tl.Ops[1].Start)
	}
}

func TestDependencyAcrossStreams(t *testing.T) {
	// Swap-in then compute: compute waits for the copy.
	ops := []Op{
		{Label: "in", Stream: H2D, Duration: 2},
		{Label: "use", Stream: Compute, Duration: 1, Deps: []int{0}},
	}
	tl := mustRun(t, ops, 1)
	if tl.Ops[1].Start != 2 {
		t.Errorf("compute start = %v, want 2", tl.Ops[1].Start)
	}
	if tl.Ops[1].Ready != 2 || tl.Ops[1].Stall() != 0 {
		t.Errorf("ready/stall wrong: %+v", tl.Ops[1])
	}
}

func TestStallAccounting(t *testing.T) {
	// Two compute ops; the second's dep finishes immediately but the
	// stream is busy until t=5 — a 5s stall.
	ops := []Op{
		{Label: "dep", Stream: H2D, Duration: 0},
		{Label: "long", Stream: Compute, Duration: 5},
		{Label: "stalled", Stream: Compute, Duration: 1, Deps: []int{0}},
	}
	tl := mustRun(t, ops, 1)
	if got := tl.Ops[2].Stall(); got != 5 {
		t.Errorf("stall = %v, want 5", got)
	}
}

func TestMemoryCapacityStalls(t *testing.T) {
	// Capacity 10: the second swap-in must wait until the first frees.
	ops := []Op{
		{Label: "in1", Stream: H2D, Duration: 1, AllocBytes: 8},
		{Label: "use1", Stream: Compute, Duration: 2, Deps: []int{0}},
		{Label: "out1", Stream: D2H, Duration: 1, Deps: []int{1}, FreeBytes: 8},
		{Label: "in2", Stream: H2D, Duration: 1, AllocBytes: 8},
		{Label: "use2", Stream: Compute, Duration: 2, Deps: []int{3}},
	}
	tl := mustRun(t, ops, 10)
	// in2 can only start once out1 completes at t=4.
	if tl.Ops[3].Start != 4 {
		t.Errorf("in2 start = %v, want 4 (memory stall)", tl.Ops[3].Start)
	}
	if tl.PeakMem != 8 {
		t.Errorf("peak mem = %v, want 8", tl.PeakMem)
	}
}

func TestMemoryOverlapWhenItFits(t *testing.T) {
	ops := []Op{
		{Label: "in1", Stream: H2D, Duration: 1, AllocBytes: 4},
		{Label: "in2", Stream: H2D, Duration: 1, AllocBytes: 4},
	}
	tl := mustRun(t, ops, 10)
	if tl.Ops[1].Start != 1 {
		t.Errorf("in2 start = %v, want 1 (FIFO on same stream)", tl.Ops[1].Start)
	}
	if tl.PeakMem != 8 {
		t.Errorf("peak = %v, want 8", tl.PeakMem)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Two 8-byte allocations under capacity 10 with no frees: the second
	// can never start, and nothing is running.
	ops := []Op{
		{Label: "in1", Stream: H2D, Duration: 1, AllocBytes: 8},
		{Label: "in2", Stream: H2D, Duration: 1, AllocBytes: 8},
	}
	_, err := Run(ops, 10)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		ops  []Op
	}{
		{"negative duration", []Op{{Stream: Compute, Duration: -1}}},
		{"negative alloc", []Op{{Stream: Compute, AllocBytes: -1}}},
		{"alloc exceeds capacity", []Op{{Stream: Compute, AllocBytes: 100}}},
		{"bad stream", []Op{{Stream: Stream(99)}}},
		//karma:plan-ok exercises Run's run-time rejection of out-of-range and self deps
		{"dep out of range", []Op{{Stream: Compute, Deps: []int{5}}}},
		//karma:plan-ok exercises Run's run-time rejection of self-referential deps
		{"forward dep", []Op{{Stream: Compute, Deps: []int{0}}}},
	}
	for _, c := range cases {
		if _, err := Run(c.ops, 10); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestOverFreeDetected(t *testing.T) {
	ops := []Op{{Label: "bad", Stream: Compute, Duration: 1, FreeBytes: 5}}
	if _, err := Run(ops, 10); err == nil {
		t.Error("freeing unallocated memory should error")
	}
}

func TestZeroDurationChains(t *testing.T) {
	// Zero-duration ops must complete and unblock dependents at the same
	// instant without deadlocking.
	ops := []Op{
		{Label: "a", Stream: Compute, Duration: 0},
		{Label: "b", Stream: H2D, Duration: 0, Deps: []int{0}},
		{Label: "c", Stream: Compute, Duration: 1, Deps: []int{1}},
	}
	tl := mustRun(t, ops, 1)
	if tl.Makespan != 1 {
		t.Errorf("makespan = %v, want 1", tl.Makespan)
	}
}

func TestOccupancyAndIdle(t *testing.T) {
	// compute(1) ... gap waiting for copy(3) ... compute(1):
	// busy 2, idle 2 within the compute window -> occupancy 0.5.
	ops := []Op{
		{Label: "c1", Stream: Compute, Duration: 1},
		{Label: "copy", Stream: H2D, Duration: 3},
		{Label: "c2", Stream: Compute, Duration: 1, Deps: []int{1}},
	}
	tl := mustRun(t, ops, 1)
	if idle := tl.ComputeIdle(ops); idle != 2 {
		t.Errorf("idle = %v, want 2", idle)
	}
	if occ := tl.Occupancy(ops); math.Abs(occ-0.5) > 1e-12 {
		t.Errorf("occupancy = %v, want 0.5", occ)
	}
}

func TestOccupancyNoComputeOps(t *testing.T) {
	ops := []Op{{Label: "copy", Stream: H2D, Duration: 1}}
	tl := mustRun(t, ops, 1)
	if occ := tl.Occupancy(ops); occ != 1 {
		t.Errorf("occupancy with no compute = %v, want 1", occ)
	}
}

func TestStreamString(t *testing.T) {
	names := map[Stream]string{Compute: "compute", H2D: "h2d", D2H: "d2h", HostCPU: "cpu", Network: "net"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if !strings.Contains(Stream(42).String(), "42") {
		t.Error("unknown stream should include its code")
	}
}

// Property: makespan is at least the busiest stream's total work and at
// most the sum of all durations (no time travel, no lost work).
func TestMakespanBounds(t *testing.T) {
	f := func(durs []uint8) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 24 {
			durs = durs[:24]
		}
		ops := make([]Op, len(durs))
		var sum unit.Seconds
		var perStream [numStreams]unit.Seconds
		for i, d := range durs {
			s := Stream(int(d) % int(numStreams))
			dur := unit.Seconds(d%7) * 0.5
			ops[i] = Op{Label: "x", Stream: s, Duration: dur}
			if i > 0 && d%3 == 0 {
				ops[i].Deps = []int{i - 1}
			}
			sum += dur
			perStream[s] += dur
		}
		tl, err := Run(ops, 1)
		if err != nil {
			return false
		}
		maxStream := unit.Seconds(0)
		for _, b := range perStream {
			if b > maxStream {
				maxStream = b
			}
		}
		return tl.Makespan >= maxStream && tl.Makespan <= sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: peak memory never exceeds capacity.
func TestPeakMemUnderCapacity(t *testing.T) {
	f := func(allocs []uint8) bool {
		if len(allocs) == 0 {
			return true
		}
		if len(allocs) > 16 {
			allocs = allocs[:16]
		}
		const capacity = 64
		ops := make([]Op, 0, 2*len(allocs))
		for _, a := range allocs {
			alloc := unit.Bytes(a % 32)
			i := len(ops)
			ops = append(ops, Op{Label: "in", Stream: H2D, Duration: 1, AllocBytes: alloc})
			ops = append(ops, Op{Label: "out", Stream: D2H, Duration: 1, Deps: []int{i}, FreeBytes: alloc})
		}
		tl, err := Run(ops, capacity)
		if err != nil {
			return false
		}
		return tl.PeakMem <= capacity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property (failure injection): inflating any single op's duration never
// shortens the makespan — the schedule has no anti-monotone anomalies.
func TestMakespanMonotoneUnderPerturbation(t *testing.T) {
	base := []Op{
		{Label: "F0", Stream: Compute, Duration: 1, AllocBytes: 4},
		{Label: "Sout0", Stream: D2H, Duration: 2, Deps: []int{0}, FreeBytes: 4},
		{Label: "F1", Stream: Compute, Duration: 1, AllocBytes: 4},
		{Label: "B1", Stream: Compute, Duration: 2, Deps: []int{2}, FreeBytes: 4},
		{Label: "Sin0", Stream: H2D, Duration: 2, Deps: []int{1}, AllocBytes: 4},
		{Label: "B0", Stream: Compute, Duration: 2, Deps: []int{4}, FreeBytes: 4},
	}
	ref, err := Run(base, 16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(idx uint8, extra uint8) bool {
		ops := make([]Op, len(base))
		copy(ops, base)
		i := int(idx) % len(ops)
		ops[i].Duration += unit.Seconds(extra%7) * 0.5
		tl, err := Run(ops, 16)
		if err != nil {
			return false
		}
		return tl.Makespan >= ref.Makespan
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adding capacity never slows the schedule down.
func TestMakespanMonotoneInCapacity(t *testing.T) {
	ops := []Op{
		{Label: "in1", Stream: H2D, Duration: 1, AllocBytes: 8},
		{Label: "use1", Stream: Compute, Duration: 2, Deps: []int{0}},
		{Label: "out1", Stream: D2H, Duration: 1, Deps: []int{1}, FreeBytes: 8},
		{Label: "in2", Stream: H2D, Duration: 1, AllocBytes: 8},
		{Label: "use2", Stream: Compute, Duration: 2, Deps: []int{3}, FreeBytes: 8},
	}
	tight, err := Run(ops, 10)
	if err != nil {
		t.Fatal(err)
	}
	roomy, err := Run(ops, 100)
	if err != nil {
		t.Fatal(err)
	}
	if roomy.Makespan > tight.Makespan {
		t.Errorf("more capacity slowed the schedule: %v vs %v", roomy.Makespan, tight.Makespan)
	}
	if roomy.Makespan == tight.Makespan {
		t.Error("this schedule should benefit from capacity (in2 stalls under 10)")
	}
}

// ---------------------------------------------------------------------------
// Distributed overlap: the Network stream concurrent with swap and compute
// ---------------------------------------------------------------------------

// TestNetworkOverlapsBackwardAndDrain models the distributed backward
// phase: per-block backward compute, gradient drains on D2H, and phased
// exchanges on the Network stream. The exchange must overlap the
// remaining backward work and the next drain, and the Network FIFO must
// account the second exchange's stall.
func TestNetworkOverlapsBackwardAndDrain(t *testing.T) {
	ops := []Op{
		{Label: "B2", Stream: Compute, Duration: 2},
		{Label: "drain2", Stream: D2H, Duration: 1, Deps: []int{0}},
		{Label: "B1", Stream: Compute, Duration: 2, Deps: []int{0}},
		{Label: "Ex2", Stream: Network, Duration: 3, Deps: []int{1}},
		{Label: "drain1", Stream: D2H, Duration: 1, Deps: []int{2}},
		{Label: "B0", Stream: Compute, Duration: 2, Deps: []int{2}},
		{Label: "Ex1", Stream: Network, Duration: 3, Deps: []int{4}},
	}
	tl := mustRun(t, ops, 1)
	// Ex2 launches as soon as drain2 lands (t=3), concurrent with B1
	// (2..4), drain1 (4..5) and B0 (4..6).
	if tl.Ops[3].Start != 3 {
		t.Errorf("Ex2 start = %v, want 3 (right after its drain)", tl.Ops[3].Start)
	}
	// Ex1's input is ready at t=5 but the Network stream is busy with
	// Ex2 until t=6: a 1s stall the accounting must attribute.
	if tl.Ops[6].Ready != 5 || tl.Ops[6].Start != 6 || tl.Ops[6].Stall() != 1 {
		t.Errorf("Ex1 ready/start/stall = %v/%v/%v, want 5/6/1",
			tl.Ops[6].Ready, tl.Ops[6].Start, tl.Ops[6].Stall())
	}
	// The iteration ends when the trailing exchange lands, not at the sum
	// of all durations (14): backward, drains and exchanges overlap.
	if tl.Makespan != 9 {
		t.Errorf("makespan = %v, want 9", tl.Makespan)
	}
	// Compute never idles: the exchange is fully off the critical path of
	// the compute stream.
	if idle := tl.ComputeIdle(ops); idle != 0 {
		t.Errorf("compute idle = %v, want 0", idle)
	}
	if tl.Busy[Network] != 6 {
		t.Errorf("network busy = %v, want 6", tl.Busy[Network])
	}
}

// TestHiddenExchangeDoesNotExtendMakespan: an exchange shorter than the
// remaining backward work is free; one issued after the last backward
// extends the makespan by exactly its duration.
func TestHiddenExchangeDoesNotExtendMakespan(t *testing.T) {
	hidden := []Op{
		{Label: "B1", Stream: Compute, Duration: 2},
		{Label: "Ex1", Stream: Network, Duration: 1, Deps: []int{0}},
		{Label: "B0", Stream: Compute, Duration: 4, Deps: []int{0}},
	}
	tl := mustRun(t, hidden, 1)
	if tl.Makespan != 6 {
		t.Errorf("hidden exchange: makespan = %v, want 6 (B0 ends last)", tl.Makespan)
	}
	trailing := []Op{
		{Label: "B1", Stream: Compute, Duration: 2},
		{Label: "B0", Stream: Compute, Duration: 1, Deps: []int{0}},
		{Label: "Ex0", Stream: Network, Duration: 5, Deps: []int{1}},
	}
	tl = mustRun(t, trailing, 1)
	if tl.Makespan != 8 {
		t.Errorf("trailing exchange: makespan = %v, want 8 (3 + 5)", tl.Makespan)
	}
}

// TestExchangeConcurrentWithSwapTraffic: gradient exchange on the
// Network stream must not contend with swap-out (D2H) or swap-in (H2D)
// traffic — three different streams running at once, with memory
// capacity still gating the swap-in.
func TestExchangeConcurrentWithSwapTraffic(t *testing.T) {
	ops := []Op{
		{Label: "B1", Stream: Compute, Duration: 1, FreeBytes: 6}, // backward frees its block
		{Label: "out1", Stream: D2H, Duration: 4, Deps: []int{0}}, // gradient drain
		{Label: "Ex1", Stream: Network, Duration: 4, Deps: []int{1}},
		{Label: "in0", Stream: H2D, Duration: 2, AllocBytes: 8}, // next block's prefetch
		{Label: "B0", Stream: Compute, Duration: 3, Deps: []int{3}, FreeBytes: 8},
	}
	// Capacity 10, 6 bytes held by B1's block at start: in0 (8 bytes)
	// must wait for B1's free at t=1 despite being dependency-free.
	start := []Op{{Label: "hold", Stream: Compute, Duration: 0, AllocBytes: 6}}
	all := append(start, ops...)
	for i := range all[1:] {
		for j := range all[1+i].Deps {
			all[1+i].Deps[j]++
		}
	}
	tl := mustRun(t, all, 10)
	if tl.Ops[4].Start != 1 {
		t.Errorf("in0 start = %v, want 1 (memory-gated, not dependency-gated)", tl.Ops[4].Start)
	}
	// Drain (1..5), exchange (5..9), prefetch (1..3) and B0 (3..6) all
	// overlap; the exchange tail is the makespan.
	if tl.Ops[2].Start != 1 || tl.Ops[2].End != 5 {
		t.Errorf("drain window = %v..%v, want 1..5", tl.Ops[2].Start, tl.Ops[2].End)
	}
	if tl.Makespan != 9 {
		t.Errorf("makespan = %v, want 9 (trailing exchange)", tl.Makespan)
	}
}

// TestTieHeavyRunsAreIdentical is the regression test for the heap
// rewrite that removed the `running` map from the scheduling core: with
// a map, Go's randomized iteration order could retire same-instant
// completions in a different order each run, and under memory pressure
// that reorder changes which head-of-line op fits first. The plan below
// is tie-heavy by construction — every stream finishes work at the same
// instants, zero-duration ops pile onto those instants, and frees race
// allocations at full capacity — so any iteration-order dependence shows
// up as a differing timeline across repetitions.
func TestTieHeavyRunsAreIdentical(t *testing.T) {
	var ops []Op
	streams := []Stream{Compute, H2D, D2H, HostCPU, Network, NVLink}
	// Wave 0: one unit-duration op per stream, all ending at t=1, each
	// holding 2 bytes of a 12-byte device pool (exactly full).
	for _, s := range streams {
		ops = append(ops, Op{
			Label: "w0-" + s.String(), Stream: s, Duration: 1,
			AllocBytes: 2, FreeBytes: 2,
		})
	}
	// Wave 1: per stream, a zero-duration op and a unit op, both gated
	// on EVERY wave-0 op — six completions retire at the same t=1 tick,
	// and six allocations contend for the memory they free.
	deps := []int{0, 1, 2, 3, 4, 5}
	for _, s := range streams {
		ops = append(ops, Op{
			Label: "w1z-" + s.String(), Stream: s, Duration: 0,
			Deps: append([]int(nil), deps...),
		})
		ops = append(ops, Op{
			Label: "w1-" + s.String(), Stream: s, Duration: 1,
			Deps:       append([]int(nil), deps...),
			AllocBytes: 2, FreeBytes: 2,
		})
	}
	// Wave 2: cross-stream pairs finishing at t=3 with alloc==free
	// hand-offs, keeping the pool exactly full through the ties.
	base := len(ops)
	for i, s := range streams {
		peer := streams[(i+1)%len(streams)]
		ops = append(ops, Op{
			Label: "w2-" + s.String(), Stream: peer, Duration: 1,
			Deps:       []int{base - 12 + 2*i + 1}, // this stream's w1 op
			AllocBytes: 2, FreeBytes: 2,
		})
	}

	const capacity = 12
	want := mustRun(t, ops, capacity)
	wantOps := append([]OpResult(nil), want.Ops...)

	// Fresh runs and a reused Runner must reproduce the timeline
	// exactly. 50 repetitions gives a map-ordered core (6+ same-instant
	// completions per tick) no realistic chance of passing by luck.
	var r Runner
	for rep := 0; rep < 50; rep++ {
		fresh := mustRun(t, ops, capacity)
		reused, err := r.Run(ops, capacity)
		if err != nil {
			t.Fatalf("rep %d: Runner.Run: %v", rep, err)
		}
		for name, tl := range map[string]*Timeline{"fresh": fresh, "reused": reused} {
			if tl.Makespan != want.Makespan || tl.PeakMem != want.PeakMem {
				t.Fatalf("rep %d (%s): makespan/peak = %v/%v, want %v/%v",
					rep, name, tl.Makespan, tl.PeakMem, want.Makespan, want.PeakMem)
			}
			for i := range wantOps {
				if tl.Ops[i] != wantOps[i] {
					t.Fatalf("rep %d (%s): op %d (%s) = %+v, want %+v",
						rep, name, i, ops[i].Label, tl.Ops[i], wantOps[i])
				}
			}
		}
	}
}
