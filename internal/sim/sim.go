// Package sim is a discrete-event simulator for a single accelerator with
// concurrent hardware streams (compute, H2D copy, D2H copy, host CPU,
// network) and a finite device-memory pool.
//
// It substitutes for the CUDA execution substrate of the paper: plans
// compiled from KARMA's (or a baseline's) schedule become a DAG of timed
// ops; the simulator plays them out under the same rules CUDA streams
// obey — FIFO order per stream, cross-stream dependencies via events, and
// copy/compute overlap — plus an explicit capacity constraint that makes
// swap-ins wait for buffers to free, the mechanism behind Eqs. (3)–(8).
package sim

import (
	"fmt"
	"math"

	"karma/internal/unit"
)

// Stream identifies a hardware queue. Ops on the same stream execute in
// submission order; different streams overlap.
type Stream int

// The simulated hardware streams.
const (
	Compute Stream = iota // device math
	H2D                   // host-to-device copies (swap-in)
	D2H                   // device-to-host copies (swap-out)
	HostCPU               // CPU-side compute (weight updates)
	Network               // inter-node collective communication
	NVLink                // intra-node collective communication
	numStreams
)

// String names the stream.
func (s Stream) String() string {
	switch s {
	case Compute:
		return "compute"
	case H2D:
		return "h2d"
	case D2H:
		return "d2h"
	case HostCPU:
		return "cpu"
	case Network:
		return "net"
	case NVLink:
		return "nvlink"
	default:
		return fmt.Sprintf("stream(%d)", int(s))
	}
}

// Op is one scheduled operation.
type Op struct {
	// Label is free-form and used in reports ("B4", "SwapIn3", ...).
	Label string
	// Stream this op executes on.
	Stream Stream
	// Duration of execution once started.
	Duration unit.Seconds
	// Deps are indices (into the ops slice) of operations that must have
	// finished before this op starts.
	Deps []int
	// AllocBytes is device memory acquired when the op starts (swap-in
	// buffers, compute outputs). The op waits until it fits.
	AllocBytes unit.Bytes
	// FreeBytes is device memory released when the op ends (swap-out
	// payloads, consumed activations).
	FreeBytes unit.Bytes
}

// OpResult is the simulated execution record of one op.
type OpResult struct {
	Start unit.Seconds
	End   unit.Seconds
	// Ready is the instant all dependencies had finished; Start - Ready
	// is the stall attributable to stream occupancy or memory pressure.
	Ready unit.Seconds
}

// Stall returns how long the op waited after its inputs were ready.
func (r OpResult) Stall() unit.Seconds { return r.Start - r.Ready }

// Timeline is the full simulation outcome.
type Timeline struct {
	Ops      []OpResult
	Makespan unit.Seconds
	PeakMem  unit.Bytes
	// Busy accumulates execution time per stream.
	Busy [numStreams]unit.Seconds
}

// ComputeIdle returns the idle time on the compute stream between its
// first start and last end — the T_idle of the occupancy definition,
// Eq. (1).
func (t *Timeline) ComputeIdle(ops []Op) unit.Seconds {
	first := unit.Seconds(math.Inf(1))
	last := unit.Seconds(math.Inf(-1))
	var busy unit.Seconds
	for i, o := range ops {
		if o.Stream != Compute {
			continue
		}
		r := t.Ops[i]
		if r.Start < first {
			first = r.Start
		}
		if r.End > last {
			last = r.End
		}
		busy += r.End - r.Start
	}
	if math.IsInf(float64(first), 1) {
		return 0
	}
	return (last - first) - busy
}

// Occupancy returns busy/(busy+idle) on the compute stream, Eq. (1).
func (t *Timeline) Occupancy(ops []Op) float64 {
	idle := t.ComputeIdle(ops)
	busy := t.Busy[Compute]
	if busy+idle <= 0 {
		return 1
	}
	return float64(busy) / float64(busy+idle)
}

// Run simulates the op DAG against the given device memory capacity.
// It returns an error for malformed inputs (bad deps, single allocations
// exceeding capacity) and for deadlocks (no runnable op while work
// remains, e.g. a schedule whose working set cannot fit).
//
// Run allocates a fresh Runner per call; callers replaying many
// same-shape plans (the planner's candidate search) should hold a Runner
// and reuse it.
func Run(ops []Op, capacity unit.Bytes) (*Timeline, error) {
	return new(Runner).Run(ops, capacity)
}

// event is one scheduled completion in the Runner's min-heap, ordered by
// (time, op index) — the index tie-break keeps same-instant completions
// in submission order, so the core is deterministic by construction
// rather than by the commutativity of its updates.
type event struct {
	at unit.Seconds
	op int
}

// Runner is a reusable discrete-event simulation core. Its timeline,
// per-stream queues and completion heap are retained between Run calls,
// so replaying plans of the same shape allocates nothing after the first
// run. A Runner is not safe for concurrent use, and the returned
// Timeline is overwritten by the next Run call — callers that keep a
// timeline across runs must copy it (or use the package-level Run, which
// never reuses).
type Runner struct {
	tl    Timeline
	done  []bool
	endAt []unit.Seconds
	// Per-stream FIFO queues of op indices.
	queues [numStreams][]int
	heap   []event // pending completions, min-ordered by (at, op)
}

// reset sizes the buffers for n ops and clears previous-run state.
func (r *Runner) reset(n int) {
	if cap(r.done) < n {
		r.done = make([]bool, n)
	}
	if cap(r.endAt) < n {
		r.endAt = make([]unit.Seconds, n)
	}
	if cap(r.tl.Ops) < n {
		r.tl.Ops = make([]OpResult, n)
	}
	r.done = r.done[:n]
	r.endAt = r.endAt[:n]
	r.tl.Ops = r.tl.Ops[:n]
	for i := 0; i < n; i++ {
		r.done[i] = false
		r.endAt[i] = 0
		r.tl.Ops[i] = OpResult{}
	}
	r.tl.Makespan = 0
	r.tl.PeakMem = 0
	r.tl.Busy = [numStreams]unit.Seconds{}
	r.heap = r.heap[:0]
	for s := range r.queues {
		r.queues[s] = r.queues[s][:0]
	}
}

// push adds a completion event, keeping the heap ordered by (at, op).
func (r *Runner) push(e event) {
	r.heap = append(r.heap, e)
	i := len(r.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		p := r.heap[parent]
		if p.at < e.at || (p.at == e.at && p.op < e.op) {
			break
		}
		r.heap[i] = p
		i = parent
	}
	r.heap[i] = e
}

// pop removes the earliest completion event.
func (r *Runner) pop() event {
	top := r.heap[0]
	last := len(r.heap) - 1
	e := r.heap[last]
	r.heap = r.heap[:last]
	if last == 0 {
		return top
	}
	i := 0
	for {
		l, rt := 2*i+1, 2*i+2
		small := l
		if l >= last {
			break
		}
		if rt < last {
			a, b := r.heap[l], r.heap[rt]
			if b.at < a.at || (b.at == a.at && b.op < a.op) {
				small = rt
			}
		}
		c := r.heap[small]
		if e.at < c.at || (e.at == c.at && e.op < c.op) {
			break
		}
		r.heap[i] = c
		i = small
	}
	r.heap[i] = e
	return top
}

// Run simulates the op DAG against the given device memory capacity,
// reusing the Runner's buffers. Semantics are identical to the
// package-level Run.
func (r *Runner) Run(ops []Op, capacity unit.Bytes) (*Timeline, error) {
	for i, o := range ops {
		if o.Duration < 0 {
			return nil, fmt.Errorf("sim: op %d (%s): negative duration", i, o.Label)
		}
		if o.AllocBytes < 0 || o.FreeBytes < 0 {
			return nil, fmt.Errorf("sim: op %d (%s): negative memory delta", i, o.Label)
		}
		if o.AllocBytes > capacity {
			return nil, fmt.Errorf("sim: op %d (%s): allocation %v exceeds capacity %v",
				i, o.Label, o.AllocBytes, capacity)
		}
		if o.Stream < 0 || o.Stream >= numStreams {
			return nil, fmt.Errorf("sim: op %d (%s): unknown stream %d", i, o.Label, o.Stream)
		}
		for _, d := range o.Deps {
			if d < 0 || d >= len(ops) {
				return nil, fmt.Errorf("sim: op %d (%s): dep %d out of range", i, o.Label, d)
			}
			if d >= i {
				return nil, fmt.Errorf("sim: op %d (%s): forward dep %d (ops must be topological)", i, o.Label, d)
			}
		}
	}

	r.reset(len(ops))
	tl := &r.tl
	done := r.done
	endAt := r.endAt
	for i, o := range ops {
		r.queues[o.Stream] = append(r.queues[o.Stream], i)
	}
	queues := &r.queues
	var qpos [numStreams]int
	var streamFree [numStreams]unit.Seconds

	var memUsed unit.Bytes
	now := unit.Seconds(0)
	remaining := len(ops)

	depsReady := func(i int) (unit.Seconds, bool) {
		ready := unit.Seconds(0)
		for _, d := range ops[i].Deps {
			if !done[d] {
				return 0, false
			}
			if endAt[d] > ready {
				ready = endAt[d]
			}
		}
		return ready, true
	}
	// complete retires every pending completion due by `now`, in
	// (time, index) order off the heap.
	complete := func() error {
		for len(r.heap) > 0 && r.heap[0].at <= now {
			e := r.pop()
			done[e.op] = true
			memUsed -= ops[e.op].FreeBytes
			if memUsed < 0 {
				return fmt.Errorf("sim: op %d (%s) frees more memory than allocated", e.op, ops[e.op].Label)
			}
			remaining--
		}
		return nil
	}

	for remaining > 0 {
		// Complete everything that has finished by `now`.
		if err := complete(); err != nil {
			return nil, err
		}

		// Start every op that can run at `now`.
		progressed := true
		for progressed {
			progressed = false
			for s := Stream(0); s < numStreams; s++ {
				for qpos[s] < len(queues[s]) {
					i := queues[s][qpos[s]]
					ready, ok := depsReady(i)
					if !ok || ready > now || streamFree[s] > now {
						break
					}
					if memUsed+ops[i].AllocBytes > capacity {
						break // head-of-line blocks on memory, like a real stream
					}
					memUsed += ops[i].AllocBytes
					if memUsed > tl.PeakMem {
						tl.PeakMem = memUsed
					}
					end := now + ops[i].Duration
					tl.Ops[i] = OpResult{Start: now, End: end, Ready: ready}
					endAt[i] = end
					tl.Busy[s] += ops[i].Duration
					streamFree[s] = end
					r.push(event{at: end, op: i})
					qpos[s]++
					progressed = true
				}
			}
			if progressed {
				// A newly started zero-duration op may complete immediately
				// and unblock others at the same instant.
				if err := complete(); err != nil {
					return nil, err
				}
			}
		}

		if remaining == 0 {
			break
		}

		// Advance time to the next completion.
		if len(r.heap) == 0 {
			return nil, deadlockError(ops, done, memUsed, capacity)
		}
		now = r.heap[0].at
		if now > tl.Makespan {
			tl.Makespan = now
		}
	}
	// Makespan is the latest end.
	for i := range ops {
		if endAt[i] > tl.Makespan {
			tl.Makespan = endAt[i]
		}
	}
	return tl, nil
}

func deadlockError(ops []Op, done []bool, memUsed, capacity unit.Bytes) error {
	pending := 0
	first := ""
	for i := range ops {
		if !done[i] {
			pending++
			if first == "" {
				first = ops[i].Label
			}
		}
	}
	return fmt.Errorf("sim: deadlock with %d ops pending (first %q): working set does not fit (%v used of %v)",
		pending, first, memUsed, capacity)
}
