package hw

import (
	"testing"

	"karma/internal/tensor"
	"karma/internal/topo"
	"karma/internal/unit"
)

func TestV100Preset(t *testing.T) {
	d := V100()
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.MemCapacity != 16*unit.GiB {
		t.Errorf("V100 capacity = %v, want 16 GiB (Table II)", d.MemCapacity)
	}
	if d.UsableMem() >= d.MemCapacity || d.UsableMem() <= 0 {
		t.Errorf("UsableMem = %v out of range", d.UsableMem())
	}
	if got := d.SustainedFLOPS(); got <= 0 || got >= d.PeakFLOPS {
		t.Errorf("SustainedFLOPS = %v, want in (0, peak)", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []Device{
		{Name: "no-mem", PeakFLOPS: 1, Efficiency: 0.5, MemBW: 1},
		{Name: "reserved>cap", MemCapacity: 10, Reserved: 10, PeakFLOPS: 1, Efficiency: 0.5, MemBW: 1},
		{Name: "no-flops", MemCapacity: 10, Efficiency: 0.5, MemBW: 1},
		{Name: "eff>1", MemCapacity: 10, PeakFLOPS: 1, Efficiency: 1.5, MemBW: 1},
		{Name: "no-bw", MemCapacity: 10, PeakFLOPS: 1, Efficiency: 0.5},
	}
	for _, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", d.Name)
		}
	}
}

func TestSwapThroughputIsMin(t *testing.T) {
	n := ABCINode()
	// Eq. (4): the PCIe link is the bottleneck on an ABCI node.
	if got := SwapThroughput(n); got != n.Link.BWPerDirection {
		t.Errorf("SwapThroughput = %v, want link bw %v", got, n.Link.BWPerDirection)
	}
	// A slower host memory should become the bottleneck.
	n.Host.MemBW = 1 * unit.GBps
	if got := SwapThroughput(n); got != 1*unit.GBps {
		t.Errorf("SwapThroughput = %v, want 1 GB/s", got)
	}
}

func TestABCICluster(t *testing.T) {
	c := ABCI()
	if got := c.TotalDevices(); got != 4352 {
		t.Errorf("ABCI devices = %d, want 4352 (Table II)", got)
	}
	if c.Node.Devices != 4 {
		t.Errorf("devices per node = %d, want 4", c.Node.Devices)
	}
	if c.NetBW != 12.5*unit.GBps {
		t.Errorf("net bw = %v, want 12.5 GB/s", c.NetBW)
	}
}

func TestWithDevices(t *testing.T) {
	c := ABCI()
	for _, want := range []int{128, 512, 2048} {
		r := c.WithDevices(want)
		if got := r.TotalDevices(); got != want {
			t.Errorf("WithDevices(%d) = %d devices", want, got)
		}
	}
	// Rounds up to whole nodes.
	r := c.WithDevices(5)
	if r.Nodes != 2 {
		t.Errorf("WithDevices(5) nodes = %d, want 2", r.Nodes)
	}
}

func TestHostSustained(t *testing.T) {
	h := ABCIHost()
	if h.SustainedFLOPS() <= 0 || h.SustainedFLOPS() >= h.PeakFLOPS {
		t.Errorf("host sustained = %v out of range", h.SustainedFLOPS())
	}
	// The paper's premise: CPU update is much slower than GPU compute.
	if float64(h.SustainedFLOPS()) >= float64(V100().SustainedFLOPS()) {
		t.Error("host must be slower than device")
	}
}

func TestPCIeMatchesTableII(t *testing.T) {
	l := PCIeGen3x16()
	if l.BWPerDirection != 16*unit.GBps {
		t.Errorf("PCIe bw = %v, want 16 GB/s", l.BWPerDirection)
	}
}

func TestTensorCoreBoost(t *testing.T) {
	d := V100()
	if got := d.SustainedFLOPSFor(tensor.FP16); got != d.SustainedFLOPS() {
		t.Errorf("boost off: fp16 rate %v should equal fp32 rate %v", got, d.SustainedFLOPS())
	}
	b := d.WithTensorCores(4)
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := b.SustainedFLOPSFor(tensor.FP16), unit.FLOPSRate(4*float64(d.SustainedFLOPS())); got != want {
		t.Errorf("boosted fp16 rate = %v, want %v", got, want)
	}
	// fp32 math never rides the tensor cores in this model.
	if got := b.SustainedFLOPSFor(tensor.FP32); got != d.SustainedFLOPS() {
		t.Errorf("boosted fp32 rate = %v, want unchanged %v", got, d.SustainedFLOPS())
	}
	bad := d
	bad.TensorCoreBoost = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative boost should fail validation")
	}
}

func TestClusterTopoDefaultsToFlat(t *testing.T) {
	c := ABCI()
	tp := c.Topo()
	if tp.Name != "flat" {
		t.Fatalf("unset topology should derive flat, got %q", tp.Name)
	}
	if tp.NICs != 1 || tp.NICBW != c.NetBW {
		t.Errorf("flat topology carries %d NICs at %v, want 1 at %v", tp.NICs, tp.NICBW, c.NetBW)
	}
	if tp.DevicesPerNode != c.Node.Devices || tp.IntraBW != c.Node.IntraBW {
		t.Errorf("intra-node tier %d/%v not filled from node %d/%v",
			tp.DevicesPerNode, tp.IntraBW, c.Node.Devices, c.Node.IntraBW)
	}
	if err := tp.Validate(); err != nil {
		t.Errorf("derived topology invalid: %v", err)
	}
}

func TestClusterWithTopology(t *testing.T) {
	c := ABCI().WithTopology(topo.ABCI())
	tp := c.Topo()
	if tp.Name != "abci" || tp.NICs != 2 {
		t.Fatalf("Topo() = %+v, want the abci preset", tp)
	}
	// The node shape always comes from the cluster, never the preset.
	if tp.DevicesPerNode != 4 || tp.IntraBW != 50*unit.GBps {
		t.Errorf("intra tier %d/%v, want 4/50 GB/s", tp.DevicesPerNode, tp.IntraBW)
	}
	if err := tp.Validate(); err != nil {
		t.Errorf("abci topology invalid: %v", err)
	}
	// Resizing the cluster preserves the topology.
	if got := c.WithDevices(512).Topo().Name; got != "abci" {
		t.Errorf("WithDevices dropped the topology: %q", got)
	}
}
