package hw

import (
	"testing"

	"karma/internal/unit"
)

func TestV100Preset(t *testing.T) {
	d := V100()
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.MemCapacity != 16*unit.GiB {
		t.Errorf("V100 capacity = %v, want 16 GiB (Table II)", d.MemCapacity)
	}
	if d.UsableMem() >= d.MemCapacity || d.UsableMem() <= 0 {
		t.Errorf("UsableMem = %v out of range", d.UsableMem())
	}
	if got := d.SustainedFLOPS(); got <= 0 || got >= d.PeakFLOPS {
		t.Errorf("SustainedFLOPS = %v, want in (0, peak)", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []Device{
		{Name: "no-mem", PeakFLOPS: 1, Efficiency: 0.5, MemBW: 1},
		{Name: "reserved>cap", MemCapacity: 10, Reserved: 10, PeakFLOPS: 1, Efficiency: 0.5, MemBW: 1},
		{Name: "no-flops", MemCapacity: 10, Efficiency: 0.5, MemBW: 1},
		{Name: "eff>1", MemCapacity: 10, PeakFLOPS: 1, Efficiency: 1.5, MemBW: 1},
		{Name: "no-bw", MemCapacity: 10, PeakFLOPS: 1, Efficiency: 0.5},
	}
	for _, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", d.Name)
		}
	}
}

func TestSwapThroughputIsMin(t *testing.T) {
	n := ABCINode()
	// Eq. (4): the PCIe link is the bottleneck on an ABCI node.
	if got := SwapThroughput(n); got != n.Link.BWPerDirection {
		t.Errorf("SwapThroughput = %v, want link bw %v", got, n.Link.BWPerDirection)
	}
	// A slower host memory should become the bottleneck.
	n.Host.MemBW = 1 * unit.GBps
	if got := SwapThroughput(n); got != 1*unit.GBps {
		t.Errorf("SwapThroughput = %v, want 1 GB/s", got)
	}
}

func TestABCICluster(t *testing.T) {
	c := ABCI()
	if got := c.TotalDevices(); got != 4352 {
		t.Errorf("ABCI devices = %d, want 4352 (Table II)", got)
	}
	if c.Node.Devices != 4 {
		t.Errorf("devices per node = %d, want 4", c.Node.Devices)
	}
	if c.NetBW != 12.5*unit.GBps {
		t.Errorf("net bw = %v, want 12.5 GB/s", c.NetBW)
	}
}

func TestWithDevices(t *testing.T) {
	c := ABCI()
	for _, want := range []int{128, 512, 2048} {
		r := c.WithDevices(want)
		if got := r.TotalDevices(); got != want {
			t.Errorf("WithDevices(%d) = %d devices", want, got)
		}
	}
	// Rounds up to whole nodes.
	r := c.WithDevices(5)
	if r.Nodes != 2 {
		t.Errorf("WithDevices(5) nodes = %d, want 2", r.Nodes)
	}
}

func TestHostSustained(t *testing.T) {
	h := ABCIHost()
	if h.SustainedFLOPS() <= 0 || h.SustainedFLOPS() >= h.PeakFLOPS {
		t.Errorf("host sustained = %v out of range", h.SustainedFLOPS())
	}
	// The paper's premise: CPU update is much slower than GPU compute.
	if float64(h.SustainedFLOPS()) >= float64(V100().SustainedFLOPS()) {
		t.Error("host must be slower than device")
	}
}

func TestPCIeMatchesTableII(t *testing.T) {
	l := PCIeGen3x16()
	if l.BWPerDirection != 16*unit.GBps {
		t.Errorf("PCIe bw = %v, want 16 GB/s", l.BWPerDirection)
	}
}
