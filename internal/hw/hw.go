// Package hw describes the hardware the performance model runs against:
// accelerator devices (near memory), hosts (far memory), the interconnect
// between them, and multi-node clusters. Presets mirror the ABCI
// supercomputer used in the paper's evaluation (Table II).
package hw

import (
	"fmt"

	"karma/internal/tensor"
	"karma/internal/topo"
	"karma/internal/unit"
)

// Device models an accelerator: its dedicated (near) memory and compute
// throughput. Efficiency folds achievable-vs-peak utilization into one
// factor; per-layer deviations are handled by the cost model.
type Device struct {
	Name string
	// MemCapacity is the dedicated device memory (near memory).
	MemCapacity unit.Bytes
	// Reserved is memory unavailable to tensors (CUDA context, cuDNN
	// workspaces, allocator slack) — the profiler subtracts it.
	Reserved unit.Bytes
	// PeakFLOPS is the peak dense-math throughput.
	PeakFLOPS unit.FLOPSRate
	// Efficiency is the sustained fraction of peak for DL kernels.
	Efficiency float64
	// MemBW is the device (near) memory bandwidth.
	MemBW unit.BytesPerSec
	// TensorCoreBoost multiplies the sustained rate for fp16 math that
	// can ride the tensor cores (SustainedFLOPSFor). Zero disables the
	// boost — the seed model's behavior, where compute rates are held
	// constant across precisions so precision sweeps isolate memory
	// effects. Set it (e.g. ~4 for a V100's achievable mixed-precision
	// speedup on transformer GEMMs) to model the tensor-core lever the
	// ROADMAP names.
	TensorCoreBoost float64
}

// UsableMem returns the capacity available for tensors.
func (d Device) UsableMem() unit.Bytes { return d.MemCapacity - d.Reserved }

// SustainedFLOPS returns the effective compute rate for full-precision
// math.
func (d Device) SustainedFLOPS() unit.FLOPSRate {
	return unit.FLOPSRate(float64(d.PeakFLOPS) * d.Efficiency)
}

// SustainedFLOPSFor returns the effective compute rate for math at the
// given element type: the fp32 sustained rate, scaled by TensorCoreBoost
// for fp16 when the boost is enabled.
func (d Device) SustainedFLOPSFor(dt tensor.DType) unit.FLOPSRate {
	r := d.SustainedFLOPS()
	if dt == tensor.FP16 && d.TensorCoreBoost > 0 {
		r = unit.FLOPSRate(float64(r) * d.TensorCoreBoost)
	}
	return r
}

// WithTensorCores returns a copy of the device with the fp16 tensor-core
// boost enabled at the given sustained-speedup factor.
func (d Device) WithTensorCores(boost float64) Device {
	d.TensorCoreBoost = boost
	return d
}

// Validate reports configuration errors.
func (d Device) Validate() error {
	if d.MemCapacity <= 0 || d.Reserved < 0 || d.Reserved >= d.MemCapacity {
		return fmt.Errorf("hw: device %s: bad memory config (cap=%v reserved=%v)", d.Name, d.MemCapacity, d.Reserved)
	}
	if d.PeakFLOPS <= 0 || d.Efficiency <= 0 || d.Efficiency > 1 {
		return fmt.Errorf("hw: device %s: bad compute config", d.Name)
	}
	if d.MemBW <= 0 {
		return fmt.Errorf("hw: device %s: bad memory bandwidth", d.Name)
	}
	if d.TensorCoreBoost < 0 {
		return fmt.Errorf("hw: device %s: negative tensor-core boost %g", d.Name, d.TensorCoreBoost)
	}
	return nil
}

// Host models the CPU side: far memory and the host compute rate used for
// CPU-side weight updates (§III-G stage 5).
type Host struct {
	Name      string
	MemBW     unit.BytesPerSec
	PeakFLOPS unit.FLOPSRate
	// Efficiency is the sustained fraction of peak for the SGD update
	// kernel (bandwidth-bound stream operation).
	Efficiency float64
}

// SustainedFLOPS returns the effective host compute rate.
func (h Host) SustainedFLOPS() unit.FLOPSRate {
	return unit.FLOPSRate(float64(h.PeakFLOPS) * h.Efficiency)
}

// Link models the bidirectional device<->host interconnect.
type Link struct {
	Name string
	// BWPerDirection is the bandwidth available to each direction
	// simultaneously (PCIe and NVLink are full duplex — the paper's
	// overlap of swap-in with swap-out depends on this).
	BWPerDirection unit.BytesPerSec
	Latency        unit.Seconds
}

// Node is one machine: devices sharing a host over a link.
type Node struct {
	Name    string
	Device  Device
	Devices int
	Host    Host
	Link    Link
	// IntraBW is the device-to-device bandwidth inside the node (NVLink).
	IntraBW unit.BytesPerSec
}

// Cluster is a multi-node system joined by a network.
type Cluster struct {
	Name  string
	Node  Node
	Nodes int
	// NetBW is the injection bandwidth per node.
	NetBW unit.BytesPerSec
	// NetLatency is the per-message network latency.
	NetLatency unit.Seconds
	// Topology is the hierarchical interconnect model collectives route
	// over (internal/topo). The zero value keeps the seed behavior: a
	// flat single-rail fabric at NetBW, costed exactly like the old
	// contended-ring closed forms. Set it (topo.ABCI(), topo.FatTree(r),
	// or a hand-built Topology) to model rails, switch hops and
	// oversubscription.
	Topology topo.Topology
}

// TotalDevices returns the device count across the cluster.
func (c Cluster) TotalDevices() int { return c.Nodes * c.Node.Devices }

// Topo returns the cluster's interconnect topology with the intra-node
// tier filled in from the node shape — the single source the collective
// engine routes over. An unset Topology derives the flat model from the
// legacy NetBW field, reproducing the seed's contended-ring numbers
// exactly.
func (c Cluster) Topo() topo.Topology {
	t := c.Topology
	if t.IsZero() {
		t = topo.Flat(c.NetBW)
	}
	return t.WithNode(c.Node.Devices, c.Node.IntraBW)
}

// WithTopology returns a copy of the cluster routing its collectives
// over the given interconnect model.
func (c Cluster) WithTopology(t topo.Topology) Cluster {
	c.Topology = t
	return c
}

// SwapThroughput returns the effective block swap throughput of Eq. (4):
// the minimum of far-memory, near-memory and interconnect throughput.
func SwapThroughput(n Node) unit.BytesPerSec {
	bw := n.Link.BWPerDirection
	if n.Host.MemBW < bw {
		bw = n.Host.MemBW
	}
	if n.Device.MemBW < bw {
		bw = n.Device.MemBW
	}
	return bw
}

// V100 returns the Tesla V100 SXM2 16 GiB of Table II. Peak is the Tensor
// Core-less FP32 rate the paper quotes (14.7 TFLOP/s, ~62% sustained on
// cuDNN convolution benchmarks).
func V100() Device {
	return Device{
		Name:        "V100-SXM2-16GB",
		MemCapacity: 16 * unit.GiB,
		Reserved:    unit.Bytes(1.25 * float64(unit.GiB)),
		PeakFLOPS:   unit.FLOPSRate(14.7e12),
		Efficiency:  0.62,
		MemBW:       900 * unit.GBps,
	}
}

// ABCIHost returns the dual Xeon Gold 6148 host of an ABCI node.
func ABCIHost() Host {
	return Host{
		Name:  "2x Xeon Gold 6148",
		MemBW: 255 * unit.GBps, // 6 channels DDR4-2666 x 2 sockets
		// 2 sockets x 20 cores x 2 FMA AVX-512 x 16 lanes x 2 ops x 2.4 GHz
		PeakFLOPS:  unit.FLOPSRate(3.07e12),
		Efficiency: 0.25, // SGD update is a stream kernel, memory bound
	}
}

// PCIeGen3x16 returns the host link of Table II (16 GB/s per direction).
func PCIeGen3x16() Link {
	return Link{Name: "PCIe Gen3 x16", BWPerDirection: 16 * unit.GBps, Latency: 10e-6}
}

// ABCINode returns one ABCI compute node: 4x V100 over PCIe with NVLink
// between devices (50 GB/s, Table II).
func ABCINode() Node {
	return Node{
		Name:    "abci-node",
		Device:  V100(),
		Devices: 4,
		Host:    ABCIHost(),
		Link:    PCIeGen3x16(),
		IntraBW: 50 * unit.GBps,
	}
}

// ABCI returns the full ABCI cluster: 1,088 nodes (4,352 GPUs) on dual-rail
// EDR InfiniBand (12.5 GB/s, Table II).
func ABCI() Cluster {
	return Cluster{
		Name:       "ABCI",
		Node:       ABCINode(),
		Nodes:      1088,
		NetBW:      12.5 * unit.GBps,
		NetLatency: 2e-6,
	}
}

// WithDevices returns a copy of the cluster resized to the given total
// device count (rounded up to whole nodes), for GPU-count sweeps (Fig. 8).
func (c Cluster) WithDevices(total int) Cluster {
	perNode := c.Node.Devices
	nodes := (total + perNode - 1) / perNode
	out := c
	out.Nodes = nodes
	return out
}
