// Package trace renders simulated timelines for humans and tools: an
// ASCII Gantt chart of the multi-stream pipeline (what the paper's
// Fig. 2/3 sketches show) and the Chrome trace-event JSON format
// (chrome://tracing, Perfetto) for interactive inspection.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"karma/internal/sim"
	"karma/internal/unit"
)

// Event is one op's execution record paired with its identity.
type Event struct {
	Label  string
	Stream sim.Stream
	Start  unit.Seconds
	End    unit.Seconds
}

// Collect pairs ops with their simulated results. Zero-duration ops
// (barriers, markers, ops whose cost rounded to nothing) are kept:
// WriteChrome renders them as instant events so they stay visible in
// exported traces instead of silently disappearing.
func Collect(ops []sim.Op, tl *sim.Timeline) []Event {
	out := make([]Event, 0, len(ops))
	for i, op := range ops {
		r := tl.Ops[i]
		out = append(out, Event{Label: op.Label, Stream: op.Stream, Start: r.Start, End: r.End})
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Stream != out[b].Stream {
			return out[a].Stream < out[b].Stream
		}
		return out[a].Start < out[b].Start
	})
	return out
}

// Gantt writes an ASCII chart with one row per stream, `width` columns
// spanning the makespan. Each op paints its span with the first rune of
// its label; overlaps within a stream (impossible by FIFO, but kept
// robust) paint left to right.
func Gantt(w io.Writer, events []Event, makespan unit.Seconds, width int) error {
	if width < 10 {
		width = 10
	}
	if makespan <= 0 {
		_, err := fmt.Fprintln(w, "(empty timeline)")
		return err
	}
	streams := map[sim.Stream][]Event{}
	var order []sim.Stream
	for _, e := range events {
		if _, ok := streams[e.Stream]; !ok {
			order = append(order, e.Stream)
		}
		streams[e.Stream] = append(streams[e.Stream], e)
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })

	scale := float64(width) / float64(makespan)
	for _, s := range order {
		row := make([]rune, width)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range streams[s] {
			lo := int(float64(e.Start) * scale)
			hi := int(float64(e.End) * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			mark := '#'
			if len(e.Label) > 0 {
				mark = rune(e.Label[0])
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = mark
			}
		}
		if _, err := fmt.Fprintf(w, "%-8s |%s|\n", s, string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-8s  0%s%v\n", "", strings.Repeat(" ", width-len(makespan.String())), makespan)
	return err
}

// chromeEvent is the trace-event JSON schema: complete "X" events for
// ops with duration, instant "i" events for zero-duration markers.
type chromeEvent struct {
	Name    string  `json:"name"`
	Cat     string  `json:"cat"`
	Phase   string  `json:"ph"`
	StartUS float64 `json:"ts"`
	DurUS   float64 `json:"dur,omitempty"`
	Scope   string  `json:"s,omitempty"`
	PID     int     `json:"pid"`
	TID     int     `json:"tid"`
}

// WriteChrome emits the events as Chrome trace-event JSON: one thread per
// stream, microsecond timestamps. Zero-duration events become instant
// events (ph "i", thread scope) so markers stay visible.
func WriteChrome(w io.Writer, events []Event) error {
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		ce := chromeEvent{
			Name:    e.Label,
			Cat:     e.Stream.String(),
			Phase:   "X",
			StartUS: float64(e.Start) * 1e6,
			DurUS:   float64(e.End-e.Start) * 1e6,
			PID:     1,
			TID:     int(e.Stream) + 1,
		}
		if e.End <= e.Start {
			ce.Phase = "i"
			ce.DurUS = 0
			ce.Scope = "t"
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// Utilization summarizes per-stream busy fractions over the makespan.
func Utilization(events []Event, makespan unit.Seconds) map[sim.Stream]float64 {
	var busy [int(sim.NVLink) + 1]unit.Seconds
	for _, e := range events {
		if s := int(e.Stream); s >= 0 && s < len(busy) {
			busy[s] += e.End - e.Start
		}
	}
	out := map[sim.Stream]float64{}
	for s := range busy {
		if busy[s] > 0 && makespan > 0 {
			out[sim.Stream(s)] = float64(busy[s]) / float64(makespan)
		}
	}
	return out
}
