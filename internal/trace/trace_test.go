package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"karma/internal/sim"
)

func sampleTimeline(t *testing.T) ([]sim.Op, *sim.Timeline) {
	t.Helper()
	ops := []sim.Op{
		{Label: "F0", Stream: sim.Compute, Duration: 1},
		{Label: "Sout0", Stream: sim.D2H, Duration: 2, Deps: []int{0}},
		{Label: "F1", Stream: sim.Compute, Duration: 1},
		{Label: "zero", Stream: sim.Compute, Duration: 0},
	}
	//karma:plan-ok trace rendering needs a raw timeline; the hand-built op list above is the fixture
	tl, err := sim.Run(ops, 1)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return ops, tl
}

func TestCollect(t *testing.T) {
	ops, tl := sampleTimeline(t)
	ev := Collect(ops, tl)
	// Zero-duration ops are kept (regression: they used to be dropped).
	if len(ev) != 4 {
		t.Fatalf("events = %d, want 4", len(ev))
	}
	// Sorted by stream then start.
	if ev[0].Stream != sim.Compute || ev[3].Stream != sim.D2H {
		t.Errorf("ordering wrong: %+v", ev)
	}
	if ev[0].Label != "F0" || ev[1].Label != "F1" || ev[2].Label != "zero" {
		t.Errorf("compute order wrong: %+v", ev)
	}
	if ev[2].End != ev[2].Start {
		t.Errorf("zero-duration event must have End == Start: %+v", ev[2])
	}
}

func TestGantt(t *testing.T) {
	ops, tl := sampleTimeline(t)
	ev := Collect(ops, tl)
	var buf bytes.Buffer
	if err := Gantt(&buf, ev, tl.Makespan, 30); err != nil {
		t.Fatalf("Gantt: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "compute") || !strings.Contains(out, "d2h") {
		t.Errorf("missing stream rows:\n%s", out)
	}
	if !strings.Contains(out, "F") || !strings.Contains(out, "S") {
		t.Errorf("missing op marks:\n%s", out)
	}
	// Two rows plus the axis line.
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("line count = %d:\n%s", lines, out)
	}
}

func TestGanttEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Gantt(&buf, nil, 0, 30); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty timeline should say so")
	}
}

func TestWriteChrome(t *testing.T) {
	ops, tl := sampleTimeline(t)
	ev := Collect(ops, tl)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, ev); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			Scope string  `json:"s"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	for _, e := range doc.TraceEvents {
		if e.Name == "zero" {
			// Regression: zero-duration ops render as instant events
			// instead of being dropped.
			if e.Phase != "i" || e.Dur != 0 || e.Scope != "t" {
				t.Errorf("zero-duration event must be ph \"i\": %+v", e)
			}
			continue
		}
		if e.Phase != "X" || e.Dur <= 0 {
			t.Errorf("bad event %+v", e)
		}
	}
	// F0 runs [0,1s] -> ts 0, dur 1e6 us.
	if doc.TraceEvents[0].Name != "F0" || doc.TraceEvents[0].Dur != 1e6 {
		t.Errorf("F0 event wrong: %+v", doc.TraceEvents[0])
	}
	// "dur" is omitted for instant events (the schema keeps them compact).
	if bytes.Contains(buf.Bytes(), []byte(`"name":"zero","cat":"compute","ph":"i","ts":2e+06,"dur"`)) {
		t.Errorf("instant event must omit dur:\n%s", buf.String())
	}
}

func TestUtilization(t *testing.T) {
	ops, tl := sampleTimeline(t)
	ev := Collect(ops, tl)
	u := Utilization(ev, tl.Makespan)
	// Makespan 3 (Sout0 ends at 3): compute busy 2/3, d2h 2/3.
	if u[sim.Compute] < 0.6 || u[sim.Compute] > 0.7 {
		t.Errorf("compute util = %v", u[sim.Compute])
	}
	if u[sim.D2H] < 0.6 || u[sim.D2H] > 0.7 {
		t.Errorf("d2h util = %v", u[sim.D2H])
	}
}
