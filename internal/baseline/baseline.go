// Package baseline implements the comparison systems of the paper's
// single-GPU evaluation (Fig. 5, Fig. 6, Table I): conventional in-core
// training, the out-of-core virtualization methods vDNN++ and ooc_cuDNN,
// the swap+recompute hybrid SuperNeurons, and the pure-recompute methods
// Checkmate and sqrt(N) gradient checkpointing. Every method lowers to
// the same plan IR and runs on the same simulator as KARMA, so
// comparisons isolate scheduling policy, not modeling differences.
package baseline

import (
	"fmt"

	"karma/internal/hw"
	"karma/internal/karma"
	"karma/internal/layer"
	"karma/internal/plan"
	"karma/internal/profiler"
	"karma/internal/sim"
	"karma/internal/solve"
	"karma/internal/unit"
)

// Method identifies a training strategy.
type Method string

// The evaluated methods. KARMA and KARMARecompute dispatch to the core
// planner so experiment code can sweep all methods uniformly.
const (
	InCore         Method = "in-core"
	VDNNPP         Method = "vdnn++"
	OocCuDNN       Method = "ooc_cudnn"
	SuperNeurons   Method = "superneurons"
	Checkmate      Method = "checkmate"
	GradCkpt       Method = "grad-ckpt"
	KARMA          Method = "karma"
	KARMARecompute Method = "karma+recompute"
)

// Methods lists all methods in Fig. 5 presentation order.
func Methods() []Method {
	return []Method{InCore, VDNNPP, SuperNeurons, Checkmate, KARMA, KARMARecompute}
}

// Result is the outcome of running one method on one profile.
type Result struct {
	Method   Method
	Feasible bool
	// Reason explains infeasibility.
	Reason string

	IterTime     unit.Seconds
	Throughput   float64 // samples/s
	Occupancy    float64
	ComputeStall unit.Seconds
	PeakMem      unit.Bytes
	BwdTrace     []karma.BlockTrace
}

// Run executes a method against a profile.
func Run(m Method, p *profiler.Profile) (*Result, error) {
	switch m {
	case InCore:
		return runInCore(p)
	case VDNNPP:
		return runSwapper(p, VDNNPP, 1, nil)
	case OocCuDNN:
		return runSwapper(p, OocCuDNN, 0, nil)
	case SuperNeurons:
		return runSuperNeurons(p)
	case Checkmate:
		return runRecompute(p, Checkmate)
	case GradCkpt:
		return runRecompute(p, GradCkpt)
	case KARMA:
		return runKARMA(p, true)
	case KARMARecompute:
		return runKARMA(p, false)
	default:
		return nil, fmt.Errorf("baseline: unknown method %q", m)
	}
}

func infeasible(m Method, reason string) *Result {
	return &Result{Method: m, Feasible: false, Reason: reason}
}

// fromReport converts a simulated karma report.
func fromReport(m Method, rep *karma.Report) *Result {
	return &Result{
		Method:       m,
		Feasible:     true,
		IterTime:     rep.IterTime,
		Throughput:   rep.Throughput,
		Occupancy:    rep.Occupancy,
		ComputeStall: rep.ComputeStall,
		PeakMem:      rep.PeakMem,
		BwdTrace:     rep.BwdTrace,
	}
}

// runKARMA dispatches to the core planner.
func runKARMA(p *profiler.Profile, disableRecompute bool) (*Result, error) {
	m := KARMARecompute
	if disableRecompute {
		m = KARMA
	}
	s, err := karma.Plan(p, karma.Options{DisableRecompute: disableRecompute})
	if err != nil {
		return infeasible(m, err.Error()), nil
	}
	rep, err := karma.Simulate(s)
	if err != nil {
		return infeasible(m, err.Error()), nil
	}
	return fromReport(m, rep), nil
}

// runInCore is conventional training: feasible only when everything fits.
func runInCore(p *profiler.Profile) (*Result, error) {
	if !p.FitsInCore() {
		return infeasible(InCore, fmt.Sprintf("footprint %v exceeds usable %v",
			p.InCoreBytes(), p.Node.Device.UsableMem())), nil
	}
	budget, err := karma.BudgetFor(p, 0)
	if err != nil {
		return infeasible(InCore, err.Error()), nil
	}
	pl := &plan.Plan{Name: "in-core/" + p.Graph.Name(), NumBlocks: len(p.Blocks)}
	for i, b := range p.Blocks {
		pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
			Kind: plan.Fwd, Block: i, Duration: b.FwdTime, Alloc: b.ActBytes,
		}}})
	}
	for i := len(p.Blocks) - 1; i >= 0; i-- {
		pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
			Kind: plan.Bwd, Block: i, Duration: p.Blocks[i].BwdTime, Free: p.Blocks[i].ActBytes,
		}}})
	}
	return simulate(InCore, pl, budget, p)
}

// runSwapper implements the eager virtualization family (§II-A1):
// every block swaps out right after its forward pass — including the last
// one, the Fig. 2a inefficiency — and swaps back in during backward with
// the given prefetch lookahead (1 block for vDNN++, 0 for ooc_cuDNN,
// which applies no prefetching).
//
// extraPolicy optionally overrides the policy per block (SuperNeurons).
func runSwapper(p *profiler.Profile, m Method, lookahead int, policy []karma.Policy) (*Result, error) {
	budget, err := karma.BudgetFor(p, 0.05)
	if err != nil {
		return infeasible(m, err.Error()), nil
	}
	n := len(p.Blocks)
	if policy == nil {
		policy = make([]karma.Policy, n)
		for i := range policy {
			policy[i] = karma.Swap
		}
	}
	// Recomputed blocks pin their input boundary as a checkpoint.
	for i, pol := range policy {
		if pol == karma.Recompute && i > 0 {
			budget -= p.Blocks[i-1].OutBytes
		}
	}
	if budget <= 0 {
		return infeasible(m, "recompute checkpoints exceed device budget"), nil
	}
	// Feasibility floor: the largest adjacent working set must fit.
	for i := 0; i < n; i++ {
		need := p.Blocks[i].ActBytes
		if i+1 < n {
			need += p.Blocks[i+1].ActBytes
		}
		if need > budget {
			return infeasible(m, fmt.Sprintf("working set %v exceeds budget %v", need, budget)), nil
		}
	}

	pl := &plan.Plan{Name: string(m) + "/" + p.Graph.Name(), NumBlocks: n}
	// Forward: F_b plus eager swap-out of the previous block.
	for b := 0; b < n; b++ {
		st := plan.Stage{Ops: []plan.Op{{
			Kind: plan.Fwd, Block: b, Duration: p.Blocks[b].FwdTime, Alloc: p.Blocks[b].ActBytes,
		}}}
		if b > 0 {
			st.Ops = append(st.Ops, swapOutOp(p, b-1, policy[b-1])...)
		}
		pl.Stages = append(pl.Stages, st)
	}
	// Eager family flaw: the last block also swaps out, then must return
	// before its backward can begin.
	pl.Stages = append(pl.Stages, plan.Stage{Ops: swapOutOp(p, n-1, policy[n-1])})

	// Backward with fixed lookahead prefetch. The last block was eagerly
	// swapped out, so it must come back synchronously first — the Fig. 2a
	// forward→backward stall of the eager family.
	swapIn := func(b int) []plan.Op {
		if b < 0 || policy[b] != karma.Swap {
			return nil
		}
		return []plan.Op{{
			Kind: plan.SwapIn, Block: b, Duration: p.Blocks[b].SwapTime, Alloc: p.Blocks[b].ActBytes,
		}}
	}
	pl.Stages = append(pl.Stages, plan.Stage{Ops: swapIn(n - 1)})
	for b := n - 1; b >= 0; b-- {
		if policy[b] == karma.Recompute {
			pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
				Kind: plan.Recompute, Block: b, Duration: p.Blocks[b].FwdTime, Alloc: p.Blocks[b].ActBytes,
			}}})
		}
		st := plan.Stage{}
		if lookahead == 0 && b < n-1 {
			// No prefetch: the fetch launches only when the backward
			// reaches the block, fully exposing the transfer.
			st.Ops = append(st.Ops, swapIn(b)...)
		}
		st.Ops = append(st.Ops, plan.Op{
			Kind: plan.Bwd, Block: b, Duration: p.Blocks[b].BwdTime, Free: p.Blocks[b].ActBytes,
		})
		if lookahead > 0 {
			// Prefetch the block consumed `lookahead` steps later.
			st.Ops = append(st.Ops, swapIn(b-lookahead)...)
		}
		pl.Stages = append(pl.Stages, st)
	}
	return simulate(m, pl, budget, p)
}

// swapOutOp emits the post-forward treatment of a block: swap-out for
// Swap policy, immediate drop for Recompute, nothing for Keep.
func swapOutOp(p *profiler.Profile, b int, pol karma.Policy) []plan.Op {
	switch pol {
	case karma.Swap:
		return []plan.Op{{
			Kind: plan.SwapOut, Block: b, Duration: p.Blocks[b].SwapTime, Free: p.Blocks[b].ActBytes,
		}}
	case karma.Recompute:
		// Dropping is free; model as a zero-duration swap-out.
		return []plan.Op{{Kind: plan.SwapOut, Block: b, Free: p.Blocks[b].ActBytes}}
	default:
		return nil
	}
}

// runSuperNeurons mixes swapping and recompute by layer *type* (§II-A3):
// the activations of heavy layers (convolutions and other weighted ops)
// swap out; cheap layers (normalization, pooling) are recomputed in
// backward. The split is per layer type, not per cost model, and there is
// no capacity-based residency — the sources of its spread-out stalls in
// Fig. 6.
func runSuperNeurons(p *profiler.Profile) (*Result, error) {
	budget, err := karma.BudgetFor(p, 0.05)
	if err != nil {
		return infeasible(SuperNeurons, err.Error()), nil
	}
	n := len(p.Blocks)
	rate := p.Node.Device.SustainedFLOPS()
	swapBW := hw.SwapThroughput(p.Node)
	batch := int64(p.Opts.Batch)
	elem := int64(4)

	// Per block: bytes of heavy-layer outputs (swapped) and the forward
	// cost of the cheap layers (recomputed).
	swapBytes := make([]unit.Bytes, n)
	cheapTime := make([]unit.Seconds, n)
	for i, b := range p.Blocks {
		var heavyElems int64
		var cheapFLOPs int64
		for _, id := range b.Seg.Nodes {
			node := p.Graph.Node(id)
			switch node.L.(type) {
			case *layer.Conv2D, *layer.Deconv2D, *layer.Dense,
				*layer.SelfAttention, *layer.LSTM, *layer.Embedding:
				heavyElems += node.OutShape.Elems()
			default:
				cheapFLOPs += node.FwdFLOPs
			}
		}
		sb := unit.Bytes(float64(heavyElems*elem*batch) * p.Opts.ActOverhead)
		if sb > b.ActBytes {
			sb = b.ActBytes
		}
		swapBytes[i] = sb
		cheapTime[i] = unit.ComputeTime(unit.FLOPs(cheapFLOPs*batch), rate)
	}
	for i := 0; i < n; i++ {
		need := p.Blocks[i].ActBytes
		if i+1 < n {
			need += p.Blocks[i+1].ActBytes
		}
		if need > budget {
			return infeasible(SuperNeurons, fmt.Sprintf("working set %v exceeds budget %v", need, budget)), nil
		}
	}

	pl := &plan.Plan{Name: "superneurons/" + p.Graph.Name(), NumBlocks: n}
	move := func(b int) unit.Seconds {
		return unit.TransferTime(swapBytes[b], swapBW, p.Node.Link.Latency)
	}
	// Forward: eager treatment after each block — heavy outputs swap out,
	// the remainder drops for recompute.
	for b := 0; b < n; b++ {
		st := plan.Stage{Ops: []plan.Op{{
			Kind: plan.Fwd, Block: b, Duration: p.Blocks[b].FwdTime, Alloc: p.Blocks[b].ActBytes,
		}}}
		if b > 0 {
			st.Ops = append(st.Ops, plan.Op{
				Kind: plan.SwapOut, Block: b - 1,
				Duration: move(b - 1),
				Free:     p.Blocks[b-1].ActBytes,
			})
		}
		pl.Stages = append(pl.Stages, st)
	}
	pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
		Kind: plan.SwapOut, Block: n - 1, Duration: move(n - 1), Free: p.Blocks[n-1].ActBytes,
	}}})

	// Backward: one-block-ahead prefetch of the heavy payload, cheap
	// recompute in line, like the SuperNeurons runtime.
	swapIn := func(b int) plan.Op {
		return plan.Op{
			Kind: plan.SwapIn, Block: b, Duration: move(b), Alloc: swapBytes[b],
		}
	}
	pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{swapIn(n - 1)}})
	for b := n - 1; b >= 0; b-- {
		if cheapTime[b] > 0 || p.Blocks[b].ActBytes > swapBytes[b] {
			pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
				Kind: plan.Recompute, Block: b,
				Duration: cheapTime[b],
				Alloc:    p.Blocks[b].ActBytes - swapBytes[b],
			}}})
		}
		st := plan.Stage{Ops: []plan.Op{{
			Kind: plan.Bwd, Block: b, Duration: p.Blocks[b].BwdTime, Free: p.Blocks[b].ActBytes,
		}}}
		if b-1 >= 0 {
			st.Ops = append(st.Ops, swapIn(b-1))
		}
		pl.Stages = append(pl.Stages, st)
	}
	return simulate(SuperNeurons, pl, budget, p)
}

// runRecompute implements the pure rematerialization family (§II-A2):
// no swapping. Blocks are grouped into checkpoint segments; during the
// forward pass only each segment's boundary activation survives, and
// during backward each segment is recomputed wholesale from its incoming
// checkpoint (Chen et al.'s scheme, giving the O(sqrt N) bound of
// Table I). GradCkpt uses the canonical sqrt(N) segment count; Checkmate
// ("optimal rematerialization") sweeps the segment count and keeps the
// fastest feasible schedule.
func runRecompute(p *profiler.Profile, m Method) (*Result, error) {
	budget, err := karma.BudgetFor(p, 0.05)
	if err != nil {
		return infeasible(m, err.Error()), nil
	}
	n := len(p.Blocks)
	sqrtN := 1
	for sqrtN*sqrtN < n {
		sqrtN++
	}

	if m == GradCkpt {
		r, err := recomputeWithSegments(p, m, sqrtN, budget)
		if err != nil {
			return nil, err
		}
		if !r.Feasible {
			return infeasible(m, "no feasible checkpoint segmentation"), nil
		}
		return r, nil
	}
	// Checkmate sweeps the segment count. Candidates are costed on a lean
	// makespan-only path — one partitioner, builder, compiler, and
	// simulator shared across all k, so the steady-state sweep allocates
	// next to nothing — and only the winning k is rebuilt through the full
	// reporting path. The lean plan is op-for-op the plan
	// recomputeWithSegments builds, so the winner (first strict minimum in
	// ascending k, matching the old sweep order) is unchanged.
	sw, err := newCheckmateSweep(p, budget)
	if err != nil {
		return infeasible(m, err.Error()), nil
	}
	bestK := -1
	var bestT unit.Seconds
	for k := 1; k <= n && k <= 48; k++ {
		t, ok := sw.iterTime(k)
		if !ok {
			continue
		}
		if bestK < 0 || t < bestT {
			bestK, bestT = k, t
		}
	}
	if bestK < 0 {
		return infeasible(m, "no feasible checkpoint segmentation"), nil
	}
	return recomputeWithSegments(p, m, bestK, budget)
}

// checkmateSweep is the reusable candidate-evaluation state of the
// Checkmate segment-count sweep.
type checkmateSweep struct {
	p      *profiler.Profile
	budget unit.Bytes
	pt     *solve.Partitioner
	cuts   []int
	bld    plan.Builder
	comp   plan.Compiler
	run    sim.Runner
}

func newCheckmateSweep(p *profiler.Profile, budget unit.Bytes) (*checkmateSweep, error) {
	weights := make([]float64, len(p.Blocks))
	for i, b := range p.Blocks {
		weights[i] = float64(b.ActBytes) + 1
	}
	pt, err := solve.NewPartitioner(weights)
	if err != nil {
		return nil, err
	}
	return &checkmateSweep{p: p, budget: budget, pt: pt}, nil
}

// iterTime costs one k-segment candidate: it builds the same plan as
// recomputeWithSegments (identical ops in identical order, so the
// simulated makespan is bit-identical) and reports the iteration time,
// or ok=false where the full path would report an infeasible result.
func (sw *checkmateSweep) iterTime(k int) (unit.Seconds, bool) {
	p := sw.p
	n := len(p.Blocks)
	cuts, err := sw.pt.AppendCuts(sw.cuts[:0], k)
	if err != nil {
		return 0, false
	}
	sw.cuts = cuts
	var ckpt unit.Bytes
	for _, c := range cuts {
		ckpt += p.Blocks[c-1].OutBytes
	}
	avail := sw.budget - ckpt
	if avail <= 0 {
		return 0, false
	}
	sw.bld.Reset(string(Checkmate), n)
	// Forward: segment acts live until the next segment's first forward.
	var prevAct unit.Bytes
	start := 0
	for ci := 0; ci <= len(cuts); ci++ {
		end := n
		if ci < len(cuts) {
			end = cuts[ci]
		}
		var act unit.Bytes
		for b := start; b < end; b++ {
			op := plan.Op{Kind: plan.Fwd, Block: b, Duration: p.Blocks[b].FwdTime, Alloc: p.Blocks[b].ActBytes}
			if b == start && ci > 0 {
				op.Free = prevAct
			}
			sw.bld.Stage(op)
			act += p.Blocks[b].ActBytes
		}
		prevAct = act
		start = end
	}
	// Backward: the last segment kept its activations; earlier segments
	// recompute wholesale from their incoming checkpoint.
	for si := len(cuts); si >= 0; si-- {
		s0 := 0
		if si > 0 {
			s0 = cuts[si-1]
		}
		e0 := n
		if si < len(cuts) {
			e0 = cuts[si]
		}
		if si < len(cuts) {
			for b := s0; b < e0; b++ {
				sw.bld.Stage(plan.Op{
					Kind: plan.Recompute, Block: b, Duration: p.Blocks[b].FwdTime, Alloc: p.Blocks[b].ActBytes,
				})
			}
		}
		for b := e0 - 1; b >= s0; b-- {
			sw.bld.Stage(plan.Op{
				Kind: plan.Bwd, Block: b, Duration: p.Blocks[b].BwdTime, Free: p.Blocks[b].ActBytes,
			})
		}
	}
	c, err := sw.comp.Compile(sw.bld.Plan())
	if err != nil {
		return 0, false
	}
	//karma:plan-ok ops come from Compile on a Builder-made plan; reusing one Runner avoids Simulate's per-call allocations
	tl, err := sw.run.Run(c.Ops, avail)
	if err != nil {
		return 0, false
	}
	return tl.Makespan, true
}

// recomputeWithSegments builds and simulates a k-segment checkpointing
// plan.
func recomputeWithSegments(p *profiler.Profile, m Method, k int, budget unit.Bytes) (*Result, error) {
	n := len(p.Blocks)
	weights := make([]float64, n)
	for i, b := range p.Blocks {
		weights[i] = float64(b.ActBytes) + 1
	}
	cuts, err := solve.BalancedPartition(weights, k)
	if err != nil {
		return infeasible(m, err.Error()), nil
	}
	rs := solve.Ranges(cuts, n)

	// Segment boundary checkpoints stay resident the whole iteration;
	// reserve them out of the budget.
	var ckpt unit.Bytes
	for _, r := range rs[:len(rs)-1] {
		ckpt += p.Blocks[r[1]-1].OutBytes
	}
	avail := budget - ckpt
	if avail <= 0 {
		return infeasible(m, fmt.Sprintf("checkpoints %v exceed budget %v", ckpt, budget)), nil
	}
	segAct := func(r [2]int) unit.Bytes {
		var s unit.Bytes
		for i := r[0]; i < r[1]; i++ {
			s += p.Blocks[i].ActBytes
		}
		return s
	}

	pl := &plan.Plan{Name: fmt.Sprintf("%s-k%d/%s", m, k, p.Graph.Name()), NumBlocks: n}
	// Forward: segment acts live until the next segment's first forward.
	for si, r := range rs {
		for b := r[0]; b < r[1]; b++ {
			op := plan.Op{Kind: plan.Fwd, Block: b, Duration: p.Blocks[b].FwdTime, Alloc: p.Blocks[b].ActBytes}
			if b == r[0] && si > 0 {
				op.Free = segAct(rs[si-1])
			}
			pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{op}})
		}
	}
	// Backward: the last segment kept its activations; earlier segments
	// recompute wholesale from their incoming checkpoint.
	for si := len(rs) - 1; si >= 0; si-- {
		r := rs[si]
		if si < len(rs)-1 {
			for b := r[0]; b < r[1]; b++ {
				pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
					Kind: plan.Recompute, Block: b, Duration: p.Blocks[b].FwdTime, Alloc: p.Blocks[b].ActBytes,
				}}})
			}
		}
		for b := r[1] - 1; b >= r[0]; b-- {
			pl.Stages = append(pl.Stages, plan.Stage{Ops: []plan.Op{{
				Kind: plan.Bwd, Block: b, Duration: p.Blocks[b].BwdTime, Free: p.Blocks[b].ActBytes,
			}}})
		}
	}
	return simulate(m, pl, avail, p)
}

// simulate runs a lowered plan and packages the result.
func simulate(m Method, pl *plan.Plan, budget unit.Bytes, p *profiler.Profile) (*Result, error) {
	c, tl, err := pl.Simulate(budget)
	if err != nil {
		return infeasible(m, err.Error()), nil
	}
	res := &Result{
		Method:       m,
		Feasible:     true,
		IterTime:     tl.Makespan,
		Throughput:   float64(p.Opts.Batch) / float64(tl.Makespan),
		Occupancy:    tl.Occupancy(c.Ops),
		ComputeStall: tl.ComputeIdle(c.Ops),
		PeakMem:      tl.PeakMem,
	}
	res.BwdTrace = karma.TraceBackward(c, tl)
	return res, nil
}
