package baseline

import (
	"testing"

	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/profiler"
)

func prof(t *testing.T, name string, batch int) *profiler.Profile {
	t.Helper()
	g, err := model.Build(name)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p, err := profiler.New(g, hw.ABCINode(), profiler.Options{Batch: batch})
	if err != nil {
		t.Fatalf("profiler: %v", err)
	}
	return p
}

func run(t *testing.T, m Method, p *profiler.Profile) *Result {
	t.Helper()
	r, err := Run(m, p)
	if err != nil {
		t.Fatalf("Run(%s): %v", m, err)
	}
	return r
}

func TestUnknownMethod(t *testing.T) {
	if _, err := Run(Method("nope"), prof(t, "smallcnn", 1)); err == nil {
		t.Error("unknown method should error")
	}
}

func TestInCoreFeasibility(t *testing.T) {
	small := prof(t, "resnet50", 128)
	r := run(t, InCore, small)
	if !r.Feasible {
		t.Fatalf("batch 128 should be in-core feasible: %s", r.Reason)
	}
	if r.IterTime <= 0 || r.Throughput <= 0 {
		t.Errorf("bad result %+v", r)
	}
	big := prof(t, "resnet50", 256)
	r = run(t, InCore, big)
	if r.Feasible {
		t.Error("batch 256 must be in-core infeasible (Fig. 5)")
	}
	if r.Reason == "" {
		t.Error("infeasible result must carry a reason")
	}
}

func TestAllMethodsRunOutOfCore(t *testing.T) {
	p := prof(t, "resnet50", 256)
	for _, m := range []Method{VDNNPP, OocCuDNN, SuperNeurons, Checkmate, GradCkpt, KARMA, KARMARecompute} {
		r := run(t, m, p)
		if !r.Feasible {
			t.Errorf("%s: infeasible at batch 256: %s", m, r.Reason)
			continue
		}
		if r.Throughput <= 0 {
			t.Errorf("%s: zero throughput", m)
		}
		if r.Occupancy <= 0 || r.Occupancy > 1 {
			t.Errorf("%s: occupancy %v out of range", m, r.Occupancy)
		}
	}
}

func TestKARMABeatsEagerSwappers(t *testing.T) {
	// The headline single-GPU claim (Fig. 5): KARMA's capacity-based
	// schedule outperforms the eager out-of-core methods, and recompute
	// interleaving helps further.
	for _, cfg := range []struct {
		model string
		batch int
	}{
		{"resnet50", 384},
		{"resnet200", 16},
	} {
		p := prof(t, cfg.model, cfg.batch)
		vdnn := run(t, VDNNPP, p)
		karmaR := run(t, KARMARecompute, p)
		if !vdnn.Feasible || !karmaR.Feasible {
			t.Fatalf("%s/%d: unexpected infeasibility (vdnn=%v karma=%v)",
				cfg.model, cfg.batch, vdnn.Reason, karmaR.Reason)
		}
		if karmaR.Throughput < vdnn.Throughput {
			t.Errorf("%s/%d: KARMA w/recompute (%.1f samples/s) loses to vDNN++ (%.1f)",
				cfg.model, cfg.batch, karmaR.Throughput, vdnn.Throughput)
		}
	}
}

func TestOocCuDNNSlowerThanVDNN(t *testing.T) {
	// No prefetching must not be faster than one-block prefetching.
	p := prof(t, "resnet50", 384)
	ooc := run(t, OocCuDNN, p)
	vdnn := run(t, VDNNPP, p)
	if !ooc.Feasible || !vdnn.Feasible {
		t.Fatal("both should be feasible")
	}
	if ooc.Throughput > vdnn.Throughput {
		t.Errorf("ooc_cudnn (%.1f) beat vDNN++ (%.1f)", ooc.Throughput, vdnn.Throughput)
	}
}

func TestVDNNStallsAtTransition(t *testing.T) {
	// Fig. 2a / Fig. 6: the eager strategy's first backward op waits for
	// the last block's round trip; KARMA's does not.
	p := prof(t, "resnet200", 12)
	vdnn := run(t, VDNNPP, p)
	if !vdnn.Feasible {
		t.Fatalf("vdnn infeasible: %s", vdnn.Reason)
	}
	if len(vdnn.BwdTrace) == 0 {
		t.Fatal("no trace")
	}
	if vdnn.BwdTrace[0].Stall <= 0 {
		t.Error("vDNN++ first backward should stall on the last block's swap-in")
	}
	k := run(t, KARMARecompute, p)
	if len(k.BwdTrace) == 0 {
		t.Fatal("no karma trace")
	}
	if k.BwdTrace[0].Stall > 0 {
		t.Errorf("KARMA first backward stalled %v; resident tail should prevent this", k.BwdTrace[0].Stall)
	}
}

func TestCheckmatePureRecomputeAddsCompute(t *testing.T) {
	// Pure recompute must be feasible out-of-core and strictly slower per
	// sample than in-core at the same batch (it adds redundant compute).
	inCore := prof(t, "resnet50", 128)
	ic := run(t, InCore, inCore)
	p := prof(t, "resnet50", 256)
	cm := run(t, Checkmate, p)
	if !cm.Feasible {
		t.Fatalf("checkmate infeasible: %s", cm.Reason)
	}
	if cm.Throughput > ic.Throughput {
		t.Errorf("checkmate (%.1f samples/s) should not beat in-core (%.1f)",
			cm.Throughput, ic.Throughput)
	}
}

func TestGradCkptFeasibleDeepModel(t *testing.T) {
	p := prof(t, "resnet200", 16)
	r := run(t, GradCkpt, p)
	if !r.Feasible {
		t.Fatalf("sqrt(N) checkpointing infeasible: %s", r.Reason)
	}
}

func TestMethodsListOrder(t *testing.T) {
	ms := Methods()
	if len(ms) != 6 || ms[0] != InCore || ms[len(ms)-1] != KARMARecompute {
		t.Errorf("Methods() = %v", ms)
	}
}

func TestPeakMemWithinDevice(t *testing.T) {
	p := prof(t, "resnet50", 512)
	for _, m := range []Method{VDNNPP, SuperNeurons, Checkmate, KARMA, KARMARecompute} {
		r := run(t, m, p)
		if !r.Feasible {
			continue
		}
		if r.PeakMem > p.Node.Device.UsableMem() {
			t.Errorf("%s: peak %v exceeds device usable %v", m, r.PeakMem, p.Node.Device.UsableMem())
		}
	}
}
