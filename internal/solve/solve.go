// Package solve provides the search algorithms behind KARMA's two-tier
// optimization (paper Fig. 4): contiguous partitioning of the layer chain
// into blocks (Opt-1) and boundary refinement against a caller-supplied
// objective. The objective is evaluated by the planner (internal/karma)
// using the occupancy model or the full pipeline simulator; this package
// is policy-free search machinery.
//
// Two backends are provided: a deterministic balanced-partition +
// hill-climbing search (default), and the ant-colony mixed-integer
// optimizer (internal/aco) standing in for the paper's MIDACO solver.
package solve

import (
	"fmt"
	"sort"

	"karma/internal/aco"
)

// Ranges converts k-1 sorted cut positions over n items into k
// half-open [start, end) ranges. A cut at position c starts a new range
// at index c.
func Ranges(cuts []int, n int) [][2]int {
	out := make([][2]int, 0, len(cuts)+1)
	start := 0
	for _, c := range cuts {
		out = append(out, [2]int{start, c})
		start = c
	}
	out = append(out, [2]int{start, n})
	return out
}

// validCuts reports whether cuts are strictly increasing within (0, n).
func validCuts(cuts []int, n int) bool {
	prev := 0
	for _, c := range cuts {
		if c <= prev || c >= n {
			return false
		}
		prev = c
	}
	return true
}

// BalancedPartition returns the cut positions splitting the n weights
// into k contiguous groups minimizing the maximum group sum (the classic
// linear-partition problem, solved by parametric search). Weights must be
// non-negative. It returns k-1 cuts; k must be in [1, n].
func BalancedPartition(w []float64, k int) ([]int, error) {
	pt, err := NewPartitioner(w)
	if err != nil {
		return nil, err
	}
	return pt.Cuts(k)
}

// Partitioner answers BalancedPartition queries for many group counts
// over one weight slice, memoizing the greedy group count per probed cap
// so the parametric searches for different k — which visit overlapping
// cap values — share their scans. A sweep that partitions the same chain
// into every candidate k (the checkpoint run-count search) pays one scan
// per distinct cap instead of one per (cap, k). Cut positions are
// bit-identical to BalancedPartition's: the probe sequence and every
// comparison are unchanged, only redundant rescans are skipped.
type Partitioner struct {
	w           []float64
	total, maxw float64
	counts      map[float64]int
	groups      []group // scratch for the leftover-split phase
}

type group struct {
	start, end int
	sum        float64
}

// NewPartitioner validates the weights (which must be non-negative) and
// returns a Partitioner over them. The caller must not mutate w.
func NewPartitioner(w []float64) (*Partitioner, error) {
	pt := &Partitioner{w: w}
	for _, v := range w {
		if v < 0 {
			return nil, fmt.Errorf("solve: negative weight %v", v)
		}
		pt.total += v
		if v > pt.maxw {
			pt.maxw = v
		}
	}
	return pt, nil
}

// count returns the number of groups the greedy split needs under cap.
func (pt *Partitioner) count(cap float64) int {
	if g, ok := pt.counts[cap]; ok {
		return g
	}
	groups, sum := 1, 0.0
	for _, v := range pt.w {
		if sum+v > cap {
			groups++
			sum = v
		} else {
			sum += v
		}
	}
	if pt.counts == nil {
		pt.counts = map[float64]int{}
	}
	pt.counts[cap] = groups
	return groups
}

// Cuts returns the k-1 cut positions of the balanced k-way partition;
// k must be in [1, n]. The result is freshly allocated and safe to
// retain; transient callers should prefer AppendCuts.
func (pt *Partitioner) Cuts(k int) ([]int, error) {
	return pt.AppendCuts(nil, k)
}

// AppendCuts appends the k-1 cut positions of the balanced k-way
// partition to dst and returns the extended slice, so probe loops that
// only inspect the cuts can reuse one buffer across many k.
func (pt *Partitioner) AppendCuts(dst []int, k int) ([]int, error) {
	w := pt.w
	n := len(w)
	if k < 1 || k > n {
		return nil, fmt.Errorf("solve: k=%d out of range [1,%d]", k, n)
	}
	// Binary search the smallest cap for which a greedy split needs <= k
	// groups.
	lo, hi := pt.maxw, pt.total
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if pt.count(mid) <= k {
			hi = mid
		} else {
			lo = mid
		}
	}
	// Emit cuts for cap=hi, then spread any leftover group budget by
	// splitting the largest remaining groups to reach exactly k.
	base := len(dst)
	cuts := dst
	sum := 0.0
	for i, v := range w {
		if sum+v > hi && i > 0 {
			cuts = append(cuts, i)
			sum = v
		} else {
			sum += v
		}
	}
	if len(cuts)-base == k-1 {
		return cuts, nil
	}
	// Split the largest remaining groups at their weighted midpoints until
	// exactly k. Group sums are computed fresh left-to-right whenever a
	// group is created — the same additions in the same order as a rescan
	// of the group, so cut positions are bit-identical to recomputing every
	// sum per split — and carried between iterations so each split costs
	// O(group) instead of O(n) plus a sort.
	sumOf := func(a, b int) float64 {
		s := 0.0
		for j := a; j < b; j++ {
			s += w[j]
		}
		return s
	}
	groups := pt.groups[:0]
	start := 0
	for _, c := range cuts[base:] {
		groups = append(groups, group{start, c, sumOf(start, c)})
		start = c
	}
	groups = append(groups, group{start, n, sumOf(start, n)})
	for len(groups) < k {
		bi, bsum := -1, -1.0
		for i, g := range groups {
			if g.end-g.start < 2 {
				continue
			}
			if g.sum > bsum {
				bsum, bi = g.sum, i
			}
		}
		if bi < 0 {
			pt.groups = groups
			return nil, fmt.Errorf("solve: cannot split %d items into %d groups", n, k)
		}
		g := groups[bi]
		half, s := g.start+1, w[g.start]
		for half < g.end-1 && s < bsum/2 {
			s += w[half]
			half++
		}
		groups = append(groups, group{})
		copy(groups[bi+1:], groups[bi:])
		groups[bi] = group{g.start, half, sumOf(g.start, half)}
		groups[bi+1] = group{half, g.end, sumOf(half, g.end)}
	}
	pt.groups = groups
	cuts = cuts[:base]
	for _, g := range groups[1:] {
		cuts = append(cuts, g.start)
	}
	return cuts, nil
}

// HillClimb locally refines cut positions against eval (lower is better).
// Each pass tries moving every cut by ±step for decreasing steps; the
// best strictly-improving move is taken. Search is deterministic.
func HillClimb(cuts []int, n int, eval func([]int) float64, passes int) []int {
	if len(cuts) == 0 || passes <= 0 {
		return cuts
	}
	best := append([]int(nil), cuts...)
	bestV := eval(best)
	// One candidate buffer serves every probe; improvements copy back
	// into best instead of stealing the slice.
	cand := make([]int, len(best))
	steps := []int{8, 4, 2, 1}
	for p := 0; p < passes; p++ {
		improved := false
		for _, step := range steps {
			for i := range best {
				for _, d := range []int{-step, step} {
					copy(cand, best)
					cand[i] += d
					sort.Ints(cand)
					if !validCuts(cand, n) {
						continue
					}
					if v := eval(cand); v < bestV {
						copy(best, cand)
						bestV = v
						improved = true
					}
				}
			}
		}
		if !improved {
			break
		}
	}
	return best
}

// ACOBoundaries searches k-1 cut positions over n items with the
// ant-colony optimizer (the MIDACO stand-in). Candidate cut vectors are
// sorted and deduplicated before evaluation; invalid vectors are
// infeasible. Lower eval is better.
func ACOBoundaries(n, k int, eval func([]int) float64, seed int64) ([]int, error) {
	if k < 2 {
		return nil, nil // a single block has no cuts
	}
	if k > n {
		return nil, fmt.Errorf("solve: k=%d exceeds n=%d", k, n)
	}
	dim := k - 1
	lower := make([]int, dim)
	upper := make([]int, dim)
	for i := range lower {
		lower[i] = 1
		upper[i] = n - 1
	}
	// canon copies into one reusable scratch slice: the solver never
	// retains the canonical form, and the final result is copied out.
	scratch := make([]int, dim)
	canon := func(x []int) ([]int, bool) {
		c := scratch[:len(x)]
		copy(c, x)
		sort.Ints(c)
		return c, validCuts(c, n)
	}
	res, err := aco.Minimize(aco.Problem{
		Lower: lower,
		Upper: upper,
		Objective: func(x []int) float64 {
			c, _ := canon(x)
			return eval(c)
		},
		Feasible: func(x []int) bool {
			_, ok := canon(x)
			return ok
		},
	}, aco.Options{Seed: seed, Iterations: 120, Ants: 20})
	if err != nil {
		return nil, err
	}
	c, _ := canon(res.X)
	return append([]int(nil), c...), nil
}
