package solve

import (
	"math"
	"testing"
	"testing/quick"
)

func groupSums(w []float64, cuts []int) []float64 {
	rs := Ranges(cuts, len(w))
	out := make([]float64, len(rs))
	for i, r := range rs {
		for j := r[0]; j < r[1]; j++ {
			out[i] += w[j]
		}
	}
	return out
}

func maxOf(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func TestRanges(t *testing.T) {
	rs := Ranges([]int{2, 5}, 8)
	want := [][2]int{{0, 2}, {2, 5}, {5, 8}}
	if len(rs) != len(want) {
		t.Fatalf("ranges = %v", rs)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("range %d = %v, want %v", i, rs[i], want[i])
		}
	}
	if got := Ranges(nil, 4); len(got) != 1 || got[0] != [2]int{0, 4} {
		t.Errorf("no cuts: %v", got)
	}
}

func TestBalancedPartitionUniform(t *testing.T) {
	w := []float64{1, 1, 1, 1, 1, 1}
	cuts, err := BalancedPartition(w, 3)
	if err != nil {
		t.Fatalf("BalancedPartition: %v", err)
	}
	sums := groupSums(w, cuts)
	if len(sums) != 3 {
		t.Fatalf("groups = %v", sums)
	}
	if maxOf(sums) != 2 {
		t.Errorf("max group = %v, want 2 (perfectly balanced)", maxOf(sums))
	}
}

func TestBalancedPartitionSkewed(t *testing.T) {
	// One huge item: it must sit alone and others group together.
	w := []float64{1, 1, 10, 1, 1}
	cuts, err := BalancedPartition(w, 3)
	if err != nil {
		t.Fatalf("BalancedPartition: %v", err)
	}
	sums := groupSums(w, cuts)
	if maxOf(sums) != 10 {
		t.Errorf("max group = %v, want 10 (the unavoidable singleton)", maxOf(sums))
	}
}

func TestBalancedPartitionExactK(t *testing.T) {
	w := []float64{5, 1, 1, 1, 1, 1}
	for k := 1; k <= len(w); k++ {
		cuts, err := BalancedPartition(w, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(cuts) != k-1 {
			t.Errorf("k=%d: %d cuts, want %d", k, len(cuts), k-1)
		}
		if !sortedStrict(cuts, len(w)) {
			t.Errorf("k=%d: invalid cuts %v", k, cuts)
		}
	}
}

func sortedStrict(cuts []int, n int) bool {
	prev := 0
	for _, c := range cuts {
		if c <= prev || c >= n {
			return false
		}
		prev = c
	}
	return true
}

func TestBalancedPartitionErrors(t *testing.T) {
	if _, err := BalancedPartition([]float64{1, 2}, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := BalancedPartition([]float64{1, 2}, 3); err == nil {
		t.Error("k>n should error")
	}
	if _, err := BalancedPartition([]float64{1, -2, 1}, 2); err == nil {
		t.Error("negative weight should error")
	}
}

func TestHillClimbFindsBalance(t *testing.T) {
	// Objective: imbalance of group sums. Start from a bad cut.
	w := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	eval := func(cuts []int) float64 { return maxOf(groupSums(w, cuts)) }
	got := HillClimb([]int{1}, len(w), eval, 10)
	if eval(got) != 4 {
		t.Errorf("hill climb result %v has max group %v, want 4", got, eval(got))
	}
}

func TestHillClimbNoCutsNoop(t *testing.T) {
	got := HillClimb(nil, 5, func([]int) float64 { return 0 }, 5)
	if len(got) != 0 {
		t.Errorf("no cuts should remain no cuts, got %v", got)
	}
}

func TestHillClimbNeverWorsens(t *testing.T) {
	w := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	eval := func(cuts []int) float64 { return maxOf(groupSums(w, cuts)) }
	start := []int{2, 4}
	before := eval(start)
	after := eval(HillClimb(start, len(w), eval, 8))
	if after > before {
		t.Errorf("hill climb worsened: %v -> %v", before, after)
	}
}

func TestACOBoundariesMatchesBalanced(t *testing.T) {
	w := []float64{2, 2, 2, 2, 2, 2}
	eval := func(cuts []int) float64 { return maxOf(groupSums(w, cuts)) }
	cuts, err := ACOBoundaries(len(w), 3, eval, 11)
	if err != nil {
		t.Fatalf("ACOBoundaries: %v", err)
	}
	if eval(cuts) != 4 {
		t.Errorf("ACO cuts %v give max group %v, want 4", cuts, eval(cuts))
	}
}

func TestACOBoundariesSingleBlock(t *testing.T) {
	cuts, err := ACOBoundaries(5, 1, func([]int) float64 { return 0 }, 1)
	if err != nil || cuts != nil {
		t.Errorf("k=1 should return no cuts, got %v, %v", cuts, err)
	}
}

func TestACOBoundariesKTooLarge(t *testing.T) {
	if _, err := ACOBoundaries(3, 5, func([]int) float64 { return 0 }, 1); err == nil {
		t.Error("k>n should error")
	}
}

// Property: BalancedPartition's max group sum is within 2x of the ideal
// lower bound max(total/k, max item) for arbitrary inputs.
func TestBalancedPartitionQuality(t *testing.T) {
	f := func(raw []uint8, kk uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		w := make([]float64, len(raw))
		var total, maxw float64
		for i, r := range raw {
			w[i] = float64(r%9) + 1
			total += w[i]
			if w[i] > maxw {
				maxw = w[i]
			}
		}
		k := int(kk)%len(w) + 1
		cuts, err := BalancedPartition(w, k)
		if err != nil {
			return false
		}
		got := maxOf(groupSums(w, cuts))
		lower := math.Max(total/float64(k), maxw)
		return got <= 2*lower+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cuts are always valid (strictly increasing, in range) and the
// ranges cover all items exactly once.
func TestPartitionCoverage(t *testing.T) {
	f := func(raw []uint8, kk uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		w := make([]float64, len(raw))
		for i, r := range raw {
			w[i] = float64(r % 5)
		}
		k := int(kk)%len(w) + 1
		cuts, err := BalancedPartition(w, k)
		if err != nil {
			return false
		}
		if !sortedStrict(cuts, len(w)) && len(cuts) > 0 {
			return false
		}
		covered := 0
		for _, r := range Ranges(cuts, len(w)) {
			if r[0] > r[1] {
				return false
			}
			covered += r[1] - r[0]
		}
		return covered == len(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
