package plan

import (
	"encoding/json"
	"fmt"
	"io"

	"karma/internal/unit"
)

// jsonOp is the wire form of an Op.
type jsonOp struct {
	Kind     string     `json:"kind"`
	Block    int        `json:"block"`
	Duration float64    `json:"duration_sec"`
	Alloc    unit.Bytes `json:"alloc_bytes,omitempty"`
	Free     unit.Bytes `json:"free_bytes,omitempty"`
}

// jsonPlan is the wire form of a Plan.
type jsonPlan struct {
	Name      string     `json:"name"`
	NumBlocks int        `json:"num_blocks"`
	Stages    [][]jsonOp `json:"stages"`
}

// kindNames maps kinds to stable wire names (the paper mnemonics).
var kindNames = map[Kind]string{
	Fwd: "F", Bwd: "B", Recompute: "R", SwapOut: "Sout", SwapIn: "Sin",
	GradExchange: "Ex", UpdateCPU: "Ucpu", UpdateGPU: "Ugpu",
	MPAllReduce: "Ar", MPAllReduceLocal: "ArL", ParamGather: "Ag",
	Send: "Tx", Recv: "Rx", SendLocal: "TxL", RecvLocal: "RxL",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// Encode writes the plan as JSON. Plans are data (DESIGN.md): the same
// IR drives the simulator, the numeric executor, and external tools.
func (p *Plan) Encode(w io.Writer) error {
	jp := jsonPlan{Name: p.Name, NumBlocks: p.NumBlocks}
	for _, st := range p.Stages {
		ops := make([]jsonOp, 0, len(st.Ops))
		for _, op := range st.Ops {
			name, ok := kindNames[op.Kind]
			if !ok {
				return fmt.Errorf("plan: cannot encode kind %d", int(op.Kind))
			}
			ops = append(ops, jsonOp{
				Kind: name, Block: op.Block,
				Duration: float64(op.Duration),
				Alloc:    op.Alloc, Free: op.Free,
			})
		}
		jp.Stages = append(jp.Stages, ops)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jp)
}

// Decode reads a plan previously written by Encode and validates it.
func Decode(r io.Reader) (*Plan, error) {
	var jp jsonPlan
	if err := json.NewDecoder(r).Decode(&jp); err != nil {
		return nil, fmt.Errorf("plan: decode: %w", err)
	}
	p := &Plan{Name: jp.Name, NumBlocks: jp.NumBlocks}
	for si, ops := range jp.Stages {
		st := Stage{}
		for oi, op := range ops {
			kind, ok := kindByName[op.Kind]
			if !ok {
				return nil, fmt.Errorf("plan: stage %d op %d: unknown kind %q", si, oi, op.Kind)
			}
			st.Ops = append(st.Ops, Op{
				Kind: kind, Block: op.Block,
				Duration: unit.Seconds(op.Duration),
				Alloc:    op.Alloc, Free: op.Free,
			})
		}
		p.Stages = append(p.Stages, st)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MemoryDelta returns the net device-memory effect of the whole plan
// (total allocations minus total frees). A steady-state single-iteration
// plan must balance to zero; multi-iteration plans balance per iteration.
func (p *Plan) MemoryDelta() unit.Bytes {
	var d unit.Bytes
	for _, st := range p.Stages {
		for _, op := range st.Ops {
			d += op.Alloc - op.Free
		}
	}
	return d
}
