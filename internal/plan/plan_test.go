package plan

import (
	"strings"
	"testing"
	"testing/quick"

	"karma/internal/sim"
	"karma/internal/unit"
)

// figure2c builds the paper's illustrative example (Fig. 2c / §III-F3):
// six blocks, compute 1s each, swaps 2s, capacity for 4 block buffers;
// blocks 0 and 2 swap, block 3 and 1 (paper's 4 and 2) recompute.
// Paper notation (1-indexed): F1 → F2||Sout1 → F3 → F4||Sout3 → F5 → F6 →
// B6||Sin3 → B5 → F4 → B4||Sin1 → B3 → F2 → B2 → B1.
func figure2c() *Plan {
	const act = unit.Bytes(10)
	// f allocates the block's activations; drop releases a recomputed
	// predecessor's activations once this forward has consumed them.
	f := func(b int, drop unit.Bytes) Op {
		return Op{Kind: Fwd, Block: b, Duration: 1, Alloc: act, Free: drop}
	}
	bw := func(b int) Op { return Op{Kind: Bwd, Block: b, Duration: 2, Free: act} }
	so := func(b int) Op { return Op{Kind: SwapOut, Block: b, Duration: 2, Free: act} }
	si := func(b int) Op { return Op{Kind: SwapIn, Block: b, Duration: 2, Alloc: act} }
	rc := func(b int) Op { return Op{Kind: Recompute, Block: b, Duration: 1, Alloc: act} }

	return &Plan{
		Name:      "fig2c",
		NumBlocks: 6,
		Stages: []Stage{
			{Ops: []Op{f(0, 0)}},
			{Ops: []Op{f(1, 0), so(0)}},
			{Ops: []Op{f(2, act)}}, // block 1 recomputes: dropped here
			{Ops: []Op{f(3, 0), so(2)}},
			{Ops: []Op{f(4, act)}}, // block 3 recomputes: dropped here
			{Ops: []Op{f(5, 0)}},
			{Ops: []Op{bw(5), si(2)}},
			{Ops: []Op{bw(4)}},
			{Ops: []Op{rc(3)}},
			{Ops: []Op{bw(3), si(0)}},
			{Ops: []Op{bw(2)}},
			{Ops: []Op{rc(1)}},
			{Ops: []Op{bw(1)}},
			{Ops: []Op{bw(0)}},
		},
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Fwd: "F", Bwd: "B", Recompute: "R", SwapOut: "Sout", SwapIn: "Sin",
		GradExchange: "Ex", UpdateCPU: "Ucpu", UpdateGPU: "Ugpu",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestKindStreams(t *testing.T) {
	if Fwd.stream() != sim.Compute || Bwd.stream() != sim.Compute ||
		Recompute.stream() != sim.Compute || UpdateGPU.stream() != sim.Compute {
		t.Error("device kinds must run on the compute stream")
	}
	if SwapIn.stream() != sim.H2D || SwapOut.stream() != sim.D2H {
		t.Error("swap kinds on wrong streams")
	}
	if GradExchange.stream() != sim.Network || UpdateCPU.stream() != sim.HostCPU {
		t.Error("distributed kinds on wrong streams")
	}
}

func TestPlanString(t *testing.T) {
	p := &Plan{Name: "x", NumBlocks: 2, Stages: []Stage{
		{Ops: []Op{{Kind: Fwd, Block: 0}}},
		{Ops: []Op{{Kind: Fwd, Block: 1}, {Kind: SwapOut, Block: 0}}},
	}}
	if got := p.String(); got != "F0 → F1||Sout0" {
		t.Errorf("String = %q", got)
	}
}

func TestValidate(t *testing.T) {
	good := figure2c()
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good): %v", err)
	}
	bad := &Plan{Name: "b", NumBlocks: 1, Stages: []Stage{
		{Ops: []Op{{Kind: Bwd, Block: 0}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("Bwd without Fwd should fail")
	}
	oob := &Plan{Name: "o", NumBlocks: 1, Stages: []Stage{
		{Ops: []Op{{Kind: Fwd, Block: 3}}},
	}}
	if err := oob.Validate(); err == nil {
		t.Error("out-of-range block should fail")
	}
	neg := &Plan{Name: "n", NumBlocks: 1, Stages: []Stage{
		//karma:plan-ok exercises Validate's run-time rejection of negative costs
		{Ops: []Op{{Kind: Fwd, Block: 0, Duration: -1}}},
	}}
	if err := neg.Validate(); err == nil {
		t.Error("negative duration should fail")
	}
	exEarly := &Plan{Name: "e", NumBlocks: 1, Stages: []Stage{
		{Ops: []Op{{Kind: Fwd, Block: 0}}},
		{Ops: []Op{{Kind: GradExchange, Block: 0}}},
	}}
	if err := exEarly.Validate(); err == nil {
		t.Error("exchange before backward should fail")
	}
}

func TestCompileDeps(t *testing.T) {
	p := figure2c()
	c, err := p.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Find B2 (backward of block 2) and Sin2: B2 must depend on Sin2.
	var b2, sin2 = -1, -1
	for i, op := range c.Ops {
		switch op.Label {
		case "B2":
			b2 = i
		case "Sin2":
			sin2 = i
		}
	}
	if b2 < 0 || sin2 < 0 {
		t.Fatal("missing B2/Sin2")
	}
	found := false
	for _, d := range c.Ops[b2].Deps {
		if d == sin2 {
			found = true
		}
	}
	if !found {
		t.Errorf("B2 deps %v must include Sin2 (%d)", c.Ops[b2].Deps, sin2)
	}
}

func TestCompileSwapOutDependsOnFwd(t *testing.T) {
	p := figure2c()
	c, _ := p.Compile()
	var f0, sout0 = -1, -1
	for i, op := range c.Ops {
		switch op.Label {
		case "F0":
			f0 = i
		case "Sout0":
			sout0 = i
		}
	}
	found := false
	for _, d := range c.Ops[sout0].Deps {
		if d == f0 {
			found = true
		}
	}
	if !found {
		t.Errorf("Sout0 deps %v must include F0 (%d)", c.Ops[sout0].Deps, f0)
	}
}

func TestSimulateFigure2c(t *testing.T) {
	p := figure2c()
	// Capacity of 4 block buffers (40 bytes).
	c, tl, err := p.Simulate(40)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if tl.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// All six forwards and backwards must appear.
	count := map[Kind]int{}
	for _, op := range c.PlanOps {
		count[op.Kind]++
	}
	if count[Fwd] != 6 || count[Bwd] != 6 || count[Recompute] != 2 {
		t.Errorf("op counts = %v", count)
	}
	// Compute work: 6 fwd (1s) + 6 bwd (2s) + 2 recompute (1s) = 20s.
	if tl.Busy[sim.Compute] != 20 {
		t.Errorf("compute busy = %v, want 20", tl.Busy[sim.Compute])
	}
	// Peak memory within capacity.
	if tl.PeakMem > 40 {
		t.Errorf("peak = %v exceeds capacity", tl.PeakMem)
	}
}

func TestRecomputeReducesMakespanVsSwap(t *testing.T) {
	// The paper's premise (§III-B): swapping a block takes longer than
	// computing it. With a 4s swap-in that only partially hides under the
	// 2s backward of block 1, a 1s recompute beats waiting for the copy —
	// the core claim of §III-F.
	const act = unit.Bytes(10)
	swapPlan := &Plan{Name: "swap", NumBlocks: 2, Stages: []Stage{
		{Ops: []Op{{Kind: Fwd, Block: 0, Duration: 1, Alloc: act}}},
		{Ops: []Op{{Kind: Fwd, Block: 1, Duration: 1, Alloc: act}, {Kind: SwapOut, Block: 0, Duration: 4, Free: act}}},
		{Ops: []Op{{Kind: Bwd, Block: 1, Duration: 2, Free: act}, {Kind: SwapIn, Block: 0, Duration: 4, Alloc: act}}},
		{Ops: []Op{{Kind: Bwd, Block: 0, Duration: 2, Free: act}}},
	}}
	recompPlan := &Plan{Name: "recomp", NumBlocks: 2, Stages: []Stage{
		{Ops: []Op{{Kind: Fwd, Block: 0, Duration: 1, Alloc: act}}},
		{Ops: []Op{{Kind: Fwd, Block: 1, Duration: 1, Alloc: act}, {Kind: SwapOut, Block: 0, Duration: 4, Free: act}}},
		{Ops: []Op{{Kind: Bwd, Block: 1, Duration: 2, Free: act}}},
		{Ops: []Op{{Kind: Recompute, Block: 0, Duration: 1, Alloc: act}}},
		{Ops: []Op{{Kind: Bwd, Block: 0, Duration: 2, Free: act}}},
	}}
	_, tlSwap, err := swapPlan.Simulate(30)
	if err != nil {
		t.Fatalf("swap: %v", err)
	}
	_, tlRe, err := recompPlan.Simulate(30)
	if err != nil {
		t.Fatalf("recompute: %v", err)
	}
	if tlRe.Makespan > tlSwap.Makespan {
		t.Errorf("recompute (%v) slower than swap (%v)", tlRe.Makespan, tlSwap.Makespan)
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	p := &Plan{Name: "bad", NumBlocks: 1, Stages: []Stage{
		{Ops: []Op{{Kind: Bwd, Block: 0}}},
	}}
	if _, err := p.Compile(); err == nil {
		t.Error("Compile should reject invalid plans")
	}
}

func TestMultiNodeKindsCompile(t *testing.T) {
	p := &Plan{Name: "dist", NumBlocks: 1, Stages: []Stage{
		{Ops: []Op{{Kind: Fwd, Block: 0, Duration: 1}}},
		{Ops: []Op{{Kind: Bwd, Block: 0, Duration: 1}}},
		{Ops: []Op{{Kind: SwapOut, Block: 0, Duration: 1}}},
		{Ops: []Op{{Kind: GradExchange, Block: 0, Duration: 1}}},
		{Ops: []Op{{Kind: UpdateCPU, Block: 0, Duration: 1}}},
		{Ops: []Op{{Kind: SwapIn, Block: 0, Duration: 1}}},
	}}
	c, tl, err := p.Simulate(100)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	// The chain Ex <- Sout <- Bwd and Ucpu <- Ex and Sin <- Ucpu must
	// serialize: makespan is the 6-op critical path.
	if tl.Makespan != 6 {
		t.Errorf("makespan = %v, want 6 (fully dependent chain)", tl.Makespan)
	}
	// Verify the exchange depends on the swap-out, not just the backward.
	var ex, sout int
	for i, op := range c.Ops {
		if strings.HasPrefix(op.Label, "Ex") {
			ex = i
		}
		if strings.HasPrefix(op.Label, "Sout") {
			sout = i
		}
	}
	found := false
	for _, d := range c.Ops[ex].Deps {
		if d == sout {
			found = true
		}
	}
	if !found {
		t.Error("GradExchange must depend on the gradient swap-out")
	}
}

// Property: any well-formed single-iteration plan (forward chain with a
// per-block policy drawn at random, backward in reverse) compiles,
// simulates without deadlock, respects capacity, and balances memory.
func TestRandomPlansSimulate(t *testing.T) {
	f := func(policies []uint8) bool {
		n := len(policies)
		if n == 0 {
			return true
		}
		if n > 12 {
			policies = policies[:12]
			n = 12
		}
		const act = unit.Bytes(8)
		capacity := unit.Bytes(16 * n) // generous: policy mix must still fit
		p := &Plan{Name: "rand", NumBlocks: n}
		// Forward.
		for b := 0; b < n; b++ {
			st := Stage{Ops: []Op{{Kind: Fwd, Block: b, Duration: 1, Alloc: act}}}
			if b > 0 {
				switch policies[b-1] % 3 {
				case 1: // swap
					st.Ops = append(st.Ops, Op{Kind: SwapOut, Block: b - 1, Duration: 2, Free: act})
				case 2: // recompute: drop when consumed
					st.Ops[0].Free += act
				}
			}
			p.Stages = append(p.Stages, st)
		}
		// Backward: last block's policy forced to keep.
		first := Stage{Ops: []Op{{Kind: Bwd, Block: n - 1, Duration: 1, Free: act}}}
		for b := n - 2; b >= 0; b-- {
			if policies[b]%3 == 1 {
				first.Ops = append(first.Ops, Op{Kind: SwapIn, Block: b, Duration: 2, Alloc: act})
			}
		}
		p.Stages = append(p.Stages, first)
		for b := n - 2; b >= 0; b-- {
			if policies[b]%3 == 2 {
				p.Stages = append(p.Stages, Stage{Ops: []Op{{Kind: Recompute, Block: b, Duration: 1, Alloc: act}}})
			}
			p.Stages = append(p.Stages, Stage{Ops: []Op{{Kind: Bwd, Block: b, Duration: 1, Free: act}}})
		}
		if p.MemoryDelta() != 0 {
			return false
		}
		_, tl, err := p.Simulate(capacity)
		if err != nil {
			return false
		}
		return tl.Makespan > 0 && tl.PeakMem <= capacity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
