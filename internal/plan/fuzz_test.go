package plan

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// validSeedPlans are wire-form plans covering every op kind (including
// the pipeline Send/Recv family) and the structural shapes BuildPlan
// emits; they seed the fuzzer alongside the committed corpus under
// testdata/fuzz.
var validSeedPlans = []string{
	`{"name":"mini","num_blocks":2,"stages":[[{"kind":"F","block":0,"duration_sec":0.001,"alloc_bytes":1024}],[{"kind":"F","block":1,"duration_sec":0.002},{"kind":"Sout","block":0,"duration_sec":0.0005,"free_bytes":1024}],[{"kind":"B","block":1,"duration_sec":0.004},{"kind":"Sin","block":0,"duration_sec":0.0005,"alloc_bytes":1024}],[{"kind":"B","block":0,"duration_sec":0.002,"free_bytes":1024}],[{"kind":"Ex","block":0,"duration_sec":0.001}],[{"kind":"Ugpu","block":0,"duration_sec":0.0001}]]}`,
	`{"name":"mp","num_blocks":2,"stages":[[{"kind":"F","block":0,"duration_sec":0.001}],[{"kind":"Ar","block":0,"duration_sec":0.0002}],[{"kind":"F","block":1,"duration_sec":0.001}],[{"kind":"ArL","block":1,"duration_sec":0.0001}],[{"kind":"B","block":1,"duration_sec":0.002}],[{"kind":"R","block":0,"duration_sec":0.001}],[{"kind":"B","block":0,"duration_sec":0.002}],[{"kind":"Ag","block":0,"duration_sec":0.0003}],[{"kind":"Ucpu","block":0,"duration_sec":0.001}]]}`,
	`{"name":"pipe","num_blocks":3,"stages":[[{"kind":"Rx","block":0,"duration_sec":0.0001}],[{"kind":"F","block":0,"duration_sec":0.001,"alloc_bytes":64},{"kind":"Rx","block":1,"duration_sec":0.0001}],[{"kind":"Tx","block":0,"duration_sec":0.0001}],[{"kind":"F","block":1,"duration_sec":0.001,"alloc_bytes":64},{"kind":"RxL","block":2,"duration_sec":0.0001}],[{"kind":"F","block":2,"duration_sec":0.001,"alloc_bytes":64}],[{"kind":"TxL","block":2,"duration_sec":0.0001}],[{"kind":"B","block":2,"duration_sec":0.002,"free_bytes":64}],[{"kind":"B","block":1,"duration_sec":0.002,"free_bytes":64}],[{"kind":"B","block":0,"duration_sec":0.002,"free_bytes":64}]]}`,
	`{"name":"empty","num_blocks":1,"stages":[]}`,
}

// FuzzPlanJSONRoundTrip guards the plan wire format PR 3's artifacts
// (and karma-plan's -o output) rely on: every JSON the decoder accepts
// must re-encode to a byte-equivalent plan — same structure, same
// validation verdict — and decoding must never panic on arbitrary
// input. Seeds live in testdata/fuzz/FuzzPlanJSONRoundTrip.
func FuzzPlanJSONRoundTrip(f *testing.F) {
	for _, s := range validSeedPlans {
		f.Add([]byte(s))
	}
	f.Add([]byte(`{"name":"bad","num_blocks":1,"stages":[[{"kind":"B","block":0,"duration_sec":1}]]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		// Accepted plans are valid by Decode's contract.
		if err := p.Validate(); err != nil {
			t.Fatalf("Decode returned an invalid plan: %v", err)
		}
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			t.Fatalf("Encode of a decoded plan failed: %v", err)
		}
		q, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-Decode of encoded plan failed: %v\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(normalize(p), normalize(q)) {
			t.Fatalf("round trip changed the plan:\nfirst:  %+v\nsecond: %+v", p, q)
		}
	})
}

// normalize maps nil and empty op slices to one form: the wire format
// does not distinguish them, so the round-trip equality must not either.
func normalize(p *Plan) *Plan {
	out := &Plan{Name: p.Name, NumBlocks: p.NumBlocks}
	for _, st := range p.Stages {
		ops := append([]Op{}, st.Ops...)
		out.Stages = append(out.Stages, Stage{Ops: ops})
	}
	return out
}

// TestFuzzSeedsRoundTrip keeps the seed corpus exercised in plain `go
// test` runs (the nightly job additionally runs the fuzzer itself).
func TestFuzzSeedsRoundTrip(t *testing.T) {
	for i, s := range validSeedPlans {
		p, err := Decode(strings.NewReader(s))
		if err != nil {
			t.Fatalf("seed %d does not decode: %v", i, err)
		}
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			t.Fatalf("seed %d does not encode: %v", i, err)
		}
		q, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d does not re-decode: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(p), normalize(q)) {
			t.Fatalf("seed %d round trip diverged", i)
		}
	}
}
