package plan

import (
	"bytes"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := figure2c()
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Name != p.Name || got.NumBlocks != p.NumBlocks {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Stages) != len(p.Stages) {
		t.Fatalf("stages = %d, want %d", len(got.Stages), len(p.Stages))
	}
	for si := range p.Stages {
		if len(got.Stages[si].Ops) != len(p.Stages[si].Ops) {
			t.Fatalf("stage %d op count mismatch", si)
		}
		for oi := range p.Stages[si].Ops {
			a, b := p.Stages[si].Ops[oi], got.Stages[si].Ops[oi]
			if a != b {
				t.Errorf("stage %d op %d: %+v vs %+v", si, oi, a, b)
			}
		}
	}
	// The notation must survive too.
	if got.String() != p.String() {
		t.Errorf("plan string changed:\n%s\n%s", p, got)
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	cases := []string{
		`not json`,
		`{"name":"x","num_blocks":1,"stages":[[{"kind":"Z","block":0}]]}`,
		// Bwd before Fwd fails Validate.
		`{"name":"x","num_blocks":1,"stages":[[{"kind":"B","block":0}]]}`,
		// Block out of range.
		`{"name":"x","num_blocks":1,"stages":[[{"kind":"F","block":7}]]}`,
	}
	for i, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestEncodeUsesPaperMnemonics(t *testing.T) {
	p := &Plan{Name: "x", NumBlocks: 1, Stages: []Stage{
		{Ops: []Op{{Kind: Fwd, Block: 0}}},
		{Ops: []Op{{Kind: Bwd, Block: 0}}},
		{Ops: []Op{{Kind: SwapOut, Block: 0}}},
		{Ops: []Op{{Kind: GradExchange, Block: 0}}},
		{Ops: []Op{{Kind: UpdateCPU, Block: 0}}},
	}}
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"F"`, `"B"`, `"Sout"`, `"Ex"`, `"Ucpu"`} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %s in encoding", want)
		}
	}
}

func TestMemoryDeltaBalanced(t *testing.T) {
	p := figure2c()
	if d := p.MemoryDelta(); d != 0 {
		t.Errorf("figure2c plan leaks %v", d)
	}
	leaky := &Plan{Name: "l", NumBlocks: 1, Stages: []Stage{
		{Ops: []Op{{Kind: Fwd, Block: 0, Alloc: 10}}},
	}}
	if d := leaky.MemoryDelta(); d != 10 {
		t.Errorf("delta = %v, want 10", d)
	}
}
