// Package plan defines the execution-plan IR that KARMA's planner (and
// every baseline) emits — the "schedule of stages" of paper Algorithm 1 —
// and compiles it into the op DAG the sim package executes.
//
// A plan is a serial sequence of stages; ops inside one stage are
// independent and launch together (the paper's "||" notation), compute
// ops serialize stage order (the "→" notation), and asynchronous copies
// proceed on their own streams. Data dependencies (a backward pass needs
// its activations swapped in or recomputed; a gradient exchange needs the
// gradients computed; ...) are derived automatically from op kinds, so a
// planner only decides ordering and memory policy.
package plan

import (
	"fmt"
	"strings"

	"karma/internal/sim"
	"karma/internal/unit"
)

// Kind enumerates schedulable operations.
type Kind int

// Operation kinds.
const (
	Fwd          Kind = iota // forward compute of a block (device)
	Bwd                      // backward compute of a block (device)
	Recompute                // redundant forward recompute (device)
	SwapOut                  // device -> host copy
	SwapIn                   // host -> device copy
	GradExchange             // inter-node all-reduce of a block's gradients
	UpdateCPU                // weight update on the host (§III-G stage 5)
	UpdateGPU                // weight update on the device
	// MPAllReduce is the blocking model-parallel all-reduce of a
	// Megatron-style MP group spanning nodes: it reduces the partial sums
	// its block's latest compute op produced, and the compiler stalls the
	// consumer on it — the next block's forward, or the previous block's
	// backward (which may overlap it with its own weight-gradient work).
	MPAllReduce
	// MPAllReduceLocal is the same collective for an MP group packed
	// inside one node: it runs over NVLink and leaves the network stream
	// free for the data-parallel exchange.
	MPAllReduceLocal
	// ParamGather is ZeRO's parameter all-gather prefetch: in steady state
	// the gather of freshly-updated shards overlaps the forward pass that
	// consumes them, so it occupies the network stream without gating.
	ParamGather
	// Send is a pipeline-parallel stage-boundary transfer leaving this
	// device over the network: the boundary activation of a forward
	// micro-batch (or the boundary gradient of a backward one) bound for
	// the neighbouring stage. It launches once its block's latest compute
	// op has produced the tensor and proceeds asynchronously.
	Send
	// Recv is the matching arrival from a neighbouring stage: the block's
	// forward (or backward) compute gates on it — a micro-batch cannot
	// start before its input crosses the wire.
	Recv
	// SendLocal / RecvLocal are the same transfers for pipeline stages
	// packed inside one node, riding NVLink and leaving the network
	// stream to the data-parallel exchange.
	SendLocal
	RecvLocal
)

// numKinds bounds the Kind enum for flat (kind, block) indexing.
const numKinds = int(RecvLocal) + 1

// String returns the paper-style op mnemonic.
func (k Kind) String() string {
	switch k {
	case Fwd:
		return "F"
	case Bwd:
		return "B"
	case Recompute:
		return "R"
	case SwapOut:
		return "Sout"
	case SwapIn:
		return "Sin"
	case GradExchange:
		return "Ex"
	case UpdateCPU:
		return "Ucpu"
	case UpdateGPU:
		return "Ugpu"
	case MPAllReduce:
		return "Ar"
	case MPAllReduceLocal:
		return "ArL"
	case ParamGather:
		return "Ag"
	case Send:
		return "Tx"
	case Recv:
		return "Rx"
	case SendLocal:
		return "TxL"
	case RecvLocal:
		return "RxL"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// stream maps an op kind to its hardware stream.
func (k Kind) stream() sim.Stream {
	switch k {
	case Fwd, Bwd, Recompute, UpdateGPU:
		return sim.Compute
	case SwapOut:
		return sim.D2H
	case SwapIn:
		return sim.H2D
	case GradExchange, MPAllReduce, ParamGather, Send, Recv:
		return sim.Network
	case MPAllReduceLocal, SendLocal, RecvLocal:
		return sim.NVLink
	case UpdateCPU:
		return sim.HostCPU
	default:
		panic(fmt.Sprintf("plan: unknown kind %d", int(k)))
	}
}

// compute reports whether the kind runs on the device compute stream.
func (k Kind) compute() bool { return k.stream() == sim.Compute }

// Op is one operation on one block.
type Op struct {
	Kind  Kind
	Block int
	// Duration of the op once started.
	Duration unit.Seconds
	// Alloc is device memory acquired at start; Free is released at end.
	Alloc, Free unit.Bytes
}

// Stage is a set of ops launched together.
type Stage struct {
	Ops []Op
}

// Plan is a complete schedule over NumBlocks blocks.
type Plan struct {
	Name      string
	NumBlocks int
	Stages    []Stage
}

// String renders the plan in the paper's notation, e.g.
// "F0 → F1||Sout0 → ... → B1||Sin0 → B0".
func (p *Plan) String() string {
	var sb strings.Builder
	for i, st := range p.Stages {
		if i > 0 {
			sb.WriteString(" → ")
		}
		for j, op := range st.Ops {
			if j > 0 {
				sb.WriteString("||")
			}
			fmt.Fprintf(&sb, "%s%d", op.Kind, op.Block)
		}
	}
	return sb.String()
}

// Validate checks structural sanity: block indices in range, and every
// consumer op preceded by its producer (Bwd by Fwd, GradExchange by Bwd,
// updates by Bwd, MP all-reduces by some compute op of their block).
func (p *Plan) Validate() error {
	type seenKey struct {
		k Kind
		b int
	}
	seen := map[seenKey]bool{}
	for si, st := range p.Stages {
		for oi, op := range st.Ops {
			if op.Block < 0 || op.Block >= p.NumBlocks {
				return fmt.Errorf("plan %s: stage %d op %d: block %d out of range [0,%d)",
					p.Name, si, oi, op.Block, p.NumBlocks)
			}
			if op.Duration < 0 || op.Alloc < 0 || op.Free < 0 {
				return fmt.Errorf("plan %s: stage %d op %d: negative cost", p.Name, si, oi)
			}
			switch op.Kind {
			case Bwd:
				if !seen[seenKey{Fwd, op.Block}] {
					return fmt.Errorf("plan %s: B%d before F%d", p.Name, op.Block, op.Block)
				}
			case GradExchange:
				if !seen[seenKey{Bwd, op.Block}] {
					return fmt.Errorf("plan %s: Ex%d before B%d", p.Name, op.Block, op.Block)
				}
			case UpdateCPU, UpdateGPU:
				if !seen[seenKey{Bwd, op.Block}] {
					return fmt.Errorf("plan %s: update of block %d before B%d", p.Name, op.Block, op.Block)
				}
			case MPAllReduce, MPAllReduceLocal, Send, SendLocal:
				// A collective reduces — and a Send ships — a tensor some
				// compute of the block must first have produced; a Recv has
				// no local producer (its source is another device) and may
				// appear anywhere.
				if !seen[seenKey{Fwd, op.Block}] && !seen[seenKey{Bwd, op.Block}] && !seen[seenKey{Recompute, op.Block}] {
					return fmt.Errorf("plan %s: %s%d before any compute of block %d", p.Name, op.Kind, op.Block, op.Block)
				}
			}
			seen[seenKey{op.Kind, op.Block}] = true
		}
	}
	return nil
}

// Ref locates a plan op inside the compiled op slice.
type Ref struct {
	Stage, Index int // position within the plan
	Sim          int // index into the compiled []sim.Op
}

// Compiled is the result of lowering a Plan for simulation.
type Compiled struct {
	Ops []sim.Op
	// Refs parallels Ops, mapping each sim op back to its plan position.
	Refs []Ref
	// PlanOps parallels Ops with the original plan op.
	PlanOps []Op
}

// Compile lowers the plan to simulator ops.
//
// Launch dependencies: every op in stage s depends on the last
// compute-stream op of the nearest earlier stage that has one (stages
// gate on processing; copies and collectives are asynchronous).
//
// Data dependencies (auto-derived, keyed by most recent occurrence;
// MPAllReduce below stands for MPAllReduceLocal too):
//
//	Fwd(b), Bwd(b)  ← latest SwapIn(b), Recompute(b), ParamGather(b)
//	Fwd(b), Bwd(b)  ← latest Recv(b) (stage-boundary arrival; RecvLocal too)
//	Fwd(b)          ← latest MPAllReduce(b-1) (reduced boundary input)
//	Bwd(b)          ← latest MPAllReduce(b+1) (reduced gradient input)
//	Send(b)         ← latest compute op of the block (boundary source;
//	                  SendLocal too)
//	Recompute(b)    ← latest SwapIn(b) and SwapIn(b-1) (boundary/weights)
//	Recompute(b)    ← latest MPAllReduce(b-1) (replayed boundary)
//	SwapOut(b)      ← latest compute op of the block
//	MPAllReduce(b)  ← latest compute op of the block (partial-sum source)
//	GradExchange(b) ← latest SwapOut(b) (if any) else Bwd(b)
//	UpdateCPU(b),
//	UpdateGPU(b)    ← latest GradExchange(b) (if any) else SwapOut/Bwd
//	SwapIn(b)       ← latest UpdateCPU(b) (next-iteration reload)
//
// Compile allocates a fresh Compiler per call; callers lowering many
// same-shape plans (the planner's candidate search) should hold a
// Compiler and reuse it.
func (p *Plan) Compile() (*Compiled, error) {
	out, err := new(Compiler).Compile(p)
	if err != nil {
		return nil, err
	}
	// Detach from the (otherwise reusable) compiler buffers.
	return &Compiled{Ops: out.Ops, Refs: out.Refs, PlanOps: out.PlanOps}, nil
}

// Compiler lowers plans to simulator ops while retaining its working
// buffers — the op/ref arenas, the dependency arena, the (kind, block)
// recency table, and the label cache — between Compile calls, so
// lowering same-shape plans allocates ~nothing after the first call.
// A Compiler is not safe for concurrent use, and the Compiled view it
// returns is overwritten by the next Compile call.
type Compiler struct {
	out  Compiled
	deps []int // arena backing every compiled op's Deps slice
	// last and seen are flat (kind, block) tables sized numKinds*NumBlocks:
	// most recent sim-op index per key (-1 = none), and whether the key
	// appeared at all (validation).
	last   []int
	seen   []bool
	labels map[labelKey]string
}

type labelKey struct {
	k Kind
	b int
}

// label returns the cached "<kind><block>" string, formatting it once.
func (c *Compiler) label(k Kind, b int) string {
	if s, ok := c.labels[labelKey{k, b}]; ok {
		return s
	}
	if c.labels == nil {
		c.labels = map[labelKey]string{}
	}
	s := fmt.Sprintf("%s%d", k, b)
	c.labels[labelKey{k, b}] = s
	return s
}

// validate mirrors Plan.Validate exactly (same checks, same error
// messages) but marks (kind, block) occurrences in the compiler's flat
// table instead of a fresh map.
func (c *Compiler) validate(p *Plan) error {
	seen := c.seen
	was := func(k Kind, b int) bool { return seen[int(k)*p.NumBlocks+b] }
	for si, st := range p.Stages {
		for oi, op := range st.Ops {
			if op.Block < 0 || op.Block >= p.NumBlocks {
				return fmt.Errorf("plan %s: stage %d op %d: block %d out of range [0,%d)",
					p.Name, si, oi, op.Block, p.NumBlocks)
			}
			if op.Duration < 0 || op.Alloc < 0 || op.Free < 0 {
				return fmt.Errorf("plan %s: stage %d op %d: negative cost", p.Name, si, oi)
			}
			switch op.Kind {
			case Bwd:
				if !was(Fwd, op.Block) {
					return fmt.Errorf("plan %s: B%d before F%d", p.Name, op.Block, op.Block)
				}
			case GradExchange:
				if !was(Bwd, op.Block) {
					return fmt.Errorf("plan %s: Ex%d before B%d", p.Name, op.Block, op.Block)
				}
			case UpdateCPU, UpdateGPU:
				if !was(Bwd, op.Block) {
					return fmt.Errorf("plan %s: update of block %d before B%d", p.Name, op.Block, op.Block)
				}
			case MPAllReduce, MPAllReduceLocal, Send, SendLocal:
				if !was(Fwd, op.Block) && !was(Bwd, op.Block) && !was(Recompute, op.Block) {
					return fmt.Errorf("plan %s: %s%d before any compute of block %d", p.Name, op.Kind, op.Block, op.Block)
				}
			}
			seen[int(op.Kind)*p.NumBlocks+op.Block] = true
		}
	}
	return nil
}

// Compile lowers the plan, reusing the Compiler's buffers. Semantics
// are identical to Plan.Compile.
func (c *Compiler) Compile(p *Plan) (*Compiled, error) {
	// Size and clear the flat (kind, block) tables.
	n := numKinds * p.NumBlocks
	if cap(c.last) < n {
		c.last = make([]int, n)
		c.seen = make([]bool, n)
	}
	c.last = c.last[:n]
	c.seen = c.seen[:n]
	for i := range c.last {
		c.last[i] = -1
		c.seen[i] = false
	}
	if err := c.validate(p); err != nil {
		return nil, err
	}
	c.out.Ops = c.out.Ops[:0]
	c.out.Refs = c.out.Refs[:0]
	c.out.PlanOps = c.out.PlanOps[:0]
	c.deps = c.deps[:0]
	last := c.last
	lastGate := -1 // most recent compute gate across stages

	get := func(k Kind, b int) (int, bool) {
		if b < 0 || b >= p.NumBlocks {
			return 0, false
		}
		i := last[int(k)*p.NumBlocks+b]
		return i, i >= 0
	}
	// depStart marks the current op's segment of the dep arena; addDep
	// appends with dedup against that segment only. Declared once so the
	// closures are allocated per Compile, not per op.
	depStart := 0
	addDep := func(i int) {
		for _, d := range c.deps[depStart:] {
			if d == i {
				return
			}
		}
		c.deps = append(c.deps, i)
	}

	for si, st := range p.Stages {
		gateThisStage := -1
		for oi, op := range st.Ops {
			idx := len(c.out.Ops)
			depStart = len(c.deps)
			if lastGate >= 0 {
				c.deps = append(c.deps, lastGate)
			}
			switch op.Kind {
			case Fwd, Bwd:
				if i, ok := get(SwapIn, op.Block); ok {
					addDep(i)
				}
				if i, ok := get(Recompute, op.Block); ok {
					addDep(i)
				}
				if i, ok := get(ParamGather, op.Block); ok {
					addDep(i)
				}
				for _, k := range []Kind{Recv, RecvLocal} {
					if i, ok := get(k, op.Block); ok {
						addDep(i)
					}
				}
				// A blocking MP collective feeds the consumer of the tensor
				// it reduces: the next block's forward, or the previous
				// block's backward.
				nb := op.Block - 1
				if op.Kind == Bwd {
					nb = op.Block + 1
				}
				for _, k := range []Kind{MPAllReduce, MPAllReduceLocal} {
					if i, ok := get(k, nb); ok {
						addDep(i)
					}
				}
			case Recompute:
				// A recompute replays from its predecessor's boundary
				// activation; when that predecessor was swapped out, the
				// replay must wait for its prefetch (§III-F: recompute
				// interleaved with the swap stream). Under weight
				// streaming the replay also needs the block's own weights
				// back on the device, and under model parallelism a
				// just-replayed predecessor boundary must be re-reduced.
				if i, ok := get(SwapIn, op.Block); ok {
					addDep(i)
				}
				if op.Block > 0 {
					if i, ok := get(SwapIn, op.Block-1); ok {
						addDep(i)
					}
					for _, k := range []Kind{MPAllReduce, MPAllReduceLocal} {
						if i, ok := get(k, op.Block-1); ok {
							addDep(i)
						}
					}
				}
			case SwapOut:
				for _, k := range []Kind{UpdateGPU, Bwd, Recompute, Fwd} {
					if i, ok := get(k, op.Block); ok {
						addDep(i)
						break
					}
				}
			case MPAllReduce, MPAllReduceLocal, Send, SendLocal:
				// The most recent compute op of the block produced the
				// partial sums the collective reduces — or, for a Send, the
				// boundary tensor crossing to the neighbouring stage.
				latest := -1
				for _, k := range []Kind{Fwd, Bwd, Recompute} {
					if i, ok := get(k, op.Block); ok && i > latest {
						latest = i
					}
				}
				if latest >= 0 {
					addDep(latest)
				}
			case GradExchange:
				if i, ok := get(SwapOut, op.Block); ok {
					addDep(i)
				} else if i, ok := get(Bwd, op.Block); ok {
					addDep(i)
				}
			case UpdateCPU, UpdateGPU:
				found := false
				for _, k := range []Kind{GradExchange, SwapOut} {
					if i, ok := get(k, op.Block); ok {
						addDep(i)
						found = true
					}
				}
				if op.Kind == UpdateCPU {
					if i, ok := get(UpdateGPU, op.Block); ok {
						addDep(i)
						found = true
					}
				}
				if !found {
					if i, ok := get(Bwd, op.Block); ok {
						addDep(i)
					}
				}
			case SwapIn:
				if i, ok := get(UpdateCPU, op.Block); ok {
					addDep(i)
				}
			}
			c.out.Ops = append(c.out.Ops, sim.Op{
				Label:      c.label(op.Kind, op.Block),
				Stream:     op.Kind.stream(),
				Duration:   op.Duration,
				Deps:       c.deps[depStart:len(c.deps):len(c.deps)],
				AllocBytes: op.Alloc,
				FreeBytes:  op.Free,
			})
			c.out.Refs = append(c.out.Refs, Ref{Stage: si, Index: oi, Sim: idx})
			c.out.PlanOps = append(c.out.PlanOps, op)
			last[int(op.Kind)*p.NumBlocks+op.Block] = idx
			if op.Kind.compute() {
				gateThisStage = idx
			}
		}
		if gateThisStage >= 0 {
			lastGate = gateThisStage
		}
	}
	return &c.out, nil
}

// Builder assembles plans stage by stage into reusable arenas: all
// stage op slices share one backing array and the stage list is
// recycled across Reset calls, so rebuilding same-shape plans (the
// planner's candidate search) allocates ~nothing after the first build.
// The *Plan returned by Plan aliases the builder's buffers and is
// invalidated by the next Reset; callers that keep a plan must copy it.
type Builder struct {
	p   Plan
	ops []Op // arena backing every stage's Ops slice
	cur int  // start of the open stage within ops
}

// Reset clears the builder and names the plan being assembled.
func (b *Builder) Reset(name string, numBlocks int) *Builder {
	b.p.Name = name
	b.p.NumBlocks = numBlocks
	b.p.Stages = b.p.Stages[:0]
	b.ops = b.ops[:0]
	return b
}

// BeginStage opens a new stage; subsequent Add calls land in it.
func (b *Builder) BeginStage() { b.cur = len(b.ops) }

// Add appends an op to the open stage.
func (b *Builder) Add(op Op) { b.ops = append(b.ops, op) }

// EndStage commits the open stage — possibly empty, matching planners
// that emit placeholder stages.
func (b *Builder) EndStage() {
	b.p.Stages = append(b.p.Stages, Stage{Ops: b.ops[b.cur:len(b.ops):len(b.ops)]})
}

// Stage commits the given ops as one complete stage.
func (b *Builder) Stage(ops ...Op) {
	b.BeginStage()
	b.ops = append(b.ops, ops...)
	b.EndStage()
}

// Plan returns the assembled plan, valid until the next Reset.
func (b *Builder) Plan() *Plan { return &b.p }

// Simulate compiles and runs the plan against the given capacity.
func (p *Plan) Simulate(capacity unit.Bytes) (*Compiled, *sim.Timeline, error) {
	c, err := p.Compile()
	if err != nil {
		return nil, nil, err
	}
	tl, err := sim.Run(c.Ops, capacity)
	if err != nil {
		return nil, nil, fmt.Errorf("plan %s: %w", p.Name, err)
	}
	return c, tl, nil
}
