package plan

import (
	"strings"
	"testing"

	"karma/internal/sim"
	"karma/internal/unit"
)

// simDeps returns the compiled dependency list of the op at (stage, idx).
func simDeps(t *testing.T, c *Compiled, stage, idx int) []int {
	t.Helper()
	for i, r := range c.Refs {
		if r.Stage == stage && r.Index == idx {
			return c.Ops[i].Deps
		}
	}
	t.Fatalf("no op at stage %d idx %d", stage, idx)
	return nil
}

func hasDep(deps []int, want int) bool {
	for _, d := range deps {
		if d == want {
			return true
		}
	}
	return false
}

// TestValidateMPAllReduceNeedsCompute: a collective with no prior
// compute op of its block has nothing to reduce.
func TestValidateMPAllReduceNeedsCompute(t *testing.T) {
	p := &Plan{Name: "t", NumBlocks: 2, Stages: []Stage{
		{Ops: []Op{{Kind: MPAllReduce, Block: 0, Duration: 1}}},
	}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "before any compute") {
		t.Errorf("want producer error, got %v", err)
	}
	p = &Plan{Name: "t", NumBlocks: 2, Stages: []Stage{
		{Ops: []Op{{Kind: Fwd, Block: 0, Duration: 1}}},
		{Ops: []Op{{Kind: MPAllReduceLocal, Block: 0, Duration: 1}}},
	}}
	if err := p.Validate(); err != nil {
		t.Errorf("collective after forward should validate: %v", err)
	}
}

// TestCompileMPAllReduceConsumers: the forward of block b+1 and the
// backward of block b-1 wait on block b's collective (the Megatron
// blocking semantics), while unrelated ops do not.
func TestCompileMPAllReduceConsumers(t *testing.T) {
	p := &Plan{Name: "t", NumBlocks: 2, Stages: []Stage{
		{Ops: []Op{{Kind: Fwd, Block: 0, Duration: 1}}},
		{Ops: []Op{{Kind: MPAllReduce, Block: 0, Duration: 1}}}, // stage 1
		{Ops: []Op{{Kind: Fwd, Block: 1, Duration: 1}}},         // stage 2
		{Ops: []Op{{Kind: Bwd, Block: 1, Duration: 1}}},
		{Ops: []Op{{Kind: MPAllReduce, Block: 1, Duration: 1}}}, // stage 4
		{Ops: []Op{{Kind: Bwd, Block: 0, Duration: 1}}},         // stage 5
	}}
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	arFwd := c.Refs[1].Sim
	if deps := simDeps(t, c, 2, 0); !hasDep(deps, arFwd) {
		t.Errorf("F1 deps %v missing Ar0 (%d)", deps, arFwd)
	}
	arBwd := c.Refs[4].Sim
	if deps := simDeps(t, c, 5, 0); !hasDep(deps, arBwd) {
		t.Errorf("B0 deps %v missing Ar1 (%d)", deps, arBwd)
	}
}

// TestCollectiveOverlapsWgrad: with the backward split into dgrad and
// wgrad halves, the input-gradient collective runs concurrently with
// the wgrad half — the simulated makespan must beat full serialization.
func TestCollectiveOverlapsWgrad(t *testing.T) {
	p := &Plan{Name: "t", NumBlocks: 2, Stages: []Stage{
		{Ops: []Op{{Kind: Fwd, Block: 0, Duration: 1}}},
		{Ops: []Op{{Kind: Fwd, Block: 1, Duration: 1}}},
		{Ops: []Op{{Kind: Bwd, Block: 1, Duration: 1}}}, // dgrad half
		{Ops: []Op{{Kind: MPAllReduce, Block: 1, Duration: 3}}},
		{Ops: []Op{{Kind: Bwd, Block: 1, Duration: 1}}}, // wgrad half
		{Ops: []Op{{Kind: Bwd, Block: 0, Duration: 1}}},
	}}
	c, tl, err := p.Simulate(unit.GiB)
	if err != nil {
		t.Fatal(err)
	}
	_ = c
	// Serial would be 1+1+1+3+1+1 = 8; with the collective overlapping
	// the wgrad half the makespan is 7.
	if got, want := float64(tl.Makespan), 7.0; got != want {
		t.Errorf("makespan %v, want %v (wgrad overlapped)", got, want)
	}
}

// TestParamGatherFeedsForward: a forward waits for its block's gather,
// and gathers do not gate unrelated stages.
func TestParamGatherFeedsForward(t *testing.T) {
	p := &Plan{Name: "t", NumBlocks: 2, Stages: []Stage{
		{Ops: []Op{{Kind: ParamGather, Block: 0, Duration: 5}}},
		{Ops: []Op{{Kind: ParamGather, Block: 1, Duration: 1}}},
		{Ops: []Op{{Kind: Fwd, Block: 0, Duration: 1}}},
		{Ops: []Op{{Kind: Fwd, Block: 1, Duration: 1}}},
	}}
	c, tl, err := p.Simulate(unit.GiB)
	if err != nil {
		t.Fatal(err)
	}
	ag0 := c.Refs[0].Sim
	if deps := simDeps(t, c, 2, 0); !hasDep(deps, ag0) {
		t.Errorf("F0 deps %v missing Ag0 (%d)", deps, ag0)
	}
	// F0 waits for its 5s gather; F1's 1s gather drained behind it on the
	// network stream, so F1 follows F0 immediately: makespan 7.
	if got, want := float64(tl.Makespan), 7.0; got != want {
		t.Errorf("makespan %v, want %v", got, want)
	}
}

// TestLocalCollectiveLeavesNetworkFree: an NVLink collective and a
// network exchange of equal length overlap fully instead of queueing on
// one stream.
func TestLocalCollectiveLeavesNetworkFree(t *testing.T) {
	p := &Plan{Name: "t", NumBlocks: 2, Stages: []Stage{
		{Ops: []Op{{Kind: Fwd, Block: 0, Duration: 1}}},
		{Ops: []Op{{Kind: Fwd, Block: 1, Duration: 1}}},
		{Ops: []Op{{Kind: Bwd, Block: 1, Duration: 1}}},
		{Ops: []Op{{Kind: MPAllReduceLocal, Block: 1, Duration: 4}}},
		{Ops: []Op{{Kind: GradExchange, Block: 1, Duration: 4}}},
		{Ops: []Op{{Kind: Bwd, Block: 0, Duration: 1}}},
	}}
	c, tl, err := p.Simulate(unit.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Busy[sim.NVLink] != 4 || tl.Busy[sim.Network] != 4 {
		t.Fatalf("stream busy: nvlink=%v net=%v", tl.Busy[sim.NVLink], tl.Busy[sim.Network])
	}
	_ = c
	// B0 waits for the NVLink collective (3..7); the exchange runs
	// concurrently on the network: makespan 8, not 12.
	if got, want := float64(tl.Makespan), 8.0; got != want {
		t.Errorf("makespan %v, want %v (streams overlap)", got, want)
	}
}

// TestUpdateWaitsForExchange: the device-side optimizer step must not
// start before its block's gradient exchange has drained.
func TestUpdateWaitsForExchange(t *testing.T) {
	p := &Plan{Name: "t", NumBlocks: 1, Stages: []Stage{
		{Ops: []Op{{Kind: Fwd, Block: 0, Duration: 1}}},
		{Ops: []Op{{Kind: Bwd, Block: 0, Duration: 1}}},
		{Ops: []Op{{Kind: GradExchange, Block: 0, Duration: 5}}},
		{Ops: []Op{{Kind: UpdateGPU, Block: 0, Duration: 1}}},
	}}
	_, tl, err := p.Simulate(unit.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := float64(tl.Makespan), 8.0; got != want {
		t.Errorf("makespan %v, want %v (update after exchange)", got, want)
	}
}

// TestNewKindsRoundTripJSON: the collective kinds survive the wire
// format.
func TestNewKindsRoundTripJSON(t *testing.T) {
	p := &Plan{Name: "t", NumBlocks: 2, Stages: []Stage{
		{Ops: []Op{{Kind: ParamGather, Block: 0, Duration: 1}}},
		{Ops: []Op{{Kind: Fwd, Block: 0, Duration: 1}}},
		{Ops: []Op{{Kind: MPAllReduce, Block: 0, Duration: 1}}},
		{Ops: []Op{{Kind: Fwd, Block: 1, Duration: 1}}},
		{Ops: []Op{{Kind: MPAllReduceLocal, Block: 1, Duration: 1}}},
	}}
	var sb strings.Builder
	if err := p.Encode(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != p.String() {
		t.Errorf("round trip %q != %q", got.String(), p.String())
	}
}
