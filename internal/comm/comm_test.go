package comm

import (
	"testing"
	"testing/quick"

	"karma/internal/hw"
	"karma/internal/topo"
	"karma/internal/unit"
)

func TestBackendPick(t *testing.T) {
	if b := Pick(512); b.Name != "nccl" {
		t.Errorf("512 GPUs should pick nccl, got %s", b.Name)
	}
	// The paper's rule: NCCL unstable beyond ~1,000 GPUs -> MPI.
	if b := Pick(2048); b.Name != "mpi" {
		t.Errorf("2048 GPUs should pick mpi, got %s", b.Name)
	}
	if !MPI().Reliable(1 << 20) {
		t.Error("mpi should be reliable at any scale")
	}
}

func TestRingAllReduceBasics(t *testing.T) {
	b := Backend{Name: "ideal", Latency: 0, BWEfficiency: 1}
	// p=2: 2 steps of n/2 bytes at 1 GB/s -> n bytes total time.
	got := RingAllReduce(unit.Bytes(1e9), 2, 1*unit.GBps, b)
	if got != 1 {
		t.Errorf("allreduce = %v, want 1s", got)
	}
	if RingAllReduce(100, 1, unit.GBps, b) != 0 {
		t.Error("single participant needs no exchange")
	}
	if RingAllReduce(0, 8, unit.GBps, b) != 0 {
		t.Error("zero bytes needs no exchange")
	}
}

func TestRingAllReduceBandwidthOptimal(t *testing.T) {
	// Ring all-reduce total volume approaches 2n regardless of p: time
	// should be nearly flat in p (bandwidth-optimal), up to latency.
	b := Backend{Name: "ideal", Latency: 0, BWEfficiency: 1}
	t4 := RingAllReduce(unit.Bytes(1e9), 4, unit.GBps, b)
	t64 := RingAllReduce(unit.Bytes(1e9), 64, unit.GBps, b)
	ratio := float64(t64) / float64(t4)
	if ratio > 1.4 {
		t.Errorf("ring should be near bandwidth-optimal: t64/t4 = %v", ratio)
	}
}

func TestRingAllReduceLatencyGrowsWithP(t *testing.T) {
	b := MPI()
	small := RingAllReduce(unit.Bytes(1024), 4, unit.GBps, b)
	big := RingAllReduce(unit.Bytes(1024), 256, unit.GBps, b)
	if big <= small {
		t.Error("latency-bound collective should grow with participant count")
	}
}

func TestHierarchicalFasterThanFlatRing(t *testing.T) {
	c := hw.ABCI()
	b := MPI()
	n := unit.Bytes(256 << 20)
	flat := RingAllReduce(n, 512, c.NetBW, b)
	hier := HierarchicalAllReduce(n, c, 512, b)
	if hier >= flat {
		t.Errorf("hierarchical (%v) should beat flat ring over the network (%v)", hier, flat)
	}
}

func TestHierarchicalSingleGPU(t *testing.T) {
	if got := HierarchicalAllReduce(1<<20, hw.ABCI(), 1, MPI()); got != 0 {
		t.Errorf("1 GPU exchange = %v, want 0", got)
	}
}

func TestHierarchicalIntraNodeOnly(t *testing.T) {
	// 4 GPUs on one node: only NVLink traffic, no network term.
	c := hw.ABCI()
	got := HierarchicalAllReduce(1<<30, c, 4, NCCL())
	if got <= 0 {
		t.Fatal("intra-node exchange should take time")
	}
	// Must be much cheaper than a 2-node exchange of the same payload.
	two := HierarchicalAllReduce(1<<30, c, 8, NCCL())
	if two <= got {
		t.Error("adding the network should cost more")
	}
}

func TestPhasedGroupsCoverAllBlocks(t *testing.T) {
	sizes := []unit.Bytes{1 << 20, 64 << 20, 1 << 10, 128 << 20, 1 << 12}
	groups := PhasedGroups(sizes, hw.ABCI(), 256, MPI())
	seen := map[int]bool{}
	for _, g := range groups {
		for _, b := range g.Blocks {
			if seen[b] {
				t.Errorf("block %d in two groups", b)
			}
			seen[b] = true
		}
		if g.Time < 0 {
			t.Errorf("negative group time %v", g.Time)
		}
	}
	if len(seen) != len(sizes) {
		t.Errorf("covered %d of %d blocks", len(seen), len(sizes))
	}
}

func TestPhasedGroupsMergeSmallBlocks(t *testing.T) {
	// Many tiny payloads must merge (latency amortization), not ship
	// one-by-one.
	sizes := make([]unit.Bytes, 32)
	for i := range sizes {
		sizes[i] = 1 << 10
	}
	groups := PhasedGroups(sizes, hw.ABCI(), 1024, MPI())
	if len(groups) >= len(sizes) {
		t.Errorf("%d groups for %d tiny blocks; expected merging", len(groups), len(sizes))
	}
}

func TestPhasedGroupsLargeBlocksStandAlone(t *testing.T) {
	sizes := []unit.Bytes{512 << 20, 512 << 20, 512 << 20}
	groups := PhasedGroups(sizes, hw.ABCI(), 1024, MPI())
	if len(groups) != 3 {
		t.Errorf("large blocks should not merge: %d groups", len(groups))
	}
}

func TestPhasedTotalTimeAtLeastBulkBandwidth(t *testing.T) {
	// Phasing can't reduce total volume; summed phase time is >= the bulk
	// time minus latency effects. (It wins by overlapping, not by magic.)
	sizes := []unit.Bytes{64 << 20, 64 << 20, 64 << 20, 64 << 20}
	c := hw.ABCI()
	b := MPI()
	var phased unit.Seconds
	for _, g := range PhasedGroups(sizes, c, 512, b) {
		phased += g.Time
	}
	bulk := BulkTime(sizes, c, 512, b)
	if phased < bulk-0.01 {
		t.Errorf("phased total %v implausibly below bulk %v", phased, bulk)
	}
}

func TestPhasedGroupsEmpty(t *testing.T) {
	if got := PhasedGroups(nil, hw.ABCI(), 8, MPI()); got != nil {
		t.Errorf("empty input should return nil, got %v", got)
	}
}

// Property: all-reduce time is monotone in payload.
func TestAllReduceMonotone(t *testing.T) {
	c := hw.ABCI()
	b := MPI()
	f := func(a, d uint32) bool {
		small := unit.Bytes(a)
		large := small + unit.Bytes(d)
		return HierarchicalAllReduce(large, c, 128, b) >= HierarchicalAllReduce(small, c, 128, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduceScatterAllGatherComposeToAllReduce(t *testing.T) {
	// reduce-scatter + all-gather equals one ring all-reduce: 2(p-1)
	// steps of n/p bytes.
	b := Backend{Name: "ideal", Latency: 0, BWEfficiency: 1}
	n := unit.Bytes(1 << 30)
	const p = 16
	rs := ReduceScatter(n, p, unit.GBps, b)
	ag := AllGather(n, p, unit.GBps, b)
	ar := RingAllReduce(n, p, unit.GBps, b)
	if rs+ag != ar {
		t.Errorf("rs(%v)+ag(%v) != allreduce(%v)", rs, ag, ar)
	}
}

func TestReduceScatterEdgeCases(t *testing.T) {
	b := MPI()
	if ReduceScatter(100, 1, unit.GBps, b) != 0 {
		t.Error("single endpoint needs no exchange")
	}
	if ReduceScatter(0, 8, unit.GBps, b) != 0 {
		t.Error("zero payload needs no exchange")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative size should panic")
		}
	}()
	ReduceScatter(-1, 4, unit.GBps, b)
}

// --- topology-routed façade ---

// TestOverVariantsMatchFlatLegacy: the engine-taking entry points agree
// exactly with the legacy explicit-bandwidth ones when the engine is the
// equivalent contended flat link — the façade contract that kept every
// seed golden green across the topo refactor.
func TestOverVariantsMatchFlatLegacy(t *testing.T) {
	cl := hw.ABCI()
	b := NCCL()
	share := cl.NetBW / unit.BytesPerSec(float64(cl.Node.Devices))
	e := topo.Engine{T: cl.Topo(), Concurrent: cl.Node.Devices}
	n := unit.Bytes(200 << 20)
	if got, want := RingAllReduceOver(e, n, 128, b), RingAllReduce(n, 128, share, b); got != want {
		t.Errorf("RingAllReduceOver = %v, legacy %v", got, want)
	}
	sizes := []unit.Bytes{1 << 20, 64 << 20, 1 << 10, 128 << 20}
	over := RingPhasedGroupsOver(e, sizes, 128, b)
	legacy := RingPhasedGroups(sizes, 128, share, b)
	if len(over) != len(legacy) {
		t.Fatalf("group counts differ: %d vs %d", len(over), len(legacy))
	}
	for i := range over {
		if over[i].Time != legacy[i].Time || over[i].Bytes != legacy[i].Bytes {
			t.Errorf("group %d: %+v vs %+v", i, over[i], legacy[i])
		}
	}
	if got, want := PointToPointOver(e, n, false, b), PointToPoint(n, share, b); got != want {
		t.Errorf("PointToPointOver inter = %v, legacy %v", got, want)
	}
	if got, want := PointToPointOver(e, n, true, b), PointToPoint(n, cl.Node.IntraBW, b); got != want {
		t.Errorf("PointToPointOver intra = %v, legacy NVLink %v", got, want)
	}
}

// TestHierarchicalRidesClusterTopology: giving the cluster ABCI's 2-NIC
// fabric speeds up the hierarchical collective's inter-node ring, and an
// oversubscribed fat tree slows it back down.
func TestHierarchicalRidesClusterTopology(t *testing.T) {
	cl := hw.ABCI()
	b := MPI()
	n := unit.Bytes(256 << 20)
	flat := HierarchicalAllReduce(n, cl, 512, b)
	abci := HierarchicalAllReduce(n, cl.WithTopology(topo.ABCI()), 512, b)
	over := HierarchicalAllReduce(n, cl.WithTopology(topo.FatTree(8)), 512, b)
	if abci >= flat {
		t.Errorf("abci (%v) should beat flat (%v): twice the egress", abci, flat)
	}
	if over <= flat {
		t.Errorf("8:1 oversubscribed (%v) should lose to flat (%v)", over, flat)
	}
}

// TestPhasedGroupsThresholdFollowsTopology: a fatter fabric raises the
// merge threshold (bandwidth-latency product), so the same payloads form
// fewer, larger groups.
func TestPhasedGroupsThresholdFollowsTopology(t *testing.T) {
	cl := hw.ABCI()
	b := MPI()
	sizes := make([]unit.Bytes, 48)
	for i := range sizes {
		sizes[i] = 3 << 20
	}
	flat := PhasedGroups(sizes, cl, 512, b)
	abci := PhasedGroups(sizes, cl.WithTopology(topo.ABCI()), 512, b)
	if len(abci) > len(flat) {
		t.Errorf("abci formed %d groups, flat %d; more bandwidth should merge harder", len(abci), len(flat))
	}
}
