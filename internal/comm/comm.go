// Package comm models the collective-communication substrate of the
// multi-node evaluation (§III-G, Fig. 3 stage 4): ring and hierarchical
// all-reduce cost, communication backends (NCCL vs the MPI backend the
// paper fell back to at >1,000 GPUs), and the phased gradient exchange —
// the layer-grouping scheme of Shi et al. the paper adopts for blocks.
package comm

import (
	"fmt"

	"karma/internal/hw"
	"karma/internal/unit"
)

// Backend describes a communication library's performance envelope.
type Backend struct {
	Name string
	// Latency per collective step.
	Latency unit.Seconds
	// BWEfficiency is the achieved fraction of link bandwidth.
	BWEfficiency float64
	// MaxReliableGPUs is the scale above which the backend is considered
	// unstable (0 = unlimited). The paper reports NCCL instability beyond
	// ~1,000 GPUs (§III-H) and switches to MPI.
	MaxReliableGPUs int
}

// NCCL returns the NCCL-like backend: low latency, high efficiency,
// unstable at extreme scale.
func NCCL() Backend {
	return Backend{Name: "nccl", Latency: 5e-6, BWEfficiency: 0.90, MaxReliableGPUs: 1024}
}

// MPI returns the PyTorch MPI-backend envelope used for the large runs.
func MPI() Backend {
	return Backend{Name: "mpi", Latency: 15e-6, BWEfficiency: 0.80}
}

// Reliable reports whether the backend is usable at the given scale.
func (b Backend) Reliable(gpus int) bool {
	return b.MaxReliableGPUs == 0 || gpus <= b.MaxReliableGPUs
}

// Pick returns NCCL when reliable at the scale, MPI otherwise — the
// paper's operational rule.
func Pick(gpus int) Backend {
	if n := NCCL(); n.Reliable(gpus) {
		return n
	}
	return MPI()
}

// RingAllReduce returns the ring all-reduce time for n bytes among p
// endpoints over per-endpoint bandwidth bw: 2(p-1) steps each moving n/p
// bytes.
func RingAllReduce(n unit.Bytes, p int, bw unit.BytesPerSec, b Backend) unit.Seconds {
	if p <= 1 || n == 0 {
		return 0
	}
	if n < 0 {
		panic(fmt.Sprintf("comm: negative size %d", n))
	}
	eff := unit.BytesPerSec(float64(bw) * b.BWEfficiency)
	steps := 2 * (p - 1)
	chunk := unit.Bytes(float64(n) / float64(p))
	per := unit.TransferTime(chunk, eff, b.Latency)
	return unit.Seconds(float64(steps)) * per
}

// HierarchicalAllReduce composes the collective over a cluster topology:
// intra-node reduce over NVLink, inter-node ring over the network, then
// intra-node broadcast — the standard multi-rail scheme on ABCI-like
// machines. gpus is the total participating device count.
func HierarchicalAllReduce(n unit.Bytes, c hw.Cluster, gpus int, b Backend) unit.Seconds {
	if gpus <= 1 || n == 0 {
		return 0
	}
	perNode := c.Node.Devices
	if gpus < perNode {
		perNode = gpus
	}
	nodes := (gpus + c.Node.Devices - 1) / c.Node.Devices
	var t unit.Seconds
	if perNode > 1 {
		// Intra-node reduce + broadcast: (perNode-1)/perNode of the
		// payload each way over NVLink.
		frac := unit.Bytes(float64(n) * float64(perNode-1) / float64(perNode))
		eff := unit.BytesPerSec(float64(c.Node.IntraBW) * b.BWEfficiency)
		t += 2 * unit.TransferTime(frac, eff, b.Latency)
	}
	if nodes > 1 {
		t += RingAllReduce(n, nodes, c.NetBW, b)
	}
	return t
}

// Group is one phase of the phased gradient exchange: consecutive blocks
// whose gradients are merged into a single collective.
type Group struct {
	// Blocks are indices (in completion order) merged into this phase.
	Blocks []int
	Bytes  unit.Bytes
	Time   unit.Seconds
}

// mergeGroups applies the Shi et al. grouping rule: blocks merge into a
// phase while the accumulated payload is below the latency-bandwidth
// threshold of the collective, and each flushed group is costed by the
// caller's collective model.
func mergeGroups(sizes []unit.Bytes, threshold unit.Bytes, cost func(unit.Bytes) unit.Seconds) []Group {
	var out []Group
	cur := Group{}
	flush := func() {
		if len(cur.Blocks) == 0 {
			return
		}
		cur.Time = cost(cur.Bytes)
		out = append(out, cur)
		cur = Group{}
	}
	for i, s := range sizes {
		if s < 0 {
			panic(fmt.Sprintf("comm: negative block size %d", s))
		}
		cur.Blocks = append(cur.Blocks, i)
		cur.Bytes += s
		if cur.Bytes >= threshold {
			flush()
		}
	}
	flush()
	return out
}

// PhasedGroups merges per-block gradient payloads (in backward completion
// order) into exchange phases following the Shi et al. grouping rule the
// paper adopts (§III-G): merging amortizes per-collective latency, but a
// group must stay small enough that communication still overlaps the
// remaining backward work. Blocks merge while a group's payload is below
// the latency-bandwidth product threshold of the collective.
func PhasedGroups(sizes []unit.Bytes, c hw.Cluster, gpus int, b Backend) []Group {
	if len(sizes) == 0 {
		return nil
	}
	// Threshold: the payload at which the bandwidth term matches the
	// aggregated latency term of a ring step — below it, merging is free.
	nodes := (gpus + c.Node.Devices - 1) / c.Node.Devices
	steps := 2 * (nodes - 1)
	if steps <= 0 {
		steps = 2
	}
	eff := unit.BytesPerSec(float64(c.NetBW) * b.BWEfficiency)
	threshold := unit.Bytes(float64(steps) * float64(b.Latency) * float64(eff))
	return mergeGroups(sizes, threshold, func(n unit.Bytes) unit.Seconds {
		return HierarchicalAllReduce(n, c, gpus, b)
	})
}

// RingPhasedGroups merges per-block payloads (in backward completion
// order) into exchange phases for a flat ring over p endpoints at
// per-endpoint bandwidth bw — the PhasedGroups rule applied to the
// contended ring of the in-core hybrids' data-parallel exchange, where
// one replica per node participates and the node bandwidth divides among
// concurrent shard collectives. Each group's Time is the ring all-reduce
// of its payload; a reduce-scatter or all-gather phase costs exactly
// half (half the ring steps).
func RingPhasedGroups(sizes []unit.Bytes, p int, bw unit.BytesPerSec, b Backend) []Group {
	if len(sizes) == 0 {
		return nil
	}
	steps := 2 * (p - 1)
	if steps <= 0 {
		steps = 2
	}
	eff := unit.BytesPerSec(float64(bw) * b.BWEfficiency)
	threshold := unit.Bytes(float64(steps) * float64(b.Latency) * float64(eff))
	return mergeGroups(sizes, threshold, func(n unit.Bytes) unit.Seconds {
		return RingAllReduce(n, p, bw, b)
	})
}

// BulkTime returns the single-shot (non-phased) exchange time for the
// summed payload — the baseline the phased scheme is compared against
// (ablation A3).
func BulkTime(sizes []unit.Bytes, c hw.Cluster, gpus int, b Backend) unit.Seconds {
	var n unit.Bytes
	for _, s := range sizes {
		n += s
	}
	return HierarchicalAllReduce(n, c, gpus, b)
}

// ReduceScatter returns the time to reduce n bytes and leave each of the
// p endpoints with its n/p shard: (p-1) ring steps of n/p bytes — half an
// all-reduce. ZeRO-style sharded optimizers build on this primitive.
func ReduceScatter(n unit.Bytes, p int, bw unit.BytesPerSec, b Backend) unit.Seconds {
	if p <= 1 || n == 0 {
		return 0
	}
	if n < 0 {
		panic(fmt.Sprintf("comm: negative size %d", n))
	}
	eff := unit.BytesPerSec(float64(bw) * b.BWEfficiency)
	chunk := unit.Bytes(float64(n) / float64(p))
	per := unit.TransferTime(chunk, eff, b.Latency)
	return unit.Seconds(float64(p-1)) * per
}

// AllGather returns the time for each endpoint to collect all p shards of
// n total bytes: (p-1) ring steps of n/p bytes — the other half.
func AllGather(n unit.Bytes, p int, bw unit.BytesPerSec, b Backend) unit.Seconds {
	return ReduceScatter(n, p, bw, b) // identical cost structure
}

// PointToPoint returns the time to move n bytes between two endpoints
// over per-endpoint bandwidth bw — the stage-boundary send/recv of
// pipeline (inter-layer) parallelism. One message, one latency.
func PointToPoint(n unit.Bytes, bw unit.BytesPerSec, b Backend) unit.Seconds {
	if n == 0 {
		return 0
	}
	if n < 0 {
		panic(fmt.Sprintf("comm: negative size %d", n))
	}
	eff := unit.BytesPerSec(float64(bw) * b.BWEfficiency)
	return unit.TransferTime(n, eff, b.Latency)
}
