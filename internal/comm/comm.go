// Package comm models the collective-communication substrate of the
// multi-node evaluation (§III-G, Fig. 3 stage 4): communication backends
// (NCCL vs the MPI backend the paper fell back to at >1,000 GPUs) and the
// phased gradient exchange — the layer-grouping scheme of Shi et al. the
// paper adopts for blocks. Collective costs are a thin façade over the
// hierarchical interconnect engine of internal/topo: every ring,
// hierarchical, reduce-scatter/all-gather and point-to-point transfer is
// routed over the cluster's Topology (rails, switch hops,
// oversubscription, contention), and the legacy explicit-bandwidth entry
// points route over a degenerate flat link so pre-computed shares keep
// their exact seed-model cost.
package comm

import (
	"fmt"

	"karma/internal/hw"
	"karma/internal/topo"
	"karma/internal/unit"
)

// Backend describes a communication library's performance envelope.
type Backend struct {
	Name string
	// Latency per collective step.
	Latency unit.Seconds
	// BWEfficiency is the achieved fraction of link bandwidth.
	BWEfficiency float64
	// MaxReliableGPUs is the scale above which the backend is considered
	// unstable (0 = unlimited). The paper reports NCCL instability beyond
	// ~1,000 GPUs (§III-H) and switches to MPI.
	MaxReliableGPUs int
}

// Xfer returns the backend's envelope in the form the topology engine
// costs routes under.
func (b Backend) Xfer() topo.Xfer {
	return topo.Xfer{Latency: b.Latency, Eff: b.BWEfficiency}
}

// NCCL returns the NCCL-like backend: low latency, high efficiency,
// unstable at extreme scale.
func NCCL() Backend {
	return Backend{Name: "nccl", Latency: 5e-6, BWEfficiency: 0.90, MaxReliableGPUs: 1024}
}

// MPI returns the PyTorch MPI-backend envelope used for the large runs.
func MPI() Backend {
	return Backend{Name: "mpi", Latency: 15e-6, BWEfficiency: 0.80}
}

// Reliable reports whether the backend is usable at the given scale.
func (b Backend) Reliable(gpus int) bool {
	return b.MaxReliableGPUs == 0 || gpus <= b.MaxReliableGPUs
}

// Pick returns NCCL when reliable at the scale, MPI otherwise — the
// paper's operational rule.
func Pick(gpus int) Backend {
	if n := NCCL(); n.Reliable(gpus) {
		return n
	}
	return MPI()
}

// ClusterEngine returns the routing engine for one collective with sole
// use of the cluster's interconnect (KARMA's single data-parallel
// exchange spanning every device).
func ClusterEngine(c hw.Cluster) topo.Engine {
	return topo.Engine{T: c.Topo()}
}

// linkEngine wraps a pre-computed per-endpoint bandwidth as a degenerate
// single-link topology, preserving the seed-model cost of the legacy
// explicit-bandwidth entry points.
func linkEngine(bw unit.BytesPerSec) topo.Engine {
	return topo.Engine{T: topo.Flat(bw)}
}

// RingAllReduce returns the ring all-reduce time for n bytes among p
// endpoints over per-endpoint bandwidth bw: 2(p-1) steps each moving n/p
// bytes.
func RingAllReduce(n unit.Bytes, p int, bw unit.BytesPerSec, b Backend) unit.Seconds {
	return RingAllReduceOver(linkEngine(bw), n, p, b)
}

// RingAllReduceOver is RingAllReduce routed over a topology engine: each
// step crosses the engine's inter-node route, paying its bottleneck
// bandwidth (after rail aggregation, oversubscription and contention)
// and per-hop latency.
func RingAllReduceOver(e topo.Engine, n unit.Bytes, p int, b Backend) unit.Seconds {
	return e.Ring(n, p, b.Xfer())
}

// HierarchicalAllReduce composes the collective over the cluster's
// topology: intra-node reduce over the device tier, inter-node ring over
// the node routes, then intra-node broadcast — the standard multi-rail
// scheme on ABCI-like machines. gpus is the total participating device
// count.
func HierarchicalAllReduce(n unit.Bytes, c hw.Cluster, gpus int, b Backend) unit.Seconds {
	return ClusterEngine(c).Hierarchical(n, gpus, b.Xfer())
}

// Group is one phase of the phased gradient exchange: consecutive blocks
// whose gradients are merged into a single collective.
type Group struct {
	// Blocks are indices (in completion order) merged into this phase.
	Blocks []int
	Bytes  unit.Bytes
	Time   unit.Seconds
}

// mergeGroups applies the Shi et al. grouping rule: blocks merge into a
// phase while the accumulated payload is below the latency-bandwidth
// threshold of the collective, and each flushed group is costed by the
// caller's collective model.
func mergeGroups(sizes []unit.Bytes, threshold unit.Bytes, cost func(unit.Bytes) unit.Seconds) []Group {
	var out []Group
	cur := Group{}
	flush := func() {
		if len(cur.Blocks) == 0 {
			return
		}
		cur.Time = cost(cur.Bytes)
		out = append(out, cur)
		cur = Group{}
	}
	for i, s := range sizes {
		if s < 0 {
			panic(fmt.Sprintf("comm: negative block size %d", s))
		}
		cur.Blocks = append(cur.Blocks, i)
		cur.Bytes += s
		if cur.Bytes >= threshold {
			flush()
		}
	}
	flush()
	return out
}

// PhasedGroups merges per-block gradient payloads (in backward completion
// order) into exchange phases following the Shi et al. grouping rule the
// paper adopts (§III-G): merging amortizes per-collective latency, but a
// group must stay small enough that communication still overlaps the
// remaining backward work. Blocks merge while a group's payload is below
// the latency-bandwidth product threshold of the collective; each group
// is costed as a hierarchical all-reduce over the cluster's topology.
func PhasedGroups(sizes []unit.Bytes, c hw.Cluster, gpus int, b Backend) []Group {
	if len(sizes) == 0 {
		return nil
	}
	e := ClusterEngine(c)
	nodes := (gpus + c.Node.Devices - 1) / c.Node.Devices
	threshold := e.MergeThreshold(nodes, b.Xfer())
	return mergeGroups(sizes, threshold, func(n unit.Bytes) unit.Seconds {
		return e.Hierarchical(n, gpus, b.Xfer())
	})
}

// RingPhasedGroups merges per-block payloads (in backward completion
// order) into exchange phases for a flat ring over p endpoints at
// per-endpoint bandwidth bw — the PhasedGroups rule applied to a
// pre-computed contended share. Each group's Time is the ring all-reduce
// of its payload; a reduce-scatter or all-gather phase costs exactly
// half (half the ring steps).
func RingPhasedGroups(sizes []unit.Bytes, p int, bw unit.BytesPerSec, b Backend) []Group {
	return RingPhasedGroupsOver(linkEngine(bw), sizes, p, b)
}

// RingPhasedGroupsOver is RingPhasedGroups routed over a topology
// engine — the contended ring of the in-core hybrids' data-parallel
// exchange, where one replica per node participates in each of the
// node's concurrent shard collectives.
func RingPhasedGroupsOver(e topo.Engine, sizes []unit.Bytes, p int, b Backend) []Group {
	if len(sizes) == 0 {
		return nil
	}
	threshold := e.MergeThreshold(p, b.Xfer())
	return mergeGroups(sizes, threshold, func(n unit.Bytes) unit.Seconds {
		return e.Ring(n, p, b.Xfer())
	})
}

// BulkTime returns the single-shot (non-phased) exchange time for the
// summed payload — the baseline the phased scheme is compared against
// (ablation A3).
func BulkTime(sizes []unit.Bytes, c hw.Cluster, gpus int, b Backend) unit.Seconds {
	var n unit.Bytes
	for _, s := range sizes {
		n += s
	}
	return HierarchicalAllReduce(n, c, gpus, b)
}

// ReduceScatter returns the time to reduce n bytes and leave each of the
// p endpoints with its n/p shard: (p-1) ring steps of n/p bytes — half an
// all-reduce. ZeRO-style sharded optimizers build on this primitive.
func ReduceScatter(n unit.Bytes, p int, bw unit.BytesPerSec, b Backend) unit.Seconds {
	return linkEngine(bw).ReduceScatter(n, p, b.Xfer())
}

// AllGather returns the time for each endpoint to collect all p shards of
// n total bytes: (p-1) ring steps of n/p bytes — the other half.
func AllGather(n unit.Bytes, p int, bw unit.BytesPerSec, b Backend) unit.Seconds {
	return linkEngine(bw).AllGather(n, p, b.Xfer())
}

// PointToPoint returns the time to move n bytes between two endpoints
// over per-endpoint bandwidth bw — the stage-boundary send/recv of
// pipeline (inter-layer) parallelism. One message, one latency.
func PointToPoint(n unit.Bytes, bw unit.BytesPerSec, b Backend) unit.Seconds {
	return linkEngine(bw).PointToPoint(n, b.Xfer())
}

// PointToPointOver routes a two-endpoint transfer over a topology
// engine's inter-node route (local == false) or its intra-node device
// tier (local == true) — the pipeline's stage-boundary wire.
func PointToPointOver(e topo.Engine, n unit.Bytes, local bool, b Backend) unit.Seconds {
	if local {
		return e.PointToPointIntra(n, b.Xfer())
	}
	return e.PointToPoint(n, b.Xfer())
}
