// Package profiler is the offline-profiling stage of KARMA's workflow
// (paper Fig. 1 steps 1–2, §III-C/D): it turns a shape-inferred model
// graph plus a hardware description into per-block compute and memory
// metadata — the input of the occupancy model and the two-tier optimizer.
//
// In the paper this step runs the model once under PyTorch's
// memory_stats(); here the footprints derive from tensor shapes with an
// empirical overhead factor standing in for allocator/workspace effects
// (the projection-by-variable-type of §III-D: profile once, then scale
// per-sample quantities by the batch size).
package profiler

import (
	"fmt"

	"karma/internal/graph"
	"karma/internal/hw"
	"karma/internal/layer"
	"karma/internal/tensor"
	"karma/internal/unit"
)

// Options configures a profiling run.
type Options struct {
	// Batch is the mini-batch size (samples resident per iteration).
	Batch int
	// MaxOpen bounds live tensors per segmentation cut (see
	// graph.Segments). Zero means 1 (strict chain).
	MaxOpen int
	// ActOverhead multiplies raw activation bytes to account for
	// framework allocator slack and kernel workspaces, the quantities the
	// paper measures empirically (§III-D). Zero means 1.0.
	ActOverhead float64
	// DType is the training element type. Default FP32.
	DType tensor.DType
}

func (o *Options) normalize() error {
	if o.Batch <= 0 {
		return fmt.Errorf("profiler: batch must be positive, got %d", o.Batch)
	}
	if o.MaxOpen < 1 {
		o.MaxOpen = 1
	}
	if o.ActOverhead == 0 {
		o.ActOverhead = 1.0
	}
	if o.ActOverhead < 0 {
		return fmt.Errorf("profiler: negative activation overhead %v", o.ActOverhead)
	}
	return nil
}

// Block is the profiled cost of one graph segment at the chosen batch.
type Block struct {
	Seg   graph.Segment
	Stats graph.SegmentStats

	// FwdTime and BwdTime are the device compute times for the block.
	FwdTime unit.Seconds
	BwdTime unit.Seconds
	// UpdateFLOPs is the weight-update work (per parameter constant ops).
	UpdateFLOPs unit.FLOPs

	// ActBytes is the stored-activation footprint the backward pass
	// needs (the swap payload), including the empirical overhead.
	ActBytes unit.Bytes
	// HeavyActBytes is the portion of ActBytes produced by weighted
	// layers (convolutions, dense, attention, ...). The remainder comes
	// from cheap layers (normalization, pooling) whose outputs can be
	// recomputed locally from in-block tensors instead of swapped — the
	// intra-block split SuperNeurons hard-codes and KARMA's optimizer
	// chooses by cost.
	HeavyActBytes unit.Bytes
	// CheapFwdTime is the recompute cost of the non-heavy portion.
	CheapFwdTime unit.Seconds
	// OutBytes is the boundary activation crossing to the next block.
	OutBytes unit.Bytes
	// WeightBytes is the parameter footprint (gradients cost the same
	// again while resident in backward).
	WeightBytes unit.Bytes
	// PinnedInBytes is the footprint of activations entering from
	// non-adjacent earlier blocks (U-Net skips, §III-F4).
	PinnedInBytes unit.Bytes

	// SwapTime is the one-direction transfer time for ActBytes over the
	// node's swap path (Eq. 4 throughput).
	SwapTime unit.Seconds
}

// sgdFLOPsPerParam is the weight-update cost used for CPU-side updates
// (§III-G stage 5): SGD with momentum reads w, g, m and writes w, m with
// ~4 arithmetic ops per parameter.
const sgdFLOPsPerParam = 4

// Profile is the full per-block cost table for one (model, node, batch).
type Profile struct {
	Graph  *graph.Graph
	Node   hw.Node
	Opts   Options
	Blocks []Block

	// TotalWeightBytes is the whole model's parameter footprint.
	TotalWeightBytes unit.Bytes
	// TotalActBytes is the whole model's stored-activation footprint.
	TotalActBytes unit.Bytes
}

// inplace reports whether a layer's output aliases its input in framework
// practice (PyTorch inplace=True activations and residual adds), so it
// contributes no separately stored activation.
func inplace(l layer.Layer) bool {
	switch l.(type) {
	case *layer.ReLU, *layer.Dropout, *layer.Add, *layer.Flatten:
		return true
	default:
		return false
	}
}

// heavy reports whether a layer carries weights whose output is worth
// swapping rather than recomputing (the SuperNeurons layer-type split,
// used by KARMA as a cost-driven option).
func heavy(l layer.Layer) bool {
	switch l.(type) {
	case *layer.Conv2D, *layer.Deconv2D, *layer.Dense,
		*layer.SelfAttention, *layer.LSTM, *layer.Embedding:
		return true
	default:
		return false
	}
}

// New profiles the graph on the node at the given options.
func New(g *graph.Graph, node hw.Node, opts Options) (*Profile, error) {
	if err := (&opts).normalize(); err != nil {
		return nil, err
	}
	if err := node.Device.Validate(); err != nil {
		return nil, err
	}
	segs := g.Segments(opts.MaxOpen)
	// Compute times follow the training dtype: an fp16 profile rides the
	// device's tensor-core rate when the boost is enabled (off by
	// default, holding rates constant across precisions).
	rate := node.Device.SustainedFLOPSFor(opts.DType)
	swapBW := hw.SwapThroughput(node)
	elem := int64(opts.DType.Size())
	batch := int64(opts.Batch)

	p := &Profile{Graph: g, Node: node, Opts: opts, Blocks: make([]Block, 0, len(segs))}
	for _, seg := range segs {
		st := g.Stats(seg)
		var actElems, heavyElems, cheapFLOPs int64
		for _, id := range seg.Nodes {
			n := g.Node(id)
			if inplace(n.L) {
				continue
			}
			actElems += n.OutShape.Elems()
			if heavy(n.L) {
				heavyElems += n.OutShape.Elems()
			} else {
				cheapFLOPs += n.FwdFLOPs
			}
		}
		var pinned unit.Bytes
		for _, e := range seg.PinnedIn {
			pinned += unit.Bytes(g.Node(e.From).OutShape.Elems() * elem * batch)
		}
		b := Block{
			Seg:           seg,
			Stats:         st,
			FwdTime:       unit.ComputeTime(unit.FLOPs(st.FwdFLOPs*batch), rate),
			BwdTime:       unit.ComputeTime(unit.FLOPs(st.BwdFLOPs*batch), rate),
			UpdateFLOPs:   unit.FLOPs(st.Params * sgdFLOPsPerParam),
			ActBytes:      unit.Bytes(float64(actElems*elem*batch) * opts.ActOverhead),
			HeavyActBytes: unit.Bytes(float64(heavyElems*elem*batch) * opts.ActOverhead),
			CheapFwdTime:  unit.ComputeTime(unit.FLOPs(cheapFLOPs*batch), rate),
			OutBytes:      unit.Bytes(st.OutElems * elem * batch),
			WeightBytes:   unit.Bytes(st.Params * elem),
			PinnedInBytes: pinned,
		}
		b.SwapTime = unit.TransferTime(b.ActBytes+b.WeightBytes, swapBW, node.Link.Latency)
		p.Blocks = append(p.Blocks, b)
		p.TotalWeightBytes += b.WeightBytes
		p.TotalActBytes += b.ActBytes
	}
	return p, nil
}

// Totals aggregates the per-block compute quantities the cluster-scale
// models (internal/dist) consume: forward and backward device time and
// the weight-update work for the whole model at the profiled batch.
func (p *Profile) Totals() (fwd, bwd unit.Seconds, update unit.FLOPs) {
	for _, b := range p.Blocks {
		fwd += b.FwdTime
		bwd += b.BwdTime
		update += b.UpdateFLOPs
	}
	return fwd, bwd, update
}

// InCoreBytes returns the peak device footprint of conventional (no swap,
// no recompute) training: all stored activations, weights, and one
// gradient copy of the weights.
func (p *Profile) InCoreBytes() unit.Bytes {
	return p.TotalActBytes + 2*p.TotalWeightBytes
}

// FitsInCore reports whether conventional training fits device memory.
func (p *Profile) FitsInCore() bool {
	return p.InCoreBytes() <= p.Node.Device.UsableMem()
}

// MergeBlocks coalesces consecutive profiled blocks [i, j) into one,
// re-aggregating costs. The planner uses this to evaluate candidate
// partitions without re-profiling.
func (p *Profile) MergeBlocks(i, j int) Block {
	if i < 0 || j > len(p.Blocks) || i >= j {
		panic(fmt.Sprintf("profiler: bad merge range [%d,%d) of %d", i, j, len(p.Blocks)))
	}
	out := p.Blocks[i]
	// Clone pinned list to avoid aliasing the source block's slice.
	out.Seg.PinnedIn = append([]graph.Edge(nil), out.Seg.PinnedIn...)
	out.Seg.Nodes = append([]graph.NodeID(nil), out.Seg.Nodes...)
	for k := i + 1; k < j; k++ {
		b := p.Blocks[k]
		out.Seg.Nodes = append(out.Seg.Nodes, b.Seg.Nodes...)
		out.Seg.PinnedIn = append(out.Seg.PinnedIn, b.Seg.PinnedIn...)
		out.Stats.FwdFLOPs += b.Stats.FwdFLOPs
		out.Stats.BwdFLOPs += b.Stats.BwdFLOPs
		out.Stats.Params += b.Stats.Params
		out.Stats.ActElems += b.Stats.ActElems
		out.Stats.OutElems = b.Stats.OutElems
		out.FwdTime += b.FwdTime
		out.BwdTime += b.BwdTime
		out.UpdateFLOPs += b.UpdateFLOPs
		out.ActBytes += b.ActBytes
		out.HeavyActBytes += b.HeavyActBytes
		out.CheapFwdTime += b.CheapFwdTime
		out.OutBytes = b.OutBytes
		out.WeightBytes += b.WeightBytes
		out.PinnedInBytes += b.PinnedInBytes
	}
	swapBW := hw.SwapThroughput(p.Node)
	out.SwapTime = unit.TransferTime(out.ActBytes+out.WeightBytes, swapBW, p.Node.Link.Latency)
	return out
}

// MergeCosts is MergeBlocks without the segment metadata: it aggregates
// the numeric cost fields of blocks [i, j) in the same order (so the
// results are bit-identical) but leaves the merged Seg node and pinned
// lists empty instead of cloning them. The planner's candidate
// evaluation reads only costs, and the clone is the dominant allocation
// of that search.
func (p *Profile) MergeCosts(i, j int) Block {
	if i < 0 || j > len(p.Blocks) || i >= j {
		panic(fmt.Sprintf("profiler: bad merge range [%d,%d) of %d", i, j, len(p.Blocks)))
	}
	out := p.Blocks[i]
	out.Seg.PinnedIn = nil
	out.Seg.Nodes = nil
	for k := i + 1; k < j; k++ {
		b := p.Blocks[k]
		out.Stats.FwdFLOPs += b.Stats.FwdFLOPs
		out.Stats.BwdFLOPs += b.Stats.BwdFLOPs
		out.Stats.Params += b.Stats.Params
		out.Stats.ActElems += b.Stats.ActElems
		out.Stats.OutElems = b.Stats.OutElems
		out.FwdTime += b.FwdTime
		out.BwdTime += b.BwdTime
		out.UpdateFLOPs += b.UpdateFLOPs
		out.ActBytes += b.ActBytes
		out.HeavyActBytes += b.HeavyActBytes
		out.CheapFwdTime += b.CheapFwdTime
		out.OutBytes = b.OutBytes
		out.WeightBytes += b.WeightBytes
		out.PinnedInBytes += b.PinnedInBytes
	}
	swapBW := hw.SwapThroughput(p.Node)
	out.SwapTime = unit.TransferTime(out.ActBytes+out.WeightBytes, swapBW, p.Node.Link.Latency)
	return out
}
