package profiler

import (
	"testing"

	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/tensor"
	"karma/internal/unit"
)

func TestNewBasicInvariants(t *testing.T) {
	g := model.SmallCNN()
	p, err := New(g, hw.ABCINode(), Options{Batch: 32})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if len(p.Blocks) == 0 {
		t.Fatal("no blocks")
	}
	var fwd, bwd unit.Seconds
	for i, b := range p.Blocks {
		if b.FwdTime < 0 || b.BwdTime < 0 || b.ActBytes < 0 || b.SwapTime < 0 {
			t.Errorf("block %d: negative cost %+v", i, b)
		}
		if b.BwdTime < b.FwdTime {
			t.Errorf("block %d: backward (%v) cheaper than forward (%v)", i, b.BwdTime, b.FwdTime)
		}
		fwd += b.FwdTime
		bwd += b.BwdTime
	}
	if fwd <= 0 || bwd <= 0 {
		t.Error("zero aggregate compute time")
	}
}

func TestBatchScaling(t *testing.T) {
	g := model.SmallCNN()
	node := hw.ABCINode()
	p1, err := New(g, node, Options{Batch: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p2, err := New(g, node, Options{Batch: 16})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// §III-D projection: per-sample quantities scale linearly with batch;
	// weights do not.
	if p2.TotalActBytes != 2*p1.TotalActBytes {
		t.Errorf("activations: %v vs 2x %v", p2.TotalActBytes, p1.TotalActBytes)
	}
	if p2.TotalWeightBytes != p1.TotalWeightBytes {
		t.Error("weights must not scale with batch")
	}
	for i := range p1.Blocks {
		if p2.Blocks[i].FwdTime != 2*p1.Blocks[i].FwdTime {
			t.Errorf("block %d: fwd time not linear in batch", i)
		}
	}
}

func TestActOverhead(t *testing.T) {
	g := model.SmallCNN()
	node := hw.ABCINode()
	p1, _ := New(g, node, Options{Batch: 8})
	p2, _ := New(g, node, Options{Batch: 8, ActOverhead: 2})
	if p2.TotalActBytes != 2*p1.TotalActBytes {
		t.Errorf("overhead 2 should double activations: %v vs %v", p2.TotalActBytes, p1.TotalActBytes)
	}
	if p2.TotalWeightBytes != p1.TotalWeightBytes {
		t.Error("overhead must not touch weights")
	}
}

func TestBadOptions(t *testing.T) {
	g := model.SmallCNN()
	if _, err := New(g, hw.ABCINode(), Options{Batch: 0}); err == nil {
		t.Error("batch 0 should error")
	}
	if _, err := New(g, hw.ABCINode(), Options{Batch: 1, ActOverhead: -1}); err == nil {
		t.Error("negative overhead should error")
	}
	bad := hw.ABCINode()
	bad.Device.MemCapacity = 0
	if _, err := New(g, bad, Options{Batch: 1}); err == nil {
		t.Error("invalid device should error")
	}
}

func TestResNet50FeasibilityBoundary(t *testing.T) {
	// Fig. 5: ResNet-50 batch 128 trains in-core on a 16 GiB V100;
	// batch 256 does not.
	g := model.ResNet50()
	node := hw.ABCINode()
	p128, err := New(g, node, Options{Batch: 128})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !p128.FitsInCore() {
		t.Errorf("batch 128 should fit in-core: footprint %v of %v",
			p128.InCoreBytes(), node.Device.UsableMem())
	}
	p256, err := New(g, node, Options{Batch: 256})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if p256.FitsInCore() {
		t.Errorf("batch 256 should NOT fit in-core: footprint %v of %v",
			p256.InCoreBytes(), node.Device.UsableMem())
	}
}

func TestSwapTimeUsesLinkBottleneck(t *testing.T) {
	g := model.SmallCNN()
	node := hw.ABCINode()
	p, _ := New(g, node, Options{Batch: 64})
	bw := hw.SwapThroughput(node)
	for i, b := range p.Blocks {
		want := unit.TransferTime(b.ActBytes+b.WeightBytes, bw, node.Link.Latency)
		if b.SwapTime != want {
			t.Errorf("block %d: swap time %v, want %v", i, b.SwapTime, want)
		}
	}
}

func TestMergeBlocks(t *testing.T) {
	g := model.ResNet50()
	p, err := New(g, hw.ABCINode(), Options{Batch: 32})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if len(p.Blocks) < 3 {
		t.Skip("need at least 3 blocks")
	}
	m := p.MergeBlocks(0, 3)
	var fwd unit.Seconds
	var act unit.Bytes
	var nodes int
	for _, b := range p.Blocks[:3] {
		fwd += b.FwdTime
		act += b.ActBytes
		nodes += len(b.Seg.Nodes)
	}
	if m.FwdTime != fwd {
		t.Errorf("merged fwd = %v, want %v", m.FwdTime, fwd)
	}
	if m.ActBytes != act {
		t.Errorf("merged act = %v, want %v", m.ActBytes, act)
	}
	if len(m.Seg.Nodes) != nodes {
		t.Errorf("merged nodes = %d, want %d", len(m.Seg.Nodes), nodes)
	}
	// Boundary tensor is the last block's.
	if m.OutBytes != p.Blocks[2].OutBytes {
		t.Error("merged OutBytes should be the last block's")
	}
	// Merging must not mutate the source profile.
	if p.Blocks[0].FwdTime == fwd && len(p.Blocks) > 1 {
		t.Error("MergeBlocks mutated the profile")
	}
}

func TestMergeBlocksBadRangePanics(t *testing.T) {
	g := model.SmallCNN()
	p, _ := New(g, hw.ABCINode(), Options{Batch: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.MergeBlocks(2, 1)
}

func TestUNetPinnedBytes(t *testing.T) {
	g := model.UNet()
	p, err := New(g, hw.ABCINode(), Options{Batch: 8, MaxOpen: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var pinned unit.Bytes
	for _, b := range p.Blocks {
		pinned += b.PinnedInBytes
	}
	if pinned == 0 {
		t.Error("U-Net skips should produce pinned bytes under loose segmentation")
	}
}

func TestMegatronWeightsExceedDevice(t *testing.T) {
	// The 8.3B model's weights alone (33 GiB fp32) exceed a 16 GiB V100 —
	// the scenario motivating out-of-core weight swapping (§I).
	cfg := model.MegatronConfigs()[4]
	g := model.Transformer(cfg)
	p, err := New(g, hw.ABCINode(), Options{Batch: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if p.TotalWeightBytes <= p.Node.Device.UsableMem() {
		t.Errorf("megatron-8.3B weights %v should exceed device %v",
			p.TotalWeightBytes, p.Node.Device.UsableMem())
	}
	if p.FitsInCore() {
		t.Error("megatron-8.3B must not fit in-core")
	}
}

func TestFP16HalvesFootprints(t *testing.T) {
	// Mixed-precision training halves every byte quantity (activations,
	// weights, swap payloads) while leaving FLOP-derived times unchanged
	// in this model.
	g := model.ResNet50()
	node := hw.ABCINode()
	fp32, err := New(g, node, Options{Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	fp16, err := New(g, node, Options{Batch: 64, DType: tensor.FP16})
	if err != nil {
		t.Fatal(err)
	}
	if fp16.TotalActBytes != fp32.TotalActBytes/2 {
		t.Errorf("fp16 acts %v, want half of %v", fp16.TotalActBytes, fp32.TotalActBytes)
	}
	if fp16.TotalWeightBytes != fp32.TotalWeightBytes/2 {
		t.Errorf("fp16 weights %v, want half of %v", fp16.TotalWeightBytes, fp32.TotalWeightBytes)
	}
	for i := range fp32.Blocks {
		if fp16.Blocks[i].FwdTime != fp32.Blocks[i].FwdTime {
			t.Fatalf("block %d: dtype changed compute time", i)
		}
		if fp16.Blocks[i].SwapTime >= fp32.Blocks[i].SwapTime && fp32.Blocks[i].ActBytes > 0 {
			t.Fatalf("block %d: fp16 swap not cheaper", i)
		}
	}
}

func TestTensorCoreBoostSpeedsUpFP16Profile(t *testing.T) {
	g := model.SmallCNN()
	plain := hw.ABCINode()
	boosted := plain
	boosted.Device = boosted.Device.WithTensorCores(4)

	base, err := New(g, plain, Options{Batch: 32, DType: tensor.FP16})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fast, err := New(g, boosted, Options{Batch: 32, DType: tensor.FP16})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	bf, bb, _ := base.Totals()
	ff, fb, _ := fast.Totals()
	if ff*4 != bf || fb*4 != bb {
		t.Errorf("4x boost should quarter fp16 compute: fwd %v->%v, bwd %v->%v", bf, ff, bb, fb)
	}
	// fp32 profiles never see the boost.
	b32, err := New(g, plain, Options{Batch: 32})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	f32, err := New(g, boosted, Options{Batch: 32})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	gf, gb, _ := b32.Totals()
	hf, hb, _ := f32.Totals()
	if gf != hf || gb != hb {
		t.Error("tensor-core boost must not change fp32 compute times")
	}
}
