// Package graph represents a model as a dependency DAG of layers and
// provides the analyses KARMA's workflow needs (paper Fig. 1, steps 1–2):
// shape inference, per-node cost metadata, and collapsing the DAG into a
// linear chain of segments — the atomic units the block partitioner works
// on. Residual blocks collapse into single segments; long-range skip
// connections (U-Net) are surfaced as pinned edges the planner must keep
// resident or recompute (§III-F4).
package graph

import (
	"fmt"
	"strings"

	"karma/internal/layer"
	"karma/internal/tensor"
)

// NodeID identifies a node within one Graph. IDs are dense indexes in
// insertion order, which is always a valid topological order because a
// node's inputs must exist before the node is added.
type NodeID int

// Node is one layer instance and its dataflow inputs.
type Node struct {
	ID     NodeID
	L      layer.Layer
	Inputs []NodeID

	// Filled in by Infer:
	OutShape tensor.Shape
	FwdFLOPs int64 // per sample
	Params   int64
}

// Graph is a DAG of layers under construction or analysis.
type Graph struct {
	name     string
	nodes    []*Node
	inferred bool
}

// New returns an empty graph with the given model name.
func New(name string) *Graph { return &Graph{name: name} }

// Name returns the model name.
func (g *Graph) Name() string { return g.name }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Add appends a layer whose inputs are the given existing nodes and
// returns its id. Add panics on a forward reference, which would make the
// construction order non-topological.
func (g *Graph) Add(l layer.Layer, inputs ...NodeID) NodeID {
	id := NodeID(len(g.nodes))
	for _, in := range inputs {
		if in < 0 || in >= id {
			panic(fmt.Sprintf("graph %s: node %q references invalid input %d", g.name, l.Name(), in))
		}
	}
	g.nodes = append(g.nodes, &Node{ID: id, L: l, Inputs: append([]NodeID(nil), inputs...)})
	g.inferred = false
	return id
}

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(g.nodes) {
		panic(fmt.Sprintf("graph %s: no node %d", g.name, id))
	}
	return g.nodes[id]
}

// Nodes returns all nodes in topological (insertion) order.
// The returned slice must not be mutated.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Consumers returns, for every node, the ids of nodes consuming its output.
func (g *Graph) Consumers() [][]NodeID {
	out := make([][]NodeID, len(g.nodes))
	for _, n := range g.nodes {
		for _, in := range n.Inputs {
			out[in] = append(out[in], n.ID)
		}
	}
	return out
}

// Output returns the unique sink node id. Validate reports an error when
// the sink is not unique; Output returns the last sink found.
func (g *Graph) Output() NodeID {
	cons := g.Consumers()
	sink := NodeID(-1)
	for _, n := range g.nodes {
		if len(cons[n.ID]) == 0 {
			sink = n.ID
		}
	}
	return sink
}

// Infer runs shape inference in topological order, filling in OutShape,
// FwdFLOPs and Params on every node.
func (g *Graph) Infer() error {
	for _, n := range g.nodes {
		ins := make([]tensor.Shape, len(n.Inputs))
		for i, in := range n.Inputs {
			s := g.nodes[in].OutShape
			if s == nil {
				return fmt.Errorf("graph %s: node %q input %q has no shape", g.name, n.L.Name(), g.nodes[in].L.Name())
			}
			ins[i] = s
		}
		out, err := n.L.InferShape(ins)
		if err != nil {
			return fmt.Errorf("graph %s: %w", g.name, err)
		}
		n.OutShape = out
		n.FwdFLOPs = n.L.FwdFLOPs(ins, out)
		n.Params = n.L.ParamCount(ins)
	}
	g.inferred = true
	return nil
}

// Validate checks structural invariants: at least one node, a unique sink,
// every non-input node has inputs, and every node is reachable from an
// input layer. Validate requires Infer to have succeeded.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return fmt.Errorf("graph %s: empty", g.name)
	}
	if !g.inferred {
		return fmt.Errorf("graph %s: Validate before successful Infer", g.name)
	}
	cons := g.Consumers()
	sinks := 0
	for _, n := range g.nodes {
		if len(cons[n.ID]) == 0 {
			sinks++
		}
		_, isInput := n.L.(*layer.Input)
		if !isInput && len(n.Inputs) == 0 {
			return fmt.Errorf("graph %s: non-input node %q has no inputs", g.name, n.L.Name())
		}
		if isInput && len(n.Inputs) != 0 {
			return fmt.Errorf("graph %s: input node %q has inputs", g.name, n.L.Name())
		}
	}
	if sinks != 1 {
		return fmt.Errorf("graph %s: %d sinks, want exactly 1", g.name, sinks)
	}
	return nil
}

// ParamCount returns the total number of trainable parameters.
func (g *Graph) ParamCount() int64 {
	g.mustInferred("ParamCount")
	var n int64
	for _, node := range g.nodes {
		n += node.Params
	}
	return n
}

// FwdFLOPs returns total forward operations per sample.
func (g *Graph) FwdFLOPs() int64 {
	g.mustInferred("FwdFLOPs")
	var n int64
	for _, node := range g.nodes {
		n += node.FwdFLOPs
	}
	return n
}

func (g *Graph) mustInferred(op string) {
	if !g.inferred {
		panic(fmt.Sprintf("graph %s: %s before Infer", g.name, op))
	}
}

// Edge is a dataflow edge between nodes.
type Edge struct {
	From, To NodeID
}

// Segment is a maximal run of consecutive nodes (in topological order)
// that the planner treats as an atomic unit. Within a segment arbitrary
// local fan-out is allowed (e.g. a residual block); between ordinary
// adjacent segments exactly one activation crosses. PinnedIn lists edges
// entering this segment from a non-adjacent earlier segment — the U-Net
// situation of §III-F4 — whose source activations must stay resident, be
// swapped separately, or be recomputed.
type Segment struct {
	Index    int
	Nodes    []NodeID
	PinnedIn []Edge
}

// Segments collapses the DAG into a chain of segments. maxOpen controls
// how aggressively the chain is cut: a cut is placed after node i whenever
// the dataflow edges crossing the cut originate from at most maxOpen
// distinct producers — i.e. at most maxOpen live tensors cross (a single
// tensor with fan-out, such as a residual trunk output, still counts
// once). maxOpen = 1 yields the strict linear chain; larger values split
// long-skip regions (U-Net) and surface the extra crossing edges as
// PinnedIn on the destination segment. maxOpen < 1 is treated as 1.
func (g *Graph) Segments(maxOpen int) []Segment {
	if maxOpen < 1 {
		maxOpen = 1
	}
	g.mustInferred("Segments")
	cons := g.Consumers()

	// Sweep the topological order keeping, per producer, the number of
	// unprocessed consumers of its output.
	pending := make(map[NodeID]int)
	var segs []Segment
	var cur []NodeID
	for _, n := range g.nodes {
		for _, in := range n.Inputs {
			if pending[in]--; pending[in] == 0 {
				delete(pending, in)
			}
		}
		if c := len(cons[n.ID]); c > 0 {
			pending[n.ID] = c
		}
		cur = append(cur, n.ID)
		if len(pending) <= maxOpen {
			segs = append(segs, Segment{Index: len(segs), Nodes: cur})
			cur = nil
		}
	}
	if len(cur) > 0 {
		segs = append(segs, Segment{Index: len(segs), Nodes: cur})
	}

	// Attach pinned edges: an edge whose producer lives in segment p and
	// whose consumer lives in segment q > p+1 skips at least one segment.
	segOf := make([]int, len(g.nodes))
	for _, s := range segs {
		for _, id := range s.Nodes {
			segOf[id] = s.Index
		}
	}
	for _, n := range g.nodes {
		for _, in := range n.Inputs {
			if segOf[n.ID] > segOf[in]+1 {
				s := &segs[segOf[n.ID]]
				s.PinnedIn = append(s.PinnedIn, Edge{From: in, To: n.ID})
			}
		}
	}
	return segs
}

// SegmentStats aggregates cost metadata over a segment.
type SegmentStats struct {
	FwdFLOPs int64 // per sample
	BwdFLOPs int64 // per sample, via per-layer backward factors
	Params   int64
	// ActElems is the number of per-sample activation elements produced
	// inside the segment (each node's output), the quantity that must be
	// kept (or recomputed) for the backward pass.
	ActElems int64
	// OutElems is the per-sample size of the segment's final activation,
	// the tensor crossing to the next segment.
	OutElems int64
}

// Stats computes aggregate cost metadata for a segment.
func (g *Graph) Stats(s Segment) SegmentStats {
	g.mustInferred("Stats")
	var st SegmentStats
	for _, id := range s.Nodes {
		n := g.nodes[id]
		st.FwdFLOPs += n.FwdFLOPs
		st.BwdFLOPs += int64(float64(n.FwdFLOPs) * n.L.BwdFactor())
		st.Params += n.Params
		st.ActElems += n.OutShape.Elems()
	}
	last := g.nodes[s.Nodes[len(s.Nodes)-1]]
	st.OutElems = last.OutShape.Elems()
	return st
}

// DOT renders the graph in Graphviz dot format, one node per layer with
// its inferred output shape, for visual inspection of the dependency
// structure KARMA plans over (Fig. 1's dependency-graph step).
func (g *Graph) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", g.name)
	for _, n := range g.nodes {
		label := n.L.Name()
		if n.OutShape != nil {
			label += "\\n" + n.OutShape.String()
		}
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", n.ID, label)
	}
	for _, n := range g.nodes {
		for _, in := range n.Inputs {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", in, n.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
