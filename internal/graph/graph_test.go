package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"karma/internal/layer"
	"karma/internal/tensor"
)

// chain builds input -> n conv/relu pairs.
func chain(t *testing.T, n int) *Graph {
	t.Helper()
	g := New("chain")
	id := g.Add(&layer.Input{LayerName: "in", Shape: tensor.CHW(3, 32, 32)})
	for i := 0; i < n; i++ {
		id = g.Add(&layer.Conv2D{LayerName: name("conv", i), OutChannels: 16, K: 3, Stride: 1, Pad: 1}, id)
		id = g.Add(&layer.ReLU{LayerName: name("relu", i)}, id)
	}
	if err := g.Infer(); err != nil {
		t.Fatalf("Infer: %v", err)
	}
	return g
}

func name(p string, i int) string { return p + string(rune('a'+i)) }

// residual builds input -> conv -> [conv,conv]+skip add -> relu.
func residual(t *testing.T) *Graph {
	t.Helper()
	g := New("res")
	in := g.Add(&layer.Input{LayerName: "in", Shape: tensor.CHW(16, 8, 8)})
	c0 := g.Add(&layer.Conv2D{LayerName: "c0", OutChannels: 16, K: 3, Stride: 1, Pad: 1}, in)
	c1 := g.Add(&layer.Conv2D{LayerName: "c1", OutChannels: 16, K: 3, Stride: 1, Pad: 1}, c0)
	c2 := g.Add(&layer.Conv2D{LayerName: "c2", OutChannels: 16, K: 3, Stride: 1, Pad: 1}, c1)
	add := g.Add(&layer.Add{LayerName: "add"}, c0, c2)
	g.Add(&layer.ReLU{LayerName: "out"}, add)
	if err := g.Infer(); err != nil {
		t.Fatalf("Infer: %v", err)
	}
	return g
}

func TestAddForwardReferencePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on forward reference")
		}
	}()
	g := New("bad")
	g.Add(&layer.ReLU{LayerName: "r"}, 5)
}

func TestInferAndValidate(t *testing.T) {
	g := chain(t, 3)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.Len() != 7 {
		t.Errorf("Len = %d, want 7", g.Len())
	}
	out := g.Node(g.Output())
	if !out.OutShape.Equal(tensor.CHW(16, 32, 32)) {
		t.Errorf("output shape = %v", out.OutShape)
	}
}

func TestValidateBeforeInfer(t *testing.T) {
	g := New("g")
	g.Add(&layer.Input{LayerName: "in", Shape: tensor.Vec(4)})
	if err := g.Validate(); err == nil {
		t.Error("Validate before Infer should error")
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := New("e").Validate(); err == nil {
		t.Error("empty graph should fail validation")
	}
}

func TestValidateMultipleSinks(t *testing.T) {
	g := New("2sink")
	in := g.Add(&layer.Input{LayerName: "in", Shape: tensor.Vec(4)})
	g.Add(&layer.ReLU{LayerName: "a"}, in)
	g.Add(&layer.Softmax{LayerName: "b"}, in)
	if err := g.Infer(); err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if err := g.Validate(); err == nil {
		t.Error("two sinks should fail validation")
	}
}

func TestInferShapeError(t *testing.T) {
	g := New("bad")
	in := g.Add(&layer.Input{LayerName: "in", Shape: tensor.Vec(10)})
	g.Add(&layer.Conv2D{LayerName: "c", OutChannels: 4, K: 3}, in) // conv on vector
	if err := g.Infer(); err == nil {
		t.Error("Infer should propagate shape errors")
	}
}

func TestFLOPsAndParams(t *testing.T) {
	g := chain(t, 2)
	// conv a: 16*32*32 out elems * 3*3*3 taps; conv b: 16*32*32 * 3*3*16.
	convA := int64(16*32*32) * 27
	convB := int64(16*32*32) * 144
	relu := int64(16 * 32 * 32)
	want := convA + convB + 2*relu
	if got := g.FwdFLOPs(); got != want {
		t.Errorf("FwdFLOPs = %d, want %d", got, want)
	}
	wantP := int64(3*3*3*16 + 3*3*16*16)
	if got := g.ParamCount(); got != wantP {
		t.Errorf("ParamCount = %d, want %d", got, wantP)
	}
}

func TestSegmentsLinearChain(t *testing.T) {
	g := chain(t, 4)
	segs := g.Segments(1)
	// A pure chain cuts after every node.
	if len(segs) != g.Len() {
		t.Errorf("segments = %d, want %d", len(segs), g.Len())
	}
	for _, s := range segs {
		if len(s.PinnedIn) != 0 {
			t.Errorf("segment %d has pinned edges %v", s.Index, s.PinnedIn)
		}
	}
}

func TestSegmentsResidualCollapse(t *testing.T) {
	g := residual(t)
	segs := g.Segments(1)
	// in | c0 (single live tensor crosses, with fan-out to c1 and add) |
	// c1..add (the skip keeps two producers live inside) | out.
	if len(segs) != 4 {
		t.Fatalf("segments = %d, want 4: %+v", len(segs), segs)
	}
	body := segs[2]
	if len(body.Nodes) != 3 {
		t.Errorf("residual body = %v, want 3 nodes (c1,c2,add)", body.Nodes)
	}
}

func TestSegmentsPinnedEdges(t *testing.T) {
	// A long skip: in -> a -> b -> c -> cat(a-skip).
	g := New("skip")
	in := g.Add(&layer.Input{LayerName: "in", Shape: tensor.CHW(8, 8, 8)})
	a := g.Add(&layer.Conv2D{LayerName: "a", OutChannels: 8, K: 3, Stride: 1, Pad: 1}, in)
	b := g.Add(&layer.Conv2D{LayerName: "b", OutChannels: 8, K: 3, Stride: 1, Pad: 1}, a)
	c := g.Add(&layer.Conv2D{LayerName: "c", OutChannels: 8, K: 3, Stride: 1, Pad: 1}, b)
	g.Add(&layer.Concat{LayerName: "cat"}, a, c)
	if err := g.Infer(); err != nil {
		t.Fatalf("Infer: %v", err)
	}
	// With maxOpen=2 the chain can cut inside the skip region; the edge
	// a->cat must surface as pinned on the segment holding cat.
	segs := g.Segments(2)
	var pinned int
	for _, s := range segs {
		pinned += len(s.PinnedIn)
	}
	if pinned == 0 {
		t.Errorf("expected a pinned edge for the long skip; segments: %+v", segs)
	}
}

func TestSegmentsCoverAllNodesOnce(t *testing.T) {
	g := residual(t)
	for _, maxOpen := range []int{1, 2, 3} {
		seen := map[NodeID]int{}
		for _, s := range g.Segments(maxOpen) {
			for _, id := range s.Nodes {
				seen[id]++
			}
		}
		if len(seen) != g.Len() {
			t.Errorf("maxOpen=%d: covered %d nodes, want %d", maxOpen, len(seen), g.Len())
		}
		for id, c := range seen {
			if c != 1 {
				t.Errorf("maxOpen=%d: node %d appears %d times", maxOpen, id, c)
			}
		}
	}
}

func TestStats(t *testing.T) {
	g := chain(t, 1)
	segs := g.Segments(1)
	var fwd int64
	for _, s := range segs {
		st := g.Stats(s)
		fwd += st.FwdFLOPs
		if st.OutElems <= 0 || st.ActElems < st.OutElems {
			t.Errorf("segment %d: bad elems %+v", s.Index, st)
		}
	}
	if fwd != g.FwdFLOPs() {
		t.Errorf("segment FLOPs sum %d != graph %d", fwd, g.FwdFLOPs())
	}
}

func TestStatsBwdFactor(t *testing.T) {
	g := chain(t, 1)
	segs := g.Segments(1)
	var bwd, fwd int64
	for _, s := range segs {
		st := g.Stats(s)
		bwd += st.BwdFLOPs
		fwd += st.FwdFLOPs
	}
	if bwd <= fwd {
		t.Errorf("backward work %d should exceed forward %d (conv factor 2)", bwd, fwd)
	}
}

// Property: for any chain length, segment count equals node count and the
// sum of per-segment FLOPs equals the graph total.
func TestSegmentsPartitionProperty(t *testing.T) {
	f := func(n uint8) bool {
		g := New("p")
		id := g.Add(&layer.Input{LayerName: "in", Shape: tensor.CHW(4, 8, 8)})
		k := int(n)%6 + 1
		for i := 0; i < k; i++ {
			id = g.Add(&layer.ReLU{LayerName: name("r", i)}, id)
		}
		if err := g.Infer(); err != nil {
			return false
		}
		segs := g.Segments(1)
		if len(segs) != g.Len() {
			return false
		}
		var sum int64
		for _, s := range segs {
			sum += g.Stats(s).FwdFLOPs
		}
		return sum == g.FwdFLOPs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDOT(t *testing.T) {
	g := residual(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", "rankdir", "c0", "add", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// One edge line per input reference: in->c0, c0->c1, c1->c2,
	// c0->add, c2->add, add->out = 6 edges.
	if got := strings.Count(dot, "->"); got != 6 {
		t.Errorf("edges = %d, want 6", got)
	}
	// Shapes annotated after inference.
	if !strings.Contains(dot, "16x8x8") {
		t.Error("DOT should annotate inferred shapes")
	}
}
