// Package karma is the core library: it turns a profiled model into an
// out-of-core execution schedule using the paper's capacity-based layer
// swapping interleaved with redundant recompute (§III), and simulates the
// schedule to produce throughput and stall reports.
//
// The pipeline mirrors Fig. 1:
//
//	profile (internal/profiler)            — steps 1-2
//	→ partition search (Opt-1, §III-F1)    — step 3
//	→ recompute interleave (Opt-2)         — step 4
//	→ schedule generation (Algorithm 1)    — step 5
//	→ simulation (internal/sim)            — evaluation
package karma

import (
	"fmt"
	"math"

	"karma/internal/profiler"
	"karma/internal/unit"
)

// Policy is the per-block memory strategy.
type Policy int

// Block policies.
const (
	// Keep leaves the block's activations resident in near memory
	// (the capacity-based resident suffix of §III-E2).
	Keep Policy = iota
	// Swap moves the block's activations to far memory after the forward
	// pass and prefetches them back during backward.
	Swap
	// Recompute drops the block's activations after the forward pass and
	// redundantly recomputes them during backward (§III-F).
	Recompute
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Keep:
		return "keep"
	case Swap:
		return "swap"
	case Recompute:
		return "recompute"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Block is one planner block: a contiguous range of profiled segments
// under a single policy.
type Block struct {
	// Range is the half-open [start, end) span of profiler blocks.
	Range [2]int
	// Cost is the merged cost over the range.
	Cost profiler.Block
	// Policy chosen by the optimizer.
	Policy Policy
	// Ckpt marks this block's output boundary as a resident checkpoint:
	// the following recompute run replays from it instead of extending
	// backwards through this block. This is how adjacent recompute runs
	// split without a swap separator (the gradient-checkpointing
	// structure, subsumed by KARMA's search).
	Ckpt bool
	// WBytes is the block's streamed weight payload: zero in the
	// single-GPU default (weights stay resident for the whole iteration),
	// the block's parameter footprint under Options.StreamWeights — the
	// cluster regime of §III-G where weights swap with their blocks.
	WBytes unit.Bytes
	// GBytes is the streamed gradient payload drained to far memory each
	// iteration (shrunk by Options.GradScale under ZeRO-style sharding).
	// Zero when gradients stay resident with the weights.
	GBytes unit.Bytes
}

// Payload returns the device memory the block occupies while resident:
// its stored activations plus, under weight streaming, the weight and
// gradient footprint that travels with the block (§III-G).
func (b Block) Payload() unit.Bytes { return b.Cost.ActBytes + b.WBytes + b.GBytes }

// Solver selects the Opt-1 search backend.
type Solver int

// Available solvers.
const (
	// SolverBalanced enumerates balanced partitions and refines
	// boundaries by deterministic hill climbing (default).
	SolverBalanced Solver = iota
	// SolverACO uses the ant-colony optimizer (the MIDACO stand-in).
	SolverACO
)

// Options configures the planner.
type Options struct {
	// MaxBlocks caps the partition size searched (default 32).
	MaxBlocks int
	// DisableRecompute turns off the Opt-2 recompute interleave,
	// yielding the pure capacity-based swapping planner ("KARMA" vs
	// "KARMA w/recompute" in Fig. 5).
	DisableRecompute bool
	// Solver selects the Opt-1 backend.
	Solver Solver
	// Seed drives the stochastic solver.
	Seed int64
	// Headroom is the fraction of the activation budget reserved for
	// transient working tensors (default 0.05).
	Headroom float64
	// StreamWeights plans the cluster regime of §III-G (used by
	// dist.Planned): block weights and gradients stream with their
	// activations instead of staying resident, so the budget reserves only
	// pinned tensors and headroom, block payloads grow by the weight and
	// gradient footprint, and the generated plan carries the weight
	// prefetch and gradient drain traffic.
	StreamWeights bool
	// GradScale scales the streamed (or resident) gradient/optimizer
	// payload per block: 1/replicas under ZeRO-style sharding across a
	// data-parallel group. Zero means 1 (unsharded).
	GradScale float64
}

func (o *Options) normalize() {
	if o.MaxBlocks <= 0 {
		o.MaxBlocks = 32
	}
	if o.Headroom == 0 {
		o.Headroom = 0.05
	}
	if o.GradScale <= 0 {
		o.GradScale = 1
	}
}

// Schedule is a planned iteration.
type Schedule struct {
	Profile *profiler.Profile
	Opts    Options
	Blocks  []Block
	// Resident is the index of the first resident block: blocks
	// [Resident:] keep their activations in near memory.
	Resident int
	// Budget is the device memory available to activations after
	// reserving weights, gradients, recompute checkpoints, pinned skip
	// tensors and headroom.
	Budget unit.Bytes
}

// NumBlocks returns the partition size.
func (s *Schedule) NumBlocks() int { return len(s.Blocks) }

// SwappedBytes returns the total payload of swapped blocks (per
// direction; under weight streaming this includes the weight and gradient
// share travelling with each block).
func (s *Schedule) SwappedBytes() unit.Bytes {
	var n unit.Bytes
	for _, b := range s.Blocks {
		if b.Policy == Swap {
			n += b.Payload()
		}
	}
	return n
}

// RecomputedTime returns the redundant compute added per iteration.
func (s *Schedule) RecomputedTime() unit.Seconds {
	var t unit.Seconds
	for _, b := range s.Blocks {
		if b.Policy == Recompute {
			t += b.Cost.FwdTime
		}
	}
	return t
}

// BudgetFor computes the activation budget for a profile: usable device
// memory minus resident weights+gradients, pinned skip tensors, and
// headroom. An error is returned when the model's weights alone leave no
// room; such models must stream weights as well as activations, the
// regime Options.StreamWeights plans and dist.KARMADataParallel costs
// out.
func BudgetFor(p *profiler.Profile, headroom float64) (unit.Bytes, error) {
	return ActivationBudget(p, Options{Headroom: headroom})
}

// ActivationBudget computes the planner budget under the options'
// residency regime. The single-GPU default reserves resident weights plus
// gradients (scaled by GradScale) like BudgetFor; with StreamWeights the
// weight and gradient footprint enters the streamed block payloads
// instead, so only pinned skip tensors and headroom are reserved.
func ActivationBudget(p *profiler.Profile, o Options) (unit.Bytes, error) {
	gs := o.GradScale
	if gs <= 0 {
		gs = 1
	}
	usable := p.Node.Device.UsableMem()
	var pinned unit.Bytes
	for _, b := range p.Blocks {
		pinned += b.PinnedInBytes
	}
	reserve := pinned
	if !o.StreamWeights {
		reserve += p.TotalWeightBytes +
			unit.Bytes(math.Ceil(gs*float64(p.TotalWeightBytes)))
	}
	budget := usable - reserve
	budget -= unit.Bytes(float64(budget) * o.Headroom)
	if budget <= 0 {
		if o.StreamWeights {
			return 0, fmt.Errorf("karma: pinned tensors (%v) exceed device memory %v", pinned, usable)
		}
		return 0, fmt.Errorf("karma: weights (%v x2) and pinned tensors (%v) exceed device memory %v; use the distributed planner",
			p.TotalWeightBytes, pinned, usable)
	}
	return budget, nil
}
