// Package karma is the core library: it turns a profiled model into an
// out-of-core execution schedule using the paper's capacity-based layer
// swapping interleaved with redundant recompute (§III), and simulates the
// schedule to produce throughput and stall reports.
//
// The pipeline mirrors Fig. 1:
//
//	profile (internal/profiler)            — steps 1-2
//	→ partition search (Opt-1, §III-F1)    — step 3
//	→ recompute interleave (Opt-2)         — step 4
//	→ schedule generation (Algorithm 1)    — step 5
//	→ simulation (internal/sim)            — evaluation
package karma

import (
	"fmt"

	"karma/internal/profiler"
	"karma/internal/unit"
)

// Policy is the per-block memory strategy.
type Policy int

// Block policies.
const (
	// Keep leaves the block's activations resident in near memory
	// (the capacity-based resident suffix of §III-E2).
	Keep Policy = iota
	// Swap moves the block's activations to far memory after the forward
	// pass and prefetches them back during backward.
	Swap
	// Recompute drops the block's activations after the forward pass and
	// redundantly recomputes them during backward (§III-F).
	Recompute
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Keep:
		return "keep"
	case Swap:
		return "swap"
	case Recompute:
		return "recompute"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Block is one planner block: a contiguous range of profiled segments
// under a single policy.
type Block struct {
	// Range is the half-open [start, end) span of profiler blocks.
	Range [2]int
	// Cost is the merged cost over the range.
	Cost profiler.Block
	// Policy chosen by the optimizer.
	Policy Policy
	// Ckpt marks this block's output boundary as a resident checkpoint:
	// the following recompute run replays from it instead of extending
	// backwards through this block. This is how adjacent recompute runs
	// split without a swap separator (the gradient-checkpointing
	// structure, subsumed by KARMA's search).
	Ckpt bool
}

// Payload returns the bytes moved when the block swaps (activations
// only; this single-device planner keeps weights resident. Streaming
// block weights too is the cluster-scale regime, modeled analytically by
// dist.KARMADataParallel).
func (b Block) Payload() unit.Bytes { return b.Cost.ActBytes }

// Solver selects the Opt-1 search backend.
type Solver int

// Available solvers.
const (
	// SolverBalanced enumerates balanced partitions and refines
	// boundaries by deterministic hill climbing (default).
	SolverBalanced Solver = iota
	// SolverACO uses the ant-colony optimizer (the MIDACO stand-in).
	SolverACO
)

// Options configures the planner.
type Options struct {
	// MaxBlocks caps the partition size searched (default 32).
	MaxBlocks int
	// DisableRecompute turns off the Opt-2 recompute interleave,
	// yielding the pure capacity-based swapping planner ("KARMA" vs
	// "KARMA w/recompute" in Fig. 5).
	DisableRecompute bool
	// Solver selects the Opt-1 backend.
	Solver Solver
	// Seed drives the stochastic solver.
	Seed int64
	// Headroom is the fraction of the activation budget reserved for
	// transient working tensors (default 0.05).
	Headroom float64
}

func (o *Options) normalize() {
	if o.MaxBlocks <= 0 {
		o.MaxBlocks = 32
	}
	if o.Headroom == 0 {
		o.Headroom = 0.05
	}
}

// Schedule is a planned iteration.
type Schedule struct {
	Profile *profiler.Profile
	Opts    Options
	Blocks  []Block
	// Resident is the index of the first resident block: blocks
	// [Resident:] keep their activations in near memory.
	Resident int
	// Budget is the device memory available to activations after
	// reserving weights, gradients, recompute checkpoints, pinned skip
	// tensors and headroom.
	Budget unit.Bytes
}

// NumBlocks returns the partition size.
func (s *Schedule) NumBlocks() int { return len(s.Blocks) }

// SwappedBytes returns the total payload crossing the link per direction
// per iteration.
func (s *Schedule) SwappedBytes() unit.Bytes {
	var n unit.Bytes
	for _, b := range s.Blocks {
		if b.Policy == Swap {
			n += b.Payload()
		}
	}
	return n
}

// RecomputedTime returns the redundant compute added per iteration.
func (s *Schedule) RecomputedTime() unit.Seconds {
	var t unit.Seconds
	for _, b := range s.Blocks {
		if b.Policy == Recompute {
			t += b.Cost.FwdTime
		}
	}
	return t
}

// BudgetFor computes the activation budget for a profile: usable device
// memory minus resident weights+gradients, pinned skip tensors, and
// headroom. An error is returned when the model's weights alone leave no
// room; such models must stream weights as well as activations, the
// regime dist.KARMADataParallel costs out.
func BudgetFor(p *profiler.Profile, headroom float64) (unit.Bytes, error) {
	usable := p.Node.Device.UsableMem()
	var pinned unit.Bytes
	for _, b := range p.Blocks {
		pinned += b.PinnedInBytes
	}
	reserve := 2*p.TotalWeightBytes + pinned
	budget := usable - reserve
	budget -= unit.Bytes(float64(budget) * headroom)
	if budget <= 0 {
		return 0, fmt.Errorf("karma: weights (%v x2) and pinned tensors (%v) exceed device memory %v; use the distributed planner",
			p.TotalWeightBytes, pinned, usable)
	}
	return budget, nil
}
