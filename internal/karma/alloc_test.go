package karma

import (
	"testing"

	"karma/internal/race"
)

// TestCheckpointProbeAllocFree pins the Checkpoint run-count scan's
// steady state: once the partitioner's cap memo and the search scratch
// are warm, probing every candidate run count costs zero allocations —
// only the winning candidate materializes a schedule. This is what
// keeps Checkpoint cheap inside the dist backends' capacity sweeps.
func TestCheckpointProbeAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	p := ckptProfile(t, 16)
	cs := newCheckpointSearch(p)
	k := len(p.Blocks)
	probeAll := func() {
		for runs := k - 1; runs >= 1; runs-- {
			cs.footprint(runs)
		}
	}
	probeAll() // warm: builds the cap memo and sizes the cut scratch

	if allocs := testing.AllocsPerRun(20, probeAll); allocs != 0 {
		t.Errorf("warm footprint probing allocated %.1f objects per full scan, want 0", allocs)
	}
}
