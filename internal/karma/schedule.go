package karma

import (
	"fmt"

	"karma/internal/hw"
	"karma/internal/plan"
	"karma/internal/unit"
)

// BuildPlan lowers a schedule to the stage IR of Algorithm 1.
//
// Forward phase (Fig. 2b/c): F_b stages in order; a swapped block's
// swap-out launches with the next block's forward ("F_{b+1}||Sout_b"); a
// recomputed block's activations are dropped once the next forward has
// consumed its boundary.
//
// Backward phase: the last blocks are resident, so B starts immediately
// at the forward→backward transition (the capacity-based strategy's
// advantage over the eager vDNN schedule, §III-E2). All swap-ins launch
// at the first backward stage in consumption order; the H2D stream's FIFO
// plus the simulator's capacity gating yield exactly the "keep swapping
// in while space allows" behaviour. Recomputes interleave on the compute
// stream right before their backward (§III-F).
//
// Under weight streaming (Options.StreamWeights, §III-G) the plan also
// carries the block-weight traffic of the cluster regime: non-resident
// blocks prefetch their weights one stage ahead in the forward phase,
// drop them after use (the host keeps the clean copy), refetch them with
// the backward swap-in, and drain their gradients to far memory after
// backward — the Fig. 3 pipeline of one KARMA-DP replica.
func BuildPlan(s *Schedule) (*plan.Plan, error) {
	return buildPlan(new(plan.Builder), "karma/"+s.Profile.Graph.Name(), s)
}

// buildPlan lowers s into the builder's arenas (see BuildPlan for the
// schedule semantics). The candidate search passes one long-lived
// builder and a precomputed name so steady-state builds allocate
// nothing; the returned plan aliases the builder and is invalidated by
// its next Reset.
func buildPlan(bld *plan.Builder, name string, s *Schedule) (*plan.Plan, error) {
	k := len(s.Blocks)
	if k == 0 {
		return nil, fmt.Errorf("karma: empty schedule")
	}
	for i, b := range s.Blocks {
		if b.Policy == Recompute && i == k-1 {
			return nil, fmt.Errorf("karma: last block cannot be recomputed (it is resident by construction)")
		}
		if i >= s.Resident && b.Policy != Keep {
			return nil, fmt.Errorf("karma: resident block %d has policy %v", i, b.Policy)
		}
		if i < s.Resident && b.Policy == Keep {
			return nil, fmt.Errorf("karma: non-resident block %d has policy keep", i)
		}
	}

	bld.Reset(name, k)
	swapBW := hw.SwapThroughput(s.Profile.Node)
	lat := s.Profile.Node.Link.Latency
	move := func(n unit.Bytes) unit.Seconds {
		return unit.TransferTime(n, swapBW, lat)
	}
	// Swapped blocks move only their heavy-layer activations; the cheap
	// remainder is rematerialized locally during backward (the
	// cost-driven version of SuperNeurons' layer-type split).
	heavyMove := func(b int) unit.Seconds {
		return move(s.Blocks[b].Cost.HeavyActBytes)
	}
	// streamed reports whether block b swaps its weights with itself.
	streamed := func(b int) bool {
		return s.Blocks[b].Policy != Keep && s.Blocks[b].WBytes > 0
	}
	// wIn is the forward-phase weight prefetch of a streamed block.
	wIn := func(b int) plan.Op {
		return plan.Op{
			Kind: plan.SwapIn, Block: b,
			Duration: move(s.Blocks[b].WBytes),
			Alloc:    s.Blocks[b].WBytes,
		}
	}

	// Forward phase.
	for b := 0; b < k; b++ {
		bld.BeginStage()
		if b == 0 && streamed(0) {
			bld.Add(wIn(0))
		}
		alloc := s.Blocks[b].Payload()
		if streamed(b) {
			// Weights arrive via the prefetch; the gradient buffer is
			// allocated with the backward swap-in.
			alloc = s.Blocks[b].Cost.ActBytes
		}
		fwd := plan.Op{
			Kind: plan.Fwd, Block: b,
			Duration: s.Blocks[b].Cost.FwdTime,
			Alloc:    alloc,
		}
		// A recomputed predecessor's activations (and streamed weights)
		// are dropped when this forward completes; a checkpointed block
		// keeps its boundary resident for the run that will replay from
		// it.
		if b > 0 && s.Blocks[b-1].Policy == Recompute {
			drop := s.Blocks[b-1].Cost.ActBytes + s.Blocks[b-1].WBytes
			if s.Blocks[b-1].Ckpt {
				drop -= s.Blocks[b-1].Cost.OutBytes
			}
			fwd.Free += drop
		}
		bld.Add(fwd)
		if b > 0 && s.Blocks[b-1].Policy == Swap {
			bld.Add(plan.Op{
				Kind: plan.SwapOut, Block: b - 1,
				Duration: heavyMove(b - 1),
				Free:     s.Blocks[b-1].Cost.ActBytes + s.Blocks[b-1].WBytes,
			})
		}
		if b+1 < k && streamed(b+1) {
			// Prefetch the next block's weights one stage ahead so the
			// transfer overlaps this block's forward compute.
			bld.Add(wIn(b + 1))
		}
		bld.EndStage()
	}

	// Backward phase. First stage: B_{k-1} plus every swap-in, queued in
	// consumption order: descending block order, except that a recompute
	// run's streamed weight prefetches arrive in replay (ascending)
	// order, matching the order the replays consume them.
	//
	// The last block's activations never leave the device even when its
	// policy is Swap (there is no later forward to overlap a swap-out
	// with), but under weight streaming its prefetched weights and the
	// gradient buffer still follow the streamed protocol: the buffer is
	// allocated at backward and both drain right after it.
	lastBwd := plan.Op{
		Kind: plan.Bwd, Block: k - 1,
		Duration: s.Blocks[k-1].Cost.BwdTime,
		Free:     s.Blocks[k-1].Payload(),
	}
	if streamed(k - 1) {
		lastBwd.Alloc = s.Blocks[k-1].GBytes
		lastBwd.Free = s.Blocks[k-1].Cost.ActBytes
	}
	bld.BeginStage()
	bld.Add(lastBwd)
	for b := k - 2; b >= 0; b-- {
		switch s.Blocks[b].Policy {
		case Swap:
			bld.Add(plan.Op{
				Kind: plan.SwapIn, Block: b,
				Duration: move(s.Blocks[b].Cost.HeavyActBytes + s.Blocks[b].WBytes),
				Alloc:    s.Blocks[b].Cost.HeavyActBytes + s.Blocks[b].WBytes + s.Blocks[b].GBytes,
			})
		case Recompute:
			if !runContinues(s, b) {
				for rb := runStart(s, b); rb <= b; rb++ {
					if streamed(rb) {
						op := wIn(rb)
						op.Alloc += s.Blocks[rb].GBytes
						bld.Add(op)
					}
				}
			}
		}
	}
	bld.EndStage()
	if streamed(k - 1) {
		bld.Stage(plan.Op{
			Kind: plan.SwapOut, Block: k - 1,
			Duration: move(s.Blocks[k-1].GBytes),
			Free:     s.Blocks[k-1].WBytes + s.Blocks[k-1].GBytes,
		})
	}

	for b := k - 2; b >= 0; b-- {
		if s.Blocks[b].Policy == Recompute && !runContinues(s, b) {
			// b ends a recompute run: replay the whole run in forward
			// order from its boundary — a resident checkpoint, a swapped
			// predecessor's prefetched activations, or the model input —
			// so one boundary serves all blocks of the run (§III-F).
			start := runStart(s, b)
			for rb := start; rb <= b; rb++ {
				op := plan.Op{
					Kind: plan.Recompute, Block: rb,
					Duration: s.Blocks[rb].Cost.FwdTime,
					Alloc:    s.Blocks[rb].Cost.ActBytes,
				}
				if rb == start && start > 0 && s.Blocks[start-1].Ckpt {
					// The replay consumes the checkpoint boundary.
					op.Free = s.Blocks[start-1].Cost.OutBytes
				}
				bld.Stage(op)
			}
		}
		bwd := plan.Op{
			Kind: plan.Bwd, Block: b,
			Duration: s.Blocks[b].Cost.BwdTime,
			Free:     s.Blocks[b].Payload(),
		}
		if streamed(b) {
			// Streamed weights and the gradient buffer outlive the
			// backward pass; the gradient drain below releases them.
			bwd.Free = s.Blocks[b].Cost.ActBytes
		}
		if s.Blocks[b].Policy == Swap {
			// Rematerialize the cheap (unswapped) activations in line
			// with the backward pass.
			bwd.Duration += s.Blocks[b].Cost.CheapFwdTime
			bwd.Alloc = s.Blocks[b].Cost.ActBytes - s.Blocks[b].Cost.HeavyActBytes
		}
		bld.Stage(bwd)
		if streamed(b) {
			// Drain the block's gradients to far memory (the host-side
			// update of Fig. 3 stage 5 consumes them there) and drop the
			// weights — the host keeps the clean copy.
			bld.Stage(plan.Op{
				Kind: plan.SwapOut, Block: b,
				Duration: move(s.Blocks[b].GBytes),
				Free:     s.Blocks[b].WBytes + s.Blocks[b].GBytes,
			})
		}
	}
	return bld.Plan(), nil
}

// recomputed reports whether block i exists and recomputes.
func recomputed(s *Schedule, i int) bool {
	return i >= 0 && i < len(s.Blocks) && s.Blocks[i].Policy == Recompute
}

// runStart returns the first block of the recompute run ending at block
// b: the run extends backwards through recomputed predecessors until a
// checkpoint boundary or a differently-policied block.
func runStart(s *Schedule, b int) int {
	start := b
	for start > 0 && recomputed(s, start-1) && !s.Blocks[start-1].Ckpt {
		start--
	}
	return start
}

// runContinues reports whether block i's recompute run extends to block
// i+1 (i.e. i is not the run's last block): the next block recomputes and
// does not replay from a checkpoint placed on block i.
func runContinues(s *Schedule, i int) bool {
	return recomputed(s, i+1) && !s.Blocks[i].Ckpt
}

// RunContinues reports whether recomputed block i's replay run extends
// to block i+1 — block i's boundary is then consumed mid-replay rather
// than from a resident checkpoint. Consumers that must agree with
// BuildPlan's run structure (the MP collective injection of
// internal/dist re-reduces exactly these interior boundaries) use this
// rather than re-deriving it.
func (s *Schedule) RunContinues(i int) bool {
	return i >= 0 && i < len(s.Blocks) && runContinues(s, i)
}
