package karma

import (
	"fmt"

	"karma/internal/hw"
	"karma/internal/plan"
	"karma/internal/unit"
)

// BuildPlan lowers a schedule to the stage IR of Algorithm 1.
//
// Forward phase (Fig. 2b/c): F_b stages in order; a swapped block's
// swap-out launches with the next block's forward ("F_{b+1}||Sout_b"); a
// recomputed block's activations are dropped once the next forward has
// consumed its boundary.
//
// Backward phase: the last blocks are resident, so B starts immediately
// at the forward→backward transition (the capacity-based strategy's
// advantage over the eager vDNN schedule, §III-E2). All swap-ins launch
// at the first backward stage in consumption order; the H2D stream's FIFO
// plus the simulator's capacity gating yield exactly the "keep swapping
// in while space allows" behaviour. Recomputes interleave on the compute
// stream right before their backward (§III-F).
func BuildPlan(s *Schedule) (*plan.Plan, error) {
	k := len(s.Blocks)
	if k == 0 {
		return nil, fmt.Errorf("karma: empty schedule")
	}
	for i, b := range s.Blocks {
		if b.Policy == Recompute && i == k-1 {
			return nil, fmt.Errorf("karma: last block cannot be recomputed (it is resident by construction)")
		}
		if i >= s.Resident && b.Policy != Keep {
			return nil, fmt.Errorf("karma: resident block %d has policy %v", i, b.Policy)
		}
		if i < s.Resident && b.Policy == Keep {
			return nil, fmt.Errorf("karma: non-resident block %d has policy keep", i)
		}
	}

	p := &plan.Plan{Name: "karma/" + s.Profile.Graph.Name(), NumBlocks: k}
	swapBW := hw.SwapThroughput(s.Profile.Node)
	lat := s.Profile.Node.Link.Latency
	// Swapped blocks move only their heavy-layer activations; the cheap
	// remainder is rematerialized locally during backward (the
	// cost-driven version of SuperNeurons' layer-type split).
	heavyMove := func(b int) unit.Seconds {
		return unit.TransferTime(s.Blocks[b].Cost.HeavyActBytes, swapBW, lat)
	}

	// Forward phase.
	for b := 0; b < k; b++ {
		st := plan.Stage{}
		fwd := plan.Op{
			Kind: plan.Fwd, Block: b,
			Duration: s.Blocks[b].Cost.FwdTime,
			Alloc:    s.Blocks[b].Payload(),
		}
		// A recomputed predecessor's activations are dropped when this
		// forward completes; a checkpointed block keeps its boundary
		// resident for the run that will replay from it.
		if b > 0 && s.Blocks[b-1].Policy == Recompute {
			drop := s.Blocks[b-1].Payload()
			if s.Blocks[b-1].Ckpt {
				drop -= s.Blocks[b-1].Cost.OutBytes
			}
			fwd.Free += drop
		}
		st.Ops = append(st.Ops, fwd)
		if b > 0 && s.Blocks[b-1].Policy == Swap {
			st.Ops = append(st.Ops, plan.Op{
				Kind: plan.SwapOut, Block: b - 1,
				Duration: heavyMove(b - 1),
				Free:     s.Blocks[b-1].Payload(),
			})
		}
		p.Stages = append(p.Stages, st)
	}

	// Backward phase. First stage: B_{k-1} plus every swap-in, queued in
	// consumption order (highest block first).
	first := plan.Stage{Ops: []plan.Op{{
		Kind: plan.Bwd, Block: k - 1,
		Duration: s.Blocks[k-1].Cost.BwdTime,
		Free:     s.Blocks[k-1].Payload(),
	}}}
	for b := k - 2; b >= 0; b-- {
		if s.Blocks[b].Policy == Swap {
			first.Ops = append(first.Ops, plan.Op{
				Kind: plan.SwapIn, Block: b,
				Duration: heavyMove(b),
				Alloc:    s.Blocks[b].Cost.HeavyActBytes,
			})
		}
	}
	p.Stages = append(p.Stages, first)

	for b := k - 2; b >= 0; b-- {
		if s.Blocks[b].Policy == Recompute && !runContinues(s, b) {
			// b ends a recompute run: replay the whole run in forward
			// order from its boundary — a resident checkpoint, a swapped
			// predecessor's prefetched activations, or the model input —
			// so one boundary serves all blocks of the run (§III-F).
			start := b
			for start > 0 && recomputed(s, start-1) && !s.Blocks[start-1].Ckpt {
				start--
			}
			for rb := start; rb <= b; rb++ {
				op := plan.Op{
					Kind: plan.Recompute, Block: rb,
					Duration: s.Blocks[rb].Cost.FwdTime,
					Alloc:    s.Blocks[rb].Payload(),
				}
				if rb == start && start > 0 && s.Blocks[start-1].Ckpt {
					// The replay consumes the checkpoint boundary.
					op.Free = s.Blocks[start-1].Cost.OutBytes
				}
				p.Stages = append(p.Stages, plan.Stage{Ops: []plan.Op{op}})
			}
		}
		bwd := plan.Op{
			Kind: plan.Bwd, Block: b,
			Duration: s.Blocks[b].Cost.BwdTime,
			Free:     s.Blocks[b].Payload(),
		}
		if s.Blocks[b].Policy == Swap {
			// Rematerialize the cheap (unswapped) activations in line
			// with the backward pass.
			bwd.Duration += s.Blocks[b].Cost.CheapFwdTime
			bwd.Alloc = s.Blocks[b].Payload() - s.Blocks[b].Cost.HeavyActBytes
		}
		p.Stages = append(p.Stages, plan.Stage{Ops: []plan.Op{bwd}})
	}
	return p, nil
}

// recomputed reports whether block i exists and recomputes.
func recomputed(s *Schedule, i int) bool {
	return i >= 0 && i < len(s.Blocks) && s.Blocks[i].Policy == Recompute
}

// runContinues reports whether block i's recompute run extends to block
// i+1 (i.e. i is not the run's last block): the next block recomputes and
// does not replay from a checkpoint placed on block i.
func runContinues(s *Schedule, i int) bool {
	return recomputed(s, i+1) && !s.Blocks[i].Ckpt
}
