package karma

import (
	"strings"
	"testing"

	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/profiler"
	"karma/internal/unit"
)

// ckptProfile profiles the MP=1 transformer shard — the per-layer block
// structure the checkpoint regime was built for.
func ckptProfile(t *testing.T, batch int) *profiler.Profile {
	t.Helper()
	cfg := model.TransformerConfig{
		Name: "ckpt-lm", Hidden: 512, Heads: 8, Layers: 8, Seq: 128, Vocab: 8192,
	}
	sh := model.TransformerShard(cfg, 1)
	p, err := profiler.New(sh.Graph, hw.ABCINode(), profiler.Options{Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInCoreAllResident(t *testing.T) {
	p := ckptProfile(t, 4)
	s, err := InCore(p, p.TotalActBytes)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range s.Blocks {
		if b.Policy != Keep {
			t.Errorf("block %d policy %v, want keep", i, b.Policy)
		}
	}
	if s.Resident != 0 {
		t.Errorf("Resident = %d, want 0 (everything resident)", s.Resident)
	}
	if _, err := InCore(p, p.TotalActBytes-1); err == nil {
		t.Error("InCore must error when activations exceed the budget")
	}
}

func TestCheckpointAllResidentWhenFits(t *testing.T) {
	p := ckptProfile(t, 4)
	s, err := Checkpoint(p, p.TotalActBytes)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.RecomputedTime(); got != 0 {
		t.Errorf("nothing should recompute when everything fits, got %v", got)
	}
}

// TestCheckpointEngagesBeyondCapacity: below the all-resident footprint
// the regime recomputes a prefix from resident boundary checkpoints,
// and the resulting plan simulates within the budget.
func TestCheckpointEngagesBeyondCapacity(t *testing.T) {
	p := ckptProfile(t, 4)
	budget := p.TotalActBytes / 2
	s, err := Checkpoint(p, budget)
	if err != nil {
		t.Fatalf("Checkpoint at half the footprint: %v", err)
	}
	if s.RecomputedTime() == 0 {
		t.Fatal("the prefix must recompute below the all-resident footprint")
	}
	ckpts := 0
	for i, b := range s.Blocks {
		if i < s.Resident && b.Policy != Recompute {
			t.Errorf("prefix block %d policy %v, want recompute", i, b.Policy)
		}
		if b.Ckpt {
			ckpts++
		}
	}
	if ckpts == 0 {
		t.Error("no boundary checkpoints marked")
	}
	pl, err := BuildPlan(s)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	_, tl, err := pl.Simulate(s.Budget)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if tl.PeakMem > budget {
		t.Errorf("peak %v exceeds the %v budget", tl.PeakMem, budget)
	}
	// The checkpointed iteration pays recompute: it must be slower than
	// the all-resident iteration of the same profile.
	full, err := Checkpoint(p, p.TotalActBytes)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := BuildPlan(full)
	if err != nil {
		t.Fatal(err)
	}
	_, ftl, err := fp.Simulate(full.Budget)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Makespan <= ftl.Makespan {
		t.Errorf("checkpointed iteration %v not slower than all-resident %v", tl.Makespan, ftl.Makespan)
	}
}

// TestCheckpointFootprint: the minimal checkpointed footprint must beat
// the all-resident footprint on a deep model, and Checkpoint must
// succeed exactly down to (approximately) that budget.
func TestCheckpointFootprint(t *testing.T) {
	p := ckptProfile(t, 8)
	min := CheckpointFootprint(p)
	if min >= p.TotalActBytes {
		t.Fatalf("checkpointing saves nothing: footprint %v vs acts %v", min, p.TotalActBytes)
	}
	if _, err := Checkpoint(p, min); err != nil {
		t.Errorf("Checkpoint at its own minimal footprint %v: %v", min, err)
	}
	_, err := Checkpoint(p, min-1)
	if err == nil {
		t.Error("Checkpoint below the minimal footprint should fail")
	} else if !strings.Contains(err.Error(), "checkpointed activations") {
		t.Errorf("error %q should name the checkpointed footprint", err)
	}
}

// TestCheckpointCapacityBatchGain: the regime's point — at a fixed
// budget, checkpointing admits a strictly larger batch than keeping
// everything resident.
func TestCheckpointCapacityBatchGain(t *testing.T) {
	budget := 2 * unit.GiB
	capacity := func(ckpt bool) int {
		best := 0
		for b := 1; b <= 1<<10; b *= 2 {
			p := ckptProfile(t, b)
			var err error
			if ckpt {
				_, err = Checkpoint(p, budget)
			} else {
				_, err = InCore(p, budget)
			}
			if err != nil {
				break
			}
			best = b
		}
		return best
	}
	plain, ck := capacity(false), capacity(true)
	if plain == 0 || ck == 0 {
		t.Fatalf("capacities: plain=%d ckpt=%d", plain, ck)
	}
	if ck <= plain {
		t.Errorf("checkpointing should raise the capacity batch: plain=%d ckpt=%d", plain, ck)
	}
}
