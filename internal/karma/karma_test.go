package karma

import (
	"testing"

	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/profiler"
	"karma/internal/unit"
)

func profileFor(t *testing.T, name string, batch int) *profiler.Profile {
	t.Helper()
	g, err := model.Build(name)
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	p, err := profiler.New(g, hw.ABCINode(), profiler.Options{Batch: batch})
	if err != nil {
		t.Fatalf("profiler.New: %v", err)
	}
	return p
}

func TestPolicyString(t *testing.T) {
	if Keep.String() != "keep" || Swap.String() != "swap" || Recompute.String() != "recompute" {
		t.Error("policy names wrong")
	}
}

func TestPlanInCoreBatchHasNoSwaps(t *testing.T) {
	// A batch that fits entirely must plan as all-resident: no swapped
	// bytes, no recompute, occupancy 1.
	p := profileFor(t, "resnet50", 32)
	if !p.FitsInCore() {
		t.Fatal("batch 32 should fit in-core")
	}
	s, err := Plan(p, Options{})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if s.SwappedBytes() != 0 {
		t.Errorf("in-core plan swaps %v", s.SwappedBytes())
	}
	if s.RecomputedTime() != 0 {
		t.Errorf("in-core plan recomputes %v", s.RecomputedTime())
	}
	rep, err := Simulate(s)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if rep.Occupancy < 0.999 {
		t.Errorf("in-core occupancy = %v, want ~1", rep.Occupancy)
	}
}

func TestPlanOutOfCoreResNet50(t *testing.T) {
	// Fig. 5's second ResNet-50 point: batch 256 exceeds 16 GiB.
	p := profileFor(t, "resnet50", 256)
	if p.FitsInCore() {
		t.Fatal("batch 256 should not fit in-core")
	}
	s, err := Plan(p, Options{})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if s.SwappedBytes() == 0 && s.RecomputedTime() == 0 {
		t.Error("out-of-core plan must swap or recompute something")
	}
	if s.Resident == 0 {
		t.Error("capacity-based strategy should keep a resident tail")
	}
	rep, err := Simulate(s)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if rep.IterTime <= 0 || rep.Throughput <= 0 {
		t.Fatalf("bad report %+v", rep)
	}
	if rep.PeakMem > s.Budget {
		t.Errorf("peak %v exceeds budget %v", rep.PeakMem, s.Budget)
	}
}

func TestRecomputeNeverSlower(t *testing.T) {
	// KARMA w/recompute must never lose to plain KARMA — Opt-2 only
	// accepts improving flips.
	for _, batch := range []int{256, 384, 512} {
		p := profileFor(t, "resnet50", batch)
		noRe, err := Plan(p, Options{DisableRecompute: true})
		if err != nil {
			t.Fatalf("Plan(no recompute): %v", err)
		}
		withRe, err := Plan(p, Options{})
		if err != nil {
			t.Fatalf("Plan(recompute): %v", err)
		}
		a, err := Simulate(noRe)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Simulate(withRe)
		if err != nil {
			t.Fatal(err)
		}
		if b.IterTime > a.IterTime {
			t.Errorf("batch %d: recompute slower (%v) than plain (%v)", batch, b.IterTime, a.IterTime)
		}
	}
}

func TestOutOfCoreSlowerThanInCore(t *testing.T) {
	// Throughput (samples/s) at an out-of-core batch must not exceed the
	// in-core rate — out-of-core adds overhead, never speed (Fig. 5).
	inCore := profileFor(t, "resnet50", 128)
	sIn, err := Plan(inCore, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rIn, err := Simulate(sIn)
	if err != nil {
		t.Fatal(err)
	}
	ooc := profileFor(t, "resnet50", 512)
	sOoc, err := Plan(ooc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rOoc, err := Simulate(sOoc)
	if err != nil {
		t.Fatal(err)
	}
	if rOoc.Throughput > rIn.Throughput {
		t.Errorf("OOC throughput %v exceeds in-core %v", rOoc.Throughput, rIn.Throughput)
	}
	// But it must remain within an order of magnitude (graceful
	// degradation, not collapse: the paper reports 9-37%).
	if rOoc.Throughput < rIn.Throughput/10 {
		t.Errorf("OOC collapsed: %v vs %v", rOoc.Throughput, rIn.Throughput)
	}
}

func TestBwdTracePopulated(t *testing.T) {
	p := profileFor(t, "resnet200", 12)
	s, err := Plan(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.BwdTrace) < s.NumBlocks() {
		t.Errorf("trace has %d entries for %d blocks", len(rep.BwdTrace), s.NumBlocks())
	}
	for _, tr := range rep.BwdTrace {
		if tr.End < tr.Start || tr.Stall < 0 {
			t.Errorf("bad trace entry %+v", tr)
		}
	}
}

func TestSolverACOFeasible(t *testing.T) {
	p := profileFor(t, "resnet50", 256)
	s, err := Plan(p, Options{Solver: SolverACO, Seed: 7, MaxBlocks: 12})
	if err != nil {
		t.Fatalf("Plan(ACO): %v", err)
	}
	if _, err := Simulate(s); err != nil {
		t.Fatalf("Simulate(ACO plan): %v", err)
	}
}

func TestPlanErrorsWhenWeightsDontFit(t *testing.T) {
	// megatron-2.5B weights x2 exceed a 16 GiB device: the single-device
	// planner must refuse and point at the distributed path.
	g, err := model.Build("megatron-2.5B")
	if err != nil {
		t.Fatal(err)
	}
	p, err := profiler.New(g, hw.ABCINode(), profiler.Options{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(p, Options{}); err == nil {
		t.Error("planner should reject models whose weights exceed device memory")
	}
}

func TestScheduleAccessors(t *testing.T) {
	p := profileFor(t, "resnet50", 256)
	s, err := Plan(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBlocks() != len(s.Blocks) {
		t.Error("NumBlocks mismatch")
	}
	var swapped unit.Bytes
	for _, b := range s.Blocks {
		if b.Policy == Swap {
			swapped += b.Payload()
		}
	}
	if s.SwappedBytes() != swapped {
		t.Error("SwappedBytes mismatch")
	}
}

func TestBuildPlanPolicyValidation(t *testing.T) {
	p := profileFor(t, "smallcnn", 4)
	s, err := Plan(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Resident < len(s.Blocks) {
		t.Skip("need an all-resident schedule for this test")
	}
	// Corrupt: mark a resident block as swap.
	s.Blocks[len(s.Blocks)-1].Policy = Swap
	if _, err := BuildPlan(s); err == nil {
		t.Error("BuildPlan should reject resident blocks with swap policy")
	}
}

func TestCapacityBasedKeepsTailResident(t *testing.T) {
	// The defining feature (§III-E2, Fig. 2b): the blocks computed last in
	// the forward pass stay resident, so the backward phase starts without
	// waiting for any swap-in.
	p := profileFor(t, "vgg16", 96)
	s, err := Plan(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.BwdTrace) == 0 {
		t.Fatal("no backward trace")
	}
	first := rep.BwdTrace[0]
	if first.Block != s.NumBlocks()-1 {
		t.Fatalf("first backward is block %d, want last block", first.Block)
	}
	if first.Stall > 0 {
		t.Errorf("backward of the resident last block stalled %v", first.Stall)
	}
}

func TestCheckpointedRecomputePlan(t *testing.T) {
	// Deep out-of-core planning should exercise the checkpointed-run
	// candidate on at least one grid point; verify its structural
	// invariants when it appears.
	for _, batch := range []int{384, 512, 768} {
		p := profileFor(t, "resnet50", batch)
		s, err := Plan(p, Options{})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		for i, b := range s.Blocks {
			if !b.Ckpt {
				continue
			}
			// A checkpoint only makes sense when the NEXT block replays
			// from it.
			if i+1 >= len(s.Blocks) || s.Blocks[i+1].Policy != Recompute {
				t.Errorf("batch %d block %d: checkpoint without a following recompute", batch, i)
			}
			// The boundary must be physically stored (anchor rule).
			if b.Cost.ActBytes < b.Cost.OutBytes {
				t.Errorf("batch %d block %d: checkpoint on an aliasing block", batch, i)
			}
		}
		// And the lowered plan still balances.
		pl, err := BuildPlan(s)
		if err != nil {
			t.Fatal(err)
		}
		if d := pl.MemoryDelta(); d != 0 {
			t.Errorf("batch %d: leak %v", batch, d)
		}
	}
}

func TestBuildPlanCkptRunSplit(t *testing.T) {
	// Construct a schedule with two recompute runs split by a checkpoint
	// and verify the emitted plan contains both replay runs in order.
	p := profileFor(t, "smallcnn", 512)
	budget, err := BudgetFor(p, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) < 5 {
		t.Skip("need 5 blocks")
	}
	s := &Schedule{
		Profile:  p,
		Blocks:   make([]Block, len(p.Blocks)),
		Resident: 4,
		Budget:   budget,
	}
	for i := range s.Blocks {
		s.Blocks[i] = Block{Range: [2]int{i, i + 1}, Cost: p.Blocks[i], Policy: Keep}
	}
	for i := 0; i < 4; i++ {
		s.Blocks[i].Policy = Recompute
	}
	// Find an anchorable block among 0..2 for the split.
	anchored := false
	for i := 1; i < 3; i++ {
		if s.Blocks[i].Cost.ActBytes >= s.Blocks[i].Cost.OutBytes && s.Blocks[i].Cost.OutBytes > 0 {
			s.Blocks[i].Ckpt = true
			anchored = true
			break
		}
	}
	if !anchored {
		t.Skip("no anchorable block in this model")
	}
	pl, err := BuildPlan(s)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	if d := pl.MemoryDelta(); d != 0 {
		t.Errorf("ckpt-split plan leaks %v", d)
	}
	// Both replays appear: count Recompute ops (one per recomputed block).
	re := 0
	for _, st := range pl.Stages {
		for _, op := range st.Ops {
			if op.Kind.String() == "R" {
				re++
			}
		}
	}
	if re != 4 {
		t.Errorf("recompute ops = %d, want 4", re)
	}
	if _, _, err := pl.Simulate(s.Budget); err != nil {
		t.Errorf("ckpt-split plan does not simulate: %v", err)
	}
}
