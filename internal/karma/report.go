package karma

import (
	"karma/internal/plan"
	"karma/internal/sim"
	"karma/internal/unit"
)

// BlockTrace records the simulated execution of one backward-phase op,
// the raw material of the paper's stall profile (Fig. 6).
type BlockTrace struct {
	Block    int
	Kind     plan.Kind
	Start    unit.Seconds
	End      unit.Seconds
	Stall    unit.Seconds
	Duration unit.Seconds
}

// Report is the simulated outcome of a schedule.
type Report struct {
	Plan *plan.Plan
	// IterTime is the makespan of one training iteration.
	IterTime unit.Seconds
	// Throughput in samples per second at the profile's batch size.
	Throughput float64
	// Occupancy is Eq. (1) measured on the simulated compute stream.
	Occupancy float64
	// ComputeStall is total idle on the compute stream inside the
	// iteration.
	ComputeStall unit.Seconds
	// PeakMem is the peak activation footprint observed.
	PeakMem unit.Bytes
	// BwdTrace lists backward and recompute ops in execution order.
	BwdTrace []BlockTrace
}

// Simulate lowers the schedule to the plan IR, runs the event simulator
// against the activation budget, and aggregates the outcome.
func Simulate(s *Schedule) (*Report, error) {
	pl, err := BuildPlan(s)
	if err != nil {
		return nil, err
	}
	c, tl, err := pl.Simulate(s.Budget)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Plan:         pl,
		IterTime:     tl.Makespan,
		Throughput:   float64(s.Profile.Opts.Batch) / float64(tl.Makespan),
		Occupancy:    tl.Occupancy(c.Ops),
		ComputeStall: tl.ComputeIdle(c.Ops),
		PeakMem:      tl.PeakMem,
	}
	rep.BwdTrace = TraceBackward(c, tl)
	return rep, nil
}

// TraceBackward extracts the backward-phase stall profile from a
// simulated plan: one entry per backward or recompute op, where Stall is
// the gap the compute pipeline sat idle before the op — the quantity
// Fig. 6 plots per layer.
func TraceBackward(c *plan.Compiled, tl *sim.Timeline) []BlockTrace {
	var out []BlockTrace
	var lastComputeEnd unit.Seconds
	for i, op := range c.PlanOps {
		onCompute := op.Kind == plan.Fwd || op.Kind == plan.Bwd ||
			op.Kind == plan.Recompute || op.Kind == plan.UpdateGPU
		if !onCompute {
			continue
		}
		r := tl.Ops[i]
		if op.Kind == plan.Bwd || op.Kind == plan.Recompute {
			stall := r.Start - lastComputeEnd
			if stall < 0 {
				stall = 0
			}
			out = append(out, BlockTrace{
				Block:    op.Block,
				Kind:     op.Kind,
				Start:    r.Start,
				End:      r.End,
				Stall:    stall,
				Duration: op.Duration,
			})
		}
		lastComputeEnd = r.End
	}
	return out
}
