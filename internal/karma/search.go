package karma

import (
	"fmt"
	"math"
	"sort"

	"karma/internal/hw"
	"karma/internal/occupancy"
	"karma/internal/profiler"
	"karma/internal/solve"
	"karma/internal/unit"
)

// Plan runs the two-tier optimization of Fig. 4 and returns a complete
// schedule: Opt-1 groups profiled segments into blocks maximizing
// occupancy under the memory-capacity constraint; Opt-2 flips blocks from
// swapping to recomputation where that reduces pipeline stalls
// (constraint 10.1).
func Plan(p *profiler.Profile, opts Options) (*Schedule, error) {
	opts.normalize()
	budget, err := ActivationBudget(p, opts)
	if err != nil {
		return nil, err
	}
	n := len(p.Blocks)
	if n == 0 {
		return nil, fmt.Errorf("karma: profile has no blocks")
	}

	weights := make([]float64, n)
	for i, b := range p.Blocks {
		// Partition on payload bytes with a floor so zero-activation
		// segments still carry positional weight.
		w := float64(b.ActBytes)
		if opts.StreamWeights {
			w += (1 + opts.GradScale) * float64(b.WeightBytes)
		}
		weights[i] = w + 1
	}
	bw := hw.SwapThroughput(p.Node)
	eval := func(cuts []int) float64 {
		return float64(estimateCuts(p, cuts, budget, bw, opts))
	}

	// Opt-1: enumerate balanced partitions over K, then refine.
	maxK := opts.MaxBlocks
	if maxK > n {
		maxK = n
	}
	var bestCuts []int
	bestV := math.Inf(1)
	for k := 1; k <= maxK; k++ {
		cuts, err := solve.BalancedPartition(weights, k)
		if err != nil {
			continue
		}
		if v := eval(cuts); v < bestV {
			bestV, bestCuts = v, cuts
		}
	}
	if math.IsInf(bestV, 1) {
		return nil, fmt.Errorf("karma: no feasible partition: a single segment exceeds the activation budget %v", budget)
	}
	switch opts.Solver {
	case SolverBalanced:
		bestCuts = solve.HillClimb(bestCuts, n, eval, 6)
	case SolverACO:
		if cuts, err := solve.ACOBoundaries(n, len(bestCuts)+1, eval, opts.Seed); err == nil && eval(cuts) < eval(bestCuts) {
			bestCuts = cuts
		}
	default:
		return nil, fmt.Errorf("karma: unknown solver %d", int(opts.Solver))
	}

	// Opt-2: jointly search the residency depth and the recompute
	// interleave over a ladder of blocking granularities. Keeping the
	// maximal resident suffix is not always optimal — shrinking it frees
	// budget for recompute checkpoints, trading swap traffic for
	// redundant compute (constraint 10.1) — and recompute-heavy policies
	// prefer different granularities than swap-heavy ones, so the final
	// selection simulates candidates across both dimensions.
	s, t, err := bestPolicy(p, bestCuts, budget, opts)
	for _, k := range []int{maxK, maxK * 3 / 4, maxK / 2, maxK / 4, 8, 6, 4, 3, 2} {
		if k < 2 || k > n || k == len(bestCuts)+1 {
			continue
		}
		cuts, cerr := solve.BalancedPartition(weights, k)
		if cerr != nil {
			continue
		}
		if s2, t2, err2 := bestPolicy(p, cuts, budget, opts); err2 == nil && (err != nil || t2 < t) {
			s, t, err = s2, t2, err2
		}
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// bestPolicy enumerates resident-suffix depths; for each depth it applies
// the greedy constraint-10.1 recompute marking to the non-resident
// prefix, then picks the schedule with the shortest simulated iteration.
func bestPolicy(p *profiler.Profile, cuts []int, budget unit.Bytes, opts Options) (*Schedule, unit.Seconds, error) {
	base := scheduleFromCuts(p, cuts, budget, opts)
	k := len(base.Blocks)
	payloads := make([]unit.Bytes, k)
	for i, b := range base.Blocks {
		payloads[i] = b.Payload()
	}
	maxResident := base.Resident

	var best *Schedule
	bestTime := unit.Seconds(math.Inf(1))
	var firstErr error
	try := func(cand *Schedule) {
		rep, err := Simulate(cand)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		if rep.IterTime < bestTime {
			bestTime, best = rep.IterTime, cand
		}
	}
	swapBW := hw.SwapThroughput(p.Node)
	for r := maxResident; r <= k; r++ {
		var tail unit.Bytes
		for i := r; i < k; i++ {
			tail += payloads[i]
		}
		if tail > budget {
			continue
		}
		// Candidate (a): capacity-based swapping with the greedy
		// constraint-10.1 recompute interleave.
		cand := scheduleFromCuts(p, cuts, budget, opts)
		cand.Resident = r
		for i := range cand.Blocks {
			if i < r {
				cand.Blocks[i].Policy = Swap
			} else {
				cand.Blocks[i].Policy = Keep
			}
		}
		if !opts.DisableRecompute {
			markRecompute(cand, budget-tail, swapBW, p.Node.Link.Latency)
		}
		try(cand)

		// Candidate (b): checkpointed full recompute of the prefix —
		// adjacent runs split by resident boundary checkpoints (the
		// gradient-checkpointing structure, which KARMA's two-tier
		// optimization subsumes; Fig. 4's search space includes it).
		if !opts.DisableRecompute && r > 0 && r < k {
			ck := scheduleFromCuts(p, cuts, budget, opts)
			ck.Resident = r
			if checkpointPrefix(ck, r, budget-tail) {
				try(ck)
			}
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, 0, firstErr
		}
		return nil, 0, fmt.Errorf("karma: no simulable policy for budget %v", budget)
	}
	return best, bestTime, nil
}

// checkpointPrefix marks blocks [0, r) as recompute with greedy run
// splitting: whenever the running replay working set would exceed half
// the prefix budget, the previous block gets a checkpoint and a new run
// starts. It reports whether the construction stayed memory-feasible
// (checkpoints plus the largest run fit the prefix budget).
func checkpointPrefix(s *Schedule, r int, prefixBudget unit.Bytes) bool {
	// No swaps coexist with this candidate's replays, so runs may use
	// most of the prefix budget (the rest buys checkpoints).
	runCap := prefixBudget - prefixBudget/4
	// A checkpoint must land on a block that physically stores its
	// boundary tensor (ActBytes >= OutBytes); in-place segments alias
	// their predecessor's buffer and cannot anchor a replay.
	canAnchor := func(i int) bool {
		return i > 0 && s.Blocks[i].Cost.ActBytes >= s.Blocks[i].Cost.OutBytes &&
			s.Blocks[i].Cost.OutBytes > 0
	}
	var run unit.Bytes
	for i := 0; i < r; i++ {
		s.Blocks[i].Policy = Recompute
		if run+s.Blocks[i].Payload() > runCap && i > 0 {
			for j := i - 1; j > 0; j-- {
				if canAnchor(j) {
					s.Blocks[j].Ckpt = true
					break
				}
			}
			run = 0
		}
		run += s.Blocks[i].Payload()
	}
	for i := r; i < len(s.Blocks); i++ {
		s.Blocks[i].Policy = Keep
	}
	var ckpt unit.Bytes
	for _, b := range s.Blocks {
		if b.Ckpt {
			ckpt += b.Cost.OutBytes
		}
	}
	return ckpt+maxRunBytes(s.Blocks) <= prefixBudget
}

// markRecompute greedily flips swapped blocks to full recompute in order
// of the time saved (the heavy-payload transfer avoided minus the extra
// replay compute beyond the cheap part a partial swap already pays),
// subject to the memory side condition of constraint 10.1: a recompute
// run replays wholesale, so no run's working set may exceed half the
// budget left beside the resident tail. Run boundaries need no extra
// reserve: each run replays from its predecessor's activations, which are
// either resident or arrive on the swap-in stream (the compiler emits
// that dependency).
func markRecompute(s *Schedule, prefixBudget unit.Bytes, swapBW unit.BytesPerSec, lat unit.Seconds) {
	type cand struct {
		idx     int
		benefit unit.Seconds
	}
	var cands []cand
	for i, b := range s.Blocks {
		if b.Policy != Swap || i == 0 || i == len(s.Blocks)-1 {
			continue
		}
		move := unit.TransferTime(b.Cost.HeavyActBytes, swapBW, lat)
		extraReplay := b.Cost.FwdTime - b.Cost.CheapFwdTime
		if benefit := move - extraReplay; benefit > 0 {
			cands = append(cands, cand{idx: i, benefit: benefit})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].benefit != cands[b].benefit {
			return cands[a].benefit > cands[b].benefit
		}
		return cands[a].idx < cands[b].idx
	})
	runCap := prefixBudget / 2
	for _, c := range cands {
		s.Blocks[c.idx].Policy = Recompute
		if maxRunBytes(s.Blocks) > runCap {
			s.Blocks[c.idx].Policy = Swap
		}
	}
}

// maxRunBytes returns the largest recompute run's total activation
// payload; checkpointed blocks end their run.
func maxRunBytes(blocks []Block) unit.Bytes {
	var max, cur unit.Bytes
	for _, b := range blocks {
		if b.Policy == Recompute {
			cur += b.Payload()
			if cur > max {
				max = cur
			}
			if b.Ckpt {
				cur = 0
			}
		} else {
			cur = 0
		}
	}
	return max
}

// estimateCuts is the fast analytic objective for Opt-1: the estimated
// iteration makespan for a candidate partition, assuming every
// non-resident block swaps (recompute refinement happens later). Under
// StreamWeights the payloads and transfers include the weight and
// gradient share travelling with each block (§III-G). Infeasible
// partitions return +Inf.
func estimateCuts(p *profiler.Profile, cuts []int, budget unit.Bytes, bw unit.BytesPerSec, opts Options) unit.Seconds {
	rs := solve.Ranges(cuts, len(p.Blocks))
	blocks := make([]profiler.Block, len(rs))
	payloads := make([]unit.Bytes, len(rs))
	wbytes := make([]unit.Bytes, len(rs))
	for i, r := range rs {
		blocks[i] = p.MergeBlocks(r[0], r[1])
		payloads[i] = blocks[i].ActBytes
		if opts.StreamWeights {
			wbytes[i] = blocks[i].WeightBytes
			payloads[i] += wbytes[i] + unit.Bytes(math.Ceil(opts.GradScale*float64(wbytes[i])))
		}
		if payloads[i] > budget {
			return unit.Seconds(math.Inf(1))
		}
	}
	r := occupancy.ResidentSuffix(payloads, budget)

	// Forward phase: compute serializes; swap-outs of the non-resident
	// prefix (heavy payloads only) overlap on the D2H stream, weight
	// prefetches of the streamed prefix overlap on the H2D stream.
	var fwd, sout, sinW unit.Seconds
	for i, b := range blocks {
		fwd += b.FwdTime
		if i < r {
			sout += unit.TransferTime(b.HeavyActBytes, bw, 0)
			sinW += unit.TransferTime(wbytes[i], bw, 0)
		}
	}
	fwdPhase := fwd
	if sout > fwdPhase {
		fwdPhase = sout
	}
	if sinW > fwdPhase {
		fwdPhase = sinW
	}

	// Backward phase under the capacity-based policy (Eqs. 3-8):
	// resident tail processes stall-free while the swapped prefix streams
	// in FIFO (heavy activations plus streamed weights), each swapped
	// block adding its cheap local recompute.
	seq := make([]occupancy.Block, 0, len(blocks))
	for i := len(blocks) - 1; i >= 0; i-- {
		ob := occupancy.Block{Proc: blocks[i].BwdTime}
		if i < r {
			ob.Proc += blocks[i].CheapFwdTime
			ob.Bytes = blocks[i].HeavyActBytes + wbytes[i] + 1 // +1: keep transfer ordering strict
		}
		seq = append(seq, ob)
	}
	est := occupancy.Backward(seq, bw)
	return fwdPhase + est.Total
}

// scheduleFromCuts materializes a schedule: merged blocks, resident
// suffix, and Swap policy for the non-resident prefix. Under
// StreamWeights every block carries its weight and (scaled) gradient
// payload, including resident blocks — their weights occupy the budget
// instead of the reserve.
func scheduleFromCuts(p *profiler.Profile, cuts []int, budget unit.Bytes, opts Options) *Schedule {
	rs := solve.Ranges(cuts, len(p.Blocks))
	blocks := make([]Block, len(rs))
	payloads := make([]unit.Bytes, len(rs))
	for i, r := range rs {
		blocks[i] = Block{Range: [2]int{r[0], r[1]}, Cost: p.MergeBlocks(r[0], r[1])}
		if opts.StreamWeights {
			blocks[i].WBytes = blocks[i].Cost.WeightBytes
			blocks[i].GBytes = unit.Bytes(math.Ceil(opts.GradScale * float64(blocks[i].Cost.WeightBytes)))
		}
		payloads[i] = blocks[i].Payload()
	}
	resident := occupancy.ResidentSuffix(payloads, budget)
	for i := range blocks {
		if i < resident {
			blocks[i].Policy = Swap
		} else {
			blocks[i].Policy = Keep
		}
	}
	return &Schedule{Profile: p, Opts: opts, Blocks: blocks, Resident: resident, Budget: budget}
}
