package karma

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"karma/internal/hw"
	"karma/internal/occupancy"
	"karma/internal/plan"
	"karma/internal/profiler"
	"karma/internal/sim"
	"karma/internal/solve"
	"karma/internal/unit"
)

// Plan runs the two-tier optimization of Fig. 4 and returns a complete
// schedule: Opt-1 groups profiled segments into blocks maximizing
// occupancy under the memory-capacity constraint; Opt-2 flips blocks from
// swapping to recomputation where that reduces pipeline stalls
// (constraint 10.1).
func Plan(p *profiler.Profile, opts Options) (*Schedule, error) {
	opts.normalize()
	budget, err := ActivationBudget(p, opts)
	if err != nil {
		return nil, err
	}
	n := len(p.Blocks)
	if n == 0 {
		return nil, fmt.Errorf("karma: profile has no blocks")
	}
	sr := newSearcher(p, budget, opts)

	weights := make([]float64, n)
	for i, b := range p.Blocks {
		// Partition on payload bytes with a floor so zero-activation
		// segments still carry positional weight.
		w := float64(b.ActBytes)
		if opts.StreamWeights {
			w += (1 + opts.GradScale) * float64(b.WeightBytes)
		}
		weights[i] = w + 1
	}
	// One Partitioner serves every k below: its parametric-search memo is
	// shared across the Opt-1 enumeration and the Opt-2 ladder (cut
	// positions are bit-identical to per-k BalancedPartition calls).
	pt, err := solve.NewPartitioner(weights)
	if err != nil {
		return nil, err
	}
	eval := sr.eval

	// Opt-1: enumerate balanced partitions over K, then refine.
	maxK := opts.MaxBlocks
	if maxK > n {
		maxK = n
	}
	var bestCuts []int
	bestV := math.Inf(1)
	for k := 1; k <= maxK; k++ {
		cuts, err := pt.Cuts(k)
		if err != nil {
			continue
		}
		if v := eval(cuts); v < bestV {
			bestV, bestCuts = v, cuts
		}
	}
	if math.IsInf(bestV, 1) {
		return nil, fmt.Errorf("karma: no feasible partition: a single segment exceeds the activation budget %v", budget)
	}
	switch opts.Solver {
	case SolverBalanced:
		bestCuts = solve.HillClimb(bestCuts, n, eval, 6)
	case SolverACO:
		if cuts, err := solve.ACOBoundaries(n, len(bestCuts)+1, eval, opts.Seed); err == nil && eval(cuts) < eval(bestCuts) {
			bestCuts = cuts
		}
	default:
		return nil, fmt.Errorf("karma: unknown solver %d", int(opts.Solver))
	}

	// Opt-2: jointly search the residency depth and the recompute
	// interleave over a ladder of blocking granularities. Keeping the
	// maximal resident suffix is not always optimal — shrinking it frees
	// budget for recompute checkpoints, trading swap traffic for
	// redundant compute (constraint 10.1) — and recompute-heavy policies
	// prefer different granularities than swap-heavy ones, so the final
	// selection simulates candidates across both dimensions. The
	// incumbent's time threads through as a bound: candidates whose
	// makespan lower bound already exceeds it are pruned unsimulated.
	s, t, err := sr.bestPolicy(bestCuts, unit.Seconds(math.Inf(1)))
	var ladderCuts []int
	for _, k := range []int{maxK, maxK * 3 / 4, maxK / 2, maxK / 4, 8, 6, 4, 3, 2} {
		if k < 2 || k > n || k == len(bestCuts)+1 {
			continue
		}
		cuts, cerr := pt.AppendCuts(ladderCuts[:0], k)
		if cerr != nil {
			continue
		}
		ladderCuts = cuts
		bound := unit.Seconds(math.Inf(1))
		if err == nil {
			bound = t
		}
		if s2, t2, err2 := sr.bestPolicy(cuts, bound); err2 == nil && (err != nil || t2 < t) {
			s, t, err = s2, t2, err2
		}
	}
	if err != nil {
		return nil, err
	}
	// Candidates were costed from metadata-free merged blocks; give the
	// winner the full merges (identical numerics plus the segment lists).
	for i := range s.Blocks {
		s.Blocks[i].Cost = p.MergeBlocks(s.Blocks[i].Range[0], s.Blocks[i].Range[1])
	}
	return s, nil
}

// searcher carries the reusable state of one Plan invocation: merged
// block costs and partition objective values memoized across candidates,
// scratch buffers for the analytic estimate, and the plan
// builder/compiler/simulator whose arenas every simulated candidate
// shares. Zero steady-state allocation is the point: the Opt-1/Opt-2
// search replays these paths thousands of times per plan.
type searcher struct {
	p      *profiler.Profile
	opts   Options
	budget unit.Bytes
	bw     unit.BytesPerSec
	lat    unit.Seconds
	name   string // plan name of every candidate build

	merged   map[[2]int]profiler.Block // MergeCosts per block range
	evalMemo map[string]float64        // estimate per encoded cut set
	evalKey  []byte

	// estimate scratch
	eblocks  []profiler.Block
	payloads []unit.Bytes
	wbytes   []unit.Bytes
	seq      []occupancy.Block
	arrive   []unit.Seconds

	// bestPolicy / scheduleFromCuts scratch (distinct: bestPolicy holds
	// its payload view across scheduleFromCuts calls)
	bpay []unit.Bytes
	spay []unit.Bytes

	builder  plan.Builder
	compiler plan.Compiler
	runner   sim.Runner
}

func newSearcher(p *profiler.Profile, budget unit.Bytes, opts Options) *searcher {
	return &searcher{
		p:        p,
		opts:     opts,
		budget:   budget,
		bw:       hw.SwapThroughput(p.Node),
		lat:      p.Node.Link.Latency,
		name:     "karma/" + p.Graph.Name(),
		merged:   map[[2]int]profiler.Block{},
		evalMemo: map[string]float64{},
	}
}

// mergeCosts returns the numeric merge of blocks [i, j), cached — the
// same ranges recur across every candidate cut set sharing a boundary.
func (sr *searcher) mergeCosts(i, j int) profiler.Block {
	key := [2]int{i, j}
	if b, ok := sr.merged[key]; ok {
		return b
	}
	b := sr.p.MergeCosts(i, j)
	sr.merged[key] = b
	return b
}

// eval is the memoized Opt-1 objective over cut positions.
func (sr *searcher) eval(cuts []int) float64 {
	k := sr.evalKey[:0]
	for _, c := range cuts {
		k = binary.AppendVarint(k, int64(c))
	}
	sr.evalKey = k
	if v, ok := sr.evalMemo[string(k)]; ok {
		return v
	}
	v := float64(sr.estimate(cuts))
	sr.evalMemo[string(k)] = v
	return v
}

// estimate is the fast analytic objective for Opt-1: the estimated
// iteration makespan for a candidate partition, assuming every
// non-resident block swaps (recompute refinement happens later). Under
// StreamWeights the payloads and transfers include the weight and
// gradient share travelling with each block (§III-G). Infeasible
// partitions return +Inf.
func (sr *searcher) estimate(cuts []int) unit.Seconds {
	n := len(sr.p.Blocks)
	blocks := sr.eblocks[:0]
	payloads := sr.payloads[:0]
	wbytes := sr.wbytes[:0]
	start := 0
	for i := 0; i <= len(cuts); i++ {
		end := n
		if i < len(cuts) {
			end = cuts[i]
		}
		b := sr.mergeCosts(start, end)
		start = end
		blocks = append(blocks, b)
		payload := b.ActBytes
		var wb unit.Bytes
		if sr.opts.StreamWeights {
			wb = b.WeightBytes
			payload += wb + unit.Bytes(math.Ceil(sr.opts.GradScale*float64(wb)))
		}
		payloads = append(payloads, payload)
		wbytes = append(wbytes, wb)
	}
	sr.eblocks, sr.payloads, sr.wbytes = blocks, payloads, wbytes
	for _, pl := range payloads {
		if pl > sr.budget {
			return unit.Seconds(math.Inf(1))
		}
	}
	r := occupancy.ResidentSuffix(payloads, sr.budget)

	// Forward phase: compute serializes; swap-outs of the non-resident
	// prefix (heavy payloads only) overlap on the D2H stream, weight
	// prefetches of the streamed prefix overlap on the H2D stream.
	var fwd, sout, sinW unit.Seconds
	for i, b := range blocks {
		fwd += b.FwdTime
		if i < r {
			sout += unit.TransferTime(b.HeavyActBytes, sr.bw, 0)
			sinW += unit.TransferTime(wbytes[i], sr.bw, 0)
		}
	}
	fwdPhase := fwd
	if sout > fwdPhase {
		fwdPhase = sout
	}
	if sinW > fwdPhase {
		fwdPhase = sinW
	}

	// Backward phase under the capacity-based policy (Eqs. 3-8):
	// resident tail processes stall-free while the swapped prefix streams
	// in FIFO (heavy activations plus streamed weights), each swapped
	// block adding its cheap local recompute.
	seq := sr.seq[:0]
	for i := len(blocks) - 1; i >= 0; i-- {
		ob := occupancy.Block{Proc: blocks[i].BwdTime}
		if i < r {
			ob.Proc += blocks[i].CheapFwdTime
			ob.Bytes = blocks[i].HeavyActBytes + wbytes[i] + 1 // +1: keep transfer ordering strict
		}
		seq = append(seq, ob)
	}
	sr.seq = seq
	if cap(sr.arrive) < len(seq) {
		sr.arrive = make([]unit.Seconds, len(seq))
	}
	est := occupancy.BackwardScratch(seq, sr.bw, sr.arrive[:len(seq)])
	return fwdPhase + est.Total
}

// iterTime simulates one candidate through the shared builder, compiler
// and runner, returning only the makespan. Error values match
// Simulate's exactly (the search keeps the first failure).
func (sr *searcher) iterTime(cand *Schedule) (unit.Seconds, error) {
	pl, err := buildPlan(&sr.builder, sr.name, cand)
	if err != nil {
		return 0, err
	}
	c, err := sr.compiler.Compile(pl)
	if err != nil {
		return 0, err
	}
	//karma:plan-ok ops come from Compile on this same plan; the pooled Runner just skips Simulate's per-call allocations
	tl, err := sr.runner.Run(c.Ops, cand.Budget)
	if err != nil {
		return 0, fmt.Errorf("plan %s: %w", pl.Name, err)
	}
	return tl.Makespan, nil
}

// lowerBound returns a provable lower bound on the simulated makespan of
// the schedule's plan: the busiest stream's total op duration, summed
// from the same per-block costs BuildPlan emits (compute: forwards,
// backwards, cheap remats of swapped blocks and full replays of
// recomputed ones; H2D: weight prefetches and backward swap-ins; D2H:
// swap-outs and gradient drains). Every op runs exactly once on its FIFO
// stream, so the makespan can never undercut any stream's busy total.
func (sr *searcher) lowerBound(s *Schedule) float64 {
	k := len(s.Blocks)
	var compute, h2d, d2h unit.Seconds
	for i := range s.Blocks {
		b := &s.Blocks[i]
		compute += b.Cost.FwdTime + b.Cost.BwdTime
		switch b.Policy {
		case Swap:
			// The last block never actually swaps: no swap-out overlaps a
			// later forward, no swap-in or remat precedes its backward.
			if i < k-1 {
				compute += b.Cost.CheapFwdTime
				d2h += unit.TransferTime(b.Cost.HeavyActBytes, sr.bw, sr.lat)
				h2d += unit.TransferTime(b.Cost.HeavyActBytes+b.WBytes, sr.bw, sr.lat)
			}
		case Recompute:
			compute += b.Cost.FwdTime
		}
		if b.Policy != Keep && b.WBytes > 0 {
			h2d += unit.TransferTime(b.WBytes, sr.bw, sr.lat) // forward prefetch
			if b.Policy == Recompute {
				h2d += unit.TransferTime(b.WBytes, sr.bw, sr.lat) // backward refetch
			}
			d2h += unit.TransferTime(b.GBytes, sr.bw, sr.lat) // gradient drain
		}
	}
	lb := compute
	if h2d > lb {
		lb = h2d
	}
	if d2h > lb {
		lb = d2h
	}
	return float64(lb)
}

// bestPolicy enumerates resident-suffix depths; for each depth it applies
// the greedy constraint-10.1 recompute marking to the non-resident
// prefix, then picks the schedule with the shortest simulated iteration.
// bound seeds the incumbent time (+Inf for an unconstrained search):
// only candidates strictly beating it are returned, and candidates whose
// makespan lower bound cannot beat it are dominated — skipped without
// simulating, which cannot change the winner because selection is by
// strict improvement.
func (sr *searcher) bestPolicy(cuts []int, bound unit.Seconds) (*Schedule, unit.Seconds, error) {
	base := sr.scheduleFromCuts(cuts)
	k := len(base.Blocks)
	payloads := sr.bpay[:0]
	for _, b := range base.Blocks {
		payloads = append(payloads, b.Payload())
	}
	sr.bpay = payloads
	maxResident := base.Resident

	var best *Schedule
	bestTime := bound
	var firstErr error
	try := func(cand *Schedule) {
		// Dominance prune: a candidate whose provable floor is already at
		// or above the incumbent cannot strictly improve on it. The
		// (1-1e-9) factor absorbs the different floating-point summation
		// order between the bound and the simulator's busy accounting.
		if lb := sr.lowerBound(cand); lb*(1-1e-9) >= float64(bestTime) {
			return
		}
		t, err := sr.iterTime(cand)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		if t < bestTime {
			bestTime, best = t, cand
		}
	}
	for r := maxResident; r <= k; r++ {
		var tail unit.Bytes
		for i := r; i < k; i++ {
			tail += payloads[i]
		}
		if tail > sr.budget {
			continue
		}
		// Candidate (a): capacity-based swapping with the greedy
		// constraint-10.1 recompute interleave.
		cand := sr.scheduleFromCuts(cuts)
		cand.Resident = r
		for i := range cand.Blocks {
			if i < r {
				cand.Blocks[i].Policy = Swap
			} else {
				cand.Blocks[i].Policy = Keep
			}
		}
		if !sr.opts.DisableRecompute {
			markRecompute(cand, sr.budget-tail, sr.bw, sr.lat)
		}
		try(cand)

		// Candidate (b): checkpointed full recompute of the prefix —
		// adjacent runs split by resident boundary checkpoints (the
		// gradient-checkpointing structure, which KARMA's two-tier
		// optimization subsumes; Fig. 4's search space includes it).
		if !sr.opts.DisableRecompute && r > 0 && r < k {
			ck := sr.scheduleFromCuts(cuts)
			ck.Resident = r
			if checkpointPrefix(ck, r, sr.budget-tail) {
				try(ck)
			}
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, 0, firstErr
		}
		return nil, 0, fmt.Errorf("karma: no simulable policy for budget %v", sr.budget)
	}
	return best, bestTime, nil
}

// scheduleFromCuts materializes a candidate schedule from the cached
// numeric merges: merged blocks, resident suffix, and Swap policy for
// the non-resident prefix. Under StreamWeights every block carries its
// weight and (scaled) gradient payload, including resident blocks —
// their weights occupy the budget instead of the reserve.
func (sr *searcher) scheduleFromCuts(cuts []int) *Schedule {
	n := len(sr.p.Blocks)
	blocks := make([]Block, 0, len(cuts)+1)
	payloads := sr.spay[:0]
	start := 0
	for i := 0; i <= len(cuts); i++ {
		end := n
		if i < len(cuts) {
			end = cuts[i]
		}
		b := Block{Range: [2]int{start, end}, Cost: sr.mergeCosts(start, end)}
		start = end
		if sr.opts.StreamWeights {
			b.WBytes = b.Cost.WeightBytes
			b.GBytes = unit.Bytes(math.Ceil(sr.opts.GradScale * float64(b.Cost.WeightBytes)))
		}
		blocks = append(blocks, b)
		payloads = append(payloads, b.Payload())
	}
	sr.spay = payloads
	resident := occupancy.ResidentSuffix(payloads, sr.budget)
	for i := range blocks {
		if i < resident {
			blocks[i].Policy = Swap
		} else {
			blocks[i].Policy = Keep
		}
	}
	return &Schedule{Profile: sr.p, Opts: sr.opts, Blocks: blocks, Resident: resident, Budget: sr.budget}
}

// scheduleFromCuts materializes a schedule with fully merged blocks (the
// uncached, metadata-carrying path used outside the candidate search).
func scheduleFromCuts(p *profiler.Profile, cuts []int, budget unit.Bytes, opts Options) *Schedule {
	rs := solve.Ranges(cuts, len(p.Blocks))
	blocks := make([]Block, len(rs))
	payloads := make([]unit.Bytes, len(rs))
	for i, r := range rs {
		blocks[i] = Block{Range: [2]int{r[0], r[1]}, Cost: p.MergeBlocks(r[0], r[1])}
		if opts.StreamWeights {
			blocks[i].WBytes = blocks[i].Cost.WeightBytes
			blocks[i].GBytes = unit.Bytes(math.Ceil(opts.GradScale * float64(blocks[i].Cost.WeightBytes)))
		}
		payloads[i] = blocks[i].Payload()
	}
	resident := occupancy.ResidentSuffix(payloads, budget)
	for i := range blocks {
		if i < resident {
			blocks[i].Policy = Swap
		} else {
			blocks[i].Policy = Keep
		}
	}
	return &Schedule{Profile: p, Opts: opts, Blocks: blocks, Resident: resident, Budget: budget}
}

// checkpointPrefix marks blocks [0, r) as recompute with greedy run
// splitting: whenever the running replay working set would exceed half
// the prefix budget, the previous block gets a checkpoint and a new run
// starts. It reports whether the construction stayed memory-feasible
// (checkpoints plus the largest run fit the prefix budget).
func checkpointPrefix(s *Schedule, r int, prefixBudget unit.Bytes) bool {
	// No swaps coexist with this candidate's replays, so runs may use
	// most of the prefix budget (the rest buys checkpoints).
	runCap := prefixBudget - prefixBudget/4
	// A checkpoint must land on a block that physically stores its
	// boundary tensor (ActBytes >= OutBytes); in-place segments alias
	// their predecessor's buffer and cannot anchor a replay.
	canAnchor := func(i int) bool {
		return i > 0 && s.Blocks[i].Cost.ActBytes >= s.Blocks[i].Cost.OutBytes &&
			s.Blocks[i].Cost.OutBytes > 0
	}
	var run unit.Bytes
	for i := 0; i < r; i++ {
		s.Blocks[i].Policy = Recompute
		if run+s.Blocks[i].Payload() > runCap && i > 0 {
			for j := i - 1; j > 0; j-- {
				if canAnchor(j) {
					s.Blocks[j].Ckpt = true
					break
				}
			}
			run = 0
		}
		run += s.Blocks[i].Payload()
	}
	for i := r; i < len(s.Blocks); i++ {
		s.Blocks[i].Policy = Keep
	}
	var ckpt unit.Bytes
	for _, b := range s.Blocks {
		if b.Ckpt {
			ckpt += b.Cost.OutBytes
		}
	}
	return ckpt+maxRunBytes(s.Blocks) <= prefixBudget
}

// markRecompute greedily flips swapped blocks to full recompute in order
// of the time saved (the heavy-payload transfer avoided minus the extra
// replay compute beyond the cheap part a partial swap already pays),
// subject to the memory side condition of constraint 10.1: a recompute
// run replays wholesale, so no run's working set may exceed half the
// budget left beside the resident tail. Run boundaries need no extra
// reserve: each run replays from its predecessor's activations, which are
// either resident or arrive on the swap-in stream (the compiler emits
// that dependency).
func markRecompute(s *Schedule, prefixBudget unit.Bytes, swapBW unit.BytesPerSec, lat unit.Seconds) {
	type cand struct {
		idx     int
		benefit unit.Seconds
	}
	var cands []cand
	for i, b := range s.Blocks {
		if b.Policy != Swap || i == 0 || i == len(s.Blocks)-1 {
			continue
		}
		move := unit.TransferTime(b.Cost.HeavyActBytes, swapBW, lat)
		extraReplay := b.Cost.FwdTime - b.Cost.CheapFwdTime
		if benefit := move - extraReplay; benefit > 0 {
			cands = append(cands, cand{idx: i, benefit: benefit})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].benefit != cands[b].benefit {
			return cands[a].benefit > cands[b].benefit
		}
		return cands[a].idx < cands[b].idx
	})
	runCap := prefixBudget / 2
	for _, c := range cands {
		s.Blocks[c.idx].Policy = Recompute
		if maxRunBytes(s.Blocks) > runCap {
			s.Blocks[c.idx].Policy = Swap
		}
	}
}

// maxRunBytes returns the largest recompute run's total activation
// payload; checkpointed blocks end their run.
func maxRunBytes(blocks []Block) unit.Bytes {
	var max, cur unit.Bytes
	for _, b := range blocks {
		if b.Policy == Recompute {
			cur += b.Payload()
			if cur > max {
				max = cur
			}
			if b.Ckpt {
				cur = 0
			}
		} else {
			cur = 0
		}
	}
	return max
}
