package karma

import (
	"math/rand"
	"testing"

	"karma/internal/graph"
	"karma/internal/hw"
	"karma/internal/profiler"
	"karma/internal/unit"
)

// fuzzProfile builds a synthetic profile of k blocks whose byte and time
// quantities derive from the seed — including pathological shapes
// (zero-output blocks that cannot anchor a checkpoint, activation-free
// blocks, heavily skewed sizes) the model zoo never produces.
func fuzzProfile(seed int64, k int) *profiler.Profile {
	r := rand.New(rand.NewSource(seed))
	p := &profiler.Profile{
		Graph: graph.New("fuzz"),
		Node:  hw.ABCINode(),
		Opts:  profiler.Options{Batch: 1},
	}
	for i := 0; i < k; i++ {
		act := unit.Bytes(r.Int63n(512 * int64(unit.MiB)))
		out := unit.Bytes(0)
		switch r.Intn(3) {
		case 0: // storable boundary (anchors a checkpoint)
			out = unit.Bytes(r.Int63n(int64(act) + 1))
		case 1: // boundary larger than the stored payload (cannot anchor)
			out = act + unit.Bytes(r.Int63n(int64(unit.MiB))+1)
		}
		b := profiler.Block{
			FwdTime:       unit.Seconds(float64(r.Intn(1000)+1) * 1e-5),
			BwdTime:       unit.Seconds(float64(r.Intn(2000)+1) * 1e-5),
			ActBytes:      act,
			HeavyActBytes: unit.Bytes(r.Int63n(int64(act) + 1)),
			OutBytes:      out,
			WeightBytes:   unit.Bytes(r.Int63n(64 * int64(unit.MiB))),
		}
		p.Blocks = append(p.Blocks, b)
		p.TotalWeightBytes += b.WeightBytes
		p.TotalActBytes += b.ActBytes
	}
	return p
}

// FuzzCheckpointSegments guards the invariants the in-core hybrid
// baselines (and PR 3's capacity verdicts) rely on:
//
//   - success and failure are consistent with CheckpointFootprint — the
//     shared capacity verdict both dist backends render;
//   - a returned schedule is adaptive (no recompute when everything
//     fits), structurally sound (resident suffix, anchored checkpoint
//     boundaries), and lowers to a memory-balanced plan that simulates
//     within the budget it was built for — the budget is never
//     exceeded;
//   - every non-resident block is covered by a replay run ending at an
//     anchored boundary or the model input — all boundaries covered.
//
// Seeds live in testdata/fuzz/FuzzCheckpointSegments.
func FuzzCheckpointSegments(f *testing.F) {
	f.Add(int64(1), uint8(8), uint16(50))
	f.Add(int64(42), uint8(2), uint16(10))
	f.Add(int64(7), uint8(24), uint16(90))
	f.Add(int64(99), uint8(1), uint16(100))
	f.Add(int64(2026), uint8(16), uint16(1))
	f.Fuzz(func(t *testing.T, seed int64, kRaw uint8, budgetPct uint16) {
		k := int(kRaw%24) + 1
		p := fuzzProfile(seed, k)
		// Budget between ~1% and ~200% of the all-resident footprint, so
		// the draw crosses all three regimes.
		pct := int64(budgetPct%200) + 1
		budget := unit.Bytes(int64(p.TotalActBytes) * pct / 100)
		if budget <= 0 {
			budget = 1
		}

		s, err := Checkpoint(p, budget)
		foot := CheckpointFootprint(p)
		if err != nil {
			// Failure must agree with the shared capacity verdict: no
			// checkpointing schedule of this profile fits the budget.
			if foot <= budget {
				t.Fatalf("Checkpoint failed (%v) but CheckpointFootprint %v fits budget %v", err, foot, budget)
			}
			return
		}
		if foot > budget && p.TotalActBytes > budget {
			t.Fatalf("Checkpoint succeeded but CheckpointFootprint %v exceeds budget %v", foot, budget)
		}

		// Adaptive: everything resident when it fits, and then exactly the
		// all-resident schedule.
		if p.TotalActBytes <= budget {
			for i, b := range s.Blocks {
				if b.Policy != Keep {
					t.Fatalf("block %d recomputes although %v fits %v", i, p.TotalActBytes, budget)
				}
			}
		}

		// Structure: a recomputed prefix, a resident suffix, anchored
		// checkpoints, and full coverage of the prefix by replay runs.
		for i, b := range s.Blocks {
			if i < s.Resident && b.Policy != Recompute {
				t.Fatalf("prefix block %d has policy %v", i, b.Policy)
			}
			if i >= s.Resident && b.Policy != Keep {
				t.Fatalf("resident block %d has policy %v", i, b.Policy)
			}
			if b.Ckpt {
				if b.Policy != Recompute {
					t.Fatalf("checkpoint on non-recomputed block %d", i)
				}
				if b.Cost.OutBytes <= 0 || b.Cost.ActBytes < b.Cost.OutBytes {
					t.Fatalf("checkpoint anchored on block %d which does not store its boundary (act %v, out %v)",
						i, b.Cost.ActBytes, b.Cost.OutBytes)
				}
			}
		}
		// Every recomputed block belongs to a run whose start replays from
		// a valid source: the model input, or an anchored checkpoint.
		for i := 0; i < s.Resident; i++ {
			start := i
			for start > 0 && s.Blocks[start-1].Policy == Recompute && !s.Blocks[start-1].Ckpt {
				start--
			}
			if start > 0 && s.Blocks[start-1].Policy == Recompute && !s.Blocks[start-1].Ckpt {
				t.Fatalf("block %d's replay run has no boundary source", i)
			}
		}

		// The schedule lowers to a balanced plan that simulates within the
		// budget it claims — the budget is never exceeded.
		pl, err := BuildPlan(s)
		if err != nil {
			t.Fatalf("BuildPlan of a Checkpoint schedule failed: %v", err)
		}
		if d := pl.MemoryDelta(); d != 0 {
			t.Fatalf("checkpoint plan leaks %v", d)
		}
		_, tl, err := pl.Simulate(s.Budget)
		if err != nil {
			t.Fatalf("checkpoint plan does not simulate within its own budget %v: %v", s.Budget, err)
		}
		if tl.PeakMem > s.Budget {
			t.Fatalf("peak memory %v exceeds budget %v", tl.PeakMem, s.Budget)
		}
	})
}
