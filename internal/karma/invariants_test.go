package karma

import (
	"bytes"
	"testing"

	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/plan"
	"karma/internal/profiler"
)

// TestPlanMemoryBalanced: every generated plan must allocate exactly as
// much device memory as it frees over one iteration — a leak (or
// over-free) would corrupt multi-iteration pipelines.
func TestPlanMemoryBalanced(t *testing.T) {
	node := hw.ABCINode()
	cases := []struct {
		model string
		batch int
	}{
		{"resnet50", 128}, {"resnet50", 384}, {"resnet50", 768},
		{"vgg16", 96}, {"resnet200", 12}, {"wrn-28-10", 768},
		{"smallcnn", 64},
	}
	for _, c := range cases {
		c := c
		t.Run(c.model, func(t *testing.T) {
			g, err := model.Build(c.model)
			if err != nil {
				t.Fatal(err)
			}
			p, err := profiler.New(g, node, profiler.Options{Batch: c.batch})
			if err != nil {
				t.Fatal(err)
			}
			for _, disable := range []bool{false, true} {
				s, err := Plan(p, Options{DisableRecompute: disable})
				if err != nil {
					t.Fatalf("Plan(disable=%v): %v", disable, err)
				}
				pl, err := BuildPlan(s)
				if err != nil {
					t.Fatalf("BuildPlan: %v", err)
				}
				if d := pl.MemoryDelta(); d != 0 {
					t.Errorf("disable=%v: plan leaks %v", disable, d)
				}
			}
		})
	}
}

// TestPlanRoundTripsThroughJSON: a planned schedule survives
// serialization and still simulates to the same makespan.
func TestPlanRoundTripsThroughJSON(t *testing.T) {
	g := model.ResNet50()
	p, err := profiler.New(g, hw.ABCINode(), profiler.Options{Batch: 384})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Plan(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := BuildPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	_, tl1, err := pl.Simulate(s.Budget)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := pl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	pl2, err := plan.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, tl2, err := pl2.Simulate(s.Budget)
	if err != nil {
		t.Fatal(err)
	}
	if tl1.Makespan != tl2.Makespan {
		t.Errorf("makespan changed through JSON: %v vs %v", tl1.Makespan, tl2.Makespan)
	}
}

// TestMoreGPUsMoreBatchesStillBalanced: the policy mix varies wildly
// across batch sizes; the balance invariant must hold at every point of
// the Fig. 5 grid for ResNet-50.
func TestEveryBatchBalanced(t *testing.T) {
	g := model.ResNet50()
	node := hw.ABCINode()
	for _, batch := range []int{128, 256, 384, 512, 640, 768} {
		p, err := profiler.New(g, node, profiler.Options{Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Plan(p, Options{})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		pl, err := BuildPlan(s)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if d := pl.MemoryDelta(); d != 0 {
			t.Errorf("batch %d: leak %v", batch, d)
		}
		// Policy sanity: resident suffix is Keep, prefix is not.
		for i, b := range s.Blocks {
			if i >= s.Resident && b.Policy != Keep {
				t.Errorf("batch %d block %d: resident but %v", batch, i, b.Policy)
			}
			if i < s.Resident && b.Policy == Keep {
				t.Errorf("batch %d block %d: prefix but keep", batch, i)
			}
		}
	}
}
