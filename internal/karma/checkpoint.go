package karma

import (
	"fmt"
	"math"

	"karma/internal/profiler"
	"karma/internal/solve"
	"karma/internal/unit"
)

// InCore returns the trivial all-resident schedule: every profiled block
// keeps its activations in near memory and nothing swaps or recomputes —
// the degenerate case the in-core baselines (conventional DP, the MP
// hybrids at a small batch) execute. An error is returned when the
// stored activations do not fit the budget.
func InCore(p *profiler.Profile, budget unit.Bytes) (*Schedule, error) {
	s, err := identitySchedule(p, budget)
	if err != nil {
		return nil, err
	}
	if p.TotalActBytes > budget {
		return nil, fmt.Errorf("karma: activations need %v of %v; checkpoint or stream", p.TotalActBytes, budget)
	}
	return s, nil
}

// Checkpoint returns the activation-checkpointing schedule of an in-core
// replica — the gradient-checkpointing structure (Table I's "RECOMP,
// O(sqrt N)") as a first-class regime rather than an Opt-2 candidate:
// when the stored activations fit the budget the schedule is simply
// all-resident; otherwise the last block stays resident and the prefix
// recomputes during backward from resident boundary checkpoints. The
// checkpoints are placed on block boundaries (for the transformer shards
// of internal/model these are the post-all-reduce residual outputs, so a
// replay never re-runs a finished collective unless its run spans
// several blocks), and the run count is the largest that fits — as many
// boundaries as memory allows, degrading toward the O(sqrt N) optimum as
// the budget tightens. The in-core hybrid baselines (Megatron MP+DP,
// ZeRO) use this to reach the larger capacity batches real deployments
// train at.
func Checkpoint(p *profiler.Profile, budget unit.Bytes) (*Schedule, error) {
	s, err := identitySchedule(p, budget)
	if err != nil {
		return nil, err
	}
	if p.TotalActBytes <= budget {
		return s, nil // everything resident; no recompute needed
	}
	k := len(s.Blocks)
	if k < 2 {
		return nil, fmt.Errorf("karma: checkpointed activations need %v of %v", p.TotalActBytes, budget)
	}
	tail := s.Blocks[k-1].Payload()
	// Single scan, largest feasible run count first (most boundaries =
	// least replay); on failure the scan's minimum doubles as the
	// footprint the error reports, so feasibility needs no second pass.
	minNeed := p.TotalActBytes
	for runs := k - 1; runs >= 1; runs-- {
		cand, foot, ok := checkpointRuns(p, budget, runs)
		if !ok {
			continue
		}
		if foot+tail <= budget {
			return cand, nil
		}
		if foot+tail < minNeed {
			minNeed = foot + tail
		}
	}
	return nil, fmt.Errorf("karma: checkpointed activations need %v of %v", minNeed, budget)
}

// CheckpointFootprint returns the smallest peak activation footprint any
// checkpointing schedule of the profile can reach: the minimum over run
// counts of resident boundaries plus the largest replayed run (with one
// extra block of transient replay slack), plus the resident tail — or
// the all-resident footprint if that is smaller. Both dist backends use
// it as the shared capacity verdict for the checkpointed hybrids.
func CheckpointFootprint(p *profiler.Profile) unit.Bytes {
	s, err := identitySchedule(p, unit.Bytes(math.MaxInt64))
	if err != nil {
		return 0
	}
	k := len(s.Blocks)
	best := p.TotalActBytes
	if k < 2 {
		return best
	}
	tail := s.Blocks[k-1].Payload()
	for runs := k - 1; runs >= 1; runs-- {
		if _, foot, ok := checkpointRuns(p, unit.Bytes(math.MaxInt64), runs); ok {
			if need := foot + tail; need < best {
				best = need
			}
		}
	}
	return best
}

// checkpointRuns builds the candidate schedule with the prefix [0, k-1)
// recomputing in the given number of runs, and reports its prefix
// footprint: resident boundary checkpoints plus the largest run plus one
// block of transient slack (a replayed block coexists with its
// consumer's activations while the boundary hand-off completes).
func checkpointRuns(p *profiler.Profile, budget unit.Bytes, runs int) (*Schedule, unit.Bytes, bool) {
	s, err := identitySchedule(p, budget)
	if err != nil {
		return nil, 0, false
	}
	k := len(s.Blocks)
	r := k - 1
	weights := make([]float64, r)
	var maxBlock unit.Bytes
	for i := 0; i < r; i++ {
		weights[i] = float64(s.Blocks[i].Payload()) + 1
		if pl := s.Blocks[i].Payload(); pl > maxBlock {
			maxBlock = pl
		}
	}
	cuts, err := solve.BalancedPartition(weights, runs)
	if err != nil {
		return nil, 0, false
	}
	s.Resident = r
	for i := 0; i < r; i++ {
		s.Blocks[i].Policy = Recompute
	}
	// A checkpoint must land on a block that physically stores its
	// boundary (see checkpointPrefix); shift left inside the run when the
	// nominal end cannot anchor. Unanchorable runs merge with their
	// successor. The final prefix block never anchors: its boundary feeds
	// the resident suffix, which is never replayed, so a checkpoint there
	// would stay resident forever without a consumer (the leak the
	// FuzzCheckpointSegments corpus pins).
	canAnchor := func(i int) bool {
		return s.Blocks[i].Cost.ActBytes >= s.Blocks[i].Cost.OutBytes &&
			s.Blocks[i].Cost.OutBytes > 0
	}
	for _, rg := range solve.Ranges(cuts, r) {
		j := rg[1] - 1
		if j == r-1 {
			j--
		}
		for ; j >= rg[0]; j-- {
			if canAnchor(j) {
				s.Blocks[j].Ckpt = true
				break
			}
		}
	}
	var ckpt unit.Bytes
	for i := 0; i < r; i++ {
		if s.Blocks[i].Ckpt {
			ckpt += s.Blocks[i].Cost.OutBytes
		}
	}
	return s, ckpt + maxRunBytes(s.Blocks) + maxBlock, true
}

// identitySchedule materializes one planner block per profiled segment,
// all resident (the partition the in-core regimes operate on — no Opt-1
// merge is needed when nothing swaps).
func identitySchedule(p *profiler.Profile, budget unit.Bytes) (*Schedule, error) {
	n := len(p.Blocks)
	if n == 0 {
		return nil, fmt.Errorf("karma: profile has no blocks")
	}
	blocks := make([]Block, n)
	for i := range p.Blocks {
		blocks[i] = Block{Range: [2]int{i, i + 1}, Cost: p.Blocks[i], Policy: Keep}
	}
	opts := Options{}
	opts.normalize()
	return &Schedule{Profile: p, Opts: opts, Blocks: blocks, Resident: 0, Budget: budget}, nil
}
