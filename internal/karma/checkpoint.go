package karma

import (
	"fmt"
	"math"

	"karma/internal/profiler"
	"karma/internal/solve"
	"karma/internal/unit"
)

// InCore returns the trivial all-resident schedule: every profiled block
// keeps its activations in near memory and nothing swaps or recomputes —
// the degenerate case the in-core baselines (conventional DP, the MP
// hybrids at a small batch) execute. An error is returned when the
// stored activations do not fit the budget.
func InCore(p *profiler.Profile, budget unit.Bytes) (*Schedule, error) {
	s, err := identitySchedule(p, budget)
	if err != nil {
		return nil, err
	}
	if p.TotalActBytes > budget {
		return nil, fmt.Errorf("karma: activations need %v of %v; checkpoint or stream", p.TotalActBytes, budget)
	}
	return s, nil
}

// Checkpoint returns the activation-checkpointing schedule of an in-core
// replica — the gradient-checkpointing structure (Table I's "RECOMP,
// O(sqrt N)") as a first-class regime rather than an Opt-2 candidate:
// when the stored activations fit the budget the schedule is simply
// all-resident; otherwise the last block stays resident and the prefix
// recomputes during backward from resident boundary checkpoints. The
// checkpoints are placed on block boundaries (for the transformer shards
// of internal/model these are the post-all-reduce residual outputs, so a
// replay never re-runs a finished collective unless its run spans
// several blocks), and the run count is the largest that fits — as many
// boundaries as memory allows, degrading toward the O(sqrt N) optimum as
// the budget tightens. The in-core hybrid baselines (Megatron MP+DP,
// ZeRO) use this to reach the larger capacity batches real deployments
// train at.
func Checkpoint(p *profiler.Profile, budget unit.Bytes) (*Schedule, error) {
	s, err := identitySchedule(p, budget)
	if err != nil {
		return nil, err
	}
	if p.TotalActBytes <= budget {
		return s, nil // everything resident; no recompute needed
	}
	k := len(s.Blocks)
	if k < 2 {
		return nil, fmt.Errorf("karma: checkpointed activations need %v of %v", p.TotalActBytes, budget)
	}
	tail := s.Blocks[k-1].Payload()
	// Single scan, largest feasible run count first (most boundaries =
	// least replay); on failure the scan's minimum doubles as the
	// footprint the error reports, so feasibility needs no second pass.
	// Candidates are costed from their cut positions alone; only the
	// winner materializes a schedule.
	cs := newCheckpointSearch(p)
	minNeed := p.TotalActBytes
	for runs := k - 1; runs >= 1; runs-- {
		foot, ok := cs.footprint(runs)
		if !ok {
			continue
		}
		if foot+tail <= budget {
			return cs.materialize(s), nil
		}
		if foot+tail < minNeed {
			minNeed = foot + tail
		}
	}
	return nil, fmt.Errorf("karma: checkpointed activations need %v of %v", minNeed, budget)
}

// CheckpointFootprint returns the smallest peak activation footprint any
// checkpointing schedule of the profile can reach: the minimum over run
// counts of resident boundaries plus the largest replayed run (with one
// extra block of transient replay slack), plus the resident tail — or
// the all-resident footprint if that is smaller. Both dist backends use
// it as the shared capacity verdict for the checkpointed hybrids.
func CheckpointFootprint(p *profiler.Profile) unit.Bytes {
	s, err := identitySchedule(p, unit.Bytes(math.MaxInt64))
	if err != nil {
		return 0
	}
	k := len(s.Blocks)
	best := p.TotalActBytes
	if k < 2 {
		return best
	}
	tail := s.Blocks[k-1].Payload()
	cs := newCheckpointSearch(p)
	for runs := k - 1; runs >= 1; runs-- {
		if foot, ok := cs.footprint(runs); ok {
			if need := foot + tail; need < best {
				best = need
			}
		}
	}
	return best
}

// checkpointSearch is the shared state of the run-count scan: the
// partition weights and the parametric-search memo (built once, queried
// per candidate runs count) plus the anchor marks of the most recent
// candidate. Identity blocks carry no weights or gradients, so a block's
// Payload is exactly its profiled ActBytes — the candidate footprint is
// computable from the profile and the cut positions alone, without
// materializing a schedule per runs count.
type checkpointSearch struct {
	p        *profiler.Profile
	r        int // prefix length: blocks [0, r) recompute, block r stays resident
	pt       *solve.Partitioner
	maxBlock unit.Bytes // largest prefix payload (the transient replay slack)
	mark     []bool     // Ckpt anchors of the latest footprint() candidate
	cuts     []int      // scratch cut buffer reused across runs counts
}

func newCheckpointSearch(p *profiler.Profile) *checkpointSearch {
	r := len(p.Blocks) - 1
	cs := &checkpointSearch{p: p, r: r, mark: make([]bool, r)}
	weights := make([]float64, r)
	for i := 0; i < r; i++ {
		pl := p.Blocks[i].ActBytes
		weights[i] = float64(pl) + 1
		if pl > cs.maxBlock {
			cs.maxBlock = pl
		}
	}
	cs.pt, _ = solve.NewPartitioner(weights) // ActBytes >= 0: cannot fail
	return cs
}

// footprint partitions the prefix into the given number of runs, places
// the boundary checkpoints, and reports the candidate's prefix
// footprint: resident boundary checkpoints plus the largest run plus one
// block of transient slack (a replayed block coexists with its
// consumer's activations while the boundary hand-off completes). The
// anchor marks stay in cs.mark for materialize.
func (cs *checkpointSearch) footprint(runs int) (unit.Bytes, bool) {
	cuts, err := cs.pt.AppendCuts(cs.cuts[:0], runs)
	if err != nil {
		return 0, false
	}
	cs.cuts = cuts
	// A checkpoint must land on a block that physically stores its
	// boundary (see checkpointPrefix); shift left inside the run when the
	// nominal end cannot anchor. Unanchorable runs merge with their
	// successor. The final prefix block never anchors: its boundary feeds
	// the resident suffix, which is never replayed, so a checkpoint there
	// would stay resident forever without a consumer (the leak the
	// FuzzCheckpointSegments corpus pins).
	canAnchor := func(i int) bool {
		return cs.p.Blocks[i].ActBytes >= cs.p.Blocks[i].OutBytes &&
			cs.p.Blocks[i].OutBytes > 0
	}
	for i := range cs.mark {
		cs.mark[i] = false
	}
	start := 0
	for ci := 0; ci <= len(cuts); ci++ {
		end := cs.r
		if ci < len(cuts) {
			end = cuts[ci]
		}
		j := end - 1
		if j == cs.r-1 {
			j--
		}
		for ; j >= start; j-- {
			if canAnchor(j) {
				cs.mark[j] = true
				break
			}
		}
		start = end
	}
	// ckpt + largest run + slack, with a run ending at each anchor (the
	// prefix is one recompute chain, so maxRunBytes reduces to this scan).
	var ckpt, maxRun, cur unit.Bytes
	for i := 0; i < cs.r; i++ {
		cur += cs.p.Blocks[i].ActBytes
		if cur > maxRun {
			maxRun = cur
		}
		if cs.mark[i] {
			ckpt += cs.p.Blocks[i].OutBytes
			cur = 0
		}
	}
	return ckpt + maxRun + cs.maxBlock, true
}

// materialize turns the latest footprint() candidate into a schedule on
// the identity partition s (which it mutates and returns).
func (cs *checkpointSearch) materialize(s *Schedule) *Schedule {
	s.Resident = cs.r
	for i := 0; i < cs.r; i++ {
		s.Blocks[i].Policy = Recompute
		s.Blocks[i].Ckpt = cs.mark[i]
	}
	return s
}

// identitySchedule materializes one planner block per profiled segment,
// all resident (the partition the in-core regimes operate on — no Opt-1
// merge is needed when nothing swaps).
func identitySchedule(p *profiler.Profile, budget unit.Bytes) (*Schedule, error) {
	n := len(p.Blocks)
	if n == 0 {
		return nil, fmt.Errorf("karma: profile has no blocks")
	}
	blocks := make([]Block, n)
	for i := range p.Blocks {
		blocks[i] = Block{Range: [2]int{i, i + 1}, Cost: p.Blocks[i], Policy: Keep}
	}
	opts := Options{}
	opts.normalize()
	return &Schedule{Profile: p, Opts: opts, Blocks: blocks, Resident: 0, Budget: budget}, nil
}
