package karma

import (
	"testing"

	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/plan"
	"karma/internal/profiler"
	"karma/internal/unit"
)

// TestActivationBudgetRegimes: the streaming budget reserves no weights,
// so it strictly dominates the resident-weight budget, and the default
// regime matches BudgetFor exactly.
func TestActivationBudgetRegimes(t *testing.T) {
	p := profileFor(t, "resnet50", 256)
	plain, err := ActivationBudget(p, Options{Headroom: 0.05})
	if err != nil {
		t.Fatalf("plain budget: %v", err)
	}
	legacy, err := BudgetFor(p, 0.05)
	if err != nil {
		t.Fatalf("BudgetFor: %v", err)
	}
	if plain != legacy {
		t.Errorf("ActivationBudget (%v) != BudgetFor (%v)", plain, legacy)
	}
	stream, err := ActivationBudget(p, Options{Headroom: 0.05, StreamWeights: true})
	if err != nil {
		t.Fatalf("stream budget: %v", err)
	}
	if stream <= plain {
		t.Errorf("streaming budget %v should exceed resident-weight budget %v", stream, plain)
	}
	// ZeRO-style gradient sharding shrinks the resident reserve.
	shard, err := ActivationBudget(p, Options{Headroom: 0.05, GradScale: 1.0 / 64})
	if err != nil {
		t.Fatalf("sharded budget: %v", err)
	}
	if shard <= plain {
		t.Errorf("gradient-sharded budget %v should exceed unsharded %v", shard, plain)
	}
}

// TestStreamWeightsPlansOversizedModel: a model whose weights alone bust
// the device (megatron-2.5B: 9.3 GiB x2 on a 14.75 GiB V100) is
// unplannable in the resident-weight regime but plans and simulates
// under weight streaming, with every non-resident block carrying its
// weight and gradient payload.
func TestStreamWeightsPlansOversizedModel(t *testing.T) {
	cfg := model.MegatronConfigs()[2]
	g := model.Transformer(cfg)
	p, err := profiler.New(g, hw.ABCINode(), profiler.Options{Batch: 4})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	if _, err := Plan(p, Options{}); err == nil {
		t.Fatal("resident-weight planning of 2.5B should fail on a 16 GiB device")
	}
	s, err := Plan(p, Options{StreamWeights: true})
	if err != nil {
		t.Fatalf("streamed Plan: %v", err)
	}
	for i, b := range s.Blocks {
		if b.Cost.WeightBytes > 0 && b.WBytes != b.Cost.WeightBytes {
			t.Errorf("block %d: WBytes = %v, want %v", i, b.WBytes, b.Cost.WeightBytes)
		}
		if b.GBytes != b.WBytes {
			t.Errorf("block %d: GBytes = %v, want %v at GradScale 1", i, b.GBytes, b.WBytes)
		}
	}
	rep, err := Simulate(s)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if rep.IterTime <= 0 {
		t.Fatal("non-positive iteration time")
	}
	if rep.PeakMem > s.Budget {
		t.Errorf("peak %v exceeds budget %v", rep.PeakMem, s.Budget)
	}
	// Weight traffic must appear in the plan: at least one swap-in per
	// non-resident block (weight prefetch), plus the backward refetches.
	var swapIns, drains int
	for _, st := range rep.Plan.Stages {
		for _, op := range st.Ops {
			switch op.Kind {
			case plan.SwapIn:
				swapIns++
			case plan.SwapOut:
				drains++
			}
		}
	}
	nonResident := s.Resident
	if swapIns < 2*nonResident {
		t.Errorf("want >= %d swap-ins (prefetch + backward refetch per streamed block), got %d",
			2*nonResident, swapIns)
	}
	if drains < nonResident {
		t.Errorf("want >= %d swap-outs (gradient drains), got %d", nonResident, drains)
	}
}

// TestStreamGradScaleShrinksTraffic: ZeRO-style gradient sharding
// (GradScale 1/replicas) shrinks the drained payload and can only help
// the simulated iteration.
func TestStreamGradScaleShrinksTraffic(t *testing.T) {
	cfg := model.MegatronConfigs()[2]
	g := model.Transformer(cfg)
	p, err := profiler.New(g, hw.ABCINode(), profiler.Options{Batch: 4})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	full, err := Plan(p, Options{StreamWeights: true})
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	shard, err := Plan(p, Options{StreamWeights: true, GradScale: 1.0 / 512})
	if err != nil {
		t.Fatalf("shard: %v", err)
	}
	var fullG, shardG unit.Bytes
	for _, b := range full.Blocks {
		fullG += b.GBytes
	}
	for _, b := range shard.Blocks {
		shardG += b.GBytes
	}
	if shardG >= fullG {
		t.Errorf("sharded gradient payload %v should undercut full %v", shardG, fullG)
	}
	fr, err := Simulate(full)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Simulate(shard)
	if err != nil {
		t.Fatal(err)
	}
	if sr.IterTime > fr.IterTime {
		t.Errorf("sharded iteration %v slower than full %v", sr.IterTime, fr.IterTime)
	}
}

// TestStreamedRecomputeCheckpointPlan: BuildPlan must lower a streamed
// schedule containing a recompute run split by a checkpoint — weight
// prefetches in replay order, gradient drains, and checkpoint
// consumption — into a plan that validates, balances memory exactly, and
// simulates without deadlock.
func TestStreamedRecomputeCheckpointPlan(t *testing.T) {
	p := profileFor(t, "resnet50", 256)
	opts := Options{StreamWeights: true}
	opts.normalize()
	budget, err := ActivationBudget(p, opts)
	if err != nil {
		t.Fatalf("budget: %v", err)
	}
	n := len(p.Blocks)
	if n < 12 {
		t.Fatalf("resnet50 profile too coarse: %d segments", n)
	}
	// Six equal blocks; policies: swap, recompute+ckpt, recompute, swap,
	// keep, keep.
	var cuts []int
	for i := 1; i < 6; i++ {
		cuts = append(cuts, i*n/6)
	}
	s := scheduleFromCuts(p, cuts, budget, opts)
	if s.NumBlocks() != 6 {
		t.Fatalf("blocks = %d", s.NumBlocks())
	}
	s.Resident = 4
	policies := []Policy{Swap, Recompute, Recompute, Swap, Keep, Keep}
	for i := range s.Blocks {
		s.Blocks[i].Policy = policies[i]
	}
	s.Blocks[1].Ckpt = true // split the run {1,2} into {1} and {2}
	pl, err := BuildPlan(s)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	c, err := pl.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var alloc, free unit.Bytes
	for _, op := range c.Ops {
		alloc += op.AllocBytes
		free += op.FreeBytes
	}
	if alloc != free {
		t.Fatalf("plan leaks memory: alloc %v, free %v", alloc, free)
	}
	if _, _, err := pl.Simulate(s.Budget); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
}

// TestStreamedAllSwapPlanBalances: the r == k candidate of the Opt-2
// search — no resident suffix, every block swapped — must lower to a
// balanced, simulable plan under weight streaming too: the last block's
// activations stay on the device (no later forward to overlap a
// swap-out with), but its weights and gradient buffer still drain.
func TestStreamedAllSwapPlanBalances(t *testing.T) {
	p := profileFor(t, "resnet50", 256)
	opts := Options{StreamWeights: true}
	opts.normalize()
	budget, err := ActivationBudget(p, opts)
	if err != nil {
		t.Fatalf("budget: %v", err)
	}
	n := len(p.Blocks)
	var cuts []int
	for i := 1; i < 8; i++ {
		cuts = append(cuts, i*n/8)
	}
	s := scheduleFromCuts(p, cuts, budget, opts)
	s.Resident = s.NumBlocks()
	for i := range s.Blocks {
		s.Blocks[i].Policy = Swap
	}
	pl, err := BuildPlan(s)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	c, err := pl.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var alloc, free unit.Bytes
	for _, op := range c.Ops {
		alloc += op.AllocBytes
		free += op.FreeBytes
	}
	if alloc != free {
		t.Fatalf("all-swap streamed plan leaks memory: alloc %v, free %v", alloc, free)
	}
	if _, _, err := pl.Simulate(s.Budget); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
}

// TestStreamedPlanMemoryBalanced: the optimizer's own streamed schedules
// (not just hand-built ones) allocate exactly what they free.
func TestStreamedPlanMemoryBalanced(t *testing.T) {
	for _, tc := range []struct {
		model string
		batch int
	}{
		{"megatron-2.5B", 4},
		{"resnet50", 512},
	} {
		p := profileFor(t, tc.model, tc.batch)
		s, err := Plan(p, Options{StreamWeights: true})
		if err != nil {
			t.Fatalf("%s: Plan: %v", tc.model, err)
		}
		pl, err := BuildPlan(s)
		if err != nil {
			t.Fatalf("%s: BuildPlan: %v", tc.model, err)
		}
		c, err := pl.Compile()
		if err != nil {
			t.Fatalf("%s: Compile: %v", tc.model, err)
		}
		var alloc, free unit.Bytes
		for _, op := range c.Ops {
			alloc += op.AllocBytes
			free += op.FreeBytes
		}
		if alloc != free {
			t.Errorf("%s: streamed plan leaks memory: alloc %v, free %v", tc.model, alloc, free)
		}
	}
}
