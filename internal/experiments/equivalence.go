package experiments

import (
	"fmt"

	"karma/internal/nn"
)

// EquivalenceResult is the §IV-D reproduction: instead of re-running
// ImageNet/OpenWebText to convergence (the paper's accuracy and
// perplexity spot checks), the numeric substrate proves the stronger
// statement directly — out-of-core execution and the distributed
// CPU-update pipeline produce bitwise-identical weights.
type EquivalenceResult struct {
	Scenario string
	// MaxAbsDiff is the largest absolute parameter difference vs the
	// in-core reference (0 means bitwise identical).
	MaxAbsDiff float64
	// SwappedBytes is the far-memory traffic of the OOC run.
	SwappedBytes int64
	// FinalLoss of the run.
	FinalLoss float32
}

func equivModel(seed uint64) *nn.Sequential {
	r := nn.NewRNG(seed)
	return nn.NewSequential(
		nn.NewDense("fc1", 24, 48, r),
		nn.NewReLU("relu1"),
		nn.NewDense("fc2", 48, 48, r),
		nn.NewReLU("relu2"),
		nn.NewDense("fc3", 48, 6, r),
	)
}

func equivBatch(step int) (*nn.Tensor, []int) {
	r := nn.NewRNG(uint64(31 + step))
	x := nn.NewTensor(8, 24)
	labels := make([]int, 8)
	for b := 0; b < 8; b++ {
		var sum float32
		for f := 0; f < 24; f++ {
			v := r.Normalish()
			x.Data[b*24+f] = v
			sum += v
		}
		l := int(sum)
		if l < 0 {
			l = -l
		}
		labels[b] = l % 6
	}
	return x, labels
}

func trainWithPolicies(policies []nn.Policy, steps int) (*nn.Sequential, int64, float32, error) {
	m := equivModel(9)
	arena := nn.NewArena(1 << 30)
	e, err := nn.NewExec(m, arena, policies)
	if err != nil {
		return nil, 0, 0, err
	}
	opt := nn.NewSGD(0.05, 0.9)
	var loss float32
	for s := 0; s < steps; s++ {
		x, labels := equivBatch(s)
		loss, err = e.Step(x, labels, opt)
		if err != nil {
			return nil, 0, 0, err
		}
	}
	return m, arena.Moved(), loss, nil
}

func maxDiff(a, b *nn.Sequential) float64 {
	var m float64
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		for j := range ap[i].Data {
			d := float64(ap[i].Data[j] - bp[i].Data[j])
			if d < 0 {
				d = -d
			}
			if d > m {
				m = d
			}
		}
	}
	return m
}

// Equivalence runs the §IV-D scenarios and reports the deviations.
func Equivalence() ([]EquivalenceResult, error) {
	const steps = 25
	ref, _, refLoss, err := trainWithPolicies(make([]nn.Policy, 5), steps)
	if err != nil {
		return nil, err
	}
	out := []EquivalenceResult{{
		Scenario: "in-core reference", FinalLoss: refLoss,
	}}
	scenarios := []struct {
		name     string
		policies []nn.Policy
	}{
		{"out-of-core (swap all)", []nn.Policy{nn.Swap, nn.Swap, nn.Swap, nn.Swap, nn.Keep}},
		{"recompute interleave", []nn.Policy{nn.Keep, nn.Recompute, nn.Swap, nn.Recompute, nn.Keep}},
	}
	for _, sc := range scenarios {
		m, moved, loss, err := trainWithPolicies(sc.policies, steps)
		if err != nil {
			return nil, fmt.Errorf("equivalence %s: %w", sc.name, err)
		}
		out = append(out, EquivalenceResult{
			Scenario:     sc.name,
			MaxAbsDiff:   maxDiff(ref, m),
			SwappedBytes: moved,
			FinalLoss:    loss,
		})
	}

	// Distributed: phased exchange + host-side update vs the ordered
	// sequential reference.
	const workers = 4
	batchFn := func(step, worker int) (*nn.Tensor, []int) {
		return equivBatch(step*workers + worker)
	}
	master := equivModel(9)
	replicas := make([]*nn.Sequential, workers)
	for w := range replicas {
		replicas[w] = equivModel(uint64(100 + w))
	}
	losses, err := nn.TrainDataParallel(master, replicas, steps, batchFn, nn.ParallelConfig{
		Workers: workers, ArenaBytes: 1 << 30,
		Policies: []nn.Policy{nn.Swap, nn.Swap, nn.Swap, nn.Swap, nn.Keep},
		LR:       0.05, Momentum: 0.9,
	})
	if err != nil {
		return nil, err
	}
	seq, err := sequentialReference(workers, steps, batchFn)
	if err != nil {
		return nil, err
	}
	out = append(out, EquivalenceResult{
		Scenario:   "data-parallel KARMA pipeline (4 workers)",
		MaxAbsDiff: maxDiff(seq, master),
		FinalLoss:  losses[len(losses)-1],
	})
	return out, nil
}

// sequentialReference reproduces the distributed semantics on one thread:
// per-worker gradients computed in worker order, averaged, applied on the
// host optimizer.
func sequentialReference(workers, steps int, batch func(step, worker int) (*nn.Tensor, []int)) (*nn.Sequential, error) {
	ref := equivModel(9)
	shadow := equivModel(10)
	opt := nn.NewSGD(0.05, 0.9)
	for step := 0; step < steps; step++ {
		var perWorker [][]*nn.Tensor
		for w := 0; w < workers; w++ {
			shadow.CloneWeightsFrom(ref)
			e, err := nn.NewExec(shadow, nn.NewArena(1<<30), make([]nn.Policy, len(shadow.Layers)))
			if err != nil {
				return nil, err
			}
			x, labels := batch(step, w)
			if _, err := e.ForwardBackward(x, labels); err != nil {
				return nil, err
			}
			gs := shadow.Grads()
			cl := make([]*nn.Tensor, len(gs))
			for i, g := range gs {
				cl[i] = g.Clone()
			}
			perWorker = append(perWorker, cl)
		}
		inv := 1 / float32(workers)
		avg := make([]*nn.Tensor, len(perWorker[0]))
		for gi := range avg {
			sum := perWorker[0][gi].Clone()
			for w := 1; w < workers; w++ {
				for j, v := range perWorker[w][gi].Data {
					sum.Data[j] += v
				}
			}
			for j := range sum.Data {
				sum.Data[j] *= inv
			}
			avg[gi] = sum
		}
		opt.Step(ref.Params(), avg)
	}
	return ref, nil
}

// EquivalenceTable renders the results.
func EquivalenceTable(rs []EquivalenceResult) *Table {
	t := &Table{
		ID:      "equivalence",
		Title:   "accuracy equivalence (§IV-D substitution): parameter deviation vs in-core",
		Headers: []string{"scenario", "max |Δparam|", "swap traffic", "final loss"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.Scenario,
			fmt.Sprintf("%g", r.MaxAbsDiff),
			fmt.Sprintf("%d B", r.SwappedBytes),
			fmt.Sprintf("%.4f", r.FinalLoss),
		})
	}
	t.Notes = append(t.Notes,
		"0 deviation = bitwise identical: out-of-core execution does not change the math (paper §IV-D)")
	return t
}
