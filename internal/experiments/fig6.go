package experiments

import (
	"fmt"

	"karma/internal/baseline"
	"karma/internal/hw"
)

// Fig6Entry is one backward-phase block of one method: its execution time
// normalized to its stall-free time (1.0 = no stall; spikes are stalls).
type Fig6Entry struct {
	Block      int
	Normalized float64
}

// Fig6Series is one method's backward-phase profile.
type Fig6Series struct {
	Method  baseline.Method
	Entries []Fig6Entry
	// TotalStall is the summed compute-stream stall in the backward
	// phase.
	TotalStallSec float64
}

// Figure6 reproduces the ResNet-200 stall profile: the out-of-core run at
// batch 12 for SuperNeurons, vDNN++, KARMA and KARMA w/recompute.
// (The paper stacks it on an in-core batch-4 run; normalization against
// each op's own stall-free duration captures the same signal — the
// height above 1.0 is the stall.)
func Figure6(node hw.Node) ([]Fig6Series, error) {
	w := Workload{Model: "resnet200", Batches: []int{4, 12}}
	p, err := ProfileWorkload(w, node, 12)
	if err != nil {
		return nil, err
	}
	methods := []baseline.Method{
		baseline.SuperNeurons, baseline.VDNNPP, baseline.KARMA, baseline.KARMARecompute,
	}
	var out []Fig6Series
	for _, m := range methods {
		r, err := baseline.Run(m, p)
		if err != nil {
			return nil, err
		}
		if !r.Feasible {
			return nil, fmt.Errorf("fig6: %s infeasible: %s", m, r.Reason)
		}
		s := Fig6Series{Method: m}
		for _, tr := range r.BwdTrace {
			norm := 1.0
			if tr.Duration > 0 {
				norm = float64(tr.Duration+tr.Stall) / float64(tr.Duration)
			} else if tr.Stall > 0 {
				norm = 2 // zero-length op that still stalled
			}
			s.Entries = append(s.Entries, Fig6Entry{Block: tr.Block, Normalized: norm})
			s.TotalStallSec += float64(tr.Stall)
		}
		out = append(out, s)
	}
	return out, nil
}

// Table renders the Fig. 6 series: one row per method with its stall
// statistics (the figure's qualitative content).
func Fig6Table(series []Fig6Series) *Table {
	t := &Table{
		ID:    "fig6",
		Title: "normalized backward-phase time, ResNet-200 out-of-core (batch 12)",
		Headers: []string{
			"method", "blocks", "total stall (s)", "max spike (x)", "spikes >1.5x",
		},
	}
	for _, s := range series {
		maxSpike, spikes := 1.0, 0
		for _, e := range s.Entries {
			if e.Normalized > maxSpike {
				maxSpike = e.Normalized
			}
			if e.Normalized > 1.5 {
				spikes++
			}
		}
		t.Rows = append(t.Rows, []string{
			string(s.Method),
			fmt.Sprintf("%d", len(s.Entries)),
			fmt.Sprintf("%.4f", s.TotalStallSec),
			fmt.Sprintf("%.2f", maxSpike),
			fmt.Sprintf("%d", spikes),
		})
	}
	t.Notes = append(t.Notes,
		"height above 1.0x is stall time waiting on the swap pipeline (paper's orange bars)")
	return t
}
