package experiments

import (
	"testing"

	"karma/internal/dist"
	"karma/internal/hw"
	"karma/internal/model"
)

func TestFigure8Megatron8B(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale sweep in -short mode")
	}
	cl := hw.ABCI()
	panel, err := Figure8Megatron(cl, 4, []int{512, 1024, 2048}, dist.Analytic{}, FamilyOptions{Ckpt: true})
	if err != nil {
		t.Fatalf("Figure8Megatron: %v", err)
	}
	if len(panel.Rows) != 3 {
		t.Fatalf("rows = %d", len(panel.Rows))
	}
	for _, row := range panel.Rows {
		for _, m := range panel.Methods {
			r := row.Results[m]
			if r == nil || !r.Feasible {
				t.Fatalf("%s at %d GPUs infeasible: %v", m, row.GPUs, r)
			}
		}
		// Optimized exchange never loses to the plain hybrid.
		if row.Results["mp+dp-opt"].EpochTime > row.Results["mp+dp"].EpochTime {
			t.Errorf("%d GPUs: optimized exchange slower than plain", row.GPUs)
		}
	}
	// The Fig. 8 headline at parity: KARMA DP beats the hybrid at 2,048.
	last := panel.Rows[len(panel.Rows)-1]
	if last.Results["karma-dp"].EpochTime >= last.Results["mp+dp"].EpochTime {
		t.Errorf("at 2048 GPUs KARMA (%v) should beat MP+DP (%v)",
			last.Results["karma-dp"].EpochTime, last.Results["mp+dp"].EpochTime)
	}
	// More GPUs shorten KARMA's epoch (strong scaling holds).
	if panel.Rows[0].Results["karma-dp"].EpochTime <= last.Results["karma-dp"].EpochTime {
		t.Error("KARMA epoch should shrink with more GPUs")
	}
	tab := panel.Table()
	if len(tab.Rows) != 3 {
		t.Error("fig8 table rows mismatch")
	}
}

func TestFigure8Turing(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale sweep in -short mode")
	}
	cl := hw.ABCI()
	panel, err := Figure8Turing(cl, []int{512, 1024, 2048}, dist.Analytic{}, FamilyOptions{Ckpt: true})
	if err != nil {
		t.Fatalf("Figure8Turing: %v", err)
	}
	for _, row := range panel.Rows {
		zero := row.Results["zero"]
		karma := row.Results["karma-dp"]
		combo := row.Results["zero+karma"]
		if !zero.Feasible || !karma.Feasible || !combo.Feasible {
			t.Fatalf("%d GPUs: infeasible result", row.GPUs)
		}
		// Paper: ZeRO+KARMA improves on plain KARMA (1.35x over ZeRO at
		// scale; we assert the ordering combo <= karma).
		if combo.EpochTime > karma.EpochTime {
			t.Errorf("%d GPUs: ZeRO+KARMA (%v) slower than KARMA (%v)",
				row.GPUs, combo.EpochTime, karma.EpochTime)
		}
	}
}

// TestZeROBestConfigTuning: the deployment rule behind the calibrated
// right panel — with checkpointing the ZeRO reference drops below the
// shipped MP=16 (narrower groups span fewer of ABCI's 4-GPU nodes) and
// runs a materially larger global batch than the naive per-GPU parity;
// without checkpointing only MP=16 fits and the rule degenerates to the
// plain capacity sweep.
func TestZeROBestConfigTuning(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity sweep in -short mode")
	}
	cl := hw.ABCI()
	cfg := model.TuringNLG()
	ev := dist.Analytic{}
	mp, batch, best, err := ZeROBestConfig(cfg, cl, 512, ev, FamilyOptions{Ckpt: true})
	if err != nil {
		t.Fatalf("ZeROBestConfig: %v", err)
	}
	if !best.Feasible {
		t.Fatalf("checkpointed ZeRO must be feasible at 512 GPUs: %s", best.Reason)
	}
	if mp >= 16 {
		t.Errorf("checkpointing should admit a narrower MP than 16, got %d", mp)
	}
	if batch*(512/mp) != best.GlobalBatch {
		t.Errorf("global batch %d inconsistent with mp=%d batch=%d", best.GlobalBatch, mp, batch)
	}
	mpPlain, _, plain, err := ZeROBestConfig(cfg, cl, 512, ev, FamilyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mpPlain != 16 {
		t.Errorf("without checkpointing only MP=16 fits, got %d", mpPlain)
	}
	if plain.Feasible && plain.EpochTime < best.EpochTime {
		t.Errorf("tuned checkpointed config (%v) lost to the unchecked one (%v)", best.EpochTime, plain.EpochTime)
	}
}

func TestTableIVPerformance(t *testing.T) {
	if testing.Short() {
		t.Skip("five-config sweep in -short mode")
	}
	cl := hw.ABCI()
	rows, err := TableIV(cl, dist.Analytic{}, FamilyOptions{Ckpt: true})
	if err != nil {
		t.Fatalf("TableIV: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Hybrid.Feasible {
			t.Errorf("%s: hybrid infeasible: %s", r.Config.Name, r.Hybrid.Reason)
		}
		if !r.KARMA.Feasible {
			t.Errorf("%s: KARMA infeasible: %s", r.Config.Name, r.KARMA.Reason)
		}
		// Table IV shape: KARMA achieves the run with HALF the GPUs at a
		// lower-but-comparable iteration rate (paper: e.g. 8.4 vs 6.3
		// iter/s for 8.3B). Comparable = within 10x.
		if r.Hybrid.Feasible && r.KARMA.Feasible {
			ratio := r.Hybrid.IterPerSec / r.KARMA.IterPerSec
			if ratio < 0.2 || ratio > 10 {
				t.Errorf("%s: hybrid/KARMA iter rate ratio %.2f out of plausible band",
					r.Config.Name, ratio)
			}
		}
	}
	tab := TableIVTable(rows)
	if len(tab.Rows) != 5 {
		t.Error("table IV render mismatch")
	}
}

func TestTableVCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("cost sweep in -short mode")
	}
	cl := hw.ABCI()
	all, err := TableV(cl, dist.Analytic{}, 0)
	if err != nil {
		t.Fatalf("TableV: %v", err)
	}
	for name, rows := range all {
		if len(rows) != 6 {
			t.Fatalf("%s: rows = %d", name, len(rows))
		}
		for i, r := range rows {
			if !r.DP.Feasible {
				t.Errorf("%s row %d: DP infeasible: %s", name, i, r.DP.Reason)
			}
			if !r.KARMA.Feasible {
				t.Errorf("%s row %d: KARMA infeasible: %s", name, i, r.KARMA.Reason)
			}
		}
		// Table V shape: at the first out-of-core step KARMA's normalized
		// $/P stays close to DP's (within 25%); by the last step DP is
		// the cheaper way to scale (the crossover).
		dpBase, kmBase := rows[0].DP.CostPerf, rows[0].KARMA.CostPerf
		dp2, km2 := rows[1].DP.CostPerf/dpBase, rows[1].KARMA.CostPerf/kmBase
		if km2 > dp2*1.25 {
			t.Errorf("%s: first OOC step KARMA $/P %.3f vs DP %.3f — should be close", name, km2, dp2)
		}
		dp6, km6 := rows[5].DP.CostPerf/dpBase, rows[5].KARMA.CostPerf/kmBase
		if km6 < dp6 {
			t.Logf("%s: KARMA still cheaper at 6x (km=%.3f dp=%.3f)", name, km6, dp6)
		}
		tab := TableVTable(name, rows)
		if len(tab.Rows) != 6 {
			t.Error("table V render mismatch")
		}
	}
}
