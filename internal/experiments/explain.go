package experiments

import (
	"fmt"

	"karma/internal/dist"
	"karma/internal/unit"
)

// The explain tables render each panel's cost attribution — where every
// iteration's time goes, per dist.Breakdown — next to the verdicts the
// byte-pinned panel tables report. They are separate tables (karma-bench
// -explain) so the golden panel renderings stay untouched.

// explainHeaders name the seven critical-path components plus the
// compute-stream occupancy.
var explainHeaders = []string{
	"compute", "recompute", "swap", "exchange", "collective", "bubble", "update", "occ",
}

// breakdownCells renders one result's attribution as
// percent-of-iteration columns; infeasible or breakdown-less results
// render as dashes.
func breakdownCells(r *dist.Result) []string {
	if r == nil || !r.Feasible || r.Breakdown == nil || r.IterTime <= 0 {
		out := make([]string, len(explainHeaders))
		for i := range out {
			out[i] = "-"
		}
		return out
	}
	b := r.Breakdown
	iter := float64(r.IterTime)
	pct := func(v unit.Seconds) string {
		return fmt.Sprintf("%.1f%%", 100*float64(v)/iter)
	}
	return []string{
		pct(b.Compute), pct(b.Recompute), pct(b.SwapStall), pct(b.ExchangeStall),
		pct(b.Collective), pct(b.Bubble), pct(b.Update),
		fmt.Sprintf("%.2f", b.Occupancy),
	}
}

// ExplainTable renders the panel's cost attribution: one row per
// (GPU count, method), components as percent of the iteration.
func (p *Fig8Panel) ExplainTable() *Table {
	t := &Table{
		ID:      "fig8-" + p.Model + "-explain",
		Title:   fmt.Sprintf("cost attribution (%% of iteration), %s", p.Model),
		Headers: append([]string{"gpus", "method"}, explainHeaders...),
	}
	for _, row := range p.Rows {
		for _, m := range p.Methods {
			t.Rows = append(t.Rows,
				append([]string{fmt.Sprintf("%d", row.GPUs), m}, breakdownCells(row.Results[m])...))
		}
	}
	t.Notes = append(t.Notes,
		"the seven components sum to the iteration time; occ is compute-stream busy over the iteration")
	return t
}

// TableIVExplainTable renders Table IV's cost attribution: one row per
// (configuration, method).
func TableIVExplainTable(rows []TableIVRow) *Table {
	t := &Table{
		ID:      "table4-explain",
		Title:   "cost attribution (% of iteration) for the Table IV configurations",
		Headers: append([]string{"P", "method"}, explainHeaders...),
	}
	for _, r := range rows {
		p := fmt.Sprintf("%.1fB", float64(r.Config.Params())/1e9)
		t.Rows = append(t.Rows, append([]string{p, "mp+dp"}, breakdownCells(r.Hybrid)...))
		t.Rows = append(t.Rows, append([]string{p, "karma-dp"}, breakdownCells(r.KARMA)...))
		if r.Pipeline != nil {
			t.Rows = append(t.Rows, append([]string{p, "pipeline"}, breakdownCells(r.Pipeline)...))
		}
	}
	t.Notes = append(t.Notes,
		"the seven components sum to the iteration time; occ is compute-stream busy over the iteration")
	return t
}
