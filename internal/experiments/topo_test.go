package experiments

import (
	"testing"

	"karma/internal/dist"
	"karma/internal/hw"
	"karma/internal/topo"
)

// TestTopologySweepAnchorsOnFlat: the sensitivity panel's flat row must
// reproduce the calibrated Fig. 8 right-panel numbers exactly — the
// same trio through the same evaluator, differing only in that the
// topology is spelled out. This is the experiments-layer face of the
// topo engine's Flat-equivalence property.
func TestTopologySweepAnchorsOnFlat(t *testing.T) {
	cl := hw.ABCI()
	ev := dist.Analytic{}
	o := FamilyOptions{Ckpt: true}
	rows, err := TopologySweep(cl, 512, TopoLadder(), ev, o)
	if err != nil {
		t.Fatalf("TopologySweep: %v", err)
	}
	if len(rows) != len(TopoLadder()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(TopoLadder()))
	}
	panel, err := Figure8Turing(cl, []int{512}, ev, o)
	if err != nil {
		t.Fatalf("Figure8Turing: %v", err)
	}
	ref := panel.Rows[0]
	flat := rows[0]
	if flat.Topo != "flat" {
		t.Fatalf("first ladder row is %q, want flat", flat.Topo)
	}
	if flat.ZeRO.EpochTime != ref.Results["zero"].EpochTime ||
		flat.KARMA.EpochTime != ref.Results["karma-dp"].EpochTime ||
		flat.Combo.EpochTime != ref.Results["zero+karma"].EpochTime {
		t.Errorf("flat row diverges from the calibrated panel: %+v vs %+v", flat, ref.Results)
	}
}

// TestTopologySweepShapes pins the qualitative shape of the panel: every
// cell feasible, KARMA ahead of ZeRO on every fabric (the paper's
// conclusion is topology-robust), ABCI's second rail never slower than
// flat, and oversubscription monotonically degrading.
func TestTopologySweepShapes(t *testing.T) {
	rows, err := TopologySweep(hw.ABCI(), 512, TopoLadder(), dist.Analytic{}, FamilyOptions{Ckpt: true})
	if err != nil {
		t.Fatalf("TopologySweep: %v", err)
	}
	byName := map[string]TopoRow{}
	for _, r := range rows {
		byName[r.Topo] = r
		if !r.ZeRO.Feasible || !r.KARMA.Feasible || !r.Combo.Feasible {
			t.Fatalf("%s: infeasible cell", r.Topo)
		}
		if r.Ratio <= 1 {
			t.Errorf("%s: ZeRO/combo ratio %.2f at or below parity", r.Topo, r.Ratio)
		}
		if r.KARMA.EpochTime >= r.ZeRO.EpochTime {
			t.Errorf("%s: KARMA (%v) does not beat ZeRO (%v)", r.Topo, r.KARMA.EpochTime, r.ZeRO.EpochTime)
		}
	}
	for _, m := range []func(TopoRow) float64{
		func(r TopoRow) float64 { return float64(r.ZeRO.EpochTime) },
		func(r TopoRow) float64 { return float64(r.KARMA.EpochTime) },
		func(r TopoRow) float64 { return float64(r.Combo.EpochTime) },
	} {
		if m(byName["abci"]) > m(byName["flat"]) {
			t.Errorf("abci slower than flat: %+v vs %+v", byName["abci"], byName["flat"])
		}
		if m(byName["fattree:2"]) > m(byName["fattree:4"]) {
			t.Errorf("fattree:2 slower than fattree:4")
		}
	}
	tbl := TopoTable(rows, 512, "analytic")
	if len(tbl.Rows) != len(rows) || len(tbl.Headers) != 5 {
		t.Errorf("table shape %dx%d unexpected", len(tbl.Rows), len(tbl.Headers))
	}
}

// TestTopologySweepPlanned runs the ladder's abci row under the planned
// backend at a reduced scale, asserting the simulated path stays on the
// planned tag and the ABCI fabric never loses to flat — the cheap
// standing guard for the nightly's full panel.
func TestTopologySweepPlanned(t *testing.T) {
	if testing.Short() {
		t.Skip("planned Turing-NLG sweep is a nightly-scale run")
	}
	ev := dist.NewPlanned()
	rows, err := TopologySweep(hw.ABCI(), 512, []topo.Topology{{}, topo.ABCI()}, ev, FamilyOptions{Ckpt: true})
	if err != nil {
		t.Fatalf("TopologySweep: %v", err)
	}
	flat, abci := rows[0], rows[1]
	for _, r := range rows {
		if !r.ZeRO.Feasible || r.ZeRO.Backend != "planned" {
			t.Fatalf("%s: zero cell %+v not planned-feasible", r.Topo, r.ZeRO)
		}
	}
	if abci.ZeRO.EpochTime > flat.ZeRO.EpochTime {
		t.Errorf("planned abci ZeRO (%v) slower than flat (%v)", abci.ZeRO.EpochTime, flat.ZeRO.EpochTime)
	}
	if abci.Combo.EpochTime > flat.Combo.EpochTime {
		t.Errorf("planned abci combo (%v) slower than flat (%v)", abci.Combo.EpochTime, flat.Combo.EpochTime)
	}
}
