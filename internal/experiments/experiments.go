// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) on the simulated substrate: Fig. 5 (single-GPU
// throughput vs batch), Fig. 6 (backward-phase stall profiles), Fig. 7
// (best blocking), Fig. 8 (multi-node scaling), Table I (capability
// matrix), Table IV (Megatron-LM configurations) and Table V
// (cost/performance). The same generators back cmd/karma-bench, the test
// suite, and the benchmark harness, so what is asserted is what is
// printed.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"karma/internal/graph"
	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/profiler"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	// Notes carry substitution caveats (DESIGN.md reproduction strategy).
	Notes []string
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return sb.String()
}

// Workload describes one Fig. 5 panel: a model and its batch-size grid.
// Only the first batch size fits in device memory, as in the paper.
type Workload struct {
	Model   string
	Batches []int
	// MaxOpen is the segmentation bound (U-Net needs loose cuts).
	MaxOpen int
}

// Fig5Workloads returns the six panels of Fig. 5 with the paper's batch
// grids.
func Fig5Workloads() []Workload {
	return []Workload{
		{Model: "resnet50", Batches: []int{128, 256, 384, 512, 640, 768}},
		{Model: "vgg16", Batches: []int{32, 64, 96, 128, 160}},
		{Model: "resnet200", Batches: []int{4, 8, 12, 16, 20, 24}},
		{Model: "wrn-28-10", Batches: []int{256, 512, 768, 1024, 1280}},
		{Model: "resnet1001", Batches: []int{64, 128, 192, 256, 320}},
		{Model: "unet", Batches: []int{8, 16, 24, 32, 40}, MaxOpen: 5},
	}
}

// CalibratedOverhead returns the activation-overhead factor standing in
// for the paper's empirical memory profiling (§III-D): the factor is
// fitted so that the workload's first batch size trains in-core and the
// second does not — the feasibility boundary Fig. 5 states. A factor of 1
// is used whenever the raw footprint already matches the boundary.
func CalibratedOverhead(w Workload, node hw.Node) (float64, error) {
	g, err := model.Build(w.Model)
	if err != nil {
		return 0, err
	}
	if len(w.Batches) < 2 {
		return 1, nil
	}
	p1, err := profiler.New(g, node, profiler.Options{Batch: w.Batches[0], MaxOpen: w.MaxOpen})
	if err != nil {
		return 0, err
	}
	p2, err := profiler.New(g, node, profiler.Options{Batch: w.Batches[1], MaxOpen: w.MaxOpen})
	if err != nil {
		return 0, err
	}
	usable := float64(node.Device.UsableMem())
	weights := 2 * float64(p1.TotalWeightBytes)
	// Bounds on the factor: fit batch 1, not batch 2.
	fmax := (usable - weights) / float64(p1.TotalActBytes)
	fmin := (usable - weights) / float64(p2.TotalActBytes)
	if fmax <= 1 {
		// Even raw footprints exceed memory at the first batch: the model
		// is OOC from the start; no calibration can help — use 1.
		return 1, nil
	}
	if fmin < 1 {
		return 1, nil // boundary already correct at factor 1
	}
	// Midpoint (geometric) keeps comfortable margins on both sides.
	f := fmin * 1.2
	if f > fmax {
		f = (fmin + fmax) / 2
	}
	return f, nil
}

// ProfileWorkload profiles a workload at one batch size with the
// calibrated overhead.
func ProfileWorkload(w Workload, node hw.Node, batch int) (*profiler.Profile, error) {
	g, err := model.Build(w.Model)
	if err != nil {
		return nil, err
	}
	f, err := CalibratedOverhead(w, node)
	if err != nil {
		return nil, err
	}
	return profiler.New(g, node, profiler.Options{
		Batch: batch, MaxOpen: w.MaxOpen, ActOverhead: f,
	})
}

// buildGraph is a helper shared by the multi-node experiments.
func buildGraph(name string) *graph.Graph {
	g, err := model.Build(name)
	if err != nil {
		panic(err)
	}
	return g
}
