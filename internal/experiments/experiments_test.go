package experiments

import (
	"strings"
	"testing"

	"karma/internal/baseline"
	"karma/internal/dist"
	"karma/internal/hw"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"hello"},
	}
	s := tab.String()
	for _, want := range []string{"demo", "333", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in rendering:\n%s", want, s)
		}
	}
}

func TestCalibratedOverheadBoundaries(t *testing.T) {
	// The §III-D calibration must place every Fig. 5 feasibility boundary
	// after the first batch size: batch[0] fits, batch[1] does not.
	node := hw.ABCINode()
	for _, w := range Fig5Workloads() {
		w := w
		t.Run(w.Model, func(t *testing.T) {
			f, err := CalibratedOverhead(w, node)
			if err != nil {
				t.Fatalf("CalibratedOverhead: %v", err)
			}
			if f < 1 {
				t.Fatalf("overhead %v < 1", f)
			}
			p0, err := ProfileWorkload(w, node, w.Batches[0])
			if err != nil {
				t.Fatal(err)
			}
			if !p0.FitsInCore() {
				t.Errorf("first batch %d should fit in-core (overhead %v)", w.Batches[0], f)
			}
			p1, err := ProfileWorkload(w, node, w.Batches[1])
			if err != nil {
				t.Fatal(err)
			}
			if p1.FitsInCore() {
				t.Errorf("second batch %d should NOT fit in-core (overhead %v)", w.Batches[1], f)
			}
		})
	}
}

func TestFigure5PanelResNet50(t *testing.T) {
	node := hw.ABCINode()
	panel, err := Figure5Panel(Fig5Workloads()[0], node)
	if err != nil {
		t.Fatalf("Figure5Panel: %v", err)
	}
	if len(panel.Points) != 6 {
		t.Fatalf("points = %d", len(panel.Points))
	}
	first := panel.Points[0]
	if !first.Results[baseline.InCore].Feasible {
		t.Error("first point must be in-core feasible")
	}
	for _, pt := range panel.Points[1:] {
		if pt.Results[baseline.InCore].Feasible {
			t.Errorf("batch %d: in-core should be infeasible", pt.Batch)
		}
		k := pt.Results[baseline.KARMARecompute]
		if !k.Feasible {
			t.Fatalf("batch %d: KARMA infeasible: %s", pt.Batch, k.Reason)
		}
		// The headline ordering: KARMA w/recompute at least matches the
		// eager out-of-core methods.
		for _, m := range []baseline.Method{baseline.VDNNPP, baseline.SuperNeurons} {
			r := pt.Results[m]
			if r.Feasible && r.Throughput > k.Throughput*1.001 {
				t.Errorf("batch %d: %s (%.1f) beats KARMA w/recompute (%.1f)",
					pt.Batch, m, r.Throughput, k.Throughput)
			}
		}
		// KARMA w/recompute >= plain KARMA.
		plain := pt.Results[baseline.KARMA]
		if plain.Feasible && plain.Throughput > k.Throughput*1.001 {
			t.Errorf("batch %d: plain KARMA (%.1f) beats KARMA w/recompute (%.1f)",
				pt.Batch, plain.Throughput, k.Throughput)
		}
	}
	// Performance degrades gracefully, not off a cliff: at 2x the memory
	// limit KARMA keeps a large fraction of the in-core rate.
	inCoreRate := first.Results[baseline.InCore].Throughput
	ooc2x := panel.Points[1].Results[baseline.KARMARecompute].Throughput
	if ooc2x < inCoreRate*0.4 {
		t.Errorf("2x batch keeps only %.0f%% of in-core rate", 100*ooc2x/inCoreRate)
	}
	// The table renders every point.
	tab := panel.Table()
	if len(tab.Rows) != len(panel.Points) {
		t.Error("table row count mismatch")
	}
}

func TestFigure5AverageSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 5 grid in -short mode")
	}
	node := hw.ABCINode()
	panels, err := Figure5(node)
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	if len(panels) != 6 {
		t.Fatalf("panels = %d", len(panels))
	}
	s := AverageSpeedup(panels)
	// Paper: 1.52x average over the SOTA out-of-core methods. Shape
	// check: meaningfully above 1.2x and below 3x.
	if s < 1.2 || s > 3.0 {
		t.Errorf("average speedup = %.2fx, want within [1.2, 3.0] (paper: 1.52x)", s)
	}
	t.Logf("average speedup over SOTA OOC: %.2fx (paper: 1.52x)", s)
}

func TestFigure6StallProfile(t *testing.T) {
	node := hw.ABCINode()
	series, err := Figure6(node)
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	byMethod := map[baseline.Method]Fig6Series{}
	for _, s := range series {
		byMethod[s.Method] = s
	}
	vdnn := byMethod[baseline.VDNNPP]
	karmaRe := byMethod[baseline.KARMARecompute]
	// vDNN++ suffers an early large spike (the fwd->bwd transition).
	if len(vdnn.Entries) == 0 || vdnn.Entries[0].Normalized <= 1.0 {
		t.Error("vDNN++ should spike at the first backward block")
	}
	// KARMA w/recompute's total stall must undercut vDNN++ and
	// SuperNeurons (the Fig. 6 takeaway).
	for _, m := range []baseline.Method{baseline.VDNNPP, baseline.SuperNeurons} {
		if karmaRe.TotalStallSec > byMethod[m].TotalStallSec {
			t.Errorf("KARMA w/recompute stall %.4fs exceeds %s %.4fs",
				karmaRe.TotalStallSec, m, byMethod[m].TotalStallSec)
		}
	}
	tab := Fig6Table(series)
	if len(tab.Rows) != 4 {
		t.Errorf("fig6 table rows = %d", len(tab.Rows))
	}
}

func TestFigure7Blocking(t *testing.T) {
	node := hw.ABCINode()
	r, err := Figure7(node)
	if err != nil {
		t.Fatalf("Figure7: %v", err)
	}
	if r.Schedule.NumBlocks() < 2 {
		t.Error("blocking should produce multiple blocks")
	}
	// Fig. 7's property: the blocking balances data movement against
	// compute — stalls drop versus both eager baselines (paper: 43% and
	// 37%).
	for m, red := range r.StallReduction {
		if red <= 0 {
			t.Errorf("stall reduction vs %s = %.0f%%, want positive", m, 100*red)
		}
	}
	if r.Plan == "" {
		t.Error("empty plan string")
	}
	tab := r.Table()
	if len(tab.Rows) != r.Schedule.NumBlocks() {
		t.Error("fig7 table row mismatch")
	}
	if f := r.SwappedFraction(); f < 0 || f > 1 {
		t.Errorf("swapped fraction = %v", f)
	}
}

func TestTableIStatic(t *testing.T) {
	tab := TableI()
	if len(tab.Rows) != 8 {
		t.Fatalf("Table I rows = %d, want 8", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if !strings.Contains(last[0], "KARMA") {
		t.Error("last row should be KARMA")
	}
	for _, c := range last[2:] {
		if c == "no" {
			t.Error("KARMA row must have no 'no' capabilities (Table I)")
		}
	}
}

func TestEquivalenceExperiment(t *testing.T) {
	rs, err := Equivalence()
	if err != nil {
		t.Fatalf("Equivalence: %v", err)
	}
	if len(rs) != 4 {
		t.Fatalf("scenarios = %d", len(rs))
	}
	for _, r := range rs[1:] {
		if r.MaxAbsDiff != 0 {
			t.Errorf("%s: max deviation %g, want 0 (bitwise identical)", r.Scenario, r.MaxAbsDiff)
		}
	}
	if rs[1].SwappedBytes == 0 {
		t.Error("OOC scenario recorded no swap traffic")
	}
	tab := EquivalenceTable(rs)
	if len(tab.Rows) != 4 {
		t.Error("equivalence table row mismatch")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in -short mode")
	}
	rs, err := Ablations(hw.ABCINode(), hw.ABCI(), dist.Analytic{}, 0)
	if err != nil {
		t.Fatalf("Ablations: %v", err)
	}
	if len(rs) != 6 {
		t.Fatalf("studies = %d, want 6", len(rs))
	}
	byID := map[string]AblationResult{}
	for _, r := range rs {
		byID[r.ID] = r
		if r.Value <= 0 {
			t.Errorf("%s: non-positive value", r.ID)
		}
	}
	// The core design choices must pay off.
	if byID["A1"].Value < 1 {
		t.Errorf("A1: capacity-based schedule should beat eager (got %.3f)", byID["A1"].Value)
	}
	if byID["A2"].Value < 1 {
		t.Errorf("A2: recompute interleave should help (got %.3f)", byID["A2"].Value)
	}
	if byID["A3"].Value < 1 {
		t.Errorf("A3: phased exchange should help (got %.3f)", byID["A3"].Value)
	}
	if byID["A4"].Value < 1 {
		t.Errorf("A4: GPU-side update should not be faster (got %.3f)", byID["A4"].Value)
	}
	tab := AblationTable(rs)
	if len(tab.Rows) != 6 {
		t.Error("ablation table rows mismatch")
	}
}
