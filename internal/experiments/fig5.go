package experiments

import (
	"fmt"

	"karma/internal/baseline"
	"karma/internal/hw"
)

// Fig5Point is one batch size of one panel: throughput per method.
type Fig5Point struct {
	Batch   int
	Results map[baseline.Method]*baseline.Result
}

// Fig5Panel is one model's sweep.
type Fig5Panel struct {
	Workload Workload
	Points   []Fig5Point
}

// Figure5Panel runs all Fig. 5 methods over one workload's batch grid.
func Figure5Panel(w Workload, node hw.Node) (*Fig5Panel, error) {
	panel := &Fig5Panel{Workload: w}
	for _, b := range w.Batches {
		p, err := ProfileWorkload(w, node, b)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s/%d: %w", w.Model, b, err)
		}
		pt := Fig5Point{Batch: b, Results: map[baseline.Method]*baseline.Result{}}
		for _, m := range baseline.Methods() {
			r, err := baseline.Run(m, p)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s/%d/%s: %w", w.Model, b, m, err)
			}
			pt.Results[m] = r
		}
		panel.Points = append(panel.Points, pt)
	}
	return panel, nil
}

// Figure5 runs every panel.
func Figure5(node hw.Node) ([]*Fig5Panel, error) {
	var out []*Fig5Panel
	for _, w := range Fig5Workloads() {
		p, err := Figure5Panel(w, node)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Table renders a panel as samples/s per method (the figure's y-axis),
// with "-" for infeasible points.
func (p *Fig5Panel) Table() *Table {
	t := &Table{
		ID:      "fig5-" + p.Workload.Model,
		Title:   fmt.Sprintf("training performance, %s (samples/s vs batch size)", p.Workload.Model),
		Headers: []string{"batch"},
	}
	for _, m := range baseline.Methods() {
		t.Headers = append(t.Headers, string(m))
	}
	for _, pt := range p.Points {
		row := []string{fmt.Sprintf("%d", pt.Batch)}
		for _, m := range baseline.Methods() {
			r := pt.Results[m]
			if r == nil || !r.Feasible {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.1f", r.Throughput))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"only the first batch size fits in device memory (in-core column)",
		"hardware substituted by the event simulator; see DESIGN.md")
	return t
}

// AverageSpeedup reproduces the §IV headline: the mean speedup of KARMA
// w/recompute over the best state-of-the-art out-of-core and recompute
// method (vDNN++, SuperNeurons or Checkmate) across all out-of-core grid
// points. The paper reports 1.52x.
func AverageSpeedup(panels []*Fig5Panel) float64 {
	var sum float64
	var n int
	for _, p := range panels {
		for _, pt := range p.Points {
			karma := pt.Results[baseline.KARMARecompute]
			if karma == nil || !karma.Feasible {
				continue
			}
			var best float64
			for _, m := range []baseline.Method{baseline.VDNNPP, baseline.SuperNeurons, baseline.Checkmate} {
				if r := pt.Results[m]; r != nil && r.Feasible && r.Throughput > best {
					best = r.Throughput
				}
			}
			if best <= 0 {
				continue
			}
			if ic := pt.Results[baseline.InCore]; ic != nil && ic.Feasible {
				continue // in-core points are not out-of-core comparisons
			}
			sum += karma.Throughput / best
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
