package experiments

import (
	"runtime"
	"testing"

	"karma/internal/dist"
	"karma/internal/hw"
	"karma/internal/tensor"
)

// TestPanelDeterminismAcrossWorkers is the parallel-sweep contract:
// every panel renders byte-identically for any worker count, because
// grid cells land by index (sweep.Do) and the evaluators' singleflight
// caches return one shared computation per key. Each panel renders at
// workers=1 (the serial reference) and then at 2, 8 and NumCPU; any
// byte of divergence is a scheduling leak into the numbers. Runs in
// -short: the grids are the small analytic ones, with one
// planner-backed panel guarding the shared-cache path.
func TestPanelDeterminismAcrossWorkers(t *testing.T) {
	cl := hw.ABCI()
	node := hw.ABCINode()
	fo := func(w int) FamilyOptions {
		return FamilyOptions{Ckpt: true, Precision: tensor.MixedFP16, Workers: w}
	}
	panels := []struct {
		name   string
		render func(w int) (string, error)
	}{
		{"fig8-megatron", func(w int) (string, error) {
			p, err := Figure8Megatron(cl, 2, []int{128, 512}, dist.Analytic{}, fo(w))
			if err != nil {
				return "", err
			}
			return p.Table().String(), nil
		}},
		{"fig8-turing", func(w int) (string, error) {
			p, err := Figure8Turing(cl, []int{512}, dist.Analytic{}, fo(w))
			if err != nil {
				return "", err
			}
			return p.Table().String(), nil
		}},
		{"fig8-turing-planned", func(w int) (string, error) {
			p, err := Figure8Turing(cl, []int{512}, dist.NewPlanned(), fo(w))
			if err != nil {
				return "", err
			}
			return p.Table().String(), nil
		}},
		{"table4", func(w int) (string, error) {
			rows, err := TableIV(cl, dist.Analytic{}, fo(w))
			if err != nil {
				return "", err
			}
			return TableIVTable(rows).String(), nil
		}},
		{"table5", func(w int) (string, error) {
			sweeps, err := TableV(cl, dist.Analytic{}, w)
			if err != nil {
				return "", err
			}
			return TableVTable("resnet50", sweeps["resnet50"]).String() +
				TableVTable("resnet200", sweeps["resnet200"]).String(), nil
		}},
		{"topo", func(w int) (string, error) {
			rows, err := TopologySweep(cl, 512, TopoLadder(), dist.Analytic{}, fo(w))
			if err != nil {
				return "", err
			}
			return TopoTable(rows, 512, "analytic").String(), nil
		}},
		{"ablations", func(w int) (string, error) {
			rs, err := Ablations(node, cl, dist.Analytic{}, w)
			if err != nil {
				return "", err
			}
			return AblationTable(rs).String(), nil
		}},
	}
	workerCounts := []int{1, 2, 8, runtime.NumCPU()}
	for _, p := range panels {
		t.Run(p.name, func(t *testing.T) {
			ref, err := p.render(1)
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			for _, w := range workerCounts[1:] {
				got, err := p.render(w)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got != ref {
					t.Errorf("workers=%d renders differently from workers=1:\n--- workers=1 ---\n%s--- workers=%d ---\n%s", w, ref, w, got)
				}
			}
		})
	}
}
