package experiments

import (
	"fmt"

	"karma/internal/baseline"
	"karma/internal/hw"
	"karma/internal/karma"
	"karma/internal/unit"
)

// Fig7Result carries the best blocking KARMA finds for ResNet-50 at
// batch 512 (the paper's Fig. 7) plus the stall-reduction comparison the
// paper quotes (43% vs SuperNeurons, 37% vs vDNN++).
type Fig7Result struct {
	Schedule *karma.Schedule
	Plan     string
	// StallReduction maps a baseline to 1 - karmaStall/baselineStall.
	StallReduction map[baseline.Method]float64
}

// Figure7 computes the blocking and the stall reductions.
func Figure7(node hw.Node) (*Fig7Result, error) {
	w := Workload{Model: "resnet50", Batches: []int{128, 256}}
	p, err := ProfileWorkload(w, node, 512)
	if err != nil {
		return nil, err
	}
	s, err := karma.Plan(p, karma.Options{})
	if err != nil {
		return nil, err
	}
	rep, err := karma.Simulate(s)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{
		Schedule:       s,
		Plan:           rep.Plan.String(),
		StallReduction: map[baseline.Method]float64{},
	}
	for _, m := range []baseline.Method{baseline.SuperNeurons, baseline.VDNNPP} {
		r, err := baseline.Run(m, p)
		if err != nil {
			return nil, err
		}
		if !r.Feasible || r.ComputeStall <= 0 {
			continue
		}
		res.StallReduction[m] = 1 - float64(rep.ComputeStall)/float64(r.ComputeStall)
	}
	return res, nil
}

// Table renders the blocking: one row per block with its extent, policy
// and costs — the textual form of the paper's block diagram.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		ID:    "fig7",
		Title: "best blocking found by KARMA for ResNet-50 (batch 512)",
		Headers: []string{
			"block", "segments", "layers", "policy", "activations", "fwd", "swap",
		},
	}
	g := r.Schedule.Profile.Graph
	for i, b := range r.Schedule.Blocks {
		layers := 0
		for _, pb := range r.Schedule.Profile.Blocks[b.Range[0]:b.Range[1]] {
			layers += len(pb.Seg.Nodes)
		}
		_ = g
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d-%d", b.Range[0], b.Range[1]),
			fmt.Sprintf("%d", layers),
			b.Policy.String(),
			b.Cost.ActBytes.String(),
			b.Cost.FwdTime.String(),
			b.Cost.SwapTime.String(),
		})
	}
	// Note order follows the paper's quote (43% vs SuperNeurons, 37% vs
	// vDNN++), not the map's randomized iteration order.
	for _, m := range []baseline.Method{baseline.SuperNeurons, baseline.VDNNPP} {
		if red, ok := r.StallReduction[m]; ok {
			t.Notes = append(t.Notes,
				fmt.Sprintf("stall reduction vs %s: %.0f%%", m, 100*red))
		}
	}
	t.Notes = append(t.Notes, "plan: "+truncate(r.Plan, 160))
	return t
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// SwappedFraction is a convenience metric: the share of activation bytes
// the schedule moves over the link.
func (r *Fig7Result) SwappedFraction() float64 {
	total := unit.Bytes(0)
	for _, b := range r.Schedule.Blocks {
		total += b.Cost.ActBytes
	}
	if total == 0 {
		return 0
	}
	return float64(r.Schedule.SwappedBytes()) / float64(total)
}
