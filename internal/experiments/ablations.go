package experiments

import (
	"fmt"

	"karma/internal/baseline"
	"karma/internal/dist"
	"karma/internal/hw"
	"karma/internal/karma"
	"karma/internal/model"
	"karma/internal/profiler"
)

// AblationResult is one design-choice study (DESIGN.md A1-A6).
type AblationResult struct {
	ID       string
	Question string
	Metric   string
	Value    float64
}

// Ablations runs all six studies on small fixed workloads; the
// cluster-scale studies (A3, A4) use the given backend.
func Ablations(node hw.Node, cl hw.Cluster, ev dist.Evaluator) ([]AblationResult, error) {
	var out []AblationResult

	prof := func(batch int) (*profiler.Profile, error) {
		return profiler.New(model.ResNet50(), node, profiler.Options{Batch: batch})
	}

	// A1: capacity-based vs eager swap schedule (recompute disabled).
	p256, err := prof(256)
	if err != nil {
		return nil, err
	}
	k, err := baseline.Run(baseline.KARMA, p256)
	if err != nil {
		return nil, err
	}
	v, err := baseline.Run(baseline.VDNNPP, p256)
	if err != nil {
		return nil, err
	}
	if k.Feasible && v.Feasible {
		out = append(out, AblationResult{
			ID: "A1", Question: "capacity-based vs eager swap schedule",
			Metric: "x speedup", Value: k.Throughput / v.Throughput,
		})
	}

	// A2: recompute interleave on/off.
	p512, err := prof(512)
	if err != nil {
		return nil, err
	}
	on, err := baseline.Run(baseline.KARMARecompute, p512)
	if err != nil {
		return nil, err
	}
	off, err := baseline.Run(baseline.KARMA, p512)
	if err != nil {
		return nil, err
	}
	if on.Feasible && off.Feasible {
		out = append(out, AblationResult{
			ID: "A2", Question: "recompute interleave on vs off",
			Metric: "x speedup", Value: on.Throughput / off.Throughput,
		})
	}

	// A3: phased vs bulk gradient exchange (Megatron-2.5B hybrid, under
	// the activation checkpointing its shard needs at batch 4).
	cfg := model.MegatronConfigs()[2]
	phased, err := ev.MegatronHybrid(cfg, cl, 4, 512, 4, openWTSamples, dist.HybridOptions{Phased: true, Checkpoint: true})
	if err != nil {
		return nil, err
	}
	bulk, err := ev.MegatronHybrid(cfg, cl, 4, 512, 4, openWTSamples, dist.HybridOptions{Checkpoint: true})
	if err != nil {
		return nil, err
	}
	if phased.Feasible && bulk.Feasible {
		out = append(out, AblationResult{
			ID: "A3", Question: "phased vs bulk gradient exchange",
			Metric: "x speedup", Value: float64(bulk.IterTime) / float64(phased.IterTime),
		})
	}

	// A4: CPU-side vs move-back-to-GPU weight update.
	g := model.Transformer(cfg)
	host, err := ev.KARMADataParallel(g, cl, 256, 4, openWTSamples, dist.KARMAOptions{})
	if err != nil {
		return nil, err
	}
	dev, err := ev.KARMADataParallel(g, cl, 256, 4, openWTSamples, dist.KARMAOptions{UpdateOnDevice: true})
	if err != nil {
		return nil, err
	}
	if host.Feasible && dev.Feasible {
		out = append(out, AblationResult{
			ID: "A4", Question: "GPU-side update overhead vs CPU-side",
			Metric: "x slowdown", Value: float64(dev.IterTime) / float64(host.IterTime),
		})
	}

	// A5: Opt-1 solver backends.
	p384, err := prof(384)
	if err != nil {
		return nil, err
	}
	sb, err := planThroughput(p384, karma.SolverBalanced)
	if err != nil {
		return nil, err
	}
	sa, err := planThroughput(p384, karma.SolverACO)
	if err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		ID: "A5", Question: "balanced/hill-climb vs ant-colony Opt-1",
		Metric: "aco/balanced throughput ratio", Value: sa / sb,
	})

	// A6: blocking granularity.
	coarse, err := planThroughputMax(p384, 4)
	if err != nil {
		return nil, err
	}
	fine, err := planThroughputMax(p384, 32)
	if err != nil {
		return nil, err
	}
	out = append(out, AblationResult{
		ID: "A6", Question: "fine (k<=32) vs coarse (k<=4) blocking",
		Metric: "x speedup", Value: fine / coarse,
	})
	return out, nil
}

func planThroughput(p *profiler.Profile, s karma.Solver) (float64, error) {
	sched, err := karma.Plan(p, karma.Options{Solver: s, Seed: 7})
	if err != nil {
		return 0, err
	}
	rep, err := karma.Simulate(sched)
	if err != nil {
		return 0, err
	}
	return rep.Throughput, nil
}

func planThroughputMax(p *profiler.Profile, maxBlocks int) (float64, error) {
	sched, err := karma.Plan(p, karma.Options{MaxBlocks: maxBlocks})
	if err != nil {
		return 0, err
	}
	rep, err := karma.Simulate(sched)
	if err != nil {
		return 0, err
	}
	return rep.Throughput, nil
}

// AblationTable renders the studies.
func AblationTable(rs []AblationResult) *Table {
	t := &Table{
		ID:      "ablations",
		Title:   "design-choice ablations (DESIGN.md A1-A6)",
		Headers: []string{"id", "question", "metric", "value"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.ID, r.Question, r.Metric, fmt.Sprintf("%.3f", r.Value),
		})
	}
	return t
}
