package experiments

import (
	"fmt"

	"karma/internal/baseline"
	"karma/internal/dist"
	"karma/internal/hw"
	"karma/internal/karma"
	"karma/internal/model"
	"karma/internal/profiler"
	"karma/internal/sweep"
)

// AblationResult is one design-choice study (DESIGN.md A1-A6).
type AblationResult struct {
	ID       string
	Question string
	Metric   string
	Value    float64
}

// Ablations runs all six studies on small fixed workloads; the
// cluster-scale studies (A3, A4) use the given backend. The shared
// ResNet-50 profiles build up front (A1/A2/A5+A6 each reuse one), then
// the six studies fan out under the worker bound; results keep the
// A1..A6 order regardless of completion order, with a study that is
// infeasible on the workload dropped as before.
func Ablations(node hw.Node, cl hw.Cluster, ev dist.Evaluator, workers int) ([]AblationResult, error) {
	batches := []int{256, 384, 512}
	profs, err := sweep.Map(workers, len(batches), func(i int) (*profiler.Profile, error) {
		return profiler.New(model.ResNet50(), node, profiler.Options{Batch: batches[i]})
	})
	if err != nil {
		return nil, err
	}
	p256, p384, p512 := profs[0], profs[1], profs[2]
	cfg := model.MegatronConfigs()[2]
	g := model.Transformer(cfg)

	studies := []func() (*AblationResult, error){
		func() (*AblationResult, error) {
			// A1: capacity-based vs eager swap schedule (recompute disabled).
			k, err := baseline.Run(baseline.KARMA, p256)
			if err != nil {
				return nil, err
			}
			v, err := baseline.Run(baseline.VDNNPP, p256)
			if err != nil {
				return nil, err
			}
			if !k.Feasible || !v.Feasible {
				return nil, nil
			}
			return &AblationResult{
				ID: "A1", Question: "capacity-based vs eager swap schedule",
				Metric: "x speedup", Value: k.Throughput / v.Throughput,
			}, nil
		},
		func() (*AblationResult, error) {
			// A2: recompute interleave on/off.
			on, err := baseline.Run(baseline.KARMARecompute, p512)
			if err != nil {
				return nil, err
			}
			off, err := baseline.Run(baseline.KARMA, p512)
			if err != nil {
				return nil, err
			}
			if !on.Feasible || !off.Feasible {
				return nil, nil
			}
			return &AblationResult{
				ID: "A2", Question: "recompute interleave on vs off",
				Metric: "x speedup", Value: on.Throughput / off.Throughput,
			}, nil
		},
		func() (*AblationResult, error) {
			// A3: phased vs bulk gradient exchange (Megatron-2.5B hybrid,
			// under the activation checkpointing its shard needs at batch 4).
			phased, err := ev.MegatronHybrid(cfg, cl, 4, 512, 4, openWTSamples, dist.HybridOptions{Phased: true, Checkpoint: true})
			if err != nil {
				return nil, err
			}
			bulk, err := ev.MegatronHybrid(cfg, cl, 4, 512, 4, openWTSamples, dist.HybridOptions{Checkpoint: true})
			if err != nil {
				return nil, err
			}
			if !phased.Feasible || !bulk.Feasible {
				return nil, nil
			}
			return &AblationResult{
				ID: "A3", Question: "phased vs bulk gradient exchange",
				Metric: "x speedup", Value: float64(bulk.IterTime) / float64(phased.IterTime),
			}, nil
		},
		func() (*AblationResult, error) {
			// A4: CPU-side vs move-back-to-GPU weight update.
			host, err := ev.KARMADataParallel(g, cl, 256, 4, openWTSamples, dist.KARMAOptions{})
			if err != nil {
				return nil, err
			}
			dev, err := ev.KARMADataParallel(g, cl, 256, 4, openWTSamples, dist.KARMAOptions{UpdateOnDevice: true})
			if err != nil {
				return nil, err
			}
			if !host.Feasible || !dev.Feasible {
				return nil, nil
			}
			return &AblationResult{
				ID: "A4", Question: "GPU-side update overhead vs CPU-side",
				Metric: "x slowdown", Value: float64(dev.IterTime) / float64(host.IterTime),
			}, nil
		},
		func() (*AblationResult, error) {
			// A5: Opt-1 solver backends.
			sb, err := planThroughput(p384, karma.SolverBalanced)
			if err != nil {
				return nil, err
			}
			sa, err := planThroughput(p384, karma.SolverACO)
			if err != nil {
				return nil, err
			}
			return &AblationResult{
				ID: "A5", Question: "balanced/hill-climb vs ant-colony Opt-1",
				Metric: "aco/balanced throughput ratio", Value: sa / sb,
			}, nil
		},
		func() (*AblationResult, error) {
			// A6: blocking granularity.
			coarse, err := planThroughputMax(p384, 4)
			if err != nil {
				return nil, err
			}
			fine, err := planThroughputMax(p384, 32)
			if err != nil {
				return nil, err
			}
			return &AblationResult{
				ID: "A6", Question: "fine (k<=32) vs coarse (k<=4) blocking",
				Metric: "x speedup", Value: fine / coarse,
			}, nil
		},
	}
	results, err := sweep.Map(workers, len(studies), func(i int) (*AblationResult, error) {
		return studies[i]()
	})
	if err != nil {
		return nil, err
	}
	var out []AblationResult
	for _, r := range results {
		if r != nil {
			out = append(out, *r)
		}
	}
	return out, nil
}

func planThroughput(p *profiler.Profile, s karma.Solver) (float64, error) {
	sched, err := karma.Plan(p, karma.Options{Solver: s, Seed: 7})
	if err != nil {
		return 0, err
	}
	rep, err := karma.Simulate(sched)
	if err != nil {
		return 0, err
	}
	return rep.Throughput, nil
}

func planThroughputMax(p *profiler.Profile, maxBlocks int) (float64, error) {
	sched, err := karma.Plan(p, karma.Options{MaxBlocks: maxBlocks})
	if err != nil {
		return 0, err
	}
	rep, err := karma.Simulate(sched)
	if err != nil {
		return 0, err
	}
	return rep.Throughput, nil
}

// AblationTable renders the studies.
func AblationTable(rs []AblationResult) *Table {
	t := &Table{
		ID:      "ablations",
		Title:   "design-choice ablations (DESIGN.md A1-A6)",
		Headers: []string{"id", "question", "metric", "value"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.ID, r.Question, r.Metric, fmt.Sprintf("%.3f", r.Value),
		})
	}
	return t
}
