package experiments

import (
	"fmt"

	"karma/internal/dist"
	"karma/internal/hw"
	"karma/internal/model"
)

// TableI renders the qualitative capability matrix of related approaches
// (paper Table I). It is static metadata; the per-method behaviours are
// exercised by the baseline package's tests.
func TableI() *Table {
	t := &Table{
		ID:    "table1",
		Title: "limitations and restrictions of related approaches",
		Headers: []string{
			"name", "approach", "min req. memory", "universal", "multi-node", "strong scaling", "fault tolerance",
		},
		Rows: [][]string{
			{"vDNN++", "OOC", "none", "no", "no", "n/a", "n/a"},
			{"ooc_cuDNN", "OOC", "none", "no", "no", "n/a", "n/a"},
			{"Gradient Checkpoint", "RECOMP", "O(sqrt N)", "yes", "yes", "no", "yes"},
			{"SuperNeurons", "OOC & RECOMP", "O(sqrt N)", "no", "no", "n/a", "n/a"},
			{"PoocH", "OOC & RECOMP", "O(sqrt N)", "no", "no", "n/a", "n/a"},
			{"Graph Partitioning", "implicit MP", "none", "yes", "no", "no", "no"},
			{"FlexFlow", "explicit MP", "O(sqrt P)", "no", "yes", "yes", "no"},
			{"KARMA (this work)", "OOC & RECOMP", "none", "yes", "yes", "yes", "yes"},
		},
	}
	return t
}

// TableIVRow is one Megatron-LM configuration's evaluation.
type TableIVRow struct {
	Config model.TransformerConfig `json:"config"`
	// MPGPUs is the minimum model-parallel factor (Table IV "MP").
	MPGPUs int `json:"mp_gpus"`
	// HybridGPUs is the paper's MP+DP scale; Hybrid holds that result.
	HybridGPUs int          `json:"hybrid_gpus"`
	Hybrid     *dist.Result `json:"hybrid"`
	// KARMAGPUs is the paper's data-parallel KARMA scale (half the
	// hybrid); KARMA holds that result.
	KARMAGPUs int          `json:"karma_gpus"`
	KARMA     *dist.Result `json:"karma"`
	// Pipeline is the GPipe-style baseline at the hybrid's scale with
	// MPGPUs stages per replica; nil unless FamilyOptions.Pipeline.
	Pipeline *dist.Result `json:"pipeline,omitempty"`
}

// TableIV evaluates all five Megatron-LM configurations at the paper's
// GPU counts with the given backend: hybrid at {64,128,256,512,1024}x,
// KARMA at half. o.Ckpt applies activation checkpointing to the hybrid
// shards (Megatron-LM's own training regime), o.Precision selects the
// training regime, and o.Pipeline adds the pipeline-parallel family at
// the hybrid's scale.
func TableIV(cl hw.Cluster, ev dist.Evaluator, o FamilyOptions) ([]TableIVRow, error) {
	cfgs := model.MegatronConfigs()
	hybridGPUs := []int{64, 128, 256, 512, 1024}
	karmaGPUs := []int{32, 64, 128, 256, 512}
	const perReplicaBatch = 4
	methods := 2
	if o.Pipeline {
		methods = 3
	}
	cells, err := runGrid(o.Workers, len(cfgs), methods, func(ri, mi int) (*dist.Result, error) {
		cfg, mp := cfgs[ri], 1<<ri
		switch mi {
		case 0:
			return ev.MegatronHybrid(cfg, cl, mp, hybridGPUs[ri], perReplicaBatch, openWTSamples, o.hybrid(false))
		case 1:
			return ev.KARMADataParallel(model.Transformer(cfg), cl, karmaGPUs[ri], perReplicaBatch, openWTSamples, o.karma())
		default: // pipeline
			return ev.Pipeline(cfg, cl, mp, hybridGPUs[ri], perReplicaBatch, o.micro(perReplicaBatch), openWTSamples, o.hybrid(true))
		}
	})
	if err != nil {
		return nil, err
	}
	rows := make([]TableIVRow, len(cfgs))
	for i, cfg := range cfgs {
		rows[i] = TableIVRow{
			Config: cfg, MPGPUs: 1 << i,
			HybridGPUs: hybridGPUs[i], Hybrid: cells[i][0],
			KARMAGPUs: karmaGPUs[i], KARMA: cells[i][1],
		}
		if o.Pipeline {
			rows[i].Pipeline = cells[i][2]
		}
	}
	return rows, nil
}

// Table renders Table IV. The paper's zero-shot perplexity column is not
// re-measurable without OpenWebText and full training runs; the
// equivalence experiment (§IV-D reproduction) substitutes for it.
func TableIVTable(rows []TableIVRow) *Table {
	withPipe := len(rows) > 0 && rows[0].Pipeline != nil
	headers := []string{
		"H", "A", "L", "P", "MP", "MP+DP gpus", "hybrid perf (iter/s)", "ckpt", "karma gpus", "karma perf (iter/s)",
	}
	if withPipe {
		headers = append(headers, "pipeline perf (iter/s)")
	}
	t := &Table{
		ID:      "table4",
		Title:   "data-parallel KARMA configurations and performance for Megatron-LM",
		Headers: headers,
	}
	for _, r := range rows {
		hybrid := "-"
		if r.Hybrid.Feasible {
			hybrid = fmt.Sprintf("%.3f", r.Hybrid.IterPerSec)
		}
		ckpt := "off"
		if r.Hybrid.Ckpt {
			ckpt = "on"
		}
		karma := "-"
		if r.KARMA.Feasible {
			karma = fmt.Sprintf("%.3f", r.KARMA.IterPerSec)
		}
		cells := []string{
			fmt.Sprintf("%d", r.Config.Hidden),
			fmt.Sprintf("%d", r.Config.Heads),
			fmt.Sprintf("%d", r.Config.Layers),
			fmt.Sprintf("%.1fB", float64(r.Config.Params())/1e9),
			fmt.Sprintf("%d", r.MPGPUs),
			fmt.Sprintf("%d", r.HybridGPUs),
			hybrid,
			ckpt,
			fmt.Sprintf("%d", r.KARMAGPUs),
			karma,
		}
		if withPipe {
			pipe := "-"
			if r.Pipeline != nil && r.Pipeline.Feasible {
				pipe = fmt.Sprintf("%.3f", r.Pipeline.IterPerSec)
			}
			cells = append(cells, pipe)
		}
		t.Rows = append(t.Rows, cells)
	}
	t.Notes = append(t.Notes,
		"PPL column omitted: requires OpenWebText training to convergence; see the equivalence experiment (EXPERIMENTS.md)")
	return t
}

// TableVRow is one global-batch scaling point of Table V.
type TableVRow struct {
	GlobalBatch int          `json:"global_batch"`
	DP          *dist.Result `json:"dp"`    // data parallel: more GPUs, fixed per-GPU batch
	KARMA       *dist.Result `json:"karma"` // KARMA: fixed GPUs, growing per-GPU batch
}

// TableVModel evaluates one model's cost/performance sweep with the
// given backend: data parallelism scales GPUs at the memory-capacity
// batch; KARMA holds 100 GPUs and grows the per-GPU batch out-of-core.
// workers bounds the grid fan-out (sweep.Workers semantics).
func TableVModel(cl hw.Cluster, name string, capacityBatch int, steps int, samples int, ev dist.Evaluator, workers int) ([]TableVRow, error) {
	g := buildGraph(name)
	const karmaGPUs = 100
	cells, err := runGrid(workers, steps, 2, func(ri, mi int) (*dist.Result, error) {
		i := ri + 1
		if mi == 0 {
			return ev.DataParallel(g, cl, karmaGPUs*i, capacityBatch, samples)
		}
		return ev.KARMADataParallel(g, cl, karmaGPUs, capacityBatch*i, samples, dist.KARMAOptions{})
	})
	if err != nil {
		return nil, err
	}
	rows := make([]TableVRow, steps)
	for ri := range rows {
		rows[ri] = TableVRow{
			GlobalBatch: capacityBatch * karmaGPUs * (ri + 1),
			DP:          cells[ri][0],
			KARMA:       cells[ri][1],
		}
	}
	return rows, nil
}

// TableV runs both Table V models: ResNet-50 (12.8K..76.8K samples) and
// ResNet-200 (400..2,400 samples). workers bounds each model's grid
// fan-out.
func TableV(cl hw.Cluster, ev dist.Evaluator, workers int) (map[string][]TableVRow, error) {
	out := map[string][]TableVRow{}
	r50, err := TableVModel(cl, "resnet50", 128, 6, 1_280_000, ev, workers)
	if err != nil {
		return nil, err
	}
	out["resnet50"] = r50
	r200, err := TableVModel(cl, "resnet200", 4, 6, 1_280_000, ev, workers)
	if err != nil {
		return nil, err
	}
	out["resnet200"] = r200
	return out, nil
}

// TableVTable renders one model's sweep with cost/performance normalized
// to the first row (the paper's $/P metric).
func TableVTable(name string, rows []TableVRow) *Table {
	t := &Table{
		ID:    "table5-" + name,
		Title: fmt.Sprintf("cost/performance normalized to the first row, %s", name),
		Headers: []string{
			"global batch", "dp gpus", "dp $/P", "karma gpus", "karma $/P",
		},
	}
	var dpBase, kmBase float64
	for i, r := range rows {
		if i == 0 {
			dpBase, kmBase = r.DP.CostPerf, r.KARMA.CostPerf
		}
		dpCell, kmCell := "-", "-"
		if r.DP.Feasible && dpBase > 0 {
			dpCell = fmt.Sprintf("%.3f", r.DP.CostPerf/dpBase)
		}
		if r.KARMA.Feasible && kmBase > 0 {
			kmCell = fmt.Sprintf("%.3f", r.KARMA.CostPerf/kmBase)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.GlobalBatch),
			fmt.Sprintf("%d", r.DP.GPUs),
			dpCell,
			fmt.Sprintf("%d", r.KARMA.GPUs),
			kmCell,
		})
	}
	t.Notes = append(t.Notes,
		"DP adds GPUs at the capacity batch; KARMA holds GPUs and grows the batch out-of-core")
	return t
}
