package experiments

import (
	"testing"

	"karma/internal/dist"
	"karma/internal/hw"
	"karma/internal/tensor"
	"karma/internal/topo"
)

// The golden tests pin the *orderings* of the reproduced artifacts —
// which method wins where — rather than raw numbers, under BOTH
// evaluator backends. A refactor that shifts a cost model slightly keeps
// them green; one that flips a ranking (the quantity the paper's
// conclusions rest on) fails loudly.

// goldenBackends returns the evaluators the goldens must hold under; the
// Planned instance is shared across subtests so plans are cached once.
func goldenBackends() map[string]dist.Evaluator {
	return map[string]dist.Evaluator{
		"analytic": dist.Analytic{},
		"planned":  dist.NewPlanned(),
	}
}

// TestGoldenFig8MegatronOrdering: at every plotted GPU count of both
// Megatron panels, data-parallel KARMA strictly beats both hybrids and
// the pipeline family, and the phased exchange never meaningfully loses
// to bulk (paper Fig. 8 left/middle). "Meaningfully" carries a 2%
// tolerance: under the per-layer simulation the MP=16 backward phase is
// network-bound, where phased and bulk drain the same collective volume
// and only per-collective latency jitter separates them. The GPipe
// curve is bubble-bound at the panels' per-replica batch of 4 (at most
// 4 micro-batches against mp stages of fill/drain), so it never beats
// the phased hybrid here but stays within 1.5x of the plain one — a
// credible baseline, not a degenerate cell.
func TestGoldenFig8MegatronOrdering(t *testing.T) {
	cl := hw.ABCI()
	panels := []struct {
		cfgIdx int
		gpus   []int
	}{
		{2, []int{128, 512, 2048}}, // 2.5B
		{4, []int{512, 2048}},      // 8.3B
	}
	for name, ev := range goldenBackends() {
		for _, pc := range panels {
			panel, err := Figure8Megatron(cl, pc.cfgIdx, pc.gpus, ev, FamilyOptions{Ckpt: true, Pipeline: true})
			if err != nil {
				t.Fatalf("%s: Figure8Megatron(%d): %v", name, pc.cfgIdx, err)
			}
			for _, row := range panel.Rows {
				for _, m := range panel.Methods {
					if !row.Results[m].Feasible {
						t.Fatalf("%s %s@%d: %s infeasible: %s",
							name, panel.Model, row.GPUs, m, row.Results[m].Reason)
					}
				}
				karma := row.Results["karma-dp"]
				opt := row.Results["mp+dp-opt"]
				plain := row.Results["mp+dp"]
				pipe := row.Results["pipeline"]
				if karma.EpochTime >= opt.EpochTime || karma.EpochTime >= plain.EpochTime {
					t.Errorf("%s %s@%d GPUs: KARMA (%v) does not beat the hybrids (%v opt, %v plain)",
						name, panel.Model, row.GPUs, karma.EpochTime, opt.EpochTime, plain.EpochTime)
				}
				if float64(opt.EpochTime) > 1.02*float64(plain.EpochTime) {
					t.Errorf("%s %s@%d GPUs: phased exchange (%v) loses to bulk (%v) beyond tolerance",
						name, panel.Model, row.GPUs, opt.EpochTime, plain.EpochTime)
				}
				if karma.EpochTime >= pipe.EpochTime {
					t.Errorf("%s %s@%d GPUs: KARMA (%v) does not beat the pipeline (%v)",
						name, panel.Model, row.GPUs, karma.EpochTime, pipe.EpochTime)
				}
				if float64(pipe.EpochTime) < float64(opt.EpochTime) {
					t.Errorf("%s %s@%d GPUs: bubble-bound pipeline (%v) beats the phased hybrid (%v)",
						name, panel.Model, row.GPUs, pipe.EpochTime, opt.EpochTime)
				}
				if float64(pipe.EpochTime) > 1.5*float64(plain.EpochTime) {
					t.Errorf("%s %s@%d GPUs: pipeline (%v) degenerates beyond 1.5x of the plain hybrid (%v)",
						name, panel.Model, row.GPUs, pipe.EpochTime, plain.EpochTime)
				}
			}
		}
	}
}

// TestGoldenFig8TuringOrdering: on the right panel, ZeRO+KARMA is never
// slower than plain KARMA, and both beat the capacity-batch ZeRO
// reference at every plotted GPU count. The 16-stage GPipe curve (at its
// own capacity batch) stays feasible but never beats the tuned ZeRO
// reference — fill/drain at 16 stages is a worse trade than ZeRO's
// overlapped sharded exchange on this machine.
func TestGoldenFig8TuringOrdering(t *testing.T) {
	cl := hw.ABCI()
	for name, ev := range goldenBackends() {
		panel, err := Figure8Turing(cl, []int{512, 2048}, ev, FamilyOptions{Ckpt: true, Pipeline: true})
		if err != nil {
			t.Fatalf("%s: Figure8Turing: %v", name, err)
		}
		for _, row := range panel.Rows {
			zero := row.Results["zero"]
			karma := row.Results["karma-dp"]
			combo := row.Results["zero+karma"]
			pipe := row.Results["pipeline"]
			if !zero.Feasible || !karma.Feasible || !combo.Feasible || !pipe.Feasible {
				t.Fatalf("%s @%d GPUs: infeasible result", name, row.GPUs)
			}
			if combo.EpochTime > karma.EpochTime {
				t.Errorf("%s @%d: ZeRO+KARMA (%v) slower than KARMA (%v)",
					name, row.GPUs, combo.EpochTime, karma.EpochTime)
			}
			if karma.EpochTime >= zero.EpochTime {
				t.Errorf("%s @%d: KARMA (%v) does not beat ZeRO (%v)",
					name, row.GPUs, karma.EpochTime, zero.EpochTime)
			}
			if pipe.EpochTime <= zero.EpochTime {
				t.Errorf("%s @%d: bubble-bound pipeline (%v) beats the tuned ZeRO reference (%v)",
					name, row.GPUs, pipe.EpochTime, zero.EpochTime)
			}
		}
	}
}

// TestGoldenFig8ZeROCalibration asserts the right-panel headline under
// the planned backend: with the ZeRO baseline checkpointed (so it runs
// at its true capacity batch), tuned to its best MP degree, and
// simulated per layer (input-gradient collectives overlapping the
// weight-gradient halves, reduce-scatter behind backward, parameter
// all-gather under forward), the ZeRO/ZeRO+KARMA epoch-time ratio lands
// in a band around the paper's ~1.35x. History: the uncalibrated
// comparison (ZeRO pinned to the combo's tiny per-replica batch) sat at
// ~4.4x, the closed-form capacity-batch fix at ~2.35x, the per-layer
// fp32 hybrid path at ~1.86x; under mixed precision — the regime the
// real Turing-NLG run trained in, whose absence was the documented fp32
// residual — ZeRO gains the fp16 capacity-batch headroom and the ratio
// tightens to ~1.57x. Routing the collectives over the real ABCI
// interconnect (topo.ABCI(): 2 NICs per node instead of the flat ring's
// uniform share, the documented interconnect residual) moves the fp16
// ratio to ~1.46x, toward the paper. The fp32 band [1.0, 2.0], the fp16
// flat band [1.0, 1.6] and the deliberately retuned fp16 abci band
// [1.0, 1.5] lock both the ordering (KARMA wins) and the magnitudes (no
// silent drift back toward the closed-form gap or below parity); the
// bands are recorded in ROADMAP's calibration table.
func TestGoldenFig8ZeROCalibration(t *testing.T) {
	cl := hw.ABCI()
	bands := []struct {
		name     string
		prec     tensor.Precision
		topo     topo.Topology // zero = the seed's flat contended ring
		lo, hi   float64
		minBatch int // ZeRO's capacity global batch floor at 512 GPUs
	}{
		{"fp32", tensor.FP32Training, topo.Topology{}, 1.0, 2.0, 512},
		{"fp16", tensor.MixedFP16, topo.Topology{}, 1.0, 1.6, 1024},
		{"fp16-abci", tensor.MixedFP16, topo.ABCI(), 1.0, 1.5, 1024},
	}
	for _, band := range bands {
		t.Run(band.name, func(t *testing.T) {
			ev := dist.NewPlanned()
			panel, err := Figure8Turing(cl.WithTopology(band.topo), []int{512}, ev, FamilyOptions{Ckpt: true, Precision: band.prec})
			if err != nil {
				t.Fatalf("Figure8Turing: %v", err)
			}
			row := panel.Rows[0]
			zero := row.Results["zero"]
			combo := row.Results["zero+karma"]
			if !zero.Feasible || !combo.Feasible {
				t.Fatalf("infeasible: zero=%v combo=%v", zero, combo)
			}
			if zero.Backend != "planned" || combo.Backend != "planned" {
				t.Fatalf("backend tags %q/%q: the per-layer path silently fell back", zero.Backend, combo.Backend)
			}
			if !zero.Ckpt {
				t.Error("calibrated ZeRO baseline must run checkpointed")
			}
			// The calibrated ZeRO baseline must run its true capacity batch
			// — materially larger than the combo's per-GPU parity, and under
			// fp16 at least double the fp32 headroom.
			if zero.GlobalBatch < band.minBatch {
				t.Errorf("ZeRO global batch %d below its %s capacity floor %d",
					zero.GlobalBatch, band.prec, band.minBatch)
			}
			ratio := float64(zero.EpochTime) / float64(combo.EpochTime)
			t.Logf("%s ZeRO/ZeRO+KARMA epoch ratio at %d GPUs: %.2fx (paper ~1.35x)", band.prec, row.GPUs, ratio)
			if ratio < band.lo || ratio > band.hi {
				t.Errorf("%s epoch ratio %.2fx outside the calibrated band [%.1f, %.1f] (paper ~1.35x)",
					band.prec, ratio, band.lo, band.hi)
			}
		})
	}
}

// TestGoldenTableIVOrdering pins two Table IV shapes under both
// backends: KARMA's iteration rate decreases monotonically with model
// size, and the hybrid-vs-KARMA winner crosses over exactly once — KARMA
// (on half the GPUs) wins the small configurations, the hybrid wins from
// 2.5B up. The pipeline column stays feasible on every row (the family
// always has a memory regime that fits at Table IV's batch).
func TestGoldenTableIVOrdering(t *testing.T) {
	cl := hw.ABCI()
	const wantCrossover = 2 // index of megatron-2.5B
	for name, ev := range goldenBackends() {
		rows, err := TableIV(cl, ev, FamilyOptions{Ckpt: true, Pipeline: true})
		if err != nil {
			t.Fatalf("%s: TableIV: %v", name, err)
		}
		if len(rows) != 5 {
			t.Fatalf("%s: rows = %d", name, len(rows))
		}
		crossover := -1
		prev := 0.0
		for i, r := range rows {
			if !r.Hybrid.Feasible || !r.KARMA.Feasible {
				t.Fatalf("%s %s: infeasible row", name, r.Config.Name)
			}
			if r.Pipeline == nil || !r.Pipeline.Feasible {
				t.Fatalf("%s %s: pipeline column infeasible: %v", name, r.Config.Name, r.Pipeline)
			}
			if i > 0 && r.KARMA.IterPerSec >= prev {
				t.Errorf("%s %s: KARMA rate %.3f did not drop below %.3f",
					name, r.Config.Name, r.KARMA.IterPerSec, prev)
			}
			prev = r.KARMA.IterPerSec
			hybridWins := r.Hybrid.IterPerSec > r.KARMA.IterPerSec
			if hybridWins && crossover == -1 {
				crossover = i
			}
			if !hybridWins && crossover != -1 {
				t.Errorf("%s %s: KARMA re-overtakes the hybrid after the crossover", name, r.Config.Name)
			}
		}
		if crossover != wantCrossover {
			t.Errorf("%s: hybrid overtakes KARMA at config %d, want %d", name, crossover, wantCrossover)
		}
	}
}

// TestGoldenTableVOrdering pins the cost/performance shapes under both
// backends: for ResNet-50 scaling out (DP) ends up cheaper than scaling
// the batch out-of-core (the paper's crossover), while for ResNet-200 —
// whose capacity batch is tiny — KARMA's batch growth stays cheaper
// through the whole sweep.
func TestGoldenTableVOrdering(t *testing.T) {
	cl := hw.ABCI()
	for name, ev := range goldenBackends() {
		sweeps, err := TableV(cl, ev, 0)
		if err != nil {
			t.Fatalf("%s: TableV: %v", name, err)
		}
		for _, mn := range []string{"resnet50", "resnet200"} {
			rows := sweeps[mn]
			if len(rows) != 6 {
				t.Fatalf("%s %s: rows = %d", name, mn, len(rows))
			}
			for i, r := range rows {
				if !r.DP.Feasible || !r.KARMA.Feasible {
					t.Fatalf("%s %s row %d: infeasible", name, mn, i)
				}
			}
			dpBase, kmBase := rows[0].DP.CostPerf, rows[0].KARMA.CostPerf
			dp2, km2 := rows[1].DP.CostPerf/dpBase, rows[1].KARMA.CostPerf/kmBase
			if km2 > dp2*1.25 {
				t.Errorf("%s %s: first OOC step KARMA $/P %.3f strays from DP %.3f", name, mn, km2, dp2)
			}
			dp6, km6 := rows[5].DP.CostPerf/dpBase, rows[5].KARMA.CostPerf/kmBase
			switch mn {
			case "resnet50":
				if km6 <= dp6 {
					t.Errorf("%s resnet50: expected DP to win by 6x batch (dp=%.3f km=%.3f)", name, dp6, km6)
				}
			case "resnet200":
				if km6 >= dp6 {
					t.Errorf("%s resnet200: expected KARMA to stay cheaper at 6x batch (dp=%.3f km=%.3f)", name, dp6, km6)
				}
			}
		}
	}
}
