package experiments

import (
	"fmt"
	"strings"

	"karma/internal/dist"
	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/sweep"
	"karma/internal/tensor"
)

// openWTSamples is the OpenWebText sample count of Table III.
const openWTSamples = 7_200_000

// FamilyOptions configures the baseline families of the scaling panels
// and Table IV: the checkpointing regime and training precision thread
// through to every hybrid evaluation, and Pipeline adds the GPipe-style
// pipeline-parallel family as a fourth curve.
type FamilyOptions struct {
	// Ckpt enables activation checkpointing in the hybrid shards and
	// pipeline stages (the regime real deployments train in).
	Ckpt bool
	// Precision selects fp32 or mixed fp16-with-fp32-master training for
	// every family (dist.HybridOptions.Precision / KARMAOptions.Precision).
	Precision tensor.Precision
	// Pipeline adds the pipeline-parallel baseline to the panels, with
	// stage count matched to the panel's MP degree.
	Pipeline bool
	// PipelineMicro is the micro-batch count per pipeline iteration
	// (clamped to the per-replica batch). Zero means 8.
	PipelineMicro int
	// Workers bounds the goroutines fanning grid points across the panel
	// (sweep.Workers semantics: >= 1 is the bound, anything else means
	// runtime.NumCPU). Results are deterministic for every value: cells
	// land by grid index, not completion order, and the evaluators share
	// singleflight caches, so any worker count renders byte-identically.
	Workers int
}

func (o FamilyOptions) hybrid(phased bool) dist.HybridOptions {
	return dist.HybridOptions{Phased: phased, Checkpoint: o.Ckpt, Precision: o.Precision}
}

func (o FamilyOptions) karma() dist.KARMAOptions {
	return dist.KARMAOptions{Precision: o.Precision}
}

// micro returns the pipeline micro-batch count for a per-replica batch.
func (o FamilyOptions) micro(perReplicaBatch int) int {
	m := o.PipelineMicro
	if m <= 0 {
		m = 8
	}
	if m > perReplicaBatch {
		m = perReplicaBatch
	}
	return m
}

// Fig8Row is one GPU count of one Fig. 8 panel.
type Fig8Row struct {
	GPUs    int                     `json:"gpus"`
	Results map[string]*dist.Result `json:"results"` // keyed by method name
}

// Fig8Panel is one model's scaling sweep.
type Fig8Panel struct {
	Model   string    `json:"model"`
	Methods []string  `json:"methods"`
	Rows    []Fig8Row `json:"rows"`
}

// Figure8Megatron reproduces the left/middle panels: the MP+DP hybrid,
// the hybrid with the optimized (phased) gradient exchange, and
// data-parallel KARMA at GPU parity, all evaluated by ev. cfgIdx selects
// the Table IV configuration (2 = 2.5B, 4 = 8.3B); the per-replica batch
// and MP factor follow Table IV. o.Ckpt enables activation checkpointing
// in the hybrid shards — the regime Megatron-LM actually trains these
// configurations in, and the one the per-layer shard profile needs to
// fit Table IV's per-replica batch on a V100 — o.Precision selects the
// training regime, and o.Pipeline adds a GPipe-style pipeline curve with
// as many stages as the hybrid has MP ways.
func Figure8Megatron(cl hw.Cluster, cfgIdx int, gpusList []int, ev dist.Evaluator, o FamilyOptions) (*Fig8Panel, error) {
	cfgs := model.MegatronConfigs()
	if cfgIdx < 0 || cfgIdx >= len(cfgs) {
		return nil, fmt.Errorf("fig8: bad config index %d", cfgIdx)
	}
	cfg := cfgs[cfgIdx]
	mp := 1 << cfgIdx // Table IV: MP = 1,2,4,8,16
	const perReplicaBatch = 4
	g := model.Transformer(cfg)
	panel := &Fig8Panel{
		Model:   cfg.Name,
		Methods: []string{"mp+dp", "mp+dp-opt", "karma-dp"},
	}
	if o.Pipeline {
		panel.Methods = append(panel.Methods, "pipeline")
	}
	cells, err := runGrid(o.Workers, len(gpusList), len(panel.Methods), func(ri, mi int) (*dist.Result, error) {
		gpus := gpusList[ri]
		switch panel.Methods[mi] {
		case "mp+dp":
			return ev.MegatronHybrid(cfg, cl, mp, gpus, perReplicaBatch, openWTSamples, o.hybrid(false))
		case "mp+dp-opt":
			return ev.MegatronHybrid(cfg, cl, mp, gpus, perReplicaBatch, openWTSamples, o.hybrid(true))
		case "karma-dp":
			return ev.KARMADataParallel(g, cl, gpus, perReplicaBatch, openWTSamples, o.karma())
		default: // pipeline
			return ev.Pipeline(cfg, cl, mp, gpus, perReplicaBatch, o.micro(perReplicaBatch), openWTSamples, o.hybrid(true))
		}
	})
	if err != nil {
		return nil, err
	}
	panel.fill(gpusList, cells)
	return panel, nil
}

// runGrid evaluates a rows x methods grid under the worker bound,
// landing each cell by its grid index so any worker count yields the
// same cells; an error surfaces exactly as the serial row-major loop
// would report it (lowest grid index wins — sweep.Do's contract).
func runGrid(workers, rows, methods int, job func(ri, mi int) (*dist.Result, error)) ([][]*dist.Result, error) {
	out := make([][]*dist.Result, rows)
	for ri := range out {
		out[ri] = make([]*dist.Result, methods)
	}
	err := sweep.Do(workers, rows*methods, func(i int) error {
		ri, mi := i/methods, i%methods
		r, err := job(ri, mi)
		if err != nil {
			return err
		}
		out[ri][mi] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fill materializes the panel rows from the evaluated grid (serially:
// the Results maps are not written from sweep goroutines).
func (p *Fig8Panel) fill(gpusList []int, cells [][]*dist.Result) {
	for ri, gpus := range gpusList {
		row := Fig8Row{GPUs: gpus, Results: map[string]*dist.Result{}}
		for mi, m := range p.Methods {
			row.Results[m] = cells[ri][mi]
		}
		p.Rows = append(p.Rows, row)
	}
}

// ZeROCapacityBatch returns the largest power-of-two per-replica batch
// at which the ZeRO hybrid stays feasible on the cluster, together with
// its evaluation — the operational rule of the ZeRO baseline (maximize
// the per-GPU batch), and the "true global batch" calibration of the
// Fig. 8 right panel: comparing epoch times against an artificially
// small ZeRO batch inflates KARMA's advantage to ~4.5x where the paper
// reports ~1.35x. Under o.Precision == MixedFP16 the capacity batch is
// the fp16 one — the batch headroom the real Turing-NLG run had. When no
// batch fits, the batch-1 infeasible Result is returned so sweeps can
// render the cell; errors are reserved for invalid arguments.
func ZeROCapacityBatch(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus int, ev dist.Evaluator, o FamilyOptions) (int, *dist.Result, error) {
	ho := o.hybrid(true)
	batch := 1
	best, err := ev.ZeRO(cfg, cl, mp, gpus, batch, openWTSamples, ho)
	if err != nil {
		return 0, nil, err
	}
	for b := 2; best.Feasible && b <= 1<<12; b *= 2 {
		r, err := ev.ZeRO(cfg, cl, mp, gpus, b, openWTSamples, ho)
		if err != nil {
			return 0, nil, err
		}
		if !r.Feasible {
			break
		}
		batch, best = b, r
	}
	return batch, best, nil
}

// ZeROBestConfig tunes the ZeRO reference the way a deployment would: it
// sweeps the tensor-parallel degree over the powers of two up to
// Turing-NLG's shipped MP=16 (smaller MP groups span fewer of ABCI's
// 4-GPU nodes and pay cheaper blocking collectives, but need
// checkpointing to fit), takes each at its capacity batch, and keeps the
// fastest feasible epoch. Without checkpointing only MP=16 fits, which
// degenerates to ZeROCapacityBatch.
func ZeROBestConfig(cfg model.TransformerConfig, cl hw.Cluster, gpus int, ev dist.Evaluator, o FamilyOptions) (int, int, *dist.Result, error) {
	// The MP candidates evaluate in parallel (each capacity-batch sweep is
	// inherently serial — every doubling depends on the previous verdict —
	// but the degrees are independent); the winner is then picked in
	// ascending-MP order with strict improvement, exactly the serial
	// scan's tie-breaking.
	mps := []int{2, 4, 8, 16}
	type zcand struct {
		batch int
		r     *dist.Result
	}
	cands, err := sweep.Map(o.Workers, len(mps), func(i int) (zcand, error) {
		mp := mps[i]
		if gpus%mp != 0 || gpus/mp < 2 {
			return zcand{}, nil
		}
		batch, r, err := ZeROCapacityBatch(cfg, cl, mp, gpus, ev, o)
		return zcand{batch: batch, r: r}, err
	})
	if err != nil {
		return 0, 0, nil, err
	}
	var bestMP, bestBatch int
	var best *dist.Result
	for i, c := range cands {
		if c.r != nil && c.r.Feasible && (best == nil || c.r.EpochTime < best.EpochTime) {
			bestMP, bestBatch, best = mps[i], c.batch, c.r
		}
	}
	if best == nil {
		// Nothing fits at any degree: report the shipped MP=16 verdict.
		batch, r, err := ZeROCapacityBatch(cfg, cl, 16, gpus, ev, o)
		return 16, batch, r, err
	}
	return bestMP, bestBatch, best, nil
}

// Figure8Turing reproduces the right panel: ZeRO (hybrid reference, at
// its best MP and capacity batch — see ZeROBestConfig), data-parallel
// KARMA, and KARMA on top of ZeRO for the 17B Turing-NLG, all evaluated
// by ev. o.Ckpt applies activation checkpointing to the ZeRO baseline
// (the regime real ZeRO deployments train in; the calibrated panel),
// o.Precision runs every family at the chosen regime (the fp16 panel is
// the calibration toward the paper's ~1.35x ratio), and o.Pipeline adds
// a 16-stage GPipe curve at its own capacity batch.
func Figure8Turing(cl hw.Cluster, gpusList []int, ev dist.Evaluator, o FamilyOptions) (*Fig8Panel, error) {
	cfg := model.TuringNLG()
	const perReplicaBatch = 2
	const pipeStages = 16 // matches the shipped MP=16 device split
	g := model.Transformer(cfg)
	panel := &Fig8Panel{
		Model:   cfg.Name,
		Methods: []string{"zero", "karma-dp", "zero+karma"},
	}
	if o.Pipeline {
		panel.Methods = append(panel.Methods, "pipeline")
	}
	cells, err := runGrid(o.Workers, len(gpusList), len(panel.Methods), func(ri, mi int) (*dist.Result, error) {
		gpus := gpusList[ri]
		switch panel.Methods[mi] {
		case "zero":
			_, _, zero, err := ZeROBestConfig(cfg, cl, gpus, ev, o)
			return zero, err
		case "karma-dp":
			return ev.KARMADataParallel(g, cl, gpus, perReplicaBatch, openWTSamples, o.karma())
		case "zero+karma":
			return ev.KARMADataParallel(g, cl, gpus, perReplicaBatch, openWTSamples,
				dist.KARMAOptions{ZeROShard: true, Precision: o.Precision})
		default: // pipeline
			micro := o.micro(perReplicaBatch * pipeStages) // capacity sweep floor
			_, pipe, err := dist.PipelineCapacityBatch(cfg, cl, pipeStages, gpus, micro, openWTSamples, ev, o.hybrid(true))
			return pipe, err
		}
	})
	if err != nil {
		return nil, err
	}
	panel.fill(gpusList, cells)
	return panel, nil
}

// Table renders a panel as time-per-epoch hours (the figure's y-axis),
// with a column naming the methods that ran under activation
// checkpointing.
func (p *Fig8Panel) Table() *Table {
	t := &Table{
		ID:      "fig8-" + p.Model,
		Title:   fmt.Sprintf("time per epoch (hours), %s", p.Model),
		Headers: append(append([]string{"gpus"}, p.Methods...), "ckpt"),
	}
	for _, row := range p.Rows {
		cells := []string{fmt.Sprintf("%d", row.GPUs)}
		var ckpt []string
		for _, m := range p.Methods {
			r := row.Results[m]
			if r == nil || !r.Feasible {
				cells = append(cells, "-")
			} else {
				cells = append(cells, fmt.Sprintf("%.1f", float64(r.EpochTime)/3600))
			}
			if r != nil && r.Ckpt {
				ckpt = append(ckpt, m)
			}
		}
		if len(ckpt) == 0 {
			cells = append(cells, "-")
		} else {
			cells = append(cells, strings.Join(ckpt, ","))
		}
		t.Rows = append(t.Rows, cells)
	}
	t.Notes = append(t.Notes,
		"KARMA's global mini-batch is the MP factor times larger at parity (paper Fig. 8 note)")
	return t
}
