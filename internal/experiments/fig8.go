package experiments

import (
	"fmt"

	"karma/internal/dist"
	"karma/internal/hw"
	"karma/internal/model"
)

// openWTSamples is the OpenWebText sample count of Table III.
const openWTSamples = 7_200_000

// Fig8Row is one GPU count of one Fig. 8 panel.
type Fig8Row struct {
	GPUs    int
	Results map[string]*dist.Result // keyed by method name
}

// Fig8Panel is one model's scaling sweep.
type Fig8Panel struct {
	Model   string
	Methods []string
	Rows    []Fig8Row
}

// Figure8Megatron reproduces the left/middle panels: the MP+DP hybrid,
// the hybrid with the optimized (phased) gradient exchange, and
// data-parallel KARMA at GPU parity, all evaluated by ev. cfgIdx selects
// the Table IV configuration (2 = 2.5B, 4 = 8.3B); the per-replica batch
// and MP factor follow Table IV.
func Figure8Megatron(cl hw.Cluster, cfgIdx int, gpusList []int, ev dist.Evaluator) (*Fig8Panel, error) {
	cfgs := model.MegatronConfigs()
	if cfgIdx < 0 || cfgIdx >= len(cfgs) {
		return nil, fmt.Errorf("fig8: bad config index %d", cfgIdx)
	}
	cfg := cfgs[cfgIdx]
	mp := 1 << cfgIdx // Table IV: MP = 1,2,4,8,16
	const perReplicaBatch = 4
	g := model.Transformer(cfg)
	panel := &Fig8Panel{
		Model:   cfg.Name,
		Methods: []string{"mp+dp", "mp+dp-opt", "karma-dp"},
	}
	for _, gpus := range gpusList {
		row := Fig8Row{GPUs: gpus, Results: map[string]*dist.Result{}}
		plain, err := ev.MegatronHybrid(cfg, cl, mp, gpus, perReplicaBatch, openWTSamples, false)
		if err != nil {
			return nil, err
		}
		row.Results["mp+dp"] = plain
		opt, err := ev.MegatronHybrid(cfg, cl, mp, gpus, perReplicaBatch, openWTSamples, true)
		if err != nil {
			return nil, err
		}
		row.Results["mp+dp-opt"] = opt
		karma, err := ev.KARMADataParallel(g, cl, gpus, perReplicaBatch, openWTSamples, dist.KARMAOptions{})
		if err != nil {
			return nil, err
		}
		row.Results["karma-dp"] = karma
		panel.Rows = append(panel.Rows, row)
	}
	return panel, nil
}

// ZeROCapacityBatch returns the largest power-of-two per-replica batch
// at which the ZeRO hybrid stays feasible on the cluster, together with
// its evaluation — the operational rule of the ZeRO baseline (maximize
// the per-GPU batch), and the "true global batch" calibration of the
// Fig. 8 right panel: comparing epoch times against an artificially
// small ZeRO batch inflates KARMA's advantage to ~4.5x where the paper
// reports ~1.35x. When no batch fits, the batch-1 infeasible Result is
// returned so sweeps can render the cell; errors are reserved for
// invalid arguments.
func ZeROCapacityBatch(cfg model.TransformerConfig, cl hw.Cluster, mp, gpus int, ev dist.Evaluator) (int, *dist.Result, error) {
	batch := 1
	best, err := ev.ZeRO(cfg, cl, mp, gpus, batch, openWTSamples)
	if err != nil {
		return 0, nil, err
	}
	for b := 2; best.Feasible && b <= 1<<12; b *= 2 {
		r, err := ev.ZeRO(cfg, cl, mp, gpus, b, openWTSamples)
		if err != nil {
			return 0, nil, err
		}
		if !r.Feasible {
			break
		}
		batch, best = b, r
	}
	return batch, best, nil
}

// Figure8Turing reproduces the right panel: ZeRO (hybrid reference, at
// its capacity batch — see ZeROCapacityBatch), data-parallel KARMA, and
// KARMA on top of ZeRO for the 17B Turing-NLG, all evaluated by ev.
func Figure8Turing(cl hw.Cluster, gpusList []int, ev dist.Evaluator) (*Fig8Panel, error) {
	cfg := model.TuringNLG()
	const mp, perReplicaBatch = 16, 2
	g := model.Transformer(cfg)
	panel := &Fig8Panel{
		Model:   cfg.Name,
		Methods: []string{"zero", "karma-dp", "zero+karma"},
	}
	for _, gpus := range gpusList {
		row := Fig8Row{GPUs: gpus, Results: map[string]*dist.Result{}}
		_, zero, err := ZeROCapacityBatch(cfg, cl, mp, gpus, ev)
		if err != nil {
			return nil, err
		}
		row.Results["zero"] = zero
		karma, err := ev.KARMADataParallel(g, cl, gpus, perReplicaBatch, openWTSamples, dist.KARMAOptions{})
		if err != nil {
			return nil, err
		}
		row.Results["karma-dp"] = karma
		combo, err := ev.KARMADataParallel(g, cl, gpus, perReplicaBatch, openWTSamples, dist.KARMAOptions{ZeROShard: true})
		if err != nil {
			return nil, err
		}
		row.Results["zero+karma"] = combo
		panel.Rows = append(panel.Rows, row)
	}
	return panel, nil
}

// Table renders a panel as time-per-epoch hours (the figure's y-axis).
func (p *Fig8Panel) Table() *Table {
	t := &Table{
		ID:      "fig8-" + p.Model,
		Title:   fmt.Sprintf("time per epoch (hours), %s", p.Model),
		Headers: append([]string{"gpus"}, p.Methods...),
	}
	for _, row := range p.Rows {
		cells := []string{fmt.Sprintf("%d", row.GPUs)}
		for _, m := range p.Methods {
			r := row.Results[m]
			if r == nil || !r.Feasible {
				cells = append(cells, "-")
			} else {
				cells = append(cells, fmt.Sprintf("%.1f", float64(r.EpochTime)/3600))
			}
		}
		t.Rows = append(t.Rows, cells)
	}
	t.Notes = append(t.Notes,
		"KARMA's global mini-batch is the MP factor times larger at parity (paper Fig. 8 note)")
	return t
}
