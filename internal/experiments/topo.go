package experiments

import (
	"fmt"

	"karma/internal/dist"
	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/topo"
)

// This file is the topology sensitivity panel: the Fig. 8 right-panel
// trio (tuned ZeRO, data-parallel KARMA, ZeRO+KARMA) re-evaluated under
// a ladder of interconnect models — the scenario axis the paper's single
// machine could not sweep. The flat row reproduces the calibrated Fig. 8
// numbers exactly (the topo engine's Flat equivalence); the abci row
// routes every collective over Table II's 2-NIC rail-optimized fat tree;
// the fattree rows oversubscribe its leaf uplinks cloud-style.

// TopoLadder returns the interconnect models the sensitivity panel
// sweeps: the seed's flat contended ring, the paper's ABCI fabric, and
// 2:1 / 4:1 oversubscribed fat trees. The zero topology means "flat"
// (the cluster derives it from NetBW).
func TopoLadder() []topo.Topology {
	return []topo.Topology{{}, topo.ABCI(), topo.FatTree(2), topo.FatTree(4)}
}

// topoName renders a ladder entry for table rows and flags.
func topoName(t topo.Topology) string {
	if t.IsZero() {
		return "flat"
	}
	return t.Name
}

// TopoRow is one interconnect model's evaluation of the Turing-NLG trio.
type TopoRow struct {
	// Topo names the interconnect model ("flat", "abci", "fattree:2"...).
	Topo string `json:"topo"`
	// ZeRO is the tuned reference (best MP, capacity batch); KARMA the
	// data-parallel run at per-GPU parity; Combo ZeRO+KARMA.
	ZeRO  *dist.Result `json:"zero"`
	KARMA *dist.Result `json:"karma"`
	Combo *dist.Result `json:"combo"`
	// Ratio is the ZeRO/Combo epoch ratio — the Fig. 8 calibration
	// headline this panel tracks across fabrics.
	Ratio float64 `json:"ratio,omitempty"`
}

// TopologySweep evaluates the Fig. 8 right-panel methods for the 17B
// Turing-NLG at one GPU count under each interconnect model, using the
// given evaluator backend. The trio matches Figure8Turing so the flat
// row is comparable against the calibrated panel.
func TopologySweep(cl hw.Cluster, gpus int, topos []topo.Topology, ev dist.Evaluator, o FamilyOptions) ([]TopoRow, error) {
	cfg := model.TuringNLG()
	const perReplicaBatch = 2 // Figure8Turing's per-GPU parity batch
	g := model.Transformer(cfg)
	clusters := make([]hw.Cluster, len(topos))
	for i, tp := range topos {
		clusters[i] = cl.WithTopology(tp)
	}
	cells, err := runGrid(o.Workers, len(topos), 3, func(ri, mi int) (*dist.Result, error) {
		tcl := clusters[ri]
		var r *dist.Result
		var err error
		switch mi {
		case 0:
			_, _, r, err = ZeROBestConfig(cfg, tcl, gpus, ev, o)
		case 1:
			r, err = ev.KARMADataParallel(g, tcl, gpus, perReplicaBatch, openWTSamples, o.karma())
		default:
			r, err = ev.KARMADataParallel(g, tcl, gpus, perReplicaBatch, openWTSamples,
				dist.KARMAOptions{ZeROShard: true, Precision: o.Precision})
		}
		if err != nil {
			return nil, fmt.Errorf("topo %s: %w", topoName(topos[ri]), err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]TopoRow, len(topos))
	for ri, tp := range topos {
		zero, karma, combo := cells[ri][0], cells[ri][1], cells[ri][2]
		rows[ri] = TopoRow{Topo: topoName(tp), ZeRO: zero, KARMA: karma, Combo: combo}
		if zero.Feasible && combo.Feasible {
			rows[ri].Ratio = float64(zero.EpochTime) / float64(combo.EpochTime)
		}
	}
	return rows, nil
}

// TopoTable renders the sensitivity panel: epoch hours per method and
// the ZeRO/ZeRO+KARMA ratio per interconnect model.
func TopoTable(rows []TopoRow, gpus int, backend string) *Table {
	t := &Table{
		ID:      "topo-sensitivity",
		Title:   fmt.Sprintf("interconnect sensitivity, Turing-NLG 17B at %d GPUs (%s backend)", gpus, backend),
		Headers: []string{"topology", "zero", "karma-dp", "zero+karma", "zero/combo"},
	}
	hours := func(r *dist.Result) string {
		if r == nil || !r.Feasible {
			return "-"
		}
		return fmt.Sprintf("%.1f", float64(r.EpochTime)/3600)
	}
	for _, row := range rows {
		ratio := "-"
		if row.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", row.Ratio)
		}
		t.Rows = append(t.Rows, []string{row.Topo, hours(row.ZeRO), hours(row.KARMA), hours(row.Combo), ratio})
	}
	t.Notes = append(t.Notes,
		"flat reproduces the seed's single contended ring; abci is Table II's 2-NIC rail-optimized fat tree;",
		"fattree:<r> oversubscribes its leaf uplinks r:1 (cloud-style); contention divides each node's NIC",
		"bandwidth among its concurrent shard collectives.")
	return t
}
