package occupancy

import (
	"math"
	"testing"
	"testing/quick"

	"karma/internal/sim"
	"karma/internal/unit"
)

func TestFromBusyIdle(t *testing.T) {
	if got := FromBusyIdle(1, 1); got != 0.5 {
		t.Errorf("occupancy = %v, want 0.5", got)
	}
	if got := FromBusyIdle(0, 0); got != 1 {
		t.Errorf("empty phase occupancy = %v, want 1", got)
	}
	if got := FromBusyIdle(3, 0); got != 1 {
		t.Errorf("no-idle occupancy = %v, want 1", got)
	}
}

func TestFromBusyIdleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	FromBusyIdle(-1, 0)
}

func TestBackwardAllResident(t *testing.T) {
	blocks := []Block{{Proc: 1}, {Proc: 2}, {Proc: 3}}
	est := Backward(blocks, 1)
	if est.Occupancy != 1 || est.Stall != 0 {
		t.Errorf("all-resident should be stall-free: %+v", est)
	}
	if est.Total != 6 {
		t.Errorf("total = %v, want 6", est.Total)
	}
	if est.Theta != -1 {
		t.Errorf("theta = %d, want -1 (Eq. 7 never holds)", est.Theta)
	}
}

func TestBackwardFastLink(t *testing.T) {
	// Transfers are 10x faster than compute: no stalls, Eq. (8)'s 100%
	// branch holds for the whole phase.
	blocks := []Block{
		{Proc: 1, Bytes: 0}, // resident head gives the pipeline a head start
		{Proc: 1, Bytes: 10},
		{Proc: 1, Bytes: 10},
	}
	est := Backward(blocks, 100) // 0.1s per block transfer
	if est.Stall != 0 || est.Occupancy != 1 {
		t.Errorf("fast link should not stall: %+v", est)
	}
	if !PerfectOverlap(blocks, 100) {
		t.Error("PerfectOverlap should hold")
	}
}

func TestBackwardSlowLinkStalls(t *testing.T) {
	// Each transfer takes 10s vs 1s compute: the device is swap-bound.
	blocks := []Block{
		{Proc: 1, Bytes: 10},
		{Proc: 1, Bytes: 10},
		{Proc: 1, Bytes: 10},
	}
	est := Backward(blocks, 1)
	if est.Stall <= 0 {
		t.Fatalf("slow link must stall: %+v", est)
	}
	if est.Theta != 0 {
		t.Errorf("theta = %d, want 0 (stalls from the first block)", est.Theta)
	}
	// Swap-bound: total approaches total transfer time (30s) + last proc.
	if est.Total != 31 {
		t.Errorf("total = %v, want 31", est.Total)
	}
	if est.Occupancy >= 0.5 {
		t.Errorf("occupancy = %v, should be low", est.Occupancy)
	}
}

func TestBackwardResidentPrefixHidesTransfers(t *testing.T) {
	// Two resident blocks (2s compute) hide one 2s transfer completely.
	blocks := []Block{
		{Proc: 1},
		{Proc: 1},
		{Proc: 1, Bytes: 2},
	}
	est := Backward(blocks, 1)
	if est.Stall != 0 {
		t.Errorf("stall = %v, want 0 (transfer hidden)", est.Stall)
	}
	if est.Total != 3 {
		t.Errorf("total = %v, want 3", est.Total)
	}
}

func TestBackwardMatchesSimulator(t *testing.T) {
	// The analytic model must agree with the event simulator on a
	// swap-and-process pipeline (validation of Eqs. (3)-(8)).
	blocks := []Block{
		{Proc: 2},
		{Proc: 1, Bytes: 30},
		{Proc: 2, Bytes: 10},
		{Proc: 1, Bytes: 20},
	}
	const bw = 10 // -> transfers: 3s, 1s, 2s
	est := Backward(blocks, bw)

	var ops []sim.Op
	prevSwap := -1
	for _, b := range blocks {
		if b.Bytes == 0 {
			continue
		}
		deps := []int(nil)
		if prevSwap >= 0 {
			deps = []int{prevSwap}
		}
		ops = append(ops, sim.Op{
			Label: "in", Stream: sim.H2D,
			Duration: unit.TransferTime(b.Bytes, bw, 0), Deps: deps,
		})
		prevSwap = len(ops) - 1
	}
	// Compute chain: each block deps on its swap (if any).
	swapIdx := 0
	for _, b := range blocks {
		var deps []int
		if b.Bytes > 0 {
			deps = append(deps, swapIdx)
			swapIdx++
		}
		ops = append(ops, sim.Op{Label: "proc", Stream: sim.Compute, Duration: b.Proc, Deps: deps})
	}
	//karma:plan-ok low-level stream harness drives sim directly; the op list is built above with explicit deps
	tl, err := sim.Run(ops, 1<<40)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if math.Abs(float64(tl.Makespan-est.Total)) > 1e-9 {
		t.Errorf("analytic total %v != simulated %v", est.Total, tl.Makespan)
	}
}

func TestEq3Available(t *testing.T) {
	in := []unit.Bytes{5, 5, 0}
	proc := []unit.Bytes{2, 0, 4}
	got := Eq3Available(10, in, proc)
	want := []unit.Bytes{10, 7, 2, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("avail[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Floor at zero.
	got = Eq3Available(1, []unit.Bytes{10}, []unit.Bytes{0})
	if got[1] != 0 {
		t.Errorf("avail floors at 0, got %v", got[1])
	}
}

func TestEq3MismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Eq3Available(1, []unit.Bytes{1}, nil)
}

func TestEq5SwappedIn(t *testing.T) {
	if got := Eq5SwappedIn(10, 2, 100); got != 20 {
		t.Errorf("swapped-in = %v, want 20", got)
	}
	// Bounded by availability (the min of Eq. (5)).
	if got := Eq5SwappedIn(10, 2, 5); got != 5 {
		t.Errorf("swapped-in = %v, want 5 (availability bound)", got)
	}
}

func TestResidentSuffix(t *testing.T) {
	payload := []unit.Bytes{4, 4, 4, 4}
	cases := []struct {
		budget unit.Bytes
		want   int
	}{
		{16, 0}, {12, 1}, {8, 2}, {7, 3}, {4, 3}, {3, 4}, {0, 4},
	}
	for _, c := range cases {
		if got := ResidentSuffix(payload, c.budget); got != c.want {
			t.Errorf("ResidentSuffix(budget=%d) = %d, want %d", c.budget, got, c.want)
		}
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(3, 2); got != 1.5 {
		t.Errorf("speedup = %v", got)
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Error("zero denominator should be +Inf")
	}
}

// Property: occupancy is in (0, 1] and total = busy + stall for any
// block configuration.
func TestBackwardInvariants(t *testing.T) {
	f := func(procs, bytes []uint8) bool {
		n := len(procs)
		if len(bytes) < n {
			n = len(bytes)
		}
		if n == 0 {
			return true
		}
		if n > 12 {
			n = 12
		}
		blocks := make([]Block, n)
		for i := 0; i < n; i++ {
			blocks[i] = Block{
				Proc:  unit.Seconds(procs[i]%5) + 1,
				Bytes: unit.Bytes(bytes[i] % 40),
			}
		}
		est := Backward(blocks, 7)
		if est.Occupancy <= 0 || est.Occupancy > 1 {
			return false
		}
		return math.Abs(float64(est.Total-(est.Busy+est.Stall))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more bandwidth never increases total time.
func TestBackwardMonotoneInBandwidth(t *testing.T) {
	f := func(bytes []uint8) bool {
		if len(bytes) == 0 {
			return true
		}
		if len(bytes) > 10 {
			bytes = bytes[:10]
		}
		blocks := make([]Block, len(bytes))
		for i, b := range bytes {
			blocks[i] = Block{Proc: 1, Bytes: unit.Bytes(b)}
		}
		slow := Backward(blocks, 2)
		fast := Backward(blocks, 20)
		return fast.Total <= slow.Total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
