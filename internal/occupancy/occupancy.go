// Package occupancy implements the analytic performance model of paper
// §III-E: device occupancy as a function of buffer availability, swap
// throughput and per-block processing time (Eqs. (1)–(8)). The planner
// uses it as a fast screening objective; the event simulator (sim) is the
// ground truth the model is validated against in tests.
package occupancy

import (
	"math"

	"karma/internal/unit"
)

// FromBusyIdle is Eq. (1): occupancy = busy / (busy + idle).
func FromBusyIdle(busy, idle unit.Seconds) float64 {
	if busy < 0 || idle < 0 {
		panic("occupancy: negative time")
	}
	if busy+idle == 0 {
		return 1
	}
	return float64(busy) / float64(busy+idle)
}

// Block is one schedulable unit in the analytic model.
type Block struct {
	// Proc is the block's processing (compute) time, T_proc(b).
	Proc unit.Seconds
	// Bytes is the buffer payload that must be swapped in before the
	// block can be processed (zero for blocks resident in near memory).
	Bytes unit.Bytes
}

// Estimate is the analytic outcome of a phase.
type Estimate struct {
	// Total is the phase makespan; Busy the aggregated compute time;
	// Stall the idle time waiting for swap-ins.
	Total, Busy, Stall unit.Seconds
	// Occupancy is Eq. (1) over the phase.
	Occupancy float64
	// Theta is the index of the catch-up step of Eq. (7): the first block
	// at which processing overtakes the swap-in pipeline and the device
	// begins to stall. -1 when the device never stalls (the Eq. (7)
	// inequality never holds and occupancy is 1).
	Theta int
	// Arrive is the swap-in completion time per block (0 for resident).
	Arrive []unit.Seconds
}

// Backward evaluates the capacity-based strategy of §III-E2 over one
// processing phase: blocks are processed in order; blocks with
// Bytes == 0 are already resident (the capacity-based strategy keeps the
// tail of the model in near memory); the others stream in FIFO at the
// swap throughput bw (Eq. (4)), overlapped with processing.
//
// Before the catch-up step θ the device runs at full occupancy (the
// second branch of Eq. (8)); afterwards availability follows Eq. (3) and
// stalls appear whenever a block's buffer arrives later than the previous
// block finishes.
func Backward(blocks []Block, bw unit.BytesPerSec) Estimate {
	return BackwardScratch(blocks, bw, make([]unit.Seconds, len(blocks)))
}

// BackwardScratch is Backward with a caller-provided arrival buffer (at
// least len(blocks) long; the returned Estimate's Arrive aliases it), so
// hot loops evaluating many candidate phases allocate nothing.
func BackwardScratch(blocks []Block, bw unit.BytesPerSec, arrive []unit.Seconds) Estimate {
	arrive = arrive[:len(blocks)]
	for i := range arrive {
		arrive[i] = 0
	}
	est := Estimate{Theta: -1, Arrive: arrive}
	if len(blocks) == 0 {
		est.Occupancy = 1
		return est
	}
	// FIFO swap pipeline: arrival time of each non-resident block.
	var transferred unit.Seconds
	for i, b := range blocks {
		if b.Bytes > 0 {
			transferred += unit.TransferTime(b.Bytes, bw, 0)
			est.Arrive[i] = transferred
		}
	}
	var t unit.Seconds // current time (end of previous block's processing)
	for i, b := range blocks {
		start := t
		if est.Arrive[i] > start {
			if est.Theta < 0 {
				est.Theta = i
			}
			est.Stall += est.Arrive[i] - start
			start = est.Arrive[i]
		}
		t = start + b.Proc
		est.Busy += b.Proc
	}
	est.Total = t
	est.Occupancy = FromBusyIdle(est.Busy, est.Stall)
	return est
}

// Eq3Available reproduces Eq. (3)'s buffer-availability recurrence for a
// step trace: avail_j = max(avail_{j-1} - (swappedIn_{j-1} -
// processed_{j-1}), 0), with avail_0 = capacity.
func Eq3Available(capacity unit.Bytes, swappedIn, processed []unit.Bytes) []unit.Bytes {
	if len(swappedIn) != len(processed) {
		panic("occupancy: trace length mismatch")
	}
	out := make([]unit.Bytes, len(swappedIn)+1)
	out[0] = capacity
	for j := 1; j < len(out); j++ {
		v := out[j-1] - (swappedIn[j-1] - processed[j-1])
		if v < 0 {
			v = 0
		}
		out[j] = v
	}
	return out
}

// Eq5SwappedIn is Eq. (5): the buffers swapped in during one block's
// processing window, bounded by the available buffers.
func Eq5SwappedIn(bw unit.BytesPerSec, proc unit.Seconds, avail unit.Bytes) unit.Bytes {
	in := unit.Bytes(float64(bw) * float64(proc))
	if in > avail {
		return avail
	}
	return in
}

// ResidentSuffix returns how many trailing blocks (by processing order of
// the *forward* pass) fit in the given budget — the capacity-based rule
// of §III-E2: "we can know when to stop the swap-out". payload[i] is
// block i's near-memory footprint; the function returns the smallest
// index r such that blocks r..len-1 fit, i.e. blocks [r:] stay resident.
func ResidentSuffix(payload []unit.Bytes, budget unit.Bytes) int {
	var sum unit.Bytes
	for i := len(payload) - 1; i >= 0; i-- {
		sum += payload[i]
		if sum > budget {
			return i + 1
		}
	}
	return 0
}

// PerfectOverlap reports whether the Eq. (7) inequality never holds — the
// whole phase runs at 100% occupancy because processing never catches up
// with the transfer pipeline.
func PerfectOverlap(blocks []Block, bw unit.BytesPerSec) bool {
	return Backward(blocks, bw).Theta < 0
}

// Speedup returns a/b as a ratio, tolerating zero denominators.
func Speedup(a, b unit.Seconds) float64 {
	if b <= 0 {
		return math.Inf(1)
	}
	return float64(a) / float64(b)
}
