//go:build race

// Package race reports whether the binary was built with the race
// detector. Allocation-count tests skip under it: the instrumented
// runtime allocates on its own schedule, so testing.AllocsPerRun stops
// measuring the code under test.
package race

// Enabled is true when the race detector is on.
const Enabled = true
