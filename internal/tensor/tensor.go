// Package tensor provides shape and data-type accounting for the KARMA
// memory model. A TensorSpec describes a tensor symbolically (no data is
// allocated); the profiler and planner use it to compute activation,
// weight and gradient footprints for arbitrary batch sizes (paper §III-D).
package tensor

import (
	"fmt"
	"strings"

	"karma/internal/unit"
)

// DType enumerates the element types the memory model distinguishes.
type DType int

// Supported element types.
const (
	FP32 DType = iota // 4-byte IEEE float, PyTorch default
	FP16              // 2-byte IEEE half, mixed-precision training
	INT8              // 1-byte integer, quantized inference
)

// Size returns the element size in bytes.
func (d DType) Size() unit.Bytes {
	switch d {
	case FP32:
		return 4
	case FP16:
		return 2
	case INT8:
		return 1
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %d", int(d)))
	}
}

// String returns the conventional dtype name.
func (d DType) String() string {
	switch d {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case INT8:
		return "int8"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Precision is a training numeric regime: the element type model tensors
// (weights, gradients, activations) are held in, plus whatever master
// state the optimizer keeps at full precision. The memory model
// distinguishes two regimes:
//
//   - FP32: pure single precision, the seed model's default — every
//     tensor is 4 bytes per element and the optimizer updates the
//     weights in place.
//   - Mixed: fp16 compute with an fp32 master copy — model weights,
//     gradients and activations are 2 bytes per element (halving swap
//     payloads, collective volumes and the activation footprint that
//     bounds the capacity batch), while the optimizer keeps a 4-byte
//     master weight and momentum per parameter (the state ZeRO shards
//     and KARMA's host-side update holds in far memory).
//
// Precision deliberately scales only bytes, never FLOP rates: the
// cluster models hold the device's sustained compute rate constant
// across regimes so precision sweeps isolate the memory effects (batch
// headroom, traffic) the paper's Fig. 8 calibration turns on.
type Precision int

// Supported training regimes.
const (
	// FP32 training: 4-byte weights, gradients, activations; in-place
	// update, no separate master state.
	FP32Training Precision = iota
	// Mixed precision: fp16 weights/gradients/activations with an fp32
	// master copy held by the optimizer.
	MixedFP16
)

// DType returns the element type of model tensors under the regime.
func (p Precision) DType() DType {
	if p == MixedFP16 {
		return FP16
	}
	return FP32
}

// String returns the conventional regime name.
func (p Precision) String() string {
	if p == MixedFP16 {
		return "fp16"
	}
	return "fp32"
}

// PrecisionNames lists the accepted ParsePrecision spellings: "fp16"
// and "mixed" are synonyms for MixedFP16 (the regime is fp16 compute
// with an fp32 master, so both names are in circulation). Flag help and
// error text both derive from this list so the three stay in agreement.
func PrecisionNames() []string { return []string{"fp32", "fp16", "mixed"} }

// ParsePrecision maps the conventional names to regimes.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "fp32":
		return FP32Training, nil
	case "fp16", "mixed":
		return MixedFP16, nil
	default:
		return FP32Training, fmt.Errorf("tensor: unknown precision %q (have %s)", s, strings.Join(PrecisionNames(), ", "))
	}
}

// MasterBytes returns the fp32 master-copy footprint the optimizer holds
// alongside compute-precision weights occupying w bytes: zero under FP32
// (the weights are their own master) and 2w under mixed precision (a
// 4-byte master per 2-byte parameter).
func (p Precision) MasterBytes(w unit.Bytes) unit.Bytes {
	if p == MixedFP16 {
		return 2 * w
	}
	return 0
}

// OptimBytes returns the per-state optimizer buffer footprint (momentum,
// held at fp32 in both regimes) for compute-precision weights occupying
// w bytes: w under FP32 and 2w under mixed precision.
func (p Precision) OptimBytes(w unit.Bytes) unit.Bytes {
	if p == MixedFP16 {
		return 2 * w
	}
	return w
}

// Shape is a tensor extent per dimension. By convention the batch dimension
// is NOT part of a Shape: the planner scales per-sample footprints by the
// mini-batch size, mirroring the paper's projection of memory requirements
// across batch sizes without re-profiling (§III-D).
type Shape []int

// Elems returns the number of elements in one sample, i.e. the product of
// all dimensions. The empty shape is a scalar with one element.
func (s Shape) Elems() int64 {
	n := int64(1)
	for _, d := range s {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", []int(s)))
		}
		n *= int64(d)
	}
	return n
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	out := make(Shape, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the shape as "CxHxW"-style text.
func (s Shape) String() string {
	if len(s) == 0 {
		return "scalar"
	}
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return strings.Join(parts, "x")
}

// CHW builds a channel-major image shape.
func CHW(c, h, w int) Shape { return Shape{c, h, w} }

// Vec builds a 1-D shape.
func Vec(n int) Shape { return Shape{n} }

// Spec describes a tensor symbolically.
type Spec struct {
	Name  string
	Shape Shape
	DType DType
	// PerSample marks tensors whose first implied dimension is the batch
	// (activations, activation gradients). Weight-like tensors are shared
	// across the batch and have PerSample == false.
	PerSample bool
}

// Bytes returns the footprint of the tensor for the given batch size.
// Weight-like tensors ignore the batch size.
func (t Spec) Bytes(batch int) unit.Bytes {
	if batch <= 0 {
		panic(fmt.Sprintf("tensor: non-positive batch %d", batch))
	}
	n := t.Shape.Elems() * int64(t.DType.Size())
	if t.PerSample {
		n *= int64(batch)
	}
	return unit.Bytes(n)
}

// String renders the spec, e.g. "act[64x56x56 fp32 per-sample]".
func (t Spec) String() string {
	kind := "shared"
	if t.PerSample {
		kind = "per-sample"
	}
	return fmt.Sprintf("%s[%s %s %s]", t.Name, t.Shape, t.DType, kind)
}
