package tensor

import (
	"strings"
	"testing"
	"testing/quick"

	"karma/internal/unit"
)

func TestDTypeSize(t *testing.T) {
	if FP32.Size() != 4 || FP16.Size() != 2 || INT8.Size() != 1 {
		t.Errorf("dtype sizes wrong: fp32=%d fp16=%d int8=%d",
			FP32.Size(), FP16.Size(), INT8.Size())
	}
}

func TestDTypeString(t *testing.T) {
	if FP32.String() != "fp32" || FP16.String() != "fp16" || INT8.String() != "int8" {
		t.Error("dtype names wrong")
	}
	if DType(99).String() != "dtype(99)" {
		t.Error("unknown dtype should format its code")
	}
}

func TestUnknownDTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown dtype size")
		}
	}()
	DType(42).Size()
}

func TestShapeElems(t *testing.T) {
	cases := []struct {
		s    Shape
		want int64
	}{
		{Shape{}, 1},
		{Vec(10), 10},
		{CHW(3, 224, 224), 3 * 224 * 224},
		{Shape{64, 56, 56}, 64 * 56 * 56},
	}
	for _, c := range cases {
		if got := c.s.Elems(); got != c.want {
			t.Errorf("%v.Elems() = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestShapeBadDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dimension")
		}
	}()
	Shape{3, 0, 5}.Elems()
}

func TestShapeEqualClone(t *testing.T) {
	a := CHW(3, 224, 224)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone should equal original")
	}
	b[0] = 4
	if a.Equal(b) {
		t.Error("mutating clone must not affect original")
	}
	if a.Equal(Vec(3)) {
		t.Error("different ranks must not be equal")
	}
}

func TestShapeString(t *testing.T) {
	if got := CHW(3, 224, 224).String(); got != "3x224x224" {
		t.Errorf("String = %q", got)
	}
	if got := (Shape{}).String(); got != "scalar" {
		t.Errorf("empty shape String = %q", got)
	}
}

func TestSpecBytes(t *testing.T) {
	act := Spec{Name: "act", Shape: CHW(64, 56, 56), DType: FP32, PerSample: true}
	// 64*56*56*4 bytes per sample.
	per := unit.Bytes(64 * 56 * 56 * 4)
	if got := act.Bytes(1); got != per {
		t.Errorf("Bytes(1) = %d, want %d", got, per)
	}
	if got := act.Bytes(32); got != 32*per {
		t.Errorf("Bytes(32) = %d, want %d", got, 32*per)
	}
	w := Spec{Name: "w", Shape: Shape{64, 3, 7, 7}, DType: FP32}
	if w.Bytes(1) != w.Bytes(128) {
		t.Error("weight tensors must not scale with batch size")
	}
}

func TestSpecBadBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for batch 0")
		}
	}()
	Spec{Shape: Vec(1), DType: FP32}.Bytes(0)
}

func TestSpecString(t *testing.T) {
	s := Spec{Name: "act", Shape: CHW(64, 56, 56), DType: FP32, PerSample: true}
	if got := s.String(); got != "act[64x56x56 fp32 per-sample]" {
		t.Errorf("String = %q", got)
	}
	w := Spec{Name: "w", Shape: Vec(10), DType: FP16}
	if got := w.String(); got != "w[10 fp16 shared]" {
		t.Errorf("String = %q", got)
	}
}

// Property: per-sample footprint scales exactly linearly with batch.
func TestSpecBytesLinearInBatch(t *testing.T) {
	f := func(c, h uint8, batch uint8) bool {
		s := Spec{
			Shape:     Shape{int(c) + 1, int(h) + 1},
			DType:     FP32,
			PerSample: true,
		}
		b := int(batch) + 1
		return s.Bytes(b) == unit.Bytes(b)*s.Bytes(1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Elems is invariant under dimension permutation (product law).
func TestElemsPermutationInvariant(t *testing.T) {
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)+1, int(b)+1, int(c)+1
		return Shape{x, y, z}.Elems() == Shape{z, x, y}.Elems()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestParsePrecision covers the accepted set and the error paths: every
// name PrecisionNames advertises parses, "mixed" is an fp16 synonym, and
// a rejection names exactly the advertised set (the karma-bench
// -precision help derives from the same list, so the three surfaces
// cannot drift apart again).
func TestParsePrecision(t *testing.T) {
	cases := []struct {
		in      string
		want    Precision
		wantErr bool
	}{
		{in: "fp32", want: FP32Training},
		{in: "fp16", want: MixedFP16},
		{in: "mixed", want: MixedFP16},
		{in: "", wantErr: true},
		{in: "fp64", wantErr: true},
		{in: "FP16", wantErr: true}, // names are case-sensitive
		{in: "bf16", wantErr: true},
		{in: "mixed ", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParsePrecision(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParsePrecision(%q): want error, got %v", tc.in, got)
				continue
			}
			for _, name := range PrecisionNames() {
				if !strings.Contains(err.Error(), name) {
					t.Errorf("ParsePrecision(%q) error %q omits accepted name %q", tc.in, err, name)
				}
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePrecision(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParsePrecision(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestPrecisionNamesParse pins the list/parser agreement directly.
func TestPrecisionNamesParse(t *testing.T) {
	for _, name := range PrecisionNames() {
		if _, err := ParsePrecision(name); err != nil {
			t.Errorf("advertised name %q does not parse: %v", name, err)
		}
	}
}
