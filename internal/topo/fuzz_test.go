package topo

import (
	"math"
	"testing"

	"karma/internal/unit"
)

// FuzzTopoRoute holds the routing engine to its structural contract for
// arbitrary valid topologies: every route it emits is loop-free with
// positive finite bandwidth on each hop, and every collective primitive
// costed over it is non-negative and finite. The committed corpus seeds
// the presets and the contended/oversubscribed corners; the nightly job
// lets the fuzzer explore beyond them.
func FuzzTopoRoute(f *testing.F) {
	// Presets and corners.
	f.Add(4, int64(50e9), 1, int64(12.5e9), 1, int64(0), 1.0, 1, int64(1<<20))     // flat
	f.Add(4, int64(50e9), 2, int64(12.5e9), 3, int64(100), 1.0, 4, int64(256<<20)) // abci, contended
	f.Add(4, int64(50e9), 2, int64(12.5e9), 3, int64(100), 4.0, 1, int64(1<<30))   // fattree:4
	f.Add(8, int64(300e9), 4, int64(25e9), 2, int64(500), 2.5, 8, int64(1<<10))    // dense node
	f.Add(1, int64(0), 1, int64(5e9), 1, int64(0), 1.0, 1, int64(0))               // single-device nodes
	f.Fuzz(func(t *testing.T, devices int, intraBW int64, nics int, nicBW int64, hops int, hopLatNs int64, oversub float64, conc int, payload int64) {
		tp := Topology{
			Name:           "fuzz",
			DevicesPerNode: devices,
			IntraBW:        unit.BytesPerSec(intraBW),
			NICs:           nics,
			NICBW:          unit.BytesPerSec(nicBW),
			SwitchHops:     hops,
			HopLatency:     unit.Seconds(hopLatNs) * 1e-9,
			Oversub:        oversub,
		}
		if tp.Validate() != nil {
			t.Skip() // Validate rejects NaN/Inf ratios and every other malformation
		}
		if hops > 64 || conc < 1 || conc > 1<<16 || payload < 0 {
			t.Skip() // cap the fabric depth and contention to plausible hardware
		}
		e := Engine{T: tp, Concurrent: conc}

		inter := e.InterRoute()
		if err := inter.Validate(); err != nil {
			t.Fatalf("inter route of valid topology %+v invalid: %v", tp, err)
		}
		if len(inter.Hops) != tp.SwitchHops {
			t.Fatalf("inter route crosses %d hops, want %d", len(inter.Hops), tp.SwitchHops)
		}
		if tp.DevicesPerNode > 1 {
			if err := e.IntraRoute().Validate(); err != nil {
				t.Fatalf("intra route invalid: %v", err)
			}
		}

		n := unit.Bytes(payload)
		x := Xfer{Latency: 5e-6, Eff: 0.9}
		for name, got := range map[string]unit.Seconds{
			"ring":         e.Ring(n, 16, x),
			"rs":           e.ReduceScatter(n, 16, x),
			"hierarchical": e.Hierarchical(n, 64, x),
			"p2p":          e.PointToPoint(n, x),
		} {
			if got < 0 || math.IsNaN(float64(got)) || math.IsInf(float64(got), 0) {
				t.Fatalf("%s over %+v = %v; want finite non-negative", name, tp, got)
			}
		}
		if th := e.MergeThreshold(16, x); th < 0 {
			t.Fatalf("negative merge threshold %v", th)
		}
	})
}
