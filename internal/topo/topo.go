// Package topo models the cluster interconnect as a hierarchical graph:
// a device tier inside each node (NVLink/PCIe), a node-egress tier of one
// or more NICs (rails), and a switched fabric tier with per-hop latency
// and a leaf-uplink oversubscription factor. The collective cost engine
// (engine.go) routes ring, hierarchical, reduce-scatter/all-gather and
// point-to-point transfers over this graph and accounts for contention
// when concurrent collectives share a node's egress links.
//
// The seed model costed every collective against a single contended flat
// ring over hw.Cluster.NetBW; Flat reproduces those numbers exactly (the
// property tests pin bit-for-bit equivalence), so the presets below are a
// strict generalization: ABCI is Table II's rail-optimized EDR InfiniBand
// fat tree (2 NICs per 4-GPU node), and FatTree asks the oversubscribed
// cloud-style what-if the paper's machine could not.
package topo

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"karma/internal/unit"
)

// Topology describes the interconnect hierarchy of a cluster. The
// intra-node fields are filled in from the owning hw.Node by
// hw.Cluster.Topo(), so presets only specify the inter-node tiers; a
// hand-built Topology may set them directly.
type Topology struct {
	// Name identifies the model ("flat", "abci", "fattree:2", ...).
	Name string

	// DevicesPerNode is the device count sharing one node's egress.
	DevicesPerNode int
	// IntraBW is the device-to-device bandwidth inside a node (NVLink).
	IntraBW unit.BytesPerSec

	// NICs is the number of injection rails per node; NICBW the bandwidth
	// of each. A node's aggregate egress is NICs x NICBW.
	NICs  int
	NICBW unit.BytesPerSec

	// SwitchHops is the number of switch traversals on a node-to-node
	// path: 1 models a single shared switch (the flat seed model), 3 a
	// leaf-spine-leaf fat tree. HopLatency is the port-to-port latency of
	// each traversal beyond the first (the first is folded into the
	// communication backend's per-step latency, matching the seed model).
	SwitchHops int
	HopLatency unit.Seconds

	// Oversub is the leaf-uplink oversubscription ratio (>= 1): paths
	// crossing more than one switch contend for uplinks provisioned at
	// 1/Oversub of the downlink bandwidth. 1 is a non-blocking fabric.
	Oversub float64
}

// IsZero reports whether the topology is unset (hw.Cluster.Topo() then
// derives the flat model from the cluster's legacy NetBW field).
func (t Topology) IsZero() bool { return t == Topology{} }

// Validate reports configuration errors. The intra-node fields may be
// zero (presets before hw.Cluster.Topo() fills them); everything else
// must describe a usable fabric.
func (t Topology) Validate() error {
	if t.DevicesPerNode < 0 || t.IntraBW < 0 {
		return fmt.Errorf("topo: %s: negative intra-node tier (devices=%d intra=%v)", t.Name, t.DevicesPerNode, t.IntraBW)
	}
	if t.DevicesPerNode > 1 && t.IntraBW == 0 {
		return fmt.Errorf("topo: %s: %d devices per node need an intra-node link", t.Name, t.DevicesPerNode)
	}
	if t.NICs < 1 || t.NICBW <= 0 {
		return fmt.Errorf("topo: %s: bad egress tier (%d NICs at %v)", t.Name, t.NICs, t.NICBW)
	}
	if t.SwitchHops < 1 {
		return fmt.Errorf("topo: %s: a node-to-node path crosses at least one switch, got %d", t.Name, t.SwitchHops)
	}
	if !(t.HopLatency >= 0) {
		return fmt.Errorf("topo: %s: bad hop latency %v", t.Name, t.HopLatency)
	}
	if !(t.Oversub >= 1) || math.IsInf(t.Oversub, 0) {
		return fmt.Errorf("topo: %s: oversubscription ratio %g must be a finite value >= 1", t.Name, t.Oversub)
	}
	return nil
}

// NodeBW returns the aggregate injection bandwidth of one node's egress
// tier (all rails together).
func (t Topology) NodeBW() unit.BytesPerSec {
	return unit.BytesPerSec(float64(t.NICs) * float64(t.NICBW))
}

// WithNode returns a copy with the intra-node tier filled in from the
// owning node's shape (hw.Cluster.Topo() calls this so the topology and
// the cluster never disagree about the node).
func (t Topology) WithNode(devices int, intraBW unit.BytesPerSec) Topology {
	t.DevicesPerNode = devices
	t.IntraBW = intraBW
	return t
}

// Flat returns the seed model's degenerate topology: one NIC carrying the
// whole injection bandwidth into a single non-blocking switch with no
// extra hop latency. Collective costs over Flat reproduce the old
// contended-ring closed forms exactly (pinned by the equivalence property
// tests), which is what lets the existing goldens hold across the
// refactor.
func Flat(netBW unit.BytesPerSec) Topology {
	return Topology{Name: "flat", NICs: 1, NICBW: netBW, SwitchHops: 1, Oversub: 1}
}

// ABCI returns the interconnect of the paper's evaluation machine
// (Table II): each 4-GPU node injects over two EDR InfiniBand rails
// (12.5 GB/s each) into a rail-optimized full-bisection fat tree —
// leaf, spine, leaf, at ~100 ns port-to-port per extra hop. Against the
// flat model this doubles the egress a node's concurrent shard
// collectives contend for.
func ABCI() Topology {
	return Topology{
		Name:       "abci",
		NICs:       2,
		NICBW:      12.5 * unit.GBps,
		SwitchHops: 3,
		HopLatency: 100e-9,
		Oversub:    1,
	}
}

// FatTree returns an ABCI-shaped fabric whose leaf uplinks are
// oversubscribed by the given ratio — the cloud-style economy fabric the
// paper's machine could not ask about. FatTree(1) is ABCI.
func FatTree(ratio float64) Topology {
	t := ABCI()
	t.Name = fmt.Sprintf("fattree:%g", ratio)
	t.Oversub = ratio
	return t
}

// Parse maps a -topo flag value to a topology: "flat" (the zero value —
// the cluster derives its legacy single-ring model), "abci", or
// "fattree:<ratio>".
func Parse(s string) (Topology, error) {
	switch {
	case s == "flat" || s == "":
		return Topology{}, nil
	case s == "abci":
		return ABCI(), nil
	case strings.HasPrefix(s, "fattree:"):
		ratio, err := strconv.ParseFloat(strings.TrimPrefix(s, "fattree:"), 64)
		if err != nil || !(ratio >= 1) || math.IsInf(ratio, 0) {
			return Topology{}, fmt.Errorf("topo: bad fat-tree ratio in %q (want fattree:<ratio>, finite ratio >= 1)", s)
		}
		return FatTree(ratio), nil
	default:
		return Topology{}, fmt.Errorf("topo: unknown topology %q (have flat, abci, fattree:<ratio>)", s)
	}
}
