package topo

import (
	"fmt"

	"karma/internal/unit"
)

// Xfer is the communication-backend envelope a route is costed under:
// the per-step software latency and the achieved fraction of link
// bandwidth. It mirrors the performance fields of comm.Backend so the
// topology layer stays free of the collective façade built on top of it.
type Xfer struct {
	Latency unit.Seconds
	Eff     float64
}

// Hop is one link on a route: the bandwidth the route may use on it
// (after contention and oversubscription) and the latency it adds beyond
// the backend's per-step cost.
type Hop struct {
	Name    string
	BW      unit.BytesPerSec
	Latency unit.Seconds
}

// Route is the ordered sequence of links one transfer crosses. A
// transfer is paced by the bottleneck hop and pays every hop's latency.
type Route struct {
	Hops []Hop
}

// Bottleneck returns the narrowest hop bandwidth (0 for an empty route).
func (r Route) Bottleneck() unit.BytesPerSec {
	var bw unit.BytesPerSec
	for i, h := range r.Hops {
		if i == 0 || h.BW < bw {
			bw = h.BW
		}
	}
	return bw
}

// Latency returns the summed hop latency of the route.
func (r Route) Latency() unit.Seconds {
	var l unit.Seconds
	for _, h := range r.Hops {
		l += h.Latency
	}
	return l
}

// Validate reports a malformed route: no hops, a repeated hop (a loop),
// or a hop with non-positive bandwidth or negative latency. The fuzz
// harness holds every route the engine emits to this contract.
func (r Route) Validate() error {
	if len(r.Hops) == 0 {
		return fmt.Errorf("topo: empty route")
	}
	seen := map[string]bool{}
	for _, h := range r.Hops {
		if seen[h.Name] {
			return fmt.Errorf("topo: route revisits hop %q (loop)", h.Name)
		}
		seen[h.Name] = true
		if h.BW <= 0 {
			return fmt.Errorf("topo: hop %q has non-positive bandwidth %v", h.Name, h.BW)
		}
		if h.Latency < 0 {
			return fmt.Errorf("topo: hop %q has negative latency %v", h.Name, h.Latency)
		}
	}
	return nil
}

// Engine routes collectives over a topology. Concurrent is the number of
// collectives simultaneously driving each node's egress links — the
// in-core hybrids run one shard collective per device, so every node
// injects Concurrent rings at once and each gets a 1/Concurrent share.
// Intra-node traffic does not contend: the device tier is a switched
// per-device fabric (NVLink), not a shared bus.
type Engine struct {
	T Topology
	// Concurrent collectives sharing the node egress; <= 0 means 1.
	Concurrent int
}

func (e Engine) conc() float64 {
	if e.Concurrent <= 1 {
		return 1
	}
	return float64(e.Concurrent)
}

// devicesPerNode defends against presets whose intra-node tier was never
// filled in (hw.Cluster.Topo() normally does).
func (e Engine) devicesPerNode() int {
	if e.T.DevicesPerNode < 1 {
		return 1
	}
	return e.T.DevicesPerNode
}

// IntraRoute returns the device-to-device path inside one node.
func (e Engine) IntraRoute() Route {
	return Route{Hops: []Hop{{Name: "nvlink", BW: e.T.IntraBW}}}
}

// InterRoute returns the node-to-node path: the NIC tier at this
// collective's share of the aggregate egress, then one hop per switch
// traversal beyond the first, each paying the port-to-port latency and —
// past the leaf — the oversubscribed uplink share.
func (e Engine) InterRoute() Route {
	share := unit.BytesPerSec(float64(e.T.NodeBW()) / e.conc())
	hops := []Hop{{Name: "nic", BW: share}}
	for h := 2; h <= e.T.SwitchHops; h++ {
		hops = append(hops, Hop{
			Name:    fmt.Sprintf("switch%d", h),
			BW:      unit.BytesPerSec(float64(share) / e.T.Oversub),
			Latency: e.T.HopLatency,
		})
	}
	return Route{Hops: hops}
}

// interCost returns the inter-node route's bottleneck bandwidth and
// summed hop latency without materializing the Route — the only two
// quantities the collective costs read off it. Kept in lockstep with
// InterRoute: the bandwidth comparisons and latency additions happen in
// the same hop order, so every cost is bit-identical to routing the
// materialized form.
func (e Engine) interCost() (unit.BytesPerSec, unit.Seconds) {
	share := unit.BytesPerSec(float64(e.T.NodeBW()) / e.conc())
	bw := share
	var lat unit.Seconds
	for h := 2; h <= e.T.SwitchHops; h++ {
		if u := unit.BytesPerSec(float64(share) / e.T.Oversub); u < bw {
			bw = u
		}
		lat += e.T.HopLatency
	}
	return bw, lat
}

func checkSize(n unit.Bytes) {
	if n < 0 {
		panic(fmt.Sprintf("topo: negative size %d", n))
	}
}

// Ring returns the ring all-reduce time for n bytes among p node-level
// endpoints over the inter-node route: 2(p-1) steps each moving n/p
// bytes across the route's bottleneck and paying its latency.
func (e Engine) Ring(n unit.Bytes, p int, x Xfer) unit.Seconds {
	if p <= 1 || n == 0 {
		return 0
	}
	checkSize(n)
	bw, lat := e.interCost()
	steps := 2 * (p - 1)
	chunk := unit.Bytes(float64(n) / float64(p))
	per := unit.TransferTime(chunk, unit.BytesPerSec(float64(bw)*x.Eff), x.Latency+lat)
	return unit.Seconds(float64(steps) * float64(per))
}

// ReduceScatter returns the time to reduce n bytes and leave each of the
// p endpoints its n/p shard: (p-1) ring steps — half an all-reduce.
func (e Engine) ReduceScatter(n unit.Bytes, p int, x Xfer) unit.Seconds {
	if p <= 1 || n == 0 {
		return 0
	}
	checkSize(n)
	bw, lat := e.interCost()
	chunk := unit.Bytes(float64(n) / float64(p))
	per := unit.TransferTime(chunk, unit.BytesPerSec(float64(bw)*x.Eff), x.Latency+lat)
	return unit.Seconds(float64(p-1) * float64(per))
}

// AllGather returns the time for each endpoint to collect all p shards
// of n total bytes — the same cost structure as ReduceScatter.
func (e Engine) AllGather(n unit.Bytes, p int, x Xfer) unit.Seconds {
	return e.ReduceScatter(n, p, x)
}

// Hierarchical composes an all-reduce over the hierarchy: an intra-node
// reduce over the device tier, a ring over the nodes' inter-node routes,
// and an intra-node broadcast — the standard multi-rail scheme on
// ABCI-like machines. gpus is the total participating device count.
func (e Engine) Hierarchical(n unit.Bytes, gpus int, x Xfer) unit.Seconds {
	if gpus <= 1 || n == 0 {
		return 0
	}
	checkSize(n)
	devs := e.devicesPerNode()
	perNode := devs
	if gpus < perNode {
		perNode = gpus
	}
	nodes := (gpus + devs - 1) / devs
	var t unit.Seconds
	if perNode > 1 {
		// Reduce + broadcast: (perNode-1)/perNode of the payload each way
		// over the intra-node route.
		frac := unit.Bytes(float64(n) * float64(perNode-1) / float64(perNode))
		t += 2 * unit.TransferTime(frac, unit.BytesPerSec(float64(e.T.IntraBW)*x.Eff), x.Latency)
	}
	if nodes > 1 {
		t += e.Ring(n, nodes, x)
	}
	return t
}

// PointToPoint returns the time to move n bytes between two nodes over
// the inter-node route: one message, one backend latency, every switch
// traversal paid.
func (e Engine) PointToPoint(n unit.Bytes, x Xfer) unit.Seconds {
	if n == 0 {
		return 0
	}
	checkSize(n)
	bw, lat := e.interCost()
	return unit.TransferTime(n, unit.BytesPerSec(float64(bw)*x.Eff), x.Latency+lat)
}

// PointToPointIntra returns the time to move n bytes between two devices
// of one node over the device tier.
func (e Engine) PointToPointIntra(n unit.Bytes, x Xfer) unit.Seconds {
	if n == 0 {
		return 0
	}
	checkSize(n)
	return unit.TransferTime(n, unit.BytesPerSec(float64(e.T.IntraBW)*x.Eff), x.Latency)
}

// MergeThreshold returns the payload at which a p-endpoint ring's
// bandwidth term matches its aggregated per-step latency over the
// inter-node route — the Shi et al. grouping rule's merge bound: below
// it, merging blocks into one collective is free.
func (e Engine) MergeThreshold(p int, x Xfer) unit.Bytes {
	steps := 2 * (p - 1)
	if steps <= 0 {
		steps = 2
	}
	bw, lat := e.interCost()
	return unit.Bytes(float64(steps) * float64(x.Latency+lat) * float64(unit.BytesPerSec(float64(bw)*x.Eff)))
}
