package topo

import (
	"math"
	"strings"
	"testing"

	"karma/internal/unit"
)

var nccl = Xfer{Latency: 5e-6, Eff: 0.90}

// abciNode fills the preset's intra-node tier the way hw.Cluster.Topo()
// does for the paper's machine.
func abciNode(t Topology) Topology { return t.WithNode(4, 50*unit.GBps) }

func TestPresetsValidate(t *testing.T) {
	for _, tp := range []Topology{
		abciNode(Flat(12.5 * unit.GBps)),
		abciNode(ABCI()),
		abciNode(FatTree(3)),
	} {
		if err := tp.Validate(); err != nil {
			t.Errorf("%s: %v", tp.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := abciNode(ABCI())
	cases := map[string]func(*Topology){
		"no NICs":        func(tp *Topology) { tp.NICs = 0 },
		"zero NIC bw":    func(tp *Topology) { tp.NICBW = 0 },
		"no switch hops": func(tp *Topology) { tp.SwitchHops = 0 },
		"hop latency":    func(tp *Topology) { tp.HopLatency = -1 },
		"oversub < 1":    func(tp *Topology) { tp.Oversub = 0.5 },
		"oversub NaN":    func(tp *Topology) { tp.Oversub = math.NaN() },
		"oversub Inf":    func(tp *Topology) { tp.Oversub = math.Inf(1) },
		"hop lat NaN":    func(tp *Topology) { tp.HopLatency = unit.Seconds(math.NaN()) },
		"devices < 0":    func(tp *Topology) { tp.DevicesPerNode = -1 },
		"multi-dev node": func(tp *Topology) { tp.IntraBW = 0 },
	}
	for name, mutate := range cases {
		tp := base
		mutate(&tp)
		if err := tp.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestNodeBWAggregatesRails(t *testing.T) {
	if got, want := ABCI().NodeBW(), 25*unit.GBps; got != want {
		t.Errorf("ABCI node bandwidth = %v, want %v (2 EDR rails)", got, want)
	}
	if got := Flat(12.5 * unit.GBps).NodeBW(); got != 12.5*unit.GBps {
		t.Errorf("flat node bandwidth = %v, want the injection bandwidth", got)
	}
}

func TestParse(t *testing.T) {
	if tp, err := Parse("flat"); err != nil || !tp.IsZero() {
		t.Errorf("Parse(flat) = %+v, %v; want zero topology", tp, err)
	}
	if tp, err := Parse("abci"); err != nil || tp.Name != "abci" || tp.NICs != 2 {
		t.Errorf("Parse(abci) = %+v, %v", tp, err)
	}
	tp, err := Parse("fattree:3")
	if err != nil || tp.Oversub != 3 {
		t.Errorf("Parse(fattree:3) = %+v, %v", tp, err)
	}
	for _, bad := range []string{"mesh", "fattree:x", "fattree:0.5", "fattree:nan", "fattree:inf", "fattree:-inf"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestInterRouteHopsAndShares(t *testing.T) {
	e := Engine{T: abciNode(ABCI()), Concurrent: 4}
	r := e.InterRoute()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.Hops) != 3 {
		t.Fatalf("ABCI inter route crosses %d hops, want 3 (nic, leaf->spine, spine->leaf)", len(r.Hops))
	}
	// 2 rails x 12.5 GB/s shared by 4 concurrent collectives.
	if got, want := r.Hops[0].BW, 6.25*unit.GBps; got != want {
		t.Errorf("NIC share = %v, want %v", got, want)
	}
	if got, want := r.Latency(), unit.Seconds(200e-9); got != want {
		t.Errorf("route latency = %v, want %v (two extra switch hops)", got, want)
	}
	if r.Bottleneck() != 6.25*unit.GBps {
		t.Errorf("full-bisection bottleneck = %v, want the NIC share", r.Bottleneck())
	}
}

func TestOversubThrottlesUplinkHops(t *testing.T) {
	e := Engine{T: abciNode(FatTree(4))}
	r := e.InterRoute()
	if got, want := r.Bottleneck(), 25*unit.GBps/4; got != want {
		t.Errorf("4:1 fat-tree bottleneck = %v, want %v", got, want)
	}
	// The NIC hop itself is not oversubscribed.
	if got, want := r.Hops[0].BW, 25*unit.GBps; got != want {
		t.Errorf("NIC hop = %v, want %v", got, want)
	}
}

func TestRingZeroCases(t *testing.T) {
	e := Engine{T: abciNode(ABCI())}
	if e.Ring(1<<20, 1, nccl) != 0 {
		t.Error("single participant needs no exchange")
	}
	if e.Ring(0, 8, nccl) != 0 {
		t.Error("zero payload needs no exchange")
	}
	if e.Hierarchical(1<<20, 1, nccl) != 0 {
		t.Error("one GPU needs no hierarchy")
	}
	if e.PointToPoint(0, nccl) != 0 || e.PointToPointIntra(0, nccl) != 0 {
		t.Error("zero-byte transfer is free")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative payload should panic")
		}
	}()
	e.Ring(-1, 4, nccl)
}

func TestReduceScatterAllGatherHalveRing(t *testing.T) {
	e := Engine{T: abciNode(ABCI()), Concurrent: 2}
	n := unit.Bytes(1 << 28)
	rs := e.ReduceScatter(n, 16, nccl)
	ag := e.AllGather(n, 16, nccl)
	if rs != ag {
		t.Errorf("reduce-scatter %v != all-gather %v", rs, ag)
	}
	if got, want := rs+ag, e.Ring(n, 16, nccl); got != want {
		t.Errorf("rs+ag = %v, want the full all-reduce %v", got, want)
	}
}

func TestABCIRailsBeatFlatShare(t *testing.T) {
	// The seed gave each of a node's 4 concurrent shard collectives
	// NetBW/4; ABCI's two rails double every share, so the contended
	// exchange is strictly faster under the real topology.
	flat := Engine{T: abciNode(Flat(12.5 * unit.GBps)), Concurrent: 4}
	abci := Engine{T: abciNode(ABCI()), Concurrent: 4}
	n := unit.Bytes(256 << 20)
	if f, a := flat.Ring(n, 128, nccl), abci.Ring(n, 128, nccl); a >= f {
		t.Errorf("ABCI ring %v not faster than flat %v", a, f)
	}
}

func TestRouteValidateCatchesLoops(t *testing.T) {
	r := Route{Hops: []Hop{{Name: "nic", BW: 1}, {Name: "nic", BW: 1}}}
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "loop") {
		t.Errorf("repeated hop should be a loop error, got %v", err)
	}
	if err := (Route{}).Validate(); err == nil {
		t.Error("empty route should be invalid")
	}
	if err := (Route{Hops: []Hop{{Name: "x", BW: 0}}}).Validate(); err == nil {
		t.Error("zero-bandwidth hop should be invalid")
	}
}

func TestMergeThresholdGrowsWithEndpoints(t *testing.T) {
	e := Engine{T: abciNode(ABCI())}
	if t2, t64 := e.MergeThreshold(2, nccl), e.MergeThreshold(64, nccl); t64 <= t2 {
		t.Errorf("threshold should grow with ring size: p=2 %v, p=64 %v", t2, t64)
	}
	// Degenerate single-endpoint ring still merges at the two-step bound.
	if e.MergeThreshold(1, nccl) <= 0 {
		t.Error("threshold must stay positive")
	}
}
