package topo

import (
	"math/rand"
	"testing"

	"karma/internal/unit"
)

// These property tests pin the refactor contract of the ROADMAP's
// interconnect lever: (1) the Flat topology reproduces the seed's
// contended-ring closed forms bit-for-bit, so every golden built on the
// old comm package survives the topo rewrite unchanged; (2) the
// hierarchical route never loses to the flat contended device-level ring
// it replaced; (3) collective cost moves the right way along every
// topology axis (rails, oversubscription, contention, payload).

const propIters = 2000

func iters(t *testing.T) int {
	if testing.Short() {
		return 200
	}
	return propIters
}

// --- the seed model's closed forms, reproduced verbatim ---

// seedRingAllReduce is the pre-topo comm.RingAllReduce.
func seedRingAllReduce(n unit.Bytes, p int, bw unit.BytesPerSec, lat unit.Seconds, beff float64) unit.Seconds {
	if p <= 1 || n == 0 {
		return 0
	}
	eff := unit.BytesPerSec(float64(bw) * beff)
	steps := 2 * (p - 1)
	chunk := unit.Bytes(float64(n) / float64(p))
	per := unit.TransferTime(chunk, eff, lat)
	return unit.Seconds(float64(steps)) * per
}

// seedReduceScatter is the pre-topo comm.ReduceScatter.
func seedReduceScatter(n unit.Bytes, p int, bw unit.BytesPerSec, lat unit.Seconds, beff float64) unit.Seconds {
	if p <= 1 || n == 0 {
		return 0
	}
	eff := unit.BytesPerSec(float64(bw) * beff)
	chunk := unit.Bytes(float64(n) / float64(p))
	per := unit.TransferTime(chunk, eff, lat)
	return unit.Seconds(float64(p-1)) * per
}

// seedHierarchical is the pre-topo comm.HierarchicalAllReduce over a
// cluster with the given node shape and injection bandwidth.
func seedHierarchical(n unit.Bytes, devices int, intraBW, netBW unit.BytesPerSec, gpus int, lat unit.Seconds, beff float64) unit.Seconds {
	if gpus <= 1 || n == 0 {
		return 0
	}
	perNode := devices
	if gpus < perNode {
		perNode = gpus
	}
	nodes := (gpus + devices - 1) / devices
	var t unit.Seconds
	if perNode > 1 {
		frac := unit.Bytes(float64(n) * float64(perNode-1) / float64(perNode))
		eff := unit.BytesPerSec(float64(intraBW) * beff)
		t += 2 * unit.TransferTime(frac, eff, lat)
	}
	if nodes > 1 {
		t += seedRingAllReduce(n, nodes, netBW, lat, beff)
	}
	return t
}

// seedPointToPoint is the pre-topo comm.PointToPoint.
func seedPointToPoint(n unit.Bytes, bw unit.BytesPerSec, lat unit.Seconds, beff float64) unit.Seconds {
	if n == 0 {
		return 0
	}
	eff := unit.BytesPerSec(float64(bw) * beff)
	return unit.TransferTime(n, eff, lat)
}

func randXfer(r *rand.Rand) Xfer {
	return Xfer{
		Latency: unit.Seconds(1e-6 + 20e-6*r.Float64()),
		Eff:     0.7 + 0.25*r.Float64(),
	}
}

// TestFlatEquivalenceExact: on a Flat topology the engine's every
// primitive equals the seed closed form bit-for-bit — including the
// contended share (NetBW/Devices) the hybrids' exchange used to hard
// code. This is the backend-equivalence property the acceptance criteria
// name: old ring numbers reproduced exactly.
func TestFlatEquivalenceExact(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < iters(t); i++ {
		x := randXfer(r)
		bw := unit.BytesPerSec(1e9 + 30e9*r.Float64())
		intraBW := unit.BytesPerSec(25e9 + 250e9*r.Float64())
		devices := 1 + r.Intn(8)
		p := 1 + r.Intn(512)
		gpus := 1 + r.Intn(2048)
		n := unit.Bytes(r.Int63n(1 << 30))
		conc := 1 + r.Intn(8)

		flat := Flat(bw).WithNode(devices, intraBW)
		e := Engine{T: flat}
		if got, want := e.Ring(n, p, x), seedRingAllReduce(n, p, bw, x.Latency, x.Eff); got != want {
			t.Fatalf("Ring(%v, %d) = %v, seed %v", n, p, got, want)
		}
		if got, want := e.ReduceScatter(n, p, x), seedReduceScatter(n, p, bw, x.Latency, x.Eff); got != want {
			t.Fatalf("ReduceScatter(%v, %d) = %v, seed %v", n, p, got, want)
		}
		if got, want := e.Hierarchical(n, gpus, x), seedHierarchical(n, devices, intraBW, bw, gpus, x.Latency, x.Eff); got != want {
			t.Fatalf("Hierarchical(%v, %d) = %v, seed %v", n, gpus, got, want)
		}
		if got, want := e.PointToPoint(n, x), seedPointToPoint(n, bw, x.Latency, x.Eff); got != want {
			t.Fatalf("PointToPoint(%v) = %v, seed %v", n, got, want)
		}
		// The contended share: Concurrent collectives over one NIC carry
		// exactly the seed's bw/conc ring.
		ce := Engine{T: flat, Concurrent: conc}
		share := bw / unit.BytesPerSec(float64(conc))
		if got, want := ce.Ring(n, p, x), seedRingAllReduce(n, p, share, x.Latency, x.Eff); got != want {
			t.Fatalf("contended Ring(%v, %d, conc=%d) = %v, seed %v", n, p, conc, got, want)
		}
	}
}

// randTopology draws a hardware-plausible hierarchy: rails no faster in
// aggregate than the intra-node fabric (NVLink outruns the NICs on every
// machine this models).
func randTopology(r *rand.Rand) Topology {
	tp := Topology{
		Name:       "rand",
		NICs:       1 + r.Intn(4),
		NICBW:      unit.BytesPerSec(5e9 + 20e9*r.Float64()),
		SwitchHops: 1 + r.Intn(3),
		HopLatency: unit.Seconds(500e-9 * r.Float64()),
		Oversub:    1 + 3*r.Float64(),
	}
	devices := 2 + r.Intn(7)
	node := float64(tp.NodeBW())
	intra := unit.BytesPerSec(node * (1 + 5*r.Float64()))
	return tp.WithNode(devices, intra)
}

// TestHierarchicalBeatsContendedDeviceRing: for any plausible topology
// (intra-node fabric at least as fast as the aggregate rails) and any
// multi-node payload, the hierarchical route — reduce intra, ring inter
// at full node egress, broadcast intra — never loses to the seed's
// approximation of a flat device-level ring in which every device is a
// ring endpoint contending for its node's egress. Fewer, fatter network
// steps plus NVLink staging dominate.
func TestHierarchicalBeatsContendedDeviceRing(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < iters(t); i++ {
		tp := randTopology(r)
		x := randXfer(r)
		nodes := 2 + r.Intn(255)
		gpus := nodes * tp.DevicesPerNode
		n := unit.Bytes(1 + r.Int63n(1<<30))
		hier := Engine{T: tp}.Hierarchical(n, gpus, x)
		flat := Engine{T: tp, Concurrent: tp.DevicesPerNode}.Ring(n, gpus, x)
		if hier > flat {
			t.Fatalf("topology %+v gpus=%d n=%v: hierarchical %v loses to contended flat ring %v",
				tp, gpus, n, hier, flat)
		}
	}
}

// TestOversubMonotone: a more oversubscribed fabric is never faster, and
// a non-blocking fabric (ratio 1) matches the un-throttled route.
func TestOversubMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < iters(t); i++ {
		tp := randTopology(r)
		tp.SwitchHops = 3 // oversubscription only binds past the leaf
		x := randXfer(r)
		n := unit.Bytes(1 + r.Int63n(1<<28))
		p := 2 + r.Intn(128)
		lo, hi := tp, tp
		lo.Oversub = 1 + 2*r.Float64()
		hi.Oversub = lo.Oversub + 2*r.Float64()
		tLo := Engine{T: lo}.Ring(n, p, x)
		tHi := Engine{T: hi}.Ring(n, p, x)
		if tHi < tLo {
			t.Fatalf("oversub %g ring %v faster than oversub %g ring %v", hi.Oversub, tHi, lo.Oversub, tLo)
		}
	}
}

// TestRailsMonotone: adding NICs never slows a collective down, and
// strictly speeds up a bandwidth-bound one.
func TestRailsMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < iters(t); i++ {
		tp := randTopology(r)
		x := randXfer(r)
		n := unit.Bytes(1 + r.Int63n(1<<28))
		p := 2 + r.Intn(128)
		more := tp
		more.NICs = tp.NICs + 1 + r.Intn(3)
		t1 := Engine{T: tp}.Ring(n, p, x)
		t2 := Engine{T: more}.Ring(n, p, x)
		if t2 > t1 {
			t.Fatalf("%d rails ring %v slower than %d rails %v", more.NICs, t2, tp.NICs, t1)
		}
	}
	// Strict case: a fat payload on one vs two ABCI rails.
	one := abciNode(ABCI())
	one.NICs = 1
	fat := unit.Bytes(512 << 20)
	if t1, t2 := (Engine{T: one}).Ring(fat, 64, nccl), (Engine{T: abciNode(ABCI())}).Ring(fat, 64, nccl); t2 >= t1 {
		t.Errorf("second rail should strictly speed up a bandwidth-bound ring: 1 rail %v, 2 rails %v", t1, t2)
	}
}

// TestContentionMonotone: more collectives sharing the egress never get
// cheaper, and payload cost is monotone in size.
func TestContentionMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < iters(t); i++ {
		tp := randTopology(r)
		x := randXfer(r)
		n := unit.Bytes(1 + r.Int63n(1<<28))
		p := 2 + r.Intn(128)
		k := 1 + r.Intn(8)
		tSole := Engine{T: tp, Concurrent: k}.Ring(n, p, x)
		tMore := Engine{T: tp, Concurrent: k + 1 + r.Intn(4)}.Ring(n, p, x)
		if tMore < tSole {
			t.Fatalf("more contention got cheaper: %v < %v", tMore, tSole)
		}
		bigger := n + unit.Bytes(1+r.Int63n(1<<26))
		sole := Engine{T: tp}
		if sole.Hierarchical(bigger, p*2, x) < sole.Hierarchical(n, p*2, x) {
			t.Fatalf("hierarchical not monotone in payload")
		}
	}
}
