package unit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// relErr is the relative round-trip error of got vs want.
func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// The String methods render with two decimals (one for bandwidth), so
// Parse(String(x)) recovers x only up to formatting precision. The
// bounds below are the worst case just above each prefix boundary
// (e.g. "1.00 KiB" for anything in [1019.1, 1029.1] bytes).
const (
	tolTwoDecimals = 0.01
	tolSeconds     = 0.03 // "%.1f min" at 120 s is the widest bucket
	tolBandwidth   = 0.05 // "%.1f GB/s" at 1 GB/s
)

func TestBytesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		v := Bytes(r.Int63n(1 << uint(1+r.Intn(62))))
		if r.Intn(2) == 0 {
			v = -v
		}
		got, err := ParseBytes(v.String())
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", v.String(), err)
		}
		if relErr(float64(got), float64(v)) > tolTwoDecimals {
			t.Fatalf("round trip %d -> %q -> %d", v, v.String(), got)
		}
	}
}

func TestFLOPsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		v := FLOPs(r.Int63n(1 << uint(1+r.Intn(62))))
		if r.Intn(2) == 0 {
			v = -v
		}
		got, err := ParseFLOPs(v.String())
		if err != nil {
			t.Fatalf("ParseFLOPs(%q): %v", v.String(), err)
		}
		if relErr(float64(got), float64(v)) > tolTwoDecimals {
			t.Fatalf("round trip %d -> %q -> %d", v, v.String(), got)
		}
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		// 10 ns .. ~28 h covers every rendering bucket.
		v := Seconds(math.Pow(10, -8+13*r.Float64()))
		if r.Intn(2) == 0 {
			v = -v
		}
		got, err := ParseSeconds(v.String())
		if err != nil {
			t.Fatalf("ParseSeconds(%q): %v", v.String(), err)
		}
		if relErr(float64(got), float64(v)) > tolSeconds {
			t.Fatalf("round trip %v -> %q -> %v", float64(v), v.String(), float64(got))
		}
	}
}

func TestBytesPerSecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		// 1 B/s .. 1 TB/s; String renders with a single decimal.
		v := BytesPerSec(math.Pow(10, 12*r.Float64()))
		if r.Intn(2) == 0 {
			v = -v
		}
		got, err := ParseBytesPerSec(v.String())
		if err != nil {
			t.Fatalf("ParseBytesPerSec(%q): %v", v.String(), err)
		}
		if relErr(float64(got), float64(v)) > tolBandwidth {
			t.Fatalf("round trip %v -> %q -> %v", float64(v), v.String(), float64(got))
		}
	}
}

func TestFLOPSRateRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		// String truncates through FLOPs(int64), so stay >= 1 KFLOP/s
		// where that truncation is inside the two-decimal tolerance.
		v := FLOPSRate(math.Pow(10, 3+12*r.Float64()))
		if r.Intn(2) == 0 {
			v = -v
		}
		got, err := ParseFLOPSRate(v.String())
		if err != nil {
			t.Fatalf("ParseFLOPSRate(%q): %v", v.String(), err)
		}
		if relErr(float64(got), float64(v)) > tolTwoDecimals {
			t.Fatalf("round trip %v -> %q -> %v", float64(v), v.String(), float64(got))
		}
	}
}

// TestStringMinInt64 is the regression test for the String negation
// overflow: -math.MinInt64 == math.MinInt64, which used to recurse
// forever.
func TestStringMinInt64(t *testing.T) {
	if got := Bytes(math.MinInt64).String(); got != "-8388608.00 TiB" {
		t.Errorf("Bytes(MinInt64) = %q", got)
	}
	if got := FLOPs(math.MinInt64).String(); !strings.HasPrefix(got, "-9223372.04 TFLOP") {
		t.Errorf("FLOPs(MinInt64) = %q", got)
	}
}

func TestParseExtremes(t *testing.T) {
	// MinInt64 renders as exactly -2^63 bytes and parses back exactly.
	got, err := ParseBytes(Bytes(math.MinInt64).String())
	if err != nil {
		t.Fatal(err)
	}
	if got != math.MinInt64 {
		t.Errorf("MinInt64 round trip = %d", got)
	}
	// MaxInt64's rendering rounds up to 2^63; the parser clamps back.
	got, err = ParseBytes(Bytes(math.MaxInt64).String())
	if err != nil {
		t.Fatal(err)
	}
	if got != math.MaxInt64 {
		t.Errorf("MaxInt64 round trip = %d", got)
	}
	if _, err := ParseBytes("99999999999999.00 TiB"); err == nil {
		t.Error("overflowing byte count must not parse")
	}
	if _, err := ParseFLOPs("99999999999.00 TFLOP"); err == nil {
		t.Error("overflowing FLOP count must not parse")
	}
}

func TestParseSpecials(t *testing.T) {
	for _, v := range []Seconds{0, Seconds(math.Inf(1)), Seconds(math.Inf(-1))} {
		got, err := ParseSeconds(v.String())
		if err != nil {
			t.Fatalf("ParseSeconds(%q): %v", v.String(), err)
		}
		if got != v {
			t.Errorf("%q parsed to %v, want %v", v.String(), float64(got), float64(v))
		}
	}
	nan, err := ParseSeconds(Seconds(math.NaN()).String())
	if err != nil {
		t.Fatalf("NaN seconds: %v", err)
	}
	if !math.IsNaN(float64(nan)) {
		t.Errorf("NaN round trip = %v", float64(nan))
	}
	if got, err := ParseBytes(Bytes(0).String()); err != nil || got != 0 {
		t.Errorf("zero bytes round trip = %v, %v", got, err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"", "12", "12 parsecs", "twelve GiB", "1 2 GiB", "1.0GiB",
	}
	for _, c := range cases {
		if _, err := ParseBytes(c); err == nil {
			t.Errorf("ParseBytes(%q) should fail", c)
		}
		if _, err := ParseSeconds(c); err == nil {
			t.Errorf("ParseSeconds(%q) should fail", c)
		}
	}
	if _, err := ParseBytesPerSec("16.0 GiB"); err == nil {
		t.Error("bandwidth parser must reject byte units")
	}
	if _, err := ParseFLOPSRate("14.70 TFLOP"); err == nil {
		t.Error("rate parser must reject work units")
	}
}
