package unit

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file is the inverse of the String methods: parsers for the
// "<number> <unit>" renderings they emit ("16.00 GiB", "1.52 ms",
// "14.70 TFLOP/s"). Round-tripping loses only the formatting precision
// (two decimals, one for bandwidth), which the property tests in
// property_test.go bound. The parsers accept exactly the unit suffixes
// the String methods produce.

// parseQuantity splits "<number> <unit>" and applies the unit's
// multiplier from the table.
func parseQuantity(s string, units map[string]float64) (float64, error) {
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) != 2 {
		return 0, fmt.Errorf("want \"<number> <unit>\", got %q", s)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", fields[0])
	}
	mult, ok := units[fields[1]]
	if !ok {
		return 0, fmt.Errorf("unknown unit %q", fields[1])
	}
	return v * mult, nil
}

// maxI64 is 2^63 as a float64 — the first value outside int64 range
// (math.MaxInt64 itself is not exactly representable; 2^63 is).
const maxI64 = float64(1 << 63)

// toInt64 range-checks and rounds a parsed magnitude into int64. The
// 2^63 edge — MaxInt64's own rendering rounds up to it — clamps back.
func toInt64(v float64) (int64, error) {
	if v > maxI64 || v < -maxI64 || math.IsNaN(v) {
		return 0, fmt.Errorf("out of int64 range")
	}
	if v >= maxI64 {
		return math.MaxInt64, nil
	}
	return int64(math.Round(v)), nil
}

var byteUnits = map[string]float64{
	"B": 1, "KiB": float64(KiB), "MiB": float64(MiB),
	"GiB": float64(GiB), "TiB": float64(TiB),
}

// ParseBytes parses a Bytes.String rendering, e.g. "16.00 GiB".
func ParseBytes(s string) (Bytes, error) {
	v, err := parseQuantity(s, byteUnits)
	if err != nil {
		return 0, fmt.Errorf("unit: parsing %q as bytes: %v", s, err)
	}
	n, err := toInt64(v)
	if err != nil {
		return 0, fmt.Errorf("unit: parsing %q as bytes: %v", s, err)
	}
	return Bytes(n), nil
}

var flopUnits = map[string]float64{
	"FLOP": 1, "KFLOP": float64(KFLOP), "MFLOP": float64(MFLOP),
	"GFLOP": float64(GFLOP), "TFLOP": float64(TFLOP),
}

// ParseFLOPs parses a FLOPs.String rendering, e.g. "14.70 TFLOP".
func ParseFLOPs(s string) (FLOPs, error) {
	v, err := parseQuantity(s, flopUnits)
	if err != nil {
		return 0, fmt.Errorf("unit: parsing %q as FLOPs: %v", s, err)
	}
	n, err := toInt64(v)
	if err != nil {
		return 0, fmt.Errorf("unit: parsing %q as FLOPs: %v", s, err)
	}
	return FLOPs(n), nil
}

var flopsRateUnits = map[string]float64{
	"FLOP/s": 1, "KFLOP/s": float64(KFLOP), "MFLOP/s": float64(MFLOP),
	"GFLOP/s": float64(GFLOP), "TFLOP/s": float64(TFLOP),
}

// ParseFLOPSRate parses a FLOPSRate.String rendering, e.g. "14.70 TFLOP/s".
func ParseFLOPSRate(s string) (FLOPSRate, error) {
	v, err := parseQuantity(s, flopsRateUnits)
	if err != nil {
		return 0, fmt.Errorf("unit: parsing %q as a FLOP rate: %v", s, err)
	}
	return FLOPSRate(v), nil
}

var bandwidthUnits = map[string]float64{
	"B/s": 1, "KB/s": float64(KBps), "MB/s": float64(MBps), "GB/s": float64(GBps),
}

// ParseBytesPerSec parses a BytesPerSec.String rendering, e.g. "16.0 GB/s".
func ParseBytesPerSec(s string) (BytesPerSec, error) {
	v, err := parseQuantity(s, bandwidthUnits)
	if err != nil {
		return 0, fmt.Errorf("unit: parsing %q as bandwidth: %v", s, err)
	}
	return BytesPerSec(v), nil
}

var secondsUnits = map[string]float64{
	"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1, "min": 60, "h": 3600,
}

// ParseSeconds parses a Seconds.String rendering, e.g. "1.52 ms" or
// "3.40 h". The "+Inf s" and "NaN s" specials round-trip too.
func ParseSeconds(s string) (Seconds, error) {
	v, err := parseQuantity(s, secondsUnits)
	if err != nil {
		return 0, fmt.Errorf("unit: parsing %q as seconds: %v", s, err)
	}
	return Seconds(v), nil
}
