// Package unit provides typed quantities (bytes, FLOPs, bandwidth, time)
// used throughout the KARMA performance model, together with parsing and
// human-readable formatting helpers.
//
// All simulator time is carried as float64 seconds (type Seconds) rather
// than time.Duration: epoch-scale experiments (Fig. 8 of the paper) exceed
// the nanosecond-resolution int64 range comfortably, and float64 keeps the
// arithmetic in the analytic model exact enough for the qualitative
// assertions the test suite makes.
package unit

import (
	"fmt"
	"math"
)

// Bytes is a memory size in bytes.
type Bytes int64

// Common byte quantities.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
	TiB Bytes = 1 << 40
)

// String renders the size with a binary prefix, e.g. "16.00 GiB".
func (b Bytes) String() string {
	switch v := float64(b); {
	case b < 0:
		if -b == b { // math.MinInt64: negation overflows to itself
			return fmt.Sprintf("%.2f TiB", v/float64(TiB))
		}
		return "-" + (-b).String()
	case b >= TiB:
		return fmt.Sprintf("%.2f TiB", v/float64(TiB))
	case b >= GiB:
		return fmt.Sprintf("%.2f GiB", v/float64(GiB))
	case b >= MiB:
		return fmt.Sprintf("%.2f MiB", v/float64(MiB))
	case b >= KiB:
		return fmt.Sprintf("%.2f KiB", v/float64(KiB))
	default:
		return fmt.Sprintf("%d B", int64(b))
	}
}

// FLOPs counts floating-point operations (work, not rate).
type FLOPs int64

// Common FLOP quantities.
const (
	KFLOP FLOPs = 1e3
	MFLOP FLOPs = 1e6
	GFLOP FLOPs = 1e9
	TFLOP FLOPs = 1e12
)

// String renders the operation count with an SI prefix, e.g. "14.70 TFLOP".
func (f FLOPs) String() string {
	switch v := float64(f); {
	case f < 0:
		if -f == f { // math.MinInt64: negation overflows to itself
			return fmt.Sprintf("%.2f TFLOP", v/float64(TFLOP))
		}
		return "-" + (-f).String()
	case f >= TFLOP:
		return fmt.Sprintf("%.2f TFLOP", v/float64(TFLOP))
	case f >= GFLOP:
		return fmt.Sprintf("%.2f GFLOP", v/float64(GFLOP))
	case f >= MFLOP:
		return fmt.Sprintf("%.2f MFLOP", v/float64(MFLOP))
	case f >= KFLOP:
		return fmt.Sprintf("%.2f KFLOP", v/float64(KFLOP))
	default:
		return fmt.Sprintf("%d FLOP", int64(f))
	}
}

// FLOPSRate is a compute throughput in FLOP/s.
type FLOPSRate float64

// String renders the rate, e.g. "14.7 TFLOP/s".
func (r FLOPSRate) String() string {
	return fmt.Sprintf("%s/s", FLOPs(r).String())
}

// BytesPerSec is a transfer or memory bandwidth.
type BytesPerSec float64

// Common bandwidth quantities (decimal, matching vendor datasheets:
// PCIe Gen3 x16 = 16 GB/s, NVLink = 50 GB/s as in Table II).
const (
	KBps BytesPerSec = 1e3
	MBps BytesPerSec = 1e6
	GBps BytesPerSec = 1e9
)

// String renders the bandwidth, e.g. "16.0 GB/s".
func (b BytesPerSec) String() string {
	switch {
	case b < 0:
		return "-" + (-b).String()
	case b >= GBps:
		return fmt.Sprintf("%.1f GB/s", float64(b/GBps))
	case b >= MBps:
		return fmt.Sprintf("%.1f MB/s", float64(b/MBps))
	case b >= KBps:
		return fmt.Sprintf("%.1f KB/s", float64(b/KBps))
	default:
		return fmt.Sprintf("%.1f B/s", float64(b))
	}
}

// Seconds is a duration or point in simulated time.
type Seconds float64

// String renders the time with an adaptive unit, e.g. "1.52 ms" or "3.4 h".
func (s Seconds) String() string {
	v := float64(s)
	switch {
	case math.IsInf(v, 0) || math.IsNaN(v):
		return fmt.Sprintf("%v s", v)
	case v < 0:
		return "-" + Seconds(-v).String()
	case v == 0:
		return "0 s"
	case v < 1e-6:
		return fmt.Sprintf("%.2f ns", v*1e9)
	case v < 1e-3:
		return fmt.Sprintf("%.2f us", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.2f ms", v*1e3)
	case v < 120:
		return fmt.Sprintf("%.2f s", v)
	case v < 2*3600:
		return fmt.Sprintf("%.1f min", v/60)
	default:
		return fmt.Sprintf("%.2f h", v/3600)
	}
}

// TransferTime returns how long moving n bytes over bandwidth bw takes,
// including a fixed per-transfer latency. A non-positive bandwidth yields
// +Inf (an unusable link), mirroring Eq. (4)'s min-throughput semantics.
func TransferTime(n Bytes, bw BytesPerSec, latency Seconds) Seconds {
	if n < 0 {
		panic(fmt.Sprintf("unit: negative transfer size %d", n))
	}
	if bw <= 0 {
		return Seconds(math.Inf(1))
	}
	return latency + Seconds(float64(n)/float64(bw))
}

// ComputeTime returns how long executing f FLOPs at rate r takes.
// A non-positive rate yields +Inf.
func ComputeTime(f FLOPs, r FLOPSRate) Seconds {
	if f < 0 {
		panic(fmt.Sprintf("unit: negative FLOP count %d", f))
	}
	if r <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(f) / float64(r))
}
