package unit

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{KiB, "1.00 KiB"},
		{16 * GiB, "16.00 GiB"},
		{3 * MiB / 2, "1.50 MiB"},
		{2 * TiB, "2.00 TiB"},
		{-KiB, "-1.00 KiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFLOPsString(t *testing.T) {
	cases := []struct {
		in   FLOPs
		want string
	}{
		{0, "0 FLOP"},
		{999, "999 FLOP"},
		{KFLOP, "1.00 KFLOP"},
		{14700 * GFLOP, "14.70 TFLOP"},
		{-MFLOP, "-1.00 MFLOP"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("FLOPs(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBandwidthString(t *testing.T) {
	if got := (16 * GBps).String(); got != "16.0 GB/s" {
		t.Errorf("16 GBps = %q", got)
	}
	if got := (BytesPerSec(1500)).String(); got != "1.5 KB/s" {
		t.Errorf("1500 B/s = %q", got)
	}
}

func TestSecondsString(t *testing.T) {
	cases := []struct {
		in   Seconds
		want string
	}{
		{0, "0 s"},
		{1.52e-3, "1.52 ms"},
		{2.5e-6, "2.50 us"},
		{3e-9, "3.00 ns"},
		{1.5, "1.50 s"},
		{600, "10.0 min"},
		{3 * 3600, "3.00 h"},
		{-1.5, "-1.50 s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Seconds(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestTransferTime(t *testing.T) {
	// 16 GB over 16 GB/s with zero latency is exactly 1 second.
	got := TransferTime(Bytes(16e9), 16*GBps, 0)
	if math.Abs(float64(got)-1.0) > 1e-12 {
		t.Errorf("TransferTime = %v, want 1s", got)
	}
	// Latency is additive.
	got = TransferTime(Bytes(16e9), 16*GBps, 0.5)
	if math.Abs(float64(got)-1.5) > 1e-12 {
		t.Errorf("TransferTime with latency = %v, want 1.5s", got)
	}
	// Zero bandwidth means the link is unusable.
	if !math.IsInf(float64(TransferTime(1, 0, 0)), 1) {
		t.Error("TransferTime with zero bandwidth should be +Inf")
	}
}

func TestTransferTimeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative size")
		}
	}()
	TransferTime(-1, GBps, 0)
}

func TestComputeTime(t *testing.T) {
	got := ComputeTime(14700*GFLOP, FLOPSRate(14.7e12))
	if math.Abs(float64(got)-1.0) > 1e-9 {
		t.Errorf("ComputeTime = %v, want 1s", got)
	}
	if !math.IsInf(float64(ComputeTime(1, 0)), 1) {
		t.Error("ComputeTime with zero rate should be +Inf")
	}
}

func TestComputeTimeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative FLOPs")
		}
	}()
	ComputeTime(-5, FLOPSRate(1))
}

// Property: transfer time is monotone in size and antitone in bandwidth.
func TestTransferTimeMonotone(t *testing.T) {
	f := func(a, b uint32, bw uint32) bool {
		lo, hi := Bytes(a), Bytes(a)+Bytes(b)
		rate := BytesPerSec(bw) + 1
		return TransferTime(lo, rate, 0) <= TransferTime(hi, rate, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(n uint32, bw1, bw2 uint32) bool {
		slow := BytesPerSec(bw1) + 1
		fast := slow + BytesPerSec(bw2)
		return TransferTime(Bytes(n), fast, 0) <= TransferTime(Bytes(n), slow, 0)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// Property: formatting never returns the empty string and is sign-symmetric.
func TestStringNonEmpty(t *testing.T) {
	f := func(v int64) bool {
		return Bytes(v).String() != "" && FLOPs(v).String() != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		s := Seconds(v).String()
		return s != "" && (v >= 0 || strings.HasPrefix(s, "-"))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}
