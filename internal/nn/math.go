package nn

import "math"

// exp64 and log64 delegate to the standard library. They are isolated
// here so the numeric substrate has a single seam for transcendental
// functions (the only operations whose bit patterns could vary if the
// platform's libm differed; Go's math is pure Go and deterministic).
func exp64(x float64) float64 { return math.Exp(x) }
func log64(x float64) float64 { return math.Log(x) }
