package nn

import "fmt"

// Arena is the two-tier memory model: a bounded near memory (the
// simulated device) backed by unbounded far memory (the host). Evicting a
// tensor physically moves its buffer to the far store and leaves the
// tensor data-less, so any computation touching a non-resident buffer
// fails loudly — the executor must schedule every access, exactly like a
// real out-of-core runtime.
type Arena struct {
	capacity int64
	used     int64
	far      map[*Tensor][]float32
	held     map[*Tensor]bool
	// moved counts bytes transferred in either direction (swap traffic).
	moved int64
}

// NewArena builds an arena with the given near-memory capacity in bytes.
func NewArena(capacity int64) *Arena {
	if capacity <= 0 {
		panic("nn: non-positive arena capacity")
	}
	return &Arena{capacity: capacity, far: map[*Tensor][]float32{}, held: map[*Tensor]bool{}}
}

// Used returns resident bytes; Capacity the limit; Moved the cumulative
// swap traffic.
func (a *Arena) Used() int64     { return a.used }
func (a *Arena) Capacity() int64 { return a.capacity }
func (a *Arena) Moved() int64    { return a.moved }

// Hold registers a resident tensor, charging its bytes against capacity.
func (a *Arena) Hold(t *Tensor) error {
	if a.held[t] {
		return nil
	}
	if t.Data == nil {
		return fmt.Errorf("nn: holding a non-resident tensor")
	}
	if a.used+t.Bytes() > a.capacity {
		return fmt.Errorf("nn: near memory exhausted: %d + %d > %d", a.used, t.Bytes(), a.capacity)
	}
	a.used += t.Bytes()
	a.held[t] = true
	return nil
}

// Evict moves a held tensor's buffer to far memory (swap-out).
func (a *Arena) Evict(t *Tensor) {
	if !a.held[t] {
		panic("nn: evicting a tensor the arena does not hold")
	}
	a.far[t] = t.Data
	a.moved += t.Bytes()
	a.used -= int64(len(t.Data)) * 4
	t.Data = nil
	delete(a.held, t)
}

// Drop discards a held tensor's buffer without preserving it (the
// recompute policy: the values will be rematerialized by replay).
func (a *Arena) Drop(t *Tensor) {
	if !a.held[t] {
		panic("nn: dropping a tensor the arena does not hold")
	}
	a.used -= t.Bytes()
	t.Data = nil
	delete(a.held, t)
}

// Fetch restores an evicted tensor (swap-in), charging capacity again.
func (a *Arena) Fetch(t *Tensor) error {
	data, ok := a.far[t]
	if !ok {
		return fmt.Errorf("nn: fetching a tensor that is not in far memory")
	}
	if a.used+int64(len(data))*4 > a.capacity {
		return fmt.Errorf("nn: near memory exhausted on fetch: %d + %d > %d",
			a.used, int64(len(data))*4, a.capacity)
	}
	t.Data = data
	delete(a.far, t)
	a.moved += t.Bytes()
	a.used += t.Bytes()
	a.held[t] = true
	return nil
}

// Release forgets a held tensor (its backward consumer is done). The
// buffer stays usable; it simply no longer counts against near memory.
func (a *Arena) Release(t *Tensor) {
	if !a.held[t] {
		return
	}
	a.used -= t.Bytes()
	delete(a.held, t)
}

// Resident reports whether the arena holds the tensor.
func (a *Arena) Resident(t *Tensor) bool { return a.held[t] }

// InFar reports whether the tensor's buffer lives in far memory.
func (a *Arena) InFar(t *Tensor) bool {
	_, ok := a.far[t]
	return ok
}

// Reset clears all bookkeeping between steps (buffers referenced by
// tensors are untouched).
func (a *Arena) Reset() {
	a.used = 0
	a.far = map[*Tensor][]float32{}
	a.held = map[*Tensor]bool{}
}
