package nn

import (
	"bytes"
	"strings"
	"testing"
)

// TestCheckpointRestartBitwise reproduces §IV-C's mitigation exactly:
// training split by a checkpoint/restart must equal uninterrupted
// training bit for bit (weights AND momentum round-trip).
func TestCheckpointRestartBitwise(t *testing.T) {
	const total, splitAt = 30, 12
	run := func(m *Sequential, opt *SGD, from, to int) {
		arena := NewArena(bigArena)
		e, err := NewExec(m, arena, allKeep(len(m.Layers)))
		if err != nil {
			t.Fatal(err)
		}
		data := NewRNG(77)
		// Re-derive the stream deterministically per step index.
		_ = data
		for s := from; s < to; s++ {
			r := NewRNG(uint64(800 + s))
			x, labels := synth(r, 8, 16, 4)
			if _, err := e.Step(x, labels, opt); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Uninterrupted reference.
	ref := mlp(1)
	refOpt := NewSGD(0.05, 0.9)
	run(ref, refOpt, 0, total)

	// Split run: train, checkpoint, restore into a FRESH model+optimizer,
	// continue.
	a := mlp(1)
	aOpt := NewSGD(0.05, 0.9)
	run(a, aOpt, 0, splitAt)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, a, aOpt); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	b := mlp(99) // different init: restore must overwrite everything
	bOpt := NewSGD(0.05, 0.9)
	if err := LoadCheckpoint(&buf, b, bOpt); err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	run(b, bOpt, splitAt, total)

	rp, bp := ref.Params(), b.Params()
	for i := range rp {
		if !rp[i].Equal(bp[i]) {
			t.Fatalf("parameter %d differs after checkpoint/restart", i)
		}
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	m := mlp(1)
	opt := NewSGD(0.1, 0)
	if err := LoadCheckpoint(strings.NewReader("nope"), m, opt); err == nil {
		t.Error("garbage header should fail")
	}
	// Wrong architecture: fewer tensors.
	var buf bytes.Buffer
	small := NewSequential(NewDense("d", 2, 2, NewRNG(1)))
	if err := SaveCheckpoint(&buf, small, NewSGD(0.1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := LoadCheckpoint(&buf, m, opt); err == nil {
		t.Error("architecture mismatch should fail")
	}
	// Truncated stream.
	var buf2 bytes.Buffer
	if err := SaveCheckpoint(&buf2, m, opt); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf2.Bytes()[:buf2.Len()/2])
	if err := LoadCheckpoint(trunc, mlp(1), NewSGD(0.1, 0)); err == nil {
		t.Error("truncated checkpoint should fail")
	}
}

func TestElasticTrainSurvivesFailures(t *testing.T) {
	const workers, steps = 4, 20
	master := mlp(5)
	replicas := make([]*Sequential, workers)
	for w := range replicas {
		replicas[w] = mlp(uint64(60 + w))
	}
	batchFn := func(step, worker int) (*Tensor, []int) {
		r := NewRNG(uint64(9000 + worker)) // fixed per-worker batch: memorization
		return synth(r, 8, 16, 4)
	}
	res, err := ElasticTrain(master, replicas, steps, batchFn, ParallelConfig{
		Workers: workers, ArenaBytes: bigArena,
		Policies: allKeep(len(master.Layers)),
		LR:       0.05, Momentum: 0.9,
	}, FailureSchedule{5: 1, 12: 2})
	if err != nil {
		t.Fatalf("ElasticTrain: %v", err)
	}
	if len(res.WorkersAtStep) != steps {
		t.Fatalf("steps recorded = %d", len(res.WorkersAtStep))
	}
	if res.WorkersAtStep[0] != 4 || res.WorkersAtStep[6] != 3 || res.WorkersAtStep[steps-1] != 1 {
		t.Errorf("pool sizes wrong: %v", res.WorkersAtStep)
	}
	// Training still learns through the failures.
	if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Errorf("elastic training did not learn: %v -> %v",
			res.Losses[0], res.Losses[len(res.Losses)-1])
	}
}

func TestElasticTrainPoolExhaustion(t *testing.T) {
	master := mlp(5)
	replicas := []*Sequential{mlp(6)}
	batchFn := func(step, worker int) (*Tensor, []int) {
		r := NewRNG(1)
		return synth(r, 4, 16, 4)
	}
	_, err := ElasticTrain(master, replicas, 5, batchFn, ParallelConfig{
		Workers: 1, ArenaBytes: bigArena,
		Policies: allKeep(len(master.Layers)),
		LR:       0.05,
	}, FailureSchedule{2: 1})
	if err == nil {
		t.Error("empty pool should fail")
	}
}

func TestElasticNoFailuresMatchesSequentialReference(t *testing.T) {
	// With no failures, elastic training is exactly the ordered
	// data-parallel semantics.
	const workers, steps = 3, 8
	batchFn := func(step, worker int) (*Tensor, []int) {
		r := NewRNG(uint64(4000 + step*workers + worker))
		return synth(r, 4, 16, 4)
	}
	master := mlp(1)
	replicas := []*Sequential{mlp(2), mlp(3), mlp(4)}
	if _, err := ElasticTrain(master, replicas, steps, batchFn, ParallelConfig{
		Workers: workers, ArenaBytes: bigArena,
		Policies: allKeep(5), LR: 0.05, Momentum: 0.9,
	}, nil); err != nil {
		t.Fatal(err)
	}

	// TrainDataParallel with identical inputs must agree bitwise.
	master2 := mlp(1)
	replicas2 := []*Sequential{mlp(12), mlp(13), mlp(14)}
	if _, err := TrainDataParallel(master2, replicas2, steps, batchFn, ParallelConfig{
		Workers: workers, ArenaBytes: bigArena,
		Policies: allKeep(5), LR: 0.05, Momentum: 0.9,
	}); err != nil {
		t.Fatal(err)
	}
	a, b := master.Params(), master2.Params()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("parameter %d: elastic(no failures) != data-parallel", i)
		}
	}
}
