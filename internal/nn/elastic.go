package nn

import "fmt"

// Elastic data parallelism. The paper argues (§II-B, Table I) that
// out-of-core data parallelism is the fault-tolerant option: when a
// worker dies, the pool can shrink and training continues — no model
// shard is lost because every worker holds the whole model (out-of-core).
// Model-parallel hybrids cannot do this: losing one shard-holder loses
// the model.
//
// ElasticTrain implements that behaviour on the real substrate: a
// failure schedule removes workers at given steps; remaining workers
// re-partition the batches and continue from the shared master state.

// FailureSchedule maps a step index to the number of workers that fail
// at the *start* of that step.
type FailureSchedule map[int]int

// ElasticResult reports an elastic run.
type ElasticResult struct {
	Losses []float32
	// WorkersAtStep records the live pool size per step.
	WorkersAtStep []int
}

// ElasticTrain trains like TrainDataParallel but survives worker
// failures: at each step the first `alive` workers participate; the
// gradient average always uses the live count, so the optimizer sees a
// well-formed (smaller-batch) step rather than corrupt data. Training
// fails only when the pool empties.
func ElasticTrain(master *Sequential, replicas []*Sequential, steps int, batch BatchFunc, cfg ParallelConfig, failures FailureSchedule) (*ElasticResult, error) {
	if cfg.Workers != len(replicas) {
		return nil, fmt.Errorf("nn: %d replicas for %d workers", len(replicas), cfg.Workers)
	}
	alive := cfg.Workers
	res := &ElasticResult{}
	opt := NewSGD(cfg.LR, cfg.Momentum)

	for step := 0; step < steps; step++ {
		if dead := failures[step]; dead > 0 {
			alive -= dead
		}
		if alive <= 0 {
			return res, fmt.Errorf("nn: worker pool exhausted at step %d", step)
		}
		res.WorkersAtStep = append(res.WorkersAtStep, alive)

		// One synchronous step over the live pool (sequentially ordered
		// reduction — same semantics as TrainDataParallel's coordinator).
		perWorker := make([][]*Tensor, alive)
		var meanLoss float32
		for w := 0; w < alive; w++ {
			replicas[w].CloneWeightsFrom(master)
			arena := NewArena(cfg.ArenaBytes)
			e, err := NewExec(replicas[w], arena, cfg.Policies)
			if err != nil {
				return res, err
			}
			x, labels := batch(step, w)
			loss, err := e.ForwardBackward(x, labels)
			if err != nil {
				return res, fmt.Errorf("worker %d: %w", w, err)
			}
			meanLoss += loss
			gs := replicas[w].Grads()
			cl := make([]*Tensor, len(gs))
			for i, g := range gs {
				cl[i] = g.Clone()
			}
			perWorker[w] = cl
		}
		inv := 1 / float32(alive)
		avg := make([]*Tensor, len(perWorker[0]))
		for gi := range avg {
			sum := perWorker[0][gi].Clone()
			for w := 1; w < alive; w++ {
				for j, v := range perWorker[w][gi].Data {
					sum.Data[j] += v
				}
			}
			for j := range sum.Data {
				sum.Data[j] *= inv
			}
			avg[gi] = sum
		}
		opt.Step(master.Params(), avg)
		res.Losses = append(res.Losses, meanLoss*inv)
	}
	return res, nil
}
