// Package nn is a real (numeric, float32) neural-network training
// substrate with an out-of-core executor: dense/conv layers with exact
// backpropagation, SGD with momentum, a two-tier memory arena that
// enforces a near-memory capacity by physically moving activation buffers
// to far memory, and an in-process data-parallel trainer with phased
// gradient exchange and host-side weight updates.
//
// Its purpose is the paper's §IV-D claim: out-of-core execution (and the
// multi-GPU CPU-update pipeline) changes where tensors live, not the
// math. The tests prove the strong version — bitwise-identical weights
// against in-core training — which substitutes for the accuracy and
// perplexity runs the paper performs on ImageNet/OpenWebText.
package nn

import "fmt"

// Tensor is a dense float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("nn: non-positive dimension %d", d))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Bytes returns the buffer size in bytes.
func (t *Tensor) Bytes() int64 { return int64(len(t.Data)) * 4 }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Equal reports exact (bitwise) equality of shape and data.
func (t *Tensor) Equal(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) || len(t.Data) != len(o.Data) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	for i := range t.Data {
		if t.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}

// RNG is a small deterministic linear congruential generator used for
// weight initialization and synthetic data. It is fully specified here so
// results are reproducible across platforms (math/rand's stream is also
// stable, but a local definition keeps the substrate self-contained).
type RNG struct{ state uint64 }

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed*6364136223846793005 + 1442695040888963407} }

// Uint64 advances the generator.
func (r *RNG) Uint64() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	x := r.state
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Normalish returns a zero-mean value with unit-ish variance (sum of
// uniforms; exact distribution is irrelevant, determinism is not).
func (r *RNG) Normalish() float32 {
	return (r.Float32()+r.Float32()+r.Float32())*2 - 3
}

// Intn returns a uniform integer in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("nn: Intn on non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// FillNormal initializes the tensor with scaled pseudo-normal values.
func (t *Tensor) FillNormal(r *RNG, scale float32) {
	for i := range t.Data {
		t.Data[i] = r.Normalish() * scale
	}
}
