package nn

import "fmt"

// MaxPool2D is a 2x2/stride-2 max pooling layer over {batch, C, H, W}.
type MaxPool2D struct {
	name   string
	savedX *Tensor
	argmax []int // flat input index selected per output element
}

// NewMaxPool2D builds the pooling layer.
func NewMaxPool2D(name string) *MaxPool2D { return &MaxPool2D{name: name} }

// Name implements Layer.
func (l *MaxPool2D) Name() string { return l.name }

// Forward implements Layer.
func (l *MaxPool2D) Forward(x *Tensor) *Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: %s: want NCHW input, got %v", l.name, x.Shape))
	}
	batch, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("nn: %s: odd spatial extent %dx%d", l.name, h, w))
	}
	l.savedX = x
	oh, ow := h/2, w/2
	y := NewTensor(batch, c, oh, ow)
	l.argmax = make([]int, y.Len())
	for b := 0; b < batch; b++ {
		for ci := 0; ci < c; ci++ {
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					best := -1
					var bv float32
					for di := 0; di < 2; di++ {
						for dj := 0; dj < 2; dj++ {
							idx := ((b*c+ci)*h+2*i+di)*w + 2*j + dj
							if best < 0 || x.Data[idx] > bv {
								best, bv = idx, x.Data[idx]
							}
						}
					}
					oi := ((b*c+ci)*oh+i)*ow + j
					y.Data[oi] = bv
					l.argmax[oi] = best
				}
			}
		}
	}
	return y
}

// Backward implements Layer: the gradient routes to the argmax inputs.
func (l *MaxPool2D) Backward(dy *Tensor) *Tensor {
	x := l.savedX
	dx := NewTensor(x.Shape...)
	for oi, g := range dy.Data {
		dx.Data[l.argmax[oi]] += g
	}
	return dx
}

// Params implements Layer.
func (l *MaxPool2D) Params() []*Tensor { return nil }

// Grads implements Layer.
func (l *MaxPool2D) Grads() []*Tensor { return nil }

// Saved implements Layer.
func (l *MaxPool2D) Saved() []*Tensor { return []*Tensor{l.savedX} }

var _ Layer = (*MaxPool2D)(nil)
