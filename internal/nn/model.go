package nn

import "fmt"

// Sequential is a linear chain of layers — the executor's model form.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a model from layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Params returns all trainable tensors in layer order.
func (m *Sequential) Params() []*Tensor {
	var out []*Tensor
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads returns all gradient tensors in layer order.
func (m *Sequential) Grads() []*Tensor {
	var out []*Tensor
	for _, l := range m.Layers {
		out = append(out, l.Grads()...)
	}
	return out
}

// ZeroGrads clears all gradient accumulators.
func (m *Sequential) ZeroGrads() {
	for _, g := range m.Grads() {
		for i := range g.Data {
			g.Data[i] = 0
		}
	}
}

// CloneWeightsFrom copies parameter values from another model of the same
// architecture.
func (m *Sequential) CloneWeightsFrom(o *Sequential) {
	mp, op := m.Params(), o.Params()
	if len(mp) != len(op) {
		panic("nn: architecture mismatch")
	}
	for i := range mp {
		if len(mp[i].Data) != len(op[i].Data) {
			panic("nn: parameter shape mismatch")
		}
		copy(mp[i].Data, op[i].Data)
	}
}

// SoftmaxCrossEntropy computes the mean loss over the batch and the
// logits gradient for integer class labels.
func SoftmaxCrossEntropy(logits *Tensor, labels []int) (float32, *Tensor) {
	batch := logits.Shape[0]
	classes := logits.Len() / batch
	if len(labels) != batch {
		panic(fmt.Sprintf("nn: %d labels for batch %d", len(labels), batch))
	}
	grad := NewTensor(logits.Shape...)
	var loss float32
	inv := 1 / float32(batch)
	for b := 0; b < batch; b++ {
		row := logits.Data[b*classes : (b+1)*classes]
		grow := grad.Data[b*classes : (b+1)*classes]
		// Stable softmax.
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float32
		for j, v := range row {
			e := exp32(v - max)
			grow[j] = e
			sum += e
		}
		y := labels[b]
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: label %d out of %d classes", y, classes))
		}
		p := grow[y] / sum
		loss += -log32(p) * inv
		for j := range grow {
			grow[j] = (grow[j]/sum - oneHot(j, y)) * inv
		}
	}
	return loss, grad
}

func oneHot(j, y int) float32 {
	if j == y {
		return 1
	}
	return 0
}

// exp32 and log32 are float32 wrappers; the math package operates in
// float64, which is fine — determinism matters, not precision.
func exp32(x float32) float32 { return float32(exp64(float64(x))) }
func log32(x float32) float32 { return float32(log64(float64(x))) }

// SGD is stochastic gradient descent with classical momentum:
// v ← μ·v + g;  w ← w − lr·v. The same Step runs on the "device" in
// conventional training and on the host in the KARMA pipeline — the math
// is identical, which is the point of §IV-D.
type SGD struct {
	LR, Momentum float32
	vel          map[*Tensor][]float32
}

// NewSGD builds an optimizer.
func NewSGD(lr, momentum float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: map[*Tensor][]float32{}}
}

// Step applies one update to params given grads (parallel slices).
func (s *SGD) Step(params, grads []*Tensor) {
	if len(params) != len(grads) {
		panic("nn: params/grads mismatch")
	}
	for i, p := range params {
		g := grads[i]
		v, ok := s.vel[p]
		if !ok {
			v = make([]float32, len(p.Data))
			s.vel[p] = v
		}
		for j := range p.Data {
			v[j] = s.Momentum*v[j] + g.Data[j]
			p.Data[j] -= s.LR * v[j]
		}
	}
}
