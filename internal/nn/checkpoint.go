package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Checkpoint/restart support. The paper's large-scale runs could not hold
// the scheduler long enough for full epochs; they "split the epoch into
// separate runs at which we checkpoint/restart the model state" (§IV-C).
// This file provides the exact-state serialization that makes the split
// bit-transparent: weights AND optimizer momentum round-trip, so a
// train/checkpoint/restore/train sequence equals uninterrupted training.

const ckptMagic = uint32(0x4b41524d) // "KARM"

// SaveCheckpoint serializes the model parameters and the optimizer's
// momentum state.
func SaveCheckpoint(w io.Writer, m *Sequential, opt *SGD) error {
	params := m.Params()
	if err := binary.Write(w, binary.LittleEndian, ckptMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(p.Data))); err != nil {
			return err
		}
		if err := writeFloats(w, p.Data); err != nil {
			return err
		}
		vel := opt.velocity(p)
		if err := writeFloats(w, vel); err != nil {
			return err
		}
	}
	return nil
}

// LoadCheckpoint restores parameters and momentum saved by
// SaveCheckpoint into a model of the same architecture.
func LoadCheckpoint(r io.Reader, m *Sequential, opt *SGD) error {
	var magic, count uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("nn: checkpoint header: %w", err)
	}
	if magic != ckptMagic {
		return fmt.Errorf("nn: not a checkpoint (magic %#x)", magic)
	}
	params := m.Params()
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	if int(count) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d tensors, model has %d", count, len(params))
	}
	for _, p := range params {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return err
		}
		if int(n) != len(p.Data) {
			return fmt.Errorf("nn: tensor size %d, checkpoint has %d", len(p.Data), n)
		}
		if err := readFloats(r, p.Data); err != nil {
			return err
		}
		vel := opt.velocity(p)
		if err := readFloats(r, vel); err != nil {
			return err
		}
	}
	return nil
}

// velocity returns (allocating if needed) the momentum buffer of p.
func (s *SGD) velocity(p *Tensor) []float32 {
	v, ok := s.vel[p]
	if !ok {
		v = make([]float32, len(p.Data))
		s.vel[p] = v
	}
	return v
}

func writeFloats(w io.Writer, data []float32) error {
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader, data []float32) error {
	buf := make([]byte, 4*len(data))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}
