package nn

import "fmt"

// Policy is the per-layer out-of-core strategy for the layer's saved
// input activation (mirroring the planner's block policies).
type Policy int

// Layer policies.
const (
	// Keep leaves the activation resident between forward and backward.
	Keep Policy = iota
	// Swap evicts the activation to far memory after the forward pass and
	// fetches it back for backward.
	Swap
	// Recompute drops the activation and rematerializes it during
	// backward by replaying the forward pass from the nearest restorable
	// tensor (run-based replay, as in the planner).
	Recompute
)

// Exec runs a Sequential model under a memory arena and per-layer
// policies — the numeric twin of the plan-and-simulate pipeline. An
// all-Keep policy with a large arena is exactly conventional in-core
// training; any valid policy mix must produce bitwise-identical results
// (§IV-D), which the tests assert.
type Exec struct {
	Model    *Sequential
	Arena    *Arena
	Policies []Policy
	// OnLayerBackward, when set, fires after each layer's backward pass
	// with the layer index — the hook the data-parallel trainer uses for
	// phased gradient exchange.
	OnLayerBackward func(layer int)

	// chain holds t_0 = input, t_i = output of layer i-1 for the current
	// step.
	chain []*Tensor
}

// NewExec validates and builds an executor.
func NewExec(m *Sequential, arena *Arena, policies []Policy) (*Exec, error) {
	if len(policies) != len(m.Layers) {
		return nil, fmt.Errorf("nn: %d policies for %d layers", len(policies), len(m.Layers))
	}
	for i, p := range policies {
		if p < Keep || p > Recompute {
			return nil, fmt.Errorf("nn: layer %d: unknown policy %d", i, p)
		}
	}
	if len(policies) > 0 && policies[0] == Recompute {
		return nil, fmt.Errorf("nn: layer 0 cannot recompute: dropping the step input is unrecoverable")
	}
	return &Exec{Model: m, Arena: arena, Policies: policies}, nil
}

// ForwardBackward runs one forward+backward pass, accumulating parameter
// gradients. The optimizer step is separate so distributed trainers can
// interpose the gradient exchange.
func (e *Exec) ForwardBackward(x *Tensor, labels []int) (float32, error) {
	m := e.Model
	e.Arena.Reset()
	m.ZeroGrads()
	e.chain = make([]*Tensor, len(m.Layers)+1)
	e.chain[0] = x
	if err := e.Arena.Hold(x); err != nil {
		return 0, err
	}

	// Forward: layer i consumes t_i, produces t_{i+1}; afterwards t_i is
	// disposed per the layer's policy.
	for i, l := range m.Layers {
		out := l.Forward(e.chain[i])
		e.chain[i+1] = out
		if err := e.Arena.Hold(out); err != nil {
			return 0, err
		}
		switch e.Policies[i] {
		case Swap:
			e.Arena.Evict(e.chain[i])
		case Recompute:
			e.Arena.Drop(e.chain[i])
		}
	}

	logits := e.chain[len(m.Layers)]
	loss, grad := SoftmaxCrossEntropy(logits, labels)
	e.Arena.Release(logits)

	// Backward: layer i needs t_i (its saved input); restore it per
	// policy, then free it once consumed.
	dy := grad
	for i := len(m.Layers) - 1; i >= 0; i-- {
		if err := e.restore(i); err != nil {
			return 0, err
		}
		dy = m.Layers[i].Backward(dy)
		e.Arena.Release(e.chain[i])
		if e.OnLayerBackward != nil {
			e.OnLayerBackward(i)
		}
	}
	return loss, nil
}

// restore makes t_i (layer i's saved input) resident.
func (e *Exec) restore(i int) error {
	t := e.chain[i]
	if e.Arena.Resident(t) {
		return nil
	}
	if e.Arena.InFar(t) {
		return e.Arena.Fetch(t)
	}
	if t.Data != nil {
		// Released but still materialized (e.g. the step input after an
		// all-Keep forward): re-hold it.
		return e.Arena.Hold(t)
	}
	// Dropped: replay the run. Walk back to the nearest tensor that is
	// materialized or fetchable — the run's boundary checkpoint, which in
	// the swap-interleaved schedule may itself arrive from far memory.
	s := i
	for s > 0 && e.chain[s].Data == nil && !e.Arena.InFar(e.chain[s]) {
		s--
	}
	base := e.chain[s]
	if base.Data == nil {
		if err := e.Arena.Fetch(base); err != nil {
			return err
		}
	} else if !e.Arena.Resident(base) {
		if err := e.Arena.Hold(base); err != nil {
			return err
		}
	}
	// Replay layers s..i-1 in forward order, rematerializing the chain.
	for j := s; j < i; j++ {
		out := e.Model.Layers[j].Forward(e.chain[j])
		// Forward allocated a fresh buffer with identical values; graft
		// it onto the dropped chain tensor so downstream backward sees
		// the same object the layers saved.
		e.chain[j+1].Data = out.Data
		if err := e.Arena.Hold(e.chain[j+1]); err != nil {
			return err
		}
	}
	return nil
}

// Step runs forward+backward and applies the optimizer locally (the
// conventional single-device training loop).
func (e *Exec) Step(x *Tensor, labels []int, opt *SGD) (float32, error) {
	loss, err := e.ForwardBackward(x, labels)
	if err != nil {
		return 0, err
	}
	opt.Step(e.Model.Params(), e.Model.Grads())
	return loss, nil
}
