package nn

import "fmt"

// Layer is a differentiable layer with real parameters.
//
// Forward must store whatever backward needs in saved tensors exposed by
// Saved(); the out-of-core executor evicts and restores those buffers
// through the arena, and the recompute path replays Forward to
// rematerialize them.
type Layer interface {
	Name() string
	// Forward computes the layer output for a batch-major input.
	Forward(x *Tensor) *Tensor
	// Backward consumes the upstream gradient, accumulates parameter
	// gradients, and returns the input gradient.
	Backward(dy *Tensor) *Tensor
	// Params returns the trainable tensors; Grads parallels Params.
	Params() []*Tensor
	Grads() []*Tensor
	// Saved returns the activation buffers retained for backward.
	Saved() []*Tensor
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

// Dense is a fully-connected layer over {batch, in} inputs.
type Dense struct {
	name     string
	In, Out  int
	W, B     *Tensor
	GW, GB   *Tensor
	savedX   *Tensor
	savedOut *Tensor // kept for shape only; not exposed via Saved
}

// NewDense builds a dense layer with deterministic initialization.
func NewDense(name string, in, out int, r *RNG) *Dense {
	d := &Dense{
		name: name, In: in, Out: out,
		W: NewTensor(in, out), B: NewTensor(out),
		GW: NewTensor(in, out), GB: NewTensor(out),
	}
	d.W.FillNormal(r, 1.0/float32(in))
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Forward implements Layer.
func (d *Dense) Forward(x *Tensor) *Tensor {
	batch := x.Shape[0]
	if x.Len() != batch*d.In {
		panic(fmt.Sprintf("nn: %s: input %v incompatible with in=%d", d.name, x.Shape, d.In))
	}
	d.savedX = x
	y := NewTensor(batch, d.Out)
	for b := 0; b < batch; b++ {
		xi := x.Data[b*d.In : (b+1)*d.In]
		yi := y.Data[b*d.Out : (b+1)*d.Out]
		copy(yi, d.B.Data)
		for i, xv := range xi {
			if xv == 0 {
				continue
			}
			row := d.W.Data[i*d.Out : (i+1)*d.Out]
			for j, wv := range row {
				yi[j] += xv * wv
			}
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dy *Tensor) *Tensor {
	x := d.savedX
	batch := x.Shape[0]
	dx := NewTensor(batch, d.In)
	for b := 0; b < batch; b++ {
		xi := x.Data[b*d.In : (b+1)*d.In]
		dyi := dy.Data[b*d.Out : (b+1)*d.Out]
		dxi := dx.Data[b*d.In : (b+1)*d.In]
		for j, g := range dyi {
			d.GB.Data[j] += g
		}
		for i, xv := range xi {
			row := d.W.Data[i*d.Out : (i+1)*d.Out]
			grow := d.GW.Data[i*d.Out : (i+1)*d.Out]
			var acc float32
			for j, g := range dyi {
				grow[j] += xv * g
				acc += row[j] * g
			}
			dxi[i] = acc
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Tensor { return []*Tensor{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*Tensor { return []*Tensor{d.GW, d.GB} }

// Saved implements Layer.
func (d *Dense) Saved() []*Tensor { return []*Tensor{d.savedX} }

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	name   string
	savedX *Tensor
}

// NewReLU builds a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (l *ReLU) Name() string { return l.name }

// Forward implements Layer.
func (l *ReLU) Forward(x *Tensor) *Tensor {
	l.savedX = x
	y := &Tensor{Shape: append([]int(nil), x.Shape...), Data: make([]float32, len(x.Data))}
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		}
	}
	return y
}

// Backward implements Layer.
func (l *ReLU) Backward(dy *Tensor) *Tensor {
	x := l.savedX
	dx := &Tensor{Shape: append([]int(nil), dy.Shape...), Data: make([]float32, len(dy.Data))}
	for i, v := range x.Data {
		if v > 0 {
			dx.Data[i] = dy.Data[i]
		}
	}
	return dx
}

// Params implements Layer.
func (l *ReLU) Params() []*Tensor { return nil }

// Grads implements Layer.
func (l *ReLU) Grads() []*Tensor { return nil }

// Saved implements Layer.
func (l *ReLU) Saved() []*Tensor { return []*Tensor{l.savedX} }

// ---------------------------------------------------------------------------
// Conv2D (naive direct convolution, NCHW)
// ---------------------------------------------------------------------------

// Conv2D is a stride-1 padded 2-D convolution over {batch, C, H, W}.
type Conv2D struct {
	name              string
	Cin, Cout, K, Pad int
	W, B              *Tensor // W: {Cout, Cin, K, K}
	GW, GB            *Tensor
	savedX            *Tensor
}

// NewConv2D builds a convolution layer with deterministic initialization.
func NewConv2D(name string, cin, cout, k, pad int, r *RNG) *Conv2D {
	c := &Conv2D{
		name: name, Cin: cin, Cout: cout, K: k, Pad: pad,
		W: NewTensor(cout, cin, k, k), B: NewTensor(cout),
		GW: NewTensor(cout, cin, k, k), GB: NewTensor(cout),
	}
	c.W.FillNormal(r, 1.0/float32(cin*k*k))
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

func (c *Conv2D) dims(x *Tensor) (batch, h, w, oh, ow int) {
	if len(x.Shape) != 4 || x.Shape[1] != c.Cin {
		panic(fmt.Sprintf("nn: %s: input %v incompatible with cin=%d", c.name, x.Shape, c.Cin))
	}
	batch, h, w = x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow = h+2*c.Pad-c.K+1, w+2*c.Pad-c.K+1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s: output collapses", c.name))
	}
	return
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *Tensor) *Tensor {
	batch, h, w, oh, ow := c.dims(x)
	c.savedX = x
	y := NewTensor(batch, c.Cout, oh, ow)
	for b := 0; b < batch; b++ {
		for co := 0; co < c.Cout; co++ {
			bias := c.B.Data[co]
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					acc := bias
					for ci := 0; ci < c.Cin; ci++ {
						for ki := 0; ki < c.K; ki++ {
							si := i + ki - c.Pad
							if si < 0 || si >= h {
								continue
							}
							for kj := 0; kj < c.K; kj++ {
								sj := j + kj - c.Pad
								if sj < 0 || sj >= w {
									continue
								}
								xv := x.Data[((b*c.Cin+ci)*h+si)*w+sj]
								wv := c.W.Data[((co*c.Cin+ci)*c.K+ki)*c.K+kj]
								acc += xv * wv
							}
						}
					}
					y.Data[((b*c.Cout+co)*oh+i)*ow+j] = acc
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dy *Tensor) *Tensor {
	x := c.savedX
	batch, h, w, oh, ow := c.dims(x)
	dx := NewTensor(batch, c.Cin, h, w)
	for b := 0; b < batch; b++ {
		for co := 0; co < c.Cout; co++ {
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					g := dy.Data[((b*c.Cout+co)*oh+i)*ow+j]
					if g == 0 {
						continue
					}
					c.GB.Data[co] += g
					for ci := 0; ci < c.Cin; ci++ {
						for ki := 0; ki < c.K; ki++ {
							si := i + ki - c.Pad
							if si < 0 || si >= h {
								continue
							}
							for kj := 0; kj < c.K; kj++ {
								sj := j + kj - c.Pad
								if sj < 0 || sj >= w {
									continue
								}
								xi := ((b*c.Cin+ci)*h+si)*w + sj
								wi := ((co*c.Cin+ci)*c.K+ki)*c.K + kj
								c.GW.Data[wi] += x.Data[xi] * g
								dx.Data[xi] += c.W.Data[wi] * g
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Tensor { return []*Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*Tensor { return []*Tensor{c.GW, c.GB} }

// Saved implements Layer.
func (c *Conv2D) Saved() []*Tensor { return []*Tensor{c.savedX} }

// ---------------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------------

// Flatten reshapes {batch, ...} to {batch, features}.
type Flatten struct {
	name  string
	shape []int
}

// NewFlatten builds a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (l *Flatten) Name() string { return l.name }

// Forward implements Layer. The output buffer is a copy: chain tensors
// must not alias, or the arena's eviction accounting would tear buffers
// out from under other tensors.
func (l *Flatten) Forward(x *Tensor) *Tensor {
	l.shape = append([]int(nil), x.Shape...)
	out := NewTensor(x.Shape[0], x.Len()/x.Shape[0])
	copy(out.Data, x.Data)
	return out
}

// Backward implements Layer.
func (l *Flatten) Backward(dy *Tensor) *Tensor {
	out := &Tensor{Shape: append([]int(nil), l.shape...), Data: make([]float32, len(dy.Data))}
	copy(out.Data, dy.Data)
	return out
}

// Params implements Layer.
func (l *Flatten) Params() []*Tensor { return nil }

// Grads implements Layer.
func (l *Flatten) Grads() []*Tensor { return nil }

// Saved implements Layer.
func (l *Flatten) Saved() []*Tensor { return nil }

// Compile-time interface checks.
var (
	_ Layer = (*Dense)(nil)
	_ Layer = (*ReLU)(nil)
	_ Layer = (*Conv2D)(nil)
	_ Layer = (*Flatten)(nil)
)
