package nn

import (
	"fmt"
	"sync"
)

// ParallelConfig configures the in-process data-parallel trainer — the
// numeric counterpart of the paper's multi-GPU pipeline (Fig. 3): workers
// run out-of-core forward/backward, stream per-layer gradients to the
// host as each layer's backward completes (the phased exchange), and the
// host performs the weight update and redistributes parameters before the
// next iteration.
type ParallelConfig struct {
	Workers int
	// ArenaBytes is the per-worker near-memory capacity.
	ArenaBytes int64
	// Policies are the per-layer out-of-core policies each worker uses.
	Policies []Policy
	LR       float32
	Momentum float32
}

// BatchFunc supplies the shard for (step, worker): the input tensor and
// its labels. It must be deterministic.
type BatchFunc func(step, worker int) (*Tensor, []int)

// gradMsg is one phase of the gradient exchange: one layer's gradients
// from one worker.
type gradMsg struct {
	worker int
	layer  int
	grads  []*Tensor
}

// TrainDataParallel trains the master model for the given number of
// steps. Replicas must share the master's architecture; their weights are
// overwritten. It returns the per-step mean losses (averaged over
// workers).
//
// Determinism: gradients are reduced in worker-index order per layer, and
// the host applies layer updates in a fixed order, so the result is
// bit-reproducible and equal to a sequential reference performing the
// same reductions (see tests).
func TrainDataParallel(master *Sequential, replicas []*Sequential, steps int, batch BatchFunc, cfg ParallelConfig) ([]float32, error) {
	if cfg.Workers != len(replicas) {
		return nil, fmt.Errorf("nn: %d replicas for %d workers", len(replicas), cfg.Workers)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("nn: need at least one worker")
	}
	layers := len(master.Layers)
	if len(cfg.Policies) != layers {
		return nil, fmt.Errorf("nn: %d policies for %d layers", len(cfg.Policies), layers)
	}

	execs := make([]*Exec, cfg.Workers)
	for w := range replicas {
		arena := NewArena(cfg.ArenaBytes)
		e, err := NewExec(replicas[w], arena, cfg.Policies)
		if err != nil {
			return nil, err
		}
		execs[w] = e
	}
	opt := NewSGD(cfg.LR, cfg.Momentum)
	losses := make([]float32, 0, steps)

	for step := 0; step < steps; step++ {
		// Broadcast master weights (the swap-in of updated blocks for the
		// next iteration, Fig. 3 stage 1).
		for _, r := range replicas {
			r.CloneWeightsFrom(master)
		}

		msgs := make(chan gradMsg, cfg.Workers*layers)
		errs := make(chan error, cfg.Workers)
		workerLoss := make([]float32, cfg.Workers)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				x, labels := batch(step, w)
				e := execs[w]
				e.OnLayerBackward = func(layer int) {
					// Phase the exchange: ship this layer's gradients the
					// moment its backward completes (Fig. 3 stage 4).
					l := e.Model.Layers[layer]
					gs := l.Grads()
					sent := make([]*Tensor, len(gs))
					for i, g := range gs {
						sent[i] = g.Clone()
					}
					msgs <- gradMsg{worker: w, layer: layer, grads: sent}
				}
				loss, err := e.ForwardBackward(x, labels)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				workerLoss[w] = loss
			}(w)
		}
		go func() {
			wg.Wait()
			close(msgs)
			close(errs)
		}()

		// Host side: collect phases, reduce each layer in worker order,
		// update master parameters per layer as soon as the layer is
		// complete (Fig. 3 stage 5).
		pending := make(map[int][][]*Tensor, layers) // layer -> per-worker grads
		updated := make([]bool, layers)
		inv := 1 / float32(cfg.Workers)
		for msg := range msgs {
			bucket := pending[msg.layer]
			if bucket == nil {
				bucket = make([][]*Tensor, cfg.Workers)
			}
			bucket[msg.worker] = msg.grads
			pending[msg.layer] = bucket
			full := true
			for _, g := range bucket {
				if g == nil {
					full = false
					break
				}
			}
			if !full || updated[msg.layer] {
				continue
			}
			updated[msg.layer] = true
			l := master.Layers[msg.layer]
			params := l.Params()
			if len(params) == 0 {
				continue
			}
			avg := make([]*Tensor, len(params))
			for gi := range params {
				sum := bucket[0][gi].Clone()
				for w := 1; w < cfg.Workers; w++ {
					for j, v := range bucket[w][gi].Data {
						sum.Data[j] += v
					}
				}
				for j := range sum.Data {
					sum.Data[j] *= inv
				}
				avg[gi] = sum
			}
			opt.Step(params, avg)
		}
		if err, ok := <-errs; ok && err != nil {
			return nil, err
		}
		// Reduce losses in worker order for bit-reproducibility.
		var meanLoss float32
		for _, l := range workerLoss {
			meanLoss += l
		}
		losses = append(losses, meanLoss*inv)

		for i := range updated {
			if !updated[i] && len(master.Layers[i].Params()) > 0 {
				return nil, fmt.Errorf("nn: layer %d missing gradient phases", i)
			}
		}
	}
	return losses, nil
}
