package nn

import (
	"math"
	"testing"
)

// mlp builds a small deterministic MLP classifier.
func mlp(seed uint64) *Sequential {
	r := NewRNG(seed)
	return NewSequential(
		NewDense("fc1", 16, 32, r),
		NewReLU("relu1"),
		NewDense("fc2", 32, 32, r),
		NewReLU("relu2"),
		NewDense("fc3", 32, 4, r),
	)
}

// cnn builds a small deterministic conv classifier.
func cnn(seed uint64) *Sequential {
	r := NewRNG(seed)
	return NewSequential(
		NewConv2D("conv1", 1, 4, 3, 1, r),
		NewReLU("relu1"),
		NewConv2D("conv2", 4, 8, 3, 1, r),
		NewReLU("relu2"),
		NewFlatten("flatten"),
		NewDense("fc", 8*8*8, 4, r),
	)
}

// synth generates a deterministic synthetic classification batch: the
// label is a simple function of the input so the task is learnable.
func synth(r *RNG, batch, features, classes int) (*Tensor, []int) {
	x := NewTensor(batch, features)
	labels := make([]int, batch)
	for b := 0; b < batch; b++ {
		var sum float32
		for f := 0; f < features; f++ {
			v := r.Normalish()
			x.Data[b*features+f] = v
			if f%2 == 0 {
				sum += v
			} else {
				sum -= v
			}
		}
		switch {
		case sum > 1:
			labels[b] = 0
		case sum > 0:
			labels[b] = 1
		case sum > -1:
			labels[b] = 2
		default:
			labels[b] = 3
		}
	}
	return x, labels
}

func synthImages(r *RNG, batch int) (*Tensor, []int) {
	x := NewTensor(batch, 1, 8, 8)
	labels := make([]int, batch)
	for b := 0; b < batch; b++ {
		var sum float32
		for i := 0; i < 64; i++ {
			v := r.Normalish()
			x.Data[b*64+i] = v
			sum += v
		}
		labels[b] = int(math.Abs(float64(sum))) % 4
	}
	return x, labels
}

func allKeep(n int) []Policy { return make([]Policy, n) }

const bigArena = int64(1) << 30

// trainSteps runs `steps` optimizer steps and returns final weights plus
// total moved bytes.
func trainSteps(t *testing.T, m *Sequential, policies []Policy, arenaBytes int64, steps int) (losses []float32, moved int64) {
	t.Helper()
	arena := NewArena(arenaBytes)
	e, err := NewExec(m, arena, policies)
	if err != nil {
		t.Fatalf("NewExec: %v", err)
	}
	opt := NewSGD(0.05, 0.9)
	data := NewRNG(99)
	for s := 0; s < steps; s++ {
		x, labels := synth(data, 8, 16, 4)
		loss, err := e.Step(x, labels, opt)
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		losses = append(losses, loss)
	}
	return losses, arena.Moved()
}

func TestTensorBasics(t *testing.T) {
	a := NewTensor(2, 3)
	if a.Len() != 6 || a.Bytes() != 24 {
		t.Errorf("Len/Bytes wrong: %d/%d", a.Len(), a.Bytes())
	}
	a.Data[0] = 1
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Data[0] = 2
	if a.Equal(b) {
		t.Error("clone aliases original")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds should differ")
	}
}

func TestDenseGradientCheck(t *testing.T) {
	// Numerical gradient check on a tiny dense layer.
	r := NewRNG(3)
	d := NewDense("d", 3, 2, r)
	x := NewTensor(1, 3)
	x.Data = []float32{0.5, -0.3, 0.8}
	labels := []int{1}

	run := func() float32 {
		y := d.Forward(x)
		loss, _ := SoftmaxCrossEntropy(y, labels)
		return loss
	}
	// Analytic gradients.
	y := d.Forward(x)
	_, dy := SoftmaxCrossEntropy(y, labels)
	for i := range d.GW.Data {
		d.GW.Data[i] = 0
	}
	d.Backward(dy)
	// Numerical gradients.
	const eps = 1e-3
	for i := 0; i < len(d.W.Data); i++ {
		orig := d.W.Data[i]
		d.W.Data[i] = orig + eps
		up := run()
		d.W.Data[i] = orig - eps
		down := run()
		d.W.Data[i] = orig
		num := (up - down) / (2 * eps)
		if diff := math.Abs(float64(num - d.GW.Data[i])); diff > 5e-3 {
			t.Errorf("dW[%d]: analytic %v vs numeric %v", i, d.GW.Data[i], num)
		}
	}
}

func TestConvGradientCheck(t *testing.T) {
	r := NewRNG(5)
	c := NewConv2D("c", 1, 2, 3, 1, r)
	fl := NewFlatten("f")
	x := NewTensor(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = r.Normalish()
	}
	labels := []int{3}
	run := func() float32 {
		y := fl.Forward(c.Forward(x))
		loss, _ := SoftmaxCrossEntropy(y, labels)
		return loss
	}
	y := fl.Forward(c.Forward(x))
	_, dy := SoftmaxCrossEntropy(y, labels)
	for i := range c.GW.Data {
		c.GW.Data[i] = 0
	}
	c.Backward(fl.Backward(dy))
	const eps = 1e-2
	for i := 0; i < len(c.W.Data); i += 3 {
		orig := c.W.Data[i]
		c.W.Data[i] = orig + eps
		up := run()
		c.W.Data[i] = orig - eps
		down := run()
		c.W.Data[i] = orig
		num := (up - down) / (2 * eps)
		if diff := math.Abs(float64(num - c.GW.Data[i])); diff > 2e-2 {
			t.Errorf("dW[%d]: analytic %v vs numeric %v", i, c.GW.Data[i], num)
		}
	}
}

func TestTrainingLearns(t *testing.T) {
	m := mlp(1)
	losses, _ := trainSteps(t, m, allKeep(len(m.Layers)), bigArena, 60)
	first, last := losses[0], losses[len(losses)-1]
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
}

// TestOOCSwapBitwiseEquivalence is the §IV-D core claim: swapping
// activations to far memory produces bitwise-identical training.
func TestOOCSwapBitwiseEquivalence(t *testing.T) {
	ref := mlp(1)
	trainSteps(t, ref, allKeep(len(ref.Layers)), bigArena, 20)

	ooc := mlp(1)
	policies := []Policy{Swap, Swap, Swap, Swap, Keep}
	_, moved := trainSteps(t, ooc, policies, bigArena, 20)
	if moved == 0 {
		t.Fatal("swap policy moved no bytes; the OOC path did not execute")
	}
	refP, oocP := ref.Params(), ooc.Params()
	for i := range refP {
		if !refP[i].Equal(oocP[i]) {
			t.Fatalf("parameter %d differs between in-core and out-of-core", i)
		}
	}
}

// TestOOCRecomputeBitwiseEquivalence: dropping + replaying activations is
// also exact.
func TestOOCRecomputeBitwiseEquivalence(t *testing.T) {
	ref := mlp(1)
	trainSteps(t, ref, allKeep(len(ref.Layers)), bigArena, 20)

	re := mlp(1)
	policies := []Policy{Keep, Recompute, Recompute, Recompute, Keep}
	trainSteps(t, re, policies, bigArena, 20)
	refP, reP := ref.Params(), re.Params()
	for i := range refP {
		if !refP[i].Equal(reP[i]) {
			t.Fatalf("parameter %d differs between in-core and recompute", i)
		}
	}
}

// TestOOCMixedPolicyEquivalence mixes swap and recompute (the KARMA
// interleave) and still matches bitwise.
func TestOOCMixedPolicyEquivalence(t *testing.T) {
	ref := mlp(1)
	trainSteps(t, ref, allKeep(len(ref.Layers)), bigArena, 15)

	mixed := mlp(1)
	policies := []Policy{Swap, Recompute, Swap, Recompute, Keep}
	trainSteps(t, mixed, policies, bigArena, 15)
	refP, mp := ref.Params(), mixed.Params()
	for i := range refP {
		if !refP[i].Equal(mp[i]) {
			t.Fatalf("parameter %d differs for the mixed policy", i)
		}
	}
}

func TestCNNOOCEquivalence(t *testing.T) {
	run := func(policies []Policy) *Sequential {
		m := cnn(11)
		arena := NewArena(bigArena)
		e, err := NewExec(m, arena, policies)
		if err != nil {
			t.Fatalf("NewExec: %v", err)
		}
		opt := NewSGD(0.01, 0.9)
		data := NewRNG(42)
		for s := 0; s < 8; s++ {
			x, labels := synthImages(data, 4)
			if _, err := e.Step(x, labels, opt); err != nil {
				t.Fatalf("step: %v", err)
			}
		}
		return m
	}
	ref := run(allKeep(6))
	ooc := run([]Policy{Swap, Recompute, Swap, Recompute, Swap, Keep})
	refP, oocP := ref.Params(), ooc.Params()
	for i := range refP {
		if !refP[i].Equal(oocP[i]) {
			t.Fatalf("cnn parameter %d differs", i)
		}
	}
}

// TestCapacityEnforced: training beyond near memory without an OOC policy
// must fail; with swapping it must succeed in the same arena.
func TestCapacityEnforced(t *testing.T) {
	m := mlp(1)
	// Chain tensors at batch 8: 16,32,32,32,32,4 floats wide.
	// All-keep needs all of them; swapping trims the peak.
	arena := NewArena(2200) // bytes: deliberately tight
	e, err := NewExec(m, arena, allKeep(len(m.Layers)))
	if err != nil {
		t.Fatal(err)
	}
	data := NewRNG(2)
	x, labels := synth(data, 8, 16, 4)
	if _, err := e.ForwardBackward(x, labels); err == nil {
		t.Fatal("in-core training should exhaust a tight arena")
	}

	m2 := mlp(1)
	arena2 := NewArena(2200)
	e2, err := NewExec(m2, arena2, []Policy{Swap, Swap, Swap, Swap, Keep})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.ForwardBackward(x, labels); err != nil {
		t.Fatalf("swapping should fit the same arena: %v", err)
	}
	if arena2.Moved() == 0 {
		t.Error("no swap traffic recorded")
	}
}

func TestExecValidation(t *testing.T) {
	m := mlp(1)
	if _, err := NewExec(m, NewArena(1), []Policy{Keep}); err == nil {
		t.Error("policy count mismatch should error")
	}
	bad := make([]Policy, len(m.Layers))
	bad[0] = Recompute
	if _, err := NewExec(m, NewArena(1), bad); err == nil {
		t.Error("recompute on layer 0 should error")
	}
	bad2 := make([]Policy, len(m.Layers))
	bad2[1] = Policy(9)
	if _, err := NewExec(m, NewArena(1), bad2); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestArenaAccounting(t *testing.T) {
	a := NewArena(100)
	x := NewTensor(10) // 40 bytes
	if err := a.Hold(x); err != nil {
		t.Fatal(err)
	}
	if a.Used() != 40 {
		t.Errorf("used = %d", a.Used())
	}
	y := NewTensor(20) // 80 bytes: exceeds remaining 60
	if err := a.Hold(y); err == nil {
		t.Error("over-capacity hold should fail")
	}
	a.Evict(x)
	if a.Used() != 0 || x.Data != nil || !a.InFar(x) {
		t.Error("evict should free near memory and null the buffer")
	}
	if err := a.Hold(y); err != nil {
		t.Fatalf("hold after evict: %v", err)
	}
	a.Release(y)
	if err := a.Fetch(x); err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if x.Data == nil || !a.Resident(x) {
		t.Error("fetch should restore the buffer")
	}
	if a.Moved() != 80 {
		t.Errorf("moved = %d, want 80 (one round trip)", a.Moved())
	}
}

func TestArenaMisuse(t *testing.T) {
	a := NewArena(100)
	x := NewTensor(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("evicting unheld tensor should panic")
			}
		}()
		a.Evict(x)
	}()
	if err := a.Fetch(x); err == nil {
		t.Error("fetching a tensor not in far memory should error")
	}
}

// TestDataParallelMatchesSequentialReference: the multi-worker trainer
// (phased exchange + host update) must produce bitwise-identical weights
// to a single-threaded reference performing the same per-worker passes
// and the same ordered reduction.
func TestDataParallelMatchesSequentialReference(t *testing.T) {
	const workers, steps, batch = 4, 10, 4
	batchFn := func(step, worker int) (*Tensor, []int) {
		r := NewRNG(uint64(1000 + step*workers + worker))
		return synth(r, batch, 16, 4)
	}

	// Parallel run.
	master := mlp(1)
	replicas := make([]*Sequential, workers)
	for w := range replicas {
		replicas[w] = mlp(uint64(50 + w)) // weights overwritten each step
	}
	_, err := TrainDataParallel(master, replicas, steps, batchFn, ParallelConfig{
		Workers: workers, ArenaBytes: bigArena,
		Policies: []Policy{Swap, Swap, Swap, Swap, Keep},
		LR:       0.05, Momentum: 0.9,
	})
	if err != nil {
		t.Fatalf("TrainDataParallel: %v", err)
	}

	// Sequential reference.
	ref := mlp(1)
	shadow := mlp(2)
	opt := NewSGD(0.05, 0.9)
	for step := 0; step < steps; step++ {
		perWorker := make([][]*Tensor, workers)
		for w := 0; w < workers; w++ {
			shadow.CloneWeightsFrom(ref)
			arena := NewArena(bigArena)
			e, err := NewExec(shadow, arena, allKeep(len(shadow.Layers)))
			if err != nil {
				t.Fatal(err)
			}
			x, labels := batchFn(step, w)
			if _, err := e.ForwardBackward(x, labels); err != nil {
				t.Fatal(err)
			}
			gs := shadow.Grads()
			cl := make([]*Tensor, len(gs))
			for i, g := range gs {
				cl[i] = g.Clone()
			}
			perWorker[w] = cl
		}
		// Reduce in worker order, average, update.
		inv := 1 / float32(workers)
		avg := make([]*Tensor, len(perWorker[0]))
		for gi := range avg {
			sum := perWorker[0][gi].Clone()
			for w := 1; w < workers; w++ {
				for j, v := range perWorker[w][gi].Data {
					sum.Data[j] += v
				}
			}
			for j := range sum.Data {
				sum.Data[j] *= inv
			}
			avg[gi] = sum
		}
		opt.Step(ref.Params(), avg)
	}

	mp, rp := master.Params(), ref.Params()
	for i := range mp {
		if !mp[i].Equal(rp[i]) {
			t.Fatalf("parameter %d: parallel differs from sequential reference", i)
		}
	}
}

func TestDataParallelLearns(t *testing.T) {
	const workers = 2
	master := mlp(3)
	replicas := []*Sequential{mlp(4), mlp(5)}
	// Fixed per-worker batches: loss must fall when memorizing.
	batchFn := func(step, worker int) (*Tensor, []int) {
		r := NewRNG(uint64(7000 + worker))
		return synth(r, 8, 16, 4)
	}
	losses, err := TrainDataParallel(master, replicas, 40, batchFn, ParallelConfig{
		Workers: workers, ArenaBytes: bigArena,
		Policies: allKeep(len(master.Layers)),
		LR:       0.05, Momentum: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("parallel training did not learn: %v -> %v", losses[0], losses[len(losses)-1])
	}
}

func TestDataParallelValidation(t *testing.T) {
	m := mlp(1)
	if _, err := TrainDataParallel(m, nil, 1, nil, ParallelConfig{Workers: 1}); err == nil {
		t.Error("replica count mismatch should error")
	}
	if _, err := TrainDataParallel(m, []*Sequential{mlp(2)}, 1, nil, ParallelConfig{
		Workers: 1, Policies: []Policy{Keep},
	}); err == nil {
		t.Error("policy count mismatch should error")
	}
}

func TestSoftmaxCrossEntropyBasics(t *testing.T) {
	logits := NewTensor(1, 3)
	logits.Data = []float32{0, 0, 0}
	loss, grad := SoftmaxCrossEntropy(logits, []int{1})
	if math.Abs(float64(loss)-math.Log(3)) > 1e-5 {
		t.Errorf("uniform loss = %v, want ln 3", loss)
	}
	// Gradient sums to zero per row.
	var sum float32
	for _, v := range grad.Data {
		sum += v
	}
	if math.Abs(float64(sum)) > 1e-6 {
		t.Errorf("softmax grad row sum = %v", sum)
	}
}

func TestSGDMomentum(t *testing.T) {
	p := NewTensor(1)
	p.Data[0] = 1
	g := NewTensor(1)
	g.Data[0] = 1
	opt := NewSGD(0.1, 0.5)
	opt.Step([]*Tensor{p}, []*Tensor{g})
	// v=1, w = 1 - 0.1 = 0.9
	if p.Data[0] != 0.9 {
		t.Errorf("after step 1: %v", p.Data[0])
	}
	opt.Step([]*Tensor{p}, []*Tensor{g})
	// v = 0.5 + 1 = 1.5; w = 0.9 - 0.15 = 0.75
	if math.Abs(float64(p.Data[0])-0.75) > 1e-7 {
		t.Errorf("after step 2: %v", p.Data[0])
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D("pool")
	x := NewTensor(1, 1, 2, 2)
	x.Data = []float32{1, 5, 3, 2}
	y := p.Forward(x)
	if len(y.Data) != 1 || y.Data[0] != 5 {
		t.Fatalf("pool output = %v", y.Data)
	}
	dy := NewTensor(1, 1, 1, 1)
	dy.Data[0] = 7
	dx := p.Backward(dy)
	want := []float32{0, 7, 0, 0}
	for i := range want {
		if dx.Data[i] != want[i] {
			t.Errorf("dx[%d] = %v, want %v", i, dx.Data[i], want[i])
		}
	}
}

func TestMaxPoolOddExtentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd extent should panic")
		}
	}()
	NewMaxPool2D("p").Forward(NewTensor(1, 1, 3, 3))
}

// TestPooledCNNOOCEquivalence: the full conv+pool chain stays bitwise
// identical under mixed out-of-core policies (argmax indices are
// rematerialized by replay deterministically).
func TestPooledCNNOOCEquivalence(t *testing.T) {
	build := func(seed uint64) *Sequential {
		r := NewRNG(seed)
		return NewSequential(
			NewConv2D("conv1", 1, 4, 3, 1, r),
			NewReLU("relu1"),
			NewMaxPool2D("pool1"),
			NewConv2D("conv2", 4, 8, 3, 1, r),
			NewMaxPool2D("pool2"),
			NewFlatten("flatten"),
			NewDense("fc", 8*2*2, 4, r),
		)
	}
	run := func(policies []Policy) *Sequential {
		m := build(21)
		e, err := NewExec(m, NewArena(bigArena), policies)
		if err != nil {
			t.Fatal(err)
		}
		opt := NewSGD(0.02, 0.9)
		data := NewRNG(33)
		for s := 0; s < 10; s++ {
			x := NewTensor(3, 1, 8, 8)
			labels := make([]int, 3)
			for i := range x.Data {
				x.Data[i] = data.Normalish()
			}
			for b := range labels {
				labels[b] = data.Intn(4)
			}
			if _, err := e.Step(x, labels, opt); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	ref := run(make([]Policy, 7))
	ooc := run([]Policy{Swap, Recompute, Recompute, Swap, Recompute, Swap, Keep})
	rp, op := ref.Params(), ooc.Params()
	for i := range rp {
		if !rp[i].Equal(op[i]) {
			t.Fatalf("parameter %d differs with pooling under OOC", i)
		}
	}
}
