// Package bench is the benchmark harness regenerating every table and
// figure of the paper's evaluation (one benchmark per artifact; see the
// experiment index in DESIGN.md) plus the ablation studies A1-A6.
// Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks report the headline quantity of each experiment through
// b.ReportMetric (speedups, epoch hours, stall reductions) in addition to
// the usual ns/op of regenerating the artifact.
package bench

import (
	"runtime"
	"testing"

	"karma/internal/baseline"
	"karma/internal/dist"
	"karma/internal/experiments"
	"karma/internal/hw"
	"karma/internal/karma"
	"karma/internal/model"
	"karma/internal/profiler"
)

// ---------------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------------

// BenchmarkFigure5 regenerates each panel of Fig. 5 (single-GPU
// samples/s vs batch size for six models across all methods).
func BenchmarkFigure5(b *testing.B) {
	node := hw.ABCINode()
	for _, w := range experiments.Fig5Workloads() {
		w := w
		b.Run(w.Model, func(b *testing.B) {
			var panel *experiments.Fig5Panel
			var err error
			for i := 0; i < b.N; i++ {
				panel, err = experiments.Figure5Panel(w, node)
				if err != nil {
					b.Fatal(err)
				}
			}
			last := panel.Points[len(panel.Points)-1]
			if r := last.Results[baseline.KARMARecompute]; r != nil && r.Feasible {
				b.ReportMetric(r.Throughput, "samples/s@max-batch")
			}
		})
	}
}

// BenchmarkFigure5Speedup reports the §IV headline (paper: 1.52x).
func BenchmarkFigure5Speedup(b *testing.B) {
	node := hw.ABCINode()
	var s float64
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure5(node)
		if err != nil {
			b.Fatal(err)
		}
		s = experiments.AverageSpeedup(panels)
	}
	b.ReportMetric(s, "x-speedup-vs-sota")
}

// BenchmarkFigure6 regenerates the ResNet-200 backward stall profile.
func BenchmarkFigure6(b *testing.B) {
	node := hw.ABCINode()
	var series []experiments.Fig6Series
	var err error
	for i := 0; i < b.N; i++ {
		series, err = experiments.Figure6(node)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		if s.Method == baseline.KARMARecompute {
			b.ReportMetric(s.TotalStallSec, "karma-stall-sec")
		}
		if s.Method == baseline.VDNNPP {
			b.ReportMetric(s.TotalStallSec, "vdnn-stall-sec")
		}
	}
}

// BenchmarkFigure7 regenerates the ResNet-50 blocking and reports the
// stall reduction versus the eager baselines (paper: 43% and 37%).
func BenchmarkFigure7(b *testing.B) {
	node := hw.ABCINode()
	var r *experiments.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Figure7(node)
		if err != nil {
			b.Fatal(err)
		}
	}
	if red, ok := r.StallReduction[baseline.SuperNeurons]; ok {
		b.ReportMetric(100*red, "%stall-reduction-vs-superneurons")
	}
	if red, ok := r.StallReduction[baseline.VDNNPP]; ok {
		b.ReportMetric(100*red, "%stall-reduction-vs-vdnn")
	}
}

// BenchmarkSweepParallel measures the parallel sweep engine end to end:
// the Turing-NLG scaling panel (the heaviest grid — each ZeRO point
// hides an MP x capacity-batch search) regenerated with the grid fanned
// across workers, serial (workers-1) versus all cores (workers-all,
// NumCPU — named machine-independently so snapshots diff across
// runners). On a single-CPU runner both sub-benchmarks measure the same
// serial path; the ns/op win against the pre-engine snapshots comes
// from the cross-grid singleflight memoization the sweeps share either
// way.
func BenchmarkSweepParallel(b *testing.B) {
	cl := hw.ABCI()
	for _, bc := range []struct {
		name    string
		workers int
	}{{"workers-1", 1}, {"workers-all", runtime.NumCPU()}} {
		workers := bc.workers
		b.Run(bc.name, func(b *testing.B) {
			benchBackends(b, func(b *testing.B, ev dist.Evaluator) {
				var panel *experiments.Fig8Panel
				var err error
				for i := 0; i < b.N; i++ {
					panel, err = experiments.Figure8Turing(cl, []int{512, 1024, 2048}, ev,
						experiments.FamilyOptions{Ckpt: true, Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
				}
				last := panel.Rows[len(panel.Rows)-1]
				zero := last.Results["zero"]
				combo := last.Results["zero+karma"]
				if zero.Feasible && combo.Feasible {
					b.ReportMetric(float64(zero.EpochTime)/float64(combo.EpochTime), "x-zero+karma-vs-zero")
				}
			})
		})
	}
}

// benchBackends runs a cluster-model benchmark once per evaluator
// backend, so the nightly harness watches the planner-backed path's cost
// alongside the closed forms.
func benchBackends(b *testing.B, fn func(b *testing.B, ev dist.Evaluator)) {
	for _, name := range dist.BackendNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			ev, err := dist.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			fn(b, ev)
		})
	}
}

// BenchmarkFigure8Megatron25B regenerates the 2.5B scaling panel.
func BenchmarkFigure8Megatron25B(b *testing.B) {
	benchFig8Megatron(b, 2, []int{128, 512, 2048})
}

// BenchmarkFigure8Megatron83B regenerates the 8.3B scaling panel.
func BenchmarkFigure8Megatron83B(b *testing.B) {
	benchFig8Megatron(b, 4, []int{512, 1024, 2048})
}

func benchFig8Megatron(b *testing.B, cfgIdx int, gpus []int) {
	cl := hw.ABCI()
	benchBackends(b, func(b *testing.B, ev dist.Evaluator) {
		var panel *experiments.Fig8Panel
		var err error
		for i := 0; i < b.N; i++ {
			panel, err = experiments.Figure8Megatron(cl, cfgIdx, gpus, ev, experiments.FamilyOptions{Ckpt: true})
			if err != nil {
				b.Fatal(err)
			}
		}
		last := panel.Rows[len(panel.Rows)-1]
		if r := last.Results["karma-dp"]; r.Feasible {
			b.ReportMetric(float64(r.EpochTime)/3600, "karma-epoch-h@2048gpu")
		}
		if r := last.Results["mp+dp"]; r.Feasible {
			b.ReportMetric(float64(r.EpochTime)/3600, "hybrid-epoch-h@2048gpu")
		}
	})
}

// BenchmarkFigure8Turing regenerates the Turing-NLG panel (ZeRO, KARMA,
// ZeRO+KARMA).
func BenchmarkFigure8Turing(b *testing.B) {
	cl := hw.ABCI()
	benchBackends(b, func(b *testing.B, ev dist.Evaluator) {
		var panel *experiments.Fig8Panel
		var err error
		for i := 0; i < b.N; i++ {
			panel, err = experiments.Figure8Turing(cl, []int{512, 1024, 2048}, ev, experiments.FamilyOptions{Ckpt: true})
			if err != nil {
				b.Fatal(err)
			}
		}
		last := panel.Rows[len(panel.Rows)-1]
		zero := last.Results["zero"]
		combo := last.Results["zero+karma"]
		if zero.Feasible && combo.Feasible {
			b.ReportMetric(float64(zero.EpochTime)/float64(combo.EpochTime), "x-zero+karma-vs-zero")
		}
	})
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

// BenchmarkTableI renders the qualitative capability matrix.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := experiments.TableI(); len(got.Rows) != 8 {
			b.Fatal("table I corrupted")
		}
	}
}

// BenchmarkTableIV regenerates the Megatron-LM configuration table.
func BenchmarkTableIV(b *testing.B) {
	cl := hw.ABCI()
	benchBackends(b, func(b *testing.B, ev dist.Evaluator) {
		var rows []experiments.TableIVRow
		var err error
		for i := 0; i < b.N; i++ {
			rows, err = experiments.TableIV(cl, ev, experiments.FamilyOptions{Ckpt: true})
			if err != nil {
				b.Fatal(err)
			}
		}
		last := rows[len(rows)-1] // 8.3B
		if last.KARMA.Feasible {
			b.ReportMetric(last.KARMA.IterPerSec, "karma-iter/s-8.3B")
		}
	})
}

// BenchmarkTableV regenerates the cost/performance sweeps.
func BenchmarkTableV(b *testing.B) {
	cl := hw.ABCI()
	benchBackends(b, func(b *testing.B, ev dist.Evaluator) {
		var sweeps map[string][]experiments.TableVRow
		var err error
		for i := 0; i < b.N; i++ {
			sweeps, err = experiments.TableV(cl, ev, 0)
			if err != nil {
				b.Fatal(err)
			}
		}
		rows := sweeps["resnet50"]
		if rows[1].KARMA.Feasible && rows[0].KARMA.CostPerf > 0 {
			b.ReportMetric(rows[1].KARMA.CostPerf/rows[0].KARMA.CostPerf, "karma-$/P@2x-batch")
		}
	})
}

// BenchmarkEquivalence runs the §IV-D substitution (bitwise equivalence
// of out-of-core and distributed training).
func BenchmarkEquivalence(b *testing.B) {
	var rs []experiments.EquivalenceResult
	var err error
	for i := 0; i < b.N; i++ {
		rs, err = experiments.Equivalence()
		if err != nil {
			b.Fatal(err)
		}
	}
	var worst float64
	for _, r := range rs {
		if r.MaxAbsDiff > worst {
			worst = r.MaxAbsDiff
		}
	}
	b.ReportMetric(worst, "max-param-deviation")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md A1-A6)
// ---------------------------------------------------------------------------

func resnet50Profile(b *testing.B, batch int) *profiler.Profile {
	b.Helper()
	g := model.ResNet50()
	p, err := profiler.New(g, hw.ABCINode(), profiler.Options{Batch: batch})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkAblationSwapPolicy (A1): capacity-based swapping vs the eager
// vDNN schedule, recompute disabled in both, isolating the swap policy.
func BenchmarkAblationSwapPolicy(b *testing.B) {
	p := resnet50Profile(b, 256)
	var capacityBased, eager float64
	for i := 0; i < b.N; i++ {
		k, err := baseline.Run(baseline.KARMA, p) // capacity-based, no recompute
		if err != nil || !k.Feasible {
			b.Fatal(err, k)
		}
		v, err := baseline.Run(baseline.VDNNPP, p)
		if err != nil || !v.Feasible {
			b.Fatal(err, v)
		}
		capacityBased, eager = k.Throughput, v.Throughput
	}
	b.ReportMetric(capacityBased/eager, "x-capacity-vs-eager")
}

// BenchmarkAblationRecompute (A2): the Opt-2 interleave on vs off.
func BenchmarkAblationRecompute(b *testing.B) {
	p := resnet50Profile(b, 512)
	var with, without float64
	for i := 0; i < b.N; i++ {
		on, err := baseline.Run(baseline.KARMARecompute, p)
		if err != nil || !on.Feasible {
			b.Fatal(err, on)
		}
		off, err := baseline.Run(baseline.KARMA, p)
		if err != nil || !off.Feasible {
			b.Fatal(err, off)
		}
		with, without = on.Throughput, off.Throughput
	}
	b.ReportMetric(with/without, "x-recompute-gain")
}

// BenchmarkAblationExchange (A3): phased vs bulk gradient exchange in the
// Megatron hybrid.
func BenchmarkAblationExchange(b *testing.B) {
	cl := hw.ABCI()
	cfg := model.MegatronConfigs()[2]
	var phased, bulk float64
	for i := 0; i < b.N; i++ {
		pr, err := dist.MegatronHybrid(cfg, cl, 4, 512, 4, 7_200_000, dist.HybridOptions{Phased: true, Checkpoint: true})
		if err != nil || !pr.Feasible {
			b.Fatal(err, pr)
		}
		br, err := dist.MegatronHybrid(cfg, cl, 4, 512, 4, 7_200_000, dist.HybridOptions{Checkpoint: true})
		if err != nil || !br.Feasible {
			b.Fatal(err, br)
		}
		phased, bulk = float64(pr.IterTime), float64(br.IterTime)
	}
	b.ReportMetric(bulk/phased, "x-phased-vs-bulk")
}

// BenchmarkAblationUpdateSite (A4): CPU-side vs move-back-to-GPU weight
// updates in the 5-stage pipeline.
func BenchmarkAblationUpdateSite(b *testing.B) {
	cl := hw.ABCI()
	cfg := model.MegatronConfigs()[2]
	g := model.Transformer(cfg)
	var host, device float64
	for i := 0; i < b.N; i++ {
		h, err := dist.KARMADataParallel(g, cl, 512, 4, 7_200_000, dist.KARMAOptions{})
		if err != nil || !h.Feasible {
			b.Fatal(err, h)
		}
		d, err := dist.KARMADataParallel(g, cl, 512, 4, 7_200_000, dist.KARMAOptions{UpdateOnDevice: true})
		if err != nil || !d.Feasible {
			b.Fatal(err, d)
		}
		host, device = float64(h.IterTime), float64(d.IterTime)
	}
	b.ReportMetric(device/host, "x-gpu-update-overhead")
}

// BenchmarkAblationSolver (A5): the deterministic balanced/hill-climb
// Opt-1 backend vs the ant-colony (MIDACO stand-in) backend.
func BenchmarkAblationSolver(b *testing.B) {
	p := resnet50Profile(b, 384)
	for _, solver := range []struct {
		name string
		s    karma.Solver
	}{
		{"balanced", karma.SolverBalanced},
		{"aco", karma.SolverACO},
	} {
		solver := solver
		b.Run(solver.name, func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				s, err := karma.Plan(p, karma.Options{Solver: solver.s, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := karma.Simulate(s)
				if err != nil {
					b.Fatal(err)
				}
				thr = rep.Throughput
			}
			b.ReportMetric(thr, "samples/s")
		})
	}
}

// BenchmarkAblationBlocking (A6): block-granularity sweep.
func BenchmarkAblationBlocking(b *testing.B) {
	p := resnet50Profile(b, 384)
	for _, maxBlocks := range []int{4, 8, 16, 32} {
		maxBlocks := maxBlocks
		b.Run(map[int]string{4: "k4", 8: "k8", 16: "k16", 32: "k32"}[maxBlocks], func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				s, err := karma.Plan(p, karma.Options{MaxBlocks: maxBlocks})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := karma.Simulate(s)
				if err != nil {
					b.Fatal(err)
				}
				thr = rep.Throughput
			}
			b.ReportMetric(thr, "samples/s")
		})
	}
}
