// Megatron-LM beyond memory capacity: data-parallel KARMA versus the
// model+data-parallel hybrid (paper §III-G, Fig. 8, Table IV).
//
// The 2.5B-parameter Megatron-LM configuration cannot fit one GPU; the
// original implementation splits it 4 ways (model parallelism) and
// replicates the shards. KARMA instead trains it in PURE data
// parallelism: every GPU holds the whole model out-of-core, blocks swap
// with their weights, gradients exchange per block in phases, and the
// weight update runs on the host (the 5-stage pipeline of Fig. 3).
//
//	go run ./examples/megatron
package main

import (
	"fmt"
	"log"

	"karma/internal/dist"
	"karma/internal/hw"
	"karma/internal/model"
	"karma/internal/unit"
)

func main() {
	cl := hw.ABCI()
	cfg := model.MegatronConfigs()[2] // 2.5B parameters, MP factor 4
	g := model.Transformer(cfg)
	const samples = 7_200_000 // OpenWebText (Table III)
	const perReplicaBatch = 4

	fmt.Printf("%s: %.1fB parameters (%v fp32 weights vs %v per GPU)\n",
		cfg.Name, float64(cfg.Params())/1e9,
		unit.Bytes(cfg.Params()*4),
		cl.Node.Device.UsableMem())

	fmt.Printf("\n%-6s  %-22s  %-22s  %-22s\n", "gpus", "MP+DP (h/epoch)", "MP+DP opt-ex (h/epoch)", "KARMA DP (h/epoch)")
	for _, gpus := range []int{128, 512, 2048} {
		// The hybrid shards train under activation checkpointing, the
		// regime Megatron-LM needs to fit batch 4 on a V100 (§III-G).
		hybrid, err := dist.MegatronHybrid(cfg, cl, 4, gpus, perReplicaBatch, samples, dist.HybridOptions{Checkpoint: true})
		if err != nil {
			log.Fatal(err)
		}
		opt, err := dist.MegatronHybrid(cfg, cl, 4, gpus, perReplicaBatch, samples, dist.HybridOptions{Phased: true, Checkpoint: true})
		if err != nil {
			log.Fatal(err)
		}
		karma, err := dist.KARMADataParallel(g, cl, gpus, perReplicaBatch, samples, dist.KARMAOptions{})
		if err != nil {
			log.Fatal(err)
		}
		cell := func(r *dist.Result) string {
			if !r.Feasible {
				return "infeasible: " + r.Reason
			}
			return fmt.Sprintf("%.1f (batch %d)", float64(r.EpochTime)/3600, r.GlobalBatch)
		}
		fmt.Printf("%-6d  %-22s  %-22s  %-22s\n", gpus, cell(hybrid), cell(opt), cell(karma))
	}
	fmt.Println("\nKARMA's global batch is the MP factor (4x) larger at GPU parity, so it runs")
	fmt.Println("4x fewer gradient-exchange rounds per epoch — the Fig. 8 effect.")
}
