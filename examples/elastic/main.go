// Elastic data parallelism: surviving worker failures (paper §II-B,
// Table I "Fault Tolerance").
//
// Because every out-of-core worker holds the WHOLE model, losing workers
// loses no state: the pool shrinks and training continues. A
// model-parallel hybrid cannot do this — losing one shard-holder loses
// the model. This example kills workers mid-training and shows the run
// completing, then checkpoints and restarts bit-exactly (§IV-C).
//
//	go run ./examples/elastic
package main

import (
	"bytes"
	"fmt"
	"log"

	"karma/internal/nn"
)

func buildModel(seed uint64) *nn.Sequential {
	r := nn.NewRNG(seed)
	return nn.NewSequential(
		nn.NewDense("fc1", 20, 40, r),
		nn.NewReLU("relu1"),
		nn.NewDense("fc2", 40, 40, r),
		nn.NewReLU("relu2"),
		nn.NewDense("fc3", 40, 5, r),
	)
}

func batchFor(step, worker int) (*nn.Tensor, []int) {
	r := nn.NewRNG(uint64(2_000 + worker)) // fixed shards: memorization task
	x := nn.NewTensor(8, 20)
	labels := make([]int, 8)
	for b := 0; b < 8; b++ {
		var sum float32
		for f := 0; f < 20; f++ {
			v := r.Normalish()
			x.Data[b*20+f] = v
			sum += v
		}
		l := int(sum)
		if l < 0 {
			l = -l
		}
		labels[b] = l % 5
	}
	return x, labels
}

func main() {
	const workers, steps = 4, 60
	master := buildModel(1)
	replicas := make([]*nn.Sequential, workers)
	for w := range replicas {
		replicas[w] = buildModel(uint64(10 + w))
	}

	// Two workers die at step 20, another at step 40.
	failures := nn.FailureSchedule{20: 2, 40: 1}
	res, err := nn.ElasticTrain(master, replicas, steps, batchFor, nn.ParallelConfig{
		Workers: workers, ArenaBytes: 1 << 30,
		Policies: []nn.Policy{nn.Swap, nn.Swap, nn.Swap, nn.Swap, nn.Keep},
		LR:       0.05, Momentum: 0.9,
	}, failures)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("elastic run: pool %d -> %d -> %d workers\n",
		res.WorkersAtStep[0], res.WorkersAtStep[25], res.WorkersAtStep[steps-1])
	fmt.Printf("loss: %.4f -> %.4f (training survived both failures)\n",
		res.Losses[0], res.Losses[len(res.Losses)-1])

	// Checkpoint/restart the surviving state (§IV-C mitigation).
	opt := nn.NewSGD(0.05, 0.9)
	var buf bytes.Buffer
	if err := nn.SaveCheckpoint(&buf, master, opt); err != nil {
		log.Fatal(err)
	}
	restored := buildModel(99)
	if err := nn.LoadCheckpoint(&buf, restored, nn.NewSGD(0.05, 0.9)); err != nil {
		log.Fatal(err)
	}
	identical := true
	mp, rp := master.Params(), restored.Params()
	for i := range mp {
		if !mp[i].Equal(rp[i]) {
			identical = false
		}
	}
	fmt.Printf("checkpoint round trip bitwise identical: %v\n", identical)
	if !identical {
		log.Fatal("checkpoint corruption")
	}
}
