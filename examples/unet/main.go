// U-Net and non-affine skip connections (paper §III-F4).
//
// U-Net's contracting path feeds the expansive path through long skip
// connections. Swapping those activations out would force premature
// swap-ins long before their backward pass; KARMA's optimizer instead
// pins the skip tensors and leans on recompute in the contracting path —
// the behaviour the paper reports for its ILP solver.
//
//	go run ./examples/unet
package main

import (
	"fmt"
	"log"

	"karma/internal/hw"
	"karma/internal/karma"
	"karma/internal/model"
	"karma/internal/profiler"
)

func main() {
	node := hw.ABCINode()
	g := model.UNet()

	// Loose segmentation (MaxOpen 5) cuts inside the skip region and
	// surfaces the skip edges as pinned tensors.
	const batch = 24
	prof, err := profiler.New(g, node, profiler.Options{Batch: batch, MaxOpen: 5})
	if err != nil {
		log.Fatal(err)
	}
	var pinned int
	for _, b := range prof.Blocks {
		if len(b.Seg.PinnedIn) > 0 {
			pinned += len(b.Seg.PinnedIn)
		}
	}
	fmt.Printf("U-Net at batch %d: %d segments, %d pinned skip edges, %v activations (device holds %v)\n",
		batch, len(prof.Blocks), pinned, prof.TotalActBytes, node.Device.UsableMem())

	sched, err := karma.Plan(prof, karma.Options{})
	if err != nil {
		log.Fatal(err)
	}
	counts := map[karma.Policy]int{}
	for _, b := range sched.Blocks {
		counts[b.Policy]++
	}
	fmt.Printf("schedule: %d blocks -> %d keep / %d swap / %d recompute\n",
		sched.NumBlocks(), counts[karma.Keep], counts[karma.Swap], counts[karma.Recompute])

	rep, err := karma.Simulate(sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration %v (%.1f samples/s), occupancy %.3f\n",
		rep.IterTime, rep.Throughput, rep.Occupancy)
	fmt.Printf("\nplan: %s\n", rep.Plan)
}
