// Real out-of-core training with bitwise equivalence (paper §IV-D).
//
// This example trains an actual float32 CNN on synthetic images under a
// near-memory capacity that cannot hold all activations. The executor
// physically moves activation buffers to far memory (swap) or drops and
// replays them (recompute), then the final weights are compared — bit by
// bit — with a conventional in-core run.
//
//	go run ./examples/oocnn
package main

import (
	"fmt"
	"log"

	"karma/internal/nn"
)

func buildCNN(seed uint64) *nn.Sequential {
	r := nn.NewRNG(seed)
	return nn.NewSequential(
		nn.NewConv2D("conv1", 1, 8, 3, 1, r),
		nn.NewReLU("relu1"),
		nn.NewConv2D("conv2", 8, 8, 3, 1, r),
		nn.NewReLU("relu2"),
		nn.NewFlatten("flatten"),
		nn.NewDense("fc", 8*12*12, 4, r),
	)
}

func batch(step int) (*nn.Tensor, []int) {
	r := nn.NewRNG(uint64(500 + step))
	const n = 6
	x := nn.NewTensor(n, 1, 12, 12)
	labels := make([]int, n)
	for b := 0; b < n; b++ {
		var sum float32
		for i := 0; i < 144; i++ {
			v := r.Normalish()
			x.Data[b*144+i] = v
			sum += v
		}
		l := int(sum)
		if l < 0 {
			l = -l
		}
		labels[b] = l % 4
	}
	return x, labels
}

func train(m *nn.Sequential, capacity int64, policies []nn.Policy, steps int) (*nn.Arena, error) {
	arena := nn.NewArena(capacity)
	exec, err := nn.NewExec(m, arena, policies)
	if err != nil {
		return nil, err
	}
	opt := nn.NewSGD(0.02, 0.9)
	for s := 0; s < steps; s++ {
		x, labels := batch(s)
		if _, err := exec.Step(x, labels, opt); err != nil {
			return nil, fmt.Errorf("step %d: %w", s, err)
		}
	}
	return arena, nil
}

func main() {
	const steps = 30
	// The chain tensors at batch 6 total ~142 KB; cap near memory at
	// 100 KB so in-core training cannot fit but the out-of-core working
	// set (two adjacent layers plus a replay run) does.
	const tight = int64(100_000)

	// In-core reference needs a large arena.
	ref := buildCNN(3)
	if _, err := train(ref, 1<<30, make([]nn.Policy, 6), steps); err != nil {
		log.Fatal(err)
	}

	// The same training under the tight capacity fails without OOC...
	failing := buildCNN(3)
	if _, err := train(failing, tight, make([]nn.Policy, 6), steps); err != nil {
		fmt.Printf("in-core under %d bytes: %v\n", tight, err)
	} else {
		log.Fatal("expected the tight arena to overflow")
	}

	// ...and succeeds with KARMA-style swap+recompute policies.
	ooc := buildCNN(3)
	policies := []nn.Policy{nn.Swap, nn.Recompute, nn.Swap, nn.Recompute, nn.Swap, nn.Keep}
	arena, err := train(ooc, tight, policies, steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("out-of-core under %d bytes: trained %d steps, %d bytes swapped\n",
		tight, steps, arena.Moved())

	identical := true
	rp, op := ref.Params(), ooc.Params()
	for i := range rp {
		if !rp[i].Equal(op[i]) {
			identical = false
		}
	}
	fmt.Printf("weights bitwise identical to in-core training: %v\n", identical)
	if !identical {
		log.Fatal("equivalence violated")
	}
	fmt.Println("=> out-of-core execution changes where tensors live, not the math (§IV-D)")
}
