// Quickstart: train a model beyond device memory capacity.
//
// This example profiles ResNet-50 at a mini-batch 3x past what a
// 16 GiB V100 can hold, runs KARMA's two-tier optimizer (capacity-based
// layer swapping interleaved with redundant recompute, paper §III), and
// compares the simulated iteration against conventional in-core training
// at the largest batch that fits.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"karma/internal/hw"
	"karma/internal/karma"
	"karma/internal/model"
	"karma/internal/profiler"
)

func main() {
	node := hw.ABCINode() // V100-SXM2 16 GiB over PCIe Gen3 x16 (Table II)
	g := model.ResNet50()

	// Step 1: profile the model at the target batch (paper Fig. 1, steps
	// 1-2). Batch 384 needs ~3x the device memory.
	const batch = 384
	prof, err := profiler.New(g, node, profiler.Options{Batch: batch})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ResNet-50 at batch %d: %v activations + %v weights vs %v device memory (fits: %v)\n",
		batch, prof.TotalActBytes, prof.TotalWeightBytes,
		node.Device.UsableMem(), prof.FitsInCore())

	// Step 2: plan. Opt-1 groups layers into blocks; Opt-2 decides which
	// blocks swap to host memory and which are redundantly recomputed.
	sched, err := karma.Plan(prof, karma.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: %d blocks (%d resident), swapping %v per direction, recomputing %v of forward work\n",
		sched.NumBlocks(), sched.NumBlocks()-sched.Resident,
		sched.SwappedBytes(), sched.RecomputedTime())

	// Step 3: simulate the plan on the event-driven device model.
	rep, err := karma.Simulate(sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("out-of-core iteration: %v -> %.1f samples/s at occupancy %.3f\n",
		rep.IterTime, rep.Throughput, rep.Occupancy)

	// Reference: the largest in-core batch (128, the Fig. 5 boundary).
	ref, err := profiler.New(g, node, profiler.Options{Batch: 128})
	if err != nil {
		log.Fatal(err)
	}
	refSched, err := karma.Plan(ref, karma.Options{})
	if err != nil {
		log.Fatal(err)
	}
	refRep, err := karma.Simulate(refSched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-core reference (batch 128): %.1f samples/s\n", refRep.Throughput)
	fmt.Printf("=> 3x the batch at %.0f%% of the in-core rate (paper reports 9-37%% degradation at 2-6x)\n",
		100*rep.Throughput/refRep.Throughput)
}
