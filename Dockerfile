# karma-serve: the KARMA planner/evaluator HTTP daemon.
#
#   docker build -t karma-serve .
#   docker run --rm -p 8080:8080 karma-serve
#
# Two stages: a Go builder and a scratch-thin runtime (the binary is
# static; the evaluator needs no OS services beyond a TCP socket).
FROM golang:1.21 AS build
WORKDIR /src
COPY go.mod ./
COPY cmd ./cmd
COPY internal ./internal
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/karma-serve ./cmd/karma-serve

FROM gcr.io/distroless/static-debian12:nonroot
COPY --from=build /out/karma-serve /karma-serve
EXPOSE 8080
ENV KARMA_SERVE_ADDR=:8080
ENTRYPOINT ["/karma-serve"]
