#!/usr/bin/env bash
# Regenerate the per-PR benchmark snapshot (BENCH_<n>.json at the repo
# root): one entry per benchmark from the root harness (bench_test.go),
# including the b.ReportMetric headline quantities (speedups, epoch
# hours, stall seconds). Usage:
#
#   scripts/bench-snapshot.sh <pr-number> [extra go test args...]
#
# The snapshot is a paper trail, not a gate: -benchtime=1x measures a
# single iteration, so ns/op is indicative only; the reported model
# metrics are deterministic and are the stable signal to diff across
# PRs.
set -euo pipefail

cd "$(dirname "$0")/.."
pr="${1:?usage: scripts/bench-snapshot.sh <pr-number>}"
shift || true

out="BENCH_${pr}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -bench . -benchtime=1x -benchmem -run '^$' "$@" . | tee "$raw" >&2

awk -v pr="$pr" -v goversion="$(go env GOVERSION)" -v date="$(date -u +%Y-%m-%d)" '
BEGIN {
	printf "{\n"
	printf "  \"pr\": %s,\n", pr
	printf "  \"date\": \"%s\",\n", date
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"benchtime\": \"1x\",\n"
	printf "  \"benchmarks\": ["
	n = 0
}
/^Benchmark/ {
	name = $1
	iters = $2
	if (n++) printf ","
	printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, iters
	for (i = 3; i < NF; i += 2) {
		unit = $(i + 1)
		gsub(/"/, "", unit)
		printf ", \"%s\": %s", unit, $i
	}
	printf "}"
}
END {
	printf "\n  ]\n}\n"
}
' "$raw" >"$out"

echo "wrote $out" >&2
