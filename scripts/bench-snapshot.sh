#!/usr/bin/env bash
# Regenerate the per-PR benchmark snapshot (BENCH_<n>.json at the repo
# root): one entry per benchmark from the root harness (bench_test.go),
# including the b.ReportMetric headline quantities (speedups, epoch
# hours, stall seconds). Usage:
#
#   scripts/bench-snapshot.sh <pr-number> [extra go test args...]
#
# Each benchmark runs BENCH_SAMPLES times (default 3) and the snapshot
# keeps its best (lowest ns/op) run, recorded under "samples" — a
# single -benchtime=1x iteration is too noisy to gate on, the best-of-N
# floor is what scripts/bench-compare diffs. The reported model metrics
# are deterministic across runs and are the stable signal either way.
# BENCH_OUT overrides the output path (for scratch snapshots that must
# not clobber the committed paper trail).
set -euo pipefail

cd "$(dirname "$0")/.."
pr="${1:?usage: scripts/bench-snapshot.sh <pr-number>}"
shift || true

samples="${BENCH_SAMPLES:-3}"
out="${BENCH_OUT:-BENCH_${pr}.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -bench . -benchtime=1x -benchmem -count="$samples" -run '^$' "$@" . | tee "$raw" >&2

awk -v pr="$pr" -v goversion="$(go env GOVERSION)" -v date="$(date -u +%Y-%m-%d)" -v samples="$samples" '
BEGIN {
	printf "{\n"
	if (pr ~ /^[0-9]+$/) {
		printf "  \"pr\": %s,\n", pr
	} else {
		printf "  \"pr\": \"%s\",\n", pr
	}
	printf "  \"date\": \"%s\",\n", date
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"benchtime\": \"1x\",\n"
	printf "  \"samples\": %s,\n", samples
	printf "  \"benchmarks\": ["
	n = 0
}
/^Benchmark/ {
	name = $1
	# Keep the lowest-ns/op run per benchmark ($3 is ns/op), preserving
	# first-appearance order.
	if (!(name in best)) {
		order[n++] = name
		best[name] = $3 + 0
		line[name] = $0
	} else if ($3 + 0 < best[name]) {
		best[name] = $3 + 0
		line[name] = $0
	}
}
END {
	for (i = 0; i < n; i++) {
		name = order[i]
		split(line[name], f, /[ \t]+/)
		if (i) printf ","
		printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, f[2]
		nf = 0
		for (j in f) nf++
		for (j = 3; j < nf; j += 2) {
			unit = f[j + 1]
			gsub(/"/, "", unit)
			printf ", \"%s\": %s", unit, f[j]
		}
		printf "}"
	}
	printf "\n  ]\n}\n"
}
' "$raw" >"$out"

echo "wrote $out (best of $samples)" >&2
