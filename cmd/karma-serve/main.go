// Command karma-serve exposes the KARMA planner and evaluators as a
// long-running HTTP daemon (ROADMAP item 2). It answers "can model M
// train on cluster C, and how fast?" over JSON:
//
//	karma-serve -addr :8080
//	curl -s localhost:8080/v1/evaluate -d '{"family":"karma-dp","model":"megatron-8.3B","gpus":2048,"batch":2048}'
//	curl -s localhost:8080/v1/sweep -d '{"panel":"fig8-turing"}'
//	curl -s localhost:8080/v1/feasibility -d '{"family":"zero","model":"turing-nlg-17B","gpus":512,"batch":512}'
//	curl -s 'localhost:8080/v1/plan?family=karma-dp&model=turing-nlg-17B&gpus=512&batch=1'
//	curl -s 'localhost:8080/v1/trace?family=mp%2Bdp&model=megatron-8.3B&mp=8&gpus=512&batch=8&ckpt=true' > trace.json
//	curl -s localhost:8080/stats
//
// Every flag falls back to a KARMA_SERVE_* environment variable (flag
// wins), so the same binary configures cleanly under Docker.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"karma/internal/serve"
)

// envString returns the flag default: $KARMA_SERVE_<name> if set, else def.
func envString(name, def string) string {
	if v, ok := os.LookupEnv("KARMA_SERVE_" + name); ok {
		return v
	}
	return def
}

func envInt(name string, def int) int {
	if v, ok := os.LookupEnv("KARMA_SERVE_" + name); ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
		fmt.Fprintf(os.Stderr, "karma-serve: ignoring non-integer KARMA_SERVE_%s=%q\n", name, v)
	}
	return def
}

func envBool(name string, def bool) bool {
	if v, ok := os.LookupEnv("KARMA_SERVE_" + name); ok {
		if b, err := strconv.ParseBool(v); err == nil {
			return b
		}
		fmt.Fprintf(os.Stderr, "karma-serve: ignoring non-boolean KARMA_SERVE_%s=%q\n", name, v)
	}
	return def
}

func envDuration(name string, def time.Duration) time.Duration {
	if v, ok := os.LookupEnv("KARMA_SERVE_" + name); ok {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
		fmt.Fprintf(os.Stderr, "karma-serve: ignoring non-duration KARMA_SERVE_%s=%q\n", name, v)
	}
	return def
}

func main() {
	var (
		addr        = flag.String("addr", envString("ADDR", ":8080"), "listen address (env KARMA_SERVE_ADDR)")
		workers     = flag.Int("workers", envInt("WORKERS", 0), "sweep worker pool size, 0 = NumCPU (env KARMA_SERVE_WORKERS)")
		maxInFlight = flag.Int("max-in-flight", envInt("MAX_IN_FLIGHT", 0), "concurrent evaluation cap, 0 = 2x NumCPU (env KARMA_SERVE_MAX_IN_FLIGHT)")
		cacheSize   = flag.Int("cache", envInt("CACHE", 0), "response cache entries, 0 = 1024 (env KARMA_SERVE_CACHE)")
		timeout     = flag.Duration("timeout", envDuration("TIMEOUT", 0), "per-request compute deadline, 0 = 120s (env KARMA_SERVE_TIMEOUT)")
		pprofOn     = flag.Bool("pprof", envBool("PPROF", false), "mount /debug/pprof/ profiling endpoints (env KARMA_SERVE_PPROF)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "karma-serve: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := serve.New(serve.Config{
		Workers:        *workers,
		MaxInFlight:    *maxInFlight,
		CacheEntries:   *cacheSize,
		RequestTimeout: *timeout,
		Logger:         log,
		Pprof:          *pprofOn,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("listening", "addr", *addr)

	select {
	case err := <-errc:
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	log.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Error("shutdown", "err", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("serve failed", "err", err)
		os.Exit(1)
	}
	log.Info("drained")
}
